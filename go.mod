module palirria

go 1.22
