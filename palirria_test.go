package palirria

import (
	"encoding/json"
	"testing"
)

func jsonUnmarshal(data []byte, v interface{}) error { return json.Unmarshal(data, v) }

func TestRunSimDefaults(t *testing.T) {
	rep, err := RunSim(SimConfig{Workload: "strassen"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExecCycles <= 0 || rep.Tasks == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.MaxWorkers < 5 || rep.MaxWorkers > 27 {
		t.Fatalf("MaxWorkers = %d outside [5, 27]", rep.MaxWorkers)
	}
}

func TestRunSimAllSchedulers(t *testing.T) {
	for _, sched := range []string{"wool", "asteal", "palirria"} {
		rep, err := RunSim(SimConfig{Workload: "strassen", Scheduler: sched, FixedWorkers: 12})
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if rep.ExecCycles <= 0 {
			t.Fatalf("%s: empty run", sched)
		}
	}
}

func TestRunSimNUMAPlatform(t *testing.T) {
	rep, err := RunSim(SimConfig{Platform: "numa48", Workload: "strassen", Scheduler: "palirria"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxWorkers > 45 {
		t.Fatalf("MaxWorkers = %d beyond the 45-worker cap", rep.MaxWorkers)
	}
}

func TestRunSimValidation(t *testing.T) {
	if _, err := RunSim(SimConfig{Platform: "bogus", Workload: "fib"}); err == nil {
		t.Error("bogus platform must fail")
	}
	if _, err := RunSim(SimConfig{Workload: "bogus"}); err == nil {
		t.Error("bogus workload must fail")
	}
	if _, err := RunSim(SimConfig{Workload: "fib", Scheduler: "bogus"}); err == nil {
		t.Error("bogus scheduler must fail")
	}
	if _, err := RunSim(SimConfig{Workload: "fib", Scheduler: "wool", FixedWorkers: 999}); err == nil {
		t.Error("oversized fixed allotment must fail")
	}
}

func TestRunSimCustomRoot(t *testing.T) {
	// Build a custom workload with the re-exported task DSL.
	var fan func(n int) *TaskSpec
	fan = func(n int) *TaskSpec {
		if n <= 1 {
			return Leaf("leaf", 2000)
		}
		return &TaskSpec{Ops: []TaskOp{
			Spawn(func() *TaskSpec { return fan(n / 2) }),
			Call(func() *TaskSpec { return fan(n - n/2) }),
			Sync(),
		}}
	}
	rep, err := RunSim(SimConfig{Root: fan(64), Scheduler: "palirria"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 127 {
		t.Fatalf("Tasks = %d, want 127", rep.Tasks)
	}
}

func TestWorkloadRoot(t *testing.T) {
	if _, err := WorkloadRoot("fib", "sim32"); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadRoot("fib", "numa48"); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadRoot("fib", "weird"); err == nil {
		t.Error("bad platform must fail")
	}
	if _, err := WorkloadRoot("nope", ""); err == nil {
		t.Error("bad workload must fail")
	}
}

func TestTopologyHelpers(t *testing.T) {
	m, err := NewMesh(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.Reserve(0, 1)
	a, err := NewAllotment(m, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := Classify(a)
	if len(c.X()) == 0 || len(c.Z()) == 0 {
		t.Fatal("classification empty")
	}
}

func TestEstimatorConstructors(t *testing.T) {
	if NewPalirria().Name() != "palirria" || NewASteal().Name() != "asteal" {
		t.Fatal("estimator names wrong")
	}
}

func TestWorkloadsList(t *testing.T) {
	if len(Workloads()) < 7 {
		t.Fatalf("Workloads() = %v", Workloads())
	}
}

func TestGoRTFuture(t *testing.T) {
	mesh, _ := NewMesh(4, 2)
	rt, err := NewRuntime(RTConfig{Mesh: mesh, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	var got int
	_, err = rt.Run(func(c *RTCtx) {
		f := GoRT(c, func(cc *RTCtx) int { return 21 })
		got = f.Join(c) * 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got = %d", got)
	}
}

func TestReportJSON(t *testing.T) {
	rep, err := RunSim(SimConfig{Workload: "strassen"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]interface{}
	if err := jsonUnmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"exec_cycles", "timeline", "workers", "wastefulness_percent"} {
		if _, ok := round[key]; !ok {
			t.Fatalf("JSON missing %q", key)
		}
	}
}
