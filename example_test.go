package palirria_test

import (
	"fmt"

	"palirria"
)

// ExampleRunSim runs the Strassen workload under Palirria on the paper's
// simulated 32-core platform. The simulator is deterministic, so this
// output is stable across machines and runs.
func ExampleRunSim() {
	rep, err := palirria.RunSim(palirria.SimConfig{
		Platform:  "sim32",
		Workload:  "strassen",
		Scheduler: "palirria",
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("exec=%d cycles, peak %d workers, avg %.1f\n",
		rep.ExecCycles, rep.MaxWorkers, rep.AvgWorkers)
	// Output:
	// exec=939767 cycles, peak 12 workers, avg 8.0
}

// ExampleClassify reproduces the DVS classification of the paper's Fig. 9a
// allotment: 27 workers on the 8x4 simulator mesh.
func ExampleClassify() {
	mesh, _ := palirria.NewMesh(8, 4)
	mesh.Reserve(0, 1)
	a, _ := palirria.NewAllotment(mesh, 20, 4)
	c := palirria.Classify(a)
	fmt.Printf("%d workers: |X|=%d |Z|=%d |F|=%d\n",
		a.Size(), len(c.X()), len(c.Z()), len(c.F()))
	// Output:
	// 27 workers: |X|=10 |Z|=7 |F|=10
}

// ExampleNewMesh shows the zone series the system scheduler steps through
// on the paper's 48-core platform.
func ExampleNewMesh() {
	mesh, _ := palirria.NewMesh(8, 6)
	mesh.Reserve(0, 1, 2)
	for d := 1; d <= 6; d++ {
		a, _ := palirria.NewAllotment(mesh, 28, d)
		fmt.Printf("d=%d: %d workers\n", d, a.Size())
	}
	// Output:
	// d=1: 5 workers
	// d=2: 13 workers
	// d=3: 24 workers
	// d=4: 35 workers
	// d=5: 42 workers
	// d=6: 45 workers
}

// ExampleRunSim_customWorkload models an application with the task DSL and
// evaluates it under a fixed WOOL allotment.
func ExampleRunSim_customWorkload() {
	var fan func(n int) *palirria.TaskSpec
	fan = func(n int) *palirria.TaskSpec {
		if n <= 1 {
			return palirria.Leaf("leaf", 1000)
		}
		return &palirria.TaskSpec{Ops: []palirria.TaskOp{
			palirria.Spawn(func() *palirria.TaskSpec { return fan(n / 2) }),
			palirria.Call(func() *palirria.TaskSpec { return fan(n - n/2) }),
			palirria.Sync(),
		}}
	}
	rep, err := palirria.RunSim(palirria.SimConfig{
		Root:      fan(128),
		Scheduler: "wool",
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("tasks=%d workers=%d\n", rep.Tasks, rep.MaxWorkers)
	// Output:
	// tasks=255 workers=27
}
