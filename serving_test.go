package palirria

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestServingFacade exercises the public serving layer end to end: pool,
// tenancy, submit, drain, and the re-exported sentinels.
func TestServingFacade(t *testing.T) {
	mesh, err := NewMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(PoolConfig{
		Name:    "web",
		Runtime: RTConfig{Mesh: mesh, Quantum: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	machine, err := NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ten := NewTenancy(machine, 5*time.Millisecond)
	if err := ten.Attach(pool, 5); err != nil {
		t.Fatal(err)
	}
	ten.Start()

	var n atomic.Int64
	for i := 0; i < 4; i++ {
		err := pool.Submit(context.Background(), func(c *RTCtx) {
			c.Spawn(func(cc *RTCtx) { n.Add(1) })
			c.Compute(1000)
			c.Sync()
			n.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if n.Load() != 8 {
		t.Fatalf("ran %d task bodies, want 8", n.Load())
	}
	var st PoolStats = pool.Stats()
	if st.Completed != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if snap := ten.Snapshot(); len(snap) != 1 || snap[0].Name != "web" {
		t.Fatalf("snapshot = %+v", snap)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := pool.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pool.Submit(context.Background(), func(c *RTCtx) {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
	ten.Close()

	// The batch-runtime sentinels are reachable through the facade too.
	rt, err := NewRuntime(RTConfig{Mesh: machine, Quantum: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(func(c *RTCtx) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(func(c *RTCtx) {}); !errors.Is(err, ErrAlreadyUsed) {
		t.Fatalf("second Run = %v, want ErrAlreadyUsed", err)
	}
	if err := rt.Submit(func(c *RTCtx) {}, nil); !errors.Is(err, ErrNotPersistent) {
		t.Fatalf("batch Submit = %v, want ErrNotPersistent", err)
	}
}
