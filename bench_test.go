// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, plus ablations and micro-benchmarks of the hot
// paths. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Figure benches report the quantities the paper plots as custom metrics
// (normalized exec %, wastefulness %, average workers), so a bench run is
// itself a compact reproduction record. The full printable figures come
// from cmd/palirria-bench.
package palirria

import (
	"fmt"
	"io"
	"testing"

	"palirria/internal/asteal"
	"palirria/internal/core"
	"palirria/internal/dvs"
	"palirria/internal/experiments"
	"palirria/internal/sim"
	"palirria/internal/topo"
	"palirria/internal/workload"
)

// --- Figure 4: workload input table --------------------------------------

func BenchmarkFig4Inputs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(io.Discard)
	}
}

// --- Figures 1, 2, 9: topology classifications ---------------------------

func BenchmarkFig1Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Multiprogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig9(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 5 and 6: the simulator platform -----------------------------

// benchWorkloadSweep runs one workload's full configuration sweep and
// reports the paper's metrics.
func benchWorkloadSweep(b *testing.B, p experiments.Platform, wl string) {
	b.Helper()
	var wr experiments.WorkloadRuns
	var err error
	for i := 0; i < b.N; i++ {
		wr, err = experiments.RunWorkload(p, wl)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := wr.Fixed[0]
	for _, r := range wr.Fixed[1:] {
		if r.Result.ExecCycles < best.Result.ExecCycles {
			best = r
		}
	}
	b.ReportMetric(wr.ASteal.NormExec, "AS_exec_%")
	b.ReportMetric(wr.Palirria.NormExec, "PA_exec_%")
	b.ReportMetric(best.NormExec, "bestfixed_exec_%")
	b.ReportMetric(wr.ASteal.WastePct, "AS_waste_%")
	b.ReportMetric(wr.Palirria.WastePct, "PA_waste_%")
	b.ReportMetric(wr.ASteal.AvgWorkers, "AS_avg_workers")
	b.ReportMetric(wr.Palirria.AvgWorkers, "PA_avg_workers")
}

func BenchmarkFig5_FFT(b *testing.B)     { benchWorkloadSweep(b, experiments.SimPlatform(), "fft") }
func BenchmarkFig5_Fib(b *testing.B)     { benchWorkloadSweep(b, experiments.SimPlatform(), "fib") }
func BenchmarkFig5_NQueens(b *testing.B) { benchWorkloadSweep(b, experiments.SimPlatform(), "nqueens") }
func BenchmarkFig5_Skew(b *testing.B)    { benchWorkloadSweep(b, experiments.SimPlatform(), "skew") }
func BenchmarkFig5_Sort(b *testing.B)    { benchWorkloadSweep(b, experiments.SimPlatform(), "sort") }
func BenchmarkFig5_Strassen(b *testing.B) {
	benchWorkloadSweep(b, experiments.SimPlatform(), "strassen")
}
func BenchmarkFig5_Stress(b *testing.B) { benchWorkloadSweep(b, experiments.SimPlatform(), "stress") }

func BenchmarkFig6_PerWorker(b *testing.B) {
	p := experiments.SimPlatform()
	for i := 0; i < b.N; i++ {
		wr, err := experiments.RunWorkload(p, "strassen")
		if err != nil {
			b.Fatal(err)
		}
		experiments.FigPerWorker(io.Discard, p, []experiments.WorkloadRuns{wr}, len(p.FixedSizes)-1)
	}
}

// --- Figures 7 and 8: the Linux/NUMA platform ----------------------------

func BenchmarkFig7_FFT(b *testing.B) { benchWorkloadSweep(b, experiments.LinuxPlatform(), "fft") }
func BenchmarkFig7_Fib(b *testing.B) { benchWorkloadSweep(b, experiments.LinuxPlatform(), "fib") }
func BenchmarkFig7_NQueens(b *testing.B) {
	benchWorkloadSweep(b, experiments.LinuxPlatform(), "nqueens")
}
func BenchmarkFig7_Skew(b *testing.B) { benchWorkloadSweep(b, experiments.LinuxPlatform(), "skew") }
func BenchmarkFig7_Sort(b *testing.B) { benchWorkloadSweep(b, experiments.LinuxPlatform(), "sort") }
func BenchmarkFig7_Strassen(b *testing.B) {
	benchWorkloadSweep(b, experiments.LinuxPlatform(), "strassen")
}
func BenchmarkFig7_Stress(b *testing.B) { benchWorkloadSweep(b, experiments.LinuxPlatform(), "stress") }

func BenchmarkFig8_PerWorker(b *testing.B) {
	p := experiments.LinuxPlatform()
	for i := 0; i < b.N; i++ {
		wr, err := experiments.RunWorkload(p, "strassen")
		if err != nil {
			b.Fatal(err)
		}
		experiments.FigPerWorker(io.Discard, p, []experiments.WorkloadRuns{wr}, 4)
	}
}

// --- Ablations ------------------------------------------------------------

func BenchmarkAblationQuantum(b *testing.B) {
	p := experiments.SimPlatform()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationQuantum(p, "bursty", []int64{5000, 20000, 50000, 200000, 800000})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.ExecCycles), r.Label+"_cycles")
			}
		}
	}
}

func BenchmarkAblationL(b *testing.B) {
	p := experiments.SimPlatform()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationL(p, "fft", []int{-1, 0, 1, 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.AvgWorkers, r.Label+"_avgw")
			}
		}
	}
}

func BenchmarkAblationVictim(b *testing.B) {
	p := experiments.SimPlatform()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationVictim(p, "fib")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.ExecCycles), r.Label+"_cycles")
			}
		}
	}
}

func BenchmarkAblationFilter(b *testing.B) {
	p := experiments.SimPlatform()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationFilter(p, "bursty")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Changes), r.Label+"_changes")
			}
		}
	}
}

func BenchmarkAblationStealableSlots(b *testing.B) {
	p := experiments.SimPlatform()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationStealableSlots(p, "stress", []int{2, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.ExecCycles), r.Label+"_cycles")
			}
		}
	}
}

func BenchmarkAblationEstimators(b *testing.B) {
	p := experiments.SimPlatform()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationEstimators(p, "strassen")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.ExecCycles), r.Label+"_cycles")
			}
		}
	}
}

func BenchmarkEstimatorOverhead(b *testing.B) {
	p := experiments.SimPlatform()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.EstimatorOverhead(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.PalirriaWorst), "PA_worst_inspected")
			b.ReportMetric(float64(last.AStealInspected), "AS_inspected")
		}
	}
}

// BenchmarkMultiprogrammed runs the co-scheduling extension: three jobs
// under fixed/asteal/palirria policies.
func BenchmarkMultiprogrammed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Multiprogrammed(50000)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.MakespanCycles), r.Label+"_makespan")
			}
		}
	}
}

// --- Micro-benchmarks of the hot paths ------------------------------------

// BenchmarkSimulatorThroughput measures engine event throughput.
func BenchmarkSimulatorThroughput(b *testing.B) {
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	d, _ := workload.Get("strassen")
	var events, cycles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Mesh: m, Source: 20, Root: d.Root(workload.Simulator), InitialDiaspora: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
		cycles += res.ExecCycles
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
}

// BenchmarkPalirriaDecide measures one DMC evaluation on the largest
// allotment — the estimator's per-quantum cost.
func BenchmarkPalirriaDecide(b *testing.B) {
	m := topo.MustMesh(8, 6)
	m.Reserve(0, 1, 2)
	a, err := topo.NewAllotment(m, 28, 6)
	if err != nil {
		b.Fatal(err)
	}
	class := topo.Classify(a)
	ws := make(map[topo.CoreID]*core.WorkerSnapshot, a.Size())
	for _, id := range a.Members() {
		ws[id] = &core.WorkerSnapshot{ID: id, QueueLen: 2, MaxQueueLen: 3, Busy: true}
	}
	snap := &core.Snapshot{Allotment: a, Class: class, Workers: ws, QuantumCycles: 50000}
	p := core.NewPalirria()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Decide(snap)
	}
}

// BenchmarkAStealEstimate measures one ASTEAL evaluation for comparison.
func BenchmarkAStealEstimate(b *testing.B) {
	m := topo.MustMesh(8, 6)
	m.Reserve(0, 1, 2)
	a, err := topo.NewAllotment(m, 28, 6)
	if err != nil {
		b.Fatal(err)
	}
	class := topo.Classify(a)
	ws := make(map[topo.CoreID]*core.WorkerSnapshot, a.Size())
	for _, id := range a.Members() {
		ws[id] = &core.WorkerSnapshot{ID: id, WastedCycles: 100}
	}
	snap := &core.Snapshot{Allotment: a, Class: class, Workers: ws, QuantumCycles: 50000}
	est := asteal.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Estimate(snap)
	}
}

// BenchmarkDVSVictimLists measures building the full DVS policy for the
// largest allotment (done once per allotment change).
func BenchmarkDVSVictimLists(b *testing.B) {
	m := topo.MustMesh(8, 6)
	m.Reserve(0, 1, 2)
	a, err := topo.NewAllotment(m, 28, 6)
	if err != nil {
		b.Fatal(err)
	}
	c := topo.Classify(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dvs.New(c)
	}
}

// BenchmarkRTSpawnSync measures the real runtime's spawn+inline-sync fast
// path (no steal): the "few hundred cycles" the paper cites for mature
// work-stealing runtimes.
func BenchmarkRTSpawnSync(b *testing.B) {
	mesh := topo.MustMesh(2)
	rt, err := NewRuntime(RTConfig{Mesh: mesh, Source: 0})
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	b.ResetTimer()
	if _, err := rt.Run(func(c *RTCtx) {
		for i := 0; i < n; i++ {
			c.Spawn(func(cc *RTCtx) {})
			c.Sync()
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWorkloadExpansion measures lazy tree generation cost.
func BenchmarkWorkloadExpansion(b *testing.B) {
	for _, name := range []string{"fib", "nqueens", "sort"} {
		d, _ := workload.Get(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				root := d.Root(workload.Simulator)
				if root == nil {
					b.Fatal("nil root")
				}
			}
		})
	}
}

// sink prevents dead-code elimination in micro-benches.
var sink interface{}

func BenchmarkClassifyLargest(b *testing.B) {
	m := topo.MustMesh(8, 6)
	m.Reserve(0, 1, 2)
	a, err := topo.NewAllotment(m, 28, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = topo.Classify(a)
	}
	_ = fmt.Sprint(sink != nil)
}

// BenchmarkRTStealHeavy forces cross-worker steals on the real runtime: a
// deep spawn chain whose children are taken by thieves.
func BenchmarkRTStealHeavy(b *testing.B) {
	mesh := topo.MustMesh(4, 2)
	rt, err := NewRuntime(RTConfig{Mesh: mesh, InitialDiaspora: 10})
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	b.ResetTimer()
	if _, err := rt.Run(func(c *RTCtx) {
		var fan func(cc *RTCtx, k int)
		fan = func(cc *RTCtx, k int) {
			if k <= 0 {
				cc.Compute(200)
				return
			}
			cc.Spawn(func(c3 *RTCtx) { fan(c3, k-1) })
			cc.Compute(200)
			cc.Sync()
		}
		for i := 0; i < n; i++ {
			fan(c, 8)
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRTFuture measures the typed-future fast path.
func BenchmarkRTFuture(b *testing.B) {
	mesh := topo.MustMesh(2)
	rt, err := NewRuntime(RTConfig{Mesh: mesh})
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	b.ResetTimer()
	if _, err := rt.Run(func(c *RTCtx) {
		for i := 0; i < n; i++ {
			f := GoRT(c, func(*RTCtx) int { return i })
			if f.Join(c) != i {
				panic("wrong value")
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}
