// Quickstart: run one workload on each platform under the three
// schedulers, and a tiny real-threads computation — the five-minute tour
// of the library.
package main

import (
	"fmt"
	"log"

	"palirria"
)

func main() {
	// 1. Deterministic simulator: compare the paper's three scheduler
	//    configurations on the Strassen workload.
	fmt.Println("== simulator: strassen on the 32-core platform ==")
	for _, sched := range []string{"wool", "asteal", "palirria"} {
		rep, err := palirria.RunSim(palirria.SimConfig{
			Platform:  "sim32",
			Workload:  "strassen",
			Scheduler: sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s exec=%9d cycles  workers: max %2d avg %4.1f  waste=%4.1f%%\n",
			sched, rep.ExecCycles, rep.MaxWorkers, rep.AvgWorkers, rep.WastefulnessPercent)
	}

	// 2. The estimator's view: watch Palirria's allotment follow a bursty
	//    parallelism profile.
	fmt.Println("\n== simulator: palirria adapting to bursty parallelism ==")
	rep, err := palirria.RunSim(palirria.SimConfig{
		Workload:  "bursty",
		Scheduler: "palirria",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range rep.Timeline.Points() {
		fmt.Printf("  t=%9d cycles  -> %2d workers\n", p.Time, p.Workers)
	}

	// 3. Real goroutines: the same programming model (Spawn/Sync) running
	//    actual code — a parallel Fibonacci.
	fmt.Println("\n== real runtime: parallel fib(30) ==")
	// An explicit 4x2 virtual mesh: on hosts with fewer CPUs the eight
	// workers timeshare, on bigger hosts they run truly in parallel.
	mesh, err := palirria.NewMesh(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := palirria.NewRuntime(palirria.RTConfig{
		Mesh:            mesh,
		InitialDiaspora: 99, // start with every worker
	})
	if err != nil {
		log.Fatal(err)
	}
	var result int64
	var fib func(c *palirria.RTCtx, n int, out *int64)
	fib = func(c *palirria.RTCtx, n int, out *int64) {
		if n < 2 {
			*out = int64(n)
			return
		}
		var a, b int64
		c.Spawn(func(cc *palirria.RTCtx) { fib(cc, n-1, &a) })
		fib(c, n-2, &b)
		c.Sync()
		*out = a + b
	}
	rtRep, err := rt.Run(func(c *palirria.RTCtx) { fib(c, 30, &result) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fib(30) = %d in %.2fms across %d workers\n",
		result, float64(rtRep.WallNS)/1e6, len(rtRep.Workers))
}
