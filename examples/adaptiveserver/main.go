// Adaptiveserver demonstrates the paper's motivating scenario (§1): a
// server-like application whose parallelism fluctuates with incoming load.
// A Palirria-adaptive runtime serves synthetic request waves on real
// goroutines; the allotment grows into the bursts and shrinks in the
// valleys, which is exactly the resource conservation the paper's two-level
// scheduling aims for.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"palirria"
)

// wave describes one load phase: how many requests arrive and how much
// work each carries.
type wave struct {
	name     string
	requests int
	workUnit int64
}

func defaultWaves() []wave {
	return []wave{
		{"overnight (idle)", 4, 400_000},
		{"morning ramp", 64, 400_000},
		{"peak", 256, 400_000},
		{"lunch dip", 16, 400_000},
		{"evening burst", 192, 400_000},
		{"night (idle)", 4, 400_000},
	}
}

// options configures one demo run; the zero value plus waves is valid.
type options struct {
	metricsAddr string
	traceOut    string
	waves       []wave
	quantum     time.Duration
	quietCycles int64 // compute between waves
}

func main() {
	var o options
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve Prometheus /metrics, expvar and pprof on this address (e.g. :9090) and wait for Ctrl-C after the run")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a Chrome trace_event JSON file of the run")
	flag.Parse()
	o.waves = defaultWaves()
	o.quantum = time.Millisecond
	o.quietCycles = 2_000_000
	if err := run(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}

// run executes the wave scenario and prints the allotment timeline. It is
// separated from main so the example has test coverage.
func run(out io.Writer, o options) error {
	// A 4x4 virtual mesh: sixteen workers laid out for DVS. On small
	// hosts they timeshare; the estimation dynamics are the same.
	mesh, err := palirria.NewMesh(4, 4)
	if err != nil {
		return err
	}
	cfg := palirria.RTConfig{
		Mesh:      mesh,
		Source:    5, // an interior core, like the paper's platforms
		Estimator: palirria.NewPalirria(),
		Quantum:   o.quantum,
	}
	var srv *palirria.ObsServer
	if o.metricsAddr != "" {
		cfg.Metrics = palirria.NewObsRegistry()
		if srv, err = palirria.ServeObs(o.metricsAddr, cfg.Metrics); err != nil {
			return err
		}
		fmt.Fprintf(out, "observability server on %s (/metrics, /debug/vars, /debug/pprof)\n", srv.URL())
	}
	if o.traceOut != "" {
		cfg.Tracer = palirria.NewObsTracer(1000) // wall-clock ns -> µs
	}
	rt, err := palirria.NewRuntime(cfg)
	if err != nil {
		return err
	}

	var served atomic.Int64
	rep, err := rt.Run(func(c *palirria.RTCtx) {
		for _, w := range o.waves {
			// Requests fan out as a nested tree (each request may spawn
			// sub-queries), then the wave drains before the next arrives.
			serveWave(c, w, &served)
			c.Compute(o.quietCycles) // quiet period between waves
		}
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "served %d requests in %.1fms\n", served.Load(), float64(rep.WallNS)/1e6)
	fmt.Fprintln(out, "\nallotment over time (palirria follows the load):")
	for _, p := range rep.Timeline.Points() {
		bar := ""
		for i := 0; i < p.Workers; i++ {
			bar += "#"
		}
		fmt.Fprintf(out, "  t=%7.2fms %2d %s\n", float64(p.Time)/1e6, p.Workers, bar)
	}
	fmt.Fprintf(out, "\n%d estimator decisions, peak %d workers\n",
		len(rep.Decisions.Decisions()), rep.MaxWorkers)

	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		td := cfg.Tracer.Drain()
		if err := td.WriteChrome(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d trace events -> %s\n", len(td.Events), o.traceOut)
	}
	if srv != nil {
		fmt.Fprintf(out, "serving metrics on %s — Ctrl-C to exit\n", srv.URL())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		srv.Close()
	}
	return nil
}

// serveWave fans the wave's requests out as a binary spawn tree so stolen
// subtrees keep feeding thieves' queues (nested fork/join parallelism).
func serveWave(c *palirria.RTCtx, w wave, served *atomic.Int64) {
	var fan func(cc *palirria.RTCtx, n int)
	fan = func(cc *palirria.RTCtx, n int) {
		if n <= 1 {
			// One request: parse, query, render.
			cc.Compute(w.workUnit)
			served.Add(1)
			return
		}
		cc.Spawn(func(c3 *palirria.RTCtx) { fan(c3, n/2) })
		fan(cc, n-n/2)
		cc.Sync()
	}
	fan(c, w.requests)
}
