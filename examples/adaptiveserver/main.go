// Adaptiveserver demonstrates the paper's motivating scenario (§1): a
// server-like application whose parallelism fluctuates with incoming load.
// A Palirria-adaptive runtime serves synthetic request waves on real
// goroutines; the allotment grows into the bursts and shrinks in the
// valleys, which is exactly the resource conservation the paper's two-level
// scheduling aims for.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"palirria"
)

// wave describes one load phase: how many requests arrive and how much
// work each carries.
type wave struct {
	name     string
	requests int
	workUnit int64
}

func main() {
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar and pprof on this address (e.g. :9090) and wait for Ctrl-C after the run")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file of the run")
	flag.Parse()

	// A 4x4 virtual mesh: sixteen workers laid out for DVS. On small
	// hosts they timeshare; the estimation dynamics are the same.
	mesh, err := palirria.NewMesh(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	cfg := palirria.RTConfig{
		Mesh:      mesh,
		Source:    5, // an interior core, like the paper's platforms
		Estimator: palirria.NewPalirria(),
		Quantum:   time.Millisecond,
	}
	var srv *palirria.ObsServer
	if *metricsAddr != "" {
		cfg.Metrics = palirria.NewObsRegistry()
		if srv, err = palirria.ServeObs(*metricsAddr, cfg.Metrics); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observability server on %s (/metrics, /debug/vars, /debug/pprof)\n", srv.URL())
	}
	if *traceOut != "" {
		cfg.Tracer = palirria.NewObsTracer(1000) // wall-clock ns -> µs
	}
	rt, err := palirria.NewRuntime(cfg)
	if err != nil {
		log.Fatal(err)
	}

	waves := []wave{
		{"overnight (idle)", 4, 400_000},
		{"morning ramp", 64, 400_000},
		{"peak", 256, 400_000},
		{"lunch dip", 16, 400_000},
		{"evening burst", 192, 400_000},
		{"night (idle)", 4, 400_000},
	}

	var served atomic.Int64
	rep, err := rt.Run(func(c *palirria.RTCtx) {
		for _, w := range waves {
			// Requests fan out as a nested tree (each request may spawn
			// sub-queries), then the wave drains before the next arrives.
			serveWave(c, w, &served)
			c.Compute(2_000_000) // quiet period between waves
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d requests in %.1fms\n", served.Load(), float64(rep.WallNS)/1e6)
	fmt.Println("\nallotment over time (palirria follows the load):")
	for _, p := range rep.Timeline.Points() {
		bar := ""
		for i := 0; i < p.Workers; i++ {
			bar += "#"
		}
		fmt.Printf("  t=%7.2fms %2d %s\n", float64(p.Time)/1e6, p.Workers, bar)
	}
	fmt.Printf("\n%d estimator decisions, peak %d workers\n",
		len(rep.Decisions.Decisions()), rep.MaxWorkers)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		td := cfg.Tracer.Drain()
		if err := td.WriteChrome(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d trace events -> %s\n", len(td.Events), *traceOut)
	}
	if srv != nil {
		fmt.Printf("serving metrics on %s — Ctrl-C to exit\n", srv.URL())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		srv.Close()
	}
}

// serveWave fans the wave's requests out as a binary spawn tree so stolen
// subtrees keep feeding thieves' queues (nested fork/join parallelism).
func serveWave(c *palirria.RTCtx, w wave, served *atomic.Int64) {
	var fan func(cc *palirria.RTCtx, n int)
	fan = func(cc *palirria.RTCtx, n int) {
		if n <= 1 {
			// One request: parse, query, render.
			cc.Compute(w.workUnit)
			served.Add(1)
			return
		}
		cc.Spawn(func(c3 *palirria.RTCtx) { fan(c3, n/2) })
		fan(cc, n-n/2)
		cc.Sync()
	}
	fan(c, w.requests)
}
