package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunSmoke executes a bounded version of the demo: two tiny waves, a
// short quantum, and a Chrome trace written to a temp dir.
func TestRunSmoke(t *testing.T) {
	var sb strings.Builder
	o := options{
		traceOut:    filepath.Join(t.TempDir(), "trace.json"),
		waves:       []wave{{"calm", 4, 50_000}, {"burst", 32, 50_000}},
		quantum:     500 * time.Microsecond,
		quietCycles: 200_000,
	}
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "served 36 requests") {
		t.Fatalf("unexpected request count:\n%s", out)
	}
	if !strings.Contains(out, "allotment over time") || !strings.Contains(out, "trace events") {
		t.Fatalf("missing report sections:\n%s", out)
	}
}

// TestRunDefaultWaves keeps the full scenario compiling and bounded; the
// heavy version runs only without -short.
func TestRunDefaultWaves(t *testing.T) {
	if testing.Short() {
		t.Skip("full wave scenario skipped in -short mode")
	}
	o := options{
		waves:       defaultWaves(),
		quantum:     time.Millisecond,
		quietCycles: 2_000_000,
	}
	if err := run(io.Discard, o); err != nil {
		t.Fatal(err)
	}
}
