package main

import (
	"strings"
	"testing"
)

// TestRunSmoke executes the whole demo (it is deterministic and bounded:
// scripted arbitration phases plus one multiprogrammed simulator run) and
// checks the report's key sections.
func TestRunSmoke(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"=== steady state",
		"=== night: all quiet",
		"free cores:",
		"machine makespan:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out[:min(len(out), 2000)])
		}
	}
	// Every job of the co-scheduled run must finish.
	for _, job := range []string{"web", "batch", "ml"} {
		if !strings.Contains(out, job) {
			t.Fatalf("job %q missing from report", job)
		}
	}
}
