// Multiprogram reproduces the deployment of the paper's Fig. 2: several
// task-parallel applications co-scheduled on one mesh, each holding an
// incomplete allotment that grows and shrinks as its demand changes while
// the arbiter keeps grants disjoint.
//
// The demo scripts three applications through demand phases, printing the
// mesh ownership map and each application's DVS classification — note how
// the classes stay well-defined (and victim lists non-empty) even when an
// allotment is scattered around its competitors.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"palirria"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the whole demo; separated from main for test coverage.
func run(out io.Writer) error {
	mesh, err := palirria.NewMesh(9, 9)
	if err != nil {
		return err
	}
	mesh.Reserve(0, 1) // system scheduler + helper threads

	ab := palirria.NewArbiter(mesh)
	web, err := ab.Register("web", mesh.ID(palirria.Coord{X: 2, Y: 2}))
	if err != nil {
		return err
	}
	batch, err := ab.Register("batch", mesh.ID(palirria.Coord{X: 6, Y: 2}))
	if err != nil {
		return err
	}
	ml, err := ab.Register("ml", mesh.ID(palirria.Coord{X: 4, Y: 6}))
	if err != nil {
		return err
	}

	// Demand phases: (web, batch, ml) desired workers over time, as their
	// estimators would request them.
	phases := []struct {
		name           string
		web, batch, ml int
	}{
		{"steady state", 9, 9, 9},
		{"web traffic spike", 30, 9, 9},
		{"spike over, ml training starts", 9, 9, 40},
		{"batch window, everyone busy", 20, 30, 30},
		{"night: all quiet", 5, 5, 5},
	}

	for _, ph := range phases {
		ab.Request(web, ph.web)
		ab.Request(batch, ph.batch)
		ab.Request(ml, ph.ml)
		fmt.Fprintf(out, "\n=== %s (desired web=%d batch=%d ml=%d) ===\n",
			ph.name, ph.web, ph.batch, ph.ml)
		palirria.RenderOwnership(out, "mesh ownership:", mesh,
			[]*palirria.Allotment{web.Allotment(), batch.Allotment(), ml.Allotment()})
		for _, app := range ab.Apps() {
			a := app.Allotment()
			c := palirria.Classify(a)
			complete := "incomplete"
			if c.Complete() {
				complete = "complete"
			}
			fmt.Fprintf(out, "  %-6s %2d workers, diaspora %d, |X|=%d |Z|=%d |F|=%d (%s classes)\n",
				app.Name, a.Size(), a.Diaspora(), len(c.X()), len(c.Z()), len(c.F()), complete)
		}
		fmt.Fprintf(out, "  free cores: %d\n", ab.FreeCores())
	}

	// Zoom in on one contended allotment's classification.
	fmt.Fprintln(out, "\n=== ml application classified under contention ===")
	palirria.RenderClassGrid(out, "DVS classes of the ml allotment:", palirria.Classify(ml.Allotment()))

	// And finally run three real co-scheduled jobs end to end on the
	// simulator: each adapts with Palirria while competing for cores.
	fmt.Fprintln(out, "\n=== co-scheduled execution (3 adaptive jobs, one mesh) ===")
	runMesh, err := palirria.NewMesh(9, 9)
	if err != nil {
		return err
	}
	runMesh.Reserve(0, 1)
	roots := map[string]string{"web": "bursty", "batch": "sort", "ml": "strassen"}
	var jobs []palirria.SimJob
	for _, jd := range []struct {
		name string
		src  palirria.Coord
	}{
		{"web", palirria.Coord{X: 2, Y: 2}},
		{"batch", palirria.Coord{X: 6, Y: 2}},
		{"ml", palirria.Coord{X: 4, Y: 6}},
	} {
		root, err := palirria.WorkloadRoot(roots[jd.name], "sim32")
		if err != nil {
			return err
		}
		jobs = append(jobs, palirria.SimJob{
			Name:      jd.name,
			Source:    runMesh.ID(jd.src),
			Root:      root,
			Estimator: palirria.NewPalirria(),
		})
	}
	res, err := palirria.SimRunMulti(palirria.SimMultiConfig{
		Mesh: runMesh, Jobs: jobs, Quantum: 25000,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "machine makespan: %d cycles\n", res.MakespanCycles)
	for _, jr := range res.Jobs {
		fmt.Fprintf(out, "  %-6s finished at %9d cycles, peak %2d workers\n",
			jr.Name, jr.FinishCycles, jr.Timeline.Max())
	}
	return nil
}
