// Customworkload shows how to model your own application as a task tree
// with the palirria DSL and evaluate how each scheduler handles it — the
// workflow for deciding whether adaptive work-stealing fits a workload
// before committing to it.
//
// The modeled application is a two-stage pipeline with a serial bottleneck
// in the middle: a wide "extract" fan, a narrow "aggregate" chain, and a
// wide "report" fan. Fixed allotments waste workers during the bottleneck;
// Palirria releases them and re-acquires them for the second fan.
package main

import (
	"fmt"
	"log"

	"palirria"
)

// fan builds a nested fork/join over n leaves of the given grain.
func fan(n int, grain int64) *palirria.TaskSpec {
	if n <= 1 {
		return palirria.Leaf("leaf", grain)
	}
	return &palirria.TaskSpec{
		Label: "fan",
		Ops: []palirria.TaskOp{
			palirria.Spawn(func() *palirria.TaskSpec { return fan(n/2, grain) }),
			palirria.Call(func() *palirria.TaskSpec { return fan(n-n/2, grain) }),
			palirria.Sync(),
		},
	}
}

// pipeline: extract (wide) -> aggregate (serial chain) -> report (wide).
func pipeline() *palirria.TaskSpec {
	return &palirria.TaskSpec{
		Label: "pipeline",
		Ops: []palirria.TaskOp{
			palirria.Call(func() *palirria.TaskSpec { return fan(512, 3000) }),
			// The serial aggregation bottleneck.
			palirria.Compute(400_000),
			palirria.Call(func() *palirria.TaskSpec { return fan(512, 3000) }),
		},
	}
}

func main() {
	fmt.Println("custom pipeline workload under the three schedulers (32-core platform):")
	type row struct {
		sched string
		rep   *palirria.Report
	}
	var rows []row
	for _, sched := range []string{"wool", "asteal", "palirria"} {
		rep, err := palirria.RunSim(palirria.SimConfig{
			Root:      pipeline(),
			Scheduler: sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{sched, rep})
	}
	base := float64(rows[0].rep.ExecCycles)
	for _, r := range rows {
		fmt.Printf("  %-8s exec=%8d (%.0f%%)  avg workers %4.1f  waste %4.1f%%  worker-cycles %d\n",
			r.sched, r.rep.ExecCycles, 100*float64(r.rep.ExecCycles)/base,
			r.rep.AvgWorkers, r.rep.WastefulnessPercent,
			int64(r.rep.AvgWorkers*float64(r.rep.ExecCycles)))
	}

	fmt.Println("\npalirria's allotment through the pipeline phases:")
	for _, p := range rows[2].rep.Timeline.Points() {
		fmt.Printf("  t=%8d -> %2d workers\n", p.Time, p.Workers)
	}
	fmt.Println("\nnote the shrink during the serial bottleneck and the regrowth for the second fan.")
}
