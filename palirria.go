// Package palirria is a from-scratch reproduction of "Palirria: Accurate
// On-line Parallelism Estimation for Adaptive Work-Stealing" (Varisteas &
// Brorsson, PMAM/PPoPP 2014).
//
// It provides:
//
//   - a WOOL-style work-stealing runtime in two flavours — a deterministic
//     discrete-event simulator (Sim*) that reproduces the paper's
//     evaluation platforms, and a real goroutine-based runtime (package
//     palirria/internal/wsrt via the RT* API) for actually running Go
//     code;
//   - Deterministic Victim Selection (DVS) over 1D/2D/3D mesh topologies,
//     with the X/Z/F worker classification of the paper;
//   - the Palirria estimator (Diaspora Malleability Conditions) and the
//     ASTEAL baseline estimator, both driving a zone-granular system
//     scheduler;
//   - the paper's seven evaluation workloads plus synthetic extras, and a
//     harness regenerating every figure and table of the evaluation
//     (cmd/palirria-bench);
//   - a persistent serving layer (Pool, Tenancy) that keeps the real
//     runtime resident between jobs, with estimator-driven admission
//     control and multi-tenant arbitration (cmd/palirria-serve).
//
// Quick start:
//
//	rep, err := palirria.RunSim(palirria.SimConfig{
//	    Platform:  "sim32",
//	    Workload:  "fib",
//	    Scheduler: "palirria",
//	})
//
// Lower-level control is available through the aliased subsystem types
// below (Mesh, Allotment, TaskSpec, SimRunConfig, ...).
package palirria

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"palirria/internal/asteal"
	"palirria/internal/core"
	"palirria/internal/metrics"
	"palirria/internal/obs"
	"palirria/internal/plot"
	"palirria/internal/saws"
	"palirria/internal/serve"
	"palirria/internal/sim"
	"palirria/internal/sysched"
	"palirria/internal/task"
	"palirria/internal/topo"
	"palirria/internal/trace"
	"palirria/internal/workload"
	"palirria/internal/wsrt"
)

// --- Re-exported subsystem types ----------------------------------------

// Mesh is a 1-3 dimensional processor grid; see NewMesh.
type Mesh = topo.Mesh

// CoreID identifies a core on a mesh.
type CoreID = topo.CoreID

// Coord is a mesh position.
type Coord = topo.Coord

// Allotment is a workload's worker set.
type Allotment = topo.Allotment

// Classification is the X/Z/F classification of an allotment.
type Classification = topo.Classification

// TaskSpec describes one task of a fork/join program.
type TaskSpec = task.Spec

// TaskOp is one operation of a task program.
type TaskOp = task.Op

// TaskBuilder lazily produces a child task.
type TaskBuilder = task.Builder

// Estimator is the per-quantum resource estimation interface.
type Estimator = core.Estimator

// Snapshot is an estimator's view of the allotment at a quantum boundary.
type Snapshot = core.Snapshot

// WorkerStats is the per-worker cycle accounting.
type WorkerStats = metrics.WorkerStats

// MetricsReport is the aggregated per-run accounting, with a shared table
// renderer (String/WriteTable).
type MetricsReport = metrics.Report

// ObsTrace is a drained observability trace; its WriteChrome method emits
// Chrome trace_event JSON for chrome://tracing and Perfetto.
type ObsTrace = obs.TraceData

// EstimatorSnapshot is one quantum's estimator introspection record.
type EstimatorSnapshot = obs.EstimatorSnapshot

// ObsTracer is the structured event tracer shared by both runtimes; see
// NewObsTracer.
type ObsTracer = obs.Tracer

// ObsRegistry is the dependency-free metrics registry behind ServeObs.
type ObsRegistry = obs.Registry

// ObsServer is the live observability HTTP server returned by ServeObs.
type ObsServer = obs.Server

// NewObsTracer builds an event tracer for the real runtime
// (RTConfig.Tracer). ticksPerMicro converts timestamps to microseconds in
// Chrome exports: pass 1000 for the real runtime's nanosecond clocks.
func NewObsTracer(ticksPerMicro float64) *ObsTracer {
	return obs.NewTracer(obs.WithTicksPerMicro(ticksPerMicro))
}

// NewObsRegistry builds an empty metrics registry (RTConfig.Metrics).
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// ServeObs starts the observability HTTP server (Prometheus /metrics,
// expvar, pprof) on addr; see obs.Serve.
func ServeObs(addr string, reg *ObsRegistry) (*ObsServer, error) {
	return obs.Serve(addr, reg)
}

// Timeline is the allotment-size-over-time trace.
type Timeline = trace.Timeline

// SimRunConfig is the full low-level simulator configuration.
type SimRunConfig = sim.Config

// SimResult is the raw simulator outcome.
type SimResult = sim.Result

// SimCosts is the runtime cost model of the simulator.
type SimCosts = sim.Costs

// NewMesh builds a mesh topology with the given extents (1-3 dimensions).
func NewMesh(dims ...int) (*Mesh, error) { return topo.NewMesh(dims...) }

// NewAllotment builds the complete allotment of diaspora d around source.
func NewAllotment(m *Mesh, source CoreID, d int) (*Allotment, error) {
	return topo.NewAllotment(m, source, d)
}

// Classify computes the X/Z/F classification of an allotment.
func Classify(a *Allotment) *Classification { return topo.Classify(a) }

// NewPalirria returns the paper's estimator.
func NewPalirria() Estimator { return core.NewPalirria() }

// NewASteal returns the ASTEAL baseline estimator.
func NewASteal() Estimator { return asteal.New() }

// NewSAWS returns the sampling-based queue estimator after Cao et al.
// (HPCC 2011), the third estimator family the paper discusses.
func NewSAWS(seed uint64) Estimator { return saws.New(seed) }

// Task DSL constructors, re-exported for custom workloads.
var (
	// Compute returns a compute op of w cycles.
	Compute = task.Compute
	// Spawn returns a spawn op (stealable child).
	Spawn = task.Spawn
	// Call returns an inline-call op.
	Call = task.Call
	// Sync returns a join of the youngest outstanding spawn.
	Sync = task.Sync
	// Leaf returns a compute-only task.
	Leaf = task.Leaf
	// SpawnJoin builds the common fan-out/join pattern.
	SpawnJoin = task.SpawnJoin
)

// Workloads returns the names of the built-in workloads.
func Workloads() []string { return workload.Names() }

// WorkloadRoot builds the root task of a built-in workload for the given
// platform ("sim32" or "numa48").
func WorkloadRoot(name, platform string) (*TaskSpec, error) {
	d, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	switch platform {
	case "", "sim32":
		return d.Root(workload.Simulator), nil
	case "numa48":
		return d.Root(workload.NUMA), nil
	default:
		return nil, fmt.Errorf("palirria: unknown platform %q (sim32, numa48)", platform)
	}
}

// SimRun executes a fully custom simulator configuration.
func SimRun(cfg SimRunConfig) (*SimResult, error) { return sim.Run(cfg) }

// SimJob describes one application of a multiprogrammed simulation.
type SimJob = sim.Job

// SimMultiConfig configures a multiprogrammed simulation: several jobs
// co-scheduled on one mesh through the arbiter (the paper's §8 next step).
type SimMultiConfig = sim.MultiConfig

// SimMultiResult is a multiprogrammed run's outcome.
type SimMultiResult = sim.MultiResult

// SimRunMulti executes a multiprogrammed simulation.
func SimRunMulti(cfg SimMultiConfig) (*SimMultiResult, error) { return sim.RunMulti(cfg) }

// --- Real-threads runtime (package wsrt) ---------------------------------

// RTConfig configures the real goroutine-based work-stealing runtime.
type RTConfig = wsrt.Config

// RTCtx is the per-task context of the real runtime (Spawn/Sync/Compute).
type RTCtx = wsrt.Ctx

// RTFunc is a task body for the real runtime.
type RTFunc = wsrt.Func

// RTReport is a real-runtime run report.
type RTReport = wsrt.Report

// RTRuntime is a single-use real-threads runtime instance.
type RTRuntime = wsrt.Runtime

// RTJob pairs a task body with its completion callback for RTRuntime's
// batched submission path (SubmitBatch).
type RTJob = wsrt.Job

// NewRuntime builds a real-threads work-stealing runtime.
func NewRuntime(cfg RTConfig) (*RTRuntime, error) { return wsrt.New(cfg) }

// SpecTask adapts a task tree to the real runtime.
func SpecTask(s *TaskSpec) RTFunc { return wsrt.SpecFunc(s) }

// RTFuture is a typed future over the WOOL spawn/sync discipline; see
// GoRT. Futures join in LIFO order (youngest first).
type RTFuture[T any] struct{ inner *wsrt.Future[T] }

// GoRT spawns fn as a stealable task on the real runtime and returns a
// future for its result.
func GoRT[T any](c *RTCtx, fn func(*RTCtx) T) RTFuture[T] {
	return RTFuture[T]{inner: wsrt.Go(c, fn)}
}

// Join waits for (or inlines) the computation and returns its value. It
// must be called in LIFO order among the task's outstanding spawns.
func (f RTFuture[T]) Join(c *RTCtx) T { return f.inner.Join(c) }

// Real-runtime sentinel errors, re-exported for callers of the facade
// (internal/wsrt is unimportable from outside the module).
var (
	// ErrAlreadyUsed reports a second Run (or a Start after Run) on a
	// single-use runtime.
	ErrAlreadyUsed = wsrt.ErrAlreadyUsed
	// ErrNotPersistent reports Submit/Shutdown on a batch-mode runtime.
	ErrNotPersistent = wsrt.ErrNotPersistent
	// ErrRuntimeClosed reports Submit after Shutdown.
	ErrRuntimeClosed = wsrt.ErrClosed
	// ErrSubmitQueueFull reports that the aggregate bound on
	// submitted-but-unstarted jobs (across the per-worker injection
	// shards) is saturated.
	ErrSubmitQueueFull = wsrt.ErrSubmitQueueFull
)

// --- Serving layer (package serve) ---------------------------------------

// Pool is a persistent serving pool: a resident real runtime admitting a
// continuous stream of fork/join jobs with bounded queues, estimator-driven
// load shedding, and graceful drain. See NewPool.
type Pool = serve.Pool

// PoolConfig configures a serving pool.
type PoolConfig = serve.Config

// PoolStats is a point-in-time snapshot of a pool's serving counters.
type PoolStats = serve.Stats

// Tenancy redistributes worker shares among several resident pools over
// one machine model (the paper's Fig. 2 two-level architecture, live).
type Tenancy = serve.Tenancy

// TenantStatus is one tenant's arbitration state.
type TenantStatus = serve.TenantStatus

// Serving-layer sentinel errors returned by Pool.Submit.
var (
	// ErrQueueFull reports a full admission queue.
	ErrQueueFull = serve.ErrQueueFull
	// ErrOverloaded reports estimator-driven load shedding.
	ErrOverloaded = serve.ErrOverloaded
	// ErrDraining reports a pool that no longer admits work.
	ErrDraining = serve.ErrDraining
	// ErrDiscarded reports a job discarded at shutdown before it ran.
	ErrDiscarded = serve.ErrDiscarded
)

// NewPool builds a serving pool and starts its resident runtime.
func NewPool(cfg PoolConfig) (*Pool, error) { return serve.New(cfg) }

// NewTenancy builds a multi-tenant arbitration loop over the machine
// model; interval is the re-arbitration period (<= 0 for the default).
func NewTenancy(machine *Mesh, interval time.Duration) *Tenancy {
	return serve.NewTenancy(machine, interval)
}

// --- Multiprogramming (package sysched) ----------------------------------

// Arbiter co-schedules several applications on one mesh (paper Fig. 2).
type Arbiter = sysched.Arbiter

// App is one application registered with an Arbiter.
type App = sysched.App

// NewArbiter returns an arbiter over mesh.
func NewArbiter(m *Mesh) *Arbiter { return sysched.NewArbiter(m) }

// RenderClassGrid writes an allotment's DVS classification as a text grid
// (the paper's Figs. 1/9 style).
func RenderClassGrid(w io.Writer, title string, c *Classification) {
	plot.ClassGrid(w, title, c)
}

// RenderOwnership writes a mesh ownership map for several co-scheduled
// applications (the paper's Fig. 2 style).
func RenderOwnership(w io.Writer, title string, m *Mesh, apps []*Allotment) {
	plot.MultiClassGrid(w, title, m, apps)
}

// --- High-level API ------------------------------------------------------

// SimConfig is the high-level single-run configuration.
type SimConfig struct {
	// Platform selects the evaluation platform: "sim32" (ideal 32-core 8x4
	// mesh, the paper's Barrelfish simulator) or "numa48" (the 48-core
	// NUMA model of the paper's Linux machine). Default "sim32".
	Platform string
	// Workload names a built-in workload (see Workloads). Ignored when
	// Root is set.
	Workload string
	// Root optionally supplies a custom task tree.
	Root *TaskSpec
	// Scheduler selects "wool" (fixed allotment, random victims),
	// "asteal" (adaptive baseline) or "palirria" (DVS + DMC estimation).
	// Default "palirria".
	Scheduler string
	// FixedWorkers sets the allotment size for "wool" (default: platform
	// maximum). Adaptive schedulers start at 5 workers per the paper.
	FixedWorkers int
	// Quantum overrides the estimation interval in cycles.
	Quantum int64
	// Seed drives random victim selection.
	Seed uint64
	// TraceCap enables the scheduler event trace (0 = off).
	TraceCap int
	// Observe enables full observability: Report.Obs holds the drained
	// trace, exportable as Chrome trace JSON.
	Observe bool
	// Introspect records per-quantum estimator snapshots into
	// Report.EstimatorTrace.
	Introspect bool
}

// Report is the high-level outcome of a run.
type Report struct {
	// ExecCycles is the execution time measured at the source worker.
	ExecCycles int64
	// MaxWorkers is the peak allotment size.
	MaxWorkers int
	// AvgWorkers is the time-averaged allotment size.
	AvgWorkers float64
	// WastefulnessPercent is the paper's wasted-cycles metric.
	WastefulnessPercent float64
	// Steals and FailedProbes aggregate the steal activity.
	Steals, FailedProbes int64
	// Tasks counts executed tasks.
	Tasks int64
	// Timeline is the allotment size over time.
	Timeline *Timeline
	// Workers holds the per-core statistics.
	Workers map[CoreID]*WorkerStats
	// Trace holds scheduler events when SimConfig.TraceCap > 0.
	Trace []SimTraceEvent
	// Metrics is the aggregated accounting with the shared table renderer.
	Metrics *MetricsReport
	// Obs is the drained observability trace (SimConfig.Observe).
	Obs *ObsTrace
	// EstimatorTrace holds the per-quantum estimator introspection
	// snapshots (SimConfig.Introspect).
	EstimatorTrace []EstimatorSnapshot
}

// RunSim executes the high-level configuration on the simulator.
func RunSim(cfg SimConfig) (*Report, error) {
	var mesh *Mesh
	var source CoreID
	var maxD int
	var machine sim.MachineModel
	var wp workload.Platform
	switch cfg.Platform {
	case "", "sim32":
		mesh = topo.MustMesh(8, 4)
		mesh.Reserve(0, 1)
		source, maxD, wp = 20, 4, workload.Simulator
		machine = sim.Ideal{}
	case "numa48":
		mesh = topo.MustMesh(8, 6)
		mesh.Reserve(0, 1, 2)
		source, maxD, wp = 28, 6, workload.NUMA
		machine = sim.NewNUMA(mesh)
	default:
		return nil, fmt.Errorf("palirria: unknown platform %q (sim32, numa48)", cfg.Platform)
	}
	root := cfg.Root
	if root == nil {
		d, err := workload.Get(cfg.Workload)
		if err != nil {
			return nil, err
		}
		root = d.Root(wp)
	}
	rc := sim.Config{
		Mesh:        mesh,
		Source:      source,
		Root:        root,
		Machine:     machine,
		MaxDiaspora: maxD,
		Quantum:     cfg.Quantum,
		Seed:        cfg.Seed,
		TraceCap:    cfg.TraceCap,
		Observe:     cfg.Observe,
		Introspect:  cfg.Introspect,
	}
	switch cfg.Scheduler {
	case "wool":
		rc.InitialDiaspora = maxD
		if size := cfg.FixedWorkers; size != 0 {
			dd, a, ok := topo.DiasporaForSize(mesh, source, size)
			if !ok || dd > maxD || a.Size() < size {
				return nil, fmt.Errorf("palirria: no allotment of size %d within the platform cap", size)
			}
			rc.InitialDiaspora = dd
		}
		rc.Policy = "random"
	case "asteal":
		rc.InitialDiaspora = 1
		rc.Policy = "random"
		rc.Estimator = asteal.New()
	case "", "palirria":
		rc.InitialDiaspora = 1
		rc.Policy = "dvs"
		rc.Estimator = core.NewPalirria()
	default:
		return nil, fmt.Errorf("palirria: unknown scheduler %q (wool, asteal, palirria)", cfg.Scheduler)
	}
	res, err := sim.Run(rc)
	if err != nil {
		return nil, err
	}
	rep := res.Report()
	out := &Report{
		ExecCycles:          res.ExecCycles,
		MaxWorkers:          rep.MaxWorkers,
		WastefulnessPercent: rep.WastefulnessPercent(),
		Steals:              rep.TotalSteals,
		FailedProbes:        rep.TotalFailedProbes,
		Tasks:               rep.TotalTasks,
		Timeline:            res.Timeline,
		Workers:             res.Workers,
		Metrics:             rep,
		Obs:                 res.Obs,
		EstimatorTrace:      res.EstimatorTrace,
	}
	out.Trace = res.Trace
	if res.ExecCycles > 0 {
		out.AvgWorkers = float64(res.Timeline.Area(res.ExecCycles)) / float64(res.ExecCycles)
	}
	return out, nil
}

// reportJSON is the serializable projection of a Report.
type reportJSON struct {
	ExecCycles          int64                   `json:"exec_cycles"`
	MaxWorkers          int                     `json:"max_workers"`
	AvgWorkers          float64                 `json:"avg_workers"`
	WastefulnessPercent float64                 `json:"wastefulness_percent"`
	Steals              int64                   `json:"steals"`
	FailedProbes        int64                   `json:"failed_probes"`
	Tasks               int64                   `json:"tasks"`
	Timeline            []timelinePointJSON     `json:"timeline"`
	Workers             map[int]workerJSON      `json:"workers"`
	EstimatorTrace      []obs.EstimatorSnapshot `json:"estimator_trace,omitempty"`
}

type timelinePointJSON struct {
	Time    int64 `json:"time"`
	Workers int   `json:"workers"`
}

type workerJSON struct {
	Useful       int64            `json:"useful_cycles"`
	Wasted       int64            `json:"wasted_cycles"`
	Total        int64            `json:"total_cycles"`
	Tasks        int64            `json:"tasks"`
	Steals       int64            `json:"steals"`
	FailedProbes int64            `json:"failed_probes"`
	JoinedAt     int64            `json:"joined_at"`
	RetiredAt    int64            `json:"retired_at"`
	Cycles       map[string]int64 `json:"cycles"`
}

// JSON serializes the report for downstream analysis tools.
func (r *Report) JSON() ([]byte, error) {
	out := reportJSON{
		ExecCycles:          r.ExecCycles,
		MaxWorkers:          r.MaxWorkers,
		AvgWorkers:          r.AvgWorkers,
		WastefulnessPercent: r.WastefulnessPercent,
		Steals:              r.Steals,
		FailedProbes:        r.FailedProbes,
		Tasks:               r.Tasks,
		Workers:             map[int]workerJSON{},
	}
	for _, p := range r.Timeline.Points() {
		out.Timeline = append(out.Timeline, timelinePointJSON{Time: p.Time, Workers: p.Workers})
	}
	for id, ws := range r.Workers {
		cycles := make(map[string]int64, metrics.NumCategories)
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			if v := ws.Cycles[c]; v != 0 {
				cycles[c.String()] = v
			}
		}
		out.Workers[int(id)] = workerJSON{
			Useful:       ws.Useful(),
			Wasted:       ws.Wasted(),
			Total:        ws.Total(),
			Tasks:        ws.TasksRun,
			Steals:       ws.Steals,
			FailedProbes: ws.FailedProbes,
			JoinedAt:     ws.JoinedAt,
			RetiredAt:    ws.RetiredAt,
			Cycles:       cycles,
		}
	}
	out.EstimatorTrace = r.EstimatorTrace
	return json.MarshalIndent(out, "", "  ")
}

// SimTraceEvent is one scheduler trace event.
type SimTraceEvent = sim.TraceEvent

// WriteSimTrace renders trace events, one per line.
func WriteSimTrace(w io.Writer, events []SimTraceEvent) { sim.WriteTrace(w, events) }
