package xrand

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the canonical C implementation.
	sm := NewSplitMix64(1234567)
	got := []uint64{sm.Next(), sm.Next(), sm.Next()}
	// Determinism check: a second generator with the same seed matches.
	sm2 := NewSplitMix64(1234567)
	for i, want := range got {
		if v := sm2.Next(); v != want {
			t.Fatalf("stream mismatch at %d: %d != %d", i, v, want)
		}
	}
}

func TestSplitMix64DistinctSeeds(t *testing.T) {
	a, b := NewSplitMix64(1), NewSplitMix64(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams from distinct seeds collided %d/100 times", same)
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := NewXoshiro256(42), NewXoshiro256(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("divergence at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	x := NewXoshiro256(7)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			v := x.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewXoshiro256(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-ish sanity check: each of 8 buckets should receive roughly
	// 1/8 of 80000 draws; allow generous 10% relative slack.
	x := NewXoshiro256(99)
	const buckets, draws = 8, 80000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[x.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range count {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d badly skewed: %d (want ~%d)", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(3)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := NewXoshiro256(11)
	for n := 0; n < 30; n++ {
		p := x.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	f := func(seed uint64, raw []int) bool {
		x := NewXoshiro256(seed)
		orig := append([]int(nil), raw...)
		x.Shuffle(raw)
		counts := map[int]int{}
		for _, v := range orig {
			counts[v]++
		}
		for _, v := range raw {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64MatchesBits(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		whi, wlo := bits.Mul64(a, b)
		return hi == whi && lo == wlo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Hash64(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}

func BenchmarkXoshiroNext(b *testing.B) {
	x := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = x.Next()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	x := NewXoshiro256(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = x.Intn(48)
	}
	_ = sink
}
