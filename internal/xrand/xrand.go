// Package xrand provides small, deterministic pseudo-random number
// generators used throughout the simulator and the runtime.
//
// The standard library's math/rand is deliberately avoided for simulation
// state: its global source is not reproducible under concurrent use and its
// algorithm is not guaranteed stable across Go releases. Determinism is a
// design requirement (see DESIGN.md §5): identical configurations must
// produce bit-identical results, because the benchmark harness compares runs
// across schedulers and the tests assert exact outcomes.
package xrand

// SplitMix64 is the Vigna splitmix64 generator. It passes BigCrush, has a
// period of 2^64 and is seedable from any 64-bit value, which makes it ideal
// both as a stand-alone stream and as a seeder for Xoshiro256.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements xoshiro256** by Blackman and Vigna: fast, tiny state,
// and high statistical quality. One instance per simulated worker keeps
// random victim selection independent of event interleaving.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is expanded from seed with
// SplitMix64, per the authors' recommendation. A zero seed is valid.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// The all-zero state is the one invalid state; SplitMix64 cannot emit
	// four consecutive zeros, but guard anyway for clarity.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 1
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Next returns the next 64-bit value in the stream.
func (x *Xoshiro256) Next() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	bound := uint64(n)
	for {
		v := x.Next()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	x.Shuffle(p)
	return p
}

// Shuffle permutes p in place using the Fisher-Yates algorithm.
func (x *Xoshiro256) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo). Written out
// explicitly so the package has no dependency on math/bits semantics
// changing (it mirrors bits.Mul64).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Hash64 mixes a 64-bit value through the SplitMix64 finalizer. Useful for
// deriving independent per-entity seeds from a base seed and an index.
func Hash64(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}
