package core

// Filter implements the system-level false-positive logic the paper
// describes in §3: "there is logic implemented to identify specific
// patterns and discard false positives. This mechanism is part of the
// system level, it is independent of the runtime scheduler in place and
// thus the same for both ASTEAL and Palirria implementations."
//
// The pattern it discards is a short burst misread as prolonged behaviour:
// a direction (grow or shrink) must be confirmed for a configurable number
// of consecutive quanta before it is forwarded to the allotment manager.
// Any quantum that breaks the streak resets it. Increases default to
// immediate (missing a burst of parallelism costs performance), decreases
// default to two consecutive confirmations (removing workers on a transient
// dip costs much more to undo).
type Filter struct {
	// ConfirmIncrease is the number of consecutive Increase estimates
	// needed before an increase passes. Minimum 1.
	ConfirmIncrease int
	// ConfirmDecrease is the analogous count for decreases. Minimum 1.
	ConfirmDecrease int

	streak    Decision
	streakLen int
}

// NewFilter returns the default filter (increase immediate, decrease
// debounced over 2 quanta).
func NewFilter() *Filter {
	return &Filter{ConfirmIncrease: 1, ConfirmDecrease: 2}
}

// Apply feeds one per-quantum estimate through the filter. current is the
// present allotment size, desired the estimator's answer; the return value
// is the size to actually request from the system layer.
func (f *Filter) Apply(current, desired int) int {
	d := DecisionOf(current, desired)
	if d == Keep {
		f.streak, f.streakLen = Keep, 0
		return current
	}
	if d == f.streak {
		f.streakLen++
	} else {
		f.streak, f.streakLen = d, 1
	}
	need := f.ConfirmIncrease
	if d == Decrease {
		need = f.ConfirmDecrease
	}
	if need < 1 {
		need = 1
	}
	if f.streakLen >= need {
		f.streakLen = 0 // a fresh change starts a fresh streak
		f.streak = Keep
		return desired
	}
	return current
}

// Reset clears the filter's streak state.
func (f *Filter) Reset() { f.streak, f.streakLen = Keep, 0 }

// Controller combines an estimator with the false-positive filter. Both
// execution platforms drive it once per quantum.
type Controller struct {
	// Est is the wrapped estimator.
	Est Estimator
	// Filter is the false-positive filter; nil disables filtering (used by
	// the filter ablation).
	Filter *Filter

	decisions int
	last      StepInfo
}

// StepInfo records the two stages of one quantum's decision: the
// estimator's raw answer and what the false-positive filter let through.
// The observability layer reads it to make filtered decisions
// explainable.
type StepInfo struct {
	// Raw is the estimator's unfiltered desired worker count.
	Raw int
	// Filtered is the count forwarded to the system layer.
	Filtered int
}

// NewController returns a controller over est with the default filter.
func NewController(est Estimator) *Controller {
	return &Controller{Est: est, Filter: NewFilter()}
}

// Step runs one quantum: estimate, filter, and return the worker count to
// request. Callers must afterwards inform the estimator of the actual grant
// via Granted.
func (c *Controller) Step(s *Snapshot) int {
	c.decisions++
	desired := c.Est.Estimate(s)
	c.last.Raw = desired
	if c.Filter != nil {
		desired = c.Filter.Apply(s.Allotment.Size(), desired)
	}
	c.last.Filtered = desired
	return desired
}

// Last returns the raw and filtered desire of the most recent Step.
func (c *Controller) Last() StepInfo { return c.last }

// Granted forwards the grant outcome to the estimator.
func (c *Controller) Granted(workers int) { c.Est.Granted(workers) }

// Decisions returns the number of quanta processed.
func (c *Controller) Decisions() int { return c.decisions }
