package core

import "testing"

func TestFilterIncreaseImmediate(t *testing.T) {
	f := NewFilter()
	if got := f.Apply(5, 12); got != 12 {
		t.Fatalf("Apply(5,12) = %d, want 12 (increase passes immediately)", got)
	}
}

func TestFilterDecreaseDebounced(t *testing.T) {
	f := NewFilter()
	if got := f.Apply(12, 5); got != 12 {
		t.Fatalf("first decrease passed: %d", got)
	}
	if got := f.Apply(12, 5); got != 5 {
		t.Fatalf("second consecutive decrease blocked: %d", got)
	}
}

func TestFilterStreakBrokenByKeep(t *testing.T) {
	f := NewFilter()
	f.Apply(12, 5)  // decrease #1
	f.Apply(12, 12) // keep resets the streak
	if got := f.Apply(12, 5); got != 12 {
		t.Fatalf("decrease after broken streak passed: %d", got)
	}
	if got := f.Apply(12, 5); got != 5 {
		t.Fatalf("second decrease after reset blocked: %d", got)
	}
}

func TestFilterStreakBrokenByOpposite(t *testing.T) {
	f := NewFilter()
	f.Apply(12, 5) // decrease #1
	// An increase interrupts: passes immediately and resets.
	if got := f.Apply(12, 20); got != 20 {
		t.Fatalf("increase blocked: %d", got)
	}
	if got := f.Apply(20, 12); got != 20 {
		t.Fatalf("decrease #1 after increase passed: %d", got)
	}
}

func TestFilterConfiguredCounts(t *testing.T) {
	f := &Filter{ConfirmIncrease: 3, ConfirmDecrease: 1}
	if got := f.Apply(5, 12); got != 5 {
		t.Fatal("increase 1/3 passed")
	}
	if got := f.Apply(5, 12); got != 5 {
		t.Fatal("increase 2/3 passed")
	}
	if got := f.Apply(5, 12); got != 12 {
		t.Fatal("increase 3/3 blocked")
	}
	if got := f.Apply(12, 5); got != 5 {
		t.Fatal("decrease with confirm=1 blocked")
	}
}

func TestFilterZeroCountClamped(t *testing.T) {
	f := &Filter{ConfirmIncrease: 0, ConfirmDecrease: 0}
	if got := f.Apply(5, 12); got != 12 {
		t.Fatal("confirm 0 must behave like 1")
	}
}

func TestFilterReset(t *testing.T) {
	f := NewFilter()
	f.Apply(12, 5)
	f.Reset()
	if got := f.Apply(12, 5); got != 12 {
		t.Fatal("reset did not clear the streak")
	}
}

// fakeEst returns a scripted sequence of desires.
type fakeEst struct {
	script  []int
	i       int
	granted []int
}

func (f *fakeEst) Name() string { return "fake" }
func (f *fakeEst) Estimate(s *Snapshot) int {
	v := f.script[f.i%len(f.script)]
	f.i++
	return v
}
func (f *fakeEst) Granted(w int) { f.granted = append(f.granted, w) }

func TestControllerStepAndGranted(t *testing.T) {
	est := &fakeEst{script: []int{12, 5, 5}}
	c := NewController(est)
	s := snap(t, 1, nil) // size 5
	if got := c.Step(s); got != 12 {
		t.Fatalf("step 1 = %d, want 12", got)
	}
	c.Granted(12)
	// Decrease takes two consecutive quanta through the default filter.
	s12 := snap(t, 2, nil)
	if got := c.Step(s12); got != 12 {
		t.Fatalf("step 2 = %d, want filtered 12", got)
	}
	if got := c.Step(s12); got != 5 {
		t.Fatalf("step 3 = %d, want 5", got)
	}
	if c.Decisions() != 3 {
		t.Fatalf("Decisions = %d, want 3", c.Decisions())
	}
	if len(est.granted) != 1 || est.granted[0] != 12 {
		t.Fatalf("granted log = %v", est.granted)
	}
}

func TestControllerNilFilter(t *testing.T) {
	est := &fakeEst{script: []int{5}}
	c := &Controller{Est: est}
	s := snap(t, 2, nil) // size 12
	if got := c.Step(s); got != 5 {
		t.Fatalf("unfiltered step = %d, want raw 5", got)
	}
}
