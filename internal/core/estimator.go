// Package core contains the paper's primary contribution: the Palirria
// resource estimator built on the Diaspora Malleability Conditions (DMC),
// together with the estimator interface both execution platforms drive and
// the quantum controller that invokes estimators on a fixed interval.
//
// The two-level architecture of the paper splits scheduling into the
// application layer — the work-stealing runtime plus an estimator that
// infers the workload's true resource requirements — and the system layer,
// which owns worker grants (package sysched). Estimators see the world only
// through a Snapshot taken at the end of each quantum and answer with the
// worker count they can utilize.
package core

import (
	"fmt"

	"palirria/internal/topo"
)

// WorkerSnapshot is one worker's state at a quantum boundary.
type WorkerSnapshot struct {
	// ID is the worker's core.
	ID topo.CoreID
	// QueueLen is µ(Q) at the quantum boundary: the number of stealable
	// tasks in the worker's queue right now.
	QueueLen int
	// MaxQueueLen is the high-water mark of µ(Q) during the ending
	// quantum, maintained for free by the spawn operation ("its
	// calculation is performed during the spawn and sync operations",
	// §1). The DMC increase condition reads this mark: it asks whether
	// work flowed through the worker beyond its threshold at any point,
	// not whether the sampling instant happened to catch it.
	MaxQueueLen int
	// Busy reports that the worker is executing a task at the boundary.
	// The DMC decrease condition treats a worker as underutilized only
	// when its bag is empty: no queued tasks and nothing in execution — a
	// rim worker midway through a long leaf is utilized even though its
	// queue is empty.
	Busy bool
	// WastedCycles is the worker's wasted cycles during the ending quantum
	// under ASTEAL's definition: searching for work plus conducting
	// successful steals.
	WastedCycles int64
	// Draining reports that the worker was removed and is finishing its
	// remaining queue.
	Draining bool
}

// Snapshot is the estimator's complete view at a quantum boundary.
type Snapshot struct {
	// Allotment is the currently granted allotment (draining workers
	// excluded).
	Allotment *topo.Allotment
	// Class is the classification of Allotment.
	Class *topo.Classification
	// Workers holds per-worker state for every granted member, indexed by
	// core id (absent cores map to nil).
	Workers map[topo.CoreID]*WorkerSnapshot
	// QuantumCycles is the quantum length in cycles.
	QuantumCycles int64
	// Time is the current simulation or wall time in cycles.
	Time int64
}

// Estimator estimates a workload's resource requirements once per quantum.
type Estimator interface {
	// Name identifies the estimator in reports ("palirria", "asteal").
	Name() string
	// Estimate returns the desired total worker count for the next
	// quantum, given the end-of-quantum snapshot. The system layer grants
	// whole zones, so the returned value is a target the grant rounds.
	Estimate(s *Snapshot) int
	// Granted informs the estimator of the system's decision: the worker
	// count actually allotted for the next quantum. ASTEAL derives its
	// satisfied/deprived classification from this.
	Granted(workers int)
}

// Decision is the coarse direction of an estimate, used in traces.
type Decision int

const (
	// Decrease shrinks the allotment by one zone.
	Decrease Decision = iota - 1
	// Keep leaves the allotment unchanged.
	Keep
	// Increase grows the allotment by one zone.
	Increase
)

// String renders the decision.
func (d Decision) String() string {
	switch d {
	case Decrease:
		return "decrease"
	case Keep:
		return "keep"
	case Increase:
		return "increase"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// DecisionOf classifies a desired worker count against the current size.
func DecisionOf(current, desired int) Decision {
	switch {
	case desired < current:
		return Decrease
	case desired > current:
		return Increase
	default:
		return Keep
	}
}
