package core

import "palirria/internal/topo"

// IntrospectedWorker is one worker's state annotated with everything the
// estimator derived from it: the DVS class and the DMC threshold for
// Palirria, the wasted-cycle contribution for ASTEAL.
type IntrospectedWorker struct {
	// ID is the worker's core.
	ID topo.CoreID
	// Class is the DVS region label ("s", "X", "Z", "XZ", "F"); empty for
	// estimators without a classification.
	Class string
	// QueueLen and MaxQueueLen are µ(Q) at the boundary and its quantum
	// high-water mark.
	QueueLen, MaxQueueLen int
	// ThresholdL is L_i = µ(O_i)+offset for workers the increase
	// condition inspects (0 otherwise).
	ThresholdL int
	// Busy and Draining mirror the snapshot flags.
	Busy, Draining bool
	// WastedCycles is the quantum's wasted work (ASTEAL's definition).
	WastedCycles int64
}

// Introspection explains one estimate: the per-worker view the estimator
// evaluated and the scalar inputs behind its decision.
type Introspection struct {
	// Decision is the coarse direction the estimator concluded.
	Decision Decision
	// Workers is the annotated per-worker view over the allotment.
	Workers []IntrospectedWorker
	// Inputs carries estimator-specific scalars (see each estimator's
	// Introspect for the key set).
	Inputs map[string]float64
}

// Introspector is the optional estimator extension the observability
// layer drives: estimators that can explain their decisions implement it.
// Introspect must not disturb estimator state beyond what a repeated
// Decide would, and is only called at quantum boundaries.
type Introspector interface {
	Introspect(s *Snapshot) *Introspection
}

var _ Introspector = (*Palirria)(nil)

// Introspect implements Introspector: it re-evaluates the DMC and
// annotates every allotment member with its class, queue counts and
// threshold, making the increase/decrease verdicts checkable by hand.
// Inputs: x_workers, z_workers, inspected.
func (p *Palirria) Introspect(s *Snapshot) *Introspection {
	in := &Introspection{
		Decision: p.Decide(s),
		Inputs: map[string]float64{
			"x_workers": float64(len(s.Class.X())),
			"z_workers": float64(len(s.Class.Z())),
			"inspected": float64(p.lastInspected),
		},
	}
	for _, id := range s.Allotment.Members() {
		iw := IntrospectedWorker{ID: id, Class: s.Class.Class(id).String()}
		if ws := s.Workers[id]; ws != nil {
			iw.QueueLen = ws.QueueLen
			iw.MaxQueueLen = ws.MaxQueueLen
			iw.Busy = ws.Busy
			iw.Draining = ws.Draining
			iw.WastedCycles = ws.WastedCycles
		}
		if s.Class.Class(id).IsX() {
			iw.ThresholdL = p.ThresholdL(s, id)
		}
		in.Workers = append(in.Workers, iw)
	}
	return in
}
