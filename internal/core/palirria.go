package core

import "palirria/internal/topo"

// Palirria implements the paper's estimator. It requires Deterministic
// Victim Selection: DVS makes the distribution and concentration of tasks
// across the allotment predictable, which is what lets simple conditions on
// the task-queue sizes of two small worker subsets classify the utilization
// state of the whole workload (§3.2).
//
// The Diaspora Malleability Conditions (Claim 1, §4.1.1):
//
//	increase d  ⇔  µ(Q_i) > L_i  for every worker i in class X
//	decrease d  ⇔  µ(Q_i) = 0    for every worker i in class Z
//	balanced    otherwise
//
// with L_i bounded by µ(O_i), the number of outer-zone workers that steal
// from i. L_i = µ(O_i) guarantees that, at the moment of the increase,
// every prospective new worker has a task it can immediately steal; if
// those tasks are leaves the allotment shrinks again next quantum, and if
// not, the load flows outward fast, generating stealable work farther from
// the source.
//
// Because the queue sizes are maintained anyway by the spawn and sync
// operations, evaluating the DMC costs a handful of comparisons per quantum
// — the low-overhead property the paper claims over cycle-counter
// estimators. EstimateCost in this package exposes the number of workers
// inspected so the overhead ablation can report it.
type Palirria struct {
	// LOffset tunes the threshold: L_i = µ(O_i) + LOffset. The paper notes
	// values like µ(O_i)+1 ("but not constant") tune the model's tolerance.
	// Zero reproduces the paper's configuration.
	LOffset int

	lastInspected int
}

var _ Estimator = (*Palirria)(nil)

// NewPalirria returns a Palirria estimator with the paper's configuration
// (L_i = µ(O_i)).
func NewPalirria() *Palirria { return &Palirria{} }

// Name implements Estimator.
func (p *Palirria) Name() string { return "palirria" }

// Estimate implements Estimator by evaluating the DMC.
func (p *Palirria) Estimate(s *Snapshot) int {
	cur := s.Allotment.Size()
	switch p.Decide(s) {
	case Increase:
		if next, ok := s.Allotment.Grow(); ok {
			return next.Size()
		}
		return cur
	case Decrease:
		if next, ok := s.Allotment.Shrink(); ok {
			return next.Size()
		}
		return cur
	default:
		return cur
	}
}

// Granted implements Estimator. Palirria derives nothing from the grant:
// its conditions are workload-specific, not runtime-specific.
func (p *Palirria) Granted(workers int) {}

// Decide evaluates the Diaspora Malleability Conditions on the snapshot.
func (p *Palirria) Decide(s *Snapshot) Decision {
	inspected := 0

	// Decrease condition: the bag of every worker in Z is empty — no
	// queued tasks and nothing in execution, i.e. the outermost zone is
	// found underutilized and can be removed without risking performance
	// (§4.1.1). Evaluated first: when both conditions hold simultaneously
	// (possible only for X∩Z members on minimal allotments with empty
	// queues) the workload is by definition not over-utilized.
	decrease := true
	for _, w := range s.Class.Z() {
		inspected++
		ws := s.Workers[w]
		if ws == nil {
			continue // not yet bootstrapped: treat as empty
		}
		if ws.QueueLen != 0 || ws.Busy {
			decrease = false
			break
		}
	}
	if decrease && len(s.Class.Z()) > 0 {
		p.lastInspected = inspected
		return Decrease
	}

	// Increase condition: µ(Q_i) > L_i for every worker in X, where
	// L_i = µ(O_i) + LOffset. The runtime maintains the quantum's µ(Q)
	// high-water mark during spawn operations; the condition holds when
	// work flowed through every X worker beyond its threshold during the
	// quantum.
	increase := true
	for _, w := range s.Class.X() {
		inspected++
		ws := s.Workers[w]
		if ws == nil {
			increase = false
			break
		}
		l := len(s.Class.OuterVictims(w)) + p.LOffset
		if ws.MaxQueueLen <= l {
			increase = false
			break
		}
	}
	p.lastInspected = inspected
	if increase && len(s.Class.X()) > 0 {
		return Increase
	}
	return Keep
}

// EstimateCost returns the number of workers the last Decide inspected —
// the estimation overhead metric for the ablation benchmarks. It is always
// at most |X| + |Z|, a small, specific subset of the allotment.
func (p *Palirria) EstimateCost() int { return p.lastInspected }

// ThresholdL returns L_i for worker w under this configuration. Exposed
// for tests and the L-sensitivity ablation.
func (p *Palirria) ThresholdL(s *Snapshot, w topo.CoreID) int {
	return len(s.Class.OuterVictims(w)) + p.LOffset
}
