package core

import (
	"testing"

	"palirria/internal/topo"
)

// snap builds a Snapshot over the standard 8x4 simulator platform with the
// given diaspora; fill sets per-worker queue lengths.
func snap(t testing.TB, d int, fill func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot)) *Snapshot {
	t.Helper()
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	a, err := topo.NewAllotment(m, 20, d)
	if err != nil {
		t.Fatal(err)
	}
	c := topo.Classify(a)
	ws := make(map[topo.CoreID]*WorkerSnapshot, a.Size())
	for _, id := range a.Members() {
		ws[id] = &WorkerSnapshot{ID: id}
	}
	if fill != nil {
		fill(c, ws)
	}
	// Mirror the platforms: the boundary value counts toward the quantum's
	// high-water mark.
	for _, s := range ws {
		if s.QueueLen > s.MaxQueueLen {
			s.MaxQueueLen = s.QueueLen
		}
	}
	return &Snapshot{
		Allotment:     a,
		Class:         c,
		Workers:       ws,
		QuantumCycles: 50000,
	}
}

func TestPalirriaDecreaseWhenZEmpty(t *testing.T) {
	// All Z queues empty, some F/X queues non-empty: decrease.
	p := NewPalirria()
	s := snap(t, 3, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		for _, w := range c.X() {
			if !c.Class(w).IsZ() {
				ws[w].QueueLen = 5
			}
		}
		for _, w := range c.F() {
			ws[w].QueueLen = 2
		}
		// Z members all 0 by default.
	})
	if got := p.Decide(s); got != Decrease {
		t.Fatalf("Decide = %v, want Decrease", got)
	}
	// Estimate maps decrease to the shrunk size (d=2 on 8x4 -> 12).
	if got := p.Estimate(s); got != 12 {
		t.Fatalf("Estimate = %d, want 12", got)
	}
}

func TestPalirriaIncreaseWhenXAboveL(t *testing.T) {
	p := NewPalirria()
	s := snap(t, 2, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		// Every X member's queue exceeds its L = µ(O_i); every Z member
		// keeps at least one task so the decrease condition fails.
		for _, w := range c.X() {
			ws[w].QueueLen = len(c.OuterVictims(w)) + 1
		}
		for _, w := range c.Z() {
			if ws[w].QueueLen == 0 {
				ws[w].QueueLen = 1
			}
		}
	})
	if got := p.Decide(s); got != Increase {
		t.Fatalf("Decide = %v, want Increase", got)
	}
	// d=2 (12 workers) grows to d=3 (20 workers) on the 8x4 platform.
	if got := p.Estimate(s); got != 20 {
		t.Fatalf("Estimate = %d, want 20", got)
	}
}

func TestPalirriaBalancedWhenOneXBelowL(t *testing.T) {
	p := NewPalirria()
	s := snap(t, 2, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		for i, w := range c.X() {
			if i == 0 {
				ws[w].QueueLen = 0 // this one breaks the increase condition
			} else {
				ws[w].QueueLen = len(c.OuterVictims(w)) + 2
			}
		}
		for _, w := range c.Z() {
			if ws[w].QueueLen == 0 {
				ws[w].QueueLen = 1
			}
		}
	})
	if got := p.Decide(s); got != Keep {
		t.Fatalf("Decide = %v, want Keep", got)
	}
	if got := p.Estimate(s); got != s.Allotment.Size() {
		t.Fatalf("Estimate = %d, want unchanged %d", got, s.Allotment.Size())
	}
}

func TestPalirriaBalancedWhenZNonEmptyAndXLow(t *testing.T) {
	p := NewPalirria()
	s := snap(t, 2, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		for _, w := range c.Z() {
			ws[w].QueueLen = 1
		}
	})
	if got := p.Decide(s); got != Keep {
		t.Fatalf("Decide = %v, want Keep", got)
	}
}

func TestPalirriaFiveWorkerLZero(t *testing.T) {
	// Paper §4.1.1: on the minimal allotment all workers are X with L = 0,
	// so "unless all their task-queues are empty, the allotment will always
	// increase"... as long as every X queue is non-empty.
	p := NewPalirria()
	s := snap(t, 1, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		for _, w := range c.X() {
			ws[w].QueueLen = 1 // one task suffices: L = µ(O) = 0
		}
	})
	for _, w := range s.Class.X() {
		if l := p.ThresholdL(s, w); l != 0 {
			t.Fatalf("L for %d = %d, want 0", w, l)
		}
	}
	if got := p.Decide(s); got != Increase {
		t.Fatalf("Decide = %v, want Increase", got)
	}
	// All queues empty -> the same workers are also Z -> decrease... but
	// the minimal allotment cannot shrink, so Estimate keeps the size.
	s2 := snap(t, 1, nil)
	if got := p.Decide(s2); got != Decrease {
		t.Fatalf("Decide(empty) = %v, want Decrease", got)
	}
	if got := p.Estimate(s2); got != s2.Allotment.Size() {
		t.Fatalf("Estimate(empty) = %d, want clamped %d", got, s2.Allotment.Size())
	}
}

func TestPalirriaLoopyResistance(t *testing.T) {
	// LOOPY keeps exactly one task in some queues. Beyond the minimal
	// allotment, interior X workers have µ(O) >= 1, so a single queued task
	// never exceeds L and the allotment must not grow.
	p := NewPalirria()
	s := snap(t, 2, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		for _, w := range c.Allotment().Members() {
			ws[w].QueueLen = 1
		}
	})
	if got := p.Decide(s); got != Keep {
		t.Fatalf("Decide = %v, want Keep (LOOPY must not trigger growth)", got)
	}
}

func TestPalirriaLOffset(t *testing.T) {
	// LOffset = 1 raises every threshold: a queue that barely exceeded
	// µ(O_i) no longer triggers an increase.
	p := &Palirria{LOffset: 1}
	s := snap(t, 2, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		for _, w := range c.X() {
			ws[w].QueueLen = len(c.OuterVictims(w)) + 1
		}
		for _, w := range c.Z() {
			if ws[w].QueueLen == 0 {
				ws[w].QueueLen = 1
			}
		}
	})
	if got := p.Decide(s); got != Keep {
		t.Fatalf("Decide = %v, want Keep with LOffset=1", got)
	}
}

func TestPalirriaMissingWorkerSnapshots(t *testing.T) {
	// Workers without snapshots (not yet bootstrapped) block increase and
	// count as empty for decrease.
	p := NewPalirria()
	s := snap(t, 2, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		for _, w := range c.X() {
			ws[w].QueueLen = 10
		}
		for _, w := range c.Z() {
			ws[w].QueueLen = 1
		}
		delete(ws, c.X()[0])
	})
	if got := p.Decide(s); got != Keep {
		t.Fatalf("Decide = %v, want Keep when an X snapshot is missing", got)
	}
}

func TestPalirriaEstimateCost(t *testing.T) {
	// The inspected set is at most |X| + |Z|: the low-overhead claim.
	p := NewPalirria()
	s := snap(t, 3, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		for _, w := range c.Allotment().Members() {
			ws[w].QueueLen = 1
		}
	})
	p.Decide(s)
	max := len(s.Class.X()) + len(s.Class.Z())
	if got := p.EstimateCost(); got == 0 || got > max {
		t.Fatalf("EstimateCost = %d, want in (0, %d]", got, max)
	}
	if got, size := p.EstimateCost(), s.Allotment.Size(); got >= size {
		t.Fatalf("EstimateCost %d not below allotment size %d", got, size)
	}
}

func TestPalirriaName(t *testing.T) {
	if NewPalirria().Name() != "palirria" {
		t.Fatal("name wrong")
	}
	NewPalirria().Granted(5) // no-op, must not panic
}

func TestDecisionHelpers(t *testing.T) {
	if DecisionOf(5, 12) != Increase || DecisionOf(12, 5) != Decrease || DecisionOf(5, 5) != Keep {
		t.Fatal("DecisionOf wrong")
	}
	if Increase.String() != "increase" || Decrease.String() != "decrease" || Keep.String() != "keep" {
		t.Fatal("Decision strings wrong")
	}
	if Decision(7).String() != "Decision(7)" {
		t.Fatal("unknown decision string wrong")
	}
}

// TestDMCMonotonicity: adding queued tasks to X workers can only move the
// decision toward Increase; emptying Z bags can only move it toward
// Decrease. Property-checked over random fill levels.
func TestDMCMonotonicity(t *testing.T) {
	p := NewPalirria()
	base := snap(t, 2, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		for _, w := range c.Allotment().Members() {
			ws[w].QueueLen = 1
			ws[w].MaxQueueLen = 1
			ws[w].Busy = true
		}
	})
	d0 := p.Decide(base)
	// Raise every X worker's high-water mark above any threshold.
	boosted := snap(t, 2, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		for _, w := range c.Allotment().Members() {
			ws[w].QueueLen = 1
			ws[w].MaxQueueLen = 1
			ws[w].Busy = true
		}
		for _, w := range c.X() {
			ws[w].MaxQueueLen = 100
		}
	})
	d1 := p.Decide(boosted)
	if d1 < d0 {
		t.Fatalf("boosting X queues moved decision down: %v -> %v", d0, d1)
	}
	if d1 != Increase {
		t.Fatalf("fully boosted X must increase, got %v", d1)
	}
	// Empty every Z bag.
	drained := snap(t, 2, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		for _, w := range c.Allotment().Members() {
			ws[w].QueueLen = 1
			ws[w].MaxQueueLen = 1
			ws[w].Busy = true
		}
		for _, w := range c.Z() {
			ws[w].QueueLen = 0
			ws[w].Busy = false
		}
	})
	d2 := p.Decide(drained)
	if d2 != Decrease {
		t.Fatalf("drained Z must decrease, got %v", d2)
	}
}

// TestDMCDecreaseRequiresIdleZ: a single busy Z worker blocks removal.
func TestDMCDecreaseRequiresIdleZ(t *testing.T) {
	p := NewPalirria()
	s := snap(t, 2, func(c *topo.Classification, ws map[topo.CoreID]*WorkerSnapshot) {
		ws[c.Z()[0]].Busy = true // executing a long leaf, queue empty
	})
	if got := p.Decide(s); got != Keep {
		t.Fatalf("Decide = %v, want Keep (busy rim worker is utilized)", got)
	}
}
