package task

import "palirria/internal/xrand"

// RandomTreeConfig bounds the shape of generated task trees.
type RandomTreeConfig struct {
	// Seed makes the tree reproducible.
	Seed uint64
	// MaxDepth bounds recursion (default 6).
	MaxDepth int
	// MaxChildren bounds children per node (default 4).
	MaxChildren int
	// MaxWork bounds each compute segment in cycles (default 500).
	MaxWork int64
	// CallProb (0..100) is the chance a child is called instead of
	// spawned (default 25).
	CallProb int
}

// RandomTree deterministically generates a structurally valid fork/join
// task tree: arbitrary interleavings of compute segments, spawns, calls,
// explicit syncs and implicit joins. Used to property-test the execution
// platforms — any generated tree must run to completion with exact work
// conservation on any scheduler configuration.
func RandomTree(cfg RandomTreeConfig) *Spec {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MaxChildren == 0 {
		cfg.MaxChildren = 4
	}
	if cfg.MaxWork == 0 {
		cfg.MaxWork = 500
	}
	if cfg.CallProb == 0 {
		cfg.CallProb = 25
	}
	return randomNode(cfg, cfg.Seed, 0)
}

func randomNode(cfg RandomTreeConfig, path uint64, depth int) *Spec {
	h := xrand.Hash64(cfg.Seed ^ xrand.Hash64(path))
	rng := xrand.NewXoshiro256(h)
	s := &Spec{Label: "rnd"}
	if depth >= cfg.MaxDepth {
		s.Ops = []Op{Compute(1 + int64(rng.Intn(int(cfg.MaxWork))))}
		return s
	}
	children := rng.Intn(cfg.MaxChildren + 1)
	outstanding := 0
	for i := 0; i < children; i++ {
		// Optional compute segment before each child.
		if rng.Intn(2) == 0 {
			s.Ops = append(s.Ops, Compute(1+int64(rng.Intn(int(cfg.MaxWork)))))
		}
		cp := path*0x100000001b3 + uint64(i) + 1
		child := func() *Spec { return randomNode(cfg, cp, depth+1) }
		if rng.Intn(100) < cfg.CallProb {
			s.Ops = append(s.Ops, Call(child))
		} else {
			s.Ops = append(s.Ops, Spawn(child))
			outstanding++
		}
		// Randomly sync some outstanding spawns early.
		for outstanding > 0 && rng.Intn(3) == 0 {
			s.Ops = append(s.Ops, Sync())
			outstanding--
		}
	}
	// Trailing compute; remaining spawns join implicitly at task end
	// about half the time, explicitly otherwise.
	if rng.Intn(2) == 0 {
		for outstanding > 0 {
			s.Ops = append(s.Ops, Sync())
			outstanding--
		}
	}
	s.Ops = append(s.Ops, Compute(1+int64(rng.Intn(int(cfg.MaxWork)))))
	return s
}
