// Package task models fork/join computations as lazily generated task
// trees that both execution platforms (the discrete-event simulator and the
// real-threads runtime) can run.
//
// A Spec is one task: a straight-line program over four operations that
// mirror WOOL's programming model —
//
//	Compute(w) — perform w cycles of work
//	Spawn(b)   — create the child task b() and place it in the task queue
//	Call(b)    — execute the child task b() inline (WOOL's CALL)
//	Sync()     — join the youngest outstanding spawn (WOOL's SYNC):
//	             pop-and-execute it when it was not stolen, wait for the
//	             thief otherwise
//
// Children are produced by Builder closures so that trees with millions of
// nodes never exist in memory at once: a child spec materializes when it is
// spawned and becomes garbage when it completes. Builders must be
// deterministic — the simulator's reproducibility depends on it — so any
// randomness inside workload generators derives from fixed seeds.
package task

import "fmt"

// OpKind enumerates the operations of a task program.
type OpKind uint8

const (
	// OpCompute burns Work cycles of useful computation.
	OpCompute OpKind = iota
	// OpSpawn lazily builds a child task and enqueues it for stealing.
	OpSpawn
	// OpCall lazily builds a child task and executes it inline.
	OpCall
	// OpSync joins the youngest outstanding spawn of this task.
	OpSync
)

// String names the op kind for diagnostics.
func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpSpawn:
		return "spawn"
	case OpCall:
		return "call"
	case OpSync:
		return "sync"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Builder lazily produces a task spec. Builders must be deterministic and
// side-effect free; they may be invoked on any worker.
type Builder func() *Spec

// Op is one instruction of a task program.
type Op struct {
	Kind OpKind
	Work int64   // OpCompute only: cycles
	Gen  Builder // OpSpawn/OpCall only: the child
}

// Spec is an immutable description of one task.
type Spec struct {
	// Label names the task for traces ("fib(7)"); optional.
	Label string
	// Ops is the task's program, executed in order.
	Ops []Op
	// Footprint is the task's working-set size in abstract bytes. The NUMA
	// machine model charges a migration penalty proportional to it when a
	// stolen task first executes away from where it was spawned.
	Footprint int64
	// MemBound is the fraction of the task's compute cycles that are
	// memory-bandwidth bound, in [0, 1]. The NUMA machine model inflates
	// compute by 1 + MemBound*(workers-1): a fully bandwidth-bound task
	// (Sort's merges) gains nothing from extra workers, which is exactly
	// the no-scaling behaviour the paper's Sort shows on real hardware.
	MemBound float64
}

// Compute returns a compute op of w cycles.
func Compute(w int64) Op { return Op{Kind: OpCompute, Work: w} }

// Spawn returns a spawn op for the child produced by b.
func Spawn(b Builder) Op { return Op{Kind: OpSpawn, Gen: b} }

// Call returns an inline-call op for the child produced by b.
func Call(b Builder) Op { return Op{Kind: OpCall, Gen: b} }

// Sync returns a sync op joining the youngest outstanding spawn.
func Sync() Op { return Op{Kind: OpSync} }

// Leaf returns a task that only computes w cycles.
func Leaf(label string, w int64) *Spec {
	return &Spec{Label: label, Ops: []Op{Compute(w)}}
}

// SpawnJoin builds the most common pattern: optional preamble work, spawn
// every child, optional mid work, sync them all, optional postamble work.
// Zero-valued work amounts emit no compute op.
func SpawnJoin(label string, pre int64, children []Builder, mid int64, post int64) *Spec {
	ops := make([]Op, 0, len(children)*2+3)
	if pre > 0 {
		ops = append(ops, Compute(pre))
	}
	for _, c := range children {
		ops = append(ops, Spawn(c))
	}
	if mid > 0 {
		ops = append(ops, Compute(mid))
	}
	for range children {
		ops = append(ops, Sync())
	}
	if post > 0 {
		ops = append(ops, Compute(post))
	}
	return &Spec{Label: label, Ops: ops}
}

// Validate checks structural invariants of a spec without expanding
// children: every sync must have a matching earlier spawn, compute amounts
// must be non-negative, and spawn/call ops must carry a builder. It returns
// the number of unjoined spawns remaining at the end of the program (the
// platforms join them implicitly at task end, like WOOL's implicit final
// barrier).
func Validate(s *Spec) (unjoined int, err error) {
	if s == nil {
		return 0, fmt.Errorf("task: nil spec")
	}
	outstanding := 0
	for i, op := range s.Ops {
		switch op.Kind {
		case OpCompute:
			if op.Work < 0 {
				return 0, fmt.Errorf("task %q op %d: negative work %d", s.Label, i, op.Work)
			}
		case OpSpawn, OpCall:
			if op.Gen == nil {
				return 0, fmt.Errorf("task %q op %d: %v without builder", s.Label, i, op.Kind)
			}
			if op.Kind == OpSpawn {
				outstanding++
			}
		case OpSync:
			if outstanding == 0 {
				return 0, fmt.Errorf("task %q op %d: sync without outstanding spawn", s.Label, i)
			}
			outstanding--
		default:
			return 0, fmt.Errorf("task %q op %d: unknown kind %d", s.Label, i, op.Kind)
		}
	}
	if s.Footprint < 0 {
		return 0, fmt.Errorf("task %q: negative footprint", s.Label)
	}
	if s.MemBound < 0 || s.MemBound > 1 {
		return 0, fmt.Errorf("task %q: MemBound %v outside [0, 1]", s.Label, s.MemBound)
	}
	return outstanding, nil
}

// Stats summarizes a fully expanded task tree.
type Stats struct {
	// Tasks counts all tasks (root, spawned and called).
	Tasks int64
	// Spawns counts spawn edges only — the tasks that enter task queues.
	Spawns int64
	// Work is T1: the total compute cycles of the whole tree.
	Work int64
	// Span is Tinf: the critical-path length in compute cycles, under the
	// fork/join semantics (spawned children overlap the continuation until
	// their sync; called children serialize).
	Span int64
}

// Parallelism returns T1/Tinf, the average parallelism of the tree.
func (st Stats) Parallelism() float64 {
	if st.Span == 0 {
		return 0
	}
	return float64(st.Work) / float64(st.Span)
}

// Measure expands the whole tree rooted at s and returns its statistics.
// Intended for tests and workload calibration on small inputs: it visits
// every task, so do not call it on production-sized trees.
func Measure(s *Spec) (Stats, error) {
	var st Stats
	span, err := measure(s, &st)
	if err != nil {
		return Stats{}, err
	}
	st.Span = span
	return st, nil
}

func measure(s *Spec, st *Stats) (span int64, err error) {
	if _, err := Validate(s); err != nil {
		return 0, err
	}
	st.Tasks++
	// path is the running prefix length of the continuation; joinStack
	// holds (spawnPoint, childSpan) for outstanding spawns, youngest last.
	var path int64
	type pending struct{ at, span int64 }
	var joins []pending
	for _, op := range s.Ops {
		switch op.Kind {
		case OpCompute:
			st.Work += op.Work
			path += op.Work
		case OpSpawn:
			st.Spawns++
			cs, err := measure(op.Gen(), st)
			if err != nil {
				return 0, err
			}
			joins = append(joins, pending{at: path, span: cs})
		case OpCall:
			cs, err := measure(op.Gen(), st)
			if err != nil {
				return 0, err
			}
			path += cs
		case OpSync:
			j := joins[len(joins)-1]
			joins = joins[:len(joins)-1]
			if end := j.at + j.span; end > path {
				path = end
			}
		}
	}
	// Implicit join of any remaining spawns at task end.
	for i := len(joins) - 1; i >= 0; i-- {
		if end := joins[i].at + joins[i].span; end > path {
			path = end
		}
	}
	return path, nil
}
