package task

import (
	"strings"
	"testing"
)

func TestLeaf(t *testing.T) {
	l := Leaf("leaf", 42)
	st, err := Measure(l)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 1 || st.Work != 42 || st.Span != 42 || st.Spawns != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
		want string
	}{
		{"nil", nil, "nil spec"},
		{"negwork", &Spec{Ops: []Op{Compute(-1)}}, "negative work"},
		{"nospawngen", &Spec{Ops: []Op{{Kind: OpSpawn}}}, "without builder"},
		{"nocallgen", &Spec{Ops: []Op{{Kind: OpCall}}}, "without builder"},
		{"strayedsync", &Spec{Ops: []Op{Sync()}}, "sync without outstanding spawn"},
		{"badkind", &Spec{Ops: []Op{{Kind: OpKind(9)}}}, "unknown kind"},
		{"negfoot", &Spec{Footprint: -1}, "negative footprint"},
	}
	for _, c := range cases {
		_, err := Validate(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestValidateUnjoined(t *testing.T) {
	child := func() *Spec { return Leaf("c", 1) }
	s := &Spec{Ops: []Op{Spawn(child), Spawn(child), Sync()}}
	n, err := Validate(s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("unjoined = %d, want 1", n)
	}
}

func TestSpawnJoin(t *testing.T) {
	child := func() *Spec { return Leaf("c", 10) }
	s := SpawnJoin("p", 5, []Builder{child, child, child}, 7, 3)
	if n, err := Validate(s); err != nil || n != 0 {
		t.Fatalf("validate = (%d, %v)", n, err)
	}
	st, err := Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 4 || st.Spawns != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Work != 5+7+3+30 {
		t.Fatalf("work = %d, want 45", st.Work)
	}
	// Span: pre 5; all children spawned at 5; continuation 5+7+3=15; the
	// children each end at 5+10=15; implicit... syncs happen after mid:
	// path after mid = 12; sync each child (end 15) -> path 15; post -> 18.
	if st.Span != 18 {
		t.Fatalf("span = %d, want 18", st.Span)
	}
}

func TestSpawnJoinZeroWorkOmitted(t *testing.T) {
	child := func() *Spec { return Leaf("c", 1) }
	s := SpawnJoin("p", 0, []Builder{child}, 0, 0)
	for _, op := range s.Ops {
		if op.Kind == OpCompute {
			t.Fatal("zero work must not emit compute ops")
		}
	}
}

// fibSpec builds the WOOL-style fib tree: spawn fib(n-1), call fib(n-2),
// sync. Known node counts validate Measure.
func fibSpec(n int) *Spec {
	if n < 2 {
		return Leaf("fib", 1)
	}
	return &Spec{
		Label: "fib",
		Ops: []Op{
			Spawn(func() *Spec { return fibSpec(n - 1) }),
			Call(func() *Spec { return fibSpec(n - 2) }),
			Sync(),
			Compute(1), // the addition
		},
	}
}

func TestMeasureFib(t *testing.T) {
	// Node count of the fib call tree: nodes(n) = nodes(n-1)+nodes(n-2)+1,
	// nodes(0)=nodes(1)=1 -> for n=10: 177.
	st, err := Measure(fibSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 177 {
		t.Fatalf("tasks = %d, want 177", st.Tasks)
	}
	// Every internal node computes 1, every leaf computes 1: work = tasks.
	if st.Work != 177 {
		t.Fatalf("work = %d, want 177", st.Work)
	}
	// Span: critical path through the deepest chain; for fib it is the
	// leftmost spine: span(n) = span(n-1) + 1 in this shape when the spawn
	// dominates, span(0)=span(1)=1.
	if st.Span != 10 {
		t.Fatalf("span = %d, want 10", st.Span)
	}
	if p := st.Parallelism(); p < 17 || p > 18 {
		t.Fatalf("parallelism = %v, want ~17.7", p)
	}
}

func TestMeasureCallSerializes(t *testing.T) {
	// Two called children serialize: span = sum.
	child := func() *Spec { return Leaf("c", 10) }
	s := &Spec{Ops: []Op{Call(child), Call(child)}}
	st, err := Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Span != 20 || st.Work != 20 {
		t.Fatalf("stats = %+v, want span 20", st)
	}
	// Two spawned children overlap: span = max + 0 continuation.
	s = &Spec{Ops: []Op{Spawn(child), Spawn(child), Sync(), Sync()}}
	st, _ = Measure(s)
	if st.Span != 10 {
		t.Fatalf("spawned span = %d, want 10", st.Span)
	}
}

func TestMeasureImplicitJoin(t *testing.T) {
	// A spawn with no explicit sync joins at task end.
	child := func() *Spec { return Leaf("c", 100) }
	s := &Spec{Ops: []Op{Spawn(child), Compute(5)}}
	st, err := Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Span != 100 {
		t.Fatalf("span = %d, want 100", st.Span)
	}
}

func TestMeasurePropagatesChildError(t *testing.T) {
	bad := func() *Spec { return &Spec{Ops: []Op{Compute(-5)}} }
	s := &Spec{Ops: []Op{Spawn(bad), Sync()}}
	if _, err := Measure(s); err == nil {
		t.Fatal("expected error from child")
	}
	s = &Spec{Ops: []Op{Call(bad)}}
	if _, err := Measure(s); err == nil {
		t.Fatal("expected error from called child")
	}
}

func TestParallelismZeroSpan(t *testing.T) {
	if (Stats{}).Parallelism() != 0 {
		t.Fatal("zero-span parallelism must be 0")
	}
}

func TestOpKindString(t *testing.T) {
	want := map[OpKind]string{
		OpCompute: "compute", OpSpawn: "spawn", OpCall: "call", OpSync: "sync",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if OpKind(77).String() != "OpKind(77)" {
		t.Error("unknown kind string wrong")
	}
}

func TestRandomTreeValid(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		s := RandomTree(RandomTreeConfig{Seed: seed})
		if _, err := Measure(s); err != nil {
			t.Fatalf("seed %d: invalid tree: %v", seed, err)
		}
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	a, err := Measure(RandomTree(RandomTreeConfig{Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Measure(RandomTree(RandomTreeConfig{Seed: 7}))
	if a != b {
		t.Fatalf("random tree not deterministic: %+v vs %+v", a, b)
	}
	c, _ := Measure(RandomTree(RandomTreeConfig{Seed: 8}))
	if a == c {
		t.Fatal("distinct seeds produced identical trees (suspicious)")
	}
}

func TestRandomTreeUsesAllOps(t *testing.T) {
	// Across seeds, the generator exercises spawns, calls, explicit syncs
	// and implicit joins.
	var sawSpawn, sawCall, sawSync, sawImplicit bool
	for seed := uint64(0); seed < 50; seed++ {
		s := RandomTree(RandomTreeConfig{Seed: seed})
		unjoined, err := Validate(s)
		if err != nil {
			t.Fatal(err)
		}
		if unjoined > 0 {
			sawImplicit = true
		}
		for _, op := range s.Ops {
			switch op.Kind {
			case OpSpawn:
				sawSpawn = true
			case OpCall:
				sawCall = true
			case OpSync:
				sawSync = true
			}
		}
	}
	if !sawSpawn || !sawCall || !sawSync || !sawImplicit {
		t.Fatalf("coverage: spawn=%v call=%v sync=%v implicit=%v",
			sawSpawn, sawCall, sawSync, sawImplicit)
	}
}
