// Package plot renders the paper's figures as text: horizontal bar charts
// (Figs. 5a/5b/7a/7b), worker-count timelines (Figs. 5c/7c), per-worker
// useful/wasted columns (Figs. 6/8) and mesh classification maps
// (Figs. 1/2/9). Everything prints to an io.Writer so the benchmark
// harness can tee it into EXPERIMENTS.md.
package plot

import (
	"fmt"
	"io"
	"strings"

	"palirria/internal/topo"
	"palirria/internal/trace"
)

// Bar is one labeled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled so the largest value spans width
// characters. Values print with the given format verb (e.g. "%.0f").
func BarChart(w io.Writer, title string, bars []Bar, width int, format string) {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
	}
	labelW := 0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(b.Value / max * float64(width))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %-*s %s "+format+"\n", labelW, b.Label, strings.Repeat("#", n), b.Value)
	}
}

// Timeline renders one or more worker-count step functions over a shared
// time axis, like the paper's Figs. 5(c)/7(c): the y axis is the worker
// count, the x axis is time, one row per distinct allotment size. Curves
// are labeled with single characters (A = first, P = second by
// convention). Shorter curves denote faster execution and thus better
// estimation accuracy.
func Timeline(w io.Writer, title string, names []string, lines []*trace.Timeline, levels []int, width int) {
	if width <= 0 {
		width = 64
	}
	var end int64
	for _, tl := range lines {
		pts := tl.Points()
		if len(pts) > 0 && pts[len(pts)-1].Time > end {
			end = pts[len(pts)-1].Time
		}
	}
	if end == 0 {
		end = 1
	}
	fmt.Fprintf(w, "%s  (x: time, %d cycles full scale)\n", title, end)
	marks := []byte{'A', 'P', 'W', 'X', 'Y', 'Z'}
	// Render from the highest worker level down.
	for li := len(levels) - 1; li >= 0; li-- {
		lvl := levels[li]
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for ci, tl := range lines {
			pts := tl.Points()
			for i, p := range pts {
				if p.Workers != lvl {
					continue
				}
				// Segment from p.Time to the next point (or curve end).
				segEnd := end
				if i+1 < len(pts) {
					segEnd = pts[i+1].Time
				}
				x0 := int(p.Time * int64(width-1) / end)
				x1 := int(segEnd * int64(width-1) / end)
				for x := x0; x <= x1 && x < width; x++ {
					if row[x] == ' ' {
						row[x] = marks[ci%len(marks)]
					} else if row[x] != marks[ci%len(marks)] {
						row[x] = '*' // overlap
					}
				}
			}
		}
		fmt.Fprintf(w, "  %3d |%s\n", lvl, string(row))
	}
	fmt.Fprintf(w, "      +%s\n", strings.Repeat("-", width))
	legend := make([]string, 0, len(names))
	for i, n := range names {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[i%len(marks)], n))
	}
	fmt.Fprintf(w, "       %s  (* = overlap)\n", strings.Join(legend, "  "))
}

// WorkerColumn is one worker's useful/total cycles for the per-worker
// charts.
type WorkerColumn struct {
	Useful int64
	Total  int64
}

// WorkerBars renders the paper's Figs. 6/8: one column per worker, ordered
// by zone, normalized to norm (the first bar of the reference column in
// the paper; pass the max total for a safe default). Useful cycles print
// as '#', non-useful as '.', with a fixed chart height.
func WorkerBars(w io.Writer, title string, cols []WorkerColumn, norm int64, height int) {
	if height <= 0 {
		height = 10
	}
	if norm <= 0 {
		norm = 1
		for _, c := range cols {
			if c.Total > norm {
				norm = c.Total
			}
		}
	}
	fmt.Fprintf(w, "%s  (#=useful  .=other, full bar = %d cycles)\n", title, norm)
	for row := height; row >= 1; row-- {
		thresh := norm * int64(row) / int64(height)
		var sb strings.Builder
		sb.WriteString("  |")
		for _, c := range cols {
			switch {
			case c.Useful >= thresh:
				sb.WriteByte('#')
			case c.Total >= thresh:
				sb.WriteByte('.')
			default:
				sb.WriteByte(' ')
			}
		}
		fmt.Fprintln(w, sb.String())
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", len(cols)))
}

// ClassGrid renders an allotment's DVS classification over its mesh, like
// the paper's Figs. 1, 2 and 9: s = source, X/Z/F = classes, XZ members
// print as x, '.' = usable but idle cores, '#' = reserved cores.
func ClassGrid(w io.Writer, title string, c *topo.Classification) {
	m := c.Allotment().Mesh()
	dimX, dimY, dimZ := m.Dims()
	fmt.Fprintf(w, "%s\n", title)
	for z := 0; z < dimZ; z++ {
		if dimZ > 1 {
			fmt.Fprintf(w, " layer z=%d\n", z)
		}
		for y := 0; y < dimY; y++ {
			var sb strings.Builder
			sb.WriteString("  ")
			for x := 0; x < dimX; x++ {
				id := m.ID(topo.Coord{X: x, Y: y, Z: z})
				switch {
				case m.Reserved(id):
					sb.WriteString(" #")
				default:
					switch c.Class(id) {
					case topo.ClassSource:
						sb.WriteString(" s")
					case topo.ClassX:
						sb.WriteString(" X")
					case topo.ClassZ:
						sb.WriteString(" Z")
					case topo.ClassXZ:
						sb.WriteString(" x")
					case topo.ClassF:
						sb.WriteString(" F")
					default:
						sb.WriteString(" .")
					}
				}
			}
			fmt.Fprintln(w, sb.String())
		}
	}
	fmt.Fprintln(w, "  s=source X=class-X Z=class-Z x=X∩Z F=class-F .=idle #=reserved")
}

// MultiClassGrid renders several applications sharing one mesh (Fig. 2):
// each application's members print as its digit, sources as 's' followed
// by the digit... sources print as the uppercase letter of the app.
func MultiClassGrid(w io.Writer, title string, m *topo.Mesh, apps []*topo.Allotment) {
	dimX, dimY, _ := m.Dims()
	fmt.Fprintf(w, "%s\n", title)
	owner := make(map[topo.CoreID]string)
	for i, a := range apps {
		for _, id := range a.Members() {
			label := fmt.Sprintf("%d", i+1)
			if id == a.Source() {
				label = string(rune('A' + i))
			}
			owner[id] = label
		}
	}
	for y := 0; y < dimY; y++ {
		var sb strings.Builder
		sb.WriteString("  ")
		for x := 0; x < dimX; x++ {
			id := m.ID(topo.Coord{X: x, Y: y})
			switch {
			case m.Reserved(id):
				sb.WriteString(" #")
			case owner[id] != "":
				sb.WriteString(" " + owner[id])
			default:
				sb.WriteString(" .")
			}
		}
		fmt.Fprintln(w, sb.String())
	}
	fmt.Fprintln(w, "  A/B/C=app sources  1/2/3=app workers  .=idle  #=reserved")
}

// FlowGrid renders the paper's Fig. 3: the flow of tasks through the
// workers under DVS. Each cell shows the direction of the worker's
// primary victim — the neighbour it pulls tasks from first — so the tide
// becomes visible: X workers pull from the axis toward the source (arrows
// pointing inward along the axes mean tasks travel outward), Z workers
// pull diagonally around the rim, F workers pull from their outer zone.
func FlowGrid(w io.Writer, title string, c *topo.Classification, victims func(topo.CoreID) []topo.CoreID) {
	m := c.Allotment().Mesh()
	dimX, dimY, _ := m.Dims()
	fmt.Fprintf(w, "%s\n", title)
	for y := 0; y < dimY; y++ {
		var sb strings.Builder
		sb.WriteString("  ")
		for x := 0; x < dimX; x++ {
			id := m.ID(topo.Coord{X: x, Y: y})
			switch {
			case m.Reserved(id):
				sb.WriteString(" #")
			case !c.Allotment().Contains(id):
				sb.WriteString(" .")
			case id == c.Allotment().Source():
				sb.WriteString(" s")
			default:
				sb.WriteString(" " + flowGlyph(m, id, victims(id)))
			}
		}
		fmt.Fprintln(w, sb.String())
	}
	fmt.Fprintln(w, "  arrows point at each worker's primary victim; s=source #=reserved .=idle")
}

// flowGlyph maps the offset to the primary victim onto an arrow.
func flowGlyph(m *topo.Mesh, w topo.CoreID, vs []topo.CoreID) string {
	if len(vs) == 0 {
		return "?"
	}
	wc, vc := m.Coord(w), m.Coord(vs[0])
	dx, dy := vc.X-wc.X, vc.Y-wc.Y
	switch {
	case dx < 0 && dy == 0:
		return "<"
	case dx > 0 && dy == 0:
		return ">"
	case dx == 0 && dy < 0:
		return "^"
	case dx == 0 && dy > 0:
		return "v"
	case dx < 0 && dy < 0:
		return "`" // up-left diagonal
	case dx > 0 && dy < 0:
		return "/"
	case dx < 0 && dy > 0:
		return ","
	case dx > 0 && dy > 0:
		return "\\"
	}
	return "?"
}
