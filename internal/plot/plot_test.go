package plot

import (
	"bytes"
	"strings"
	"testing"

	"palirria/internal/topo"
	"palirria/internal/trace"
)

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "title", []Bar{
		{Label: "a", Value: 100},
		{Label: "bb", Value: 50},
		{Label: "c", Value: 0},
	}, 10, "%.0f")
	out := buf.String()
	if !strings.Contains(out, "title") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	// The 100 bar is full width, the 50 bar half, the 0 bar empty.
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Fatalf("full bar missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 5)) || strings.Contains(lines[2], strings.Repeat("#", 6)) {
		t.Fatalf("half bar wrong: %q", lines[2])
	}
	if strings.Contains(lines[3], "#") {
		t.Fatalf("zero bar has marks: %q", lines[3])
	}
	// Labels align to the widest.
	if !strings.Contains(lines[1], "a  ") {
		t.Fatalf("label padding wrong: %q", lines[1])
	}
}

func TestBarChartAllZero(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "z", []Bar{{Label: "a", Value: 0}}, 0, "%.1f")
	if !strings.Contains(buf.String(), "0.0") {
		t.Fatal("zero value not printed")
	}
}

func TestTimelinePlot(t *testing.T) {
	var a, p trace.Timeline
	a.Record(0, 5)
	a.Record(100, 12)
	a.Record(400, 12) // no-op
	p.Record(0, 5)
	p.Record(200, 12)
	p.Record(300, 5)
	var buf bytes.Buffer
	Timeline(&buf, "workers", []string{"ASTEAL", "Palirria"},
		[]*trace.Timeline{&a, &p}, []int{5, 12}, 40)
	out := buf.String()
	for _, want := range []string{"workers", "A=ASTEAL", "P=Palirria", "12 |", "5 |", "*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q in:\n%s", want, out)
		}
	}
}

func TestTimelineEmptyCurves(t *testing.T) {
	var tl trace.Timeline
	var buf bytes.Buffer
	Timeline(&buf, "t", []string{"x"}, []*trace.Timeline{&tl}, []int{5}, 0)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestWorkerBars(t *testing.T) {
	cols := []WorkerColumn{
		{Useful: 100, Total: 100}, // all useful
		{Useful: 50, Total: 100},  // half useful
		{Useful: 0, Total: 100},   // all other
		{Useful: 0, Total: 0},     // idle worker
	}
	var buf bytes.Buffer
	WorkerBars(&buf, "per-worker", cols, 100, 4)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 4 rows + axis.
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want 6:\n%s", len(lines), out)
	}
	// Top row: worker 0 shows '#', worker 2 shows '.', worker 3 blank.
	top := lines[1]
	if !strings.HasPrefix(top, "  |#") {
		t.Fatalf("top row wrong: %q", top)
	}
	if top[4] != '.' && top[4] != '#' { // worker 1 at full height: total=100 -> '.'
		t.Fatalf("worker 1 top = %q", string(top[4]))
	}
	if top[5] != '.' {
		t.Fatalf("worker 2 top = %q, want '.'", string(top[5]))
	}
	if top[6] != ' ' {
		t.Fatalf("idle worker top = %q, want blank", string(top[6]))
	}
}

func TestWorkerBarsAutoNorm(t *testing.T) {
	var buf bytes.Buffer
	WorkerBars(&buf, "t", []WorkerColumn{{Useful: 7, Total: 9}}, 0, 0)
	if !strings.Contains(buf.String(), "full bar = 9 cycles") {
		t.Fatalf("auto norm wrong:\n%s", buf.String())
	}
}

func TestClassGrid(t *testing.T) {
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	a, err := topo.NewAllotment(m, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ClassGrid(&buf, "grid", topo.Classify(a))
	out := buf.String()
	for _, want := range []string{" s", " X", " Z", " F", " #", " ."} {
		if !strings.Contains(out, want) {
			t.Fatalf("grid missing %q:\n%s", want, out)
		}
	}
	// 4 rows + title + legend.
	if got := len(strings.Split(strings.TrimRight(out, "\n"), "\n")); got != 6 {
		t.Fatalf("lines = %d:\n%s", got, out)
	}
}

func TestClassGrid3D(t *testing.T) {
	m := topo.MustMesh(3, 3, 2)
	a, err := topo.NewAllotment(m, m.ID(topo.Coord{X: 1, Y: 1, Z: 0}), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ClassGrid(&buf, "3d", topo.Classify(a))
	if !strings.Contains(buf.String(), "layer z=1") {
		t.Fatalf("3D layers missing:\n%s", buf.String())
	}
}

func TestMultiClassGrid(t *testing.T) {
	m := topo.MustMesh(6, 6)
	m.Reserve(0)
	a1, _ := topo.NewAllotment(m, m.ID(topo.Coord{X: 1, Y: 1}), 1)
	a2, _ := topo.NewAllotment(m, m.ID(topo.Coord{X: 4, Y: 4}), 1)
	var buf bytes.Buffer
	MultiClassGrid(&buf, "apps", m, []*topo.Allotment{a1, a2})
	out := buf.String()
	for _, want := range []string{" A", " B", " 1", " 2", " #", " ."} {
		if !strings.Contains(out, want) {
			t.Fatalf("multi grid missing %q:\n%s", want, out)
		}
	}
}
