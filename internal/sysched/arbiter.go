package sysched

import (
	"fmt"
	"sort"

	"palirria/internal/topo"
)

// Arbiter co-schedules several applications on one mesh, granting each a
// non-overlapping allotment. This is the multiprogrammed deployment of the
// paper's Fig. 2: resource competition leads to conserved allotments and
// incomplete classes, which DVS and the DMC are designed to tolerate.
//
// The grant policy is greedy locality-first: an application keeps the
// cores it has; growth adds the free cores nearest its source (by hop
// count, then id); shrinkage releases its farthest cores first. The source
// core is never released.
type Arbiter struct {
	mesh  *topo.Mesh
	owner map[topo.CoreID]*App
	apps  []*App
}

// App is one application registered with the arbiter.
type App struct {
	// Name labels the application in listings.
	Name   string
	source topo.CoreID
	ab     *Arbiter
	cur    *topo.Allotment
}

// NewArbiter returns an arbiter over mesh.
func NewArbiter(mesh *topo.Mesh) *Arbiter {
	return &Arbiter{mesh: mesh, owner: map[topo.CoreID]*App{}}
}

// Register admits an application with the given source core and grants it
// the minimal allotment the neighbourhood allows (the source plus up to
// one zone of free neighbours).
func (ab *Arbiter) Register(name string, source topo.CoreID) (*App, error) {
	if !ab.mesh.Valid(source) {
		return nil, fmt.Errorf("sysched: invalid source %d", source)
	}
	if ab.mesh.Reserved(source) {
		return nil, fmt.Errorf("sysched: source %d is reserved", source)
	}
	if ab.owner[source] != nil {
		return nil, fmt.Errorf("sysched: core %d already owned by %s", source, ab.owner[source].Name)
	}
	app := &App{Name: name, source: source, ab: ab}
	ab.owner[source] = app
	ab.apps = append(ab.apps, app)
	a, err := topo.NewAllotmentFromCores(ab.mesh, source, nil)
	if err != nil {
		return nil, err
	}
	app.cur = a
	// Seed with the free distance-1 neighbours (the minimal "zone 1 plus
	// source" when uncontended).
	app.cur = ab.grow(app, 5)
	return app, nil
}

// Apps returns the registered applications.
func (ab *Arbiter) Apps() []*App { return ab.apps }

// Source returns the application's source core.
func (a *App) Source() topo.CoreID { return a.source }

// Allotment returns the application's current allotment.
func (a *App) Allotment() *topo.Allotment { return a.cur }

// Request resizes the application toward desired workers and returns the
// new allotment. Growth is limited by free cores; shrinkage never goes
// below the source.
func (ab *Arbiter) Request(app *App, desired int) *topo.Allotment {
	if desired < 1 {
		desired = 1
	}
	if desired > app.cur.Size() {
		app.cur = ab.grow(app, desired)
	} else if desired < app.cur.Size() {
		app.cur = ab.shrink(app, desired)
	}
	return app.cur
}

// Release returns all of the application's cores (except nothing — the app
// is removed entirely) to the free pool.
func (ab *Arbiter) Release(app *App) {
	for _, id := range app.cur.Members() {
		delete(ab.owner, id)
	}
	for i, a := range ab.apps {
		if a == app {
			ab.apps = append(ab.apps[:i], ab.apps[i+1:]...)
			break
		}
	}
}

// grow adds the free cores nearest the app's source until the allotment
// reaches desired workers or no free cores remain.
func (ab *Arbiter) grow(app *App, desired int) *topo.Allotment {
	var free []topo.CoreID
	for id := topo.CoreID(0); int(id) < ab.mesh.NumCores(); id++ {
		if ab.mesh.Reserved(id) || ab.owner[id] != nil {
			continue
		}
		free = append(free, id)
	}
	sort.Slice(free, func(i, j int) bool {
		di, dj := ab.mesh.HopCount(app.source, free[i]), ab.mesh.HopCount(app.source, free[j])
		if di != dj {
			return di < dj
		}
		return free[i] < free[j]
	})
	members := append([]topo.CoreID(nil), app.cur.Members()...)
	for _, id := range free {
		if len(members) >= desired {
			break
		}
		members = append(members, id)
		ab.owner[id] = app
	}
	a, err := topo.NewAllotmentFromCores(ab.mesh, app.source, members)
	if err != nil {
		return app.cur
	}
	return a
}

// shrink releases the app's farthest cores down to desired workers.
func (ab *Arbiter) shrink(app *App, desired int) *topo.Allotment {
	members := append([]topo.CoreID(nil), app.cur.Members()...)
	sort.Slice(members, func(i, j int) bool {
		di, dj := ab.mesh.HopCount(app.source, members[i]), ab.mesh.HopCount(app.source, members[j])
		if di != dj {
			return di < dj
		}
		return members[i] < members[j]
	})
	for len(members) > desired && len(members) > 1 {
		last := members[len(members)-1]
		if last == app.source {
			break
		}
		delete(ab.owner, last)
		members = members[:len(members)-1]
	}
	a, err := topo.NewAllotmentFromCores(ab.mesh, app.source, members)
	if err != nil {
		return app.cur
	}
	return a
}

// FreeCores returns the number of unowned, unreserved cores.
func (ab *Arbiter) FreeCores() int {
	n := 0
	for id := topo.CoreID(0); int(id) < ab.mesh.NumCores(); id++ {
		if !ab.mesh.Reserved(id) && ab.owner[id] == nil {
			n++
		}
	}
	return n
}
