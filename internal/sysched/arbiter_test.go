package sysched

import (
	"testing"

	"palirria/internal/topo"
)

func TestArbiterRegisterAndGrow(t *testing.T) {
	m := topo.MustMesh(9, 9)
	ab := NewArbiter(m)
	app1, err := ab.Register("app1", m.ID(topo.Coord{X: 2, Y: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if app1.Allotment().Size() != 5 {
		t.Fatalf("initial size = %d, want 5 (uncontended)", app1.Allotment().Size())
	}
	a := ab.Request(app1, 12)
	if a.Size() != 12 {
		t.Fatalf("grow = %d, want 12", a.Size())
	}
	// All members within a sane distance and owned exactly once.
	for _, id := range a.Members() {
		if m.HopCount(app1.Source(), id) > 4 {
			t.Fatalf("member %d too far for a 12-worker grant", id)
		}
	}
}

func TestArbiterNoOverlap(t *testing.T) {
	m := topo.MustMesh(9, 9)
	ab := NewArbiter(m)
	a1, _ := ab.Register("a", m.ID(topo.Coord{X: 2, Y: 2}))
	a2, _ := ab.Register("b", m.ID(topo.Coord{X: 6, Y: 2}))
	a3, _ := ab.Register("c", m.ID(topo.Coord{X: 4, Y: 6}))
	ab.Request(a1, 20)
	ab.Request(a2, 20)
	ab.Request(a3, 20)
	seen := map[topo.CoreID]string{}
	for _, app := range ab.Apps() {
		for _, id := range app.Allotment().Members() {
			if owner, dup := seen[id]; dup {
				t.Fatalf("core %d owned by both %s and %s", id, owner, app.Name)
			}
			seen[id] = app.Name
		}
	}
	total := a1.Allotment().Size() + a2.Allotment().Size() + a3.Allotment().Size()
	if total+ab.FreeCores() != m.Usable() {
		t.Fatalf("accounting broken: %d owned + %d free != %d usable",
			total, ab.FreeCores(), m.Usable())
	}
}

func TestArbiterContention(t *testing.T) {
	// On a small mesh, two greedy apps exhaust the cores; growth stalls.
	m := topo.MustMesh(4, 2)
	ab := NewArbiter(m)
	a1, _ := ab.Register("a", 0)
	a2, _ := ab.Register("b", 7)
	ab.Request(a1, 8)
	ab.Request(a2, 8)
	if a1.Allotment().Size()+a2.Allotment().Size() != 8 {
		t.Fatalf("sizes %d + %d != 8", a1.Allotment().Size(), a2.Allotment().Size())
	}
	if ab.FreeCores() != 0 {
		t.Fatalf("free = %d, want 0", ab.FreeCores())
	}
	// The deprived app grows once the other releases cores.
	before := a2.Allotment().Size()
	ab.Request(a1, 2)
	after := ab.Request(a2, 8)
	if after.Size() <= before {
		t.Fatalf("app2 did not grow after release: %d -> %d", before, after.Size())
	}
}

func TestArbiterShrinkKeepsSource(t *testing.T) {
	m := topo.MustMesh(9, 9)
	ab := NewArbiter(m)
	app, _ := ab.Register("a", m.ID(topo.Coord{X: 4, Y: 4}))
	ab.Request(app, 20)
	a := ab.Request(app, 1)
	if a.Size() != 1 || a.Source() != m.ID(topo.Coord{X: 4, Y: 4}) {
		t.Fatalf("shrink to 1 = %v", a)
	}
	if !a.Contains(a.Source()) {
		t.Fatal("source released")
	}
	// Shrink releases the farthest first: request 5 after growing again.
	ab.Request(app, 20)
	a = ab.Request(app, 5)
	for _, id := range a.Members() {
		if m.HopCount(a.Source(), id) > 2 {
			t.Fatalf("kept a far core %d after shrink", id)
		}
	}
}

func TestArbiterIncompleteClasses(t *testing.T) {
	// Contended allotments have incomplete classes (paper Fig. 2), which
	// Classify must handle.
	m := topo.MustMesh(6, 6)
	ab := NewArbiter(m)
	a1, _ := ab.Register("a", m.ID(topo.Coord{X: 1, Y: 1}))
	a2, _ := ab.Register("b", m.ID(topo.Coord{X: 4, Y: 4}))
	ab.Request(a1, 14)
	ab.Request(a2, 14)
	for _, app := range []*App{a1, a2} {
		c := topo.Classify(app.Allotment())
		if c.Complete() && app.Allotment().Size() > 5 {
			t.Logf("%s happens to be complete (%d workers)", app.Name, app.Allotment().Size())
		}
		// Classification must cover every member.
		for _, id := range app.Allotment().Members() {
			if c.Class(id) == topo.ClassNone {
				t.Fatalf("%s: member %d unclassified", app.Name, id)
			}
		}
	}
}

func TestArbiterValidation(t *testing.T) {
	m := topo.MustMesh(4, 2)
	m.Reserve(0)
	ab := NewArbiter(m)
	if _, err := ab.Register("a", 0); err == nil {
		t.Error("reserved source must fail")
	}
	if _, err := ab.Register("a", 99); err == nil {
		t.Error("invalid source must fail")
	}
	app, err := ab.Register("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ab.Register("b", 1); err == nil {
		t.Error("double registration on one core must fail")
	}
	ab.Release(app)
	if len(ab.Apps()) != 0 || ab.FreeCores() != m.Usable() {
		t.Fatal("release did not return cores")
	}
}

// ownershipConsistent verifies the owner map and the apps' allotments
// agree exactly: every owned core belongs to exactly one registered app's
// allotment and vice versa.
func ownershipConsistent(t *testing.T, ab *Arbiter) {
	t.Helper()
	fromApps := map[topo.CoreID]string{}
	for _, app := range ab.Apps() {
		if !app.Allotment().Contains(app.Source()) {
			t.Fatalf("%s lost its source core %d", app.Name, app.Source())
		}
		for _, id := range app.Allotment().Members() {
			if prev, dup := fromApps[id]; dup {
				t.Fatalf("core %d in both %s and %s", id, prev, app.Name)
			}
			fromApps[id] = app.Name
		}
	}
	for id, app := range ab.owner {
		if fromApps[id] != app.Name {
			t.Fatalf("owner map has %d -> %s but allotments say %q", id, app.Name, fromApps[id])
		}
	}
	if len(ab.owner) != len(fromApps) {
		t.Fatalf("owner map has %d cores, allotments have %d (leak)", len(ab.owner), len(fromApps))
	}
}

func TestArbiterChurnNoOwnershipLeaks(t *testing.T) {
	// Register/release/re-register cycles with interleaved resizes must
	// never leak cores in the owner map and never strand a source.
	m := topo.MustMesh(9, 9)
	m.Reserve(0)
	sources := []topo.CoreID{
		m.ID(topo.Coord{X: 2, Y: 2}),
		m.ID(topo.Coord{X: 6, Y: 2}),
		m.ID(topo.Coord{X: 4, Y: 6}),
		m.ID(topo.Coord{X: 7, Y: 7}),
	}
	ab := NewArbiter(m)
	live := map[int]*App{}
	for round := 0; round < 50; round++ {
		idx := round % len(sources)
		if app, ok := live[idx]; ok {
			// Resize through a churny sequence before releasing.
			ab.Request(app, 1+(round*7)%30)
			ownershipConsistent(t, ab)
			ab.Release(app)
			delete(live, idx)
		} else {
			app, err := ab.Register("app", sources[idx])
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			ab.Request(app, 1+(round*11)%25)
			live[idx] = app
		}
		ownershipConsistent(t, ab)
	}
	for _, app := range live {
		ab.Release(app)
	}
	if len(ab.owner) != 0 || len(ab.Apps()) != 0 {
		t.Fatalf("after full release: %d owned cores, %d apps", len(ab.owner), len(ab.Apps()))
	}
	if ab.FreeCores() != m.Usable() {
		t.Fatalf("free = %d, want %d", ab.FreeCores(), m.Usable())
	}
}

func TestArbiterReRegisterSameSource(t *testing.T) {
	// A released source must be immediately reusable, and the fresh app
	// must get the same uncontended seed grant as the first registration.
	m := topo.MustMesh(6, 6)
	ab := NewArbiter(m)
	src := m.ID(topo.Coord{X: 3, Y: 3})
	for cycle := 0; cycle < 10; cycle++ {
		app, err := ab.Register("a", src)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if app.Allotment().Size() != 5 {
			t.Fatalf("cycle %d: seed grant %d, want 5", cycle, app.Allotment().Size())
		}
		ab.Request(app, 20)
		ownershipConsistent(t, ab)
		ab.Release(app)
		if ab.FreeCores() != m.Usable() {
			t.Fatalf("cycle %d: leaked %d cores", cycle, m.Usable()-ab.FreeCores())
		}
	}
}

func TestArbiterShrinkNeverReleasesSource(t *testing.T) {
	// Shrink requests below 1 clamp to 1 and the survivor is the source —
	// across churn, under contention, every time.
	m := topo.MustMesh(5, 5)
	ab := NewArbiter(m)
	a1, _ := ab.Register("a", m.ID(topo.Coord{X: 1, Y: 1}))
	a2, _ := ab.Register("b", m.ID(topo.Coord{X: 3, Y: 3}))
	for round := 0; round < 20; round++ {
		ab.Request(a1, 1+(round*5)%20)
		ab.Request(a2, 20-(round*3)%19)
		ab.Request(a1, -3) // hostile: clamps to 1
		if got := a1.Allotment().Size(); got != 1 {
			t.Fatalf("round %d: shrink to -3 gave size %d, want 1", round, got)
		}
		if !a1.Allotment().Contains(a1.Source()) {
			t.Fatalf("round %d: source released", round)
		}
		ownershipConsistent(t, ab)
	}
}
