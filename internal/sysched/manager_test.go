package sysched

import (
	"reflect"
	"testing"

	"palirria/internal/topo"
)

func simMesh() (*topo.Mesh, topo.CoreID) {
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	return m, topo.CoreID(20)
}

func TestNewManagerDefaults(t *testing.T) {
	m, src := simMesh()
	mgr, err := NewManager(m, src)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Current().Size() != 5 {
		t.Fatalf("initial size = %d, want 5", mgr.Current().Size())
	}
}

func TestNewManagerOptions(t *testing.T) {
	m, src := simMesh()
	mgr, err := NewManager(m, src, WithInitialDiaspora(3), WithMaxDiaspora(4))
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Current().Size() != 20 {
		t.Fatalf("initial size = %d, want 20", mgr.Current().Size())
	}
	if got := mgr.Series(); !reflect.DeepEqual(got, []int{5, 12, 20, 27}) {
		t.Fatalf("series = %v", got)
	}
}

func TestNewManagerValidation(t *testing.T) {
	m, src := simMesh()
	if _, err := NewManager(m, src, WithInitialDiaspora(0)); err == nil {
		t.Error("diaspora 0 must fail")
	}
	if _, err := NewManager(m, src, WithInitialDiaspora(9)); err == nil {
		t.Error("diaspora above max must fail")
	}
	if _, err := NewManager(m, topo.CoreID(0)); err == nil {
		t.Error("reserved source must fail")
	}
	// Excessive max cap is clamped, not an error.
	mgr, err := NewManager(m, src, WithMaxDiaspora(99))
	if err != nil {
		t.Fatal(err)
	}
	if mgr.maxDiaspora != m.MaxDiaspora(src) {
		t.Fatal("max diaspora not clamped")
	}
}

func TestGrantJumpsToCoveringZone(t *testing.T) {
	m, src := simMesh()
	mgr, _ := NewManager(m, src, WithMaxDiaspora(4))
	// A multiplicative desire (ASTEAL-style) is granted directly: 27
	// needs d=4.
	a, changed := mgr.Grant(27)
	if !changed || a.Size() != 27 {
		t.Fatalf("grant = (%d, %v), want (27, true)", a.Size(), changed)
	}
	// At the cap, further increase requests change nothing.
	a, changed = mgr.Grant(40)
	if changed || a.Size() != 27 {
		t.Fatalf("grant at cap = (%d, %v), want (27, false)", a.Size(), changed)
	}
	// A big shrink also jumps.
	a, changed = mgr.Grant(6)
	if !changed || a.Size() != 12 {
		t.Fatalf("shrink grant = (%d, %v), want (12, true)", a.Size(), changed)
	}
}

func TestGrantRoundsUpToZone(t *testing.T) {
	m, src := simMesh()
	mgr, _ := NewManager(m, src, WithMaxDiaspora(4))
	// Desire 8 needs at least d=2 (12 workers): increment requests are
	// always satisfied at zone granularity.
	a, changed := mgr.Grant(8)
	if !changed || a.Size() != 12 {
		t.Fatalf("grant = (%d, %v), want (12, true)", a.Size(), changed)
	}
}

func TestGrantDecrease(t *testing.T) {
	m, src := simMesh()
	mgr, _ := NewManager(m, src, WithInitialDiaspora(3), WithMaxDiaspora(4))
	a, changed := mgr.Grant(5)
	if !changed || a.Size() != 5 {
		t.Fatalf("decrease = (%d, %v), want (5, true)", a.Size(), changed)
	}
	// Below the minimum nothing changes.
	a, changed = mgr.Grant(1)
	if changed || a.Size() != 5 {
		t.Fatalf("grant below min = (%d, %v), want (5, false)", a.Size(), changed)
	}
}

func TestGrantKeep(t *testing.T) {
	m, src := simMesh()
	mgr, _ := NewManager(m, src)
	if _, changed := mgr.Grant(5); changed {
		t.Fatal("grant of current size must not change anything")
	}
	// A desire within the current zone's size also keeps.
	if _, changed := mgr.Grant(4); changed {
		t.Fatal("desire 4 still fits d=1")
	}
}

func TestGrantSeriesLinux(t *testing.T) {
	m := topo.MustMesh(8, 6)
	m.Reserve(0, 1, 2)
	mgr, err := NewManager(m, 28, WithMaxDiaspora(6))
	if err != nil {
		t.Fatal(err)
	}
	// Stepping the desire one worker past the current size traverses the
	// exact allotment series of the paper's 48-core platform.
	sizes := []int{mgr.Current().Size()}
	for {
		a, changed := mgr.Grant(mgr.Current().Size() + 1)
		if !changed {
			break
		}
		sizes = append(sizes, a.Size())
	}
	want := []int{5, 13, 24, 35, 42, 45}
	if !reflect.DeepEqual(sizes, want) {
		t.Fatalf("growth series = %v, want %v", sizes, want)
	}
}

func TestManagerWorkerCapClampsGrants(t *testing.T) {
	m, src := simMesh()
	mgr, err := NewManager(m, src, WithMaxDiaspora(4))
	if err != nil {
		t.Fatal(err)
	}
	// Uncapped: the series tops out at 27.
	if got := mgr.EffectiveMaxWorkers(); got != 27 {
		t.Fatalf("uncapped EffectiveMaxWorkers = %d, want 27", got)
	}
	a, _ := mgr.Grant(27)
	if a.Size() != 27 {
		t.Fatalf("uncapped grant = %d, want 27", a.Size())
	}
	// Cap between zones: the largest fitting zone wins (cap 15 -> 12).
	mgr.SetWorkerCap(15)
	if got := mgr.EffectiveMaxWorkers(); got != 12 {
		t.Fatalf("capped EffectiveMaxWorkers = %d, want 12", got)
	}
	a, changed := mgr.Grant(27)
	if !changed || a.Size() != 12 {
		t.Fatalf("capped grant = %d (changed %v), want 12", a.Size(), changed)
	}
	// Cap below the minimal zone floors at zone 1.
	mgr.SetWorkerCap(2)
	if got := mgr.EffectiveMaxWorkers(); got != 5 {
		t.Fatalf("floor EffectiveMaxWorkers = %d, want 5 (zone-1 floor)", got)
	}
	a, _ = mgr.Grant(27)
	if a.Size() != 5 {
		t.Fatalf("floored grant = %d, want 5", a.Size())
	}
	// Lifting the cap restores the full series.
	mgr.SetWorkerCap(0)
	if got := mgr.EffectiveMaxWorkers(); got != 27 {
		t.Fatalf("uncapped again = %d, want 27", got)
	}
	a, _ = mgr.Grant(20)
	if a.Size() != 20 {
		t.Fatalf("grant after lift = %d, want 20", a.Size())
	}
}

func TestManagerWorkerCapExactZone(t *testing.T) {
	m, src := simMesh()
	mgr, err := NewManager(m, src, WithMaxDiaspora(4))
	if err != nil {
		t.Fatal(err)
	}
	mgr.SetWorkerCap(12)
	a, _ := mgr.Grant(100)
	if a.Size() != 12 {
		t.Fatalf("grant at exact zone cap = %d, want 12", a.Size())
	}
	if got := mgr.WorkerCap(); got != 12 {
		t.Fatalf("WorkerCap = %d, want 12", got)
	}
}
