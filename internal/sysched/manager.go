// Package sysched is the system layer of the paper's two-level scheduling
// architecture: it owns the mapping from estimator requests to actual
// worker grants.
//
// The system scheduler adds and removes workers in whole zones (§4.1/§5):
// allotment sizes step through the zone series of the topology (5, 12, 20,
// 27 on the 32-core platform; 5, 13, 24, 35, 42, 45 on the 48-core one).
// In the paper's evaluation the OS always satisfies increment requests up
// to the total number of available cores; Manager reproduces that policy
// for a single application. Arbiter extends it to multiprogrammed
// deployments (paper Fig. 2), where competing applications receive
// incomplete allotments.
package sysched

import (
	"fmt"
	"sync/atomic"

	"palirria/internal/topo"
)

// Manager grants zone-granular allotments to a single application.
type Manager struct {
	mesh        *topo.Mesh
	source      topo.CoreID
	minDiaspora int
	maxDiaspora int
	// current is atomic so Current is safe from any goroutine: Grant runs
	// on the runtime's estimation helper while chaos/serving layers read
	// the grant concurrently.
	current atomic.Pointer[topo.Allotment]

	// zoneSizes[d-1] is the size of the complete allotment of diaspora d.
	zoneSizes []int
	// workerCap is a dynamic worker-count ceiling imposed from above (the
	// multiprogramming arbiter); 0 means uncapped. It is atomic because the
	// re-arbitration loop writes it while the estimation helper calls Grant.
	workerCap atomic.Int64
}

// Option configures a Manager.
type Option func(*Manager)

// WithMaxDiaspora caps the allotment's diaspora. The paper's evaluation
// steps through fixed zone sets, capping the simulator platform at d=4
// (27 workers) and the NUMA platform at d=6 (45 workers).
func WithMaxDiaspora(d int) Option {
	return func(m *Manager) { m.maxDiaspora = d }
}

// WithInitialDiaspora sets the starting diaspora (default 1: the minimum
// set of 5 workers the adaptive implementations start with).
func WithInitialDiaspora(d int) Option {
	return func(m *Manager) { m.minDiaspora = d }
}

// NewManager creates a manager whose application starts with the minimal
// allotment (zone 1 plus the source) unless configured otherwise.
func NewManager(mesh *topo.Mesh, source topo.CoreID, opts ...Option) (*Manager, error) {
	m := &Manager{
		mesh:        mesh,
		source:      source,
		minDiaspora: 1,
		maxDiaspora: mesh.MaxDiaspora(source),
	}
	for _, o := range opts {
		o(m)
	}
	if m.maxDiaspora > mesh.MaxDiaspora(source) {
		m.maxDiaspora = mesh.MaxDiaspora(source)
	}
	if m.maxDiaspora < 1 {
		// Degenerate single-core machine: the allotment is just the source.
		m.maxDiaspora = 1
	}
	if m.minDiaspora < 1 || m.minDiaspora > m.maxDiaspora {
		return nil, fmt.Errorf("sysched: initial diaspora %d outside [1, %d]", m.minDiaspora, m.maxDiaspora)
	}
	a, err := topo.NewAllotment(mesh, source, m.minDiaspora)
	if err != nil {
		return nil, err
	}
	m.current.Store(a)
	for d := 1; d <= m.maxDiaspora; d++ {
		za, err := topo.NewAllotment(mesh, source, d)
		if err != nil {
			break
		}
		m.zoneSizes = append(m.zoneSizes, za.Size())
	}
	if len(m.zoneSizes) == 0 {
		m.zoneSizes = []int{a.Size()}
	}
	m.maxDiaspora = len(m.zoneSizes)
	return m, nil
}

// Current returns the granted allotment. Safe from any goroutine; the
// returned allotment is immutable.
func (m *Manager) Current() *topo.Allotment { return m.current.Load() }

// SetWorkerCap imposes (or, with n <= 0, lifts) a dynamic worker-count
// ceiling on future grants. Grants stay zone-granular: the effective limit
// is the largest complete allotment not exceeding the cap, with the
// minimal zone-1 allotment as the floor. Safe to call concurrently with
// Grant.
func (m *Manager) SetWorkerCap(n int) {
	if n < 0 {
		n = 0
	}
	m.workerCap.Store(int64(n))
}

// WorkerCap returns the current dynamic ceiling (0 = uncapped).
func (m *Manager) WorkerCap() int { return int(m.workerCap.Load()) }

// sizeAt returns the complete-allotment size of diaspora d (1-based).
func (m *Manager) sizeAt(d int) int { return m.zoneSizes[d-1] }

// EffectiveMaxWorkers is the largest allotment size currently grantable:
// the maxDiaspora size clamped by the worker cap to the largest zone size
// that fits, flooring at the zone-1 minimum.
func (m *Manager) EffectiveMaxWorkers() int {
	max := m.zoneSizes[len(m.zoneSizes)-1]
	cap := int(m.workerCap.Load())
	if cap <= 0 || cap >= max {
		return max
	}
	best := m.zoneSizes[0]
	for _, s := range m.zoneSizes {
		if s <= cap {
			best = s
		} else {
			break
		}
	}
	return best
}

// Series returns the allotment sizes reachable under the diaspora cap.
func (m *Manager) Series() []int {
	return topo.ZoneSeries(m.mesh, m.source, m.maxDiaspora)
}

// Grant maps a desired worker count to the zone-granular allotment the
// system actually provides: the smallest complete allotment with at least
// desired workers, clamped to [1, maxDiaspora]. It returns the new
// allotment and whether it changed.
//
// The OS "removes and adds workers in sets" (whole zones) but a single
// grant may cross several zones at once: Palirria's estimates move one
// zone per quantum by construction, while ASTEAL's multiplicative desire
// deliberately jumps — that exponential convergence (and the drain cost of
// its over-corrections) is part of the algorithm being compared.
func (m *Manager) Grant(desired int) (*topo.Allotment, bool) {
	cap := int(m.workerCap.Load())
	if cap > 0 && desired > cap {
		desired = cap
	}
	targetD := m.diasporaFor(desired)
	if targetD > m.maxDiaspora {
		targetD = m.maxDiaspora
	}
	if targetD < 1 {
		targetD = 1
	}
	// The zone holding `desired` workers may overshoot the cap (zones are
	// coarse); step back to the largest zone that fits, flooring at d=1.
	for cap > 0 && targetD > 1 && m.sizeAt(targetD) > cap {
		targetD--
	}
	cur := m.current.Load()
	if targetD == cur.Diaspora() {
		return cur, false
	}
	a, err := topo.NewAllotment(m.mesh, m.source, targetD)
	if err != nil {
		return cur, false
	}
	m.current.Store(a)
	return a, true
}

// diasporaFor returns the smallest diaspora whose complete allotment holds
// at least desired workers, clamped to the cap.
func (m *Manager) diasporaFor(desired int) int {
	for d := 1; d <= m.maxDiaspora; d++ {
		a, err := topo.NewAllotment(m.mesh, m.source, d)
		if err != nil {
			break
		}
		if a.Size() >= desired {
			return d
		}
	}
	return m.maxDiaspora
}
