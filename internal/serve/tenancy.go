package serve

import (
	"fmt"
	"sync"
	"time"

	"palirria/internal/sysched"
	"palirria/internal/topo"
)

// Tenancy is the machine-level layer of the two-level architecture for
// several resident pools: an arbitration mesh models the machine's cores,
// each pool registers as one application with a sysched.Arbiter, and a
// re-arbitration loop periodically redistributes disjoint worker shares
// according to each pool's live desire. A pool's share is imposed on its
// runtime as a dynamic worker cap, so its next grants grow or shrink into
// the share zone-granularly. Drained pools are detected by the loop and
// their cores are released back to the free pool.
//
// The arbitration mesh is an accounting model: each pool still runs its
// workers on its own virtual mesh (goroutines timeshare the machine), but
// the shares are disjoint and sum to at most the arbitration mesh's
// usable cores — resource conservation across tenants, exactly the
// paper's Fig. 2 deployment.
type Tenancy struct {
	mesh     *topo.Mesh
	ab       *sysched.Arbiter
	interval time.Duration

	mu      sync.Mutex
	tenants []*tenant

	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

type tenant struct {
	pool *Pool
	app  *sysched.App
}

// NewTenancy builds a tenancy over the arbitration mesh. interval is the
// re-arbitration period (default 20ms) — it should be a few estimation
// quanta, so desires have settled between redistributions.
func NewTenancy(mesh *topo.Mesh, interval time.Duration) *Tenancy {
	if interval <= 0 {
		interval = 20 * time.Millisecond
	}
	return &Tenancy{
		mesh:     mesh,
		ab:       sysched.NewArbiter(mesh),
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Attach registers pool as a tenant with the given source core on the
// arbitration mesh and immediately imposes its seed share as the pool's
// worker cap.
func (t *Tenancy) Attach(pool *Pool, source topo.CoreID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tn := range t.tenants {
		if tn.pool == pool {
			return fmt.Errorf("serve: pool %q already attached", pool.Name())
		}
	}
	app, err := t.ab.Register(pool.Name(), source)
	if err != nil {
		return err
	}
	t.tenants = append(t.tenants, &tenant{pool: pool, app: app})
	pool.SetMaxWorkers(app.Allotment().Size())
	return nil
}

// Start launches the re-arbitration loop (idempotent).
func (t *Tenancy) Start() {
	t.startOnce.Do(func() {
		go func() {
			defer close(t.done)
			ticker := time.NewTicker(t.interval)
			defer ticker.Stop()
			for {
				select {
				case <-t.stop:
					return
				case <-ticker.C:
					t.Rearbitrate()
				}
			}
		}()
	})
}

// Rearbitrate performs one redistribution round: drained tenants release
// their cores; live tenants bid their current desire and receive a
// disjoint share, imposed as their runtime's worker cap. Exported so
// tests (and callers preferring manual pacing) can drive the loop
// deterministically.
func (t *Tenancy) Rearbitrate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	live := t.tenants[:0]
	for _, tn := range t.tenants {
		if tn.pool.Drained() {
			t.ab.Release(tn.app)
			continue
		}
		live = append(live, tn)
	}
	t.tenants = live
	// Each tenant bids the peak desire of the epoch, sampled exactly once
	// per round. Shrinkers go first, so the cores they return are
	// grantable to growers in the same round.
	bids := make(map[*tenant]int, len(t.tenants))
	for _, tn := range t.tenants {
		bids[tn] = tn.pool.takeBid()
	}
	for _, tn := range t.tenants {
		if bids[tn] <= tn.app.Allotment().Size() {
			t.ab.Request(tn.app, bids[tn])
		}
	}
	for _, tn := range t.tenants {
		if bids[tn] > tn.app.Allotment().Size() {
			t.ab.Request(tn.app, bids[tn])
		}
	}
	for _, tn := range t.tenants {
		tn.pool.SetMaxWorkers(tn.app.Allotment().Size())
	}
}

// TenantStatus is one tenant's arbitration state.
type TenantStatus struct {
	Name string `json:"name"`
	// Share is the worker count currently granted by the arbiter.
	Share int `json:"share"`
	// Desire is the pool's current bid.
	Desire int `json:"desire"`
	// ShedLevel is the pool's shed ladder position (0 admits everything;
	// level L sheds every priority class below L), so a tenancy listing
	// shows which tenants are squeezed into shedding by their share.
	ShedLevel int32 `json:"shed_level,omitempty"`
}

// Snapshot lists the live tenants' shares, desires, and shed levels.
func (t *Tenancy) Snapshot() []TenantStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TenantStatus, 0, len(t.tenants))
	for _, tn := range t.tenants {
		out = append(out, TenantStatus{
			Name:      tn.pool.Name(),
			Share:     tn.app.Allotment().Size(),
			Desire:    tn.pool.LiveDesire(),
			ShedLevel: tn.pool.shedLevel.Load(),
		})
	}
	return out
}

// FreeCores returns the unallocated cores of the arbitration mesh.
func (t *Tenancy) FreeCores() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ab.FreeCores()
}

// Close stops the re-arbitration loop. It does not drain the pools.
func (t *Tenancy) Close() {
	t.closeOnce.Do(func() { close(t.stop) })
	t.Start() // ensure the loop goroutine exists before waiting on it
	<-t.done
}
