package serve

import (
	"context"
	"sync/atomic"

	"palirria/internal/obs/stream"
	"palirria/internal/wsrt"
)

// dagNode is the dependency ledger's record for one submitted node: the
// pool job plus the graph bookkeeping that releases or cancels it.
type dagNode struct {
	j       *job
	class   Class
	wrapped wsrt.Func
	onDone  func()
	// indeg counts unfinished predecessors; the last terminal predecessor
	// decrements it to zero and launches the node.
	indeg atomic.Int32
	succs []int
	// released flips exactly once: either the node was handed to the
	// runtime (launch) or it was finalized as cancelled (cancel). The CAS
	// is what makes the terminal accounting exactly-once even when
	// several failing predecessors race to cancel the same descendant.
	released atomic.Bool
	// cause, when set before the node resolves, refines await's
	// ErrDiscarded into the DAG-specific cause (ErrCancelled). Written
	// before onDone closes j.done, read only after it.
	cause error
}

// dag is one submitted job graph's ledger.
type dag struct {
	p     *Pool
	nodes []*dagNode
}

// validateDAG checks dependency indices and acyclicity (Kahn), returning
// each node's initial indegree.
func validateDAG(nodes []DAGNode) ([]int32, error) {
	indeg := make([]int32, len(nodes))
	for i, n := range nodes {
		for _, d := range n.Deps {
			if d < 0 || d >= len(nodes) {
				return nil, ErrBadDAG
			}
			indeg[i]++
		}
	}
	// Kahn: repeatedly release zero-indegree nodes; leftovers are a cycle.
	work := append([]int32(nil), indeg...)
	queue := make([]int, 0, len(nodes))
	for i := range nodes {
		if work[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	succs := make([][]int, len(nodes))
	for i, n := range nodes {
		for _, d := range n.Deps {
			succs[d] = append(succs[d], i)
		}
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, s := range succs[i] {
			if work[s]--; work[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != len(nodes) {
		return nil, ErrBadDAG
	}
	return indeg, nil
}

// SubmitDAG admits a job graph as one unit and waits for every node. The
// runtime releases a node the moment its last predecessor completes —
// pipelines and map/reduce shapes flow through the resident allotment
// without any caller-side sequencing — and a predecessor that does not
// complete (cancelled, discarded at shutdown) cancels every
// not-yet-released descendant with exactly-once terminal accounting.
//
// The returned slice is aligned with nodes: entry i is nil when node i
// completed, ErrCancelled when a failed predecessor cancelled it, or the
// per-job error Submit would have returned. The second return is non-nil
// only for a structurally invalid graph (ErrBadDAG: out-of-range
// dependency or cycle), in which case nothing was admitted.
//
// Admission is all-or-nothing: the whole graph needs queue slots for all
// of its nodes (ErrQueueFull otherwise), is shed as a unit on its highest
// class, and a node deadline that is already unmeetable rejects the graph
// with ErrDeadline before anything runs.
func (p *Pool) SubmitDAG(ctx context.Context, nodes []DAGNode) ([]error, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	indeg, err := validateDAG(nodes)
	if err != nil {
		return nil, err
	}
	errs := make([]error, len(nodes))
	fill := func(err error) []error {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	if p.state.Load() != poolAccepting {
		return fill(ErrDraining), nil
	}
	if err := ctx.Err(); err != nil {
		return fill(err), nil
	}
	maxClass := ClassLow
	for _, n := range nodes {
		if c := n.Class.clamp(); c > maxClass {
			maxClass = c
		}
	}
	lvl := p.shedLevel.Load()
	if lvl > int32(maxClass) {
		p.rejectedShed.Add(int64(len(nodes)))
		for _, n := range nodes {
			c := n.Class.clamp()
			p.classShed[c].Add(1)
			p.publishEv(stream.Event{Kind: stream.KindShed, Reason: "shed",
				Detail: c.String(), Arg: int64(lvl)})
		}
		return fill(ErrOverloaded), nil
	}
	for _, n := range nodes {
		if wait, late := p.missesDeadline(n.Deadline); late {
			p.rejectedDeadline.Add(int64(len(nodes)))
			for _, m := range nodes {
				p.classShed[m.Class.clamp()].Add(1)
			}
			p.publishEv(stream.Event{Kind: stream.KindDeadlineShed, Reason: "deadline",
				Detail: n.Class.clamp().String(), Arg: wait})
			return fill(ErrDeadline), nil
		}
	}
	// All-or-nothing slot acquisition: a partially admitted graph would
	// deadlock against itself when the missing nodes are predecessors.
	for i := range nodes {
		select {
		case p.slots <- struct{}{}:
		default:
			for k := 0; k < i; k++ {
				<-p.slots
			}
			p.rejectedFull.Add(int64(len(nodes)))
			for _, n := range nodes {
				p.publishEv(stream.Event{Kind: stream.KindShed, Reason: "full",
					Detail: n.Class.clamp().String(), Arg: int64(lvl)})
			}
			return fill(ErrQueueFull), nil
		}
	}

	d := &dag{p: p, nodes: make([]*dagNode, len(nodes))}
	for i, n := range nodes {
		class := n.Class.clamp()
		j, wrapped, onDone := p.prepare(n.Fn, class)
		dn := &dagNode{j: j, class: class, wrapped: wrapped, onDone: onDone}
		dn.indeg.Store(indeg[i])
		d.nodes[i] = dn
	}
	for i, n := range nodes {
		for _, dep := range n.Deps {
			d.nodes[dep].succs = append(d.nodes[dep].succs, i)
		}
	}
	// Every node is on the books from here: each one's terminal
	// accounting (onDone) fires exactly once — by a worker, by the
	// shutdown flush, or by the ledger's cancel path — so counting the
	// whole graph admitted now preserves the conservation identity
	// Admitted == Completed + Cancelled at drain.
	p.inflight.Add(int64(len(nodes)))
	p.admitted.Add(int64(len(nodes)))
	for _, dn := range d.nodes {
		p.classAdmitted[dn.class].Add(1)
		p.publishEv(stream.Event{Kind: stream.KindAdmitted, Job: dn.j.id,
			Detail: dn.class.String(), Arg: int64(lvl)})
	}
	for i, dn := range d.nodes {
		if dn.indeg.Load() == 0 {
			d.launch(i)
		}
	}
	for i, dn := range d.nodes {
		errs[i] = p.await(ctx, dn.j)
		if errs[i] == ErrDiscarded && dn.cause != nil {
			errs[i] = dn.cause
		}
	}
	return errs, nil
}

// launch hands node i to the runtime. The released CAS makes it a no-op
// when a cancel already finalized the node; the terminal hook routes the
// runtime's exactly-once disposition back into the ledger.
func (d *dag) launch(i int) {
	dn := d.nodes[i]
	if !dn.released.CompareAndSwap(false, true) {
		return
	}
	err := d.p.rt.SubmitJob(wsrt.Job{
		Fn:         dn.wrapped,
		OnDone:     dn.onDone,
		OnTerminal: func(ran bool) { d.terminal(i, ran) },
	})
	if err != nil {
		// The runtime refused the node (a drain's shutdown won the race,
		// or the backlog bound broke). Finalize it here — the runtime
		// never saw it, so nobody else will — and fail its descendants.
		dn.cause = ErrDraining
		dn.j.state.CompareAndSwap(jobPending, jobCancelled)
		dn.onDone()
		d.cancelSuccs(i)
	}
}

// terminal is node i's release-on-terminal hook, fired exactly once by
// the runtime after the node's own onDone ran. A node that ran to
// completion releases its successors (atomic indegree decrement; the
// decrement that reaches zero launches); any other disposition — skipped
// because its context cancelled it while queued, or discarded unrun by
// the shutdown flush — cancels all not-yet-released descendants.
func (d *dag) terminal(i int, ran bool) {
	dn := d.nodes[i]
	if ran && dn.j.state.Load() == jobDone {
		for _, s := range dn.succs {
			if d.nodes[s].indeg.Add(-1) == 0 {
				d.launch(s)
			}
		}
		return
	}
	d.cancelSuccs(i)
}

func (d *dag) cancelSuccs(i int) {
	for _, s := range d.nodes[i].succs {
		d.cancel(s)
	}
}

// cancel finalizes a never-launched node as cancelled and recurses into
// its descendants. The released CAS dedups racing cancels (a node with
// two failed predecessors) and racing launches (a sibling completing
// concurrently); whichever path wins, the node's onDone — and with it the
// cancelled counter, the terminal stream event, the queue slot and the
// inflight decrement — fires exactly once.
func (d *dag) cancel(i int) {
	dn := d.nodes[i]
	if !dn.released.CompareAndSwap(false, true) {
		return
	}
	dn.cause = ErrCancelled
	dn.j.state.CompareAndSwap(jobPending, jobCancelled)
	dn.onDone()
	d.cancelSuccs(i)
}
