package serve

import (
	"context"
	"errors"
	"testing"

	"palirria/internal/obs/stream"
	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

// runPrefix builds a submitBatch stub that accepts exactly n jobs —
// running each accepted job inline through its wrapped body and firing
// its completion callback, like the runtime would — and rejects the rest
// with err.
func runPrefix(n int, err error) func([]wsrt.Job) (int, error) {
	return func(batch []wsrt.Job) (int, error) {
		if n > len(batch) {
			n = len(batch)
		}
		for k := 0; k < n; k++ {
			batch[k].Fn(nil)
			if batch[k].OnDone != nil {
				batch[k].OnDone()
			}
			if batch[k].OnTerminal != nil {
				batch[k].OnTerminal(true)
			}
		}
		return n, err
	}
}

// TestPoolBatchAdmittedMatchesRuntimePrefix pins SubmitBatch's admission
// accounting to the runtime-accepted prefix under both partial-acceptance
// shapes of the wsrt.Runtime.SubmitBatch contract: (n, ErrSubmitQueueFull)
// and (n>0, ErrClosed). The admitted counter, the per-class ledger, and
// the admitted stream events must all equal exactly n — the old code
// counted the whole pool-admitted batch, inflating admitted past what the
// runtime held and breaking admitted == completed + cancelled at drain.
func TestPoolBatchAdmittedMatchesRuntimePrefix(t *testing.T) {
	cases := []struct {
		name     string
		accept   int
		rtErr    error
		wantTail error
	}{
		{"submit_queue_full", 2, wsrt.ErrSubmitQueueFull, ErrQueueFull},
		{"closed_mid_batch", 1, wsrt.ErrClosed, ErrDraining},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hub := stream.NewHub()
			sub := hub.Subscribe(stream.SubOptions{Buf: 256,
				Kinds: []stream.Kind{stream.KindAdmitted}})
			p := quietPool(t, Config{Name: "t", QueueCap: 8, Events: hub,
				Runtime: wsrt.Config{Mesh: topo.MustMesh(2, 1)}})
			p.submitBatch = runPrefix(tc.accept, tc.rtErr)

			fns := make([]wsrt.Func, 5)
			for i := range fns {
				fns[i] = func(c *wsrt.Ctx) {}
			}
			errs := p.SubmitBatch(context.Background(), fns)
			for i := 0; i < tc.accept; i++ {
				if errs[i] != nil {
					t.Fatalf("accepted entry %d = %v, want nil", i, errs[i])
				}
			}
			for i := tc.accept; i < len(fns); i++ {
				if !errors.Is(errs[i], tc.wantTail) {
					t.Fatalf("rejected entry %d = %v, want %v", i, errs[i], tc.wantTail)
				}
			}

			st := p.Stats()
			if st.Admitted != int64(tc.accept) {
				t.Fatalf("admitted = %d, want runtime-accepted prefix %d", st.Admitted, tc.accept)
			}
			if st.ByClass[ClassLow].Admitted != int64(tc.accept) {
				t.Fatalf("class admitted = %d, want %d", st.ByClass[ClassLow].Admitted, tc.accept)
			}
			if st.Completed != int64(tc.accept) || st.InFlight != 0 {
				t.Fatalf("completed %d / in-flight %d, want %d / 0",
					st.Completed, st.InFlight, tc.accept)
			}
			if st.Admitted != st.Completed+st.Cancelled {
				t.Fatalf("conservation broken: admitted %d != completed %d + cancelled %d",
					st.Admitted, st.Completed, st.Cancelled)
			}
			if free := cap(p.slots) - len(p.slots); free != cap(p.slots) {
				t.Fatalf("slots leaked: %d of %d free", free, cap(p.slots))
			}

			sub.Close()
			admittedEvents := 0
			for ev := range sub.Events() {
				if ev.Kind == stream.KindAdmitted {
					admittedEvents++
				}
			}
			if admittedEvents != tc.accept {
				t.Fatalf("admitted events = %d, want %d", admittedEvents, tc.accept)
			}

			// Restore the real hand-off so Drain's shutdown path is exercised
			// against the actual runtime.
			p.submitBatch = p.rt.SubmitBatch
			drain(t, p)
		})
	}
}
