package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

// TestSubmitDAGPipelineOrder runs a four-stage pipeline and checks the
// stages execute strictly in dependency order with every node completing.
func TestSubmitDAGPipelineOrder(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 16})
	var mu sync.Mutex
	var order []int
	stage := func(i int) wsrt.Func {
		return func(c *wsrt.Ctx) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}
	}
	nodes := []DAGNode{
		{Fn: stage(0)},
		{Fn: stage(1), Deps: []int{0}},
		{Fn: stage(2), Deps: []int{1}},
		{Fn: stage(3), Deps: []int{2}},
	}
	errs, err := p.SubmitDAG(context.Background(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("node %d: %v", i, e)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 4 {
		t.Fatalf("ran %d stages, want 4: %v", len(order), order)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("stage order = %v, want strictly increasing", order)
		}
	}
	st := p.Stats()
	if st.Admitted != 4 || st.Completed != 4 || st.Cancelled != 0 {
		t.Fatalf("stats = admitted %d / completed %d / cancelled %d, want 4/4/0",
			st.Admitted, st.Completed, st.Cancelled)
	}
	drain(t, p)
}

// TestSubmitDAGMapReduce fans a root out to mappers and joins them in a
// reducer: the reducer must observe every mapper's contribution.
func TestSubmitDAGMapReduce(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 16})
	const mappers = 6
	var mu sync.Mutex
	mapped := 0
	reduced := -1
	nodes := make([]DAGNode, 0, mappers+2)
	nodes = append(nodes, DAGNode{Fn: func(c *wsrt.Ctx) {}})
	deps := make([]int, 0, mappers)
	for m := 0; m < mappers; m++ {
		nodes = append(nodes, DAGNode{Deps: []int{0}, Fn: func(c *wsrt.Ctx) {
			mu.Lock()
			mapped++
			mu.Unlock()
		}})
		deps = append(deps, m+1)
	}
	nodes = append(nodes, DAGNode{Deps: deps, Class: ClassHigh, Fn: func(c *wsrt.Ctx) {
		mu.Lock()
		reduced = mapped
		mu.Unlock()
	}})
	errs, err := p.SubmitDAG(context.Background(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("node %d: %v", i, e)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if reduced != mappers {
		t.Fatalf("reducer saw %d mapped, want %d", reduced, mappers)
	}
	st := p.Stats()
	if st.ByClass[ClassHigh].Completed != 1 || st.ByClass[ClassLow].Completed != int64(mappers+1) {
		t.Fatalf("per-class completions = %+v", st.ByClass)
	}
	drain(t, p)
}

// TestSubmitDAGInvalid rejects structural problems — cycles, self-loops,
// out-of-range dependencies — with ErrBadDAG and admits nothing.
func TestSubmitDAGInvalid(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 16})
	noop := func(c *wsrt.Ctx) {}
	cases := map[string][]DAGNode{
		"cycle":        {{Fn: noop, Deps: []int{1}}, {Fn: noop, Deps: []int{0}}},
		"self_loop":    {{Fn: noop, Deps: []int{0}}},
		"out_of_range": {{Fn: noop, Deps: []int{7}}},
		"negative":     {{Fn: noop, Deps: []int{-1}}},
	}
	for name, nodes := range cases {
		errs, err := p.SubmitDAG(context.Background(), nodes)
		if !errors.Is(err, ErrBadDAG) || errs != nil {
			t.Fatalf("%s: (%v, %v), want (nil, ErrBadDAG)", name, errs, err)
		}
	}
	if st := p.Stats(); st.Admitted != 0 || st.InFlight != 0 {
		t.Fatalf("invalid graphs admitted work: %+v", st)
	}
	// An empty graph is trivially complete.
	if errs, err := p.SubmitDAG(context.Background(), nil); err != nil || errs != nil {
		t.Fatalf("empty graph: (%v, %v), want (nil, nil)", errs, err)
	}
	drain(t, p)
}

// TestSubmitDAGAllOrNothingSlots requires queue slots for the whole graph
// up front: a graph larger than the free admission queue rejects every
// node with ErrQueueFull and leaks no slot.
func TestSubmitDAGAllOrNothingSlots(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 2,
		Runtime: wsrt.Config{Mesh: topo.MustMesh(2, 1)}})
	noop := func(c *wsrt.Ctx) {}
	nodes := []DAGNode{{Fn: noop}, {Fn: noop, Deps: []int{0}}, {Fn: noop, Deps: []int{1}}}
	errs, err := p.SubmitDAG(context.Background(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if !errors.Is(e, ErrQueueFull) {
			t.Fatalf("node %d: %v, want ErrQueueFull", i, e)
		}
	}
	st := p.Stats()
	if st.Admitted != 0 || st.RejectedFull != 3 || len(p.slots) != 0 {
		t.Fatalf("all-or-nothing broken: admitted %d, rejected_full %d, held slots %d",
			st.Admitted, st.RejectedFull, len(p.slots))
	}
	// A graph that fits admits normally afterwards.
	errs, err = p.SubmitDAG(context.Background(), nodes[:2])
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("follow-up node %d: %v", i, e)
		}
	}
	drain(t, p)
}

// TestSubmitDAGCancelPropagation cancels the submission context while the
// root holds the only workers: the queued descendants are skipped, their
// cancellations propagate transitively, and the conservation identity
// still holds at drain — every admitted node is exactly one of completed
// or cancelled.
func TestSubmitDAGCancelPropagation(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 16,
		Runtime: wsrt.Config{Mesh: topo.MustMesh(2, 1)}})
	gate := make(chan struct{})
	rootStarted := make(chan struct{})
	nodes := []DAGNode{
		{Fn: func(c *wsrt.Ctx) { close(rootStarted); <-gate }},
		{Deps: []int{0}, Fn: func(c *wsrt.Ctx) {}},
		{Deps: []int{1}, Fn: func(c *wsrt.Ctx) {}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	errsCh := make(chan []error, 1)
	go func() {
		errs, err := p.SubmitDAG(ctx, nodes)
		if err != nil {
			t.Errorf("SubmitDAG: %v", err)
		}
		errsCh <- errs
	}()
	<-rootStarted
	cancel()
	errs := <-errsCh
	for i, e := range errs {
		if !errors.Is(e, context.Canceled) {
			t.Fatalf("node %d: %v, want context.Canceled", i, e)
		}
	}
	close(gate)
	drain(t, p)
	st := p.Stats()
	if st.Admitted != 3 || st.InFlight != 0 {
		t.Fatalf("admitted %d / in-flight %d, want 3/0", st.Admitted, st.InFlight)
	}
	if st.Completed != 1 || st.Cancelled != 2 {
		t.Fatalf("completed %d / cancelled %d, want 1 (root) / 2 (descendants)",
			st.Completed, st.Cancelled)
	}
	drain(t, p)
}
