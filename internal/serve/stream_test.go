package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"palirria/internal/obs"
	"palirria/internal/obs/stream"
	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

// TestPoolStreamsJobLifecycle checks that every admitted job yields its
// admitted/started/completed triple with a consistent job id, and that
// all terminal events are on the hub before Drain returns.
func TestPoolStreamsJobLifecycle(t *testing.T) {
	hub := stream.NewHub()
	sub := hub.Subscribe(stream.SubOptions{Buf: 4096})
	p := quietPool(t, Config{Name: "web", Events: hub})

	const jobs = 20
	for i := 0; i < jobs; i++ {
		if err := p.Submit(context.Background(), func(c *wsrt.Ctx) {
			c.Spawn(func(cc *wsrt.Ctx) {})
			c.SyncAll()
		}); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, p)
	sub.Close()

	perJob := map[uint64]map[stream.Kind]int{}
	for ev := range sub.Events() {
		if ev.Pool != "web" {
			t.Fatalf("event with wrong pool label: %+v", ev)
		}
		if ev.Job == 0 {
			continue // quantum/sched events
		}
		if perJob[ev.Job] == nil {
			perJob[ev.Job] = map[stream.Kind]int{}
		}
		perJob[ev.Job][ev.Kind]++
	}
	if len(perJob) != jobs {
		t.Fatalf("saw %d distinct jobs, want %d", len(perJob), jobs)
	}
	for id, kinds := range perJob {
		if kinds[stream.KindAdmitted] != 1 || kinds[stream.KindStarted] != 1 ||
			kinds[stream.KindCompleted] != 1 || kinds[stream.KindCancelled] != 0 {
			t.Fatalf("job %d lifecycle events: %v", id, kinds)
		}
	}
}

func TestPoolStreamsShedAndQuantum(t *testing.T) {
	hub := stream.NewHub()
	sub := hub.Subscribe(stream.SubOptions{Buf: 256,
		Kinds: []stream.Kind{stream.KindShed, stream.KindQuantum}})
	p := quietPool(t, Config{Name: "web", QueueCap: 2, ShedQuanta: 2, Events: hub})

	// Fill the queue with blocked jobs, then overflow it.
	block := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), func(c *wsrt.Ctx) { <-block }) //nolint:errcheck
		}()
	}
	waitUntil(t, func() bool { return p.Stats().Running == 2 })
	if err := p.Submit(context.Background(), func(c *wsrt.Ctx) {}); err != ErrQueueFull {
		t.Fatalf("overflow submit: %v", err)
	}
	// Arm the shed latch via deterministic quantum taps.
	for i := 0; i < 2; i++ {
		p.noteQuantum(wsrt.QuantumInfo{Raw: 9, Filtered: 8, Granted: 4, Capacity: 8})
	}
	if err := p.Submit(context.Background(), func(c *wsrt.Ctx) {}); err != ErrOverloaded {
		t.Fatalf("shed submit: %v", err)
	}
	close(block)
	wg.Wait()
	drain(t, p)
	sub.Close()

	var full, shed, quanta int
	for ev := range sub.Events() {
		switch {
		case ev.Kind == stream.KindShed && ev.Reason == "full":
			full++
		case ev.Kind == stream.KindShed && ev.Reason == "shed":
			shed++
		case ev.Kind == stream.KindQuantum:
			quanta++
			if ev.Raw != 9 || ev.Desire != 8 || ev.Granted != 4 || ev.Capacity != 8 {
				t.Fatalf("quantum payload: %+v", ev)
			}
		}
	}
	if full != 1 || shed != 1 || quanta != 2 {
		t.Fatalf("full=%d shed=%d quanta=%d, want 1/1/2", full, shed, quanta)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWedgedSubscriberDoesNotBlockSubmit is the backpressure contract: a
// subscriber that never reads must cost Submit nothing beyond a failed
// non-blocking send, its unread events must be counted exactly, and the
// admission latency histogram must stay sane. Run under -race in CI.
func TestWedgedSubscriberDoesNotBlockSubmit(t *testing.T) {
	hub := stream.NewHub()
	// Buf 1 and never read: wedged from the second event on.
	wedged := hub.Subscribe(stream.SubOptions{Buf: 1})
	reg := obs.NewRegistry()
	p := quietPool(t, Config{
		Name:    "web",
		Metrics: reg,
		Events:  hub,
		Runtime: wsrt.Config{Mesh: topo.MustMesh(4, 2)},
	})

	const jobs = 200
	start := time.Now()
	for i := 0; i < jobs; i++ {
		if err := p.Submit(context.Background(), func(c *wsrt.Ctx) {}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	drain(t, p)

	// Submit throughput with a wedged subscriber: generously bounded, the
	// point is "not blocked until the subscriber reads" (which is never).
	if avg := elapsed / jobs; avg > 100*time.Millisecond {
		t.Fatalf("average submit+complete %v, wedged subscriber is backpressuring", avg)
	}
	st := p.Stats()
	if st.Completed != jobs {
		t.Fatalf("completed = %d, want %d", st.Completed, jobs)
	}
	if st.AdmitP99 <= 0 || st.AdmitP99 > 10 {
		t.Fatalf("admission p99 = %gs, want (0, 10s]", st.AdmitP99)
	}
	if st.AdmitP50 > st.AdmitP99 {
		t.Fatalf("p50 %g > p99 %g", st.AdmitP50, st.AdmitP99)
	}

	// Exact accounting: everything published is either in the wedged
	// buffer or counted dropped. The hub is quiescent after Drain (all
	// terminal events precede the drain's return, the runtime pump
	// flushed at teardown).
	if got := wedged.Delivered() + wedged.Dropped(); got != hub.Published() {
		t.Fatalf("delivered+dropped = %d, published = %d", got, hub.Published())
	}
	if wedged.Delivered() != 1 {
		t.Fatalf("delivered = %d, want exactly the buffer capacity 1", wedged.Delivered())
	}
	if wedged.Dropped() < jobs {
		t.Fatalf("dropped = %d, want >= %d", wedged.Dropped(), jobs)
	}
	wedged.Close()
}
