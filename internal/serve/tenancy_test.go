package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

func TestTenancyRedistributesByDesire(t *testing.T) {
	// Two resident pools on one arbitration mesh. Pool "hot" takes a
	// sustained burst, pool "cold" stays idle: re-arbitration must move
	// the worker shares toward the hot pool, and the shares must stay
	// disjoint within the machine model.
	mkPool := func(name string) *Pool {
		p, err := New(Config{
			Name: name,
			Runtime: wsrt.Config{
				Mesh:    topo.MustMesh(4, 4),
				Source:  5,
				Quantum: 500 * time.Microsecond,
			},
			QueueCap: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	hot, cold := mkPool("hot"), mkPool("cold")

	machine := topo.MustMesh(8, 4)
	ten := NewTenancy(machine, time.Hour) // driven manually
	if err := ten.Attach(hot, machine.ID(topo.Coord{X: 1, Y: 1})); err != nil {
		t.Fatal(err)
	}
	if err := ten.Attach(cold, machine.ID(topo.Coord{X: 6, Y: 2})); err != nil {
		t.Fatal(err)
	}
	if err := ten.Attach(hot, machine.ID(topo.Coord{X: 3, Y: 3})); err == nil {
		t.Fatal("double attach must fail")
	}

	// Sustained load on the hot pool.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var fan func(c *wsrt.Ctx, n int)
				fan = func(c *wsrt.Ctx, n int) {
					if n <= 1 {
						c.Compute(100_000)
						return
					}
					c.Spawn(func(cc *wsrt.Ctx) { fan(cc, n/2) })
					fan(c, n-n/2)
					c.Sync()
				}
				hot.Submit(context.Background(), func(c *wsrt.Ctx) { fan(c, 64) }) //nolint:errcheck
			}
		}()
	}
	// Let estimators settle, re-arbitrating as a machine loop would.
	deadline := time.Now().Add(5 * time.Second)
	var hotShare, coldShare int
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		ten.Rearbitrate()
		snap := ten.Snapshot()
		shares := map[string]int{}
		total := 0
		for _, s := range snap {
			shares[s.Name] = s.Share
			total += s.Share
		}
		if total+ten.FreeCores() != machine.Usable() {
			t.Fatalf("share accounting broken: %d granted + %d free != %d",
				total, ten.FreeCores(), machine.Usable())
		}
		hotShare, coldShare = shares["hot"], shares["cold"]
		if hotShare > coldShare {
			break
		}
	}
	close(stop)
	wg.Wait()
	if hotShare <= coldShare {
		t.Fatalf("re-arbitration did not favour the loaded pool: hot %d, cold %d", hotShare, coldShare)
	}

	// Draining a tenant releases its cores on the next round.
	drain(t, hot)
	freeBefore := ten.FreeCores()
	ten.Rearbitrate()
	if got := ten.FreeCores(); got <= freeBefore {
		t.Fatalf("drained tenant's cores not released: %d -> %d", freeBefore, got)
	}
	if snap := ten.Snapshot(); len(snap) != 1 || snap[0].Name != "cold" {
		t.Fatalf("snapshot after release = %+v", snap)
	}
	drain(t, cold)
	ten.Rearbitrate()
	if got := ten.FreeCores(); got != machine.Usable() {
		t.Fatalf("all cores must be free after both tenants drained: %d != %d",
			got, machine.Usable())
	}
	ten.Close()
}

func TestTenancyImposesCaps(t *testing.T) {
	// An idle tenant's runtime capacity must shrink to (the zone floor
	// of) its arbitrated share.
	p, err := New(Config{
		Name: "idle",
		Runtime: wsrt.Config{
			Mesh:    topo.MustMesh(4, 4),
			Source:  5,
			Quantum: 500 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	uncapped := p.Capacity()
	machine := topo.MustMesh(8, 4)
	ten := NewTenancy(machine, time.Hour)
	if err := ten.Attach(p, machine.ID(topo.Coord{X: 1, Y: 1})); err != nil {
		t.Fatal(err)
	}
	// Idle: desire decays to 1, the share follows, the cap follows it.
	var capped int
	for i := 0; i < 500; i++ {
		time.Sleep(2 * time.Millisecond)
		ten.Rearbitrate()
		if capped = p.Capacity(); capped < uncapped {
			break
		}
	}
	if capped >= uncapped {
		t.Fatalf("capacity did not shrink under arbitration: %d (uncapped %d)", capped, uncapped)
	}
	drain(t, p)
	ten.Close()
}

func TestTenancyStartStop(t *testing.T) {
	// The background loop form: attach, let it run, close. Exercises the
	// ticker path rather than manual Rearbitrate.
	p, err := New(Config{Name: "x", Runtime: wsrt.Config{
		Mesh: topo.MustMesh(4, 2), Quantum: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	machine := topo.MustMesh(4, 4)
	ten := NewTenancy(machine, time.Millisecond)
	if err := ten.Attach(p, 5); err != nil {
		t.Fatal(err)
	}
	ten.Start()
	var done atomic.Bool
	if err := p.Submit(context.Background(), func(c *wsrt.Ctx) { done.Store(true) }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	drain(t, p)
	ten.Close()
	if !done.Load() {
		t.Fatal("job did not run under tenancy")
	}
}
