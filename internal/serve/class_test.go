package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

// pinQuantum drives one saturated-desire quantum tap.
func pinQuantum(p *Pool) {
	cap := p.Capacity()
	p.noteQuantum(wsrt.QuantumInfo{Filtered: cap, Granted: cap, Capacity: cap})
}

// saturate fills the pool with blocked jobs until every queue slot is
// held, returning the release gate and the submitters' WaitGroup.
func saturate(t *testing.T, p *Pool, jobs int) (chan struct{}, *sync.WaitGroup) {
	t.Helper()
	gate := make(chan struct{})
	var wg sync.WaitGroup
	var started sync.WaitGroup
	for i := 0; i < jobs; i++ {
		started.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), func(c *wsrt.Ctx) { started.Done(); <-gate }) //nolint:errcheck
		}()
	}
	started.Wait()
	return gate, &wg
}

// TestPoolShedLadderEscalation walks the ladder one class at a time: at
// level L every class below L is rejected with ErrOverloaded before the
// queue is even consulted, while classes at or above L still reach the
// admission queue (and bounce off it with ErrQueueFull here, since the
// queue is saturated — the error kind is what distinguishes "shed by
// class" from "admitted but full").
func TestPoolShedLadderEscalation(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 2, ShedQuanta: 2,
		Runtime: wsrt.Config{Mesh: topo.MustMesh(2, 1)}})
	gate, wg := saturate(t, p, 2)

	submit := func(class Class) error {
		return p.SubmitJob(context.Background(), Job{Fn: func(c *wsrt.Ctx) {}, Class: class})
	}

	// Level 0: nothing shed; every class bounces off the full queue.
	for c := ClassLow; c < NumClasses; c++ {
		if err := submit(c); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("level 0, class %v: %v, want ErrQueueFull", c, err)
		}
	}

	steps := []struct {
		level int32
		shed  []Class
		full  []Class
	}{
		{1, []Class{ClassLow}, []Class{ClassNormal, ClassHigh}},
		{2, []Class{ClassLow, ClassNormal}, []Class{ClassHigh}},
		{3, []Class{ClassLow, ClassNormal, ClassHigh}, nil},
	}
	for _, step := range steps {
		pinQuantum(p)
		pinQuantum(p)
		if got := p.shedLevel.Load(); got != step.level {
			t.Fatalf("shed level = %d, want %d", got, step.level)
		}
		if got := p.Stats().ShedLevel; got != step.level {
			t.Fatalf("Stats.ShedLevel = %d, want %d", got, step.level)
		}
		for _, c := range step.shed {
			if err := submit(c); !errors.Is(err, ErrOverloaded) {
				t.Fatalf("level %d, class %v: %v, want ErrOverloaded", step.level, c, err)
			}
		}
		for _, c := range step.full {
			if err := submit(c); !errors.Is(err, ErrQueueFull) {
				t.Fatalf("level %d, class %v: %v, want ErrQueueFull", step.level, c, err)
			}
		}
	}

	// Per-class shed ledger: low was shed at levels 1, 2 and 3; normal at 2
	// and 3; high only at 3.
	st := p.Stats()
	if st.ByClass[ClassLow].Shed != 3 || st.ByClass[ClassNormal].Shed != 2 ||
		st.ByClass[ClassHigh].Shed != 1 {
		t.Fatalf("per-class shed = %d/%d/%d, want 3/2/1",
			st.ByClass[ClassLow].Shed, st.ByClass[ClassNormal].Shed, st.ByClass[ClassHigh].Shed)
	}

	// Desire dropping below capacity resets the whole ladder.
	cp := p.Capacity()
	p.noteQuantum(wsrt.QuantumInfo{Filtered: cp - 1, Granted: cp, Capacity: cp})
	if p.shedLevel.Load() != 0 || p.shedding.Load() {
		t.Fatal("ladder did not reset when desire dropped below capacity")
	}

	close(gate)
	wg.Wait()
	drain(t, p)
}

// TestPoolDeadlineShed seeds the admission histogram with a slow
// submit-to-start distribution and checks that an unmeetable deadline is
// rejected with ErrDeadline before touching the queue, while generous and
// absent deadlines admit normally.
func TestPoolDeadlineShed(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 8})
	// Observed p99 near 0.5s: a deadline a few ms out is unmeetable.
	for i := 0; i < 100; i++ {
		p.latHist.Observe(0.5)
	}
	err := p.SubmitJob(context.Background(), Job{
		Fn:       func(c *wsrt.Ctx) {},
		Class:    ClassHigh,
		Deadline: time.Now().Add(2 * time.Millisecond),
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("tight deadline: %v, want ErrDeadline", err)
	}
	st := p.Stats()
	if st.RejectedDeadline != 1 || st.ByClass[ClassHigh].Shed != 1 {
		t.Fatalf("deadline ledger: rejected %d, class shed %d, want 1/1",
			st.RejectedDeadline, st.ByClass[ClassHigh].Shed)
	}

	if err := p.SubmitJob(context.Background(), Job{
		Fn:       func(c *wsrt.Ctx) {},
		Deadline: time.Now().Add(time.Hour),
	}); err != nil {
		t.Fatalf("generous deadline: %v", err)
	}
	if err := p.SubmitJob(context.Background(), Job{Fn: func(c *wsrt.Ctx) {}}); err != nil {
		t.Fatalf("no deadline: %v", err)
	}
	if got := p.Stats().Admitted; got != 2 {
		t.Fatalf("admitted = %d, want 2", got)
	}
	drain(t, p)
}

// TestPoolDeadlineOverloadScaling pins the overload scaling of the wait
// prediction: with desire at twice capacity, a deadline that clears the
// raw p99 but not the scaled estimate is rejected.
func TestPoolDeadlineOverloadScaling(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 8})
	for i := 0; i < 100; i++ {
		p.latHist.Observe(0.1)
	}
	cap := p.Capacity()
	p.lastDesire.Store(int64(2 * cap))
	// Raw estimate ~0.1s, scaled ~0.2s or more: 150ms clears the former
	// but not the latter.
	wait, late := p.missesDeadline(time.Now().Add(150 * time.Millisecond))
	if !late {
		t.Fatalf("overload-scaled wait %dns did not reject a 150ms deadline", wait)
	}
	if wait < int64(150*time.Millisecond) {
		t.Fatalf("scaled wait = %v, want >= 150ms", time.Duration(wait))
	}
	p.lastDesire.Store(0)
	if _, late := p.missesDeadline(time.Now().Add(150 * time.Millisecond)); late {
		t.Fatal("unscaled 150ms deadline rejected against a 0.1s p99")
	}
	drain(t, p)
}

// TestPoolPriorityStarvationHammer floods the pool with low-class work
// under an armed shed ladder and checks that high-class submissions keep
// being admitted: a saturated low-class flood may bounce high-class jobs
// off the full queue, but it can never starve them through the ladder
// (run under -race in CI).
func TestPoolPriorityStarvationHammer(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 4, ShedQuanta: 2,
		Runtime: wsrt.Config{Mesh: topo.MustMesh(2, 1)}})
	var stop atomic.Bool
	var floodShed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				err := p.Submit(context.Background(), func(c *wsrt.Ctx) { c.Compute(5_000) })
				if errors.Is(err, ErrOverloaded) {
					floodShed.Add(1)
				}
			}
		}()
	}

	// Keep the ladder at exactly level 1 — pump saturated quanta only
	// while it is unarmed, so pinned never accumulates past one rung and
	// the high class is never ladder-eligible.
	highAdmitted := 0
	deadline := time.Now().Add(30 * time.Second)
	for highAdmitted < 5 && floodShed.Load() < 5 || highAdmitted < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("hammer timed out: %d high admitted, %d low shed",
				highAdmitted, floodShed.Load())
		}
		if p.shedLevel.Load() == 0 {
			// Hold pinned at one rung below arming so a pump while the queue
			// is saturated arms exactly level 1 — the level the flood is shed
			// at and the high class sails through. pinned is only ever
			// touched from this goroutine (the 1h quantum keeps the helper
			// quiet), so the write is race-free.
			p.pinned = p.cfg.ShedQuanta - 1
			pinQuantum(p)
			continue
		}
		err := p.SubmitJob(context.Background(),
			Job{Fn: func(c *wsrt.Ctx) {}, Class: ClassHigh})
		switch {
		case err == nil:
			highAdmitted++
		case errors.Is(err, ErrQueueFull):
			// Queue contention, not starvation: the flood holds the slots.
		case errors.Is(err, ErrOverloaded):
			t.Fatalf("high-class job shed at ladder level %d", p.shedLevel.Load())
		default:
			t.Fatalf("high submit: %v", err)
		}
	}
	stop.Store(true)
	wg.Wait()

	st := p.Stats()
	if st.ByClass[ClassHigh].Shed != 0 {
		t.Fatalf("high-class shed count = %d, want 0", st.ByClass[ClassHigh].Shed)
	}
	if st.ByClass[ClassLow].Shed == 0 {
		t.Fatal("flood was never shed — the ladder never armed")
	}
	if st.ByClass[ClassHigh].Admitted < 5 {
		t.Fatalf("high-class admitted = %d, want >= 5", st.ByClass[ClassHigh].Admitted)
	}
	drain(t, p)
}
