package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

// fanJob is the serving workload: a binary fan of n leaves, each computing
// work synthetic cycles.
func fanJob(n, work int) wsrt.Func {
	var fan func(c *wsrt.Ctx, n int)
	fan = func(c *wsrt.Ctx, n int) {
		if n <= 1 {
			c.Compute(int64(work))
			return
		}
		c.Spawn(func(cc *wsrt.Ctx) { fan(cc, n/2) })
		fan(c, n-n/2)
		c.Sync()
	}
	return func(c *wsrt.Ctx) { fan(c, n) }
}

// TestServeSustainedLoadWaves is the acceptance scenario: a resident pool
// under an open/closed wave pattern — bursts of concurrent fan/join jobs
// separated by idle valleys. The pool must admit every job it accepts
// exactly once (completed + cancelled == admitted, nothing in flight after
// drain), and the allotment must track the waves: growth above the zone
// floor during bursts, shrinkage back down in valleys.
func TestServeSustainedLoadWaves(t *testing.T) {
	p, err := New(Config{
		Name: "waves",
		Runtime: wsrt.Config{
			Mesh:    topo.MustMesh(4, 4),
			Source:  5,
			Quantum: 500 * time.Microsecond,
		},
		QueueCap: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	floor := p.AllotmentSize()

	var ok, rejected atomic.Int64
	peak, valleyMin := 0, 1<<30
	const maxCycles = 8
	for cycle := 0; cycle < maxCycles; cycle++ {
		// Burst: 16 closed-loop submitters keep the pool saturated well
		// above the floor allotment's throughput.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					switch err := p.Submit(context.Background(), fanJob(128, 20_000)); {
					case err == nil:
						ok.Add(1)
					case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrOverloaded):
						rejected.Add(1)
					default:
						t.Errorf("submit: %v", err)
						return
					}
				}
			}()
		}
		burstEnd := time.Now().Add(150 * time.Millisecond)
		for time.Now().Before(burstEnd) {
			if a := p.AllotmentSize(); a > peak {
				peak = a
			}
			time.Sleep(time.Millisecond)
		}
		close(stop)
		wg.Wait()

		// Valley: the stream stops; the helper keeps ticking on the idle
		// runtime and the allotment must come back down.
		valleyEnd := time.Now().Add(250 * time.Millisecond)
		for time.Now().Before(valleyEnd) {
			if a := p.AllotmentSize(); a < valleyMin {
				valleyMin = a
			}
			time.Sleep(2 * time.Millisecond)
		}
		if peak > floor && valleyMin < peak {
			break // both directions observed; no need to keep hammering
		}
	}
	if peak <= floor {
		t.Errorf("allotment never grew during bursts: peak %d, floor %d", peak, floor)
	}
	if valleyMin >= peak {
		t.Errorf("allotment never shrank in valleys: valley min %d, peak %d", valleyMin, peak)
	}

	drain(t, p)
	st := p.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in flight after drain: %d", st.InFlight)
	}
	if st.Completed+st.Cancelled != st.Admitted {
		t.Fatalf("lost jobs: admitted %d != completed %d + cancelled %d",
			st.Admitted, st.Completed, st.Cancelled)
	}
	if ok.Load() != st.Completed {
		t.Fatalf("client successes %d != completed %d", ok.Load(), st.Completed)
	}
	if st.Admitted == 0 {
		t.Fatal("no jobs admitted at all")
	}
	rep := p.Final()
	if rep == nil {
		t.Fatal("no final report after drain")
	}
	if rep.MaxWorkers != rep.Timeline.Max() {
		t.Fatalf("report inconsistent: MaxWorkers %d != timeline max %d",
			rep.MaxWorkers, rep.Timeline.Max())
	}
	if rep.MaxWorkers < peak {
		t.Fatalf("timeline peak %d below observed allotment %d", rep.MaxWorkers, peak)
	}
	t.Logf("waves: floor=%d peak=%d valleyMin=%d ok=%d rejected=%d admitted=%d",
		floor, peak, valleyMin, ok.Load(), rejected.Load(), st.Admitted)
}

// TestServeOverloadShedsAndRecovers drives the shed latch end to end with
// the real estimation helper: a tiny pool (allotment floor == capacity, so
// desire is structurally pinned) saturates its queue with blocked jobs,
// the latch arms after ShedQuanta live quanta, and once the backlog fully
// drains the latch releases and admission resumes.
func TestServeOverloadShedsAndRecovers(t *testing.T) {
	p, err := New(Config{
		Name: "tiny",
		Runtime: wsrt.Config{
			Mesh:    topo.MustMesh(2, 1),
			Quantum: 200 * time.Microsecond,
		},
		QueueCap:   3,
		ShedQuanta: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var started sync.WaitGroup
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		started.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), func(c *wsrt.Ctx) { started.Done(); <-gate }) //nolint:errcheck
		}()
	}
	started.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Submit(context.Background(), func(c *wsrt.Ctx) {}) //nolint:errcheck
	}()
	// All three slots held: two running, one queued. The helper must now
	// observe pinned desire + saturation and arm the latch.
	armed := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if p.shedding.Load() {
			armed = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !armed {
		t.Fatal("shed latch never armed under live saturation")
	}
	if err := p.Submit(context.Background(), func(c *wsrt.Ctx) {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit while overloaded = %v, want ErrOverloaded", err)
	}
	close(gate)
	wg.Wait()
	// Backlog gone: the latch must release (via the drained-empty path —
	// on this mesh desire can never drop below capacity) and admission
	// must resume.
	recovered := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		err := p.Submit(context.Background(), func(c *wsrt.Ctx) {})
		if err == nil {
			recovered = true
			break
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("submit during recovery = %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if !recovered {
		t.Fatal("pool never recovered from shedding after the backlog drained")
	}
	drain(t, p)
	st := p.Stats()
	if st.RejectedShed < 1 {
		t.Fatalf("rejectedShed = %d, want >= 1", st.RejectedShed)
	}
	if st.Completed+st.Cancelled != st.Admitted || st.InFlight != 0 {
		t.Fatalf("accounting broken: %+v", st)
	}
}
