package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"palirria/internal/core"
	"palirria/internal/obs"
	"palirria/internal/obs/stream"
	"palirria/internal/wsrt"
)

// Config describes a serving pool.
type Config struct {
	// Name labels the pool in metrics and multi-tenant listings.
	Name string
	// Runtime configures the resident work-stealing runtime. A nil
	// Estimator defaults to the Palirria estimator — a serving pool
	// without adaptation would pin its allotment forever. The pool owns
	// Runtime.OnQuantum; a caller-supplied callback is chained after the
	// pool's own bookkeeping.
	Runtime wsrt.Config
	// QueueCap bounds the jobs resident in the pool (queued + running);
	// Submit beyond it returns ErrQueueFull. Default 128.
	QueueCap int
	// ShedQuanta is how many consecutive quanta the filtered desire must
	// sit at the maximum grantable allotment (while the queue is
	// saturated) before the pool sheds load. Default 8.
	ShedQuanta int
	// Metrics, when set, registers the pool's counters and the admission
	// latency histogram (label pool=Name).
	Metrics *obs.Registry
	// Events, when set, publishes the pool's job lifecycle
	// (admitted/started/completed/cancelled/shed) and per-quantum
	// estimator digests on the hub, and is forwarded to the runtime so
	// scheduler ring events stream too. Publishing never blocks: slow
	// subscribers drop (and count) events, they cannot backpressure
	// Submit or the workers.
	Events *stream.Hub
}

// Pool lifecycle states.
const (
	poolAccepting int32 = iota
	poolDraining
	poolClosed
)

// job states. pending->running->done is the normal path;
// pending->cancelled is a context cancellation or shutdown discard.
const (
	jobPending int32 = iota
	jobRunning
	jobDone
	jobCancelled
)

type job struct {
	id    uint64
	class Class
	state atomic.Int32
	done  chan struct{}
}

// Pool is a resident serving pool: one persistent runtime, a bounded
// admission queue, estimator-driven shedding, and a graceful drain.
type Pool struct {
	cfg Config
	rt  *wsrt.Runtime
	hub *stream.Hub // nil disables streaming

	// submitBatch is the runtime hand-off used by SubmitBatch — normally
	// rt.SubmitBatch, replaceable by regression tests that pin the pool's
	// admitted accounting against both partial-acceptance shapes of the
	// wsrt contract: (n, ErrSubmitQueueFull) and (n>0, ErrClosed).
	submitBatch func([]wsrt.Job) (int, error)

	// jobSeq hands out the per-pool job ids carried on stream events.
	jobSeq atomic.Uint64

	// slots bounds resident jobs; acquired at admission, released when a
	// job completes or is discarded.
	slots chan struct{}

	state    atomic.Int32
	inflight atomic.Int64
	running  atomic.Int64

	// shedding is the overload latch; pinned counts consecutive quanta of
	// desire == capacity and is touched only by the helper goroutine.
	// shedLevel is the ladder position derived from pinned: 0 admits
	// everything, level L sheds every class below L (low at 1, normal at
	// 2, high at 3) — one more class per further ShedQuanta pinned quanta
	// while the queue stays saturated. shedding mirrors shedLevel > 0.
	shedding  atomic.Bool
	shedLevel atomic.Int32
	pinned    int

	lastDesire atomic.Int64
	peakDesire atomic.Int64

	admitted         atomic.Int64
	completed        atomic.Int64
	cancelled        atomic.Int64
	rejectedFull     atomic.Int64
	rejectedShed     atomic.Int64
	rejectedDeadline atomic.Int64

	// Per-class admission ledger: every class-C admission lands in
	// classAdmitted[C] and ends in classCompleted[C] or the pool-wide
	// cancelled counter; ladder and deadline rejections land in
	// classShed[C].
	classAdmitted  [NumClasses]atomic.Int64
	classShed      [NumClasses]atomic.Int64
	classCompleted [NumClasses]atomic.Int64

	// latHist is always maintained — deadline admission predicts the
	// queue wait from its p99 — but its quantiles surface in Stats only
	// when a metrics registry asked for them (latExported), so a pool
	// without Metrics keeps reporting zero quantiles to /status and the
	// gossip layer exactly as before the histogram became always-on.
	latHist     *obs.Histogram
	latExported bool

	closeOnce sync.Once
	drainedCh chan struct{}
	// idleCh is signalled (buffered, coalescing) whenever inflight drops
	// to zero, so Drain waits event-driven instead of polling.
	idleCh  chan struct{}
	finalMu sync.Mutex
	final   *wsrt.Report
}

// New builds the pool and starts its runtime in persistent mode. The pool
// is immediately accepting; callers must eventually Drain it.
func New(cfg Config) (*Pool, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 128
	}
	if cfg.ShedQuanta <= 0 {
		cfg.ShedQuanta = 8
	}
	if cfg.Name == "" {
		cfg.Name = "pool"
	}
	if cfg.Runtime.Estimator == nil {
		cfg.Runtime.Estimator = core.NewPalirria()
	}
	// The runtime-level queue must never reject a job the pool admitted.
	if cfg.Runtime.SubmitQueueCap < cfg.QueueCap {
		cfg.Runtime.SubmitQueueCap = cfg.QueueCap
	}
	// A runtime sharing a registry with other pools needs its worker
	// series kept distinct; default the label to the pool name.
	if cfg.Runtime.Metrics != nil && len(cfg.Runtime.MetricLabels) == 0 {
		cfg.Runtime.MetricLabels = []obs.Label{{Key: "pool", Value: cfg.Name}}
	}
	// Forward the hub to the runtime so scheduler ring events stream too,
	// labelled with the pool name.
	if cfg.Events != nil && cfg.Runtime.Events == nil {
		cfg.Runtime.Events = cfg.Events
		if cfg.Runtime.EventLabel == "" {
			cfg.Runtime.EventLabel = cfg.Name
		}
	}
	p := &Pool{
		cfg:       cfg,
		hub:       cfg.Events,
		slots:     make(chan struct{}, cfg.QueueCap),
		drainedCh: make(chan struct{}),
		idleCh:    make(chan struct{}, 1),
	}
	chained := cfg.Runtime.OnQuantum
	cfg.Runtime.OnQuantum = func(q wsrt.QuantumInfo) {
		p.noteQuantum(q)
		if chained != nil {
			chained(q)
		}
	}
	rt, err := wsrt.New(cfg.Runtime)
	if err != nil {
		return nil, err
	}
	p.rt = rt
	p.submitBatch = rt.SubmitBatch
	if cfg.Metrics != nil {
		p.registerMetrics(cfg.Metrics)
	}
	if p.latHist == nil {
		// Deadline admission predicts the queue wait from the observed
		// submit-to-start p99, so the histogram is maintained even when no
		// metrics registry asked for it.
		p.latHist = obs.NewHistogram(nil)
	}
	if err := rt.Start(); err != nil {
		return nil, err
	}
	return p, nil
}

// Name returns the pool's label.
func (p *Pool) Name() string { return p.cfg.Name }

// publish fans one lifecycle event onto the pool's hub (no-op without
// one). Hub publishing never blocks, so calling this from Submit, the
// job callbacks, and the helper goroutine costs a few atomics at most.
func (p *Pool) publish(kind stream.Kind, jobID uint64, reason string) {
	if p.hub == nil {
		return
	}
	p.hub.Publish(stream.Event{Kind: kind, Pool: p.cfg.Name, Job: jobID, Reason: reason})
}

// publishEv fans a pre-built event onto the hub, stamping the pool label
// — the variant for events that carry class/ladder fields.
func (p *Pool) publishEv(ev stream.Event) {
	if p.hub == nil {
		return
	}
	ev.Pool = p.cfg.Name
	p.hub.Publish(ev)
}

// noteQuantum is the pool's estimator tap, invoked once per quantum on
// the runtime's helper goroutine. It maintains the overload latch: armed
// after ShedQuanta consecutive quanta of filtered desire pinned at the
// maximum grantable allotment with a saturated queue, released as soon as
// desire drops below capacity.
func (p *Pool) noteQuantum(q wsrt.QuantumInfo) {
	p.lastDesire.Store(int64(q.Filtered))
	if p.hub != nil {
		p.hub.Publish(stream.Event{
			Kind:     stream.KindQuantum,
			Pool:     p.cfg.Name,
			Raw:      q.Raw,
			Desire:   q.Filtered,
			Granted:  q.Granted,
			Capacity: q.Capacity,
		})
	}
	for {
		peak := p.peakDesire.Load()
		if int64(q.Filtered) <= peak || p.peakDesire.CompareAndSwap(peak, int64(q.Filtered)) {
			break
		}
	}
	if q.Filtered >= q.Capacity {
		p.pinned++
	} else {
		p.pinned = 0
		p.shedLevel.Store(0)
		p.shedding.Store(false)
	}
	if p.pinned >= p.cfg.ShedQuanta && len(p.slots) >= p.cfg.QueueCap {
		// Ladder escalation: one more class is shed per further ShedQuanta
		// pinned quanta with the queue still saturated. The level only
		// ratchets up here — partially drained queues hold the latch (the
		// hysteresis the single-latch design had) until desire drops below
		// capacity or the pool drains empty.
		lvl := int32(p.pinned / p.cfg.ShedQuanta)
		if lvl > int32(NumClasses) {
			lvl = int32(NumClasses)
		}
		if lvl > p.shedLevel.Load() {
			p.shedLevel.Store(lvl)
		}
		p.shedding.Store(true)
	} else if p.shedding.Load() && len(p.slots) == 0 {
		// A pool whose minimum allotment equals its capacity never sees
		// desire drop below capacity, so the desire-based release above is
		// unreachable for it; a fully drained pool is unambiguous recovery.
		p.pinned = 0
		p.shedLevel.Store(0)
		p.shedding.Store(false)
	}
}

// Submit admits fn as one job and waits for it. It returns nil once the
// job (and every task it spawned) completed, or:
//
//   - ErrDraining when the pool no longer admits work;
//   - ErrOverloaded while the estimator-driven shed latch is armed;
//   - ErrQueueFull when the bounded admission queue is at capacity;
//   - ctx.Err() when the context expires — a job that has not started is
//     skipped entirely; a job already running completes in the background
//     (cooperative model: a fork/join body cannot be preempted) and is
//     still counted and drained;
//   - ErrDiscarded when the pool shut down before the job ran.
//
// Submit is SubmitJob with the zero Job: low priority, no deadline.
func (p *Pool) Submit(ctx context.Context, fn wsrt.Func) error {
	return p.SubmitJob(ctx, Job{Fn: fn})
}

// SubmitJob admits one classed, optionally deadlined job and waits for
// it. Beyond Submit's contract it can also return:
//
//   - ErrOverloaded when the shed ladder has reached the job's class
//     (low-class work is shed first, high-class last);
//   - ErrDeadline when the predicted submit-to-start wait (observed p99
//     scaled by the estimator's overload ratio) would miss Job.Deadline.
func (p *Pool) SubmitJob(ctx context.Context, jb Job) error {
	if p.state.Load() != poolAccepting {
		return ErrDraining
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	class := jb.Class.clamp()
	// The ladder level is sampled once and stamped on the decision's
	// stream event (Detail: class, Arg: level), so an event log totally
	// ordered by hub sequence can audit class ordering exactly: a "shed"
	// rejection always carries Arg > class, an admission Arg <= class.
	lvl := p.shedLevel.Load()
	if lvl > int32(class) {
		p.rejectedShed.Add(1)
		p.classShed[class].Add(1)
		p.publishEv(stream.Event{Kind: stream.KindShed, Reason: "shed",
			Detail: class.String(), Arg: int64(lvl)})
		return ErrOverloaded
	}
	if wait, late := p.missesDeadline(jb.Deadline); late {
		p.rejectedDeadline.Add(1)
		p.classShed[class].Add(1)
		p.publishEv(stream.Event{Kind: stream.KindDeadlineShed, Reason: "deadline",
			Detail: class.String(), Arg: wait})
		return ErrDeadline
	}
	select {
	case p.slots <- struct{}{}:
	default:
		p.rejectedFull.Add(1)
		p.publishEv(stream.Event{Kind: stream.KindShed, Reason: "full",
			Detail: class.String(), Arg: int64(lvl)})
		return ErrQueueFull
	}

	j, wrapped, onDone := p.prepare(jb.Fn, class)
	p.inflight.Add(1)
	if err := p.rt.Submit(wrapped, onDone); err != nil {
		if p.inflight.Add(-1) == 0 {
			p.noteIdle()
		}
		<-p.slots
		if errors.Is(err, wsrt.ErrClosed) {
			// Lost the race against a concurrent Drain's shutdown.
			return ErrDraining
		}
		return err
	}
	// Counted only now that the runtime holds the job: an admitted job is
	// one whose onDone is guaranteed to fire, so a concurrent Stats scrape
	// can never see more admissions than completions+cancellations+flight
	// (the pre-submit increment with post-failure rollback could).
	p.admitted.Add(1)
	p.classAdmitted[class].Add(1)
	// Published after the runtime holds the job, matching the admitted
	// counter; a fast job's started event may therefore precede its
	// admitted event in stream order.
	p.publishEv(stream.Event{Kind: stream.KindAdmitted, Job: j.id,
		Detail: class.String(), Arg: int64(lvl)})

	return p.await(ctx, j)
}

// missesDeadline predicts the submit-to-start wait for a job admitted now
// and reports whether it would start after deadline (zero deadlines never
// miss). The prediction is the observed p99 queue wait scaled by the
// estimator's overload ratio desire/capacity when desire exceeds capacity
// — the histogram lags a growing backlog, and the ratio is exactly the
// signal by which the estimator says the backlog is outgrowing the
// machine.
func (p *Pool) missesDeadline(deadline time.Time) (waitNS int64, late bool) {
	if deadline.IsZero() {
		return 0, false
	}
	est := p.latHist.Quantile(0.99) * 1e9
	if d, c := p.lastDesire.Load(), p.rt.Capacity(); c > 0 && d > int64(c) {
		est *= float64(d) / float64(c)
	}
	waitNS = int64(est)
	return waitNS, nowNS()+waitNS > deadline.UnixNano()
}

// prepare builds one job record with its wrapped body and completion
// callback — the per-job half of admission, shared by Submit and
// SubmitBatch. The caller owns the slot and inflight bookkeeping.
func (p *Pool) prepare(fn wsrt.Func, class Class) (*job, wsrt.Func, func()) {
	j := &job{id: p.jobSeq.Add(1), class: class, done: make(chan struct{})}
	submitNS := nowNS()
	wrapped := func(c *wsrt.Ctx) {
		if !j.state.CompareAndSwap(jobPending, jobRunning) {
			return // cancelled while queued
		}
		p.running.Add(1)
		if p.latHist != nil {
			p.latHist.Observe(float64(nowNS()-submitNS) / 1e9)
		}
		p.publish(stream.KindStarted, j.id, "")
		fn(c)
	}
	onDone := func() {
		// Fires after the job's task tree fully completed — or, for
		// skipped/discarded jobs, as soon as the runtime flushes them.
		// The terminal event publishes before the inflight decrement so
		// that every admitted job's terminal event is on the hub by the
		// time Drain observes the pool empty.
		if j.state.CompareAndSwap(jobRunning, jobDone) {
			p.running.Add(-1)
			p.completed.Add(1)
			p.classCompleted[j.class].Add(1)
			p.publish(stream.KindCompleted, j.id, "")
		} else {
			p.cancelled.Add(1)
			p.publish(stream.KindCancelled, j.id, "")
		}
		<-p.slots
		if p.inflight.Add(-1) == 0 {
			p.noteIdle()
		}
		close(j.done)
	}
	return j, wrapped, onDone
}

// await blocks until j resolves or ctx expires, translating the job state
// into Submit's error contract.
func (p *Pool) await(ctx context.Context, j *job) error {
	select {
	case <-j.done:
		if j.state.Load() == jobDone {
			return nil
		}
		return ErrDiscarded
	case <-ctx.Done():
		if j.state.CompareAndSwap(jobPending, jobCancelled) {
			return ctx.Err() // never started; will be skipped when dequeued
		}
		// Already running: detach. The job still completes and Drain
		// still waits for it.
		return ctx.Err()
	}
}

// SubmitBatch admits fns as one batch and waits for the admitted ones,
// handing them to the runtime through a single wsrt.SubmitBatch call so a
// wave of arrivals costs one seal-lock acquisition and at most one wakeup
// per injection shard instead of one each per job. The returned slice is
// aligned with fns: entry i is nil when job i completed, or carries the
// same per-job error Submit would have returned (pool-level rejections
// are applied per entry — a full admission queue rejects the overflow
// entries and admits the rest). If the whole pool is draining, shedding,
// or ctx already expired, every entry carries that error.
func (p *Pool) SubmitBatch(ctx context.Context, fns []wsrt.Func) []error {
	errs := make([]error, len(fns))
	fill := func(err error) []error {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	if p.state.Load() != poolAccepting {
		return fill(ErrDraining)
	}
	if err := ctx.Err(); err != nil {
		return fill(err)
	}
	lvl := p.shedLevel.Load()
	if lvl > int32(ClassLow) {
		p.rejectedShed.Add(int64(len(fns)))
		p.classShed[ClassLow].Add(int64(len(fns)))
		for range fns {
			p.publishEv(stream.Event{Kind: stream.KindShed, Reason: "shed",
				Detail: ClassLow.String(), Arg: int64(lvl)})
		}
		return fill(ErrOverloaded)
	}
	type admittedJob struct {
		idx int
		j   *job
	}
	var adm []admittedJob
	batch := make([]wsrt.Job, 0, len(fns))
	for i, fn := range fns {
		select {
		case p.slots <- struct{}{}:
		default:
			p.rejectedFull.Add(1)
			p.publishEv(stream.Event{Kind: stream.KindShed, Reason: "full",
				Detail: ClassLow.String(), Arg: int64(lvl)})
			errs[i] = ErrQueueFull
			continue
		}
		j, wrapped, onDone := p.prepare(fn, ClassLow)
		p.inflight.Add(1)
		adm = append(adm, admittedJob{idx: i, j: j})
		batch = append(batch, wsrt.Job{Fn: wrapped, OnDone: onDone})
	}
	if len(batch) == 0 {
		return errs
	}
	// Counted and published strictly for the runtime-accepted prefix: a
	// partial acceptance — (n, ErrSubmitQueueFull) or a mid-batch seal's
	// (n>0, ErrClosed) — must not inflate admitted past what the runtime
	// holds (TestPoolBatchAdmittedMatchesRuntimePrefix pins both shapes).
	n, err := p.submitBatch(batch)
	p.admitted.Add(int64(n))
	p.classAdmitted[ClassLow].Add(int64(n))
	for k := 0; k < n; k++ {
		p.publishEv(stream.Event{Kind: stream.KindAdmitted, Job: adm[k].j.id,
			Detail: ClassLow.String(), Arg: int64(lvl)})
	}
	// Jobs past the accepted prefix never reached the runtime: unwind
	// their admission and report the cause.
	for k := n; k < len(adm); k++ {
		if p.inflight.Add(-1) == 0 {
			p.noteIdle()
		}
		<-p.slots
		cause := err
		if errors.Is(err, wsrt.ErrClosed) {
			cause = ErrDraining
		} else if errors.Is(err, wsrt.ErrSubmitQueueFull) {
			// Unreachable when the pool owns its runtime (New forces
			// SubmitQueueCap >= QueueCap), but keep the mapping total.
			cause = ErrQueueFull
		}
		errs[adm[k].idx] = cause
	}
	for k := 0; k < n; k++ {
		errs[adm[k].idx] = p.await(ctx, adm[k].j)
	}
	return errs
}

// noteIdle signals Drain that inflight reached zero. The channel is
// buffered and sends coalesce, so completions never block on it.
func (p *Pool) noteIdle() {
	select {
	case p.idleCh <- struct{}{}:
	default:
	}
}

// Drain gracefully shuts the pool down: admission stops immediately,
// every in-flight job (queued jobs included) is waited for, then the
// runtime is shut down and its workers released. Safe to call from
// several goroutines; all of them return once the drain completes. If ctx
// expires first, Drain returns ctx.Err() with the pool left draining —
// call Drain again to keep waiting.
//
// The wait is event-driven: each completion that empties the pool signals
// idleCh, and a coarse safety tick re-checks the counter so a signal
// consumed by a concurrent Drain caller never strands another.
func (p *Pool) Drain(ctx context.Context) error {
	p.state.CompareAndSwap(poolAccepting, poolDraining)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for p.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-p.idleCh:
		case <-tick.C:
		}
	}
	p.closeOnce.Do(func() {
		rep, err := p.rt.Shutdown()
		if err == nil {
			p.finalMu.Lock()
			p.final = rep
			p.finalMu.Unlock()
		}
		p.state.Store(poolClosed)
		close(p.drainedCh)
	})
	select {
	case <-p.drainedCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drained reports whether the pool has fully shut down.
func (p *Pool) Drained() bool { return p.state.Load() == poolClosed }

// Final returns the runtime's end-of-life report (timeline, decisions,
// per-worker accounting); nil until the drain completes.
func (p *Pool) Final() *wsrt.Report {
	p.finalMu.Lock()
	defer p.finalMu.Unlock()
	return p.final
}

// LiveDesire is the filtered desire of the most recent quantum; before
// the first quantum it falls back to the current allotment size. The
// re-arbitration loop reads it as the pool's bid for cores.
func (p *Pool) LiveDesire() int {
	if d := int(p.lastDesire.Load()); d > 0 {
		return d
	}
	return p.rt.AllotmentSize()
}

// takeBid returns the peak filtered desire observed since the previous
// call, and resets the window. Estimation quanta are much shorter than
// arbitration rounds, so a point sample of the latest quantum would miss
// the transient Increase decisions that signal real demand; the windowed
// peak is the pool's honest bid for the whole epoch.
func (p *Pool) takeBid() int {
	peak := int(p.peakDesire.Swap(0))
	if d := p.LiveDesire(); d > peak {
		peak = d
	}
	return peak
}

// SetMaxWorkers imposes (n > 0) or lifts (n <= 0) a dynamic worker cap on
// the pool's runtime; see wsrt.Runtime.SetMaxWorkers.
func (p *Pool) SetMaxWorkers(n int) { p.rt.SetMaxWorkers(n) }

// Capacity returns the largest allotment currently grantable.
func (p *Pool) Capacity() int { return p.rt.Capacity() }

// AllotmentSize returns the current allotment size.
func (p *Pool) AllotmentSize() int { return p.rt.AllotmentSize() }

// Stats is a point-in-time snapshot of the pool's serving counters.
type Stats struct {
	Name string `json:"name"`
	// Admitted counts jobs that entered the pool; every one of them ends
	// up in exactly one of Completed or Cancelled.
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Cancelled int64 `json:"cancelled"`
	// RejectedFull, RejectedShed and RejectedDeadline count Submit
	// rejections by cause.
	RejectedFull     int64 `json:"rejected_full"`
	RejectedShed     int64 `json:"rejected_shed"`
	RejectedDeadline int64 `json:"rejected_deadline,omitempty"`
	// ByClass breaks admissions, ladder/deadline rejections, and
	// completions down by priority class, indexed low/normal/high.
	ByClass [NumClasses]ClassStats `json:"by_class"`
	// InFlight is queued + running; Running is jobs actually executing.
	InFlight int64 `json:"in_flight"`
	Running  int64 `json:"running"`
	Queued   int64 `json:"queued"`
	// Shedding reports the overload latch (ShedLevel > 0); ShedLevel is
	// the ladder position — level L sheds every class below L.
	// Draining/Closed report the lifecycle.
	Shedding  bool  `json:"shedding"`
	ShedLevel int32 `json:"shed_level,omitempty"`
	Draining  bool  `json:"draining"`
	Closed    bool  `json:"closed"`
	// Desire, Allotment and Capacity expose the estimation loop.
	Desire    int `json:"desire"`
	Allotment int `json:"allotment"`
	Capacity  int `json:"capacity"`
	QueueCap  int `json:"queue_cap"`
	// AdmitP50/AdmitP99 are submit-to-start latency quantiles in seconds,
	// interpolated from the admission histogram (zero before the first
	// started job).
	AdmitP50 float64 `json:"admit_p50_seconds"`
	AdmitP99 float64 `json:"admit_p99_seconds"`
}

// ClassStats is one priority class's slice of the admission ledger.
type ClassStats struct {
	Class string `json:"class"`
	// Admitted counts class jobs the runtime accepted; Shed counts ladder
	// and deadline rejections; Completed counts class jobs that ran to
	// completion.
	Admitted  int64 `json:"admitted"`
	Shed      int64 `json:"shed"`
	Completed int64 `json:"completed"`
}

// Stats samples the pool.
func (p *Pool) Stats() Stats {
	inflight := p.inflight.Load()
	running := p.running.Load()
	queued := inflight - running
	if queued < 0 {
		queued = 0
	}
	st := p.state.Load()
	var p50, p99 float64
	if p.latExported {
		p50 = p.latHist.Quantile(0.50)
		p99 = p.latHist.Quantile(0.99)
	}
	out := Stats{
		Name:             p.cfg.Name,
		Admitted:         p.admitted.Load(),
		Completed:        p.completed.Load(),
		Cancelled:        p.cancelled.Load(),
		RejectedFull:     p.rejectedFull.Load(),
		RejectedShed:     p.rejectedShed.Load(),
		RejectedDeadline: p.rejectedDeadline.Load(),
		InFlight:         inflight,
		Running:          running,
		Queued:           queued,
		Shedding:         p.shedding.Load(),
		ShedLevel:        p.shedLevel.Load(),
		Draining:         st == poolDraining,
		Closed:           st == poolClosed,
		Desire:           int(p.lastDesire.Load()),
		Allotment:        p.rt.AllotmentSize(),
		Capacity:         p.rt.Capacity(),
		QueueCap:         p.cfg.QueueCap,
		AdmitP50:         p50,
		AdmitP99:         p99,
	}
	for c := Class(0); c < NumClasses; c++ {
		out.ByClass[c] = ClassStats{
			Class:     c.String(),
			Admitted:  p.classAdmitted[c].Load(),
			Shed:      p.classShed[c].Load(),
			Completed: p.classCompleted[c].Load(),
		}
	}
	return out
}

// Snapshot extends Stats with the derived spare-parallelism signal. It is
// the single record the serving surfaces share: /status, /cluster, and the
// gossip layer all render the same Snapshot, so they can never disagree
// about a pool's load.
type Snapshot struct {
	Stats
	// Spare is the pool's spare estimated parallelism: the maximum
	// grantable allotment (mesh capacity) minus the filtered desire of the
	// last quantum. The granted allotment tracks desire in steady state,
	// so capacity — the bound the allotment grows toward — is the A term
	// that makes A−D a live headroom signal: positive means the estimator
	// wants fewer workers than the pool could still grant, zero means
	// desire is pinned at the grantable maximum (the same condition the
	// shed latch watches). This is the load signal cluster routing steers
	// on (DVS victim ordering lifted to nodes).
	Spare int `json:"spare"`
}

// Snapshot samples the pool once and derives the spare signal from that
// single Stats read, so the two can never be torn against each other.
// Spare is clamped at zero: desire can transiently exceed capacity during
// a policy rebuild (the estimator re-learns the shrunk mesh a quantum
// late), and a negative headroom signal is meaningless to every consumer
// — the router tiers treat it as "no spare", and older peers that gossip
// the pre-clamp value are tolerated on the receiving side
// (internal/cluster/pick).
func (p *Pool) Snapshot() Snapshot {
	st := p.Stats()
	spare := st.Capacity - st.Desire
	if spare < 0 {
		spare = 0
	}
	return Snapshot{Stats: st, Spare: spare}
}

// registerMetrics exposes the pool's serving counters on reg, labelled by
// pool name. The runtime's own worker metrics register separately via
// Config.Runtime.Metrics.
func (p *Pool) registerMetrics(reg *obs.Registry) {
	lbl := obs.Label{Key: "pool", Value: p.cfg.Name}
	count := func(v *atomic.Int64) func() float64 {
		return func() float64 { return float64(v.Load()) }
	}
	reg.CounterFunc("palirria_pool_admitted_total", "Jobs admitted into the pool.",
		count(&p.admitted), lbl)
	reg.CounterFunc("palirria_pool_completed_total", "Jobs completed.",
		count(&p.completed), lbl)
	reg.CounterFunc("palirria_pool_cancelled_total", "Jobs cancelled or discarded before running.",
		count(&p.cancelled), lbl)
	reg.CounterFunc("palirria_pool_rejected_total", "Submits rejected: admission queue full.",
		count(&p.rejectedFull), lbl, obs.Label{Key: "reason", Value: "full"})
	reg.CounterFunc("palirria_pool_rejected_total", "Submits rejected: load shedding.",
		count(&p.rejectedShed), lbl, obs.Label{Key: "reason", Value: "shed"})
	reg.GaugeFunc("palirria_pool_inflight_jobs", "Jobs resident in the pool (queued + running).",
		count(&p.inflight), lbl)
	reg.GaugeFunc("palirria_pool_queued_jobs", "Jobs admitted but not yet started.",
		func() float64 {
			q := p.inflight.Load() - p.running.Load()
			if q < 0 {
				q = 0
			}
			return float64(q)
		}, lbl)
	reg.GaugeFunc("palirria_pool_shedding", "1 while the overload latch is armed.",
		func() float64 {
			if p.shedding.Load() {
				return 1
			}
			return 0
		}, lbl)
	reg.GaugeFunc("palirria_pool_shed_level", "Shed ladder level: L sheds every class below L.",
		func() float64 { return float64(p.shedLevel.Load()) }, lbl)
	reg.CounterFunc("palirria_pool_rejected_total", "Submits rejected: deadline unmeetable.",
		count(&p.rejectedDeadline), lbl, obs.Label{Key: "reason", Value: "deadline"})
	for c := Class(0); c < NumClasses; c++ {
		cl := obs.Label{Key: "class", Value: c.String()}
		reg.CounterFunc("palirria_pool_class_admitted_total", "Jobs admitted, by priority class.",
			count(&p.classAdmitted[c]), lbl, cl)
		reg.CounterFunc("palirria_pool_class_shed_total", "Ladder and deadline rejections, by priority class.",
			count(&p.classShed[c]), lbl, cl)
		reg.CounterFunc("palirria_pool_class_completed_total", "Jobs completed, by priority class.",
			count(&p.classCompleted[c]), lbl, cl)
	}
	reg.GaugeFunc("palirria_pool_desire_workers", "Filtered desire of the last quantum.",
		func() float64 { return float64(p.lastDesire.Load()) }, lbl)
	p.latHist = reg.Histogram("palirria_pool_admission_latency_seconds",
		"Time from Submit to job start.", nil, lbl)
	p.latExported = true
}
