package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"palirria/internal/obs"
	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

// quietPool builds a pool whose estimation helper effectively never ticks
// (quantum = 1h), so tests can drive noteQuantum deterministically.
func quietPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	if cfg.Runtime.Mesh == nil {
		cfg.Runtime.Mesh = topo.MustMesh(4, 2)
	}
	if cfg.Runtime.Quantum == 0 {
		cfg.Runtime.Quantum = time.Hour
	}
	cfg.Runtime.InitialDiaspora = 10 // clamped to the mesh: all workers active
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func drain(t *testing.T, p *Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestPoolSubmitCompletes(t *testing.T) {
	p := quietPool(t, Config{Name: "t"})
	var sum atomic.Int64
	for i := 0; i < 10; i++ {
		err := p.Submit(context.Background(), func(c *wsrt.Ctx) {
			for j := 0; j < 4; j++ {
				c.Spawn(func(cc *wsrt.Ctx) { sum.Add(1) })
			}
			c.SyncAll()
			sum.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := sum.Load(); got != 50 {
		t.Fatalf("sum = %d, want 50", got)
	}
	st := p.Stats()
	if st.Admitted != 10 || st.Completed != 10 || st.Cancelled != 0 {
		t.Fatalf("stats = %+v", st)
	}
	drain(t, p)
	if !p.Drained() || p.Final() == nil {
		t.Fatal("pool not drained or report missing")
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 3, Runtime: wsrt.Config{Mesh: topo.MustMesh(2, 1)}})
	gate := make(chan struct{})
	var started sync.WaitGroup
	var wg sync.WaitGroup
	// Two blocked jobs occupy both workers; one more sits queued: the
	// pool is at its 3-job bound.
	for i := 0; i < 2; i++ {
		started.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Submit(context.Background(), func(c *wsrt.Ctx) { started.Done(); <-gate }); err != nil {
				t.Error(err)
			}
		}()
	}
	started.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := p.Submit(context.Background(), func(c *wsrt.Ctx) {}); err != nil {
			t.Error(err)
		}
	}()
	// Wait until the third job holds the last slot.
	for i := 0; len(p.slots) < 3 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if err := p.Submit(context.Background(), func(c *wsrt.Ctx) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit = %v, want ErrQueueFull", err)
	}
	if p.Stats().RejectedFull != 1 {
		t.Fatalf("rejectedFull = %d, want 1", p.Stats().RejectedFull)
	}
	close(gate)
	wg.Wait()
	drain(t, p)
}

func TestPoolContextCancelBeforeStart(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 8, Runtime: wsrt.Config{Mesh: topo.MustMesh(2, 1)}})
	gate := make(chan struct{})
	var started sync.WaitGroup
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		started.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), func(c *wsrt.Ctx) { started.Done(); <-gate }) //nolint:errcheck
		}()
	}
	started.Wait()
	// This job can never start: cancel it while queued.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	var ran atomic.Bool
	go func() {
		errc <- p.Submit(ctx, func(c *wsrt.Ctx) { ran.Store(true) })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit = %v, want context.Canceled", err)
	}
	close(gate)
	wg.Wait()
	drain(t, p)
	if ran.Load() {
		t.Fatal("cancelled job must not run")
	}
	st := p.Stats()
	if st.Cancelled != 1 || st.Completed != 2 {
		t.Fatalf("stats = %+v, want 2 completed / 1 cancelled", st)
	}
}

func TestPoolDrainRejectsNewWork(t *testing.T) {
	p := quietPool(t, Config{Name: "t"})
	drain(t, p)
	if err := p.Submit(context.Background(), func(c *wsrt.Ctx) {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
	// Drain is idempotent.
	drain(t, p)
}

func TestPoolShedLatch(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 2, ShedQuanta: 3, Runtime: wsrt.Config{Mesh: topo.MustMesh(2, 1)}})
	cap := p.Capacity()

	// Desire pinned at capacity but the queue is empty: no shed.
	for i := 0; i < 10; i++ {
		p.noteQuantum(wsrt.QuantumInfo{Filtered: cap, Granted: cap, Capacity: cap})
	}
	if p.shedding.Load() {
		t.Fatal("shed armed without queue saturation")
	}

	// Saturate the queue with blocked jobs, then pin desire at capacity.
	gate := make(chan struct{})
	var started sync.WaitGroup
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		started.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), func(c *wsrt.Ctx) { started.Done(); <-gate }) //nolint:errcheck
		}()
	}
	started.Wait()
	p.pinned = 0
	for i := 0; i < 2; i++ {
		p.noteQuantum(wsrt.QuantumInfo{Filtered: cap, Granted: cap, Capacity: cap})
	}
	if p.shedding.Load() {
		t.Fatal("shed armed before ShedQuanta consecutive quanta")
	}
	p.noteQuantum(wsrt.QuantumInfo{Filtered: cap, Granted: cap, Capacity: cap})
	if !p.shedding.Load() {
		t.Fatal("shed latch did not arm")
	}
	if err := p.Submit(context.Background(), func(c *wsrt.Ctx) {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit while shedding = %v, want ErrOverloaded", err)
	}
	if p.Stats().RejectedShed != 1 {
		t.Fatalf("rejectedShed = %d, want 1", p.Stats().RejectedShed)
	}
	// The latch holds while desire stays pinned, even as the queue
	// drains...
	p.noteQuantum(wsrt.QuantumInfo{Filtered: cap, Granted: cap, Capacity: cap})
	if !p.shedding.Load() {
		t.Fatal("latch released while desire still pinned")
	}
	// ...and releases as soon as desire drops below capacity.
	p.noteQuantum(wsrt.QuantumInfo{Filtered: cap - 1, Granted: cap, Capacity: cap})
	if p.shedding.Load() {
		t.Fatal("latch did not release when desire dropped")
	}
	close(gate)
	wg.Wait()
	drain(t, p)
}

func TestPoolMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	p := quietPool(t, Config{Name: "web", Metrics: reg})
	if err := p.Submit(context.Background(), func(c *wsrt.Ctx) {}); err != nil {
		t.Fatal(err)
	}
	drain(t, p)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`palirria_pool_admitted_total{pool="web"} 1`,
		`palirria_pool_completed_total{pool="web"} 1`,
		`palirria_pool_rejected_total{pool="web",reason="full"} 0`,
		`palirria_pool_admission_latency_seconds_count{pool="web"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestPoolDrainZeroLoss(t *testing.T) {
	// Fire a storm of jobs, drain in the middle of it, and account for
	// every single admission: completed + cancelled == admitted, nothing
	// in flight, and every nil Submit maps to one completion.
	p := quietPool(t, Config{Name: "t", QueueCap: 64, Runtime: wsrt.Config{Mesh: topo.MustMesh(4, 2)}})
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Submit(context.Background(), func(c *wsrt.Ctx) {
				c.Spawn(func(cc *wsrt.Ctx) { cc.Compute(5_000) })
				c.Compute(5_000)
				c.Sync()
			})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining):
				rejected.Add(1)
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}()
		if i == 100 {
			wg.Add(1)
			go func() { defer wg.Done(); drain(t, p) }()
		}
	}
	wg.Wait()
	drain(t, p)
	st := p.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in flight after drain: %d", st.InFlight)
	}
	if st.Completed+st.Cancelled != st.Admitted {
		t.Fatalf("lost jobs: admitted %d != completed %d + cancelled %d",
			st.Admitted, st.Completed, st.Cancelled)
	}
	if ok.Load() != st.Completed {
		t.Fatalf("client successes %d != completed %d", ok.Load(), st.Completed)
	}
	if ok.Load()+rejected.Load() != 200 {
		t.Fatalf("accounting: ok %d + rejected %d != 200", ok.Load(), rejected.Load())
	}
}

// TestPoolSubmitStatsRaceInvariants hammers Submit from several goroutines
// against a continuous Stats scraper (run it under -race). The scraper
// asserts what a non-atomic multi-counter snapshot can honestly promise:
// no gauge ever goes negative (the Queued clamp), and the cumulative
// counters never move backwards — the admitted-before-Submit bug rolled
// `admitted` back on a lost race against Drain, which a scrape observed as
// a decreasing counter. The quiescent end state asserts the documented
// invariant exactly: admitted == completed + cancelled, nothing in flight.
func TestPoolSubmitStatsRaceInvariants(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 8})
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				err := p.Submit(context.Background(), func(c *wsrt.Ctx) { c.Compute(2_000) })
				if err != nil && !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrDraining) {
					t.Errorf("unexpected submit error: %v", err)
					return
				}
			}
		}()
	}
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		var last Stats
		for !stop.Load() {
			st := p.Stats()
			if st.Queued < 0 || st.Running < 0 || st.InFlight < 0 {
				t.Errorf("negative gauge in scrape: %+v", st)
				return
			}
			if st.Admitted < last.Admitted || st.Completed < last.Completed ||
				st.Cancelled < last.Cancelled || st.RejectedFull < last.RejectedFull {
				t.Errorf("counter went backwards: %+v -> %+v", last, st)
				return
			}
			last = st
		}
	}()
	// Let the hammer run, then drain it mid-flight: the shutdown race is
	// what made the old pre-Submit admitted increment visible (rt.Submit
	// fails with ErrClosed and the rollback decremented the counter).
	time.Sleep(30 * time.Millisecond)
	drain(t, p)
	stop.Store(true)
	wg.Wait()
	<-scraperDone
	st := p.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in flight after drain: %d", st.InFlight)
	}
	if st.Admitted != st.Completed+st.Cancelled {
		t.Fatalf("admitted %d != completed %d + cancelled %d",
			st.Admitted, st.Completed, st.Cancelled)
	}
}

func TestPoolSubmitBatchCompletes(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 64})
	var sum atomic.Int64
	fns := make([]wsrt.Func, 12)
	for i := range fns {
		fns[i] = func(c *wsrt.Ctx) {
			c.Spawn(func(cc *wsrt.Ctx) { sum.Add(1) })
			c.SyncAll()
			sum.Add(1)
		}
	}
	for i, err := range p.SubmitBatch(context.Background(), fns) {
		if err != nil {
			t.Fatalf("batch entry %d: %v", i, err)
		}
	}
	if got := sum.Load(); got != 24 {
		t.Fatalf("sum = %d, want 24", got)
	}
	st := p.Stats()
	if st.Admitted != 12 || st.Completed != 12 || st.Cancelled != 0 {
		t.Fatalf("stats = %+v", st)
	}
	drain(t, p)
	for i, err := range p.SubmitBatch(context.Background(), fns) {
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("post-drain batch entry %d = %v, want ErrDraining", i, err)
		}
	}
}

// TestPoolSubmitBatchPartialQueueFull checks per-entry admission: a batch
// larger than the free admission slots admits a prefix-by-slot-order and
// rejects the overflow entries with ErrQueueFull, leaving the admitted
// ones to complete normally.
func TestPoolSubmitBatchPartialQueueFull(t *testing.T) {
	p := quietPool(t, Config{Name: "t", QueueCap: 3, Runtime: wsrt.Config{Mesh: topo.MustMesh(2, 1)}})
	gate := make(chan struct{})
	var started sync.WaitGroup
	var blocked sync.WaitGroup
	for i := 0; i < 2; i++ {
		started.Add(1)
		blocked.Add(1)
		go func() {
			defer blocked.Done()
			err := p.Submit(context.Background(), func(c *wsrt.Ctx) { started.Done(); <-gate })
			if err != nil {
				t.Errorf("blocked submit: %v", err)
			}
		}()
	}
	started.Wait() // two slots held by running jobs; one slot free
	fns := make([]wsrt.Func, 4)
	var ran atomic.Int64
	for i := range fns {
		fns[i] = func(c *wsrt.Ctx) { ran.Add(1) }
	}
	errsCh := make(chan []error, 1)
	go func() { errsCh <- p.SubmitBatch(context.Background(), fns) }()
	// Admission happens synchronously inside SubmitBatch before it waits,
	// so the rejection counter reaching 3 means the slot accounting is
	// settled; only then may the gate release the slot-holding jobs.
	for deadline := time.Now().Add(10 * time.Second); p.Stats().RejectedFull < 3; {
		if time.Now().After(deadline) {
			t.Fatal("batch admission never rejected the overflow entries")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	errs := <-errsCh
	blocked.Wait()
	if errs[0] != nil {
		t.Fatalf("entry 0 = %v, want nil (one slot was free)", errs[0])
	}
	for i := 1; i < 4; i++ {
		if !errors.Is(errs[i], ErrQueueFull) {
			t.Fatalf("entry %d = %v, want ErrQueueFull", i, errs[i])
		}
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("ran %d batch jobs, want 1", got)
	}
	st := p.Stats()
	if st.RejectedFull != 3 {
		t.Fatalf("rejected_full = %d, want 3", st.RejectedFull)
	}
	drain(t, p)
}
