// Package serve is the persistent job-serving layer over the real
// work-stealing runtime: the production shape of the paper's motivating
// scenario (§1), a server whose parallelism fluctuates with incoming
// load.
//
// A Pool keeps a wsrt.Runtime resident in persistent mode and admits a
// continuous stream of fork/join jobs through Submit, with three
// backpressure stages:
//
//  1. a bounded admission queue — Submit fails fast with ErrQueueFull
//     when the pool already holds QueueCap jobs (queued plus running);
//  2. estimator-driven load shedding — the Palirria desire signal is the
//     overload detector: when the filtered desire has been pinned at the
//     maximum grantable allotment for ShedQuanta consecutive quanta while
//     the admission queue is saturated, the pool starts rejecting with
//     ErrOverloaded until desire falls below capacity again (or the pool
//     drains empty — the recovery path for pools whose minimum allotment
//     already equals their capacity);
//  3. per-job deadlines — Submit honours its context: jobs cancelled
//     before they start are skipped without running.
//
// Drain stops admission, waits for every in-flight job, then shuts the
// runtime down and releases its allotment — no admitted job is lost.
//
// Tenancy runs the paper's two-level architecture (Fig. 2) on real
// goroutines: several resident pools register with a sysched.Arbiter over
// one arbitration mesh, and a re-arbitration loop periodically
// redistributes worker shares according to each pool's live desire,
// imposing the shares as dynamic worker caps on the pools' runtimes.
package serve

import (
	"errors"
	"time"
)

// Errors returned by Pool.Submit and Pool.Drain.
var (
	// ErrQueueFull reports an admission queue at capacity.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrOverloaded reports desire-driven load shedding: the estimator has
	// been demanding the maximum allotment for ShedQuanta quanta and the
	// queue is saturated.
	ErrOverloaded = errors.New("serve: pool overloaded, shedding load")
	// ErrDraining reports a Submit on a pool that is draining or closed.
	ErrDraining = errors.New("serve: pool is draining")
	// ErrDiscarded reports a job that was admitted but discarded before it
	// ran because the pool shut down.
	ErrDiscarded = errors.New("serve: job discarded at shutdown")
)

func nowNS() int64 { return time.Now().UnixNano() }
