// Package serve is the persistent job-serving layer over the real
// work-stealing runtime: the production shape of the paper's motivating
// scenario (§1), a server whose parallelism fluctuates with incoming
// load.
//
// A Pool keeps a wsrt.Runtime resident in persistent mode and admits a
// continuous stream of fork/join jobs through Submit, with three
// backpressure stages:
//
//  1. a bounded admission queue — Submit fails fast with ErrQueueFull
//     when the pool already holds QueueCap jobs (queued plus running);
//  2. estimator-driven load shedding — the Palirria desire signal is the
//     overload detector: when the filtered desire has been pinned at the
//     maximum grantable allotment for ShedQuanta consecutive quanta while
//     the admission queue is saturated, the pool starts rejecting with
//     ErrOverloaded until desire falls below capacity again (or the pool
//     drains empty — the recovery path for pools whose minimum allotment
//     already equals their capacity);
//  3. per-job deadlines — Submit honours its context: jobs cancelled
//     before they start are skipped without running.
//
// Drain stops admission, waits for every in-flight job, then shuts the
// runtime down and releases its allotment — no admitted job is lost.
//
// Tenancy runs the paper's two-level architecture (Fig. 2) on real
// goroutines: several resident pools register with a sysched.Arbiter over
// one arbitration mesh, and a re-arbitration loop periodically
// redistributes worker shares according to each pool's live desire,
// imposing the shares as dynamic worker caps on the pools' runtimes.
package serve

import (
	"errors"
	"time"

	"palirria/internal/wsrt"
)

// Errors returned by Pool.Submit and Pool.Drain.
var (
	// ErrQueueFull reports an admission queue at capacity.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrOverloaded reports desire-driven load shedding: the estimator has
	// been demanding the maximum allotment for ShedQuanta quanta and the
	// queue is saturated.
	ErrOverloaded = errors.New("serve: pool overloaded, shedding load")
	// ErrDraining reports a Submit on a pool that is draining or closed.
	ErrDraining = errors.New("serve: pool is draining")
	// ErrDiscarded reports a job that was admitted but discarded before it
	// ran because the pool shut down.
	ErrDiscarded = errors.New("serve: job discarded at shutdown")
	// ErrDeadline reports a job rejected at admission because the
	// estimator's desire plus the observed submit-to-start p99 predicted it
	// could not start before its deadline.
	ErrDeadline = errors.New("serve: job cannot start before its deadline")
	// ErrCancelled reports a DAG node cancelled because a predecessor did
	// not complete (it was discarded, cancelled, or the pool shut down).
	ErrCancelled = errors.New("serve: job cancelled by a failed predecessor")
	// ErrBadDAG reports a structurally invalid DAG: an out-of-range
	// dependency index or a dependency cycle. Nothing was admitted.
	ErrBadDAG = errors.New("serve: invalid job graph")
)

// Class is a job's priority class. The shed ladder drops low-class work
// first: as overload persists (the filtered desire stays pinned at the
// maximum grantable allotment with a saturated queue), the pool escalates
// one class per ShedQuanta further quanta — low is shed at level 1,
// normal at level 2, high only at level 3. Plain Submit/SubmitBatch
// submissions are ClassLow, preserving the original single-latch
// behaviour for unclassed work.
type Class int32

const (
	// ClassLow is the default (and first shed) class.
	ClassLow Class = iota
	// ClassNormal is shed only after low-class work is already being shed.
	ClassNormal
	// ClassHigh is shed last, only at the deepest overload level.
	ClassHigh
	// NumClasses is the number of priority classes.
	NumClasses
)

var classNames = [NumClasses]string{ClassLow: "low", ClassNormal: "normal", ClassHigh: "high"}

// String names the class (also its wire and metric label form).
func (c Class) String() string {
	if c >= 0 && c < NumClasses {
		return classNames[c]
	}
	return "low"
}

// ParseClass maps a wire name ("low", "normal", "high"; "" is low) back
// to its Class.
func ParseClass(s string) (Class, bool) {
	if s == "" {
		return ClassLow, true
	}
	for c, name := range classNames {
		if s == name {
			return Class(c), true
		}
	}
	return ClassLow, false
}

// clamp returns the class forced into the valid range, so counters
// indexed by it never go out of bounds on a caller-constructed value.
func (c Class) clamp() Class {
	if c < 0 {
		return ClassLow
	}
	if c >= NumClasses {
		return ClassHigh
	}
	return c
}

// Job is one classed, optionally deadlined submission for
// Pool.SubmitJob. The zero value (beyond Fn) is a plain low-class job
// without a deadline — exactly what Submit builds.
type Job struct {
	// Fn is the job body.
	Fn wsrt.Func
	// Class is the priority class consulted by the shed ladder.
	Class Class
	// Deadline, when non-zero, is the latest acceptable start time: at
	// admission the pool predicts the submit-to-start wait from the
	// observed p99 scaled by the estimator's overload ratio
	// (desire/capacity), and rejects with ErrDeadline — publishing a
	// deadline-shed stream event — when the job cannot start in time.
	Deadline time.Time
}

// DAGNode is one node of a SubmitDAG job graph: a body plus the indices
// of the nodes that must complete before it may start.
type DAGNode struct {
	// Fn is the node body.
	Fn wsrt.Func
	// Deps lists predecessor indices into the submitted slice. An empty
	// list marks a root, released immediately at admission.
	Deps []int
	// Class is the node's priority class (the DAG is admitted or shed as
	// a unit on its highest class; per-node classes label events and
	// counters).
	Class Class
	// Deadline, when non-zero, applies Job's deadline admission check to
	// this node.
	Deadline time.Time
}

func nowNS() int64 { return time.Now().UnixNano() }
