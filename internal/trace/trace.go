// Package trace records the time series the paper's figures plot: the
// allotment size over time (Figs. 5(c)/7(c)) and the per-quantum decisions
// of the estimators.
package trace

import (
	"fmt"
	"sort"
)

// Point is one step of the allotment-size timeline.
type Point struct {
	// Time in cycles.
	Time int64
	// Workers is the allotment size from Time onward.
	Workers int
}

// Timeline is a step function of the worker count over time.
type Timeline struct {
	points []Point
}

// Record appends a step. Time must be non-decreasing; recording the same
// time overwrites the previous value (the last write wins within a cycle).
func (tl *Timeline) Record(t int64, workers int) {
	if n := len(tl.points); n > 0 {
		if t < tl.points[n-1].Time {
			panic(fmt.Sprintf("trace: time went backwards: %d < %d", t, tl.points[n-1].Time))
		}
		if t == tl.points[n-1].Time {
			tl.points[n-1].Workers = workers
			return
		}
		if tl.points[n-1].Workers == workers {
			return // no change; keep the series minimal
		}
	}
	tl.points = append(tl.points, Point{Time: t, Workers: workers})
}

// Points returns a copy of the recorded steps; callers may modify it
// freely.
func (tl *Timeline) Points() []Point {
	return append([]Point(nil), tl.points...)
}

// At returns the worker count in effect at time t (0 before the first
// record). Points are time-sorted, so this is a binary search.
func (tl *Timeline) At(t int64) int {
	// First point strictly after t; the one before it is in effect.
	i := sort.Search(len(tl.points), func(i int) bool { return tl.points[i].Time > t })
	if i == 0 {
		return 0
	}
	return tl.points[i-1].Workers
}

// Max returns the peak worker count.
func (tl *Timeline) Max() int {
	max := 0
	for _, p := range tl.points {
		if p.Workers > max {
			max = p.Workers
		}
	}
	return max
}

// Area integrates the worker count from the first record until end: the
// worker-cycle resource consumption that the accuracy criterion (paper §6)
// trades off against execution time.
func (tl *Timeline) Area(end int64) int64 {
	var area int64
	for i, p := range tl.points {
		if p.Time >= end {
			break
		}
		next := end
		if i+1 < len(tl.points) && tl.points[i+1].Time < end {
			next = tl.points[i+1].Time
		}
		area += int64(p.Workers) * (next - p.Time)
	}
	return area
}

// Decision is one estimator invocation at a quantum boundary.
type Decision struct {
	// Time of the quantum boundary, in cycles.
	Time int64
	// Estimator name ("palirria", "asteal").
	Estimator string
	// Desired is the (filtered) worker count the application requested.
	Desired int
	// Granted is the allotment size the system layer provided.
	Granted int
}

// Log accumulates decisions.
type Log struct {
	decisions []Decision
}

// Add appends a decision.
func (l *Log) Add(d Decision) { l.decisions = append(l.decisions, d) }

// Decisions returns a copy of the recorded decisions; callers may modify
// it freely.
func (l *Log) Decisions() []Decision {
	return append([]Decision(nil), l.decisions...)
}

// Changes counts the decisions whose grant differed from the previous one.
func (l *Log) Changes() int {
	n := 0
	prev := -1
	for _, d := range l.decisions {
		if prev >= 0 && d.Granted != prev {
			n++
		}
		prev = d.Granted
	}
	return n
}
