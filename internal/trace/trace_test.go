package trace

import (
	"testing"
	"testing/quick"
)

func TestTimelineRecordAndAt(t *testing.T) {
	var tl Timeline
	tl.Record(0, 5)
	tl.Record(100, 12)
	tl.Record(250, 5)
	cases := []struct {
		t    int64
		want int
	}{
		{-1, 0}, {0, 5}, {50, 5}, {100, 12}, {249, 12}, {250, 5}, {1000, 5},
	}
	for _, c := range cases {
		if got := tl.At(c.t); got != c.want {
			t.Errorf("At(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	if tl.Max() != 12 {
		t.Fatalf("Max = %d", tl.Max())
	}
}

func TestTimelineDedup(t *testing.T) {
	var tl Timeline
	tl.Record(0, 5)
	tl.Record(100, 5) // no change: not recorded
	tl.Record(200, 7)
	if got := len(tl.Points()); got != 2 {
		t.Fatalf("points = %d, want 2 (dedup)", got)
	}
}

func TestTimelineSameTimeOverwrites(t *testing.T) {
	var tl Timeline
	tl.Record(10, 5)
	tl.Record(10, 9)
	if got := len(tl.Points()); got != 1 {
		t.Fatalf("points = %d, want 1", got)
	}
	if tl.At(10) != 9 {
		t.Fatal("last write must win")
	}
}

func TestTimelineBackwardsPanics(t *testing.T) {
	var tl Timeline
	tl.Record(10, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for backwards time")
		}
	}()
	tl.Record(5, 6)
}

func TestTimelineArea(t *testing.T) {
	var tl Timeline
	tl.Record(0, 5)
	tl.Record(100, 10)
	tl.Record(200, 2)
	// Area to 300: 5*100 + 10*100 + 2*100 = 1700.
	if got := tl.Area(300); got != 1700 {
		t.Fatalf("Area(300) = %d, want 1700", got)
	}
	// Truncated integral.
	if got := tl.Area(150); got != 5*100+10*50 {
		t.Fatalf("Area(150) = %d", got)
	}
	// End before first point: zero.
	if got := tl.Area(0); got != 0 {
		t.Fatalf("Area(0) = %d", got)
	}
}

func TestTimelineAreaMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		var tl Timeline
		t0 := int64(0)
		for _, v := range raw {
			tl.Record(t0, int(v%30)+1)
			t0 += int64(v%50) + 1
		}
		// Area is monotonically non-decreasing in the end time.
		return tl.Area(t0) >= tl.Area(t0/2) && tl.Area(t0/2) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogDecisionsAndChanges(t *testing.T) {
	var l Log
	if l.Changes() != 0 {
		t.Fatal("empty log has changes")
	}
	l.Add(Decision{Time: 1, Estimator: "palirria", Desired: 12, Granted: 12})
	l.Add(Decision{Time: 2, Estimator: "palirria", Desired: 12, Granted: 12})
	l.Add(Decision{Time: 3, Estimator: "palirria", Desired: 20, Granted: 20})
	l.Add(Decision{Time: 4, Estimator: "palirria", Desired: 5, Granted: 5})
	if got := len(l.Decisions()); got != 4 {
		t.Fatalf("decisions = %d", got)
	}
	if got := l.Changes(); got != 2 {
		t.Fatalf("changes = %d, want 2", got)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var tl Timeline
	if tl.At(100) != 0 || tl.Max() != 0 || tl.Area(100) != 0 {
		t.Fatal("empty timeline must be all zeros")
	}
}

func TestPointsDefensiveCopy(t *testing.T) {
	var tl Timeline
	tl.Record(0, 5)
	tl.Record(100, 12)
	pts := tl.Points()
	pts[0].Workers = 999
	if got := tl.At(0); got != 5 {
		t.Fatalf("mutating Points() leaked into the timeline: At(0) = %d", got)
	}
	if &pts[0] == &tl.Points()[0] {
		t.Fatal("Points() returned the internal slice")
	}
}

func TestDecisionsDefensiveCopy(t *testing.T) {
	var l Log
	l.Add(Decision{Time: 1, Desired: 5, Granted: 5})
	ds := l.Decisions()
	ds[0].Granted = 999
	if got := l.Decisions()[0].Granted; got != 5 {
		t.Fatalf("mutating Decisions() leaked into the log: %d", got)
	}
}

func TestAtMatchesLinearScan(t *testing.T) {
	linear := func(tl *Timeline, at int64) int {
		w := 0
		for _, p := range tl.Points() {
			if p.Time > at {
				break
			}
			w = p.Workers
		}
		return w
	}
	var tl Timeline
	times := []int64{0, 3, 7, 20, 21, 50, 1000}
	for i, tm := range times {
		tl.Record(tm, (i%4)+1)
	}
	for at := int64(-2); at < 1010; at++ {
		if got, want := tl.At(at), linear(&tl, at); got != want {
			t.Fatalf("At(%d) = %d, linear scan says %d", at, got, want)
		}
	}
}
