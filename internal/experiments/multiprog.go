package experiments

import (
	"fmt"
	"io"

	"palirria/internal/asteal"
	"palirria/internal/core"
	"palirria/internal/sim"
	"palirria/internal/topo"
	"palirria/internal/workload"
)

// MultiprogResult is one co-scheduling configuration's outcome.
type MultiprogResult struct {
	// Label names the configuration ("palirria", "asteal", "fixed").
	Label string
	// MakespanCycles is when the last job finished.
	MakespanCycles int64
	// JobExec maps job names to their makespans.
	JobExec map[string]int64
	// AvgWorkerCycles is the total worker-cycle area across jobs.
	AvgWorkerCycles int64
}

// Multiprogrammed runs the paper's "next step" (§8): three applications —
// one irregular (strassen), one highly parallel (fib scaled down), one
// phase-structured (sort) — co-scheduled on a 9x9 mesh under three
// policies: every job adaptive with Palirria, every job adaptive with
// ASTEAL, and a static equal split. Adaptive estimation lets demand
// complementarity raise whole-machine utilization: the static split
// cannot move cores from the drained jobs to the hungry one.
func Multiprogrammed(quantum int64) ([]MultiprogResult, error) {
	mesh := func() *topo.Mesh {
		m := topo.MustMesh(9, 9)
		m.Reserve(0, 1)
		return m
	}
	type jobdef struct {
		name string
		wl   string
		src  topo.Coord
	}
	jobs := []jobdef{
		{"irregular", "strassen", topo.Coord{X: 2, Y: 2}},
		{"parallel", "stress", topo.Coord{X: 6, Y: 2}},
		{"phases", "sort", topo.Coord{X: 4, Y: 6}},
	}
	build := func(mode string) (sim.MultiConfig, error) {
		m := mesh()
		cfg := sim.MultiConfig{Mesh: m, Quantum: quantum, Seed: 9}
		for _, jd := range jobs {
			d, err := workload.Get(jd.wl)
			if err != nil {
				return cfg, err
			}
			j := sim.Job{
				Name:   jd.name,
				Source: m.ID(jd.src),
				Root:   d.Root(workload.Simulator),
			}
			switch mode {
			case "palirria":
				j.Estimator = core.NewPalirria()
				j.Policy = "dvs"
			case "asteal":
				j.Estimator = asteal.New()
				j.Policy = "random"
			default: // fixed: equal split of the 79 usable cores
				j.FixedWorkers = 26
				j.Policy = "random"
			}
			cfg.Jobs = append(cfg.Jobs, j)
		}
		return cfg, nil
	}

	var out []MultiprogResult
	for _, mode := range []string{"fixed", "asteal", "palirria"} {
		cfg, err := build(mode)
		if err != nil {
			return nil, err
		}
		res, err := sim.RunMulti(cfg)
		if err != nil {
			return nil, fmt.Errorf("multiprog %s: %w", mode, err)
		}
		mr := MultiprogResult{
			Label:          mode,
			MakespanCycles: res.MakespanCycles,
			JobExec:        map[string]int64{},
		}
		for _, jr := range res.Jobs {
			mr.JobExec[jr.Name] = jr.ExecCycles()
			mr.AvgWorkerCycles += jr.Timeline.Area(jr.FinishCycles)
		}
		out = append(out, mr)
	}
	return out, nil
}

// PrintMultiprogrammed renders the co-scheduling comparison.
func PrintMultiprogrammed(w io.Writer, rows []MultiprogResult) {
	fmt.Fprintln(w, "Multiprogrammed co-scheduling (3 jobs on a 9x9 mesh; paper §8 next step)")
	fmt.Fprintf(w, "  %-10s %14s %14s %14s %14s %16s\n",
		"policy", "makespan", "irregular", "parallel", "phases", "worker-cycles")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %14d %14d %14d %14d %16d\n",
			r.Label, r.MakespanCycles,
			r.JobExec["irregular"], r.JobExec["parallel"], r.JobExec["phases"],
			r.AvgWorkerCycles)
	}
}
