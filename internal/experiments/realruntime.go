package experiments

import (
	"fmt"
	"io"
	"time"

	"palirria/internal/asteal"
	"palirria/internal/core"
	"palirria/internal/topo"
	"palirria/internal/workload"
	"palirria/internal/wsrt"
)

// RTRow is one workload's real-runtime comparison.
type RTRow struct {
	Workload string
	// WallMS per scheduler configuration.
	WoolMS, AStealMS, PalirriaMS float64
	// Peak workers under the adaptive schedulers.
	AStealPeak, PalirriaPeak int
}

// RealRuntime runs the paper's workload set on the goroutine runtime
// (package wsrt) under the three scheduler configurations, on a 4x4
// virtual mesh. This is the demonstrative counterpart of the simulator
// suites: it shows the same algorithms scheduling real threads, with the
// caveat (DESIGN.md, calibration notes) that Go's own scheduler underneath
// makes wall-clock numbers noisy — on hosts with fewer than 16 CPUs the
// workers timeshare.
func RealRuntime(quantum time.Duration) ([]RTRow, error) {
	if quantum == 0 {
		quantum = time.Millisecond
	}
	newMesh := func() *topo.Mesh { return topo.MustMesh(4, 4) }
	src := topo.CoreID(5)

	var rows []RTRow
	for _, d := range workload.PaperSet() {
		row := RTRow{Workload: d.Name}
		for _, mode := range []string{"wool", "asteal", "palirria"} {
			cfg := wsrt.Config{
				Mesh:    newMesh(),
				Source:  src,
				Quantum: quantum,
			}
			switch mode {
			case "wool":
				cfg.InitialDiaspora = 99 // whole mesh
				cfg.Policy = "random"
			case "asteal":
				cfg.Estimator = asteal.New()
				cfg.Policy = "random"
			case "palirria":
				cfg.Estimator = core.NewPalirria()
				cfg.Policy = "dvs"
			}
			rt, err := wsrt.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("rt %s/%s: %w", d.Name, mode, err)
			}
			rep, err := rt.Run(wsrt.SpecFunc(d.Root(workload.Simulator)))
			if err != nil {
				return nil, fmt.Errorf("rt %s/%s: %w", d.Name, mode, err)
			}
			ms := float64(rep.WallNS) / 1e6
			switch mode {
			case "wool":
				row.WoolMS = ms
			case "asteal":
				row.AStealMS = ms
				row.AStealPeak = rep.MaxWorkers
			case "palirria":
				row.PalirriaMS = ms
				row.PalirriaPeak = rep.MaxWorkers
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintRealRuntime renders the real-runtime comparison.
func PrintRealRuntime(w io.Writer, rows []RTRow) {
	fmt.Fprintln(w, "Real-threads runtime (goroutines, 4x4 virtual mesh; wall-clock, NOISY —")
	fmt.Fprintln(w, "the deterministic reproduction is the simulator; this demonstrates the")
	fmt.Fprintln(w, "same algorithms scheduling real threads)")
	fmt.Fprintf(w, "  %-9s %12s %12s %14s %8s %8s\n",
		"workload", "wool ms", "asteal ms", "palirria ms", "AS peak", "PA peak")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s %12.1f %12.1f %14.1f %8d %8d\n",
			r.Workload, r.WoolMS, r.AStealMS, r.PalirriaMS, r.AStealPeak, r.PalirriaPeak)
	}
}
