package experiments

import (
	"fmt"
	"io"

	"palirria/internal/asteal"
	"palirria/internal/core"
	"palirria/internal/dvs"
	"palirria/internal/plot"
	"palirria/internal/saws"
	"palirria/internal/sim"
	"palirria/internal/topo"
	"palirria/internal/trace"
	"palirria/internal/workload"
)

// Fig4 prints the workload input table: the paper's original inputs
// (Fig. 4) next to the scaled inputs this reproduction uses.
func Fig4(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: workload input data sets")
	fmt.Fprintf(w, "  %-9s | %-28s | %-28s | %-36s | %-36s\n",
		"workload", "paper input (Barrelfish)", "paper input (Linux)",
		"this repo (simulator)", "this repo (NUMA model)")
	for _, d := range workload.PaperSet() {
		fmt.Fprintf(w, "  %-9s | %-28s | %-28s | %-36s | %-36s\n",
			d.Name, d.PaperInputSim, d.PaperInputLinux,
			d.Inputs[workload.Simulator].String(), d.Inputs[workload.NUMA].String())
	}
	fmt.Fprintln(w, "  (inputs scaled to keep the full evaluation laptop-sized; shapes preserved, see DESIGN.md)")
}

// FigPerformance prints one platform's performance figure (Fig. 5 for the
// simulator, Fig. 7 for the Linux model): per workload, column (a)
// normalized execution time, column (b) wastefulness, column (c) the
// adaptive worker-count timelines.
func FigPerformance(w io.Writer, p Platform, suite []WorkloadRuns) {
	fmt.Fprintf(w, "Performance measurements, on %s\n", p.Name)
	for _, wr := range suite {
		fmt.Fprintf(w, "\n== %s ==\n", wr.Workload)
		var execBars, wasteBars []plot.Bar
		for _, r := range wr.All() {
			execBars = append(execBars, plot.Bar{Label: r.label(), Value: r.NormExec})
			wasteBars = append(wasteBars, plot.Bar{Label: r.label(), Value: r.WastePct})
		}
		plot.BarChart(w, "(a) exec time, % of 5 workers (shorter is better)", execBars, 50, "%.0f%%")
		plot.BarChart(w, "(b) wastefulness, % of exec time", wasteBars, 50, "%.1f%%")
		levels := append([]int(nil), p.FixedSizes...)
		plot.Timeline(w, "(c) allotment size over time",
			[]string{"ASTEAL", "Palirria"},
			[]*trace.Timeline{wr.ASteal.Result.Timeline, wr.Palirria.Result.Timeline},
			levels, 64)
	}
}

// FigPerWorker prints one platform's per-worker useful-time figure
// (Fig. 6 for the simulator, Fig. 8 for the Linux model): useful vs other
// cycles per worker, ordered by zone, for the reference fixed run and the
// two adaptive runs. refIdx selects the reference fixed size (the paper
// uses W27/W42: the second-best performer overall).
func FigPerWorker(w io.Writer, p Platform, suite []WorkloadRuns, refIdx int) {
	fmt.Fprintf(w, "Per worker useful time, on %s (ordered by zone)\n", p.Name)
	for _, wr := range suite {
		ref := wr.Fixed[refIdx]
		norm := sourceTotal(p, ref)
		fmt.Fprintf(w, "\n== %s ==\n", wr.Workload)
		for _, r := range []Run{ref, wr.ASteal, wr.Palirria} {
			cols := workerColumns(p, r)
			plot.WorkerBars(w, fmt.Sprintf("%s / %s", wr.Workload, r.label()), cols, norm, 8)
		}
	}
}

// sourceTotal returns the source worker's total cycles in run r — the
// normalization bar of Figs. 6/8.
func sourceTotal(p Platform, r Run) int64 {
	if ws := r.Result.Workers[p.Source]; ws != nil {
		return ws.Total()
	}
	return 0
}

// workerColumns orders the run's workers by (zone, id) against the
// platform's maximal allotment and extracts useful/total cycles.
func workerColumns(p Platform, r Run) []plot.WorkerColumn {
	mesh := p.Mesh()
	max, err := topo.NewAllotment(mesh, p.Source, p.MaxDiaspora)
	if err != nil {
		return nil
	}
	var cols []plot.WorkerColumn
	for _, id := range max.Members() {
		ws, ok := r.Result.Workers[id]
		if !ok {
			continue
		}
		cols = append(cols, plot.WorkerColumn{Useful: ws.Useful(), Total: ws.Total()})
	}
	return cols
}

// Fig1 renders the 41-worker classification of the paper's Fig. 1 on a
// 9x9 mesh with a centered source (the symmetric allotment the paper
// illustrates).
func Fig1(w io.Writer) error {
	m := topo.MustMesh(9, 9)
	src := m.ID(topo.Coord{X: 4, Y: 4})
	a, err := topo.NewAllotment(m, src, 4)
	if err != nil {
		return err
	}
	plot.ClassGrid(w, fmt.Sprintf("Figure 1: %d-worker allotment classified per the DVS rule set", a.Size()),
		topo.Classify(a))
	return nil
}

// Fig2 renders the paper's Fig. 2: three applications sharing a mesh, each
// with an incomplete allotment.
func Fig2(w io.Writer) error {
	m := topo.MustMesh(9, 9)
	apps := []struct {
		src   topo.Coord
		cores []topo.Coord
	}{
		{topo.Coord{X: 2, Y: 2}, []topo.Coord{{X: 1, Y: 2}, {X: 3, Y: 2}, {X: 2, Y: 1}, {X: 2, Y: 3}, {X: 1, Y: 1}, {X: 3, Y: 1}, {X: 0, Y: 2}, {X: 2, Y: 0}}},
		{topo.Coord{X: 6, Y: 2}, []topo.Coord{{X: 5, Y: 2}, {X: 7, Y: 2}, {X: 6, Y: 1}, {X: 6, Y: 3}, {X: 7, Y: 3}, {X: 5, Y: 3}}},
		{topo.Coord{X: 4, Y: 6}, []topo.Coord{{X: 3, Y: 6}, {X: 5, Y: 6}, {X: 4, Y: 5}, {X: 4, Y: 7}, {X: 3, Y: 7}, {X: 5, Y: 5}, {X: 2, Y: 6}, {X: 6, Y: 6}, {X: 4, Y: 8}}},
	}
	var allots []*topo.Allotment
	for _, app := range apps {
		var ids []topo.CoreID
		for _, c := range app.cores {
			ids = append(ids, m.ID(c))
		}
		a, err := topo.NewAllotmentFromCores(m, m.ID(app.src), ids)
		if err != nil {
			return err
		}
		allots = append(allots, a)
	}
	plot.MultiClassGrid(w, "Figure 2: three applications deployed with incomplete classes", m, allots)
	return nil
}

// Fig3 renders the paper's Fig. 3: the DVS task flow over the Fig. 1
// allotment, as primary-victim arrows.
func Fig3(w io.Writer) error {
	m := topo.MustMesh(9, 9)
	src := m.ID(topo.Coord{X: 4, Y: 4})
	a, err := topo.NewAllotment(m, src, 4)
	if err != nil {
		return err
	}
	c := topo.Classify(a)
	p := dvs.New(c)
	plot.FlowGrid(w, "Figure 3: task flow under DVS (each worker points at its primary victim)", c, p.Victims)
	return nil
}

// Fig9 renders the paper's Fig. 9: the classification of the two largest
// evaluation allotments, (a) 27 workers on the 8x4 simulator mesh with
// source core 20, (b) 35 workers on the 8x6 mesh with source core 28.
func Fig9(w io.Writer) error {
	simP := SimPlatform()
	m := simP.Mesh()
	a, err := topo.NewAllotment(m, simP.Source, 4)
	if err != nil {
		return err
	}
	plot.ClassGrid(w, fmt.Sprintf("Figure 9(a): %d workers on 8x4, source core %d", a.Size(), simP.Source),
		topo.Classify(a))

	linux := LinuxPlatform()
	m2 := linux.Mesh()
	b, err := topo.NewAllotment(m2, linux.Source, 4)
	if err != nil {
		return err
	}
	plot.ClassGrid(w, fmt.Sprintf("Figure 9(b): %d workers on 8x6, source core %d", b.Size(), linux.Source),
		topo.Classify(b))
	return nil
}

// Summary aggregates the paper's headline claims over a suite: average
// adaptive slowdown vs the best fixed allotment, average wastefulness
// reduction, and the accuracy comparison (execution time x resources).
type Summary struct {
	// AvgSlowdownAS / AvgSlowdownPA: mean over workloads of
	// exec(mode)/exec(best fixed) - 1, in percent. Negative = faster.
	AvgSlowdownAS, AvgSlowdownPA float64
	// AvgWasteAS, AvgWastePA, AvgWasteFixedBest: mean wastefulness.
	AvgWasteAS, AvgWastePA, AvgWasteFixedBest float64
	// AvgWorkersAS, AvgWorkersPA: mean time-averaged allotment sizes.
	AvgWorkersAS, AvgWorkersPA float64
	// PAFasterCount counts workloads where Palirria beat ASTEAL.
	PAFasterCount, Workloads int
	// PALeanerCount counts workloads where Palirria used fewer worker-
	// cycles than ASTEAL.
	PALeanerCount int
}

// Summarize computes the headline aggregates for a suite.
func Summarize(suite []WorkloadRuns) Summary {
	var s Summary
	for _, wr := range suite {
		best := wr.Fixed[0]
		for _, r := range wr.Fixed[1:] {
			if r.Result.ExecCycles < best.Result.ExecCycles {
				best = r
			}
		}
		s.AvgSlowdownAS += 100 * (float64(wr.ASteal.Result.ExecCycles)/float64(best.Result.ExecCycles) - 1)
		s.AvgSlowdownPA += 100 * (float64(wr.Palirria.Result.ExecCycles)/float64(best.Result.ExecCycles) - 1)
		s.AvgWasteAS += wr.ASteal.WastePct
		s.AvgWastePA += wr.Palirria.WastePct
		s.AvgWasteFixedBest += best.WastePct
		s.AvgWorkersAS += wr.ASteal.AvgWorkers
		s.AvgWorkersPA += wr.Palirria.AvgWorkers
		if wr.Palirria.Result.ExecCycles <= wr.ASteal.Result.ExecCycles {
			s.PAFasterCount++
		}
		if wr.Palirria.Report.WorkerCycleArea <= wr.ASteal.Report.WorkerCycleArea {
			s.PALeanerCount++
		}
		s.Workloads++
	}
	n := float64(s.Workloads)
	if n > 0 {
		s.AvgSlowdownAS /= n
		s.AvgSlowdownPA /= n
		s.AvgWasteAS /= n
		s.AvgWastePA /= n
		s.AvgWasteFixedBest /= n
		s.AvgWorkersAS /= n
		s.AvgWorkersPA /= n
	}
	return s
}

// PrintSummary writes the headline comparison.
func PrintSummary(w io.Writer, p Platform, s Summary) {
	fmt.Fprintf(w, "Headline summary, %s (%d workloads)\n", p.Name, s.Workloads)
	fmt.Fprintf(w, "  avg slowdown vs best fixed:  ASTEAL %+.1f%%  Palirria %+.1f%%\n", s.AvgSlowdownAS, s.AvgSlowdownPA)
	fmt.Fprintf(w, "  avg wastefulness:            ASTEAL %.1f%%  Palirria %.1f%%  (best fixed %.1f%%)\n",
		s.AvgWasteAS, s.AvgWastePA, s.AvgWasteFixedBest)
	fmt.Fprintf(w, "  avg workers used:            ASTEAL %.1f  Palirria %.1f\n", s.AvgWorkersAS, s.AvgWorkersPA)
	fmt.Fprintf(w, "  Palirria faster or equal:    %d/%d workloads\n", s.PAFasterCount, s.Workloads)
	fmt.Fprintf(w, "  Palirria fewer worker-cycles: %d/%d workloads\n", s.PALeanerCount, s.Workloads)
}

// --- Ablations -----------------------------------------------------------

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label      string
	ExecCycles int64
	WastePct   float64
	AvgWorkers float64
	Changes    int
}

// AblationQuantum sweeps the estimation interval (§3: "a long interval
// will miss important fluctuations... a short interval might create
// unnecessary overhead and confuse short bursts as prolonged behavior").
// The bursty workload exposes both failure modes.
func AblationQuantum(p Platform, wl string, quanta []int64) ([]AblationRow, error) {
	var out []AblationRow
	for _, q := range quanta {
		pq := p
		pq.Quantum = q
		r, err := Execute(pq, wl, ModePalirria, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Label:      fmt.Sprintf("quantum=%d", q),
			ExecCycles: r.Result.ExecCycles,
			WastePct:   r.WastePct,
			AvgWorkers: r.AvgWorkers,
			Changes:    r.Result.Decisions.Changes(),
		})
	}
	return out, nil
}

// AblationL sweeps the threshold offset: L = µ(O_i) + offset (§4.1.1:
// different values of L "can tune the tolerance of the model").
func AblationL(p Platform, wl string, offsets []int) ([]AblationRow, error) {
	var out []AblationRow
	for _, off := range offsets {
		d, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		mesh := p.Mesh()
		est := core.NewPalirria()
		est.LOffset = off
		res, err := simRunAdaptive(p, mesh, d, est, "dvs", false)
		if err != nil {
			return nil, err
		}
		rep := res.Report()
		out = append(out, AblationRow{
			Label:      fmt.Sprintf("L=µ(O)%+d", off),
			ExecCycles: res.ExecCycles,
			WastePct:   rep.WastefulnessPercent(),
			AvgWorkers: avgWorkers(res),
			Changes:    res.Decisions.Changes(),
		})
	}
	return out, nil
}

// AblationVictim compares victim selection policies under a fixed maximal
// allotment: the cost/benefit of determinism in isolation.
func AblationVictim(p Platform, wl string) ([]AblationRow, error) {
	var out []AblationRow
	for _, policy := range []string{"random", "roundrobin", "dvs"} {
		d, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		mesh := p.Mesh()
		res, err := simRunFixed(p, mesh, d, policy, p.MaxDiaspora)
		if err != nil {
			return nil, err
		}
		rep := res.Report()
		out = append(out, AblationRow{
			Label:      policy,
			ExecCycles: res.ExecCycles,
			WastePct:   rep.WastefulnessPercent(),
			AvgWorkers: avgWorkers(res),
		})
	}
	return out, nil
}

// AblationFilter compares Palirria with and without the system-level
// false-positive filter.
func AblationFilter(p Platform, wl string) ([]AblationRow, error) {
	var out []AblationRow
	for _, noFilter := range []bool{false, true} {
		d, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		mesh := p.Mesh()
		res, err := simRunAdaptive(p, mesh, d, core.NewPalirria(), "dvs", noFilter)
		if err != nil {
			return nil, err
		}
		label := "filter=on"
		if noFilter {
			label = "filter=off"
		}
		rep := res.Report()
		out = append(out, AblationRow{
			Label:      label,
			ExecCycles: res.ExecCycles,
			WastePct:   rep.WastefulnessPercent(),
			AvgWorkers: avgWorkers(res),
			Changes:    res.Decisions.Changes(),
		})
	}
	return out, nil
}

// OverheadRow compares the estimators' per-decision cost (paper §3.2:
// Palirria's conditions are evaluated "for only a small but specific
// subset of the workers" while ASTEAL reads every worker's cycle
// counters).
type OverheadRow struct {
	AllotmentSize int
	// PalirriaWorst is the DMC's worst-case inspection count: |X ∪ Z|
	// distinct workers (both conditions scanned to the end).
	PalirriaWorst int
	// PalirriaTypical is the measured inspection count on a balanced
	// snapshot, where the conditions short-circuit.
	PalirriaTypical int
	// AStealInspected is the number of workers whose wasted-cycle counter
	// ASTEAL sums: the whole allotment, every quantum.
	AStealInspected int
}

// EstimatorOverhead evaluates both estimators' inspection cost on every
// allotment size of the platform.
func EstimatorOverhead(p Platform) ([]OverheadRow, error) {
	var out []OverheadRow
	mesh := p.Mesh()
	for d := 1; d <= p.MaxDiaspora; d++ {
		a, err := topo.NewAllotment(mesh, p.Source, d)
		if err != nil {
			return nil, err
		}
		class := topo.Classify(a)
		// A balanced snapshot: Z busy (decrease short-circuits), X queues
		// modest (increase short-circuits at the first below-threshold).
		ws := make(map[topo.CoreID]*core.WorkerSnapshot, a.Size())
		for _, id := range a.Members() {
			ws[id] = &core.WorkerSnapshot{ID: id, QueueLen: 1, MaxQueueLen: 1, Busy: true}
		}
		snap := &core.Snapshot{Allotment: a, Class: class, Workers: ws, QuantumCycles: p.Quantum}
		pal := core.NewPalirria()
		pal.Decide(snap)
		union := map[topo.CoreID]bool{}
		for _, id := range class.X() {
			union[id] = true
		}
		for _, id := range class.Z() {
			union[id] = true
		}
		out = append(out, OverheadRow{
			AllotmentSize:   a.Size(),
			PalirriaWorst:   len(union),
			PalirriaTypical: pal.EstimateCost(),
			AStealInspected: a.Size(),
		})
	}
	return out, nil
}

// PrintOverhead renders the estimator-overhead comparison.
func PrintOverhead(w io.Writer, p Platform, rows []OverheadRow) {
	fmt.Fprintf(w, "Estimation overhead, %s (workers inspected per decision)\n", p.Name)
	fmt.Fprintf(w, "  %-10s %-18s %-18s %-10s\n", "allotment", "palirria (worst)", "palirria (typical)", "asteal")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10d %-18d %-18d %-10d\n",
			r.AllotmentSize, r.PalirriaWorst, r.PalirriaTypical, r.AStealInspected)
	}
}

// AblationStealableSlots sweeps the bounded stealable-slot count of the
// WOOL task queue (§2.1: "a predefined number of stealable and
// non-stealable task slots, with the former being much less but populated
// first... set to the same constant number that is sufficient for the
// largest number of workers"). Too few slots cap µ(Q) below Palirria's
// thresholds and starve thieves; beyond sufficiency the value is inert.
func AblationStealableSlots(p Platform, wl string, slots []int) ([]AblationRow, error) {
	var out []AblationRow
	for _, n := range slots {
		d, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		mesh := p.Mesh()
		res, err := sim.Run(sim.Config{
			Mesh:            mesh,
			Source:          p.Source,
			Root:            d.Root(p.WL),
			Machine:         p.Machine(mesh),
			InitialDiaspora: 1,
			MaxDiaspora:     p.MaxDiaspora,
			Policy:          "dvs",
			Seed:            p.Seed,
			Quantum:         p.Quantum,
			Estimator:       core.NewPalirria(),
			StealableSlots:  n,
		})
		if err != nil {
			return nil, err
		}
		rep := res.Report()
		out = append(out, AblationRow{
			Label:      fmt.Sprintf("slots=%d", n),
			ExecCycles: res.ExecCycles,
			WastePct:   rep.WastefulnessPercent(),
			AvgWorkers: avgWorkers(res),
			Changes:    res.Decisions.Changes(),
		})
	}
	return out, nil
}

// AblationPalirriaNeedsDVS tests the paper's §3.2 requirement: "Palirria
// requires deterministic victim selection". With random victims the task
// concentration is unpredictable, so the DMC reads queue sizes that do not
// reflect the workload's flow — decisions misfire in both directions.
// The rows compare Palirria over DVS against the (invalid) Palirria over
// random victims, on a fluctuating workload where accuracy matters.
func AblationPalirriaNeedsDVS(p Platform, wl string) ([]AblationRow, error) {
	var out []AblationRow
	for _, policy := range []string{"dvs", "random"} {
		d, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		mesh := p.Mesh()
		res, err := simRunAdaptive(p, mesh, d, core.NewPalirria(), policy, false)
		if err != nil {
			return nil, err
		}
		rep := res.Report()
		out = append(out, AblationRow{
			Label:      "palirria+" + policy,
			ExecCycles: res.ExecCycles,
			WastePct:   rep.WastefulnessPercent(),
			AvgWorkers: avgWorkers(res),
			Changes:    res.Decisions.Changes(),
		})
	}
	return out, nil
}

// AblationEstimators compares the three estimator families on one
// workload: Palirria (queue sizes + DVS determinism), ASTEAL (wasted
// cycles, any victim policy) and SAWS (sampled queue sizes, any victim
// policy — Cao et al., the paper's §7).
func AblationEstimators(p Platform, wl string) ([]AblationRow, error) {
	type combo struct {
		label  string
		est    func() core.Estimator
		policy string
	}
	combos := []combo{
		{"palirria+dvs", func() core.Estimator { return core.NewPalirria() }, "dvs"},
		{"asteal+random", func() core.Estimator { return asteal.New() }, "random"},
		{"saws+random", func() core.Estimator { return saws.New(p.Seed) }, "random"},
		{"saws+dvs", func() core.Estimator { return saws.New(p.Seed) }, "dvs"},
	}
	var out []AblationRow
	for _, c := range combos {
		d, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		mesh := p.Mesh()
		res, err := simRunAdaptive(p, mesh, d, c.est(), c.policy, false)
		if err != nil {
			return nil, err
		}
		rep := res.Report()
		out = append(out, AblationRow{
			Label:      c.label,
			ExecCycles: res.ExecCycles,
			WastePct:   rep.WastefulnessPercent(),
			AvgWorkers: avgWorkers(res),
			Changes:    res.Decisions.Changes(),
		})
	}
	return out, nil
}

// PrintAblation renders an ablation table.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  %-16s %14s %9s %8s %8s\n", "config", "exec cycles", "waste%", "avg w", "changes")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %14d %8.1f%% %8.1f %8d\n", r.Label, r.ExecCycles, r.WastePct, r.AvgWorkers, r.Changes)
	}
}

func avgWorkers(res *simResult) float64 {
	if res.ExecCycles <= 0 {
		return 0
	}
	return float64(res.Timeline.Area(res.ExecCycles)) / float64(res.ExecCycles)
}
