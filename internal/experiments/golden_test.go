package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden figure files")

// TestGoldenFigures pins the static figures (classifications) byte for
// byte: the topology and classification layer must never drift silently.
// Refresh with: go test ./internal/experiments -run Golden -update-golden
func TestGoldenFigures(t *testing.T) {
	figs := map[string]func(*bytes.Buffer) error{
		"fig1.txt": func(b *bytes.Buffer) error { return Fig1(b) },
		"fig2.txt": func(b *bytes.Buffer) error { return Fig2(b) },
		"fig3.txt": func(b *bytes.Buffer) error { return Fig3(b) },
		"fig9.txt": func(b *bytes.Buffer) error { return Fig9(b) },
		"fig4.txt": func(b *bytes.Buffer) error { Fig4(b); return nil },
	}
	for name, render := range figs {
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		path := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-golden to create)", name, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("%s drifted from golden output:\n--- got ---\n%s\n--- want ---\n%s",
				name, buf.String(), string(want))
		}
	}
}
