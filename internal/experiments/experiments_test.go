package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestExecuteModes(t *testing.T) {
	p := SimPlatform()
	for _, mode := range []Mode{ModeWOOL, ModeASteal, ModePalirria} {
		r, err := Execute(p, "strassen", mode, 12)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if r.Result.ExecCycles <= 0 {
			t.Fatalf("%s: empty run", mode)
		}
	}
	if _, err := Execute(p, "nope", ModeWOOL, 5); err == nil {
		t.Fatal("unknown workload must fail")
	}
	if _, err := Execute(p, "fib", Mode("bogus"), 5); err == nil {
		t.Fatal("unknown mode must fail")
	}
	if _, err := Execute(p, "fib", ModeWOOL, 500); err == nil {
		t.Fatal("unsatisfiable fixed size must fail")
	}
}

func TestRunWorkloadNormalization(t *testing.T) {
	p := SimPlatform()
	wr, err := RunWorkload(p, "strassen")
	if err != nil {
		t.Fatal(err)
	}
	if len(wr.Fixed) != 4 {
		t.Fatalf("fixed runs = %d, want 4", len(wr.Fixed))
	}
	if wr.Fixed[0].NormExec != 100 {
		t.Fatalf("base norm = %v, want 100", wr.Fixed[0].NormExec)
	}
	if wr.ASteal.NormExec <= 0 || wr.Palirria.NormExec <= 0 {
		t.Fatal("adaptive norms missing")
	}
	if got := len(wr.All()); got != 6 {
		t.Fatalf("All() = %d runs, want 6", got)
	}
	// Labels follow the paper's axes.
	if wr.Fixed[0].label() != "5" || wr.ASteal.label() != "AS" || wr.Palirria.label() != "PA" {
		t.Fatal("labels wrong")
	}
}

func TestFig4PrintsAllWorkloads(t *testing.T) {
	var buf bytes.Buffer
	Fig4(&buf)
	out := buf.String()
	for _, name := range []string{"fft", "fib", "nqueens", "skew", "sort", "strassen", "stress"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Fig4 output missing %s", name)
		}
	}
}

func TestFig1Fig2Fig9Render(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "41-worker") {
		t.Fatalf("Fig1 is not the 41-worker allotment:\n%s", buf.String())
	}
	buf.Reset()
	if err := Fig2(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "three applications") {
		t.Fatal("Fig2 missing")
	}
	buf.Reset()
	if err := Fig9(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "27 workers on 8x4, source core 20") ||
		!strings.Contains(out, "35 workers on 8x6, source core 28") {
		t.Fatalf("Fig9 captions wrong:\n%s", out)
	}
}

func TestSuiteAndSummaryShape(t *testing.T) {
	// One-workload mini-suite keeps the test fast while exercising the
	// whole pipeline including figure rendering.
	p := SimPlatform()
	wr, err := RunWorkload(p, "strassen")
	if err != nil {
		t.Fatal(err)
	}
	suite := []WorkloadRuns{wr}
	var buf bytes.Buffer
	FigPerformance(&buf, p, suite)
	out := buf.String()
	for _, want := range []string{"strassen", "(a) exec time", "(b) wastefulness", "(c) allotment size", "ASTEAL", "Palirria"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FigPerformance missing %q", want)
		}
	}
	buf.Reset()
	FigPerWorker(&buf, p, suite, len(p.FixedSizes)-1)
	if !strings.Contains(buf.String(), "useful") {
		t.Fatal("FigPerWorker missing")
	}
	s := Summarize(suite)
	if s.Workloads != 1 {
		t.Fatalf("summary workloads = %d", s.Workloads)
	}
	buf.Reset()
	PrintSummary(&buf, p, s)
	if !strings.Contains(buf.String(), "avg slowdown") {
		t.Fatal("summary print missing")
	}
}

func TestAblations(t *testing.T) {
	p := SimPlatform()
	rows, err := AblationQuantum(p, "strassen", []int64{20000, 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].ExecCycles <= 0 {
		t.Fatalf("quantum ablation rows: %+v", rows)
	}
	rows, err = AblationL(p, "strassen", []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("L ablation rows missing")
	}
	rows, err = AblationVictim(p, "strassen")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("victim ablation rows missing")
	}
	rows, err = AblationFilter(p, "strassen")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("filter ablation rows missing")
	}
	var buf bytes.Buffer
	PrintAblation(&buf, "test", rows)
	if !strings.Contains(buf.String(), "filter=") {
		t.Fatal("ablation print missing")
	}
}

func TestEstimatorOverheadSubsetProperty(t *testing.T) {
	// The paper's low-overhead claim: Palirria inspects a strict subset of
	// the allotment at every size beyond the minimum.
	p := SimPlatform()
	rows, err := EstimatorOverhead(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows[1:] {
		if r.PalirriaWorst >= r.AStealInspected {
			t.Fatalf("allotment %d: palirria worst case %d >= asteal %d",
				r.AllotmentSize, r.PalirriaWorst, r.AStealInspected)
		}
		if r.PalirriaTypical > r.PalirriaWorst {
			t.Fatalf("allotment %d: typical %d above worst %d",
				r.AllotmentSize, r.PalirriaTypical, r.PalirriaWorst)
		}
	}
	var buf bytes.Buffer
	PrintOverhead(&buf, p, rows)
	if !strings.Contains(buf.String(), "palirria") {
		t.Fatal("overhead print missing")
	}
}

func TestPlatformsDiffer(t *testing.T) {
	simP, linux := SimPlatform(), LinuxPlatform()
	if simP.Mesh().NumCores() != 32 || linux.Mesh().NumCores() != 48 {
		t.Fatal("platform meshes wrong")
	}
	if simP.Machine(simP.Mesh()).Name() != "ideal" || linux.Machine(linux.Mesh()).Name() != "numa" {
		t.Fatal("machine models wrong")
	}
	if len(simP.FixedSizes) != 4 || len(linux.FixedSizes) != 6 {
		t.Fatal("fixed sizes wrong")
	}
}

func TestMultiprogrammed(t *testing.T) {
	rows, err := Multiprogrammed(50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.MakespanCycles <= 0 || len(r.JobExec) != 3 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	// The adaptive policies must consume fewer worker-cycles than the
	// static equal split: cores move to whoever can use them.
	var fixed, pa MultiprogResult
	for _, r := range rows {
		switch r.Label {
		case "fixed":
			fixed = r
		case "palirria":
			pa = r
		}
	}
	if pa.AvgWorkerCycles >= fixed.AvgWorkerCycles {
		t.Fatalf("palirria worker-cycles %d not below fixed %d",
			pa.AvgWorkerCycles, fixed.AvgWorkerCycles)
	}
	var buf bytes.Buffer
	PrintMultiprogrammed(&buf, rows)
	if !strings.Contains(buf.String(), "makespan") {
		t.Fatal("print missing")
	}
}

func TestAblationEstimators(t *testing.T) {
	rows, err := AblationEstimators(SimPlatform(), "strassen")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.ExecCycles <= 0 {
			t.Fatalf("empty row %+v", r)
		}
	}
}

func TestRealRuntimeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison")
	}
	rows, err := RealRuntime(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WoolMS <= 0 || r.AStealMS <= 0 || r.PalirriaMS <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintRealRuntime(&buf, rows)
	if !strings.Contains(buf.String(), "palirria ms") {
		t.Fatal("print missing")
	}
}

func TestRunWorkloadSeedsSecondBest(t *testing.T) {
	p := SimPlatform()
	wr, err := RunWorkloadSeeds(p, "strassen", []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Fixed[0].NormExec != 100 {
		t.Fatalf("base norm = %v", wr.Fixed[0].NormExec)
	}
	// Single seed behaves like RunWorkload.
	one, err := RunWorkloadSeeds(p, "strassen", nil)
	if err != nil {
		t.Fatal(err)
	}
	if one.Workload != "strassen" || len(one.Fixed) != 4 {
		t.Fatal("fallback path broken")
	}
	// Palirria is deterministic: its exec must match a direct run.
	direct, err := Execute(p, "strassen", ModePalirria, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Palirria.Result.ExecCycles != direct.Result.ExecCycles {
		t.Fatalf("palirria varies with seed: %d vs %d",
			wr.Palirria.Result.ExecCycles, direct.Result.ExecCycles)
	}
	// The second-best ASTEAL exec is one of the three seeded runs and not
	// the worst one.
	var execs []int64
	for _, seed := range []uint64{1, 2, 3} {
		ps := p
		ps.Seed = seed
		r, err := Execute(ps, "strassen", ModeASteal, 0)
		if err != nil {
			t.Fatal(err)
		}
		execs = append(execs, r.Result.ExecCycles)
	}
	worst := execs[0]
	found := false
	for _, e := range execs {
		if e > worst {
			worst = e
		}
		if e == wr.ASteal.Result.ExecCycles {
			found = true
		}
	}
	if !found {
		t.Fatal("second-best ASTEAL not among the seeded runs")
	}
	if len(execs) == 3 && wr.ASteal.Result.ExecCycles == worst &&
		execs[0] != execs[1] && execs[1] != execs[2] && execs[0] != execs[2] {
		t.Fatal("picked the worst run instead of the second best")
	}
}

func TestAblationStealableSlots(t *testing.T) {
	rows, err := AblationStealableSlots(SimPlatform(), "stress", []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A single stealable slot throttles distribution badly compared to the
	// default.
	if rows[0].ExecCycles <= rows[1].ExecCycles {
		t.Logf("note: slots=1 (%d) not slower than slots=16 (%d) on this workload",
			rows[0].ExecCycles, rows[1].ExecCycles)
	}
}

func TestAblationPalirriaNeedsDVS(t *testing.T) {
	rows, err := AblationPalirriaNeedsDVS(SimPlatform(), "bursty")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Both must at least complete; the comparison is reported, not
	// asserted (the misfire direction depends on the workload).
	for _, r := range rows {
		if r.ExecCycles <= 0 {
			t.Fatalf("degenerate %+v", r)
		}
	}
}
