// Package experiments reproduces the paper's evaluation: every figure and
// table of §5/§6, plus the ablations DESIGN.md lists. Each experiment is a
// pure function from a Platform to printable results, so the cmd tools,
// the benchmark harness and the tests all share one implementation.
package experiments

import (
	"fmt"

	"palirria/internal/asteal"
	"palirria/internal/core"
	"palirria/internal/metrics"
	"palirria/internal/sim"
	"palirria/internal/topo"
	"palirria/internal/workload"
)

// Platform bundles one evaluation platform's configuration.
type Platform struct {
	// Name is the figure caption name.
	Name string
	// WL selects the workload input scale.
	WL workload.Platform
	// Source is the core workloads start on.
	Source topo.CoreID
	// MaxDiaspora caps adaptive growth at the paper's largest fixed size.
	MaxDiaspora int
	// FixedSizes are the paper's fixed allotments for this platform.
	FixedSizes []int
	// Quantum is the estimation interval in cycles.
	Quantum int64
	// Seed drives random victim selection.
	Seed uint64

	newMesh    func() *topo.Mesh
	newMachine func(*topo.Mesh) sim.MachineModel
}

// Mesh returns a fresh mesh with the platform's reservations applied.
func (p Platform) Mesh() *topo.Mesh { return p.newMesh() }

// Machine returns the platform's machine model over mesh.
func (p Platform) Machine(m *topo.Mesh) sim.MachineModel { return p.newMachine(m) }

// SimPlatform is the paper's simulated platform: 32-core 8x4 mesh,
// Barrelfish, ideal 1-cycle machine, cores 0-1 reserved, source core 20,
// fixed allotments 5/12/20/27.
func SimPlatform() Platform {
	return Platform{
		Name:        "Barrelfish (simulator)",
		WL:          workload.Simulator,
		Source:      20,
		MaxDiaspora: 4,
		FixedSizes:  []int{5, 12, 20, 27},
		// Small relative to run lengths (the paper's "small fixed
		// interval") so adaptation dynamics, not ramp cost, dominate.
		Quantum: 50000,
		Seed:    9,
		newMesh: func() *topo.Mesh {
			m := topo.MustMesh(8, 4)
			m.Reserve(0, 1)
			return m
		},
		newMachine: func(*topo.Mesh) sim.MachineModel { return sim.Ideal{} },
	}
}

// LinuxPlatform is the paper's real-hardware platform as modelled: 48-core
// 8x6 mesh (Opteron 6172: 8 NUMA nodes of 6 cores), cores 0-2 reserved
// (see DESIGN.md on the third reservation), source core 28, fixed
// allotments 5/13/24/35/42/45, NUMA machine model.
func LinuxPlatform() Platform {
	return Platform{
		Name:        "Linux (real hardware model)",
		WL:          workload.NUMA,
		Source:      28,
		MaxDiaspora: 6,
		FixedSizes:  []int{5, 13, 24, 35, 42, 45},
		Quantum:     50000,
		Seed:        9,
		newMesh: func() *topo.Mesh {
			m := topo.MustMesh(8, 6)
			m.Reserve(0, 1, 2)
			return m
		},
		newMachine: func(m *topo.Mesh) sim.MachineModel { return sim.NewNUMA(m) },
	}
}

// Mode identifies a scheduler configuration of the evaluation.
type Mode string

const (
	// ModeWOOL is the original non-adaptive runtime with its random victim
	// selection, run at a fixed allotment size.
	ModeWOOL Mode = "wool"
	// ModeASteal is WOOL plus the ASTEAL estimator (victim selection
	// unchanged: random).
	ModeASteal Mode = "asteal"
	// ModePalirria is WOOL with DVS victim selection plus the Palirria
	// estimator.
	ModePalirria Mode = "palirria"
)

// Run is one configured execution and its derived metrics.
type Run struct {
	// Workload and Mode identify the configuration; Workers is the fixed
	// size (0 for adaptive modes).
	Workload string
	Mode     Mode
	Workers  int
	// Result is the raw simulator outcome.
	Result *sim.Result
	// Report is the aggregated metrics.
	Report *metrics.Report
	// NormExec is execution time as % of the 5-worker fixed run.
	NormExec float64
	// WastePct is the paper's wastefulness metric.
	WastePct float64
	// AvgWorkers is the time-averaged allotment size.
	AvgWorkers float64
}

// label names the run like the paper's x axes: "5", "27", "AS", "PA".
func (r Run) label() string {
	switch r.Mode {
	case ModeASteal:
		return "AS"
	case ModePalirria:
		return "PA"
	default:
		return fmt.Sprintf("%d", r.Workers)
	}
}

// Execute runs one configuration on the platform.
func Execute(p Platform, wl string, mode Mode, fixedWorkers int) (Run, error) {
	d, err := workload.Get(wl)
	if err != nil {
		return Run{}, err
	}
	mesh := p.Mesh()
	cfg := sim.Config{
		Mesh:        mesh,
		Source:      p.Source,
		Root:        d.Root(p.WL),
		Machine:     p.Machine(mesh),
		MaxDiaspora: p.MaxDiaspora,
		Quantum:     p.Quantum,
		Seed:        p.Seed,
	}
	switch mode {
	case ModeWOOL:
		dd, _, ok := topo.DiasporaForSize(mesh, p.Source, fixedWorkers)
		if !ok {
			return Run{}, fmt.Errorf("experiments: no allotment of size %d", fixedWorkers)
		}
		cfg.InitialDiaspora = dd
		cfg.Policy = "random"
	case ModeASteal:
		cfg.InitialDiaspora = 1
		cfg.Policy = "random"
		cfg.Estimator = asteal.New()
	case ModePalirria:
		cfg.InitialDiaspora = 1
		cfg.Policy = "dvs"
		cfg.Estimator = core.NewPalirria()
	default:
		return Run{}, fmt.Errorf("experiments: unknown mode %q", mode)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return Run{}, fmt.Errorf("experiments: %s/%s: %w", wl, mode, err)
	}
	rep := res.Report()
	run := Run{
		Workload: wl,
		Mode:     mode,
		Workers:  fixedWorkers,
		Result:   res,
		Report:   rep,
		WastePct: rep.WastefulnessPercent(),
	}
	if res.ExecCycles > 0 {
		run.AvgWorkers = float64(res.Timeline.Area(res.ExecCycles)) / float64(res.ExecCycles)
	}
	return run, nil
}

// WorkloadRuns holds all configurations of one workload on one platform:
// the fixed series plus the two adaptive runs, with NormExec filled in
// relative to the first fixed size.
type WorkloadRuns struct {
	Workload string
	Fixed    []Run
	ASteal   Run
	Palirria Run
}

// All returns every run in figure order (fixed sizes, AS, PA).
func (wr WorkloadRuns) All() []Run {
	out := append([]Run(nil), wr.Fixed...)
	return append(out, wr.ASteal, wr.Palirria)
}

// RunWorkload executes the full configuration sweep for one workload.
func RunWorkload(p Platform, wl string) (WorkloadRuns, error) {
	wr := WorkloadRuns{Workload: wl}
	for _, size := range p.FixedSizes {
		r, err := Execute(p, wl, ModeWOOL, size)
		if err != nil {
			return wr, err
		}
		wr.Fixed = append(wr.Fixed, r)
	}
	var err error
	if wr.ASteal, err = Execute(p, wl, ModeASteal, 0); err != nil {
		return wr, err
	}
	if wr.Palirria, err = Execute(p, wl, ModePalirria, 0); err != nil {
		return wr, err
	}
	base := float64(wr.Fixed[0].Result.ExecCycles)
	norm := func(r *Run) {
		if base > 0 {
			r.NormExec = 100 * float64(r.Result.ExecCycles) / base
		}
	}
	for i := range wr.Fixed {
		norm(&wr.Fixed[i])
	}
	norm(&wr.ASteal)
	norm(&wr.Palirria)
	return wr, nil
}

// simResult aliases the simulator result for the ablation helpers.
type simResult = sim.Result

// simRunFixed runs workload d at a fixed diaspora under the given policy.
func simRunFixed(p Platform, mesh *topo.Mesh, d *workload.Def, policy string, diaspora int) (*sim.Result, error) {
	return sim.Run(sim.Config{
		Mesh:            mesh,
		Source:          p.Source,
		Root:            d.Root(p.WL),
		Machine:         p.Machine(mesh),
		InitialDiaspora: diaspora,
		MaxDiaspora:     p.MaxDiaspora,
		Policy:          policy,
		Seed:            p.Seed,
		Quantum:         p.Quantum,
	})
}

// simRunAdaptive runs workload d under the given estimator and policy.
func simRunAdaptive(p Platform, mesh *topo.Mesh, d *workload.Def, est core.Estimator, policy string, noFilter bool) (*sim.Result, error) {
	return sim.Run(sim.Config{
		Mesh:            mesh,
		Source:          p.Source,
		Root:            d.Root(p.WL),
		Machine:         p.Machine(mesh),
		InitialDiaspora: 1,
		MaxDiaspora:     p.MaxDiaspora,
		Policy:          policy,
		Seed:            p.Seed,
		Quantum:         p.Quantum,
		Estimator:       est,
		NoFilter:        noFilter,
	})
}

// RunWorkloadSeeds executes the sweep under several seeds and keeps, per
// configuration, the second-best execution time — the paper's reporting
// methodology ("the results reported were of the second best run among
// 10", §5). Only the random-victim configurations (WOOL, ASTEAL) vary
// with the seed; Palirria is deterministic, so its runs are identical and
// the second best equals the only result.
func RunWorkloadSeeds(p Platform, wl string, seeds []uint64) (WorkloadRuns, error) {
	if len(seeds) == 0 {
		return RunWorkload(p, wl)
	}
	var sweeps []WorkloadRuns
	for _, seed := range seeds {
		ps := p
		ps.Seed = seed
		wr, err := RunWorkload(ps, wl)
		if err != nil {
			return WorkloadRuns{}, err
		}
		sweeps = append(sweeps, wr)
	}
	pick := func(get func(WorkloadRuns) Run) Run {
		runs := make([]Run, 0, len(sweeps))
		for _, s := range sweeps {
			runs = append(runs, get(s))
		}
		// Second best = second smallest exec (best when only one run).
		bestIdx := 0
		for i, r := range runs {
			if r.Result.ExecCycles < runs[bestIdx].Result.ExecCycles {
				bestIdx = i
			}
		}
		secondIdx := bestIdx
		for i, r := range runs {
			if i == bestIdx {
				continue
			}
			if secondIdx == bestIdx || r.Result.ExecCycles < runs[secondIdx].Result.ExecCycles {
				secondIdx = i
			}
		}
		return runs[secondIdx]
	}
	out := WorkloadRuns{Workload: wl}
	for i := range sweeps[0].Fixed {
		i := i
		out.Fixed = append(out.Fixed, pick(func(s WorkloadRuns) Run { return s.Fixed[i] }))
	}
	out.ASteal = pick(func(s WorkloadRuns) Run { return s.ASteal })
	out.Palirria = pick(func(s WorkloadRuns) Run { return s.Palirria })
	// Re-normalize against the selected 5-worker run.
	base := float64(out.Fixed[0].Result.ExecCycles)
	renorm := func(r *Run) {
		if base > 0 {
			r.NormExec = 100 * float64(r.Result.ExecCycles) / base
		}
	}
	for i := range out.Fixed {
		renorm(&out.Fixed[i])
	}
	renorm(&out.ASteal)
	renorm(&out.Palirria)
	return out, nil
}

// RunSuiteSeeds is RunSuite under the second-best-of-seeds methodology.
func RunSuiteSeeds(p Platform, seeds []uint64) ([]WorkloadRuns, error) {
	var out []WorkloadRuns
	for _, d := range workload.PaperSet() {
		wr, err := RunWorkloadSeeds(p, d.Name, seeds)
		if err != nil {
			return nil, err
		}
		out = append(out, wr)
	}
	return out, nil
}

// RunSuite executes the paper's seven workloads on platform p.
func RunSuite(p Platform) ([]WorkloadRuns, error) {
	var out []WorkloadRuns
	for _, d := range workload.PaperSet() {
		wr, err := RunWorkload(p, d.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, wr)
	}
	return out, nil
}
