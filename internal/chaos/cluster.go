package chaos

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"palirria/internal/cluster"
	"palirria/internal/cluster/pick"
	"palirria/internal/obs/stream"
	"palirria/internal/serve"
	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

// chaosNode is one cluster member under test: a resident pool with its
// event hub, its gossip member, and its HTTP server on a real loopback
// listener (the router reaches it through the kernel, not a bench stub,
// so a kill produces genuine transport errors).
type chaosNode struct {
	id   string
	pool *serve.Pool
	hub  *stream.Hub
	node *cluster.Node
	srv  *http.Server
	addr string

	terminal int64 // completed+cancelled events seen by the durable sub
	durable  *stream.Sub
	durDone  chan struct{}
	killOnce sync.Once
}

// newChaosNode builds and starts one serve node.
func newChaosNode(sc *Script, idx int) (*chaosNode, error) {
	id := fmt.Sprintf("node-%d", idx)
	hub := stream.NewHub()
	pool, err := serve.New(serve.Config{
		Name: id,
		Runtime: wsrt.Config{
			Mesh:           topo.MustMesh(sc.MeshW, sc.MeshH),
			Quantum:        time.Duration(sc.QuantumUS) * time.Microsecond,
			SubmitQueueCap: sc.SubmitQueueCap,
		},
		QueueCap: sc.PoolQueueCap,
		Events:   hub,
	})
	if err != nil {
		hub.Close()
		return nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		hub.Close()
		return nil, err
	}
	n := &chaosNode{id: id, pool: pool, hub: hub, addr: "http://" + lis.Addr().String()}

	// The durable subscriber audits exactly-once terminal events: after
	// the drain, seen + dropped must equal the pool's admissions.
	n.durable = hub.Subscribe(stream.SubOptions{
		Buf:   1024,
		Kinds: []stream.Kind{stream.KindCompleted, stream.KindCancelled},
	})
	n.durDone = make(chan struct{})
	go func() {
		defer close(n.durDone)
		for range n.durable.Events() {
			atomic.AddInt64(&n.terminal, 1)
		}
	}()

	gn, err := cluster.NewNode(cluster.Config{
		ID:   id,
		Addr: n.addr,
		Role: cluster.RoleServe,
		Snapshot: func() cluster.Record {
			s := pool.Snapshot()
			return cluster.Record{
				Desire: s.Desire, Allotment: s.Allotment, Spare: s.Spare,
				Queued: s.InFlight, QueueCap: s.QueueCap,
				Shed: s.Shedding, AdmitP99: s.AdmitP99,
			}
		},
		Interval:     time.Duration(sc.GossipEveryUS) * time.Microsecond,
		SuspectAfter: time.Duration(sc.SuspectAfterUS) * time.Microsecond,
		DeadAfter:    time.Duration(sc.DeadAfterUS) * time.Microsecond,
		Events:       hub,
	})
	if err != nil {
		hub.Close()
		lis.Close()
		return nil, err
	}
	n.node = gn

	mux := http.NewServeMux()
	mux.HandleFunc("/gossip", gn.GossipHandler())
	mux.HandleFunc("/cluster", gn.ClusterHandler())
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		leaves, _ := strconv.Atoi(r.URL.Query().Get("leaves"))
		compute, _ := strconv.ParseInt(r.URL.Query().Get("compute"), 10, 64)
		if leaves < 1 {
			leaves = 1
		}
		var runs atomic.Int64
		err := pool.Submit(r.Context(), func(c *wsrt.Ctx) {
			fanLeaves(c, leaves, compute, &runs)
		})
		switch {
		case err == nil:
			fmt.Fprintf(w, `{"node":%q,"leaves":%d}`, id, runs.Load())
		case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrOverloaded):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		default:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		}
	})
	n.srv = &http.Server{Handler: mux}
	go n.srv.Serve(lis) //nolint:errcheck // returns ErrServerClosed on Close
	gn.Start()
	return n, nil
}

// kill cuts the node abruptly: live connections drop mid-flight, gossip
// stops, and the pool drains so its ledger settles. Idempotent.
func (n *chaosNode) kill(res *Result) {
	n.killOnce.Do(func() {
		n.node.Stop()
		n.srv.Close() //nolint:errcheck // closing listeners and live conns
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := n.pool.Drain(ctx); err != nil && !errors.Is(err, serve.ErrDraining) {
			res.fail("%s drain: %v", n.id, err)
		}
	})
}

// settle finishes the node's stream audit after its drain.
func (n *chaosNode) settle(res *Result) {
	n.durable.Close()
	<-n.durDone
	n.hub.Close()
	st := n.pool.Stats()
	if st.Admitted != st.Completed+st.Cancelled {
		res.fail("%s ledger: admitted %d != completed %d + cancelled %d",
			n.id, st.Admitted, st.Completed, st.Cancelled)
	}
	if st.InFlight != 0 {
		res.fail("%s: %d jobs in flight after drain", n.id, st.InFlight)
	}
	if got := atomic.LoadInt64(&n.terminal) + int64(n.durable.Dropped()); got != st.Admitted {
		res.fail("%s stream: %d terminal event(s) + dropped != %d admitted — terminal events not exactly-once",
			n.id, got, st.Admitted)
	}
}

// runCluster drives the full distributed stack: a router core over
// ClusterNodes loopback serve nodes, a submit storm through the router,
// and an abrupt node kill mid-storm. Invariants on top of the per-pool
// ledgers: every submission the router accepted (200) completed on some
// node (zero accepted-job loss), terminal events are exactly-once per
// pool, and once the router's gossip confirms the kill no further
// submission is routed to the dead peer.
func runCluster(sc *Script, res *Result) {
	nodes := make([]*chaosNode, 0, sc.ClusterNodes)
	for i := 0; i < sc.ClusterNodes; i++ {
		n, err := newChaosNode(sc, i)
		if err != nil {
			res.fail("build %s: %v", fmt.Sprintf("node-%d", i), err)
			return
		}
		nodes = append(nodes, n)
	}
	seeds := make([]string, len(nodes))
	for i, n := range nodes {
		seeds[i] = n.addr
	}

	// The router is a gossip member too; its hub carries the lifecycle
	// the dead-peer check audits, through a durable subscriber whose
	// buffer is sized to the whole storm (a drop would blind the audit).
	rhub := stream.NewHub()
	rsub := rhub.Subscribe(stream.SubOptions{
		Buf: 2*len(sc.Jobs) + 256,
		Kinds: []stream.Kind{
			stream.KindRouted, stream.KindFailover,
			stream.KindPeerUp, stream.KindPeerSuspect, stream.KindPeerDead,
		},
	})
	var events []stream.Event
	evDone := make(chan struct{})
	go func() {
		defer close(evDone)
		for ev := range rsub.Events() {
			events = append(events, ev)
		}
	}()

	rlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		res.fail("router listen: %v", err)
		return
	}
	rnode, err := cluster.NewNode(cluster.Config{
		ID:           "router",
		Addr:         "http://" + rlis.Addr().String(),
		Role:         cluster.RoleRouter,
		Join:         seeds,
		Interval:     time.Duration(sc.GossipEveryUS) * time.Microsecond,
		SuspectAfter: time.Duration(sc.SuspectAfterUS) * time.Microsecond,
		DeadAfter:    time.Duration(sc.DeadAfterUS) * time.Microsecond,
		Events:       rhub,
	})
	if err != nil {
		res.fail("router node: %v", err)
		return
	}
	core, err := cluster.NewRouter(cluster.RouterConfig{
		Node:    rnode,
		Picker:  pick.New(rnode.Serveable, pick.Options{BreakFor: 50 * time.Millisecond}),
		Retries: sc.RouterRetries,
		Backoff: time.Millisecond,
		Client:  &http.Client{Timeout: 30 * time.Second},
		Events:  rhub,
	})
	if err != nil {
		res.fail("router core: %v", err)
		return
	}
	rsrv := &http.Server{Handler: core.Handler()}
	go rsrv.Serve(rlis) //nolint:errcheck // returns ErrServerClosed on Close
	rnode.Start()
	routerURL := "http://" + rlis.Addr().String()

	// Wait for membership to converge before the storm; a router that
	// cannot see the cluster would fail everything vacuously.
	deadline := time.Now().Add(10 * time.Second)
	for len(rnode.Serveable()) < len(nodes) {
		if time.Now().After(deadline) {
			res.fail("router saw only %d of %d nodes", len(rnode.Serveable()), len(nodes))
			return
		}
		time.Sleep(time.Millisecond)
	}

	victim := nodes[sc.KillNode%len(nodes)]
	client := &http.Client{Timeout: 30 * time.Second}
	post := func(spec JobSpec) (int, error) {
		url := fmt.Sprintf("%s/submit?leaves=%d&compute=%d", routerURL, spec.Leaves, spec.ComputeNS)
		resp, err := client.Post(url, "", nil)
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, err
	}

	var attempted, accepted, rejected, failed atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < sc.Submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := g; j < len(sc.Jobs); j += sc.Submitters {
				spec := sc.Jobs[j]
				sleepUS(spec.DelayUS)
				attempted.Add(1)
				status, err := post(spec)
				switch {
				case err != nil:
					// The router itself is never killed; a transport error
					// to it is a harness failure, not chaos.
					failed.Add(1)
					res.fail("job %d: router unreachable: %v", j, err)
				case status == http.StatusOK:
					accepted.Add(1)
				default:
					rejected.Add(1)
				}
			}
		}(g)
	}

	// The abrupt kill, mid-storm.
	if d := time.Duration(sc.KillAtUS)*time.Microsecond - time.Since(start); d > 0 {
		time.Sleep(d)
	}
	victim.kill(res)
	wg.Wait()

	// Make the dead-peer check non-vacuous: wait for the router's gossip
	// to confirm the death, then push a probe burst that must all land on
	// survivors.
	deadline = time.Now().Add(10 * time.Second)
	for {
		// A reaped peer (state "") was necessarily dead first; with the
		// scenario's microsecond timers the reap can land before we look.
		if st := rnode.PeerState(victim.id); st == cluster.StateDead || st == "" {
			break
		}
		if time.Now().After(deadline) {
			res.fail("router never confirmed %s dead (state %q)", victim.id, rnode.PeerState(victim.id))
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		attempted.Add(1)
		status, err := post(JobSpec{Leaves: 2, ComputeNS: 1000})
		if err != nil {
			failed.Add(1)
			res.fail("probe %d: router unreachable: %v", i, err)
		} else if status == http.StatusOK {
			accepted.Add(1)
		} else {
			rejected.Add(1)
		}
	}

	// Tear down: drain survivors, stop the router, settle the audits.
	for _, n := range nodes {
		n.kill(res)
	}
	rnode.Stop()
	rsrv.Close() //nolint:errcheck
	rhub.Close()
	<-evDone
	if d := rsub.Dropped(); d > 0 {
		res.fail("router event audit dropped %d event(s); buffer too small to audit ordering", d)
	}

	// Dead-peer ordering: once the router published peer-dead for the
	// victim, no later routed event may name it.
	deadSeen := false
	for _, ev := range events {
		switch ev.Kind {
		case stream.KindPeerDead:
			if ev.Node == victim.id {
				deadSeen = true
			}
		case stream.KindRouted:
			if deadSeen && ev.Node == victim.id {
				res.fail("submission routed to %s after its death was confirmed", victim.id)
			}
		}
	}
	if !deadSeen {
		res.fail("router hub carries no peer-dead event for %s", victim.id)
	}

	// Cluster-wide conservation and zero accepted-job loss.
	var admitted, completed, cancelled int64
	for _, n := range nodes {
		n.settle(res)
		st := n.pool.Stats()
		admitted += st.Admitted
		completed += st.Completed
		cancelled += st.Cancelled
	}
	if admitted != completed+cancelled {
		res.fail("cluster ledger: admitted %d != completed %d + cancelled %d", admitted, completed, cancelled)
	}
	// Submissions run synchronously on the node, so every accepted (200)
	// reply rode a completed job; retries can complete a job whose reply
	// was lost in the kill, hence >=.
	if completed < accepted.Load() {
		res.fail("zero-loss: %d accepted submissions but only %d completions", accepted.Load(), completed)
	}
	if core.FailedOver() == 0 {
		res.fail("the kill triggered no failover")
	}
	res.Attempted = attempted.Load()
	res.Accepted = accepted.Load()
	res.Rejected = rejected.Load() + failed.Load()
	res.Completed = completed
	res.Discarded = cancelled
}
