package chaos

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestScriptPlanningIsDeterministic is the replay guarantee: the same
// (scenario, seed) pair must expand to byte-identical script JSON, so a
// printed seed is a complete reproduction of the adversarial pressure.
func TestScriptPlanningIsDeterministic(t *testing.T) {
	for _, s := range Scenarios() {
		for _, seed := range []uint64{1, 0xdeadbeef, 0x9e3779b97f4a7c15} {
			a := s.Plan(seed).Marshal()
			b := s.Plan(seed).Marshal()
			if !bytes.Equal(a, b) {
				t.Errorf("%s seed %#x: planning is not deterministic", s.Name, seed)
			}
		}
	}
}

// TestScenarioSuiteIsLargeEnough pins the acceptance floor: the suite must
// cover grow, shrink, revoke-mid-drain and submit/drain/shutdown races.
func TestScenarioSuiteIsLargeEnough(t *testing.T) {
	if n := len(Scenarios()); n < 8 {
		t.Fatalf("suite has %d scenarios, want at least 8", n)
	}
	for _, name := range []string{"submit-shutdown", "shrink-with-work", "revoke-storm", "grow-burst"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("required scenario %q missing", name)
		}
	}
}

// TestScenariosUpholdInvariants runs every scenario under fixed seeds and
// requires a clean conservation ledger. On a violation it prints the full
// replay script — (scenario, seed) is the repro.
func TestScenariosUpholdInvariants(t *testing.T) {
	seeds := []uint64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, seed := range seeds {
				sc := s.Plan(seed)
				res := Run(sc, 90*time.Second)
				if !res.Ok() {
					t.Errorf("seed %d: %d violation(s):\n  %s\nreplay script:\n%s",
						seed, len(res.Violations), strings.Join(res.Violations, "\n  "), sc.Marshal())
				}
			}
		})
	}
}
