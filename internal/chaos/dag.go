package chaos

import (
	"context"
	"errors"
	"sync"
	"time"

	"palirria/internal/obs/stream"
	"palirria/internal/serve"
	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

// DAGNodeSpec is one planned node of a structured job: a binary fan of
// Leaves leaves, its dependency list (indices into the graph, always
// forward), and its priority class.
type DAGNodeSpec struct {
	Leaves    int   `json:"leaves"`
	ComputeNS int64 `json:"compute_ns"`
	Deps      []int `json:"deps,omitempty"`
	Class     int   `json:"class,omitempty"`
}

// DAGSpec is one planned structured job: submitted after DelayUS, and —
// when CancelAtUS > 0 — its submission context is cancelled that many
// microseconds after the submit starts, racing the cancellation against
// whatever the graph has released so far.
type DAGSpec struct {
	Nodes      []DAGNodeSpec `json:"nodes"`
	DelayUS    int64         `json:"delay_us,omitempty"`
	CancelAtUS int64         `json:"cancel_at_us,omitempty"`
}

// classAudit replays a pool's admission log in hub order against the
// ladder-stamping invariant: every class-shed event must carry a ladder
// level strictly above its class, every admitted event a level at or
// below it. Because the hub totally orders events, this is the exact form
// of "no high-class job was shed in a window where a lower class was
// still being admitted". When no events were dropped, the per-class
// tallies also cross-check the pool's ByClass ledger.
type classAudit struct {
	res      *Result
	sub      *stream.Sub
	done     chan struct{}
	admitted [serve.NumClasses]int64
	shed     [serve.NumClasses]int64
}

func newClassAudit(hub *stream.Hub, res *Result) *classAudit {
	a := &classAudit{res: res, done: make(chan struct{})}
	a.sub = hub.Subscribe(stream.SubOptions{
		Buf:   16384,
		Kinds: []stream.Kind{stream.KindAdmitted, stream.KindShed, stream.KindDeadlineShed},
	})
	go func() {
		defer close(a.done)
		for ev := range a.sub.Events() {
			a.observe(ev)
		}
	}()
	return a
}

func (a *classAudit) observe(ev stream.Event) {
	class, ok := serve.ParseClass(ev.Detail)
	if !ok {
		a.res.fail("class audit: %v event carries unknown class %q", ev.Kind, ev.Detail)
		return
	}
	switch ev.Kind {
	case stream.KindAdmitted:
		a.admitted[class]++
		if ev.Arg > int64(class) {
			a.res.fail("class audit: %v job admitted while the ladder read level %d", class, ev.Arg)
		}
	case stream.KindShed:
		switch ev.Reason {
		case "shed":
			a.shed[class]++
			if ev.Arg <= int64(class) {
				a.res.fail("class audit: %v job class-shed at ladder level %d (must be > class)", class, ev.Arg)
			}
		case "full":
			// Cleared the ladder, bounced off a saturated queue: no
			// ordering claim between the stamped level and the class.
		default:
			a.res.fail("class audit: shed event with unknown reason %q", ev.Reason)
		}
	case stream.KindDeadlineShed:
		a.shed[class]++
		if ev.Reason != "deadline" {
			a.res.fail("class audit: deadline-shed event with reason %q", ev.Reason)
		}
		if ev.Arg < 0 {
			a.res.fail("class audit: deadline-shed predicted wait %dns < 0", ev.Arg)
		}
	}
}

// finish detaches the auditor and, if the subscriber kept up, checks the
// replayed tallies against the pool's per-class ledger.
func (a *classAudit) finish(p *serve.Pool) {
	a.sub.Close()
	<-a.done
	if a.sub.Dropped() > 0 {
		// Every delivered event was still audited; the tallies are just
		// incomplete, so the ledger cross-check is skipped.
		return
	}
	st := p.Stats()
	for c := serve.ClassLow; c < serve.NumClasses; c++ {
		if a.admitted[c] != st.ByClass[c].Admitted {
			a.res.fail("class audit: %v stream shows %d admissions, pool ledger %d",
				c, a.admitted[c], st.ByClass[c].Admitted)
		}
		if a.shed[c] != st.ByClass[c].Shed {
			a.res.fail("class audit: %v stream shows %d sheds, pool ledger %d",
				c, a.shed[c], st.ByClass[c].Shed)
		}
	}
}

// runDAG drives a serve.Pool through SubmitDAG: planned graph storms with
// per-graph cancellations racing the release cascade, then a full drain.
// Conservation must survive the cancellation storm — every admitted node
// resolves exactly once as completed or cancelled, no body runs twice, no
// leaf is lost, and the pool's counters match the ledger.
func runDAG(sc *Script, res *Result) {
	p, err := serve.New(serve.Config{
		Name: "chaos-dag",
		Runtime: wsrt.Config{
			Mesh:           topo.MustMesh(sc.MeshW, sc.MeshH),
			Source:         topo.CoreID(sc.Source),
			Quantum:        time.Duration(sc.QuantumUS) * time.Microsecond,
			SubmitQueueCap: sc.SubmitQueueCap,
		},
		QueueCap:   sc.PoolQueueCap,
		ShedQuanta: sc.ShedQuanta,
	})
	if err != nil {
		res.fail("build pool: %v", err)
		return
	}
	recs := make([][]*jobRec, len(sc.DAGs))
	for i, d := range sc.DAGs {
		recs[i] = make([]*jobRec, len(d.Nodes))
		for k, ns := range d.Nodes {
			recs[i][k] = &jobRec{leaves: ns.Leaves}
		}
	}
	start := time.Now()

	oscDone := make(chan struct{})
	go func() {
		defer close(oscDone)
		oscillate(sc.CapEvents, start, p.SetMaxWorkers)
	}()

	var wg sync.WaitGroup
	for g := 0; g < sc.Submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for di := g; di < len(sc.DAGs); di += sc.Submitters {
				submitOneDAG(p, sc.DAGs[di], recs[di], di, res)
			}
		}(g)
	}
	wg.Wait()

	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := p.Drain(drainCtx); err != nil {
		res.fail("drain: %v", err)
	}
	<-oscDone

	var flat []*jobRec
	for _, rs := range recs {
		flat = append(flat, rs...)
	}
	checkLedger(flat, res)
	completed, discarded := ledgerSplit(flat, func(int) bool { return true })
	checkPoolStats(p, res, completed, discarded)
}

// submitOneDAG submits one planned graph and records each node's fate. A
// whole-graph admission rejection fills every error slot with the same
// sentinel; anything else means the graph was admitted and each node's
// error reports its own resolution.
func submitOneDAG(p *serve.Pool, d DAGSpec, recs []*jobRec, di int, res *Result) {
	sleepUS(d.DelayUS)
	ctx := context.Background()
	if d.CancelAtUS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(d.CancelAtUS)*time.Microsecond)
		defer cancel()
	}
	nodes := make([]serve.DAGNode, len(d.Nodes))
	for k, ns := range d.Nodes {
		nodes[k] = serve.DAGNode{
			Fn:    jobBody(recs[k], JobSpec{Leaves: ns.Leaves, ComputeNS: ns.ComputeNS}),
			Deps:  ns.Deps,
			Class: serve.Class(ns.Class),
		}
	}
	errs, err := p.SubmitDAG(ctx, nodes)
	if err != nil {
		res.fail("dag %d: %v", di, err)
		for _, rec := range recs {
			rec.outcome.Store(outcomeRejected)
		}
		return
	}
	if len(errs) != len(recs) {
		res.fail("dag %d: %d errors for %d nodes", di, len(errs), len(recs))
		return
	}
	rejected := true
	for _, e := range errs {
		if !(errors.Is(e, serve.ErrQueueFull) || errors.Is(e, serve.ErrOverloaded) ||
			errors.Is(e, serve.ErrDeadline) || errors.Is(e, serve.ErrDraining)) {
			rejected = false
			break
		}
	}
	for k, rec := range recs {
		if rejected {
			rec.outcome.Store(outcomeRejected)
			continue
		}
		rec.outcome.Store(outcomeAccepted)
		rec.done.Add(1) // the resolved await is the ack; bodies audit at drain
		e := errs[k]
		if e == nil || errors.Is(e, serve.ErrCancelled) || errors.Is(e, serve.ErrDiscarded) ||
			errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded) {
			continue
		}
		res.fail("dag %d node %d: unexpected error %v", di, k, e)
	}
}
