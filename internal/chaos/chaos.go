// Package chaos is a deterministic adversarial harness for the runtime's
// reconfiguration paths. Every scenario is planned entirely up front: a
// seed drives an xrand.Xoshiro256 whose draws fix the topology, the job
// mix, the cap-oscillation timeline and the shutdown point, producing a
// Script that marshals to byte-identical JSON for the same seed. The
// script is then executed against the real runtime (or the serving layers
// above it) while a ledger records the fate of every job, and conservation
// invariants are checked once the dust settles:
//
//   - every Submit that returned nil has its onDone fire exactly once;
//   - no job body runs twice, and a body that ran executed every leaf of
//     its task tree exactly once (nothing lost across a drain or retire);
//   - attempted == accepted + rejected;
//   - per-worker UsefulNS + SearchNS + IdleNS never exceeds the reported
//     wall clock;
//   - pool layers conserve admissions: admitted == completed + cancelled,
//     with zero jobs in flight after Drain;
//   - the runtime's striped submission ledger balances after shutdown:
//     every unit of SubmitQueueCap is back in exactly one place, no
//     reservation leaked or was double-released (wsrt.VerifySubmitLedger);
//   - the whole scenario completes within a deadlock bound.
//
// Execution interleavings stay nondeterministic — that is the point; the
// schedule is the adversary. Determinism lives in the plan, so a failing
// (scenario, seed) pair replays the same adversarial pressure.
package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"palirria/internal/core"
	"palirria/internal/obs/stream"
	"palirria/internal/serve"
	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

// Layer names a driving surface.
const (
	LayerRuntime = "runtime" // wsrt.Runtime via Submit/SetMaxWorkers/Shutdown
	LayerPool    = "pool"    // serve.Pool via Submit/SetMaxWorkers/Drain
	LayerTenancy = "tenancy" // two serve.Pools under a serve.Tenancy
	LayerCluster = "cluster" // a gossip router over N serve.Pools on loopback HTTP
	LayerDAG     = "dag"     // serve.Pool via SubmitDAG with planned graph storms
)

// JobSpec is one planned job: a binary fan of Leaves leaf tasks, each
// spinning ComputeNS synthetic nanoseconds, submitted after DelayUS.
// Class picks the priority class (0 = low); DeadlineUS > 0 attaches a
// start deadline that far in the future at submit time.
type JobSpec struct {
	Leaves     int   `json:"leaves"`
	ComputeNS  int64 `json:"compute_ns"`
	DelayUS    int64 `json:"delay_us,omitempty"`
	Class      int   `json:"class,omitempty"`
	DeadlineUS int64 `json:"deadline_us,omitempty"`
}

// CapEvent imposes a worker cap at AtUS microseconds after the scenario
// starts (Cap <= 0 lifts the cap). Events are planned in ascending time.
type CapEvent struct {
	AtUS int64 `json:"at_us"`
	Cap  int   `json:"cap"`
}

// Script is a fully planned scenario. It is pure data: planning the same
// (scenario, seed) pair always yields the same script, byte-for-byte under
// JSON marshalling, which is what makes a printed seed a complete repro.
type Script struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Layer    string `json:"layer"`

	MeshW  int `json:"mesh_w"`
	MeshH  int `json:"mesh_h"`
	Source int `json:"source"`
	// QuantumUS enables the Palirria estimator at that quantum; 0 runs the
	// fixed initial allotment (adaptation off).
	QuantumUS      int64 `json:"quantum_us,omitempty"`
	SubmitQueueCap int   `json:"submit_queue_cap"`
	PoolQueueCap   int   `json:"pool_queue_cap,omitempty"`
	// LocalityNodes > 1 runs the runtime under a synthetic locality split
	// of that many nodes (topo.SplitLocality), driving the biased shard
	// pick and the node-local-first steal sweeps through the same
	// adversarial interleavings as the flat paths; 0/1 forces flat.
	LocalityNodes int `json:"locality_nodes,omitempty"`

	Submitters int       `json:"submitters"`
	Jobs       []JobSpec `json:"jobs"`
	// BatchSize > 1 makes runtime-layer submitters use SubmitBatch in
	// chunks of this size (with prefix-acceptance handling); otherwise
	// jobs are submitted one by one.
	BatchSize int `json:"batch_size,omitempty"`
	// GiveUpOnFull counts ErrSubmitQueueFull as a rejection instead of
	// retrying — the queue-full-flush scenario wants rejections on the
	// books so the accepted/rejected partition is exercised.
	GiveUpOnFull bool       `json:"give_up_on_full,omitempty"`
	CapEvents    []CapEvent `json:"cap_events,omitempty"`
	// ShutdownAtUS fires Shutdown (or the pool Drain) at a fixed offset,
	// racing the submit storm; 0 waits for the submitters first.
	ShutdownAtUS int64 `json:"shutdown_at_us,omitempty"`
	// DrainBacklog waits for every accepted job to finish running before
	// Shutdown (runtime layer, ShutdownAtUS == 0 only). Without it the
	// flush discards whatever is still queued — legal, but the shrink and
	// revoke scenarios want their work to actually flow through the drains.
	DrainBacklog bool `json:"drain_backlog,omitempty"`
	// Tenancy knobs: re-arbitration period and when the first pool drains.
	RearbEveryUS   int64 `json:"rearb_every_us,omitempty"`
	DrainFirstAtUS int64 `json:"drain_first_at_us,omitempty"`
	// ShedQuanta overrides the pool's shed-ladder arming threshold (pool
	// and dag layers); 0 keeps the serve default.
	ShedQuanta int `json:"shed_quanta,omitempty"`
	// AuditClassEvents attaches an event hub (pool layer) and audits the
	// admission/shed stream against the ladder-stamping invariant: every
	// class-shed event carries a ladder level above its class, every
	// admitted event a level at or below it — the exact, totally-ordered
	// form of "no high-class shed while low-class admitted in the same
	// window".
	AuditClassEvents bool `json:"audit_class_events,omitempty"`
	// DAGs is the planned graph storm for the dag layer; Jobs is unused
	// there.
	DAGs []DAGSpec `json:"dags,omitempty"`
	// Streaming knobs (pool layer): StreamSubs > 0 attaches an event hub to
	// the pool and runs that many churning subscribers that attach, read for
	// StreamChurnUS microseconds through a StreamBuf-slot buffer, and detach,
	// over and over, while a durable terminal-event subscriber audits that
	// every admitted job yields exactly one completed/cancelled event or a
	// counted drop — and that nothing is delivered after a Close returns.
	StreamSubs    int   `json:"stream_subs,omitempty"`
	StreamBuf     int   `json:"stream_buf,omitempty"`
	StreamChurnUS int64 `json:"stream_churn_us,omitempty"`
	// Cluster knobs (cluster layer): a palirria-router core fronting
	// ClusterNodes serve pools over real loopback HTTP, all gossiping at
	// GossipEveryUS with the given suspicion timeouts. KillNode is cut
	// abruptly (listener and live connections dropped, then drained) at
	// KillAtUS into the storm; the router must fail the traffic over and,
	// once its gossip confirms the death, never route there again.
	ClusterNodes   int   `json:"cluster_nodes,omitempty"`
	GossipEveryUS  int64 `json:"gossip_every_us,omitempty"`
	SuspectAfterUS int64 `json:"suspect_after_us,omitempty"`
	DeadAfterUS    int64 `json:"dead_after_us,omitempty"`
	KillNode       int   `json:"kill_node,omitempty"`
	KillAtUS       int64 `json:"kill_at_us,omitempty"`
	RouterRetries  int   `json:"router_retries,omitempty"`
}

// Marshal renders the script as its canonical replay bytes.
func (sc *Script) Marshal() []byte {
	b, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		panic(err) // plain data; cannot fail
	}
	return b
}

// Result is a scenario run's verdict and ledger totals.
type Result struct {
	Scenario   string   `json:"scenario"`
	Seed       uint64   `json:"seed"`
	DurationNS int64    `json:"duration_ns"`
	Attempted  int64    `json:"attempted"`
	Accepted   int64    `json:"accepted"`
	Rejected   int64    `json:"rejected"`
	Completed  int64    `json:"completed"`
	Discarded  int64    `json:"discarded"`
	LeafRuns   int64    `json:"leaf_runs"`
	Violations []string `json:"violations,omitempty"`

	mu sync.Mutex
}

// Ok reports whether the run upheld every invariant.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

func (r *Result) fail(format string, args ...any) {
	r.mu.Lock()
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

// job outcomes in the ledger.
const (
	outcomeUnattempted int32 = iota
	outcomeAccepted
	outcomeRejected
)

// jobRec is one job's ledger entry: what Submit said, how many times
// onDone fired, how many times the body ran, how many leaves executed.
type jobRec struct {
	leaves   int
	outcome  atomic.Int32
	done     atomic.Int32
	body     atomic.Int32
	leafRuns atomic.Int64
}

// Run executes a planned script against the live stack and checks the
// conservation invariants, bounding the whole run by timeout. On timeout
// the returned result reports a deadlock violation; the stuck goroutines
// are abandoned (this is a test harness — the report is the product).
func Run(sc *Script, timeout time.Duration) *Result {
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	res := &Result{Scenario: sc.Scenario, Seed: sc.Seed}
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		switch sc.Layer {
		case LayerRuntime:
			runRuntime(sc, res)
		case LayerPool:
			runPool(sc, res)
		case LayerTenancy:
			runTenancy(sc, res)
		case LayerCluster:
			runCluster(sc, res)
		case LayerDAG:
			runDAG(sc, res)
		default:
			res.fail("unknown layer %q", sc.Layer)
		}
	}()
	select {
	case <-done:
		res.DurationNS = time.Since(start).Nanoseconds()
		return res
	case <-time.After(timeout):
		// The runaway goroutine may still be appending to res; hand back a
		// detached result so the caller reads stable memory.
		return &Result{
			Scenario:   sc.Scenario,
			Seed:       sc.Seed,
			DurationNS: time.Since(start).Nanoseconds(),
			Violations: []string{fmt.Sprintf("deadlock: scenario did not complete within %v", timeout)},
		}
	}
}

// newLedger allocates one record per planned job.
func newLedger(sc *Script) []*jobRec {
	recs := make([]*jobRec, len(sc.Jobs))
	for i, spec := range sc.Jobs {
		recs[i] = &jobRec{leaves: spec.Leaves}
	}
	return recs
}

// fanLeaves spawns a binary fan of n leaves, counting each execution.
func fanLeaves(c *wsrt.Ctx, n int, compute int64, runs *atomic.Int64) {
	if n <= 1 {
		if compute > 0 {
			c.Compute(compute)
		}
		runs.Add(1)
		return
	}
	half := n / 2
	c.Spawn(func(cc *wsrt.Ctx) { fanLeaves(cc, half, compute, runs) })
	fanLeaves(c, n-half, compute, runs)
	c.Sync()
}

func jobBody(rec *jobRec, spec JobSpec) wsrt.Func {
	return func(c *wsrt.Ctx) {
		rec.body.Add(1)
		fanLeaves(c, spec.Leaves, spec.ComputeNS, &rec.leafRuns)
	}
}

func sleepUS(us int64) {
	if us > 0 {
		time.Sleep(time.Duration(us) * time.Microsecond)
	}
}

// oscillate applies the cap timeline against set (any layer's
// SetMaxWorkers). Caps are atomic stores underneath, so applying one after
// shutdown is harmless — the timeline runs to completion.
func oscillate(events []CapEvent, start time.Time, set func(int)) {
	for _, ev := range events {
		if d := time.Duration(ev.AtUS)*time.Microsecond - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		set(ev.Cap)
	}
}

// backlogClear reports whether every accepted job has resolved. Only
// meaningful once the submitters have returned (the outcome set is
// stable).
func backlogClear(recs []*jobRec) bool {
	for _, rec := range recs {
		if rec.outcome.Load() == outcomeAccepted && rec.done.Load() == 0 {
			return false
		}
	}
	return true
}

// checkLedger audits every job record against its recorded outcome and
// folds the totals into the result.
func checkLedger(recs []*jobRec, res *Result) {
	for i, rec := range recs {
		switch rec.outcome.Load() {
		case outcomeAccepted:
			res.Attempted++
			res.Accepted++
			if d := rec.done.Load(); d != 1 {
				res.fail("job %d: accepted but onDone fired %d times (want exactly 1)", i, d)
			}
			b := rec.body.Load()
			if b > 1 {
				res.fail("job %d: body ran %d times (duplicated)", i, b)
			}
			lr := rec.leafRuns.Load()
			res.LeafRuns += lr
			switch {
			case b == 1:
				res.Completed++
				if lr != int64(rec.leaves) {
					res.fail("job %d: body ran but %d of %d leaves executed (task lost or duplicated)", i, lr, rec.leaves)
				}
			case b == 0:
				res.Discarded++
				if lr != 0 {
					res.fail("job %d: body never ran yet %d leaves executed", i, lr)
				}
			}
		case outcomeRejected:
			res.Attempted++
			res.Rejected++
			if d := rec.done.Load(); d != 0 {
				res.fail("job %d: rejected but onDone fired %d times", i, d)
			}
			if b := rec.body.Load(); b != 0 {
				res.fail("job %d: rejected but body ran %d times", i, b)
			}
		}
	}
	if res.Attempted != res.Accepted+res.Rejected {
		res.fail("ledger: attempted %d != accepted %d + rejected %d", res.Attempted, res.Accepted, res.Rejected)
	}
}

// checkReport asserts the worker time partition against the post-quiesce
// wall clock. The slack absorbs clock-read ordering at the edges, not
// accounting drift.
func checkReport(rep *wsrt.Report, res *Result, tag string) {
	if rep == nil {
		res.fail("%s: no final report", tag)
		return
	}
	const slack = int64(2 * time.Millisecond)
	for id, w := range rep.Workers {
		if sum := w.UsefulNS + w.SearchNS + w.IdleNS; sum > rep.WallNS+slack {
			res.fail("%s: worker %d useful+search+idle %dns exceeds wall %dns", tag, id, sum, rep.WallNS)
		}
	}
}

// runRuntime drives a bare wsrt.Runtime.
func runRuntime(sc *Script, res *Result) {
	cfg := wsrt.Config{
		Mesh:           topo.MustMesh(sc.MeshW, sc.MeshH),
		Source:         topo.CoreID(sc.Source),
		SubmitQueueCap: sc.SubmitQueueCap,
	}
	if sc.LocalityNodes > 1 {
		cfg.Locality = topo.SplitLocality(sc.MeshW*sc.MeshH, sc.LocalityNodes)
	}
	if sc.QuantumUS > 0 {
		cfg.Estimator = core.NewPalirria()
		cfg.Quantum = time.Duration(sc.QuantumUS) * time.Microsecond
	}
	rt, err := wsrt.New(cfg)
	if err != nil {
		res.fail("build runtime: %v", err)
		return
	}
	if err := rt.Start(); err != nil {
		res.fail("start runtime: %v", err)
		return
	}
	recs := newLedger(sc)
	start := time.Now()

	oscDone := make(chan struct{})
	go func() {
		defer close(oscDone)
		oscillate(sc.CapEvents, start, rt.SetMaxWorkers)
	}()

	var wg sync.WaitGroup
	for g := 0; g < sc.Submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if sc.BatchSize > 1 {
				runtimeSubmitBatches(rt, sc, recs, g, res)
				return
			}
			for j := g; j < len(sc.Jobs); j += sc.Submitters {
				rec, spec := recs[j], sc.Jobs[j]
				sleepUS(spec.DelayUS)
				for {
					err := rt.Submit(jobBody(rec, spec), func() { rec.done.Add(1) })
					switch {
					case err == nil:
						rec.outcome.Store(outcomeAccepted)
					case errors.Is(err, wsrt.ErrSubmitQueueFull):
						if sc.GiveUpOnFull {
							rec.outcome.Store(outcomeRejected)
							break
						}
						runtime.Gosched()
						continue
					case errors.Is(err, wsrt.ErrClosed):
						// Shutdown won the race; this and all later jobs
						// stay off the books.
						rec.outcome.Store(outcomeRejected)
						return
					default:
						rec.outcome.Store(outcomeRejected)
						res.fail("job %d: unexpected submit error: %v", j, err)
					}
					break
				}
			}
		}(g)
	}

	var rep *wsrt.Report
	if sc.ShutdownAtUS > 0 {
		// Shutdown races the storm; the seal must make every nil-returning
		// Submit's onDone fire anyway.
		if d := time.Duration(sc.ShutdownAtUS)*time.Microsecond - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		rep, err = rt.Shutdown()
		wg.Wait()
	} else {
		wg.Wait()
		if sc.DrainBacklog {
			// Every accepted job's onDone fires once its tree completes;
			// the deadlock bound catches a backlog that never clears.
			for !backlogClear(recs) {
				time.Sleep(200 * time.Microsecond)
			}
		}
		rep, err = rt.Shutdown()
	}
	if err != nil {
		res.fail("shutdown: %v", err)
	}
	if err := rt.VerifySubmitLedger(); err != nil {
		res.fail("submit ledger: %v", err)
	}
	<-oscDone
	// Submitters have returned and Shutdown has flushed, so the ledger is
	// quiescent: every accepted job's onDone has fired.
	checkLedger(recs, res)
	checkReport(rep, res, "runtime")
}

// runtimeSubmitBatches drives submitter g's share of the job list through
// SubmitBatch in chunks of sc.BatchSize, honouring the prefix-acceptance
// contract: the first n jobs of a failed batch are on the books (their
// onDone will fire), the remainder is retried or marked rejected exactly
// like the one-by-one path.
func runtimeSubmitBatches(rt *wsrt.Runtime, sc *Script, recs []*jobRec, g int, res *Result) {
	var mine []int
	for j := g; j < len(sc.Jobs); j += sc.Submitters {
		mine = append(mine, j)
	}
	for start := 0; start < len(mine); {
		end := start + sc.BatchSize
		if end > len(mine) {
			end = len(mine)
		}
		chunk := mine[start:end]
		sleepUS(sc.Jobs[chunk[0]].DelayUS)
		jobs := make([]wsrt.Job, len(chunk))
		for k, j := range chunk {
			rec := recs[j]
			jobs[k] = wsrt.Job{Fn: jobBody(rec, sc.Jobs[j]), OnDone: func() { rec.done.Add(1) }}
		}
		n, err := rt.SubmitBatch(jobs)
		for _, j := range chunk[:n] {
			recs[j].outcome.Store(outcomeAccepted)
		}
		start += n
		switch {
		case err == nil:
		case errors.Is(err, wsrt.ErrSubmitQueueFull):
			if sc.GiveUpOnFull {
				for _, j := range chunk[n:] {
					recs[j].outcome.Store(outcomeRejected)
				}
				start = end
			} else {
				runtime.Gosched()
			}
		case errors.Is(err, wsrt.ErrClosed):
			// Shutdown won the race; the unaccepted suffix and all later
			// jobs stay off the books.
			for _, j := range chunk[n:] {
				recs[j].outcome.Store(outcomeRejected)
			}
			return
		default:
			for _, j := range chunk[n:] {
				recs[j].outcome.Store(outcomeRejected)
			}
			res.fail("batch at job %d: unexpected submit error: %v", chunk[n], err)
			start = end
		}
	}
}

// poolSubmitJobs drives one pool's share of the job list. Pool submission
// is synchronous, so each submitter's jobs serialize; the outcome maps the
// serve sentinels onto the ledger.
func poolSubmitJobs(p *serve.Pool, sc *Script, recs []*jobRec, pick func(j int) bool, wg *sync.WaitGroup, res *Result) {
	for g := 0; g < sc.Submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := g; j < len(sc.Jobs); j += sc.Submitters {
				if !pick(j) {
					continue
				}
				rec, spec := recs[j], sc.Jobs[j]
				sleepUS(spec.DelayUS)
				jb := serve.Job{Fn: jobBody(rec, spec), Class: serve.Class(spec.Class)}
				if spec.DeadlineUS > 0 {
					jb.Deadline = time.Now().Add(time.Duration(spec.DeadlineUS) * time.Microsecond)
				}
				err := p.SubmitJob(context.Background(), jb)
				switch {
				case err == nil:
					rec.outcome.Store(outcomeAccepted)
					rec.done.Add(1) // synchronous completion is the ack
				case errors.Is(err, serve.ErrDiscarded):
					// Admitted, then flushed by the drain before running.
					rec.outcome.Store(outcomeAccepted)
					rec.done.Add(1)
				case errors.Is(err, serve.ErrQueueFull),
					errors.Is(err, serve.ErrOverloaded),
					errors.Is(err, serve.ErrDeadline):
					rec.outcome.Store(outcomeRejected)
				case errors.Is(err, serve.ErrDraining):
					rec.outcome.Store(outcomeRejected)
					return
				default:
					rec.outcome.Store(outcomeRejected)
					res.fail("job %d: unexpected pool submit error: %v", j, err)
				}
			}
		}(g)
	}
}

// checkPoolStats audits one drained pool's serving counters against the
// ledger slice it served.
func checkPoolStats(p *serve.Pool, res *Result, completed, discarded int64) {
	st := p.Stats()
	if st.Admitted != st.Completed+st.Cancelled {
		res.fail("pool %s: admitted %d != completed %d + cancelled %d", st.Name, st.Admitted, st.Completed, st.Cancelled)
	}
	if st.InFlight != 0 {
		res.fail("pool %s: %d jobs still in flight after drain", st.Name, st.InFlight)
	}
	if st.Completed != completed {
		res.fail("pool %s: pool counted %d completed, ledger saw %d", st.Name, st.Completed, completed)
	}
	if st.Cancelled != discarded {
		res.fail("pool %s: pool counted %d cancelled, ledger saw %d discarded", st.Name, st.Cancelled, discarded)
	}
	checkReport(p.Final(), res, "pool "+st.Name)
}

// ledgerSplit returns the (completed, discarded) counts for the records
// selected by pick — the pool-side cross-check values.
func ledgerSplit(recs []*jobRec, pick func(j int) bool) (completed, discarded int64) {
	for j, rec := range recs {
		if !pick(j) || rec.outcome.Load() != outcomeAccepted {
			continue
		}
		if rec.body.Load() == 1 {
			completed++
		} else {
			discarded++
		}
	}
	return completed, discarded
}

// streamChurn attaches and detaches small-buffer subscribers against the
// hub until stopped. Each cycle verifies the detach contract: after Close
// returns the event channel drains to a close (never hangs) and the
// delivered count stays frozen — no event lands after a subscriber close.
func streamChurn(hub *stream.Hub, sc *Script, stop <-chan struct{}, res *Result) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		sub := hub.Subscribe(stream.SubOptions{Buf: sc.StreamBuf})
		deadline := time.After(time.Duration(sc.StreamChurnUS) * time.Microsecond)
	read:
		for {
			select {
			case _, ok := <-sub.Events():
				if !ok {
					break read
				}
			case <-deadline:
				break read
			case <-stop:
				break read
			}
		}
		sub.Close()
		frozen := sub.Delivered()
		for range sub.Events() { // buffered leftovers, then the close
		}
		if d := sub.Delivered(); d != frozen {
			res.fail("stream: %d event(s) delivered after subscriber Close returned", d-frozen)
		}
	}
}

// runPool drives a serve.Pool, racing Drain against the submit storm. With
// StreamSubs set it also churns event subscribers against the pool's hub
// and audits terminal-event conservation through a durable subscriber.
func runPool(sc *Script, res *Result) {
	var hub *stream.Hub
	if sc.StreamSubs > 0 || sc.AuditClassEvents {
		hub = stream.NewHub()
	}
	p, err := serve.New(serve.Config{
		Name: "chaos",
		Runtime: wsrt.Config{
			Mesh:           topo.MustMesh(sc.MeshW, sc.MeshH),
			Source:         topo.CoreID(sc.Source),
			Quantum:        time.Duration(sc.QuantumUS) * time.Microsecond,
			SubmitQueueCap: sc.SubmitQueueCap,
		},
		QueueCap:   sc.PoolQueueCap,
		ShedQuanta: sc.ShedQuanta,
		Events:     hub,
	})
	if err != nil {
		res.fail("build pool: %v", err)
		return
	}
	recs := newLedger(sc)
	start := time.Now()

	// The class auditor replays the admission log in hub order against the
	// ladder-stamping invariant; its per-class tallies cross-check the
	// pool's ByClass ledger when nothing was dropped.
	var audit *classAudit
	if sc.AuditClassEvents {
		audit = newClassAudit(hub, res)
	}

	// The durable subscriber watches only terminal events; together with its
	// drop counter it must account for every admission the pool books.
	var durable *stream.Sub
	var seenTerminal int64
	durDone := make(chan struct{})
	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	if hub != nil {
		durable = hub.Subscribe(stream.SubOptions{
			Buf:   sc.StreamBuf,
			Kinds: []stream.Kind{stream.KindCompleted, stream.KindCancelled},
		})
		go func() {
			defer close(durDone)
			for range durable.Events() {
				seenTerminal++
			}
		}()
		for i := 0; i < sc.StreamSubs; i++ {
			churnWG.Add(1)
			go func() {
				defer churnWG.Done()
				streamChurn(hub, sc, churnStop, res)
			}()
		}
	}

	oscDone := make(chan struct{})
	go func() {
		defer close(oscDone)
		oscillate(sc.CapEvents, start, p.SetMaxWorkers)
	}()

	var wg sync.WaitGroup
	poolSubmitJobs(p, sc, recs, func(int) bool { return true }, &wg, res)

	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if sc.ShutdownAtUS > 0 {
		if d := time.Duration(sc.ShutdownAtUS)*time.Microsecond - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		if err := p.Drain(drainCtx); err != nil {
			res.fail("drain: %v", err)
		}
		wg.Wait()
	} else {
		wg.Wait()
		if err := p.Drain(drainCtx); err != nil {
			res.fail("drain: %v", err)
		}
	}
	<-oscDone
	if hub != nil {
		// Drain has returned, so every terminal event is on the hub (the pool
		// publishes them before releasing the job's slot). Detach everything
		// and let the durable reader finish counting its buffered tail.
		close(churnStop)
		churnWG.Wait()
		durable.Close()
		<-durDone
		if audit != nil {
			audit.finish(p)
		}
		hub.Close()
	}
	checkLedger(recs, res)
	completed, discarded := ledgerSplit(recs, func(int) bool { return true })
	checkPoolStats(p, res, completed, discarded)
	if hub != nil {
		st := p.Stats()
		if got := seenTerminal + int64(durable.Dropped()); got != st.Admitted {
			res.fail("stream: %d terminal event(s) seen + %d dropped != %d admitted",
				seenTerminal, durable.Dropped(), st.Admitted)
		}
	}
}

// runTenancy drives two pools under one arbitration mesh: submissions
// interleave with re-arbitration rounds, the first pool drains early while
// the second keeps serving, and after both drain the arbiter must have
// every core back.
func runTenancy(sc *Script, res *Result) {
	arbMesh := topo.MustMesh(sc.MeshW, sc.MeshH)
	ten := serve.NewTenancy(arbMesh, time.Duration(sc.RearbEveryUS)*time.Microsecond)
	newPool := func(name string, source topo.CoreID) (*serve.Pool, error) {
		return serve.New(serve.Config{
			Name: name,
			Runtime: wsrt.Config{
				Mesh:           topo.MustMesh(sc.MeshW, sc.MeshH),
				Source:         source,
				Quantum:        time.Duration(sc.QuantumUS) * time.Microsecond,
				SubmitQueueCap: sc.SubmitQueueCap,
			},
			QueueCap: sc.PoolQueueCap,
		})
	}
	p0, err := newPool("chaos-a", topo.CoreID(sc.Source))
	if err != nil {
		res.fail("build pool a: %v", err)
		return
	}
	// The second tenant anchors at the far corner of the arbitration mesh
	// so the shares start disjoint.
	p1, err := newPool("chaos-b", topo.CoreID(arbMesh.NumCores()-1))
	if err != nil {
		res.fail("build pool b: %v", err)
		return
	}
	if err := ten.Attach(p0, topo.CoreID(sc.Source)); err != nil {
		res.fail("attach a: %v", err)
		return
	}
	if err := ten.Attach(p1, topo.CoreID(arbMesh.NumCores()-1)); err != nil {
		res.fail("attach b: %v", err)
		return
	}
	ten.Start()
	recs := newLedger(sc)
	start := time.Now()
	toA := func(j int) bool { return j%2 == 0 }
	toB := func(j int) bool { return j%2 == 1 }

	var wg sync.WaitGroup
	poolSubmitJobs(p0, sc, recs, toA, &wg, res)
	poolSubmitJobs(p1, sc, recs, toB, &wg, res)

	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	// Drain the first tenant mid-storm: its submitters flip to rejections,
	// the arbiter reclaims its share, and the survivor keeps serving.
	if d := time.Duration(sc.DrainFirstAtUS)*time.Microsecond - time.Since(start); d > 0 {
		time.Sleep(d)
	}
	if err := p0.Drain(drainCtx); err != nil {
		res.fail("drain a: %v", err)
	}
	wg.Wait()
	if err := p1.Drain(drainCtx); err != nil {
		res.fail("drain b: %v", err)
	}
	// One final round releases the drained tenants; every core must return
	// to the free pool — resource conservation across tenants.
	ten.Rearbitrate()
	ten.Close()
	if free := ten.FreeCores(); free != arbMesh.Usable() {
		res.fail("tenancy: %d of %d cores free after both tenants drained", free, arbMesh.Usable())
	}
	checkLedger(recs, res)
	ca, da := ledgerSplit(recs, toA)
	checkPoolStats(p0, res, ca, da)
	cb, db := ledgerSplit(recs, toB)
	checkPoolStats(p1, res, cb, db)
}
