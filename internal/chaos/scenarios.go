package chaos

import (
	"palirria/internal/xrand"
)

// Scenario is a named adversarial pressure pattern. Plan draws every
// parameter from the seed up front; nothing is decided during execution.
type Scenario struct {
	Name        string
	Description string
	plan        func(sc *Script, rng *xrand.Xoshiro256)
}

// Plan expands the scenario under the given seed into a complete script.
func (s Scenario) Plan(seed uint64) *Script {
	sc := &Script{Scenario: s.Name, Seed: seed}
	s.plan(sc, xrand.NewXoshiro256(seed))
	return sc
}

// Scenarios returns the full suite, in a stable order.
func Scenarios() []Scenario { return scenarios }

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

var scenarios = []Scenario{
	{
		Name: "submit-shutdown",
		Description: "many submitters race trivial jobs against a Shutdown " +
			"fired mid-storm; every nil-returning Submit must resolve",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerRuntime
			sc.MeshW, sc.MeshH = 4, 2
			sc.SubmitQueueCap = 32 + rng.Intn(97)
			sc.Submitters = 8 + rng.Intn(25)
			n := 300 + rng.Intn(300)
			for i := 0; i < n; i++ {
				sc.Jobs = append(sc.Jobs, JobSpec{Leaves: 1, ComputeNS: int64(rng.Intn(2000))})
			}
			sc.ShutdownAtUS = int64(100 + rng.Intn(2400))
		},
	},
	{
		Name: "revoke-storm",
		Description: "the worker cap is slammed to a random level every few " +
			"hundred microseconds while medium fans keep the deques loaded",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerRuntime
			sc.DrainBacklog = true
			sc.MeshW, sc.MeshH = 6, 6
			sc.Source = 7
			sc.QuantumUS = int64(200 + rng.Intn(301))
			sc.SubmitQueueCap = 128
			sc.Submitters = 4
			n := 60 + rng.Intn(41)
			for i := 0; i < n; i++ {
				sc.Jobs = append(sc.Jobs, JobSpec{
					Leaves:    8 + rng.Intn(57),
					ComputeNS: int64(1000 + rng.Intn(4000)),
				})
			}
			at := int64(0)
			for i := 0; i < 40+rng.Intn(21); i++ {
				at += int64(200 + rng.Intn(601))
				sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: at, Cap: rng.Intn(37)})
			}
			// Revokes under a synthetic multi-node split: the locality-
			// partitioned sweeps must conserve tasks exactly like flat ones.
			sc.LocalityNodes = 2 + rng.Intn(2)
		},
	},
	{
		Name: "shrink-while-parked",
		Description: "bursts separated by idle valleys: the estimator shrinks " +
			"and workers park between bursts, then revokes land on parked " +
			"workers just as the next burst arrives",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerRuntime
			sc.DrainBacklog = true
			sc.MeshW, sc.MeshH = 6, 6
			sc.Source = 14
			sc.QuantumUS = int64(200 + rng.Intn(201))
			sc.SubmitQueueCap = 128
			sc.Submitters = 3
			bursts := 5 + rng.Intn(4)
			at := int64(0)
			for b := 0; b < bursts; b++ {
				for i := 0; i < 6+rng.Intn(7); i++ {
					d := int64(0)
					if i == 0 && b > 0 {
						d = int64(2000 + rng.Intn(3001)) // the idle valley
					}
					sc.Jobs = append(sc.Jobs, JobSpec{
						Leaves:    4 + rng.Intn(29),
						ComputeNS: int64(500 + rng.Intn(2500)),
						DelayUS:   d,
					})
				}
				// A shrink lands inside each valley, a lift near each burst.
				at += int64(1500 + rng.Intn(2001))
				sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: at, Cap: 1 + rng.Intn(5)})
				at += int64(500 + rng.Intn(1001))
				sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: at, Cap: 0})
			}
		},
	},
	{
		Name: "shrink-with-work",
		Description: "wide fans keep every deque non-empty while the cap " +
			"oscillates between the full mesh and the zone-1 floor, forcing " +
			"drains that must conserve every task",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerRuntime
			sc.DrainBacklog = true
			sc.MeshW, sc.MeshH = 4, 4
			sc.Source = 5
			sc.QuantumUS = int64(250 + rng.Intn(251))
			sc.SubmitQueueCap = 128
			sc.Submitters = 4
			n := 40 + rng.Intn(25)
			for i := 0; i < n; i++ {
				sc.Jobs = append(sc.Jobs, JobSpec{
					Leaves:    32 + rng.Intn(97),
					ComputeNS: int64(2000 + rng.Intn(6000)),
				})
			}
			at := int64(0)
			caps := []int{16, 1, 12, 5, 0, 1}
			for i := 0; i < 30+rng.Intn(11); i++ {
				at += int64(500 + rng.Intn(501))
				sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: at, Cap: caps[rng.Intn(len(caps))]})
			}
		},
	},
	{
		Name: "rebuild-mid-steal",
		Description: "a continuous stream of small jobs keeps thieves probing " +
			"while cap flips every ~200µs force constant policy rebuilds; " +
			"retiring workers must purge themselves from the wake graph",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerRuntime
			sc.DrainBacklog = true
			sc.MeshW, sc.MeshH = 6, 6
			sc.Source = 21
			sc.QuantumUS = int64(150 + rng.Intn(101))
			sc.SubmitQueueCap = 256
			sc.Submitters = 6
			n := 250 + rng.Intn(151)
			for i := 0; i < n; i++ {
				sc.Jobs = append(sc.Jobs, JobSpec{
					Leaves:    2 + rng.Intn(7),
					ComputeNS: int64(200 + rng.Intn(1300)),
				})
			}
			at := int64(0)
			for i := 0; i < 60+rng.Intn(41); i++ {
				at += int64(150 + rng.Intn(151))
				cap := 0
				if rng.Intn(3) > 0 {
					cap = 1 + rng.Intn(36)
				}
				sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: at, Cap: cap})
			}
			// Half the seeds run flat, half under a split, so the rebuild
			// races cover both byNode shapes of the policy bundle.
			sc.LocalityNodes = 1 + rng.Intn(3)
		},
	},
	{
		Name: "queue-full-flush",
		Description: "a tiny submit queue under a hammering storm: rejections " +
			"must stay off the books, accepted jobs must all resolve through " +
			"the mid-storm shutdown flush",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerRuntime
			sc.MeshW, sc.MeshH = 4, 2
			sc.SubmitQueueCap = 2 + rng.Intn(5)
			sc.Submitters = 12 + rng.Intn(21)
			sc.GiveUpOnFull = true
			n := 400 + rng.Intn(401)
			for i := 0; i < n; i++ {
				sc.Jobs = append(sc.Jobs, JobSpec{Leaves: 1 + rng.Intn(4), ComputeNS: int64(rng.Intn(3000))})
			}
			sc.ShutdownAtUS = int64(200 + rng.Intn(2800))
		},
	},
	{
		Name: "grow-burst",
		Description: "the runtime starts pinned at the zone-1 floor with wide " +
			"fans piling up, then the cap lifts mid-burst and the allotment " +
			"must grow into the backlog without losing a task",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerRuntime
			sc.DrainBacklog = true
			sc.MeshW, sc.MeshH = 6, 6
			sc.Source = 0
			sc.QuantumUS = int64(200 + rng.Intn(201))
			sc.SubmitQueueCap = 128
			sc.Submitters = 4
			sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: 0, Cap: 1})
			n := 50 + rng.Intn(31)
			for i := 0; i < n; i++ {
				sc.Jobs = append(sc.Jobs, JobSpec{
					Leaves:    24 + rng.Intn(73),
					ComputeNS: int64(1000 + rng.Intn(4000)),
				})
			}
			lift := int64(1000 + rng.Intn(2001))
			sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: lift, Cap: 0})
			// And a few aftershocks while the backlog drains.
			at := lift
			for i := 0; i < 6+rng.Intn(5); i++ {
				at += int64(800 + rng.Intn(1201))
				sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: at, Cap: rng.Intn(37)})
			}
		},
	},
	{
		Name: "pool-drain-race",
		Description: "serve.Pool admission races a mid-storm Drain under cap " +
			"oscillation; admitted == completed + cancelled with nothing in " +
			"flight afterwards",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerPool
			sc.MeshW, sc.MeshH = 4, 4
			sc.Source = 5
			sc.QuantumUS = int64(250 + rng.Intn(251))
			sc.SubmitQueueCap = 128
			sc.PoolQueueCap = 16 + rng.Intn(49)
			sc.Submitters = 8 + rng.Intn(9)
			n := 120 + rng.Intn(81)
			for i := 0; i < n; i++ {
				sc.Jobs = append(sc.Jobs, JobSpec{
					Leaves:    4 + rng.Intn(29),
					ComputeNS: int64(500 + rng.Intn(3500)),
				})
			}
			at := int64(0)
			for i := 0; i < 10+rng.Intn(11); i++ {
				at += int64(300 + rng.Intn(501))
				sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: at, Cap: rng.Intn(17)})
			}
			sc.ShutdownAtUS = int64(1000 + rng.Intn(4001))
		},
	},
	{
		Name: "submit-shard-storm",
		Description: "a horde of batch submitters sprays jobs across the " +
			"per-worker injection shards while the cap oscillates and a " +
			"mid-storm shutdown races the flush; every accepted job's " +
			"onDone fires exactly once whether it ran, was stolen from a " +
			"sibling shard, or was drained by the seal",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerRuntime
			sc.MeshW, sc.MeshH = 6, 6
			sc.Source = 0
			sc.QuantumUS = int64(200 + rng.Intn(301))
			sc.SubmitQueueCap = 16 + rng.Intn(113)
			sc.Submitters = 8 + rng.Intn(9)
			sc.BatchSize = 2 + rng.Intn(7)
			sc.GiveUpOnFull = true
			n := 300 + rng.Intn(301)
			for i := 0; i < n; i++ {
				sc.Jobs = append(sc.Jobs, JobSpec{
					Leaves:    1 + rng.Intn(6),
					ComputeNS: int64(rng.Intn(2500)),
				})
			}
			at := int64(0)
			for i := 0; i < 8+rng.Intn(9); i++ {
				at += int64(200 + rng.Intn(401))
				sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: at, Cap: rng.Intn(37)})
			}
			sc.ShutdownAtUS = int64(800 + rng.Intn(3201))
			// The shard storm is where the biased pick and the rescue scan
			// interleave hardest; run it under a synthetic split.
			sc.LocalityNodes = 2 + rng.Intn(2)
		},
	},
	{
		Name: "stream-under-churn",
		Description: "event subscribers attach and detach against the pool's " +
			"hub while caps oscillate and a mid-storm Drain flushes the " +
			"queue; every admitted job must yield exactly one terminal event " +
			"or a counted drop, and nothing may land after a subscriber close",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerPool
			sc.MeshW, sc.MeshH = 4, 4
			sc.Source = 5
			sc.QuantumUS = int64(250 + rng.Intn(251))
			sc.SubmitQueueCap = 128
			sc.PoolQueueCap = 16 + rng.Intn(49)
			sc.Submitters = 6 + rng.Intn(7)
			// Tiny buffers force the drop path; churn fast enough that
			// detaches land inside the drain and the cap flips.
			sc.StreamSubs = 3 + rng.Intn(4)
			sc.StreamBuf = 1 + rng.Intn(8)
			sc.StreamChurnUS = int64(100 + rng.Intn(401))
			n := 120 + rng.Intn(81)
			for i := 0; i < n; i++ {
				sc.Jobs = append(sc.Jobs, JobSpec{
					Leaves:    2 + rng.Intn(15),
					ComputeNS: int64(500 + rng.Intn(2500)),
				})
			}
			at := int64(0)
			for i := 0; i < 10+rng.Intn(11); i++ {
				at += int64(300 + rng.Intn(501))
				sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: at, Cap: rng.Intn(17)})
			}
			sc.ShutdownAtUS = int64(1500 + rng.Intn(3501))
		},
	},
	{
		Name: "cluster-partition",
		Description: "a desire-steered router storms three loopback serve " +
			"nodes while one is killed abruptly mid-burst; accepted jobs must " +
			"all complete on survivors, terminal events stay exactly-once per " +
			"pool, and no submission is routed to the dead peer once gossip " +
			"suspicion confirms the death",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerCluster
			sc.MeshW, sc.MeshH = 4, 1
			sc.QuantumUS = 500
			sc.SubmitQueueCap = 128
			sc.PoolQueueCap = 64
			sc.Submitters = 4
			sc.ClusterNodes = 3
			sc.RouterRetries = 2
			sc.GossipEveryUS = int64(4000 + rng.Intn(3001))
			sc.SuspectAfterUS = 4 * sc.GossipEveryUS
			sc.DeadAfterUS = 2 * sc.SuspectAfterUS
			sc.KillNode = rng.Intn(3)
			sc.KillAtUS = int64(30000 + rng.Intn(20001))
			n := 550 + rng.Intn(101)
			for i := 0; i < n; i++ {
				sc.Jobs = append(sc.Jobs, JobSpec{
					Leaves:    2 + rng.Intn(7),
					ComputeNS: int64(1000 + rng.Intn(4000)),
					DelayUS:   int64(500 + rng.Intn(1201)),
				})
			}
		},
	},
	{
		Name: "tenancy-churn",
		Description: "two pools under one arbiter with fast re-arbitration; " +
			"one tenant drains mid-storm, the survivor keeps serving, and " +
			"every core returns to the free pool at the end",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerTenancy
			sc.MeshW, sc.MeshH = 8, 4
			sc.Source = 0
			sc.QuantumUS = int64(250 + rng.Intn(251))
			sc.SubmitQueueCap = 128
			sc.PoolQueueCap = 32
			sc.Submitters = 6
			sc.RearbEveryUS = int64(1000 + rng.Intn(2001))
			n := 100 + rng.Intn(61)
			for i := 0; i < n; i++ {
				sc.Jobs = append(sc.Jobs, JobSpec{
					Leaves:    4 + rng.Intn(21),
					ComputeNS: int64(500 + rng.Intn(3000)),
				})
			}
			sc.DrainFirstAtUS = int64(2000 + rng.Intn(4001))
		},
	},
	{
		Name: "dag-cancel-storm",
		Description: "a storm of small structured jobs — chains, fan-outs and " +
			"random forward graphs — races per-graph cancellations against the " +
			"release cascade while the cap oscillates; every admitted node must " +
			"resolve exactly once as completed or cancelled, with nothing in " +
			"flight after the drain",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerDAG
			sc.MeshW, sc.MeshH = 4, 2
			sc.Source = 0
			sc.QuantumUS = int64(250 + rng.Intn(251))
			// The runtime queue outsizes the pool queue so a released
			// successor can never bounce off the submit ring: every admitted
			// node's fate is decided by completion or cancellation alone.
			sc.SubmitQueueCap = 256
			// Tight enough that concurrent graphs sometimes lose the
			// all-or-nothing slot grab and bounce whole.
			sc.PoolQueueCap = 12 + rng.Intn(13)
			sc.Submitters = 6 + rng.Intn(5)
			nDAGs := 36 + rng.Intn(29)
			for i := 0; i < nDAGs; i++ {
				var d DAGSpec
				n := 3 + rng.Intn(6)
				shape := rng.Intn(3)
				for k := 0; k < n; k++ {
					// Heavy leaves (tens of microseconds each) keep a graph
					// alive across its planned cancel point, so cancellation
					// actually races the release cascade instead of arriving
					// after the sink completed.
					ns := DAGNodeSpec{
						Leaves:    1 + rng.Intn(8),
						ComputeNS: int64(20_000 + rng.Intn(180_001)),
						Class:     rng.Intn(3),
					}
					switch {
					case k == 0:
						// Root.
					case shape == 0: // chain
						ns.Deps = []int{k - 1}
					case shape == 1: // root fans out, the sink joins every middle node
						if k < n-1 {
							ns.Deps = []int{0}
						} else {
							for m := 1; m < n-1; m++ {
								ns.Deps = append(ns.Deps, m)
							}
						}
					default: // random forward edges
						picks := 1 + rng.Intn(2)
						for t := 0; t < picks; t++ {
							dep := rng.Intn(k)
							dup := false
							for _, have := range ns.Deps {
								if have == dep {
									dup = true
								}
							}
							if !dup {
								ns.Deps = append(ns.Deps, dep)
							}
						}
					}
					d.Nodes = append(d.Nodes, ns)
				}
				d.DelayUS = int64(rng.Intn(1501))
				if rng.Intn(2) == 0 {
					d.CancelAtUS = int64(100 + rng.Intn(1401))
				}
				sc.DAGs = append(sc.DAGs, d)
			}
			at := int64(0)
			for i := 0; i < 8+rng.Intn(9); i++ {
				at += int64(300 + rng.Intn(501))
				sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: at, Cap: rng.Intn(9)})
			}
		},
	},
	{
		Name: "priority-deadline-churn",
		Description: "a classed submit storm against a tiny queue with the cap " +
			"slammed to one core arms the shed ladder over and over while " +
			"deadlines churn; the hub-ordered admission log must show no " +
			"high-class shed in a window where a lower class was still being " +
			"admitted (level stamps), and the per-class ledgers must balance",
		plan: func(sc *Script, rng *xrand.Xoshiro256) {
			sc.Layer = LayerPool
			sc.MeshW, sc.MeshH = 4, 1
			sc.Source = 0
			sc.QuantumUS = int64(150 + rng.Intn(101))
			sc.SubmitQueueCap = 128
			sc.PoolQueueCap = 4 + rng.Intn(5)
			sc.ShedQuanta = 2
			sc.AuditClassEvents = true
			sc.StreamBuf = 4096
			sc.Submitters = 8 + rng.Intn(5)
			n := 240 + rng.Intn(121)
			for i := 0; i < n; i++ {
				js := JobSpec{
					Leaves:    2 + rng.Intn(15),
					ComputeNS: int64(2000 + rng.Intn(6001)),
					Class:     rng.Intn(3),
					DelayUS:   int64(rng.Intn(400)),
				}
				if rng.Intn(3) == 0 {
					js.DeadlineUS = int64(300 + rng.Intn(4701))
				}
				sc.Jobs = append(sc.Jobs, js)
			}
			// Hold the mesh at one core for long stretches so desire pins at
			// capacity and the ladder arms, with brief lifts to drain.
			at := int64(0)
			for i := 0; i < 10+rng.Intn(7); i++ {
				at += int64(400 + rng.Intn(601))
				cap := 1
				if i%3 == 2 {
					cap = 0
				}
				sc.CapEvents = append(sc.CapEvents, CapEvent{AtUS: at, Cap: cap})
			}
		},
	},
}
