package obs

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// decodeChrome parses exporter output back into the generic structure
// the validity checks inspect.
func decodeChrome(t *testing.T, data []byte) chromeTrace {
	t.Helper()
	var out chromeTrace
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, data)
	}
	return out
}

// checkChromeValid asserts the invariants every exporter output must
// satisfy: parseable JSON, non-decreasing timestamps per phase-i lane,
// one stable pid, named threads for every referenced tid.
func checkChromeValid(t *testing.T, data []byte) {
	t.Helper()
	out := decodeChrome(t, data)
	named := map[int]bool{}
	lastTS := map[int]float64{}
	for _, ev := range out.TraceEvents {
		if ev.Phase == "M" {
			if ev.Name == "thread_name" {
				named[ev.TID] = true
			}
			continue
		}
		if ev.PID != chromePID {
			t.Fatalf("unstable pid %d on %+v", ev.PID, ev)
		}
		if ev.TS < 0 {
			t.Fatalf("negative timestamp on %+v", ev)
		}
		if ev.Phase == "i" {
			if ev.TS < lastTS[ev.TID] {
				t.Fatalf("lane %d went backwards: %v after %v", ev.TID, ev.TS, lastTS[ev.TID])
			}
			lastTS[ev.TID] = ev.TS
			if !named[ev.TID] {
				t.Fatalf("instant event on unnamed lane %d", ev.TID)
			}
		}
	}
}

func TestWriteChromeBasic(t *testing.T) {
	tr := NewTracer(WithRingCap(64))
	r := tr.NewRing(false)
	tr.SetWorkerName(3, "worker 3 (0,3)")
	r.Emit(Event{TS: 100, Kind: KindSpawn, Worker: 3, Peer: NoWorker, Arg: 2, Label: "fib(7)"})
	r.Emit(Event{TS: 150, Kind: KindSteal, Worker: 4, Peer: 3, Label: "fib(6)"})
	r.Emit(Event{TS: 151, Kind: KindProbeFail, Worker: 5, Peer: 3})
	r.Emit(Event{TS: 200, Kind: KindGrant, Worker: NoWorker, Peer: NoWorker, Arg: 9})
	r.Emit(Event{TS: 200, Kind: KindQuantum, Worker: NoWorker, Peer: NoWorker, Arg: 9})
	tr.RecordSnapshot(EstimatorSnapshot{
		Time: 200, Estimator: "palirria", Allotment: 5, Decision: "increase",
		RawDesire: 9, FilteredDesire: 9, Granted: 9,
		Workers: []WorkerIntrospection{{Worker: 3, Class: "X", QueueLen: 2, MaxQueueLen: 4, ThresholdL: 1}},
	})

	var buf bytes.Buffer
	if err := tr.Drain().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	checkChromeValid(t, buf.Bytes())

	out := decodeChrome(t, buf.Bytes())
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	want := map[string]bool{
		"spawn": false, "steal": false, "probefail": false,
		"grant": false, "quantum": false, "allotment": false, "desire": false,
		"queue w3": false,
	}
	for _, ev := range out.TraceEvents {
		if _, ok := want[ev.Name]; ok {
			want[ev.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("expected %q event in chrome trace", name)
		}
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer().Drain().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := decodeChrome(t, buf.Bytes())
	if out.TraceEvents == nil {
		t.Fatal("traceEvents serialized as null, want []")
	}
}

func TestWriteChromeTicksPerMicro(t *testing.T) {
	tr := NewTracer(WithRingCap(8))
	r := tr.NewRing(false)
	r.Emit(Event{TS: 5000, Kind: KindTaskDone, Worker: 0})
	d := tr.Drain()
	d.TicksPerMicro = 1000 // nanosecond ticks
	var buf bytes.Buffer
	if err := d.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := decodeChrome(t, buf.Bytes())
	found := false
	for _, ev := range out.TraceEvents {
		if ev.Name == "done" {
			found = true
			if ev.TS != 5 {
				t.Fatalf("ts = %v µs, want 5", ev.TS)
			}
		}
	}
	if !found {
		t.Fatal("done event missing")
	}
}

// FuzzWriteChrome feeds arbitrary event streams through the exporter and
// checks the output is always valid: well-formed JSON, ordered lanes,
// stable pid, named tids.
func FuzzWriteChrome(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 1, 2, 0, 0})
	f.Add([]byte{7, 255, 255, 3, 9, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewTracer(WithRingCap(256))
		rings := map[int32]*Ring{}
		var ts int64
		// Decode the fuzz input as a packed event stream: each event is
		// 12 bytes (kind, worker, peer, dt, arg). Timestamps only move
		// forward, like a real run.
		for len(data) >= 12 {
			kind := Kind(data[0] % uint8(NumKinds))
			worker := int32(int8(data[1]) % 16)
			peer := int32(int8(data[2]) % 16)
			ts += int64(data[3])
			arg := int64(binary.LittleEndian.Uint64(data[4:12]) % 1_000_000)
			data = data[12:]
			r := rings[worker]
			if r == nil {
				r = tr.NewRing(false)
				rings[worker] = r
			}
			r.Emit(Event{TS: ts, Kind: kind, Worker: worker, Peer: peer, Arg: arg})
			if kind == KindQuantum {
				tr.RecordSnapshot(EstimatorSnapshot{
					Time: ts, Estimator: "palirria", Allotment: int(arg % 64),
					RawDesire: int(arg % 64), FilteredDesire: int(arg % 32),
					Workers: []WorkerIntrospection{{Worker: int(worker), QueueLen: int(arg % 8)}},
				})
			}
		}
		var buf bytes.Buffer
		if err := tr.Drain().WriteChrome(&buf); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		checkChromeValid(t, buf.Bytes())
	})
}
