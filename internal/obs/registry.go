package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one Prometheus label pair attached to a metric.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric in the Prometheus
// histogram exposition shape: cumulative per-bucket counts plus a running
// sum and count. Observe is lock-free; buckets are immutable after
// construction.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank — the same
// convention as Prometheus's histogram_quantile. With no observations it
// returns 0; a target rank beyond the last finite bucket (observations
// that fell into the implicit +Inf bucket) clamps to the largest finite
// bound. The estimate is approximate under concurrent Observe: buckets
// are read one at a time, so a racing observation may or may not count.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, ub := range h.bounds {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			} else if ub <= 0 {
				lower = ub // negative first bucket: no zero base to lerp from
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + (ub-lower)*frac
		}
		cum += c
	}
	// Rank lands in the +Inf bucket.
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefaultLatencyBuckets spans 100µs to 10s in roughly 1-2.5-5 steps — a
// reasonable default for admission and service latencies in seconds.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metricKind is the Prometheus TYPE of a metric family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// metric is one registered series.
type metric struct {
	name       string
	help       string
	kind       metricKind
	labels     string // preformatted {k="v",...} or ""
	labelPairs []Label
	value      func() float64
	hist       *Histogram
}

// Registry is a minimal dependency-free metric registry that renders
// Prometheus text exposition format. Registration happens at setup time;
// reads (scrapes) take the mutex only to copy the metric list — values
// themselves are atomics or caller-supplied sampling functions.
type Registry struct {
	mu sync.Mutex
	ms []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value)
		parts[i] = l.Key + `="` + v + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	r.ms = append(r.ms, m)
	r.mu.Unlock()
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter,
		labels: formatLabels(labels), value: func() float64 { return float64(c.Value()) }})
	return c
}

// Gauge registers and returns a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge,
		labels: formatLabels(labels), value: g.Value})
	return g
}

// GaugeFunc registers a gauge sampled by fn at scrape time — the natural
// shape for values the runtime already maintains atomically.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{name: name, help: help, kind: kindGauge,
		labels: formatLabels(labels), value: fn})
}

// CounterFunc registers a counter sampled by fn at scrape time (for
// monotonic values owned elsewhere, e.g. per-worker steal counts).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{name: name, help: help, kind: kindCounter,
		labels: formatLabels(labels), value: fn})
}

// NewHistogram builds a standalone histogram with the given upper bucket
// bounds (ascending; an implicit +Inf bucket is always added). Pass nil to
// get DefaultLatencyBuckets. Use Registry.Histogram to also register the
// series for scraping; a standalone histogram serves callers that need
// Observe/Quantile without a registry (e.g. a pool tracking admission
// latency for deadline admission when metrics are disabled).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)),
	}
	sort.Float64s(h.bounds)
	return h
}

// Histogram registers and returns a histogram with the given upper bucket
// bounds (ascending; an implicit +Inf bucket is always added). Pass nil to
// get DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.register(&metric{name: name, help: help, kind: kindHistogram,
		labels: formatLabels(labels), labelPairs: append([]Label(nil), labels...), hist: h})
	return h
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format, grouped into families with one HELP/TYPE header
// each. Output order is fully deterministic — families sorted by name,
// series within a family sorted by rendered label set — regardless of
// registration order, so repeated scrapes and pushed sink batches diff
// cleanly.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := append([]*metric(nil), r.ms...)
	r.mu.Unlock()

	order := []string{}
	families := map[string][]*metric{}
	for _, m := range ms {
		if _, ok := families[m.name]; !ok {
			order = append(order, m.name)
		}
		families[m.name] = append(families[m.name], m)
	}
	sort.Strings(order)
	for _, name := range order {
		fam := families[name]
		sort.SliceStable(fam, func(i, j int) bool { return fam[i].labels < fam[j].labels })
		if fam[0].help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, fam[0].help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, fam[0].kind)
		for _, m := range fam {
			if m.kind == kindHistogram {
				writeHistogram(w, m)
				continue
			}
			v := m.value()
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, int64(v))
			} else {
				fmt.Fprintf(w, "%s%s %g\n", m.name, m.labels, v)
			}
		}
	}
}

// writeHistogram renders one histogram series: cumulative buckets with a
// le label, then _sum and _count.
func writeHistogram(w io.Writer, m *metric) {
	h := m.hist
	var cum int64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		le := formatLabels(append(append([]Label(nil), m.labelPairs...),
			Label{Key: "le", Value: strconv.FormatFloat(ub, 'g', -1, 64)}))
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, le, cum)
	}
	total := h.Count()
	inf := formatLabels(append(append([]Label(nil), m.labelPairs...), Label{Key: "le", Value: "+Inf"}))
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, inf, total)
	fmt.Fprintf(w, "%s_sum%s %g\n", m.name, m.labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, total)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
