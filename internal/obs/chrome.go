package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (the subset chrome://tracing and Perfetto consume).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// The trace uses one synthetic process; worker lanes are threads. Global
// events (grants, quantum boundaries) live on a reserved control lane so
// they do not collide with core 0.
const (
	chromePID        = 1
	chromeControlTID = 1_000_000
)

// chromeTID maps a worker id to a stable thread lane.
func chromeTID(worker int32) int {
	if worker == NoWorker {
		return chromeControlTID
	}
	return int(worker)
}

// WriteChrome serializes the trace as Chrome trace_event JSON. The
// output opens directly in chrome://tracing or Perfetto: one lane per
// worker carries the instant events (spawn, steal, probe, done, block,
// retire), a control lane carries grants and quantum boundaries, and
// counter tracks plot the allotment size, the raw vs. filtered desire,
// and the per-worker queue lengths sampled at quantum boundaries.
func (d *TraceData) WriteChrome(w io.Writer) error {
	tpm := d.TicksPerMicro
	if tpm <= 0 {
		tpm = 1
	}
	toUS := func(ts int64) float64 { return float64(ts) / tpm }

	out := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"source":  "palirria/internal/obs",
			"events":  len(d.Events),
			"dropped": d.Dropped,
		},
		// Always materialize the array so the JSON says [] instead of null.
		TraceEvents: []chromeEvent{},
	}

	// Metadata: process and thread names. Collect every lane that appears.
	lanes := map[int]string{chromeControlTID: "scheduler control"}
	for id, name := range d.WorkerNames {
		lanes[chromeTID(id)] = name
	}
	for _, ev := range d.Events {
		if ev.Worker != NoWorker {
			if _, ok := lanes[chromeTID(ev.Worker)]; !ok {
				lanes[chromeTID(ev.Worker)] = fmt.Sprintf("worker %d", ev.Worker)
			}
		}
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "palirria"},
	})
	laneIDs := make([]int, 0, len(lanes))
	for tid := range lanes {
		laneIDs = append(laneIDs, tid)
	}
	sort.Ints(laneIDs)
	for _, tid := range laneIDs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: chromePID, TID: tid,
			Args: map[string]any{"name": lanes[tid]},
		})
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_sort_index", Phase: "M", PID: chromePID, TID: tid,
			Args: map[string]any{"sort_index": tid},
		})
	}

	// Scheduler events as instants; grants double as a counter track.
	for _, ev := range d.Events {
		ce := chromeEvent{
			Name:  ev.Kind.String(),
			Phase: "i",
			Scope: "t",
			TS:    toUS(ev.TS),
			PID:   chromePID,
			TID:   chromeTID(ev.Worker),
			Cat:   "scheduler",
		}
		args := map[string]any{}
		if ev.Peer != NoWorker {
			args["peer"] = ev.Peer
		}
		if ev.Label != "" {
			args["label"] = ev.Label
		}
		switch ev.Kind {
		case KindSpawn:
			args["queue_len"] = ev.Arg
		case KindGrant:
			args["workers"] = ev.Arg
			ce.Scope = "g"
			ce.Cat = "allotment"
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "allotment", Phase: "C", TS: toUS(ev.TS), PID: chromePID,
				Args: map[string]any{"workers": ev.Arg},
			})
		case KindQuantum:
			args["desired"] = ev.Arg
			ce.Scope = "g"
			ce.Cat = "estimator"
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	// Estimator introspection as counter tracks: desire before and after
	// the false-positive filter, and the DMC queue view per worker.
	for _, s := range d.Snapshots {
		ts := toUS(s.Time)
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "desire", Phase: "C", TS: ts, PID: chromePID,
			Args: map[string]any{
				"raw":      s.RawDesire,
				"filtered": s.FilteredDesire,
				"granted":  s.Granted,
			},
		})
		for _, wi := range s.Workers {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("queue w%d", wi.Worker), Phase: "C",
				TS: ts, PID: chromePID,
				Args: map[string]any{"len": wi.QueueLen, "max": wi.MaxQueueLen},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
