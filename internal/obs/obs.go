// Package obs is the unified observability layer shared by both execution
// platforms: the deterministic simulator (internal/sim) and the real
// goroutine runtime (internal/wsrt).
//
// It has four pillars:
//
//  1. A low-overhead structured event tracer. Each worker owns a
//     single-producer/single-consumer ring buffer of typed scheduler
//     events (spawn, steal, failed probe, task completion, sync block,
//     allotment grant, retirement, quantum boundary). The producer path
//     is lock-free and allocation-free; the nil-tracer fast path is a
//     single pointer comparison so disabled tracing costs nothing
//     measurable on the hot paths.
//  2. Estimator introspection. At every quantum boundary the platforms
//     record an EstimatorSnapshot: the per-worker DMC view (boundary/
//     inner classification, queue region counts, thresholds) or ASTEAL's
//     utilization inputs, together with the raw and filtered desire and
//     the actual grant. Estimation decisions become explainable after the
//     fact instead of being opaque integers.
//  3. Live metrics. A dependency-free Registry renders Prometheus text
//     format, and Serve exposes it together with expvar and net/http/pprof
//     on an opt-in address.
//  4. Export. A drained trace serializes to Chrome trace_event JSON
//     (chrome://tracing, Perfetto) and to a plain JSON introspection dump.
//
// Timestamps are int64 ticks: simulator cycles on the simulator, wall
// nanoseconds on the real runtime. TraceData.TicksPerMicro converts them
// to the microseconds Chrome traces use.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Kind classifies a scheduler event.
type Kind uint8

const (
	// KindSpawn: a task was pushed on a worker's queue. Arg is the queue
	// length after the push.
	KindSpawn Kind = iota
	// KindSteal: a task moved from victim (Peer) to thief (Worker).
	KindSteal
	// KindProbeFail: Worker probed victim Peer and found nothing stealable.
	KindProbeFail
	// KindTaskDone: a task completed on Worker.
	KindTaskDone
	// KindBlock: Worker blocked at the sync of a stolen child (and starts
	// leapfrogging).
	KindBlock
	// KindGrant: the system layer granted an allotment at a quantum
	// boundary (possibly unchanged). Arg is the granted size.
	KindGrant
	// KindRetire: a draining worker exited its allotment.
	KindRetire
	// KindQuantum: an estimation quantum boundary. Arg is the desired
	// worker count the controller forwarded to the system layer.
	KindQuantum
	// KindPark: Worker woke from an event-driven park. Arg is the
	// nanoseconds spent blocked (idle, not searching).
	KindPark

	// NumKinds is the number of event kinds.
	NumKinds
)

// String names the kind (also the Chrome trace event name).
func (k Kind) String() string {
	switch k {
	case KindSpawn:
		return "spawn"
	case KindSteal:
		return "steal"
	case KindProbeFail:
		return "probefail"
	case KindTaskDone:
		return "done"
	case KindBlock:
		return "block"
	case KindGrant:
		return "grant"
	case KindRetire:
		return "retire"
	case KindQuantum:
		return "quantum"
	case KindPark:
		return "park"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// NoWorker marks the absence of a worker or peer on an event.
const NoWorker int32 = -1

// Event is one recorded scheduler event.
type Event struct {
	// TS is the event time in ticks (cycles or nanoseconds).
	TS int64
	// Kind classifies the event.
	Kind Kind
	// Worker is the acting worker's core id (NoWorker for global events).
	Worker int32
	// Peer is the other party (steal victim, probe target; NoWorker
	// otherwise).
	Peer int32
	// Arg carries kind-specific data (queue length after a spawn, new
	// allotment size for grants, desired workers for quantum boundaries).
	Arg int64
	// Label is the task label or job name where applicable.
	Label string
}

// Tracer collects events from many rings plus the per-quantum estimator
// snapshots. Rings are registered once (at worker creation, before
// emission starts); registration and snapshot recording take a mutex,
// event emission never does.
type Tracer struct {
	ringCap       int
	ticksPerMicro float64

	mu      sync.Mutex
	rings   []*Ring
	snaps   []EstimatorSnapshot
	workers map[int32]string
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithRingCap sets the per-ring event capacity (rounded up to a power of
// two; default 1<<16).
func WithRingCap(n int) Option {
	return func(t *Tracer) { t.ringCap = n }
}

// WithTicksPerMicro sets the tick-to-microsecond conversion of drained
// traces (1 for simulator cycles, 1000 for wall nanoseconds).
func WithTicksPerMicro(f float64) Option {
	return func(t *Tracer) {
		if f > 0 {
			t.ticksPerMicro = f
		}
	}
}

// NewTracer builds an empty tracer.
func NewTracer(opts ...Option) *Tracer {
	t := &Tracer{ringCap: 1 << 16, ticksPerMicro: 1, workers: map[int32]string{}}
	for _, o := range opts {
		o(t)
	}
	return t
}

// NewRing registers a new ring with the tracer and returns it. overwrite
// selects keep-newest semantics (only safe when emission and draining
// never overlap, e.g. the single-threaded simulator); the default
// drop-newest mode is safe for one concurrent producer per ring.
func (t *Tracer) NewRing(overwrite bool) *Ring {
	r := newRing(t.ringCap, overwrite)
	t.mu.Lock()
	t.rings = append(t.rings, r)
	t.mu.Unlock()
	return r
}

// SetWorkerName attaches a display name to a worker id (used for the
// Chrome trace thread lanes).
func (t *Tracer) SetWorkerName(worker int32, name string) {
	t.mu.Lock()
	t.workers[worker] = name
	t.mu.Unlock()
}

// RecordSnapshot appends one estimator introspection snapshot. Called
// once per quantum — far off the hot path — so a mutex is fine.
func (t *Tracer) RecordSnapshot(s EstimatorSnapshot) {
	t.mu.Lock()
	t.snaps = append(t.snaps, s)
	t.mu.Unlock()
}

// Snapshots returns a copy of the recorded estimator snapshots.
func (t *Tracer) Snapshots() []EstimatorSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]EstimatorSnapshot(nil), t.snaps...)
}

// Drain collects every ring's pending events, merges them into time
// order, and returns them with the snapshots and worker names. It is safe
// to call concurrently with emission on drop-newest rings; events emitted
// during the drain may or may not be included.
func (t *Tracer) Drain() *TraceData {
	t.mu.Lock()
	rings := append([]*Ring(nil), t.rings...)
	snaps := append([]EstimatorSnapshot(nil), t.snaps...)
	names := make(map[int32]string, len(t.workers))
	for k, v := range t.workers {
		names[k] = v
	}
	t.mu.Unlock()

	d := &TraceData{
		Snapshots:     snaps,
		WorkerNames:   names,
		TicksPerMicro: t.ticksPerMicro,
	}
	for _, r := range rings {
		r.Drain(func(ev Event) { d.Events = append(d.Events, ev) })
		d.Dropped += r.Dropped()
	}
	sort.SliceStable(d.Events, func(i, j int) bool {
		if d.Events[i].TS != d.Events[j].TS {
			return d.Events[i].TS < d.Events[j].TS
		}
		return d.Events[i].Worker < d.Events[j].Worker
	})
	return d
}

// DrainEach consumes every ring's pending events in ring order, calling
// fn for each, without sorting or accumulating — the allocation-free
// shape the streaming pump wants for its periodic drains. Like Drain it
// is safe concurrently with emission on drop-newest rings, and it
// consumes the same events Drain would: a tracer feeding a pump should
// not also be drained for trace export.
func (t *Tracer) DrainEach(fn func(Event)) {
	t.mu.Lock()
	rings := append([]*Ring(nil), t.rings...)
	t.mu.Unlock()
	for _, r := range rings {
		r.Drain(fn)
	}
}

// TraceData is a drained, time-ordered trace ready for export.
type TraceData struct {
	// Events in non-decreasing TS order.
	Events []Event
	// Snapshots are the per-quantum estimator introspection records.
	Snapshots []EstimatorSnapshot
	// WorkerNames maps worker ids to display names.
	WorkerNames map[int32]string
	// Dropped counts events lost to full rings.
	Dropped int64
	// TicksPerMicro converts TS ticks to microseconds (1 for simulator
	// cycles displayed as µs, 1000 for wall nanoseconds).
	TicksPerMicro float64
}

// Counts tallies events per kind (diagnostics and tests).
func (d *TraceData) Counts() [NumKinds]int64 {
	var c [NumKinds]int64
	for _, ev := range d.Events {
		if int(ev.Kind) < len(c) {
			c[ev.Kind]++
		}
	}
	return c
}
