package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Server is a live observability endpoint: /metrics (Prometheus text
// format), /debug/vars (expvar), and /debug/pprof (CPU, heap, goroutine
// profiles). It is strictly opt-in — nothing listens unless Serve is
// called.
type Server struct {
	srv *http.Server
	lis net.Listener
}

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0" for an ephemeral port) exposing reg. It returns once the
// listener is bound; serving continues in the background until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(`<html><body><h1>palirria observability</h1><ul>` +
			`<li><a href="/metrics">/metrics</a> (Prometheus)</li>` +
			`<li><a href="/debug/vars">/debug/vars</a> (expvar)</li>` +
			`<li><a href="/debug/pprof/">/debug/pprof/</a></li>` +
			`</ul></body></html>`))
	})

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		lis: lis,
	}
	go s.srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" requests).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string {
	addr := s.Addr()
	if strings.HasPrefix(addr, "[::]:") {
		addr = "localhost:" + strings.TrimPrefix(addr, "[::]:")
	}
	return "http://" + addr
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// PublishExpvar mirrors the registry into the process-global expvar
// namespace under the given name (idempotent: repeated calls with a name
// already published are ignored, since expvar forbids re-registration).
func PublishExpvar(name string, reg *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		out := map[string]float64{}
		reg.mu.Lock()
		ms := append([]*metric(nil), reg.ms...)
		reg.mu.Unlock()
		for _, m := range ms {
			if m.kind == kindHistogram {
				out[m.name+m.labels+"_count"] = float64(m.hist.Count())
				out[m.name+m.labels+"_sum"] = m.hist.Sum()
				continue
			}
			out[m.name+m.labels] = m.value()
		}
		return out
	}))
}
