package obs

import (
	"encoding/json"
	"io"
)

// WorkerIntrospection is one worker's state as an estimator saw it at a
// quantum boundary, including the classification Palirria's Diaspora
// Malleability Conditions assigned to it.
type WorkerIntrospection struct {
	// Worker is the core id.
	Worker int `json:"worker"`
	// Class is the DVS region: "X" (boundary increase set), "Z"
	// (outermost decrease set), "XZ" (both, on minimal allotments), "F"
	// (inner filling), or "" when the estimator has no classification
	// (ASTEAL).
	Class string `json:"class,omitempty"`
	// QueueLen is µ(Q) at the boundary; MaxQueueLen its high-water mark
	// over the ending quantum.
	QueueLen    int `json:"queue_len"`
	MaxQueueLen int `json:"max_queue_len"`
	// ThresholdL is the DMC threshold L_i = µ(O_i)+offset for X workers
	// (0 otherwise).
	ThresholdL int `json:"threshold_l,omitempty"`
	// Busy reports a task in execution at the boundary; Draining a
	// removed worker finishing its queue.
	Busy     bool `json:"busy"`
	Draining bool `json:"draining,omitempty"`
	// WastedCycles is the quantum's wasted work under ASTEAL's definition
	// (probing, backoff, successful-steal transfer).
	WastedCycles int64 `json:"wasted_cycles"`
}

// EstimatorSnapshot is one quantum's complete estimation record: what the
// estimator saw, what it concluded, and what the system granted.
type EstimatorSnapshot struct {
	// Time of the quantum boundary, in ticks.
	Time int64 `json:"time"`
	// Job labels the application (multiprogrammed runs).
	Job string `json:"job,omitempty"`
	// Estimator names the deciding estimator ("palirria", "asteal").
	Estimator string `json:"estimator"`
	// Allotment is the granted size the estimator observed.
	Allotment int `json:"allotment"`
	// Decision is the coarse direction ("increase", "keep", "decrease").
	Decision string `json:"decision"`
	// RawDesire is the estimator's unfiltered answer; FilteredDesire what
	// the false-positive filter forwarded to the system layer.
	RawDesire      int `json:"raw_desire"`
	FilteredDesire int `json:"filtered_desire"`
	// Granted is the allotment size the system layer actually provided
	// for the next quantum.
	Granted int `json:"granted"`
	// Workers is the per-worker view (DMC inputs, classes, thresholds).
	Workers []WorkerIntrospection `json:"workers,omitempty"`
	// Inputs carries estimator-specific scalar inputs: ASTEAL records
	// wasted/total cycles, its efficiency and satisfaction verdicts
	// (0/1), and the real-valued desire; Palirria records the X and Z
	// set sizes it inspected.
	Inputs map[string]float64 `json:"inputs,omitempty"`
}

// WriteSnapshotsJSON dumps estimator snapshots as an indented JSON array
// — the "why did the allotment change" record of a run.
func WriteSnapshotsJSON(w io.Writer, snaps []EstimatorSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}
