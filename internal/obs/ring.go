package obs

import "sync/atomic"

// Ring is a bounded event buffer with exactly one producer. Two modes:
//
//   - drop-newest (default): Emit on a full ring discards the event and
//     counts it. The producer and a single concurrent consumer (Drain)
//     synchronize only through the head and tail atomics, so emission is
//     lock-free and race-free — the mode both runtimes use while workers
//     are live.
//   - overwrite (keep-newest): Emit on a full ring advances the tail,
//     evicting the oldest event. Overwriting makes the producer touch the
//     consumer's index, so this mode is only safe when emission and
//     draining never overlap — the single-threaded simulator drains after
//     the run completes.
//
// The capacity is rounded up to a power of two so indices wrap with a
// mask.
type Ring struct {
	buf  []Event
	mask int64

	head    atomic.Int64 // next slot to write (producer-owned)
	tail    atomic.Int64 // next slot to read (consumer-owned)
	dropped atomic.Int64

	overwrite bool
}

func newRing(capacity int, overwrite bool) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{buf: make([]Event, n), mask: int64(n - 1), overwrite: overwrite}
}

// Emit records one event. Producer-only.
func (r *Ring) Emit(ev Event) {
	h := r.head.Load()
	if h-r.tail.Load() == int64(len(r.buf)) {
		if !r.overwrite {
			r.dropped.Add(1)
			return
		}
		// Keep-newest: evict the oldest. Only valid without a concurrent
		// consumer (see type comment).
		r.tail.Add(1)
	}
	r.buf[h&r.mask] = ev
	r.head.Store(h + 1)
}

// Drain consumes every pending event in order. Consumer-only; safe
// concurrently with Emit in drop-newest mode.
func (r *Ring) Drain(fn func(Event)) {
	t := r.tail.Load()
	h := r.head.Load()
	for ; t < h; t++ {
		fn(r.buf[t&r.mask])
	}
	r.tail.Store(t)
}

// Len reports the number of pending events.
func (r *Ring) Len() int { return int(r.head.Load() - r.tail.Load()) }

// Dropped reports how many events were discarded on a full ring.
func (r *Ring) Dropped() int64 { return r.dropped.Load() }
