package obs

import "testing"

// emitIfEnabled mirrors the platforms' instrumentation sites: a nil check
// guarding the ring emit. Benchmarked both ways to quantify the cost of
// disabled tracing (the acceptance bar is <2% on scheduler hot paths, which
// a single predictable branch is far under).
func emitIfEnabled(r *Ring, ev Event) {
	if r == nil {
		return
	}
	r.Emit(ev)
}

func BenchmarkEmitDisabled(b *testing.B) {
	ev := Event{Kind: KindSpawn, Worker: 1, Peer: NoWorker, Arg: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		emitIfEnabled(nil, ev)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	tr := NewTracer(WithRingCap(1 << 16))
	r := tr.NewRing(true) // overwrite: steady-state emit cost, no drops
	ev := Event{Kind: KindSpawn, Worker: 1, Peer: NoWorker, Arg: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.TS = int64(i)
		emitIfEnabled(r, ev)
	}
}

func BenchmarkRingEmitDrain(b *testing.B) {
	tr := NewTracer(WithRingCap(1 << 10))
	r := tr.NewRing(false)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
				r.Drain(func(Event) {})
			}
		}
	}()
	ev := Event{Kind: KindSteal, Worker: 1, Peer: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.TS = int64(i)
		r.Emit(ev)
	}
	b.StopTimer()
	done <- struct{}{}
	<-done
}
