package stream

import (
	"sync"
	"time"

	"palirria/internal/obs"
)

// DefaultPumpKinds is the obs-ring subset a Pump forwards when no
// explicit kind list is configured: allotment changes, worker
// retirement, and park wake-ups — the low-rate control-plane signals.
// High-rate data-plane kinds (spawn, steal, done, probefail) stay in
// the rings unless explicitly requested, and obs.KindQuantum is
// excluded because the pool publishes richer KindQuantum events with
// the full estimator payload.
var DefaultPumpKinds = []obs.Kind{obs.KindGrant, obs.KindRetire, obs.KindPark}

// PumpConfig configures a Pump.
type PumpConfig struct {
	// Label is stamped into Event.Pool on every forwarded event.
	Label string
	// Kinds selects which obs kinds to forward (default DefaultPumpKinds).
	Kinds []obs.Kind
	// BaseNS converts ring timestamps (ticks since runtime start) to wall
	// nanoseconds: Event.TS = BaseNS + ring TS. Zero leaves Publish to
	// stamp the drain time instead.
	BaseNS int64
	// Interval is the drain period (default 15ms).
	Interval time.Duration
}

// Pump periodically drains an obs.Tracer's rings and republishes
// selected events on a Hub as KindSched stream events. Workers keep
// their allocation-free fixed-record emission path; all conversion work
// happens here, on the pump's own goroutine. The pump owns the tracer's
// ring consumption — a tracer feeding a pump must not also be drained
// via Tracer.Drain for trace export.
type Pump struct {
	hub    *Hub
	tracer *obs.Tracer
	cfg    PumpConfig
	want   [obs.NumKinds]bool

	stop chan struct{}
	done sync.WaitGroup

	forwarded int64 // pump goroutine only, read after Stop
}

// NewPump builds a pump; Start begins draining.
func NewPump(h *Hub, t *obs.Tracer, cfg PumpConfig) *Pump {
	if cfg.Interval <= 0 {
		cfg.Interval = 15 * time.Millisecond
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = DefaultPumpKinds
	}
	p := &Pump{hub: h, tracer: t, cfg: cfg, stop: make(chan struct{})}
	for _, k := range kinds {
		if int(k) < int(obs.NumKinds) {
			p.want[k] = true
		}
	}
	return p
}

// Start launches the drain loop.
func (p *Pump) Start() {
	p.done.Add(1)
	go p.loop()
}

// Stop performs a final drain and stops the loop. Idempotent via the
// caller (wsrt calls it once from teardown).
func (p *Pump) Stop() {
	close(p.stop)
	p.done.Wait()
}

// Forwarded reports events republished on the hub. Only stable after
// Stop.
func (p *Pump) Forwarded() int64 { return p.forwarded }

func (p *Pump) loop() {
	defer p.done.Done()
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			p.drain()
		case <-p.stop:
			p.drain()
			return
		}
	}
}

// drain converts one sweep of ring events into stream events. When the
// hub has no subscribers the rings are still consumed (so they cannot
// fill and drop), but each Publish is just two atomics.
func (p *Pump) drain() {
	p.tracer.DrainEach(func(ev obs.Event) {
		if !p.want[ev.Kind] {
			return
		}
		ts := int64(0)
		if p.cfg.BaseNS != 0 {
			ts = p.cfg.BaseNS + ev.TS
		}
		p.hub.Publish(Event{
			TS:     ts,
			Kind:   KindSched,
			Pool:   p.cfg.Label,
			Worker: ev.Worker,
			Peer:   ev.Peer,
			Arg:    ev.Arg,
			Detail: ev.Kind.String(),
		})
		p.forwarded++
	})
}
