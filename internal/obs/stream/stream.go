// Package stream turns the runtime's observability signals — per-worker
// obs ring buffers, serve.Pool job transitions, and per-quantum estimator
// snapshots — into a typed broadcast event stream with bounded
// per-subscriber buffers.
//
// The design rule is that a slow consumer can never backpressure the
// scheduler: Publish never blocks and never waits on a subscriber. Each
// subscription owns a bounded buffer; when it is full the event is
// dropped *for that subscriber* and counted exactly, so a consumer can
// always reconcile what it saw against what happened
// (Delivered()+Dropped() == events matching its filter while it was
// subscribed). The hot paths of the runtime itself stay allocation-free:
// workers keep emitting fixed-size records into their obs rings, and a
// background Pump converts drained ring events into stream events off the
// worker goroutines.
//
// On top of the Hub, sink.go provides the off-box half: a pluggable Sink
// interface (heapster-style backends) fed by a Spooler that batches
// events, retries pushes with backoff, and bounds its spool so a dead
// backend cannot grow memory without bound either.
package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"palirria/internal/obs"
)

// Kind classifies a stream event.
type Kind uint8

const (
	// KindAdmitted: a job entered a serving pool (Job is its id).
	KindAdmitted Kind = iota
	// KindStarted: an admitted job began executing on a worker.
	KindStarted
	// KindCompleted: a job and its whole task tree finished.
	KindCompleted
	// KindCancelled: a job was cancelled or discarded before running.
	KindCancelled
	// KindShed: a submission was rejected (Reason: "full" or "shed").
	KindShed
	// KindQuantum: one estimation quantum (Raw/Desire/Granted/Capacity).
	KindQuantum
	// KindSched: a scheduler event pumped from the per-worker obs rings
	// (Detail names the obs kind: grant, retire, park, ...).
	KindSched
	// KindPeerUp: a cluster peer was first seen, or recovered from
	// suspicion (Node is the peer id).
	KindPeerUp
	// KindPeerSuspect: a peer missed heartbeats long enough to be
	// suspected (Node is the peer id, Arg the silent nanoseconds).
	KindPeerSuspect
	// KindPeerDead: a suspected peer was confirmed dead (Node is the peer
	// id, Arg the silent nanoseconds).
	KindPeerDead
	// KindRouted: the router steered a submission to Node (Arg is the
	// batch size, Detail the sticky key when one applied).
	KindRouted
	// KindFailover: an attempt against Node failed and the submission was
	// re-routed to Target (Reason carries the failure cause).
	KindFailover
	// KindDeadlineShed: a submission was rejected because the estimator's
	// desire plus the observed submit-to-start p99 predicted the job could
	// not start before its deadline (Detail names the class, Arg the
	// predicted wait in nanoseconds).
	KindDeadlineShed

	// NumKinds is the number of stream event kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	KindAdmitted:     "admitted",
	KindStarted:      "started",
	KindCompleted:    "completed",
	KindCancelled:    "cancelled",
	KindShed:         "shed",
	KindQuantum:      "quantum",
	KindSched:        "sched",
	KindPeerUp:       "peer-up",
	KindPeerSuspect:  "peer-suspect",
	KindPeerDead:     "peer-dead",
	KindRouted:       "routed",
	KindFailover:     "failover",
	KindDeadlineShed: "deadline-shed",
}

// String names the kind (also the SSE event name on the wire).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind maps a wire name back to its Kind.
func ParseKind(s string) (Kind, bool) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// MarshalJSON renders the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the wire name (unknown names fail).
func (k *Kind) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("stream: bad kind %s", b)
	}
	kk, ok := ParseKind(string(b[1 : len(b)-1]))
	if !ok {
		return fmt.Errorf("stream: unknown kind %s", b)
	}
	*k = kk
	return nil
}

// Event is one typed stream record. Only the fields relevant to the kind
// are set; the zero values are omitted on the wire.
type Event struct {
	// Seq is the hub-assigned publication sequence number (gaps on a
	// subscription mean filtered or dropped events).
	Seq uint64 `json:"seq"`
	// TS is the event time in wall nanoseconds (UnixNano).
	TS int64 `json:"ts_ns"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Pool labels the originating pool / runtime.
	Pool string `json:"pool,omitempty"`
	// Job is the pool-assigned job id for lifecycle events.
	Job uint64 `json:"job,omitempty"`
	// Reason qualifies KindShed ("full" or "shed") and KindCancelled.
	Reason string `json:"reason,omitempty"`
	// Worker and Peer identify cores on KindSched events.
	Worker int32 `json:"worker,omitempty"`
	Peer   int32 `json:"peer,omitempty"`
	// Arg carries the obs event payload on KindSched (granted size for
	// grant, parked nanoseconds for park, ...).
	Arg int64 `json:"arg,omitempty"`
	// Detail names the underlying obs kind on KindSched events (and the
	// sticky key, when one applied, on KindRouted).
	Detail string `json:"detail,omitempty"`
	// Node identifies the cluster peer on peer-up/peer-suspect/peer-dead
	// events, and the chosen (or failed) node on routed/failover events.
	Node string `json:"node,omitempty"`
	// Target is the node a failover re-routed to.
	Target string `json:"target,omitempty"`
	// Estimator payload on KindQuantum: desire before and after the
	// false-positive filter, the actual grant, and the grantable maximum.
	Raw      int `json:"raw,omitempty"`
	Desire   int `json:"desire,omitempty"`
	Granted  int `json:"granted,omitempty"`
	Capacity int `json:"capacity,omitempty"`
}

// Sub is one bounded subscription to a Hub.
type Sub struct {
	hub  *Hub
	ch   chan Event
	pool string
	job  uint64
	mask uint32 // bitmask of subscribed kinds; 0 = all

	delivered atomic.Int64
	dropped   atomic.Int64
	closeOnce sync.Once
}

// SubOptions filter and size a subscription.
type SubOptions struct {
	// Buf bounds the subscription's buffer (default 256). When full,
	// further matching events are dropped and counted.
	Buf int
	// Kinds restricts delivery to the listed kinds; empty means all.
	Kinds []Kind
	// Job restricts delivery to one job id (0 means all). Events without
	// a job id (quantum, sched, shed) are excluded by a job filter.
	Job uint64
	// Pool restricts delivery to one pool label ("" means all).
	Pool string
}

// Events is the subscription's receive channel. It is closed when the
// subscription (or the hub) is closed; events buffered before the close
// are still delivered.
func (s *Sub) Events() <-chan Event { return s.ch }

// Delivered counts events placed in the subscription's buffer.
func (s *Sub) Delivered() int64 { return s.delivered.Load() }

// Dropped counts matching events discarded because the buffer was full.
// Delivered()+Dropped() equals exactly the number of published events
// matching the filter during the subscription's lifetime.
func (s *Sub) Dropped() int64 { return s.dropped.Load() }

// Close unregisters the subscription and closes its channel. After Close
// returns, no further event is delivered or counted; events already
// buffered remain readable until the channel reports closed. Safe to
// call more than once and concurrently with Publish.
func (s *Sub) Close() { s.closeOnce.Do(func() { s.hub.remove(s) }) }

func (s *Sub) match(ev *Event) bool {
	if s.mask != 0 && s.mask&(1<<ev.Kind) == 0 {
		return false
	}
	if s.job != 0 && ev.Job != s.job {
		return false
	}
	if s.pool != "" && ev.Pool != s.pool {
		return false
	}
	return true
}

// Hub is a broadcast fan-out from the runtime's signal sources to any
// number of bounded subscribers. Publish is non-blocking and safe from
// any goroutine; with no subscribers it is two atomic operations.
type Hub struct {
	mu     sync.RWMutex
	subs   []*Sub
	closed bool

	nsubs     atomic.Int32
	seq       atomic.Uint64
	published atomic.Int64
	dropped   atomic.Int64
}

// NewHub builds an empty hub.
func NewHub() *Hub { return &Hub{} }

// Publish assigns a sequence number and fans ev out to every matching
// subscriber, dropping (and counting) at full buffers instead of
// blocking. A zero TS is stamped with the current wall clock.
func (h *Hub) Publish(ev Event) {
	ev.Seq = h.seq.Add(1)
	h.published.Add(1)
	if h.nsubs.Load() == 0 {
		return
	}
	if ev.TS == 0 {
		ev.TS = time.Now().UnixNano()
	}
	// The read lock pins the subscriber set: a Sub still in it cannot
	// have its channel closed (remove closes under the write lock), so
	// the non-blocking send below can never hit a closed channel.
	h.mu.RLock()
	for _, s := range h.subs {
		if !s.match(&ev) {
			continue
		}
		select {
		case s.ch <- ev:
			s.delivered.Add(1)
		default:
			s.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
	h.mu.RUnlock()
}

// Subscribe registers a new bounded subscription. Subscribing to a
// closed hub returns a subscription whose channel is already closed.
func (h *Hub) Subscribe(opt SubOptions) *Sub {
	if opt.Buf <= 0 {
		opt.Buf = 256
	}
	var mask uint32
	for _, k := range opt.Kinds {
		if int(k) < int(NumKinds) {
			mask |= 1 << k
		}
	}
	s := &Sub{
		hub:  h,
		ch:   make(chan Event, opt.Buf),
		pool: opt.Pool,
		job:  opt.Job,
		mask: mask,
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(s.ch)
		return s
	}
	h.subs = append(h.subs, s)
	h.nsubs.Store(int32(len(h.subs)))
	h.mu.Unlock()
	return s
}

// remove unregisters s and closes its channel — but only if s is still
// in the set, so a subscription torn down by Hub.Close is not closed
// twice. Closing under the write lock is what makes Publish's send safe:
// no publisher holds the read lock here, and after the unlock none will
// find s in the set.
func (h *Hub) remove(s *Sub) {
	h.mu.Lock()
	for i, cur := range h.subs {
		if cur == s {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			h.nsubs.Store(int32(len(h.subs)))
			close(s.ch)
			break
		}
	}
	h.mu.Unlock()
}

// Close closes every subscription and marks the hub closed; later
// Publish calls still count but deliver nowhere, and later Subscribe
// calls return pre-closed subscriptions.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := h.subs
	h.subs = nil
	h.nsubs.Store(0)
	for _, s := range subs {
		close(s.ch)
	}
	h.mu.Unlock()
}

// Subscribers reports the current subscription count.
func (h *Hub) Subscribers() int { return int(h.nsubs.Load()) }

// Published reports the total events published (delivered or not).
func (h *Hub) Published() int64 { return h.published.Load() }

// DroppedTotal reports events dropped across all subscribers.
func (h *Hub) DroppedTotal() int64 { return h.dropped.Load() }

// Register exposes the hub's counters on a metrics registry.
func (h *Hub) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.CounterFunc("palirria_stream_published_total",
		"Events published into the stream hub.",
		func() float64 { return float64(h.Published()) }, labels...)
	reg.CounterFunc("palirria_stream_dropped_total",
		"Events dropped at full subscriber buffers, across all subscribers.",
		func() float64 { return float64(h.DroppedTotal()) }, labels...)
	reg.GaugeFunc("palirria_stream_subscribers",
		"Live stream subscriptions.",
		func() float64 { return float64(h.Subscribers()) }, labels...)
}
