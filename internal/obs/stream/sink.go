package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Sink is a pluggable off-box backend for event batches, in the spirit
// of heapster's storage backends. Push delivers one batch; an error
// makes the Spooler retry with backoff. Push must be safe for calls from
// a single goroutine at a time (the Spooler serializes them).
type Sink interface {
	// Push delivers one batch of events. Events arrive in publication
	// order within a batch; a batch is retried as a unit on error, so
	// sinks should tolerate duplicate delivery.
	Push(batch []Event) error
	// Name labels the sink in logs and metrics.
	Name() string
}

// SpoolConfig tunes a Spooler.
type SpoolConfig struct {
	// FlushEvery bounds how long an event sits unbatched (default 1s).
	FlushEvery time.Duration
	// MaxBatch caps events per Push (default 256; a full batch flushes
	// immediately without waiting for the ticker).
	MaxBatch int
	// SpoolCap bounds batches awaiting push (default 64). When the spool
	// is full the oldest pending batch is dropped and counted — a dead
	// backend costs bounded memory, never unbounded growth.
	SpoolCap int
	// MaxAttempts bounds push attempts per batch, backoff doubling from
	// Backoff between them (defaults 5 and 100ms).
	MaxAttempts int
	Backoff     time.Duration
	// Buf sizes the spooler's hub subscription (default 1024).
	Buf int
	// Kinds filters the subscription; empty forwards every kind.
	Kinds []Kind
}

// SpoolStats is a point-in-time snapshot of a Spooler's counters.
type SpoolStats struct {
	// PushedBatches and PushedEvents count successful Push deliveries.
	PushedBatches int64 `json:"pushed_batches"`
	PushedEvents  int64 `json:"pushed_events"`
	// Retries counts re-attempted pushes; Failed counts batches dropped
	// after exhausting attempts; SpoolDropped counts batches evicted by
	// a full spool; SubDropped mirrors the subscription's drop counter.
	Retries      int64 `json:"retries"`
	Failed       int64 `json:"failed"`
	SpoolDropped int64 `json:"spool_dropped"`
	SubDropped   int64 `json:"sub_dropped"`
}

// Spooler connects a Hub to a Sink: it batches subscribed events, spools
// batches in a bounded queue, and pushes them with retry/backoff on its
// own goroutines — backpressure from a slow or dead sink stops at the
// spool, never at the hub or the scheduler.
type Spooler struct {
	sink Sink
	sub  *Sub
	cfg  SpoolConfig

	spool chan []Event

	pushedB atomic.Int64
	pushedE atomic.Int64
	retries atomic.Int64
	failed  atomic.Int64
	evicted atomic.Int64

	stop chan struct{}
	done sync.WaitGroup
}

// NewSpooler subscribes to h and starts the batch/push goroutines.
// Close the Spooler (not the subscription) to stop it.
func NewSpooler(h *Hub, sink Sink, cfg SpoolConfig) *Spooler {
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.SpoolCap <= 0 {
		cfg.SpoolCap = 64
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.Buf <= 0 {
		cfg.Buf = 1024
	}
	sp := &Spooler{
		sink:  sink,
		cfg:   cfg,
		sub:   h.Subscribe(SubOptions{Buf: cfg.Buf, Kinds: cfg.Kinds}),
		spool: make(chan []Event, cfg.SpoolCap),
		stop:  make(chan struct{}),
	}
	sp.done.Add(2)
	go sp.collect()
	go sp.push()
	return sp
}

// collect batches subscription events by size and time.
func (sp *Spooler) collect() {
	defer sp.done.Done()
	ticker := time.NewTicker(sp.cfg.FlushEvery)
	defer ticker.Stop()
	var batch []Event
	flush := func() {
		if len(batch) == 0 {
			return
		}
		sp.enqueue(batch)
		batch = nil
	}
	for {
		select {
		case ev, ok := <-sp.sub.Events():
			if !ok {
				flush()
				close(sp.spool)
				return
			}
			batch = append(batch, ev)
			if len(batch) >= sp.cfg.MaxBatch {
				flush()
			}
		case <-ticker.C:
			flush()
		case <-sp.stop:
			// Drain whatever is already buffered, then flush and stop.
			for {
				select {
				case ev, ok := <-sp.sub.Events():
					if !ok {
						flush()
						close(sp.spool)
						return
					}
					batch = append(batch, ev)
					if len(batch) >= sp.cfg.MaxBatch {
						flush()
					}
				default:
					flush()
					close(sp.spool)
					return
				}
			}
		}
	}
}

// enqueue spools one batch, evicting the oldest pending batch when full.
func (sp *Spooler) enqueue(batch []Event) {
	for {
		select {
		case sp.spool <- batch:
			return
		default:
		}
		select {
		case <-sp.spool:
			sp.evicted.Add(1)
		default:
		}
	}
}

// push drains the spool through the sink with bounded retries.
func (sp *Spooler) push() {
	defer sp.done.Done()
	for batch := range sp.spool {
		delay := sp.cfg.Backoff
		pushed := false
		for attempt := 1; attempt <= sp.cfg.MaxAttempts; attempt++ {
			if err := sp.sink.Push(batch); err == nil {
				pushed = true
				break
			}
			if attempt == sp.cfg.MaxAttempts {
				break
			}
			sp.retries.Add(1)
			select {
			case <-time.After(delay):
			case <-sp.stop:
				// Shutting down: one last immediate attempt, no more waits.
				if err := sp.sink.Push(batch); err == nil {
					pushed = true
				}
				attempt = sp.cfg.MaxAttempts
			}
			delay *= 2
		}
		if pushed {
			sp.pushedB.Add(1)
			sp.pushedE.Add(int64(len(batch)))
		} else {
			sp.failed.Add(1)
		}
	}
}

// Close unsubscribes, flushes buffered events best-effort, and stops the
// goroutines.
func (sp *Spooler) Close() {
	close(sp.stop)
	sp.sub.Close()
	sp.done.Wait()
}

// Stats snapshots the spooler's counters.
func (sp *Spooler) Stats() SpoolStats {
	return SpoolStats{
		PushedBatches: sp.pushedB.Load(),
		PushedEvents:  sp.pushedE.Load(),
		Retries:       sp.retries.Load(),
		Failed:        sp.failed.Load(),
		SpoolDropped:  sp.evicted.Load(),
		SubDropped:    sp.sub.Dropped(),
	}
}

// JSONLSink writes one JSON object per event, newline-delimited — the
// file/stdout sink. Safe for the Spooler's single pusher; the mutex
// guards against a shared writer elsewhere.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Name implements Sink.
func (s *JSONLSink) Name() string { return "jsonl" }

// Push renders the batch as JSON lines in one write.
func (s *JSONLSink) Push(batch []Event) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range batch {
		if err := enc.Encode(&batch[i]); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.w.Write(buf.Bytes())
	return err
}

// PromPushSink accumulates event batches into Prometheus series and
// pushes the rendered text exposition over HTTP (push-gateway style) on
// every batch: cumulative palirria_stream_events_total{kind,pool}
// counters plus the latest desire/granted/capacity gauges per pool.
type PromPushSink struct {
	url    string
	client *http.Client

	mu     sync.Mutex
	counts map[string]int64 // key: kind + "\x00" + pool
	quant  map[string]Event // latest quantum event per pool
}

// NewPromPushSink pushes to url with client (nil uses a 5s-timeout
// default).
func NewPromPushSink(url string, client *http.Client) *PromPushSink {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &PromPushSink{
		url:    url,
		client: client,
		counts: map[string]int64{},
		quant:  map[string]Event{},
	}
}

// Name implements Sink.
func (s *PromPushSink) Name() string { return "prom" }

// Push folds the batch into the cumulative series and POSTs the full
// rendered text. Re-pushing the same rendered state after a retried
// batch is idempotent for counters only if the batch was not re-folded;
// the fold therefore happens exactly once per Push call — the Spooler
// retries the POST by calling Push again, which re-folds, so the sink
// renders before folding retried batches would double-count. To keep
// retry semantics simple the render snapshot is taken after folding and
// duplicates are the caller's documented hazard (Sink contract).
func (s *PromPushSink) Push(batch []Event) error {
	body := s.render(batch)
	resp, err := s.client.Post(s.url, "text/plain; version=0.0.4; charset=utf-8",
		bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("prom push: status %d", resp.StatusCode)
	}
	return nil
}

// render folds batch into the cumulative state and returns the text
// exposition, series sorted by name+labels so consecutive pushes diff
// cleanly.
func (s *PromPushSink) render(batch []Event) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range batch {
		ev := &batch[i]
		s.counts[ev.Kind.String()+"\x00"+ev.Pool]++
		if ev.Kind == KindQuantum {
			s.quant[ev.Pool] = *ev
		}
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "# HELP palirria_stream_events_total Stream events pushed, by kind.\n")
	fmt.Fprintf(&b, "# TYPE palirria_stream_events_total counter\n")
	keys := make([]string, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts := strings.SplitN(k, "\x00", 2)
		fmt.Fprintf(&b, "palirria_stream_events_total{kind=%q,pool=%q} %d\n",
			parts[0], parts[1], s.counts[k])
	}
	pools := make([]string, 0, len(s.quant))
	for p := range s.quant {
		pools = append(pools, p)
	}
	sort.Strings(pools)
	for _, name := range []struct {
		metric, help string
		value        func(Event) int
	}{
		{"palirria_stream_desire_workers", "Filtered desire of the latest quantum.", func(e Event) int { return e.Desire }},
		{"palirria_stream_granted_workers", "Granted allotment of the latest quantum.", func(e Event) int { return e.Granted }},
		{"palirria_stream_capacity_workers", "Grantable maximum of the latest quantum.", func(e Event) int { return e.Capacity }},
	} {
		if len(pools) == 0 {
			break
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name.metric, name.help, name.metric)
		for _, p := range pools {
			fmt.Fprintf(&b, "%s{pool=%q} %d\n", name.metric, p, name.value(s.quant[p]))
		}
	}
	return b.Bytes()
}

// MemSink is the in-memory test sink: it records every pushed batch and
// can fail the first N pushes to exercise retry paths.
type MemSink struct {
	mu      sync.Mutex
	batches [][]Event
	// FailFirst makes the first N Push calls return an error.
	FailFirst int
	pushes    int
}

// Name implements Sink.
func (s *MemSink) Name() string { return "mem" }

// Push records the batch (or fails while FailFirst pushes remain).
func (s *MemSink) Push(batch []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pushes++
	if s.pushes <= s.FailFirst {
		return fmt.Errorf("mem sink: induced failure %d", s.pushes)
	}
	cp := append([]Event(nil), batch...)
	s.batches = append(s.batches, cp)
	return nil
}

// Events returns every recorded event in push order.
func (s *MemSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	for _, b := range s.batches {
		out = append(out, b...)
	}
	return out
}

// Batches returns the number of recorded batches.
func (s *MemSink) Batches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.batches)
}

// Pushes returns the number of Push calls, failed ones included.
func (s *MemSink) Pushes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushes
}

// ParseSink builds a sink from a flag spec:
//
//	jsonl:-          JSON lines to stdout
//	jsonl:/path      JSON lines appended to a file
//	prom:http://URL  Prometheus text pushed over HTTP
//
// The returned closer releases any file the spec opened (nil-safe).
func ParseSink(spec string) (Sink, func() error, error) {
	scheme, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, nil, fmt.Errorf("stream: bad sink spec %q (want scheme:target)", spec)
	}
	noop := func() error { return nil }
	switch scheme {
	case "jsonl":
		if arg == "-" || arg == "" {
			return NewJSONLSink(os.Stdout), noop, nil
		}
		f, err := os.OpenFile(arg, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		return NewJSONLSink(f), f.Close, nil
	case "prom":
		if !strings.HasPrefix(arg, "http://") && !strings.HasPrefix(arg, "https://") {
			return nil, nil, fmt.Errorf("stream: prom sink wants an http(s) URL, got %q", arg)
		}
		return NewPromPushSink(arg, nil), noop, nil
	default:
		return nil, nil, fmt.Errorf("stream: unknown sink scheme %q", scheme)
	}
}
