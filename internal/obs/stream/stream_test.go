package stream

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"palirria/internal/obs"
)

func TestKindJSONRoundTrip(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != k {
			t.Fatalf("round trip %v -> %s -> %v", k, b, back)
		}
		if pk, ok := ParseKind(k.String()); !ok || pk != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), pk, ok)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"nope"`), &k); err == nil {
		t.Fatal("unknown kind name unmarshalled without error")
	}
}

func TestEventJSONOmitsZeroFields(t *testing.T) {
	b, err := json.Marshal(Event{Seq: 1, TS: 2, Kind: KindShed, Reason: "full"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":1,"ts_ns":2,"kind":"shed","reason":"full"}`
	if string(b) != want {
		t.Fatalf("got %s want %s", b, want)
	}
}

func TestHubDeliversInOrder(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(SubOptions{Buf: 16})
	for i := 0; i < 5; i++ {
		h.Publish(Event{Kind: KindAdmitted, Job: uint64(i + 1)})
	}
	sub.Close()
	var jobs []uint64
	for ev := range sub.Events() {
		jobs = append(jobs, ev.Job)
		if ev.Seq == 0 {
			t.Fatal("event without sequence number")
		}
		if ev.TS == 0 {
			t.Fatal("event without timestamp")
		}
	}
	if len(jobs) != 5 {
		t.Fatalf("got %d events, want 5", len(jobs))
	}
	for i, j := range jobs {
		if j != uint64(i+1) {
			t.Fatalf("out of order: %v", jobs)
		}
	}
	if sub.Delivered() != 5 || sub.Dropped() != 0 {
		t.Fatalf("delivered=%d dropped=%d", sub.Delivered(), sub.Dropped())
	}
}

func TestHubFilters(t *testing.T) {
	h := NewHub()
	byKind := h.Subscribe(SubOptions{Buf: 16, Kinds: []Kind{KindCompleted}})
	byJob := h.Subscribe(SubOptions{Buf: 16, Job: 7})
	byPool := h.Subscribe(SubOptions{Buf: 16, Pool: "web"})

	h.Publish(Event{Kind: KindAdmitted, Job: 7, Pool: "web"})
	h.Publish(Event{Kind: KindCompleted, Job: 8, Pool: "batch"})
	h.Publish(Event{Kind: KindQuantum, Pool: "web"})

	byKind.Close()
	byJob.Close()
	byPool.Close()

	count := func(s *Sub) int {
		n := 0
		for range s.Events() {
			n++
		}
		return n
	}
	if n := count(byKind); n != 1 {
		t.Fatalf("kind filter delivered %d, want 1", n)
	}
	if n := count(byJob); n != 1 {
		t.Fatalf("job filter delivered %d, want 1 (job-less events excluded)", n)
	}
	if n := count(byPool); n != 2 {
		t.Fatalf("pool filter delivered %d, want 2", n)
	}
}

func TestHubDropsExactlyAtFullBuffer(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(SubOptions{Buf: 4})
	const total = 100
	for i := 0; i < total; i++ {
		h.Publish(Event{Kind: KindAdmitted, Job: uint64(i + 1)})
	}
	if got := sub.Delivered() + sub.Dropped(); got != total {
		t.Fatalf("delivered+dropped = %d, want %d", got, total)
	}
	if sub.Delivered() != 4 {
		t.Fatalf("delivered = %d, want buffer size 4", sub.Delivered())
	}
	if h.DroppedTotal() != sub.Dropped() {
		t.Fatalf("hub dropped %d, sub dropped %d", h.DroppedTotal(), sub.Dropped())
	}
	if h.Published() != total {
		t.Fatalf("published = %d, want %d", h.Published(), total)
	}
	sub.Close()
}

// TestHubAccountingUnderConcurrency is the exactness contract under
// contention: across concurrent publishers and a concurrently-reading
// subscriber, every matching event is either delivered or counted
// dropped — never lost, never double-counted.
func TestHubAccountingUnderConcurrency(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(SubOptions{Buf: 8})
	var read int64
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		for range sub.Events() {
			read++
		}
	}()

	const publishers, perPub = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				h.Publish(Event{Kind: KindSched})
			}
		}()
	}
	wg.Wait()
	sub.Close()
	rd.Wait()

	const total = publishers * perPub
	if got := sub.Delivered() + sub.Dropped(); got != total {
		t.Fatalf("delivered+dropped = %d, want %d", got, total)
	}
	if read != sub.Delivered() {
		t.Fatalf("reader saw %d, delivered %d", read, sub.Delivered())
	}
}

func TestSubCloseIsIdempotentAndStopsDelivery(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(SubOptions{Buf: 4})
	h.Publish(Event{Kind: KindAdmitted, Job: 1})
	sub.Close()
	sub.Close() // no panic
	before, beforeDrop := sub.Delivered(), sub.Dropped()
	h.Publish(Event{Kind: KindAdmitted, Job: 2})
	if sub.Delivered() != before || sub.Dropped() != beforeDrop {
		t.Fatal("counters moved after Close")
	}
	if n := len(sub.Events()); n != 1 {
		t.Fatalf("%d buffered events, want 1 (pre-close event readable)", n)
	}
	if h.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after close", h.Subscribers())
	}
}

func TestHubCloseThenSubClose(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(SubOptions{Buf: 4})
	h.Close()
	sub.Close() // must not double-close the channel
	if _, ok := <-sub.Events(); ok {
		t.Fatal("event delivered after hub close")
	}
	late := h.Subscribe(SubOptions{Buf: 4})
	if _, ok := <-late.Events(); ok {
		t.Fatal("subscribe after close returned an open channel")
	}
	h.Publish(Event{Kind: KindAdmitted}) // counts, delivers nowhere
	if h.Published() != 1 {
		t.Fatalf("published = %d", h.Published())
	}
}

// TestPublishCloseRace hammers Publish against subscriber churn; under
// -race this is the send-on-closed-channel guard.
func TestPublishCloseRace(t *testing.T) {
	h := NewHub()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				h.Publish(Event{Kind: KindSched})
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			return
		default:
		}
		sub := h.Subscribe(SubOptions{Buf: 1})
		select {
		case <-sub.Events():
		case <-done:
		}
		sub.Close()
		for range sub.Events() {
		}
	}
}

func TestPumpForwardsSelectedKinds(t *testing.T) {
	tr := obs.NewTracer(obs.WithRingCap(64))
	ring := tr.NewRing(false)
	h := NewHub()
	sub := h.Subscribe(SubOptions{Buf: 64})
	p := NewPump(h, tr, PumpConfig{Label: "web", BaseNS: 1000, Interval: time.Millisecond})
	p.Start()

	ring.Emit(obs.Event{TS: 5, Kind: obs.KindGrant, Worker: 2, Arg: 3})
	ring.Emit(obs.Event{TS: 6, Kind: obs.KindSpawn, Worker: 2, Arg: 1}) // filtered out
	ring.Emit(obs.Event{TS: 7, Kind: obs.KindPark, Worker: 1, Arg: 999})

	deadline := time.After(2 * time.Second)
	var got []Event
	for len(got) < 2 {
		select {
		case ev := <-sub.Events():
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("timed out, got %d events", len(got))
		}
	}
	p.Stop()
	sub.Close()

	if got[0].Kind != KindSched || got[0].Detail != "grant" || got[0].Arg != 3 ||
		got[0].Worker != 2 || got[0].TS != 1005 || got[0].Pool != "web" {
		t.Fatalf("bad first event: %+v", got[0])
	}
	if got[1].Detail != "park" || got[1].Arg != 999 || got[1].TS != 1007 {
		t.Fatalf("bad second event: %+v", got[1])
	}
	if p.Forwarded() != 2 {
		t.Fatalf("forwarded = %d, want 2", p.Forwarded())
	}
}

func TestPumpFinalDrainOnStop(t *testing.T) {
	tr := obs.NewTracer(obs.WithRingCap(64))
	ring := tr.NewRing(false)
	h := NewHub()
	sub := h.Subscribe(SubOptions{Buf: 64})
	p := NewPump(h, tr, PumpConfig{Interval: time.Hour}) // ticker never fires
	p.Start()
	ring.Emit(obs.Event{TS: 1, Kind: obs.KindRetire})
	p.Stop() // final drain must pick it up
	sub.Close()
	n := 0
	for range sub.Events() {
		n++
	}
	if n != 1 {
		t.Fatalf("got %d events after Stop, want 1", n)
	}
}
