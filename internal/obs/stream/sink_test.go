package stream

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSpoolerDeliversBatches(t *testing.T) {
	h := NewHub()
	mem := &MemSink{}
	sp := NewSpooler(h, mem, SpoolConfig{FlushEvery: 5 * time.Millisecond, MaxBatch: 8})
	for i := 0; i < 20; i++ {
		h.Publish(Event{Kind: KindAdmitted, Job: uint64(i + 1)})
	}
	waitFor(t, "20 pushed events", func() bool { return len(mem.Events()) == 20 })
	sp.Close()
	evs := mem.Events()
	for i, ev := range evs {
		if ev.Job != uint64(i+1) {
			t.Fatalf("out of order at %d: %+v", i, ev)
		}
	}
	st := sp.Stats()
	if st.PushedEvents != 20 || st.Failed != 0 || st.SpoolDropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSpoolerFlushesOnClose(t *testing.T) {
	h := NewHub()
	mem := &MemSink{}
	sp := NewSpooler(h, mem, SpoolConfig{FlushEvery: time.Hour}) // ticker never fires
	h.Publish(Event{Kind: KindCompleted, Job: 1})
	// The event may still be in the subscription channel; Close must
	// drain, flush, and push it.
	sp.Close()
	if n := len(mem.Events()); n != 1 {
		t.Fatalf("got %d events after Close, want 1", n)
	}
}

func TestSpoolerRetriesWithBackoff(t *testing.T) {
	h := NewHub()
	mem := &MemSink{FailFirst: 2}
	sp := NewSpooler(h, mem, SpoolConfig{
		FlushEvery:  time.Millisecond,
		Backoff:     time.Millisecond,
		MaxAttempts: 5,
	})
	h.Publish(Event{Kind: KindCompleted, Job: 42})
	waitFor(t, "retried push", func() bool { return len(mem.Events()) == 1 })
	sp.Close()
	st := sp.Stats()
	if st.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", st.Retries)
	}
	if st.Failed != 0 {
		t.Fatalf("failed = %d", st.Failed)
	}
}

func TestSpoolerGivesUpAfterMaxAttempts(t *testing.T) {
	h := NewHub()
	mem := &MemSink{FailFirst: 1 << 30}
	sp := NewSpooler(h, mem, SpoolConfig{
		FlushEvery:  time.Millisecond,
		Backoff:     time.Microsecond,
		MaxAttempts: 3,
	})
	h.Publish(Event{Kind: KindCompleted})
	waitFor(t, "failed batch", func() bool { return sp.Stats().Failed == 1 })
	sp.Close()
	if got := mem.Pushes(); got < 3 {
		t.Fatalf("pushes = %d, want >= 3 attempts", got)
	}
	if len(mem.Events()) != 0 {
		t.Fatal("failed batch recorded events")
	}
}

// blockSink wedges until released — drives the spool to capacity.
type blockSink struct {
	release chan struct{}
	mu      sync.Mutex
	pushed  int
}

func (s *blockSink) Name() string { return "block" }
func (s *blockSink) Push(batch []Event) error {
	<-s.release
	s.mu.Lock()
	s.pushed++
	s.mu.Unlock()
	return nil
}

func TestSpoolerBoundsSpoolByEvictingOldest(t *testing.T) {
	h := NewHub()
	bs := &blockSink{release: make(chan struct{})}
	sp := NewSpooler(h, bs, SpoolConfig{
		FlushEvery: time.Hour,
		MaxBatch:   1, // every event is its own batch
		SpoolCap:   2,
		Buf:        64,
	})
	// One batch wedges in Push; SpoolCap more fit in the spool; the rest
	// must evict oldest rather than block the collector or grow memory.
	for i := 0; i < 10; i++ {
		h.Publish(Event{Kind: KindAdmitted, Job: uint64(i + 1)})
	}
	waitFor(t, "spool eviction", func() bool { return sp.Stats().SpoolDropped >= 1 })
	close(bs.release)
	sp.Close()
	st := sp.Stats()
	if st.SpoolDropped+st.PushedBatches+st.Failed != 10 {
		t.Fatalf("batches unaccounted: %+v", st)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	if err := s.Push([]Event{
		{Seq: 1, TS: 10, Kind: KindAdmitted, Pool: "web", Job: 3},
		{Seq: 2, TS: 11, Kind: KindCompleted, Pool: "web", Job: 3},
	}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if ev.Kind != KindCompleted || ev.Job != 3 {
		t.Fatalf("bad event: %+v", ev)
	}
}

func TestPromPushSink(t *testing.T) {
	var mu sync.Mutex
	var last string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		last = string(b)
		mu.Unlock()
	}))
	defer srv.Close()

	s := NewPromPushSink(srv.URL, nil)
	err := s.Push([]Event{
		{Kind: KindCompleted, Pool: "web"},
		{Kind: KindCompleted, Pool: "web"},
		{Kind: KindShed, Pool: "batch", Reason: "full"},
		{Kind: KindQuantum, Pool: "web", Raw: 5, Desire: 4, Granted: 3, Capacity: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	body := last
	mu.Unlock()
	for _, want := range []string{
		`palirria_stream_events_total{kind="completed",pool="web"} 2`,
		`palirria_stream_events_total{kind="shed",pool="batch"} 1`,
		`palirria_stream_desire_workers{pool="web"} 4`,
		`palirria_stream_granted_workers{pool="web"} 3`,
		`palirria_stream_capacity_workers{pool="web"} 8`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("push body missing %q:\n%s", want, body)
		}
	}

	// Counters accumulate across pushes.
	if err := s.Push([]Event{{Kind: KindCompleted, Pool: "web"}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	body = last
	mu.Unlock()
	if !strings.Contains(body, `palirria_stream_events_total{kind="completed",pool="web"} 3`) {
		t.Fatalf("counter did not accumulate:\n%s", body)
	}
}

func TestPromPushSinkNon2xxIsError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadGateway)
	}))
	defer srv.Close()
	s := NewPromPushSink(srv.URL, nil)
	if err := s.Push([]Event{{Kind: KindCompleted}}); err == nil {
		t.Fatal("want error on 502")
	}
}

func TestParseSink(t *testing.T) {
	if _, _, err := ParseSink("bogus"); err == nil {
		t.Fatal("want error for spec without scheme")
	}
	if _, _, err := ParseSink("ftp:thing"); err == nil {
		t.Fatal("want error for unknown scheme")
	}
	if _, _, err := ParseSink("prom:not-a-url"); err == nil {
		t.Fatal("want error for non-http prom target")
	}

	s, closer, err := ParseSink("prom:http://127.0.0.1:9/x")
	if err != nil || s.Name() != "prom" {
		t.Fatalf("prom spec: %v %v", s, err)
	}
	closer() //nolint:errcheck

	s, closer, err = ParseSink("jsonl:-")
	if err != nil || s.Name() != "jsonl" {
		t.Fatalf("stdout spec: %v %v", s, err)
	}
	closer() //nolint:errcheck

	path := filepath.Join(t.TempDir(), "ev.jsonl")
	s, closer, err = ParseSink("jsonl:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push([]Event{{Seq: 1, Kind: KindAdmitted}}); err != nil {
		t.Fatal(err)
	}
	if err := closer(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || !strings.Contains(string(b), `"admitted"`) {
		t.Fatalf("file sink: %v %q", err, b)
	}
}
