package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("palirria_tasks_total", "Tasks.").Add(7)
	PublishExpvar("palirria_test_serve", reg)
	PublishExpvar("palirria_test_serve", reg) // idempotent

	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "palirria_tasks_total 7") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !json.Valid([]byte(body)) {
		t.Fatalf("/debug/vars: code=%d, valid JSON=%v", code, json.Valid([]byte(body)))
	} else if !strings.Contains(body, "palirria_test_serve") {
		t.Fatalf("/debug/vars missing published registry: %q", body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code=%d body=%q", code, body)
	}
	if code, _ := get("/nonexistent"); code != 404 {
		t.Fatalf("unknown path: code=%d, want 404", code)
	}
	if !strings.HasPrefix(s.URL(), "http://") {
		t.Fatalf("URL = %q", s.URL())
	}
}
