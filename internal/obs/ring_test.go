package obs

import (
	"sync"
	"testing"
)

func TestRingBasic(t *testing.T) {
	r := newRing(8, false)
	for i := 0; i < 5; i++ {
		r.Emit(Event{TS: int64(i), Kind: KindSpawn, Worker: 1})
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	var got []Event
	r.Drain(func(ev Event) { got = append(got, ev) })
	if len(got) != 5 {
		t.Fatalf("drained %d, want 5", len(got))
	}
	for i, ev := range got {
		if ev.TS != int64(i) {
			t.Fatalf("event %d has TS %d", i, ev.TS)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
}

func TestRingDropNewest(t *testing.T) {
	r := newRing(4, false)
	for i := 0; i < 10; i++ {
		r.Emit(Event{TS: int64(i)})
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	var got []Event
	r.Drain(func(ev Event) { got = append(got, ev) })
	// Drop-newest keeps the oldest events.
	if len(got) != 4 || got[0].TS != 0 || got[3].TS != 3 {
		t.Fatalf("kept wrong events: %+v", got)
	}
}

func TestRingOverwrite(t *testing.T) {
	r := newRing(4, true)
	for i := 0; i < 10; i++ {
		r.Emit(Event{TS: int64(i)})
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0 in overwrite mode", r.Dropped())
	}
	var got []Event
	r.Drain(func(ev Event) { got = append(got, ev) })
	// Overwrite keeps the newest events.
	if len(got) != 4 || got[0].TS != 6 || got[3].TS != 9 {
		t.Fatalf("kept wrong events: %+v", got)
	}
}

func TestRingCapacityRounding(t *testing.T) {
	r := newRing(5, false)
	if len(r.buf) != 8 {
		t.Fatalf("capacity = %d, want 8", len(r.buf))
	}
	r = newRing(0, false)
	if len(r.buf) != 2 {
		t.Fatalf("capacity = %d, want 2", len(r.buf))
	}
}

// TestTracerConcurrentStress is the -race stress test of the ISSUE: N
// producers each own a ring and emit while a consumer goroutine drains
// the tracer continuously. Every event that is not reported dropped must
// be observed exactly once, unscrambled.
func TestTracerConcurrentStress(t *testing.T) {
	const (
		workers       = 8
		perWorker     = 20000
		smallRingSize = 256 // force drops to exercise the full protocol
	)
	tr := NewTracer(WithRingCap(smallRingSize))
	rings := make([]*Ring, workers)
	for i := range rings {
		rings[i] = tr.NewRing(false)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	type seen struct {
		sync.Mutex
		byWorker [workers][]int64
	}
	var s seen
	collect := func(d *TraceData) {
		s.Lock()
		defer s.Unlock()
		for _, ev := range d.Events {
			s.byWorker[ev.Worker] = append(s.byWorker[ev.Worker], ev.Arg)
		}
	}

	// Consumer: drain in a tight loop until producers finish.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				collect(tr.Drain())
				return
			default:
				collect(tr.Drain())
			}
		}
	}()

	var pwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		pwg.Add(1)
		go func(w int) {
			defer pwg.Done()
			r := rings[w]
			for i := 0; i < perWorker; i++ {
				r.Emit(Event{TS: int64(i), Kind: Kind(i % int(NumKinds)),
					Worker: int32(w), Arg: int64(i)})
			}
		}(w)
	}
	pwg.Wait()
	close(stop)
	wg.Wait()

	var dropped int64
	for _, r := range rings {
		dropped += r.Dropped()
	}
	var received int64
	for w := 0; w < workers; w++ {
		args := s.byWorker[w]
		received += int64(len(args))
		// Per-ring order must be preserved and free of duplicates: args
		// are the emission sequence, so they must be strictly increasing.
		for i := 1; i < len(args); i++ {
			if args[i] <= args[i-1] {
				t.Fatalf("worker %d: out-of-order or duplicated event: %d after %d",
					w, args[i], args[i-1])
			}
		}
	}
	if got, want := received+dropped, int64(workers*perWorker); got != want {
		t.Fatalf("received %d + dropped %d = %d, want %d", received, dropped, got, want)
	}
	if received == 0 {
		t.Fatal("consumer observed no events")
	}
}

func TestTracerDrainMerges(t *testing.T) {
	tr := NewTracer(WithRingCap(16))
	a := tr.NewRing(false)
	b := tr.NewRing(false)
	a.Emit(Event{TS: 10, Worker: 0})
	b.Emit(Event{TS: 5, Worker: 1})
	a.Emit(Event{TS: 20, Worker: 0})
	b.Emit(Event{TS: 15, Worker: 1})
	d := tr.Drain()
	if len(d.Events) != 4 {
		t.Fatalf("drained %d events, want 4", len(d.Events))
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].TS < d.Events[i-1].TS {
			t.Fatalf("events not time-ordered: %+v", d.Events)
		}
	}
}

func TestTracerSnapshots(t *testing.T) {
	tr := NewTracer()
	tr.RecordSnapshot(EstimatorSnapshot{Time: 1, Estimator: "palirria"})
	tr.RecordSnapshot(EstimatorSnapshot{Time: 2, Estimator: "palirria"})
	if got := tr.Snapshots(); len(got) != 2 || got[1].Time != 2 {
		t.Fatalf("Snapshots = %+v", got)
	}
	// Drain includes them too.
	if d := tr.Drain(); len(d.Snapshots) != 2 {
		t.Fatalf("Drain snapshots = %d, want 2", len(d.Snapshots))
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Fatalf("Kind(%d).String() = %q", k, s)
		}
	}
	if s := Kind(200).String(); s != "Kind(200)" {
		t.Fatalf("unknown kind = %q", s)
	}
}
