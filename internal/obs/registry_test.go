package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("palirria_steals_total", "Successful steals.")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("palirria_allotment_workers", "Current allotment size.")
	g.Set(9)
	reg.GaugeFunc("palirria_worker_queue_len", "Queue length.",
		func() float64 { return 3 }, Label{"core", "5"})
	reg.GaugeFunc("palirria_worker_queue_len", "Queue length.",
		func() float64 { return 0 }, Label{"core", "6"})

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# HELP palirria_steals_total Successful steals.",
		"# TYPE palirria_steals_total counter",
		"palirria_steals_total 42",
		"# TYPE palirria_allotment_workers gauge",
		"palirria_allotment_workers 9",
		`palirria_worker_queue_len{core="5"} 3`,
		`palirria_worker_queue_len{core="6"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// One TYPE header per family even with several series.
	if n := strings.Count(out, "# TYPE palirria_worker_queue_len"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("m", "", func() float64 { return 1 },
		Label{"l", `a"b\c` + "\nd"})
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `l="a\"b\\c\nd"`) {
		t.Fatalf("labels not escaped: %s", buf.String())
	}
}

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestGaugeFloat(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "")
	g.Set(1.5)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "g 1.5") {
		t.Fatalf("float gauge rendered wrong: %s", buf.String())
	}
}

func TestHistogramObserveAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got < 5.56 || got > 5.57 {
		t.Fatalf("sum = %g, want ~5.565", got)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramDefaultBucketsAndLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("admission_seconds", "", nil, Label{Key: "pool", Value: "web"})
	h.Observe(0.0003)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, `admission_seconds_bucket{pool="web",le="0.0005"} 1`) {
		t.Fatalf("labelled bucket missing:\n%s", out)
	}
	if !strings.Contains(out, `admission_seconds_count{pool="web"} 1`) {
		t.Fatalf("labelled count missing:\n%s", out)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); got != 2000 {
		t.Fatalf("sum = %g, want 2000", got)
	}
}

// TestWritePrometheusGolden locks the full output byte-for-byte:
// families sorted by name, series within a family sorted by label set,
// regardless of (deliberately scrambled) registration order.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	// Register out of order on both axes: family names and labels.
	reg.GaugeFunc("zz_last_metric", "Registered first, rendered last.",
		func() float64 { return 7 })
	reg.GaugeFunc("mid_queue_len", "Queue length.",
		func() float64 { return 3 }, Label{"core", "9"})
	reg.GaugeFunc("mid_queue_len", "Queue length.",
		func() float64 { return 1 }, Label{"core", "10"})
	reg.GaugeFunc("mid_queue_len", "Queue length.",
		func() float64 { return 2 }, Label{"core", "2"})
	c := reg.Counter("aa_first_total", "Registered last, rendered first.")
	c.Add(5)

	const golden = `# HELP aa_first_total Registered last, rendered first.
# TYPE aa_first_total counter
aa_first_total 5
# HELP mid_queue_len Queue length.
# TYPE mid_queue_len gauge
mid_queue_len{core="10"} 1
mid_queue_len{core="2"} 2
mid_queue_len{core="9"} 3
# HELP zz_last_metric Registered first, rendered last.
# TYPE zz_last_metric gauge
zz_last_metric 7
`
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		if buf.String() != golden {
			t.Fatalf("render %d differs from golden:\n--- got ---\n%s--- want ---\n%s",
				i, buf.String(), golden)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{0.01, 0.1, 1})

	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}

	// 100 samples: 50 in (0, 0.01], 40 in (0.01, 0.1], 10 in (0.1, 1].
	for i := 0; i < 50; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}

	// Median rank 50 is exactly the top of the first bucket.
	if got := h.Quantile(0.5); got != 0.01 {
		t.Fatalf("p50 = %g, want 0.01", got)
	}
	// Buckets span ranks 1..50, 51..90, 91..100; rank 99 interpolates
	// 9/10 into the third bucket.
	want := 0.1 + (1-0.1)*(99-90)/10.0
	if got := h.Quantile(0.99); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("p99 = %g, want %g", got, want)
	}
	// Quantiles are monotone and clamped.
	if h.Quantile(-1) > h.Quantile(0.5) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("clamping broken")
	}

	// Observations beyond the last finite bound clamp to it.
	h2 := r.Histogram("q2", "", []float64{0.01})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 0.01 {
		t.Fatalf("overflow quantile = %g, want last finite bound 0.01", got)
	}
}
