package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("palirria_steals_total", "Successful steals.")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("palirria_allotment_workers", "Current allotment size.")
	g.Set(9)
	reg.GaugeFunc("palirria_worker_queue_len", "Queue length.",
		func() float64 { return 3 }, Label{"core", "5"})
	reg.GaugeFunc("palirria_worker_queue_len", "Queue length.",
		func() float64 { return 0 }, Label{"core", "6"})

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# HELP palirria_steals_total Successful steals.",
		"# TYPE palirria_steals_total counter",
		"palirria_steals_total 42",
		"# TYPE palirria_allotment_workers gauge",
		"palirria_allotment_workers 9",
		`palirria_worker_queue_len{core="5"} 3`,
		`palirria_worker_queue_len{core="6"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// One TYPE header per family even with several series.
	if n := strings.Count(out, "# TYPE palirria_worker_queue_len"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("m", "", func() float64 { return 1 },
		Label{"l", `a"b\c` + "\nd"})
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `l="a\"b\\c\nd"`) {
		t.Fatalf("labels not escaped: %s", buf.String())
	}
}

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestGaugeFloat(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "")
	g.Set(1.5)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "g 1.5") {
		t.Fatalf("float gauge rendered wrong: %s", buf.String())
	}
}
