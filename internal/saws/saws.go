// Package saws implements a stable adaptive work-stealing estimator after
// Cao, Sun, Qian and Wu ("Stable Adaptive Work-Stealing for Concurrent
// Multi-core Runtime Systems", HPCC 2011), the third approach the paper's
// related-work section discusses: "a mechanism evolved from ASTEAL that
// uses the size of the task-queue as metric for requirements estimation.
// Their method approximates the values using statistical sampling."
//
// Unlike Palirria it needs no victim-selection discipline and inspects a
// random sample rather than the specific X/Z classes; unlike ASTEAL it
// reads queue sizes (future work) rather than wasted cycles (past
// behaviour). It therefore sits exactly between the two, which makes it a
// useful calibration point: queue-size estimation without DVS pays for its
// sampling noise with oscillation, which is the gap Palirria's determinism
// closes.
package saws

import (
	"palirria/internal/core"
	"palirria/internal/topo"
	"palirria/internal/xrand"
)

// Defaults.
const (
	// DefaultSampleSize is the number of workers sampled per quantum.
	DefaultSampleSize = 4
	// DefaultSmoothing is the exponential smoothing factor (x100) applied
	// to the desire for stability.
	DefaultSmoothing = 50
)

// SAWS estimates the desired worker count from a statistical sample of
// task-queue sizes: the sampled mean queue length, scaled to the
// allotment, approximates the outstanding stealable tasks; each
// outstanding task could occupy one more worker, and busy workers remain
// needed. Exponential smoothing damps the sampling noise (the "stable"
// part of the algorithm's name).
type SAWS struct {
	// SampleSize is the number of workers sampled per quantum.
	SampleSize int
	// Smoothing (0..100) blends the new estimate with the previous desire:
	// 0 keeps the old desire forever, 100 jumps instantly.
	Smoothing int

	rng     *xrand.Xoshiro256
	desire  float64
	started bool
}

var _ core.Estimator = (*SAWS)(nil)

// New returns a SAWS estimator with the default parameters and seed.
func New(seed uint64) *SAWS {
	return &SAWS{
		SampleSize: DefaultSampleSize,
		Smoothing:  DefaultSmoothing,
		rng:        xrand.NewXoshiro256(xrand.Hash64(seed ^ 0x5a5a5a5a)),
	}
}

// Name implements core.Estimator.
func (s *SAWS) Name() string { return "saws" }

// Estimate implements core.Estimator.
func (s *SAWS) Estimate(snap *core.Snapshot) int {
	cur := snap.Allotment.Size()
	if !s.started {
		s.desire = float64(cur)
		s.started = true
	}
	members := snap.Allotment.Members()
	k := s.SampleSize
	if k > len(members) {
		k = len(members)
	}
	if k < 1 {
		k = 1
	}
	// Sample k distinct members uniformly.
	perm := s.rng.Perm(len(members))
	var queued, busy int
	for i := 0; i < k; i++ {
		ws := snap.Workers[members[perm[i]]]
		if ws == nil {
			continue
		}
		queued += ws.QueueLen
		if ws.Busy {
			busy++
		}
	}
	// Scale the sample to the allotment: estimated outstanding stealable
	// tasks plus estimated busy workers = utilizable worker count.
	scale := float64(len(members)) / float64(k)
	estimate := (float64(queued) + float64(busy)) * scale
	if max := float64(snap.Allotment.Mesh().Usable()); estimate > max {
		estimate = max
	}
	if estimate < 1 {
		estimate = 1
	}
	alpha := float64(s.Smoothing) / 100
	s.desire = (1-alpha)*s.desire + alpha*estimate
	d := int(s.desire + 0.5)
	if d < 1 {
		d = 1
	}
	return d
}

// Granted implements core.Estimator; SAWS derives nothing from grants.
func (s *SAWS) Granted(workers int) {}

// Desire exposes the smoothed desire for tests.
func (s *SAWS) Desire() float64 { return s.desire }

// sampleIDs is exported for white-box tests via the package.
func (s *SAWS) sampleIDs(members []topo.CoreID, k int) []topo.CoreID {
	perm := s.rng.Perm(len(members))
	out := make([]topo.CoreID, 0, k)
	for i := 0; i < k && i < len(perm); i++ {
		out = append(out, members[perm[i]])
	}
	return out
}
