package saws

import (
	"testing"

	"palirria/internal/core"
	"palirria/internal/topo"
)

func snap(t testing.TB, d int, queue int, busy bool) *core.Snapshot {
	t.Helper()
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	a, err := topo.NewAllotment(m, 20, d)
	if err != nil {
		t.Fatal(err)
	}
	ws := make(map[topo.CoreID]*core.WorkerSnapshot, a.Size())
	for _, id := range a.Members() {
		ws[id] = &core.WorkerSnapshot{ID: id, QueueLen: queue, Busy: busy}
	}
	return &core.Snapshot{
		Allotment:     a,
		Class:         topo.Classify(a),
		Workers:       ws,
		QuantumCycles: 50000,
	}
}

func TestSaturatedQueuesGrow(t *testing.T) {
	s := New(1)
	var got int
	for i := 0; i < 10; i++ {
		got = s.Estimate(snap(t, 1, 3, true)) // everyone busy with 3 queued
	}
	if got <= 5 {
		t.Fatalf("Estimate = %d, want growth beyond 5", got)
	}
}

func TestIdleEmptyShrinks(t *testing.T) {
	s := New(1)
	// Start from a large allotment with empty queues and idle workers.
	var got int
	for i := 0; i < 10; i++ {
		got = s.Estimate(snap(t, 4, 0, false))
	}
	if got != 1 {
		t.Fatalf("Estimate = %d, want shrink toward 1", got)
	}
}

func TestBusyNoQueueHolds(t *testing.T) {
	// All busy, nothing queued: the estimate converges to about the
	// current busy count (all members), not above.
	s := New(1)
	var got int
	for i := 0; i < 20; i++ {
		got = s.Estimate(snap(t, 2, 0, true))
	}
	if got < 10 || got > 13 {
		t.Fatalf("Estimate = %d, want ~12 (the busy population)", got)
	}
}

func TestSmoothingDampsJumps(t *testing.T) {
	fast := &SAWS{SampleSize: 4, Smoothing: 100, rng: New(1).rng}
	slow := &SAWS{SampleSize: 4, Smoothing: 10, rng: New(1).rng}
	f := fast.Estimate(snap(t, 1, 10, true))
	sl := slow.Estimate(snap(t, 1, 10, true))
	if sl >= f {
		t.Fatalf("smoothing did not damp: slow %d >= fast %d", sl, f)
	}
}

func TestDeterministicSampling(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 5; i++ {
		if a.Estimate(snap(t, 2, 1, true)) != b.Estimate(snap(t, 2, 1, true)) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestCapAtUsable(t *testing.T) {
	s := &SAWS{SampleSize: 4, Smoothing: 100, rng: New(2).rng}
	got := s.Estimate(snap(t, 4, 1000, true))
	if got > 30 {
		t.Fatalf("Estimate = %d, above the 30 usable cores", got)
	}
}

func TestName(t *testing.T) {
	if New(1).Name() != "saws" {
		t.Fatal("name wrong")
	}
	New(1).Granted(5) // no-op
}

func TestSampleIDsDistinct(t *testing.T) {
	s := New(3)
	sn := snap(t, 3, 0, false)
	ids := s.sampleIDs(sn.Allotment.Members(), 5)
	seen := map[topo.CoreID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate sample %d", id)
		}
		seen[id] = true
	}
	if len(ids) != 5 {
		t.Fatalf("samples = %d", len(ids))
	}
}
