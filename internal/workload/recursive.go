package workload

import (
	"fmt"

	"palirria/internal/task"
)

// Fib is recursive Fibonacci in WOOL's canonical shape: SPAWN(fib(n-1)),
// CALL(fib(n-2)), SYNC, add. Input fields: N = depth, Grain = leaf work,
// Extra[0] = internal (addition) work.
var Fib = register(&Def{
	Name:            "fib",
	Profile:         "embarrassingly parallel, rather finely grained, scales linearly",
	PaperInputSim:   "input 40",
	PaperInputLinux: "input 42",
	Build:           buildFib,
	Inputs: map[Platform]Input{
		Simulator: {N: 24, Grain: 220, Extra: []int64{40}},
		NUMA:      {N: 26, Grain: 220, Extra: []int64{40}},
	},
})

func buildFib(in Input) *task.Spec {
	add := int64(20)
	if len(in.Extra) > 0 {
		add = in.Extra[0]
	}
	return fibSpec(int(in.N), in.Grain, add)
}

func fibSpec(n int, leaf, add int64) *task.Spec {
	if n < 2 {
		s := task.Leaf(fmt.Sprintf("fib(%d)", n), leaf)
		s.Footprint = 64
		return s
	}
	return &task.Spec{
		Label:     fmt.Sprintf("fib(%d)", n),
		Footprint: 64,
		Ops: []task.Op{
			task.Spawn(func() *task.Spec { return fibSpec(n-1, leaf, add) }),
			task.Call(func() *task.Spec { return fibSpec(n-2, leaf, add) }),
			task.Sync(),
			task.Compute(add),
		},
	}
}

// NQueens models the BOTS nQueens search: a wide, balanced tree of depth
// Cutoff whose branching factor shrinks with depth (placements get pruned),
// with sequential leaf searches of varying granularity below the cut-off.
// Input fields: N = board size, Cutoff = parallel depth, Grain = leaf work
// unit, Seed = pruning jitter.
var NQueens = register(&Def{
	Name:            "nqueens",
	Profile:         "fine grained, wide and balanced tree; tasks of varying granularity, scales sub-linearly with a small cut-off",
	PaperInputSim:   "input 13, cut-off 3",
	PaperInputLinux: "input 14, cut-off 3",
	Build:           buildNQueens,
	Inputs: map[Platform]Input{
		Simulator: {N: 13, Cutoff: 3, Grain: 900, Seed: 1013},
		NUMA:      {N: 14, Cutoff: 3, Grain: 900, Seed: 1014},
	},
})

func buildNQueens(in Input) *task.Spec {
	return nqueensSpec(in, 0, 0)
}

func nqueensSpec(in Input, depth int, path uint64) *task.Spec {
	n := int(in.N)
	if depth >= int(in.Cutoff) {
		// Sequential search of the remaining n-depth rows. Granularity
		// varies with the position in the tree: some branches prune early,
		// some explore deeply (factor 1..8).
		h := shapeHash(in.Seed, path)
		remaining := int64(n - depth)
		work := varyGrain(in.Grain*remaining, h, 8)
		s := task.Leaf(fmt.Sprintf("nq-leaf d%d", depth), work)
		s.Footprint = 256
		return s
	}
	// Valid placements at this depth: roughly n - depth, minus a small
	// deterministic pruning jitter of 0..2.
	h := shapeHash(in.Seed, path)
	branch := n - depth - int(h%3)
	if branch < 1 {
		branch = 1
	}
	children := make([]task.Builder, branch)
	for i := 0; i < branch; i++ {
		cp := childPath(path, i)
		children[i] = func() *task.Spec { return nqueensSpec(in, depth+1, cp) }
	}
	s := task.SpawnJoin(fmt.Sprintf("nq d%d", depth), int64(branch)*8, children, 0, int64(branch)*4)
	s.Footprint = 256
	return s
}

// Strassen models BOTS Strassen matrix multiplication: seven recursive
// children per node, spawned gradually (matrix additions are computed
// between consecutive spawns), recursion stopped by both a size cut-off and
// a depth cut-off, with coarse sequential leaves. Input fields: N = matrix
// dimension, Cutoff = leaf dimension, Extra[0] = depth cut-off, Grain =
// work per leaf matrix element.
var Strassen = register(&Def{
	Name:            "strassen",
	Profile:         "quite irregular and coarser grained; just enough gradually spawned tasks for a small number of workers",
	PaperInputSim:   "input 1024,32, cut-off 64,3",
	PaperInputLinux: "input 1024,32, cut-off 64,3",
	Build:           buildStrassen,
	Inputs: map[Platform]Input{
		// Coarse on both platforms: the paper configures Strassen "to
		// produce just enough tasks to utilize a small number of workers",
		// and its Fig. 5 shows negative scaling beyond 12 workers.
		Simulator: {N: 512, Cutoff: 128, Grain: 2, Extra: []int64{2}},
		NUMA:      {N: 1024, Cutoff: 128, Grain: 2, Extra: []int64{3}},
	},
})

func buildStrassen(in Input) *task.Spec {
	maxDepth := int64(3)
	if len(in.Extra) > 0 {
		maxDepth = in.Extra[0]
	}
	return strassenSpec(in.N, in.Cutoff, in.Grain, maxDepth)
}

func strassenSpec(n, cutoff, grain, depthLeft int64) *task.Spec {
	if n <= cutoff || depthLeft <= 0 {
		// Sequential multiply of an n x n block: ~ n^2.8, modelled as
		// grain * n^2 * (n/16) to stay integral but super-quadratic.
		work := grain * n * n * max64(n/16, 1) / 4
		s := task.Leaf(fmt.Sprintf("strassen-leaf %d", n), work)
		s.Footprint = 3 * n * n * 8
		s.MemBound = strassenMemBound
		return s
	}
	half := n / 2
	// The seven Strassen products, each preceded by the submatrix additions
	// that form its operands — this is the "gradual spawning" the paper
	// calls out: tasks become stealable one by one, not in a burst.
	addWork := grain * half * half / 2
	ops := make([]task.Op, 0, 7*2+8)
	for i := 0; i < 7; i++ {
		ops = append(ops, task.Compute(addWork))
		ops = append(ops, task.Spawn(func() *task.Spec {
			return strassenSpec(half, cutoff, grain, depthLeft-1)
		}))
	}
	for i := 0; i < 7; i++ {
		ops = append(ops, task.Sync())
	}
	// Final combine: C assembled from the seven products.
	ops = append(ops, task.Compute(grain*half*half))
	return &task.Spec{
		Label:     fmt.Sprintf("strassen %d", n),
		Footprint: 3 * n * n * 8,
		MemBound:  strassenMemBound,
		Ops:       ops,
	}
}

// strassenMemBound makes Strassen flat-to-negative scaling on the NUMA
// model beyond roughly a dozen workers, as the paper's Fig. 7 shows: its
// submatrix additions stream operands while the multiply leaves stay
// cache-resident.
const strassenMemBound = 0.3

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
