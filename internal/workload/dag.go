package workload

import (
	"fmt"
	"sort"

	"palirria/internal/task"
)

// DAGStage is one node of a structured-job workload: a task-tree builder
// plus the indices of the stages that must complete before it starts. A
// stage graph is the workload-level shape handed to the serving layer's
// SubmitDAG (each stage becomes one DAG node, its tree realized by the
// runtime adapter).
type DAGStage struct {
	// Label names the stage for reports and event streams.
	Label string
	// Deps lists predecessor stage indices into the built slice.
	Deps []int
	// Build constructs the stage's task tree (called once per run).
	Build func() *task.Spec
}

// DAGDef describes one structured-job workload: a builder producing the
// stage graph for an input, plus per-platform inputs — the DAG analogue
// of Def.
type DAGDef struct {
	// Name is the canonical workload name ("pipeline", "mapreduce").
	Name string
	// Profile is a one-line parallelism-profile note.
	Profile string
	// Build constructs the stage graph for the given input.
	Build func(in Input) []DAGStage
	// Inputs holds the scaled inputs per platform.
	Inputs map[Platform]Input
}

// Stages builds the workload's stage graph for platform p.
func (d *DAGDef) Stages(p Platform) []DAGStage { return d.Build(d.Inputs[p]) }

var dagRegistry = map[string]*DAGDef{}

func registerDAG(d *DAGDef) *DAGDef {
	if _, dup := dagRegistry[d.Name]; dup {
		panic("workload: duplicate DAG " + d.Name)
	}
	dagRegistry[d.Name] = d
	return d
}

// GetDAG returns the DAG workload named name, or an error listing valid
// names.
func GetDAG(name string) (*DAGDef, error) {
	if d, ok := dagRegistry[name]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("workload: unknown DAG %q (have %v)", name, DAGNames())
}

// DAGNames returns all registered DAG workload names, sorted.
func DAGNames() []string {
	out := make([]string, 0, len(dagRegistry))
	for n := range dagRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// stageFan builds one stage's task tree: a binary fan over width leaves of
// grain cycles each, the same repopulating shape stressBatch uses so a
// stolen subtree keeps feeding thieves.
func stageFan(label string, base, width, grain int64) *task.Spec {
	if width <= 1 {
		return task.Leaf(label, grain)
	}
	half := width / 2
	return &task.Spec{
		Label: fmt.Sprintf("%s %d+%d", label, base, width),
		Ops: []task.Op{
			task.Spawn(func() *task.Spec { return stageFan(label, base, half, grain) }),
			task.Spawn(func() *task.Spec { return stageFan(label, base+half, width-half, grain) }),
			task.Sync(),
			task.Sync(),
		},
	}
}

// Pipeline is a linear chain of parallel stages: stage i+1 starts only
// when stage i's whole fan has completed. Within a stage the parallelism
// is wide (the fan width); across stages it collapses to the dependency
// chain — the estimator's desire should breathe once per stage boundary.
// Input fields: N = stage count, Grain = leaf work, Extra[0] = fan width
// per stage.
var PipelineDAG = registerDAG(&DAGDef{
	Name:    "pipeline",
	Profile: "linear stage chain; wide inside a stage, serialized across stages — desire breathes at every boundary",
	Build:   buildPipelineDAG,
	Inputs: map[Platform]Input{
		Simulator: {N: 6, Grain: 2_000, Extra: []int64{64}},
		NUMA:      {N: 6, Grain: 4_000, Extra: []int64{64}},
	},
})

func buildPipelineDAG(in Input) []DAGStage {
	width := int64(64)
	if len(in.Extra) > 0 && in.Extra[0] > 0 {
		width = in.Extra[0]
	}
	stages := make([]DAGStage, in.N)
	for i := int64(0); i < in.N; i++ {
		i := i
		var deps []int
		if i > 0 {
			deps = []int{int(i - 1)}
		}
		stages[i] = DAGStage{
			Label: fmt.Sprintf("pipeline-stage-%d", i),
			Deps:  deps,
			Build: func() *task.Spec {
				return stageFan(fmt.Sprintf("stage-%d", i), 0, width, in.Grain)
			},
		}
	}
	return stages
}

// MapReduceDAG fans a splitter out to N parallel mappers joined by a
// single reducer: maximum width in the middle, a serial bottleneck at both
// ends. Input fields: N = mapper count, Grain = leaf work, Extra[0] =
// leaves per mapper.
var MapReduceDAG = registerDAG(&DAGDef{
	Name:    "mapreduce",
	Profile: "splitter -> N parallel mappers -> reducer; bulk parallelism framed by serial bottlenecks",
	Build:   buildMapReduceDAG,
	Inputs: map[Platform]Input{
		Simulator: {N: 16, Grain: 2_000, Extra: []int64{32}},
		NUMA:      {N: 16, Grain: 4_000, Extra: []int64{32}},
	},
})

func buildMapReduceDAG(in Input) []DAGStage {
	leaves := int64(32)
	if len(in.Extra) > 0 && in.Extra[0] > 0 {
		leaves = in.Extra[0]
	}
	stages := make([]DAGStage, 0, in.N+2)
	stages = append(stages, DAGStage{
		Label: "split",
		Build: func() *task.Spec { return task.Leaf("split", in.Grain) },
	})
	reduceDeps := make([]int, 0, in.N)
	for m := int64(0); m < in.N; m++ {
		m := m
		stages = append(stages, DAGStage{
			Label: fmt.Sprintf("map-%d", m),
			Deps:  []int{0},
			Build: func() *task.Spec {
				return stageFan(fmt.Sprintf("map-%d", m), 0, leaves, in.Grain)
			},
		})
		reduceDeps = append(reduceDeps, int(m+1))
	}
	stages = append(stages, DAGStage{
		Label: "reduce",
		Deps:  reduceDeps,
		Build: func() *task.Spec { return task.Leaf("reduce", in.Grain) },
	})
	return stages
}
