package workload

import (
	"fmt"

	"palirria/internal/task"
)

// SparseLU models BOTS SparseLU factorization: a wavefront of phases over
// an N x N blocked matrix. Phase k factors the diagonal block serially,
// then updates the remaining (N-k-1)^2 trailing blocks in parallel (only a
// deterministic subset is non-empty — the matrix is sparse). Parallelism
// therefore *shrinks* phase by phase: wide at the start, serial at the
// end — the reverse of Bursty and a classic adaptive-shrink stressor.
// Input fields: N = blocks per side, Grain = work per block element,
// Extra[0] = block dimension, Extra[1] = sparsity permille (non-empty
// blocks).
var SparseLU = register(&Def{
	Name:            "sparselu",
	Profile:         "wavefront phases with shrinking parallelism; sparse irregular updates",
	PaperInputSim:   "(extension; BOTS sparselu)",
	PaperInputLinux: "(extension; BOTS sparselu)",
	Build:           buildSparseLU,
	Inputs: map[Platform]Input{
		Simulator: {N: 10, Grain: 1, Extra: []int64{32, 600}, Seed: 31},
		NUMA:      {N: 12, Grain: 1, Extra: []int64{32, 600}, Seed: 32},
	},
})

func buildSparseLU(in Input) *task.Spec {
	bs, sparsity := int64(32), int64(600)
	if len(in.Extra) > 0 {
		bs = in.Extra[0]
	}
	if len(in.Extra) > 1 {
		sparsity = in.Extra[1]
	}
	return sparseLUPhase(in, 0, bs, sparsity)
}

// sparseLUPhase is one wavefront step: factor the diagonal, update the
// trailing submatrix in parallel, then recurse into the next phase.
func sparseLUPhase(in Input, k int64, bs, sparsity int64) *task.Spec {
	n := in.N
	if k >= n-1 {
		// Final diagonal block.
		return task.Leaf("lu-final", in.Grain*bs*bs)
	}
	blockWork := in.Grain * bs * bs
	var updates []task.Builder
	for i := k + 1; i < n; i++ {
		for j := k + 1; j < n; j++ {
			h := shapeHash(in.Seed, (uint64(k)<<40)^(uint64(i)<<20)^uint64(j))
			if int64(h%1000) >= sparsity {
				continue // empty block: sparse matrix
			}
			updates = append(updates, func() *task.Spec {
				s := task.Leaf("lu-update", blockWork)
				s.Footprint = bs * bs * 8
				s.MemBound = 0.1
				return s
			})
		}
	}
	ops := make([]task.Op, 0, len(updates)*2+4)
	// Serial diagonal factorization plus the row/column panels.
	ops = append(ops, task.Compute(blockWork*2))
	// Parallel trailing updates via a nested fan so work flows outward.
	ops = append(ops, task.Call(func() *task.Spec {
		return fanOf(fmt.Sprintf("lu-phase %d", k), updates)
	}))
	// Next wavefront phase.
	ops = append(ops, task.Call(func() *task.Spec {
		return sparseLUPhase(in, k+1, bs, sparsity)
	}))
	return &task.Spec{Label: fmt.Sprintf("sparselu %d", k), Ops: ops}
}

// fanOf runs the builders as a balanced nested fork/join tree.
func fanOf(label string, children []task.Builder) *task.Spec {
	switch len(children) {
	case 0:
		return task.Leaf(label+"-empty", 1)
	case 1:
		return children[0]()
	}
	mid := len(children) / 2
	left, right := children[:mid], children[mid:]
	return &task.Spec{
		Label: label,
		Ops: []task.Op{
			task.Spawn(func() *task.Spec { return fanOf(label, left) }),
			task.Call(func() *task.Spec { return fanOf(label, right) }),
			task.Sync(),
		},
	}
}

// Alignment models BOTS Protein Alignment: all-pairs sequence comparisons,
// embarrassingly parallel with coarse, uneven task sizes (pair cost is the
// product of the two sequence lengths). A contrast case: huge parallelism
// that any estimator should saturate quickly, with imbalance entirely at
// the leaf level. Input fields: N = sequences, Grain = work per length
// product unit, Seed = length jitter.
var Alignment = register(&Def{
	Name:            "alignment",
	Profile:         "all-pairs comparisons: embarrassingly parallel, coarse uneven leaves",
	PaperInputSim:   "(extension; BOTS alignment)",
	PaperInputLinux: "(extension; BOTS alignment)",
	Build:           buildAlignment,
	Inputs: map[Platform]Input{
		Simulator: {N: 48, Grain: 2, Seed: 71},
		NUMA:      {N: 64, Grain: 2, Seed: 72},
	},
})

func buildAlignment(in Input) *task.Spec {
	n := int(in.N)
	// Deterministic sequence lengths in [20, 120).
	length := func(i int) int64 {
		return 20 + int64(shapeHash(in.Seed, uint64(i))%100)
	}
	var pairs []task.Builder
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			li, lj := length(i), length(j)
			pairs = append(pairs, func() *task.Spec {
				s := task.Leaf("align-pair", in.Grain*li*lj)
				s.Footprint = (li + lj) * 8
				return s
			})
		}
	}
	return fanOf("alignment", pairs)
}
