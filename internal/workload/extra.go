package workload

import (
	"fmt"

	"palirria/internal/task"
)

// UTS is the Unbalanced Tree Search benchmark (Olivier et al.), the
// standard stress test for dynamic load balancing beyond the paper's
// suite: a tree whose shape is determined by per-node hashes, so the
// imbalance cannot be predicted from the parameters. Binomial variant:
// the root has N children; every other node has Extra[0] children with
// probability Extra[1]/1000, none otherwise. Grain is per-node work.
var UTS = register(&Def{
	Name:            "uts",
	Profile:         "unbalanced tree search: unpredictable imbalance, stresses dynamic load balancing",
	PaperInputSim:   "(extension; Olivier et al. 2006)",
	PaperInputLinux: "(extension; Olivier et al. 2006)",
	Build:           buildUTS,
	Inputs: map[Platform]Input{
		// m=8, q=0.114: subcritical (m*q < 1), expected subtree size
		// 1/(1-mq) ~ 11.4 nodes but with heavy tails.
		Simulator: {N: 320, Grain: 600, Extra: []int64{8, 114}, Seed: 577},
		NUMA:      {N: 640, Grain: 600, Extra: []int64{8, 114}, Seed: 578},
	},
})

func buildUTS(in Input) *task.Spec {
	m, qm := int64(8), int64(114)
	if len(in.Extra) > 0 {
		m = in.Extra[0]
	}
	if len(in.Extra) > 1 {
		qm = in.Extra[1]
	}
	children := make([]task.Builder, in.N)
	for i := int64(0); i < in.N; i++ {
		cp := childPath(0, int(i))
		children[i] = func() *task.Spec { return utsNode(in, cp, m, qm, 0) }
	}
	return task.SpawnJoin("uts-root", in.Grain, children, 0, in.Grain)
}

// utsNode expands one interior node: hash decides whether it roots a
// further m-way subtree or terminates. A depth bound guards against the
// (astronomically unlikely, but simulation-budget-relevant) runaway tail.
func utsNode(in Input, path uint64, m, qm int64, depth int) *task.Spec {
	h := shapeHash(in.Seed, path)
	work := varyGrain(in.Grain, h>>32, 4)
	if depth >= 40 || int64(h%1000) >= qm {
		s := task.Leaf("uts-leaf", work)
		s.Footprint = 128
		return s
	}
	children := make([]task.Builder, m)
	for i := int64(0); i < m; i++ {
		cp := childPath(path, int(i))
		children[i] = func() *task.Spec { return utsNode(in, cp, m, qm, depth+1) }
	}
	s := task.SpawnJoin(fmt.Sprintf("uts d%d", depth), work, children, 0, 0)
	s.Footprint = 128
	return s
}

// Matmul is blocked recursive matrix multiplication (the Cilk matmul
// shape): C quadrants computed by eight recursive multiplies in two
// parallel waves of four, sequential below the block cut-off. A regular,
// cache-friendly contrast to Strassen's irregular seven-way recursion.
// Input fields: N = matrix dimension, Cutoff = block size, Grain = work
// per block element.
var Matmul = register(&Def{
	Name:            "matmul",
	Profile:         "regular divide-and-conquer, coarse blocks, two synchronization waves per level",
	PaperInputSim:   "(extension)",
	PaperInputLinux: "(extension)",
	Build:           buildMatmul,
	Inputs: map[Platform]Input{
		Simulator: {N: 512, Cutoff: 64, Grain: 1},
		NUMA:      {N: 512, Cutoff: 32, Grain: 1},
	},
})

func buildMatmul(in Input) *task.Spec {
	return matmulSpec(in.N, in.Cutoff, in.Grain)
}

func matmulSpec(n, cutoff, grain int64) *task.Spec {
	if n <= cutoff {
		// Sequential block multiply: n^3 work over n^2 elements.
		s := task.Leaf(fmt.Sprintf("matmul-leaf %d", n), grain*n*n*n/16)
		s.Footprint = 3 * n * n * 8
		s.MemBound = 0.1
		return s
	}
	half := n / 2
	child := func() *task.Spec { return matmulSpec(half, cutoff, grain) }
	ops := make([]task.Op, 0, 18)
	// Wave 1: C11 += A11*B11, C12 += A11*B12, C21 += A21*B11, C22 += A21*B12.
	for i := 0; i < 4; i++ {
		ops = append(ops, task.Spawn(child))
	}
	for i := 0; i < 4; i++ {
		ops = append(ops, task.Sync())
	}
	// Wave 2: the other four products accumulate into the same quadrants,
	// hence the barrier between waves.
	for i := 0; i < 4; i++ {
		ops = append(ops, task.Spawn(child))
	}
	for i := 0; i < 4; i++ {
		ops = append(ops, task.Sync())
	}
	return &task.Spec{
		Label:     fmt.Sprintf("matmul %d", n),
		Footprint: 3 * n * n * 8,
		MemBound:  0.1,
		Ops:       ops,
	}
}
