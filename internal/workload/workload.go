// Package workload provides the evaluation programs of the paper as
// parameterized fork/join task trees.
//
// The paper evaluates FFT, nQueens, Sort and Strassen from the BOTS suite
// plus the micro-benchmarks Fib, Stress and Skew (paper §5, inputs in its
// Fig. 4). The estimators under study never observe the arithmetic performed
// inside tasks — only the tree's shape, grain and timing — so each workload
// here reproduces the published *parallelism profile*:
//
//	Fib      embarrassingly parallel, finely grained, scales linearly
//	nQueens  wide and balanced tree, fine grained, varying granularity,
//	         scales sub-linearly with a small cut-off
//	FFT      divide-and-conquer with parallel twiddle phases; cache-thrashing
//	Sort     a sequence of sections of varying parallelism, each starting at
//	         the source worker; cache-thrashing and irregular
//	Strassen quite irregular, coarse grained, few gradually spawned tasks
//	Stress   strains the runtime by varying the grain size
//	Skew     Stress variant with an unbalanced task tree
//
// Two further synthetic programs support the analysis sections: LOOPY
// (Sen's adversarial program discussed in §4.1.1) and Bursty (fluctuating
// parallelism for the quantum-length ablation and the adaptive-server
// example).
//
// Inputs are scaled down from the paper's so the full evaluation runs in
// minutes on a laptop rather than hours on a 48-core machine; the scaling
// preserves tree shape and relative grain (see DESIGN.md substitutions).
package workload

import (
	"fmt"
	"sort"

	"palirria/internal/task"
	"palirria/internal/xrand"
)

// Platform selects an input scale.
type Platform int

const (
	// Simulator is the ideal 32-core platform (paper: Simics + Barrelfish).
	Simulator Platform = iota
	// NUMA is the 48-core real-hardware platform (paper: Linux + Opteron).
	NUMA
)

// String names the platform.
func (p Platform) String() string {
	if p == Simulator {
		return "barrelfish-sim"
	}
	return "linux-numa"
}

// Input parameterizes one workload instance.
type Input struct {
	// N is the main size parameter (problem size or recursion depth).
	N int64
	// Cutoff bounds recursion depth or sequential-leaf size; 0 = none.
	Cutoff int64
	// Grain scales leaf work in cycles.
	Grain int64
	// Extra carries workload-specific parameters (documented per workload).
	Extra []int64
	// Seed drives deterministic pseudo-random shape variation.
	Seed uint64
}

// String renders the input compactly, e.g. "n=27 cutoff=0 grain=40".
func (in Input) String() string {
	s := fmt.Sprintf("n=%d", in.N)
	if in.Cutoff != 0 {
		s += fmt.Sprintf(" cutoff=%d", in.Cutoff)
	}
	if in.Grain != 0 {
		s += fmt.Sprintf(" grain=%d", in.Grain)
	}
	for i, e := range in.Extra {
		s += fmt.Sprintf(" x%d=%d", i, e)
	}
	return s
}

// Def describes one workload: its builder plus the per-platform inputs the
// benchmark harness uses and the original inputs from the paper's Fig. 4.
type Def struct {
	// Name is the canonical workload name ("fib", "nqueens", ...).
	Name string
	// Profile is the parallelism-profile note from the paper.
	Profile string
	// PaperInputSim / PaperInputLinux quote the paper's Fig. 4 rows.
	PaperInputSim, PaperInputLinux string
	// Build constructs the root task for the given input.
	Build func(in Input) *task.Spec
	// Inputs holds the scaled inputs per platform.
	Inputs map[Platform]Input
}

// Root builds the workload's root task for platform p.
func (d *Def) Root(p Platform) *task.Spec { return d.Build(d.Inputs[p]) }

// registry of all workloads, keyed by name.
var registry = map[string]*Def{}

func register(d *Def) *Def {
	if _, dup := registry[d.Name]; dup {
		panic("workload: duplicate " + d.Name)
	}
	registry[d.Name] = d
	return d
}

// Get returns the workload named name, or an error listing valid names.
func Get(name string) (*Def, error) {
	if d, ok := registry[name]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("workload: unknown %q (have %v)", name, Names())
}

// Names returns all registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperSet returns the seven workloads of the paper's evaluation, in the
// order its figures list them.
func PaperSet() []*Def {
	names := []string{"fft", "fib", "nqueens", "skew", "sort", "strassen", "stress"}
	out := make([]*Def, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// shapeHash derives a deterministic per-node value from the workload seed
// and the node's path, independent of execution order.
func shapeHash(seed uint64, path uint64) uint64 {
	return xrand.Hash64(seed ^ xrand.Hash64(path))
}

// childPath extends a node path with child index i.
func childPath(path uint64, i int) uint64 {
	return path*0x100000001b3 + uint64(i) + 1
}

// varyGrain returns base scaled by a deterministic factor in [1, spread],
// derived from h. spread <= 1 returns base unchanged.
func varyGrain(base int64, h uint64, spread int64) int64 {
	if spread <= 1 {
		return base
	}
	return base * (1 + int64(h%uint64(spread)))
}

func log2int(n int64) int64 {
	var l int64
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return l
}
