package workload

import (
	"fmt"

	"palirria/internal/task"
)

// Stress strains the runtime by varying the grain size, as the paper
// describes, while keeping the task tree balanced. The root fans out into
// batches; each batch spawns leaves whose grain cycles deterministically
// through a spread of sizes. Input fields: N = total leaf tasks, Grain =
// base leaf work, Extra[0] = grain spread factor, Extra[1] = batch width.
//
// The paper's parameters ("10000,20,1,1" on Barrelfish, "10000,44,3" on
// Linux) map to N, Grain (scaled), spread and width.
var Stress = register(&Def{
	Name:            "stress",
	Profile:         "strains the runtime by varying the grain size; fine grained, spawns enough tasks early",
	PaperInputSim:   "input 10000,20,1,1",
	PaperInputLinux: "input 10000,44,3",
	Build:           buildStress,
	Inputs: map[Platform]Input{
		Simulator: {N: 10000, Grain: 400, Extra: []int64{5, 50}, Seed: 20},
		NUMA:      {N: 10000, Grain: 880, Extra: []int64{5, 50}, Seed: 44},
	},
})

func buildStress(in Input) *task.Spec {
	spread, width := int64(5), int64(50)
	if len(in.Extra) > 0 {
		spread = in.Extra[0]
	}
	if len(in.Extra) > 1 {
		width = in.Extra[1]
	}
	batches := (in.N + width - 1) / width
	children := make([]task.Builder, batches)
	for b := int64(0); b < batches; b++ {
		b := b
		children[b] = func() *task.Spec {
			return stressBatch(in, b, width, spread)
		}
	}
	return task.SpawnJoin("stress", 64, children, 0, 64)
}

// stressBatch is one batch: a nested binary fan over width leaves, so that
// stolen subtrees repopulate thieves' queues and the load can flow across
// the whole allotment.
func stressBatch(in Input, batch, width, spread int64) *task.Spec {
	return stressFan(in, batch*width, width, spread)
}

func stressFan(in Input, base, width, spread int64) *task.Spec {
	if width <= 1 {
		// Grain varies cyclically with the leaf's global index: the
		// deterministic "varying grain size" stressor.
		work := in.Grain * (1 + base%spread)
		s := task.Leaf("stress-leaf", work)
		s.Footprint = 128
		return s
	}
	half := width / 2
	return &task.Spec{
		Label:     fmt.Sprintf("stress-fan %d+%d", base, width),
		Footprint: 128,
		Ops: []task.Op{
			task.Spawn(func() *task.Spec { return stressFan(in, base, half, spread) }),
			task.Spawn(func() *task.Spec { return stressFan(in, base+half, width-half, spread) }),
			task.Sync(),
			task.Sync(),
		},
	}
}

// Skew is the paper's adaptation of Stress that produces an unbalanced task
// tree: child i of every interior node receives a depth budget shrinking
// with i, so the first children root deep subtrees while later children
// terminate immediately — load concentrates on few paths and fluctuates as
// those paths unwind. Input fields: N = depth budget of the root, Grain =
// leaf work, Extra[0] = branching factor, Extra[1] = grain spread.
var Skew = register(&Def{
	Name:            "skew",
	Profile:         "Stress variant with an unbalanced task tree",
	PaperInputSim:   "input 10000,20,1,1",
	PaperInputLinux: "input 10000,44,3",
	Build:           buildSkew,
	Inputs: map[Platform]Input{
		Simulator: {N: 9, Grain: 400, Extra: []int64{6, 5}, Seed: 21},
		NUMA:      {N: 10, Grain: 880, Extra: []int64{6, 5}, Seed: 45},
	},
})

func buildSkew(in Input) *task.Spec {
	branch, spread := int64(6), int64(5)
	if len(in.Extra) > 0 {
		branch = in.Extra[0]
	}
	if len(in.Extra) > 1 {
		spread = in.Extra[1]
	}
	return skewSpec(in, in.N, branch, spread, 0)
}

func skewSpec(in Input, depth, branch, spread int64, path uint64) *task.Spec {
	h := shapeHash(in.Seed, path)
	if depth <= 0 {
		s := task.Leaf("skew-leaf", varyGrain(in.Grain, h, spread))
		s.Footprint = 128
		return s
	}
	children := make([]task.Builder, branch)
	for i := int64(0); i < branch; i++ {
		i := i
		cp := childPath(path, int(i))
		children[i] = func() *task.Spec {
			// Child i gets depth-(i+1): child 0 roots a deep subtree,
			// the last children are leaves. This is the skew.
			return skewSpec(in, depth-i-1, branch, spread, cp)
		}
	}
	return task.SpawnJoin(fmt.Sprintf("skew d%d", depth),
		varyGrain(in.Grain/4, h, spread), children, 0, in.Grain/8)
}

// Loopy reproduces the LOOPY program from Sen's thesis that §4.1.1 of the
// paper discusses: a long serial chain in which each link spawns exactly one
// small stealable task and continues, so the program looks busy while no
// worker's queue ever holds more than one task. An estimator that requests
// workers on queue depth alone must not grow the allotment here; Palirria's
// L = µ(O_i) bound is what prevents it. Input fields: N = chain length,
// Grain = work per link, Extra[0] = side-task work.
var Loopy = register(&Def{
	Name:            "loopy",
	Profile:         "adversarial: looks highly parallel, but queues never hold more than one task",
	PaperInputSim:   "(from Sen 2004, §4.1.1 discussion)",
	PaperInputLinux: "(from Sen 2004, §4.1.1 discussion)",
	Build:           buildLoopy,
	Inputs: map[Platform]Input{
		Simulator: {N: 4000, Grain: 600, Extra: []int64{300}},
		NUMA:      {N: 8000, Grain: 600, Extra: []int64{300}},
	},
})

func buildLoopy(in Input) *task.Spec {
	side := int64(300)
	if len(in.Extra) > 0 {
		side = in.Extra[0]
	}
	return loopySpec(in.N, in.Grain, side)
}

func loopySpec(n, grain, side int64) *task.Spec {
	if n <= 0 {
		return task.Leaf("loopy-end", grain)
	}
	return &task.Spec{
		Label: fmt.Sprintf("loopy %d", n),
		Ops: []task.Op{
			// One small stealable side task...
			task.Spawn(func() *task.Spec { return task.Leaf("loopy-side", side) }),
			// ...while the chain continues serially via CALL.
			task.Compute(grain),
			task.Call(func() *task.Spec { return loopySpec(n-1, grain, side) }),
			task.Sync(),
		},
	}
}

// Bursty alternates sequential gaps with wide parallel bursts — the
// fluctuating-parallelism pattern (web servers with variable load) that
// motivates adaptive allotments in the paper's introduction, and the
// workload of the quantum-length ablation. Input fields: N = bursts,
// Extra[0] = burst width, Extra[1] = sequential gap work, Grain = leaf work.
var Bursty = register(&Def{
	Name:            "bursty",
	Profile:         "fluctuating parallelism: wide bursts separated by sequential gaps",
	PaperInputSim:   "(motivating pattern, §1)",
	PaperInputLinux: "(motivating pattern, §1)",
	Build:           buildBursty,
	Inputs: map[Platform]Input{
		Simulator: {N: 12, Grain: 2500, Extra: []int64{96, 60000}},
		NUMA:      {N: 12, Grain: 2500, Extra: []int64{160, 60000}},
	},
})

func buildBursty(in Input) *task.Spec {
	width, gap := int64(96), int64(60000)
	if len(in.Extra) > 0 {
		width = in.Extra[0]
	}
	if len(in.Extra) > 1 {
		gap = in.Extra[1]
	}
	return burstySpec(in.N, width, gap, in.Grain)
}

func burstySpec(bursts, width, gap, grain int64) *task.Spec {
	if bursts <= 0 {
		return task.Leaf("bursty-end", gap)
	}
	return &task.Spec{
		Label: fmt.Sprintf("bursty %d", bursts),
		Ops: []task.Op{
			// Sequential gap first: parallelism collapses to 1 between
			// bursts.
			task.Compute(gap),
			// The burst: a nested fork/join fan-out, so stolen subtrees
			// repopulate thieves' queues the way real task parallelism
			// does ("executing a task will result in spawning more tasks",
			// §2.2).
			task.Call(func() *task.Spec { return burstFan(width, grain) }),
			// Chain to the next burst serially.
			task.Call(func() *task.Spec {
				return burstySpec(bursts-1, width, gap, grain)
			}),
		},
	}
}

// burstFan recursively splits a burst of width leaves into a binary tree.
func burstFan(width, grain int64) *task.Spec {
	if width <= 1 {
		return task.Leaf("bursty-leaf", grain)
	}
	half := width / 2
	return &task.Spec{
		Label: fmt.Sprintf("bursty-fan %d", width),
		Ops: []task.Op{
			task.Spawn(func() *task.Spec { return burstFan(half, grain) }),
			task.Spawn(func() *task.Spec { return burstFan(width-half, grain) }),
			task.Sync(),
			task.Sync(),
		},
	}
}
