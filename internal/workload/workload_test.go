package workload

import (
	"testing"

	"palirria/internal/task"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"alignment", "bursty", "fft", "fib", "loopy", "matmul", "nqueens", "skew", "sort", "sparselu", "strassen", "stress", "uts"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestGet(t *testing.T) {
	d, err := Get("fib")
	if err != nil || d.Name != "fib" {
		t.Fatalf("Get(fib) = (%v, %v)", d, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestPaperSetOrder(t *testing.T) {
	set := PaperSet()
	want := []string{"fft", "fib", "nqueens", "skew", "sort", "strassen", "stress"}
	if len(set) != len(want) {
		t.Fatalf("PaperSet has %d entries", len(set))
	}
	for i, d := range set {
		if d == nil || d.Name != want[i] {
			t.Fatalf("PaperSet[%d] = %v, want %s", i, d, want[i])
		}
	}
}

// TestAllWorkloadsValid expands every workload on both platforms, checking
// structural validity and computing tree statistics.
func TestAllWorkloadsValid(t *testing.T) {
	for _, name := range Names() {
		d, _ := Get(name)
		for _, p := range []Platform{Simulator, NUMA} {
			t.Run(name+"/"+p.String(), func(t *testing.T) {
				root := d.Root(p)
				st, err := task.Measure(root)
				if err != nil {
					t.Fatalf("invalid tree: %v", err)
				}
				if st.Work <= 0 || st.Span <= 0 || st.Tasks < 1 {
					t.Fatalf("degenerate stats %+v", st)
				}
				t.Logf("%s/%s: tasks=%d spawns=%d work=%d span=%d par=%.1f",
					name, p, st.Tasks, st.Spawns, st.Work, st.Span, st.Parallelism())
			})
		}
	}
}

// TestWorkloadDeterminism re-expands each tree and compares statistics:
// builders must be pure functions of their parameters.
func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range Names() {
		d, _ := Get(name)
		a, err := task.Measure(d.Root(Simulator))
		if err != nil {
			t.Fatal(err)
		}
		b, err := task.Measure(d.Root(Simulator))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%s: non-deterministic stats %+v vs %+v", name, a, b)
		}
	}
}

// TestParallelismProfiles checks that each workload's average parallelism
// matches the qualitative profile the paper assigns it. The 32-core
// platform has at most 27 workers, so "highly parallel" means parallelism
// well above that, and "limited" means close to or below it.
func TestParallelismProfiles(t *testing.T) {
	par := func(name string) float64 {
		d, _ := Get(name)
		st, err := task.Measure(d.Root(Simulator))
		if err != nil {
			t.Fatal(err)
		}
		return st.Parallelism()
	}
	if p := par("fib"); p < 100 {
		t.Errorf("fib parallelism = %.1f, want >> 27 (embarrassingly parallel)", p)
	}
	if p := par("nqueens"); p < 100 {
		t.Errorf("nqueens parallelism = %.1f, want >> 27 (highly parallel)", p)
	}
	if p := par("strassen"); p > 60 {
		t.Errorf("strassen parallelism = %.1f, want small (just enough for a few workers)", p)
	}
	if p := par("loopy"); p > 3 {
		t.Errorf("loopy parallelism = %.1f, want <= ~2 (serial chain)", p)
	}
	if p := par("stress"); p < 50 {
		t.Errorf("stress parallelism = %.1f, want large", p)
	}
	// Skew must be markedly less parallel than stress (unbalanced).
	if ps, pk := par("stress"), par("skew"); pk >= ps {
		t.Errorf("skew parallelism %.1f not below stress %.1f", pk, ps)
	}
}

// TestSkewIsUnbalanced verifies the skew tree really is skewed: the span is
// a large fraction of a balanced tree's depth-scaled work.
func TestSkewIsUnbalanced(t *testing.T) {
	d, _ := Get("skew")
	st, err := task.Measure(d.Root(Simulator))
	if err != nil {
		t.Fatal(err)
	}
	dd, _ := Get("stress")
	bt, err := task.Measure(dd.Root(Simulator))
	if err != nil {
		t.Fatal(err)
	}
	// Normalized span (span/work) of skew must exceed stress's by a wide
	// margin: imbalance concentrates the critical path.
	skewRatio := float64(st.Span) / float64(st.Work)
	stressRatio := float64(bt.Span) / float64(bt.Work)
	if skewRatio < 2*stressRatio {
		t.Fatalf("skew span ratio %.4f not >> stress %.4f", skewRatio, stressRatio)
	}
}

// TestLoopyQueueShape: every non-leaf loopy task spawns exactly one
// stealable task before continuing serially.
func TestLoopyQueueShape(t *testing.T) {
	d, _ := Get("loopy")
	root := d.Root(Simulator)
	spawns := 0
	for _, op := range root.Ops {
		if op.Kind == task.OpSpawn {
			spawns++
		}
	}
	if spawns != 1 {
		t.Fatalf("loopy link spawns %d tasks, want exactly 1", spawns)
	}
}

// TestStrassenGradualSpawning: spawns are interleaved with compute ops, not
// emitted back to back.
func TestStrassenGradualSpawning(t *testing.T) {
	d, _ := Get("strassen")
	root := d.Root(Simulator)
	prevWasSpawn := false
	consecutive := 0
	for _, op := range root.Ops {
		if op.Kind == task.OpSpawn {
			if prevWasSpawn {
				consecutive++
			}
			prevWasSpawn = true
		} else {
			prevWasSpawn = false
		}
	}
	if consecutive != 0 {
		t.Fatalf("%d back-to-back spawns; strassen must spawn gradually", consecutive)
	}
}

// TestFootprints: the cache-thrashing workloads carry large footprints, the
// micro-benchmarks small ones — the NUMA model depends on this contrast.
func TestFootprints(t *testing.T) {
	big := []string{"fft", "sort", "strassen"}
	small := []string{"fib", "stress", "skew"}
	for _, n := range big {
		d, _ := Get(n)
		if fp := d.Root(Simulator).Footprint; fp < 64*1024 {
			t.Errorf("%s root footprint = %d, want large (cache-thrashing)", n, fp)
		}
	}
	for _, n := range small {
		d, _ := Get(n)
		if fp := d.Root(Simulator).Footprint; fp > 4096 {
			t.Errorf("%s root footprint = %d, want small", n, fp)
		}
	}
}

// TestTaskCounts keeps tree sizes inside the budget the simulator needs:
// enough tasks to exercise stealing, few enough to simulate quickly.
func TestTaskCounts(t *testing.T) {
	bounds := map[string][2]int64{
		"fib":       {50000, 500000},
		"nqueens":   {500, 20000},
		"fft":       {200, 20000},
		"sort":      {200, 20000},
		"strassen":  {50, 3000},
		"stress":    {5000, 50000},
		"skew":      {500, 100000},
		"loopy":     {4000, 50000},
		"bursty":    {500, 10000},
		"uts":       {500, 100000},
		"matmul":    {500, 10000},
		"sparselu":  {100, 20000},
		"alignment": {1000, 20000},
	}
	for name, b := range bounds {
		d, _ := Get(name)
		st, err := task.Measure(d.Root(Simulator))
		if err != nil {
			t.Fatal(err)
		}
		if st.Tasks < b[0] || st.Tasks > b[1] {
			t.Errorf("%s: %d tasks outside [%d, %d]", name, st.Tasks, b[0], b[1])
		}
	}
}

func TestInputString(t *testing.T) {
	in := Input{N: 5, Cutoff: 2, Grain: 10, Extra: []int64{7}}
	if s := in.String(); s != "n=5 cutoff=2 grain=10 x0=7" {
		t.Fatalf("String() = %q", s)
	}
	if s := (Input{N: 3}).String(); s != "n=3" {
		t.Fatalf("String() = %q", s)
	}
}

func TestPlatformString(t *testing.T) {
	if Simulator.String() != "barrelfish-sim" || NUMA.String() != "linux-numa" {
		t.Fatal("platform names wrong")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	register(&Def{Name: "fib"})
}

// TestUTSIsUnbalanced: UTS subtree sizes under the root must vary by an
// order of magnitude — the benchmark's defining property.
func TestUTSIsUnbalanced(t *testing.T) {
	d, _ := Get("uts")
	in := d.Inputs[Simulator]
	min, max := int64(1<<62), int64(0)
	for i := int64(0); i < in.N; i++ {
		cp := childPath(0, int(i))
		st, err := task.Measure(utsNode(in, cp, 8, 114, 0))
		if err != nil {
			t.Fatal(err)
		}
		if st.Tasks < min {
			min = st.Tasks
		}
		if st.Tasks > max {
			max = st.Tasks
		}
	}
	if max < 10*min {
		t.Fatalf("uts subtrees too uniform: min %d, max %d", min, max)
	}
}

// TestMatmulWaveStructure: two spawn waves separated by a full barrier.
func TestMatmulWaveStructure(t *testing.T) {
	d, _ := Get("matmul")
	root := d.Root(Simulator)
	kinds := make([]task.OpKind, len(root.Ops))
	for i, op := range root.Ops {
		kinds[i] = op.Kind
	}
	want := []task.OpKind{
		task.OpSpawn, task.OpSpawn, task.OpSpawn, task.OpSpawn,
		task.OpSync, task.OpSync, task.OpSync, task.OpSync,
		task.OpSpawn, task.OpSpawn, task.OpSpawn, task.OpSpawn,
		task.OpSync, task.OpSync, task.OpSync, task.OpSync,
	}
	if len(kinds) != len(want) {
		t.Fatalf("ops = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

// TestExtensionsRunOnSimulator: the extension workloads complete under
// Palirria (smoke test shared with the paper set).
func TestExtensionsCountsStable(t *testing.T) {
	// Determinism of the hash-shaped UTS tree: equal stats across builds.
	d, _ := Get("uts")
	a, err := task.Measure(d.Root(Simulator))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := task.Measure(d.Root(Simulator))
	if a != b {
		t.Fatalf("uts not deterministic: %+v vs %+v", a, b)
	}
}

// TestSparseLUShrinkingParallelism: early phases are much wider than late
// ones (the wavefront shrinks).
func TestSparseLUShrinkingParallelism(t *testing.T) {
	d, _ := Get("sparselu")
	in := d.Inputs[Simulator]
	countUpdates := func(k int64) int {
		n := 0
		for i := k + 1; i < in.N; i++ {
			for j := k + 1; j < in.N; j++ {
				h := shapeHash(in.Seed, (uint64(k)<<40)^(uint64(i)<<20)^uint64(j))
				if int64(h%1000) < in.Extra[1] {
					n++
				}
			}
		}
		return n
	}
	first, last := countUpdates(0), countUpdates(in.N-3)
	if first < 5*last {
		t.Fatalf("wavefront not shrinking: phase0=%d, late=%d", first, last)
	}
}

// TestAlignmentPairCount: n*(n-1)/2 leaf tasks.
func TestAlignmentPairCount(t *testing.T) {
	d, _ := Get("alignment")
	st, err := task.Measure(d.Root(Simulator))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(d.Inputs[Simulator].N)
	pairs := n * (n - 1) / 2
	// Leaves = pairs; internal fan nodes add pairs-1.
	if st.Tasks != 2*pairs-1 {
		t.Fatalf("tasks = %d, want %d", st.Tasks, 2*pairs-1)
	}
}
