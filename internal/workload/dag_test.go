package workload

import (
	"testing"
)

func TestDAGRegistry(t *testing.T) {
	want := []string{"mapreduce", "pipeline"}
	got := DAGNames()
	if len(got) != len(want) {
		t.Fatalf("DAGNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DAGNames() = %v, want %v", got, want)
		}
	}
	if _, err := GetDAG("nope"); err == nil {
		t.Fatal("expected error for unknown DAG workload")
	}
}

// TestDAGShapesValid expands both DAG workloads on both platforms and
// checks structural validity: in-range acyclic (forward-only) deps, at
// least one root, and every stage's task tree buildable.
func TestDAGShapesValid(t *testing.T) {
	for _, name := range DAGNames() {
		d, err := GetDAG(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Platform{Simulator, NUMA} {
			stages := d.Stages(p)
			if len(stages) == 0 {
				t.Fatalf("%s/%v: empty stage graph", name, p)
			}
			roots := 0
			for i, s := range stages {
				if len(s.Deps) == 0 {
					roots++
				}
				for _, dep := range s.Deps {
					if dep < 0 || dep >= i {
						t.Fatalf("%s/%v stage %d: dep %d not a forward-only index", name, p, i, dep)
					}
				}
				if spec := s.Build(); spec == nil {
					t.Fatalf("%s/%v stage %d: nil task tree", name, p, i)
				}
			}
			if roots == 0 {
				t.Fatalf("%s/%v: no root stage", name, p)
			}
		}
	}
}

func TestPipelineShape(t *testing.T) {
	stages := PipelineDAG.Stages(Simulator)
	for i, s := range stages {
		if i == 0 {
			if len(s.Deps) != 0 {
				t.Fatalf("stage 0 has deps %v", s.Deps)
			}
			continue
		}
		if len(s.Deps) != 1 || s.Deps[0] != i-1 {
			t.Fatalf("stage %d deps = %v, want [%d]", i, s.Deps, i-1)
		}
	}
}

func TestMapReduceShape(t *testing.T) {
	stages := MapReduceDAG.Stages(Simulator)
	n := len(stages)
	if n < 3 {
		t.Fatalf("mapreduce has %d stages", n)
	}
	for i := 1; i < n-1; i++ {
		if len(stages[i].Deps) != 1 || stages[i].Deps[0] != 0 {
			t.Fatalf("mapper %d deps = %v, want [0]", i, stages[i].Deps)
		}
	}
	reducer := stages[n-1]
	if len(reducer.Deps) != n-2 {
		t.Fatalf("reducer joins %d mappers, want %d", len(reducer.Deps), n-2)
	}
}
