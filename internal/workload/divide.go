package workload

import (
	"fmt"

	"palirria/internal/task"
)

// Memory-boundedness of the cache-thrashing workloads on the NUMA machine
// model (no effect on the ideal simulator platform). Sort's merges stream
// through memory and saturate the controllers — the paper's Sort shows no
// speedup whatsoever between 5 and 45 workers on the Opteron — while FFT
// retains enough arithmetic per byte to scale to about a third of its
// 5-worker time.
const (
	fftMemBound  = 0.05
	sortMemBound = 0.85
)

// FFT models the BOTS Cooley-Tukey FFT: binary recursion on the input
// vector down to a leaf size, followed after each sync by a parallel
// twiddle/combine phase over the merged halves. Large footprints make it
// cache-thrashing on the NUMA model. Input fields: N = vector length
// (power of two), Cutoff = leaf length, Grain = work per element unit.
var FFT = register(&Def{
	Name:            "fft",
	Profile:         "thrashes the caches; divide-and-conquer with parallel combine phases",
	PaperInputSim:   "input 32*1024*512",
	PaperInputLinux: "input 32*1024*1024",
	Build:           buildFFT,
	Inputs: map[Platform]Input{
		// The simulator input is fine grained (grain 1, small leaves): on
		// the paper's ideal 1-cycle machine FFT is overhead-bound and
		// barely scales (Fig. 5: 99/98/81% at 12/20/27 workers).
		Simulator: {N: 64 * 1024, Cutoff: 512, Grain: 1},
		NUMA:      {N: 128 * 1024, Cutoff: 2048, Grain: 3},
	},
})

func buildFFT(in Input) *task.Spec {
	return fftSpec(in.N, in.Cutoff, in.Grain)
}

func fftSpec(n, cutoff, grain int64) *task.Spec {
	if n <= cutoff {
		// Sequential FFT of a leaf: c * n * log2(n).
		s := task.Leaf(fmt.Sprintf("fft-leaf %d", n), grain*n*log2int(n))
		s.Footprint = n * 16
		s.MemBound = fftMemBound
		return s
	}
	half := n / 2
	ops := []task.Op{
		task.Spawn(func() *task.Spec { return fftSpec(half, cutoff, grain) }),
		task.Spawn(func() *task.Spec { return fftSpec(half, cutoff, grain) }),
		task.Sync(),
		task.Sync(),
	}
	// Twiddle/combine phase: n work split into parallel chunks of cutoff
	// elements each; this is where FFT's burst parallelism comes from.
	chunks := n / cutoff
	for i := int64(0); i < chunks; i++ {
		ops = append(ops, task.Spawn(func() *task.Spec {
			s := task.Leaf("fft-twiddle", grain*cutoff)
			s.Footprint = cutoff * 16
			s.MemBound = fftMemBound
			return s
		}))
	}
	for i := int64(0); i < chunks; i++ {
		ops = append(ops, task.Sync())
	}
	return &task.Spec{
		Label:     fmt.Sprintf("fft %d", n),
		Footprint: n * 16,
		MemBound:  fftMemBound,
		Ops:       ops,
	}
}

// Sort models BOTS Sort (cilksort): split into four quarters, sort each
// recursively (sequential below the cut-off), then merge pairs with a
// recursive parallel merge. The result is the profile the paper analyses:
// a sequence of sections of varying parallelism, each section starting at
// the source worker and syncing back before the next begins. Input fields:
// N = elements, Cutoff = sequential sort size, Extra[0] = sequential merge
// size, Grain = per-element work unit.
var Sort = register(&Def{
	Name:            "sort",
	Profile:         "irregular, cache-thrashing; sections of varying parallelism re-spawned from the source",
	PaperInputSim:   "input 32*1024*1024, cut-off (2*1024),20",
	PaperInputLinux: "input 32*1024*1024, cut-off (2*1024),20",
	Build:           buildSort,
	Inputs: map[Platform]Input{
		// Fine grained on the simulator for the same reason as FFT: the
		// paper's Sort scales to only 68% of the 5-worker time at 27
		// workers on the ideal machine.
		Simulator: {N: 128 * 1024, Cutoff: 1024, Grain: 1, Extra: []int64{4 * 1024}},
		NUMA:      {N: 256 * 1024, Cutoff: 2 * 1024, Grain: 2, Extra: []int64{8 * 1024}},
	},
})

func buildSort(in Input) *task.Spec {
	mergeCut := int64(8 * 1024)
	if len(in.Extra) > 0 {
		mergeCut = in.Extra[0]
	}
	return sortSpec(in.N, in.Cutoff, mergeCut, in.Grain)
}

func sortSpec(n, cutoff, mergeCut, grain int64) *task.Spec {
	if n <= cutoff {
		// Sequential quicksort of a leaf: c * n * log2(n).
		s := task.Leaf(fmt.Sprintf("sort-leaf %d", n), grain*n*log2int(n))
		s.Footprint = n * 8
		s.MemBound = sortMemBound
		return s
	}
	q := n / 4
	ops := make([]task.Op, 0, 16)
	// Section 1: sort the four quarters — a quick burst of parallelism.
	for i := 0; i < 4; i++ {
		ops = append(ops, task.Spawn(func() *task.Spec {
			return sortSpec(q, cutoff, mergeCut, grain)
		}))
	}
	for i := 0; i < 4; i++ {
		ops = append(ops, task.Sync())
	}
	// Section 2: merge quarter pairs in parallel (two merges of n/2 output).
	for i := 0; i < 2; i++ {
		ops = append(ops, task.Spawn(func() *task.Spec {
			return mergeSpec(n/2, mergeCut, grain)
		}))
	}
	ops = append(ops, task.Sync(), task.Sync())
	// Section 3: the final merge of the two halves — narrow parallelism.
	ops = append(ops, task.Call(func() *task.Spec {
		return mergeSpec(n, mergeCut, grain)
	}))
	return &task.Spec{
		Label:     fmt.Sprintf("sort %d", n),
		Footprint: n * 8,
		MemBound:  sortMemBound,
		Ops:       ops,
	}
}

// mergeSpec is the recursive parallel merge: split the output range in two
// around a binary-search pivot, merge halves in parallel, sequential below
// the merge cut-off.
func mergeSpec(n, mergeCut, grain int64) *task.Spec {
	if n <= mergeCut {
		s := task.Leaf(fmt.Sprintf("merge-leaf %d", n), grain*n)
		s.Footprint = n * 8
		s.MemBound = sortMemBound
		return s
	}
	half := n / 2
	return &task.Spec{
		Label:     fmt.Sprintf("merge %d", n),
		Footprint: n * 8,
		MemBound:  sortMemBound,
		Ops: []task.Op{
			// The binary search that finds the split point.
			task.Compute(grain * log2int(n) * 4),
			task.Spawn(func() *task.Spec { return mergeSpec(half, mergeCut, grain) }),
			task.Call(func() *task.Spec { return mergeSpec(n-half, mergeCut, grain) }),
			task.Sync(),
		},
	}
}
