package metrics

import (
	"strings"
	"testing"
)

func tableReport() *Report {
	mk := func(compute, probe int64, tasks, steals, probes int64) *WorkerStats {
		ws := &WorkerStats{TasksRun: tasks, Steals: steals, FailedProbes: probes}
		ws.Add(Compute, compute)
		ws.Add(ProbeFail, probe)
		return ws
	}
	return &Report{
		ExecCycles: 1000,
		Workers: map[int]*WorkerStats{
			3:  mk(100, 10, 4, 1, 2),
			20: mk(123456789, 7, 11, 3, 5),
		},
		TotalTasks: 15, TotalSteals: 4, TotalFailedProbes: 7,
	}
}

func TestWriteTableAlignment(t *testing.T) {
	out := tableReport().String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 2 workers + totals, got %d lines:\n%s", len(lines), out)
	}
	// Rows are sorted by core id, totals last.
	if f := strings.Fields(lines[1]); f[0] != "3" {
		t.Fatalf("first data row is %q, want core 3", lines[1])
	}
	if f := strings.Fields(lines[2]); f[0] != "20" {
		t.Fatalf("second data row is %q, want core 20", lines[2])
	}
	if f := strings.Fields(lines[3]); f[0] != "all" {
		t.Fatalf("last row is %q, want totals", lines[3])
	}
	// Column alignment: every column is right-aligned, so field N ends at
	// the same byte offset on every line.
	ends := fieldEnds(lines[0])
	if len(ends) != 7 {
		t.Fatalf("header has %d columns, want 7:\n%s", len(ends), out)
	}
	for ri, row := range lines[1:] {
		re := fieldEnds(row)
		if len(re) != len(ends) {
			t.Fatalf("row %d has %d columns, want %d:\n%s", ri, len(re), len(ends), out)
		}
		for ci := range ends {
			if re[ci] != ends[ci] {
				t.Errorf("row %d column %d ends at %d, header at %d — misaligned:\n%s",
					ri, ci, re[ci], ends[ci], out)
			}
		}
	}
}

// fieldEnds returns the byte offset just past each whitespace-separated
// field of line.
func fieldEnds(line string) []int {
	var ends []int
	in := false
	for i, r := range line {
		if r == ' ' || r == '\t' {
			if in {
				ends = append(ends, i)
				in = false
			}
		} else {
			in = true
		}
	}
	if in {
		ends = append(ends, len(line))
	}
	return ends
}

func TestWriteTableEmpty(t *testing.T) {
	r := &Report{Workers: map[int]*WorkerStats{}}
	out := r.String()
	if !strings.Contains(out, "core") || !strings.Contains(out, "all") {
		t.Fatalf("empty report table malformed:\n%s", out)
	}
}
