package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// WriteTable renders the per-worker accounting as an aligned text table:
// one row per participating core plus a totals row. It is the shared
// renderer behind palirria-sim's --per-worker output and the benchmark
// harness summaries.
func (r *Report) WriteTable(w io.Writer) {
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "core\tuseful\twasted\ttotal\ttasks\tsteals\tprobes\t")
	var useful, wasted, total int64
	for _, id := range r.sortedIDs() {
		ws := r.Workers[id]
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			id, ws.Useful(), ws.Wasted(), ws.Total(), ws.TasksRun, ws.Steals, ws.FailedProbes)
		useful += ws.Useful()
		wasted += ws.Wasted()
		total += ws.Total()
	}
	fmt.Fprintf(tw, "all\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
		useful, wasted, total, r.TotalTasks, r.TotalSteals, r.TotalFailedProbes)
	tw.Flush()
}

// String renders the table (see WriteTable).
func (r *Report) String() string {
	var b strings.Builder
	r.WriteTable(&b)
	return b.String()
}

// sortedIDs returns the participating worker ids in ascending order.
func (r *Report) sortedIDs() []int {
	ids := make([]int, 0, len(r.Workers))
	for id := range r.Workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
