package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		Compute:      "compute",
		Spawn:        "spawn",
		Sync:         "sync",
		TaskInit:     "taskinit",
		StealSuccess: "steal",
		Migration:    "migration",
		Contention:   "contention",
		ProbeFail:    "probefail",
		Idle:         "idle",
	}
	if len(want) != int(NumCategories) {
		t.Fatalf("test covers %d categories, have %d", len(want), NumCategories)
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if !strings.Contains(Category(99).String(), "Category(99)") {
		t.Error("unknown category string wrong")
	}
}

func TestUsefulWastedPartition(t *testing.T) {
	// Useful + Wasted + Idle covers every category exactly once.
	var ws WorkerStats
	for c := Category(0); c < NumCategories; c++ {
		ws.Add(c, 10)
	}
	if got := ws.Total(); got != int64(10*int(NumCategories)) {
		t.Fatalf("Total = %d", got)
	}
	if ws.Useful()+ws.Wasted()+ws.Cycles[Idle] != ws.Total() {
		t.Fatalf("useful(%d) + wasted(%d) + idle(%d) != total(%d)",
			ws.Useful(), ws.Wasted(), ws.Cycles[Idle], ws.Total())
	}
}

func TestAStealWastedSuperset(t *testing.T) {
	// ASTEAL's decision metric counts at least everything Wasted does.
	f := func(raw [int(NumCategories)]uint16) bool {
		var ws WorkerStats
		for c := Category(0); c < NumCategories; c++ {
			ws.Add(c, int64(raw[c]))
		}
		return ws.AStealWasted() >= ws.Wasted()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var ws WorkerStats
	ws.Add(Compute, -1)
}

func TestSnapshotIsCopy(t *testing.T) {
	var ws WorkerStats
	ws.Add(Compute, 5)
	snap := ws.Snapshot()
	ws.Add(Compute, 5)
	if snap.Cycles[Compute] != 5 {
		t.Fatal("snapshot aliased the live stats")
	}
}

func TestReportWastefulness(t *testing.T) {
	r := &Report{ExecCycles: 1000, Workers: map[int]*WorkerStats{}}
	// Empty report: zero.
	if got := r.WastefulnessPercent(); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	a := &WorkerStats{}
	a.Add(ProbeFail, 100) // 10% of exec
	b := &WorkerStats{}
	b.Add(ProbeFail, 300) // 30%
	r.Workers[1] = a
	r.Workers[2] = b
	if got := r.WastefulnessPercent(); got != 20 {
		t.Fatalf("wastefulness = %v, want 20 (avg of 10 and 30)", got)
	}
	// Idle does not count as wasted.
	a.Add(Idle, 100000)
	if got := r.WastefulnessPercent(); got != 20 {
		t.Fatalf("idle leaked into wastefulness: %v", got)
	}
}

func TestReportTotals(t *testing.T) {
	a := &WorkerStats{}
	a.Add(Compute, 70)
	a.Add(ProbeFail, 30)
	b := &WorkerStats{}
	b.Add(StealSuccess, 10)
	b.Add(Idle, 5)
	r := &Report{ExecCycles: 100, Workers: map[int]*WorkerStats{1: a, 2: b}}
	if got := r.UsefulTotal(); got != 80 {
		t.Fatalf("UsefulTotal = %d, want 80", got)
	}
	if got := r.WastedTotal(); got != 30 {
		t.Fatalf("WastedTotal = %d, want 30", got)
	}
}

func TestWastefulnessZeroExec(t *testing.T) {
	r := &Report{Workers: map[int]*WorkerStats{1: {}}}
	if got := r.WastefulnessPercent(); got != 0 {
		t.Fatalf("zero-exec wastefulness = %v", got)
	}
}

func TestWorkerSpanRetired(t *testing.T) {
	// Workers that retired mid-run still contribute their waste relative
	// to full exec time.
	ws := &WorkerStats{JoinedAt: 100, RetiredAt: 200}
	ws.Add(ProbeFail, 50)
	r := &Report{ExecCycles: 1000, Workers: map[int]*WorkerStats{3: ws}}
	if got := r.WastefulnessPercent(); got != 5 {
		t.Fatalf("wastefulness = %v, want 5", got)
	}
}
