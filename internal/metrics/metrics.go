// Package metrics defines the cycle accounting shared by both execution
// platforms and the derived quantities the paper's evaluation reports.
//
// Cycle taxonomy (paper §6): "Useful are the cycles spent successfully
// stealing and processing tasks". We therefore classify compute, spawn and
// sync bookkeeping, task setup, migration warm-up and successful steals as
// useful, and failed steal probes plus idle backoff as wasted. ASTEAL's own
// decision metric additionally counts successful-steal cycles as wasted
// (paper §3.1); the asteal package composes that view from the same
// counters.
package metrics

import "fmt"

// Category classifies where a worker's cycles went.
type Category int

const (
	// Compute is task work (OpCompute cycles).
	Compute Category = iota
	// Spawn is the bookkeeping of placing a spawned task in the queue.
	Spawn
	// Sync is join bookkeeping (pop-on-sync, checking stolen children).
	Sync
	// TaskInit is frame setup when starting or inlining a task.
	TaskInit
	// StealSuccess is the cost of successful steal transfers.
	StealSuccess
	// Migration is cache warm-up charged when a stolen task first runs on
	// its thief (NUMA model only).
	Migration
	// Contention is the slowdown a busy worker suffers from thieves
	// hammering its queue (probe and steal taxes).
	Contention
	// ProbeFail is time spent probing victims that had no stealable task.
	ProbeFail
	// Idle is backoff time after an unsuccessful round of probes. Idle is
	// neither useful nor wasted under the paper's definitions: a worker
	// backing off is asleep, not executing wasteful operations.
	Idle

	// NumCategories is the number of categories.
	NumCategories
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Compute:
		return "compute"
	case Spawn:
		return "spawn"
	case Sync:
		return "sync"
	case TaskInit:
		return "taskinit"
	case StealSuccess:
		return "steal"
	case Migration:
		return "migration"
	case Contention:
		return "contention"
	case ProbeFail:
		return "probefail"
	case Idle:
		return "idle"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// WorkerStats accumulates one worker's counters.
type WorkerStats struct {
	// Cycles per category.
	Cycles [NumCategories]int64
	// Steals counts successful steals by this worker.
	Steals int64
	// FailedProbes counts probes of victims with no stealable task.
	FailedProbes int64
	// StolenFrom counts tasks other workers stole from this worker.
	StolenFrom int64
	// TasksRun counts tasks this worker executed (spawned-inline, popped,
	// called or stolen).
	TasksRun int64
	// JoinedAt is the time the worker entered the allotment; RetiredAt the
	// time it exited (0 / -1 when still active).
	JoinedAt  int64
	RetiredAt int64
}

// Useful returns the useful cycles per the paper's Figs. 6/8 definition:
// cycles spent successfully stealing and processing tasks, including the
// contention and migration overheads suffered while doing so.
func (w *WorkerStats) Useful() int64 {
	return w.Cycles[Compute] + w.Cycles[Spawn] + w.Cycles[Sync] +
		w.Cycles[TaskInit] + w.Cycles[StealSuccess] + w.Cycles[Migration] +
		w.Cycles[Contention]
}

// Wasted returns the wasted cycles per the paper's Figs. 5(b)/7(b) metric:
// cycles actively spent on non-productive operations, i.e. trying to steal
// from victims that have no stealable tasks. Backoff sleep is not active
// spending and is excluded.
func (w *WorkerStats) Wasted() int64 {
	return w.Cycles[ProbeFail]
}

// AStealWasted returns the cycles ASTEAL's decision metric counts as
// wasted: searching for work (probing and the backoff between rounds) plus
// conducting successful steals (§3.1).
func (w *WorkerStats) AStealWasted() int64 {
	return w.Cycles[ProbeFail] + w.Cycles[Idle] + w.Cycles[StealSuccess]
}

// Total returns all accounted cycles.
func (w *WorkerStats) Total() int64 {
	var t int64
	for _, c := range w.Cycles {
		t += c
	}
	return t
}

// Add accumulates cycles into a category. Negative amounts panic: counters
// only grow.
func (w *WorkerStats) Add(c Category, cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("metrics: negative cycles %d for %v", cycles, c))
	}
	w.Cycles[c] += cycles
}

// Snapshot returns a copy of the stats (for per-quantum deltas).
func (w *WorkerStats) Snapshot() WorkerStats { return *w }

// Report aggregates a whole run.
type Report struct {
	// ExecCycles is the workload's total execution time in cycles, measured
	// at the source worker like the paper does.
	ExecCycles int64
	// Workers maps worker index (position in the mesh-core table) to stats;
	// only cores that ever participated appear.
	Workers map[int]*WorkerStats
	// MaxWorkers is the peak allotment size during the run.
	MaxWorkers int
	// WorkerCycleArea integrates allotment size over time: the resource
	// usage the accuracy criterion trades against execution time.
	WorkerCycleArea int64
	// TotalTasks counts tasks executed across all workers.
	TotalTasks int64
	// TotalSteals counts successful steals across all workers.
	TotalSteals int64
	// TotalFailedProbes counts failed probes across all workers.
	TotalFailedProbes int64
}

// WastefulnessPercent returns the paper's Fig. 5(b)/7(b) metric: the average
// over workers of each worker's wasted cycles as a percentage of the total
// execution time. Workers that never joined are excluded.
func (r *Report) WastefulnessPercent() float64 {
	if r.ExecCycles <= 0 || len(r.Workers) == 0 {
		return 0
	}
	// Sum in worker-id order: float addition is order-sensitive and map
	// iteration would make the last ulp nondeterministic across runs.
	var sum float64
	n := 0
	for _, id := range r.sortedIDs() {
		ws := r.Workers[id]
		span := workerSpan(ws, r.ExecCycles)
		if span <= 0 {
			continue
		}
		sum += 100 * float64(ws.Wasted()) / float64(r.ExecCycles)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// workerSpan is the time the worker was part of the run.
func workerSpan(ws *WorkerStats, execCycles int64) int64 {
	end := ws.RetiredAt
	if end <= 0 {
		end = execCycles
	}
	return end - ws.JoinedAt
}

// UsefulTotal sums useful cycles over all workers.
func (r *Report) UsefulTotal() int64 {
	var t int64
	for _, ws := range r.Workers {
		t += ws.Useful()
	}
	return t
}

// WastedTotal sums wasted cycles over all workers.
func (r *Report) WastedTotal() int64 {
	var t int64
	for _, ws := range r.Workers {
		t += ws.Wasted()
	}
	return t
}
