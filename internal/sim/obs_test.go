package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"palirria/internal/asteal"
	"palirria/internal/core"
	"palirria/internal/obs"
	"palirria/internal/task"
	"palirria/internal/topo"
	"palirria/internal/workload"
)

// stressRoot is a workload long enough to cross several quanta.
func stressRoot() *task.Spec {
	d, _ := workload.Get("stress")
	return d.Root(workload.Simulator)
}

// TestObserveProducesTraceData checks the Observe path end to end: the run
// returns a drained obs.TraceData with quantum markers and probe events,
// and it exports to valid Chrome trace JSON.
func TestObserveProducesTraceData(t *testing.T) {
	m, src := simMesh()
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: stressRoot(),
		InitialDiaspora: 1, MaxDiaspora: 4,
		Estimator: core.NewPalirria(), Quantum: 20000,
		Observe: true, Introspect: true,
	})
	if res.Obs == nil {
		t.Fatal("Observe run returned nil Obs")
	}
	counts := res.Obs.Counts()
	for _, k := range []obs.Kind{obs.KindSpawn, obs.KindSteal, obs.KindProbeFail, obs.KindQuantum} {
		if counts[k] == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	if res.Obs.TicksPerMicro != 1 {
		t.Fatalf("TicksPerMicro = %v, want 1 (cycles)", res.Obs.TicksPerMicro)
	}
	// The legacy Trace view mirrors the drained events.
	if len(res.Trace) != len(res.Obs.Events) {
		t.Fatalf("Trace len %d != Obs.Events len %d", len(res.Trace), len(res.Obs.Events))
	}

	var buf bytes.Buffer
	if err := res.Obs.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome export is not valid JSON")
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"steal", "quantum", "allotment", "desire"} {
		if !names[want] {
			t.Errorf("chrome export missing %q events", want)
		}
	}
}

// TestIntrospectSnapshots checks both estimators' per-quantum records: the
// Palirria snapshots carry DVS classes and thresholds, the ASTEAL ones the
// utilization inputs.
func TestIntrospectSnapshots(t *testing.T) {
	m, src := simMesh()

	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: stressRoot(),
		InitialDiaspora: 1, MaxDiaspora: 4,
		Estimator: core.NewPalirria(), Quantum: 20000,
		Introspect: true,
	})
	if len(res.EstimatorTrace) == 0 {
		t.Fatal("no estimator snapshots from an adaptive run")
	}
	sawClass := false
	for _, es := range res.EstimatorTrace {
		if es.Estimator != "palirria" {
			t.Fatalf("estimator = %q", es.Estimator)
		}
		switch es.Decision {
		case "increase", "keep", "decrease":
		default:
			t.Fatalf("bad decision %q", es.Decision)
		}
		if es.Allotment <= 0 || es.Granted <= 0 {
			t.Fatalf("bad sizes in %+v", es)
		}
		if len(es.Workers) != es.Allotment {
			t.Fatalf("snapshot has %d workers for allotment %d", len(es.Workers), es.Allotment)
		}
		for _, iw := range es.Workers {
			if iw.Class != "" {
				sawClass = true
			}
		}
	}
	if !sawClass {
		t.Fatal("no DVS classes recorded in Palirria snapshots")
	}

	res = mustRun(t, Config{
		Mesh: m, Source: src, Root: stressRoot(),
		InitialDiaspora: 1, MaxDiaspora: 4,
		Estimator: asteal.New(), Quantum: 20000,
		Introspect: true,
	})
	if len(res.EstimatorTrace) == 0 {
		t.Fatal("no ASTEAL snapshots")
	}
	for _, es := range res.EstimatorTrace {
		if es.Estimator != "asteal" {
			t.Fatalf("estimator = %q", es.Estimator)
		}
		for _, key := range []string{"wasted_cycles", "total_cycles", "inefficient", "satisfied", "desire"} {
			if _, ok := es.Inputs[key]; !ok {
				t.Fatalf("ASTEAL snapshot missing input %q: %+v", key, es.Inputs)
			}
		}
	}
}

// benchConfig is the shared workload for the tracing-overhead benchmarks:
// an adaptive run long enough to exercise every instrumented hot path.
func benchConfig() (Config, func() *task.Spec) {
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	return Config{
		Mesh: m, Source: 20, InitialDiaspora: 2,
		Estimator: core.NewPalirria(), Quantum: 20000,
	}, func() *task.Spec { return fibRoot(16) }
}

// BenchmarkRunTraceDisabled vs. BenchmarkRunTraceEnabled quantifies the
// tracer's cost on the simulator: disabled tracing is a nil check per
// event site, so the two disabled/enabled numbers bound the instrumentation
// overhead end to end.
func BenchmarkRunTraceDisabled(b *testing.B) {
	cfg, root := benchConfig()
	for i := 0; i < b.N; i++ {
		cfg.Root = root()
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunTraceEnabled(b *testing.B) {
	cfg, root := benchConfig()
	cfg.Observe = true
	cfg.Introspect = true
	for i := 0; i < b.N; i++ {
		cfg.Root = root()
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMultiObserve checks that multiprogrammed runs label snapshots per
// job.
func TestMultiObserve(t *testing.T) {
	m, _ := simMesh()
	res, err := RunMulti(MultiConfig{
		Mesh: m,
		Jobs: []Job{
			{Name: "left", Source: 20, Root: stressRoot(), Estimator: core.NewPalirria()},
			{Name: "right", Source: 27, Root: stressRoot(), Estimator: core.NewPalirria()},
		},
		Quantum: 20000, Observe: true, Introspect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil || len(res.Obs.Events) == 0 {
		t.Fatal("no observability data from multi run")
	}
	jobs := map[string]bool{}
	for _, es := range res.EstimatorTrace {
		jobs[es.Job] = true
	}
	if !jobs["left"] || !jobs["right"] {
		t.Fatalf("snapshots missing a job: %v", jobs)
	}
}
