// Package sim is a deterministic discrete-event simulator of a multicore
// machine running a WOOL-style work-stealing runtime.
//
// It substitutes for the paper's two evaluation platforms (see DESIGN.md):
// the Simics-simulated ideal 32-core machine and the 48-core ccNUMA Opteron.
// The simulator models the *scheduler* at cycle granularity — compute,
// spawn, sync, steal probes, steal transfers, idle backoff — because those
// are the quantities the estimators read and the evaluation reports. It is
// single-threaded and produces bit-identical results for identical
// configurations, which is what makes cross-scheduler comparisons sound.
package sim

import (
	"palirria/internal/topo"
)

// Costs parameterizes the runtime operations, in cycles. The defaults
// reflect the maturity the paper cites ("work-stealing runtimes have
// reached the maturity of performing steal and spawn actions in just a few
// hundred cycles", §1).
type Costs struct {
	// Spawn is the cost of placing a spawned task in the owner's queue.
	Spawn int64
	// SyncLocal is the pop-and-inline bookkeeping when the synced child was
	// not stolen.
	SyncLocal int64
	// SyncStolen is the check of a stolen child's completion status.
	SyncStolen int64
	// Pop is taking the next task from the worker's own queue.
	Pop int64
	// TaskInit is frame setup when a task starts executing.
	TaskInit int64
	// Probe is one failed inspection of a victim's queue.
	Probe int64
	// Steal is a successful steal transfer (excluding machine penalties).
	Steal int64
	// Backoff is the initial idle pause after probing every victim
	// unsuccessfully; it doubles per empty round up to BackoffMax and
	// resets when work is found.
	Backoff int64
	// BackoffMax caps the exponential backoff.
	BackoffMax int64
	// Bootstrap is the delay before a newly granted worker starts stealing.
	Bootstrap int64
	// ProbeTax is the slowdown a probe inflicts on a busy victim: thieves
	// inspecting the queue bounce the owner's cache lines. Idle victims
	// are not charged.
	ProbeTax int64
	// StealTax is the analogous (larger) slowdown of a successful steal on
	// a busy victim.
	StealTax int64
}

// DefaultCosts returns the standard cost model.
func DefaultCosts() Costs {
	return Costs{
		Spawn:      20,
		SyncLocal:  12,
		SyncStolen: 30,
		Pop:        12,
		TaskInit:   10,
		Probe:      60,
		Steal:      240,
		Backoff:    150,
		BackoffMax: 4800,
		Bootstrap:  500,
		ProbeTax:   40,
		StealTax:   240,
	}
}

// MachineModel adds platform-specific penalties on top of Costs.
type MachineModel interface {
	// Name identifies the model in reports.
	Name() string
	// ProbePenalty is added to a steal probe from thief to victim.
	ProbePenalty(thief, victim topo.CoreID) int64
	// StealPenalty is added to a successful steal transfer.
	StealPenalty(thief, victim topo.CoreID) int64
	// MigrationPenalty is the cache warm-up charged when a task of the
	// given footprint, created on origin, first executes on thief.
	MigrationPenalty(origin, thief topo.CoreID, footprint int64) int64
	// ComputeFactor inflates a task's compute cycles as a function of its
	// memory-boundedness and the number of active workers, modelling
	// shared memory-bandwidth saturation. 1.0 means no inflation.
	ComputeFactor(memBound float64, workers int) float64
}

// Ideal is the paper's simulated platform: every instruction takes one
// cycle and there is no memory hierarchy, so no penalties of any kind.
// "The simulated model purposefully does not include a memory-hierarchy to
// isolate the behavior of the estimation algorithms" (§5).
type Ideal struct{}

// Name implements MachineModel.
func (Ideal) Name() string { return "ideal" }

// ProbePenalty implements MachineModel.
func (Ideal) ProbePenalty(thief, victim topo.CoreID) int64 { return 0 }

// StealPenalty implements MachineModel.
func (Ideal) StealPenalty(thief, victim topo.CoreID) int64 { return 0 }

// MigrationPenalty implements MachineModel.
func (Ideal) MigrationPenalty(origin, thief topo.CoreID, footprint int64) int64 {
	return 0
}

// ComputeFactor implements MachineModel: the ideal machine has no memory
// hierarchy, so no bandwidth saturation either.
func (Ideal) ComputeFactor(memBound float64, workers int) float64 { return 1 }

// NUMA models the 48-core Opteron 6172 platform: 4 sockets, 2 NUMA nodes
// per socket, 6 cores per node. Cores map to nodes by column of the 8x6
// mesh (node = x, socket = x/2), so each mesh column is one physical node
// with its own memory controller.
//
// Three effects matter for the evaluation's "behavioral patterns are
// different mainly due to caches" (§6):
//
//   - probing a victim on another node costs extra coherence traffic;
//   - a steal transfer crossing nodes or sockets costs progressively more;
//   - a stolen task touching a large working set (FFT, Sort, Strassen)
//     must warm the destination cache: a penalty proportional to its
//     footprint, capped, and scaled by the distance class.
type NUMA struct {
	// Mesh is the 8x6 core grid.
	Mesh *topo.Mesh
	// RemoteProbe is the extra probe cost off-node.
	RemoteProbe int64
	// NodeSteal / SocketSteal / RemoteSteal are extra transfer costs for
	// same-node, same-socket and cross-socket steals.
	NodeSteal, SocketSteal, RemoteSteal int64
	// BytesPerCycle divides the footprint to produce warm-up cycles.
	BytesPerCycle int64
	// WarmupCap bounds the migration penalty.
	WarmupCap int64
}

// NewNUMA returns the standard 48-core model over mesh.
func NewNUMA(mesh *topo.Mesh) *NUMA {
	return &NUMA{
		Mesh:        mesh,
		RemoteProbe: 80,
		NodeSteal:   0,
		SocketSteal: 200,
		RemoteSteal: 600,
		// Warming a working set across nodes refetches it line by line:
		// roughly one byte per cycle of effective refill bandwidth. A 32KB
		// task costs ~32k cycles off-node (~64k cross-socket) — comparable
		// to its own work, which is what makes the paper's cache-thrashing
		// workloads punish wide task spreading on real hardware.
		BytesPerCycle: 1,
		WarmupCap:     150000,
	}
}

// Name implements MachineModel.
func (n *NUMA) Name() string { return "numa" }

// nodeOf maps a core to its NUMA node (mesh column).
func (n *NUMA) nodeOf(id topo.CoreID) int { return n.Mesh.Coord(id).X }

// socketOf maps a core to its socket (two nodes per socket).
func (n *NUMA) socketOf(id topo.CoreID) int { return n.nodeOf(id) / 2 }

// ProbePenalty implements MachineModel.
func (n *NUMA) ProbePenalty(thief, victim topo.CoreID) int64 {
	if n.nodeOf(thief) == n.nodeOf(victim) {
		return 0
	}
	return n.RemoteProbe
}

// StealPenalty implements MachineModel.
func (n *NUMA) StealPenalty(thief, victim topo.CoreID) int64 {
	switch {
	case n.nodeOf(thief) == n.nodeOf(victim):
		return n.NodeSteal
	case n.socketOf(thief) == n.socketOf(victim):
		return n.SocketSteal
	default:
		return n.RemoteSteal
	}
}

// ComputeFactor implements MachineModel: compute inflates linearly with
// the number of active workers, scaled by the task's memory-boundedness.
// A fully memory-bound task set saturates the memory controllers — Sort on
// the paper's Opteron shows no speedup at all between 5 and 45 workers —
// while compute-bound tasks (Fib) scale almost linearly.
func (n *NUMA) ComputeFactor(memBound float64, workers int) float64 {
	if memBound <= 0 || workers <= 1 {
		return 1
	}
	return 1 + memBound*float64(workers-1)
}

// MigrationPenalty implements MachineModel.
func (n *NUMA) MigrationPenalty(origin, thief topo.CoreID, footprint int64) int64 {
	if footprint <= 0 || n.nodeOf(origin) == n.nodeOf(thief) {
		return 0
	}
	warm := footprint / n.BytesPerCycle
	if n.socketOf(origin) != n.socketOf(thief) {
		warm *= 2
	}
	if warm > n.WarmupCap {
		warm = n.WarmupCap
	}
	return warm
}
