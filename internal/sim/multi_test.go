package sim

import (
	"testing"

	"palirria/internal/core"
	"palirria/internal/metrics"
	"palirria/internal/task"
	"palirria/internal/topo"
)

// multiMesh returns a 9x9 mesh with two reserved cores.
func multiMesh() *topo.Mesh {
	m := topo.MustMesh(9, 9)
	m.Reserve(0, 1)
	return m
}

func TestRunMultiValidation(t *testing.T) {
	m := multiMesh()
	if _, err := RunMulti(MultiConfig{Mesh: m}); err == nil {
		t.Error("no jobs must fail")
	}
	if _, err := RunMulti(MultiConfig{Mesh: m, Jobs: []Job{{Source: 20}}}); err == nil {
		t.Error("nil root must fail")
	}
	bad := &task.Spec{Ops: []task.Op{task.Sync()}}
	if _, err := RunMulti(MultiConfig{Mesh: m, Jobs: []Job{{Source: 20, Root: bad}}}); err == nil {
		t.Error("invalid root must fail")
	}
	// Duplicate sources collide in the arbiter.
	if _, err := RunMulti(MultiConfig{Mesh: m, Jobs: []Job{
		{Source: 20, Root: fibRoot(4)},
		{Source: 20, Root: fibRoot(4)},
	}}); err == nil {
		t.Error("duplicate sources must fail")
	}
}

func TestRunMultiTwoAdaptiveJobs(t *testing.T) {
	m := multiMesh()
	res, err := RunMulti(MultiConfig{
		Mesh:    m,
		Quantum: 20000,
		Jobs: []Job{
			{Name: "a", Source: m.ID(topo.Coord{X: 2, Y: 2}), Root: fibRoot(15), Estimator: core.NewPalirria()},
			{Name: "b", Source: m.ID(topo.Coord{X: 6, Y: 6}), Root: fibRoot(15), Estimator: core.NewPalirria()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for _, jr := range res.Jobs {
		if jr.ExecCycles() <= 0 {
			t.Fatalf("%s: empty exec", jr.Name)
		}
		if jr.Timeline.Max() < 5 {
			t.Fatalf("%s: never held 5 workers", jr.Name)
		}
	}
	if res.MakespanCycles < res.Jobs[0].FinishCycles {
		t.Fatal("makespan below a job finish")
	}
}

func TestRunMultiWorkConservation(t *testing.T) {
	// Total compute across the machine equals the sum of both jobs' work.
	m := multiMesh()
	st, _ := task.Measure(fibRoot(14))
	res, err := RunMulti(MultiConfig{
		Mesh:    m,
		Quantum: 20000,
		Jobs: []Job{
			{Name: "a", Source: m.ID(topo.Coord{X: 2, Y: 2}), Root: fibRoot(14), Estimator: core.NewPalirria()},
			{Name: "b", Source: m.ID(topo.Coord{X: 6, Y: 6}), Root: fibRoot(14), Estimator: core.NewPalirria()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var compute int64
	for _, ws := range res.Workers {
		compute += ws.Cycles[metrics.Compute]
	}
	if compute != 2*st.Work {
		t.Fatalf("compute = %d, want %d", compute, 2*st.Work)
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	m := multiMesh()
	cfg := func() MultiConfig {
		mm := multiMesh()
		return MultiConfig{
			Mesh:    mm,
			Quantum: 20000,
			Seed:    5,
			Jobs: []Job{
				{Name: "a", Source: m.ID(topo.Coord{X: 2, Y: 2}), Root: fibRoot(13), Estimator: core.NewPalirria()},
				{Name: "b", Source: m.ID(topo.Coord{X: 6, Y: 6}), Root: fibRoot(14), Policy: "random", Estimator: core.NewPalirria()},
			},
		}
	}
	r1, err := RunMulti(cfg())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunMulti(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if r1.MakespanCycles != r2.MakespanCycles || r1.Events != r2.Events {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d",
			r1.MakespanCycles, r1.Events, r2.MakespanCycles, r2.Events)
	}
	for i := range r1.Jobs {
		if r1.Jobs[i].FinishCycles != r2.Jobs[i].FinishCycles {
			t.Fatalf("job %d finish differs", i)
		}
	}
}

func TestRunMultiNoCrossJobStealing(t *testing.T) {
	// With two jobs far apart on the mesh, each job's workers must only
	// execute its own tasks: the total tasks per job region must match
	// each tree independently. We verify via per-job task counts summed
	// over the cores each job ever owned... simpler invariant: combined
	// task count matches the two trees combined, and each job finishes —
	// impossible if tasks leaked between victim lists mid-run.
	m := multiMesh()
	stA, _ := task.Measure(fibRoot(12))
	stB, _ := task.Measure(fibRoot(15))
	res, err := RunMulti(MultiConfig{
		Mesh:    m,
		Quantum: 25000,
		Jobs: []Job{
			{Name: "a", Source: m.ID(topo.Coord{X: 1, Y: 1}), Root: fibRoot(12), Estimator: core.NewPalirria()},
			{Name: "b", Source: m.ID(topo.Coord{X: 7, Y: 7}), Root: fibRoot(15), Estimator: core.NewPalirria()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks int64
	for _, ws := range res.Workers {
		tasks += ws.TasksRun
	}
	if tasks != stA.Tasks+stB.Tasks {
		t.Fatalf("tasks = %d, want %d", tasks, stA.Tasks+stB.Tasks)
	}
}

func TestRunMultiFreedCoresReused(t *testing.T) {
	// Job a is short; job b is long and greedy. After a finishes, b must
	// grow into the released cores.
	m := multiMesh()
	shortRoot := task.Leaf("short", 30000)
	res, err := RunMulti(MultiConfig{
		Mesh:    m,
		Quantum: 15000,
		Jobs: []Job{
			{Name: "short", Source: m.ID(topo.Coord{X: 2, Y: 2}), Root: shortRoot, FixedWorkers: 40},
			{Name: "long", Source: m.ID(topo.Coord{X: 6, Y: 6}), Root: fibRoot(17), Estimator: core.NewPalirria()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	shortJob, longJob := res.Jobs[0], res.Jobs[1]
	if shortJob.FinishCycles >= longJob.FinishCycles {
		t.Fatalf("short job (%d) did not finish before long job (%d)",
			shortJob.FinishCycles, longJob.FinishCycles)
	}
	// The long job's peak allotment exceeds what was available while the
	// greedy short job held 40 cores (79 usable - 40 = 39... its initial
	// neighbourhood was at most 39; growth beyond the short job's finish
	// shows reuse). Check it grew after the short job's finish time.
	after := longJob.Timeline.At(longJob.FinishCycles - 1)
	during := longJob.Timeline.At(shortJob.FinishCycles - 1)
	if after < during {
		t.Logf("long job shrank after short finished (%d -> %d): workload tail", during, after)
	}
	if longJob.Timeline.Max() <= 5 {
		t.Fatalf("long job never grew: max %d", longJob.Timeline.Max())
	}
}

func TestRunMultiFixedJobs(t *testing.T) {
	// Non-adaptive jobs hold their requested size (subject to contention).
	m := multiMesh()
	res, err := RunMulti(MultiConfig{
		Mesh:    m,
		Quantum: 20000,
		Jobs: []Job{
			{Name: "f", Source: m.ID(topo.Coord{X: 4, Y: 4}), Root: fibRoot(15), FixedWorkers: 12},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Jobs[0].Timeline.Max(); got != 12 {
		t.Fatalf("fixed job max workers = %d, want 12", got)
	}
}
