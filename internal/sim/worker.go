package sim

import (
	"fmt"

	"palirria/internal/deque"
	"palirria/internal/metrics"
	"palirria/internal/task"
	"palirria/internal/topo"
)

type workerState uint8

const (
	// wsRun: executing the top frame of the stack.
	wsRun workerState = iota
	// wsSteal: out of work, probing victims — or blocked at the sync of a
	// stolen child and leapfrogging (stealing while waiting).
	wsSteal
)

// worker is one simulated worker thread, pinned to its core.
type worker struct {
	id    topo.CoreID
	eng   *engine
	job   *jobState
	state workerState
	epoch uint64

	// stack holds the frames being executed, innermost last. Frames below
	// the top are either suspended by an inline call or blocked at the
	// sync of a stolen child.
	stack []*frame
	// queue is the WOOL task queue: owner at the bottom, thieves on top.
	queue *deque.Queue[*frame]

	stats metrics.WorkerStats

	// draining marks a removed worker: it may not steal, keeps processing
	// its own queue, remains a victim, and retires when empty (§4.1.1).
	draining bool
	retired  bool

	// victims is the current steal round's candidate list; vIdx the probe
	// position within it.
	victims []topo.CoreID
	vIdx    int
	// backoff is the current exponential backoff; reset when work arrives.
	backoff int64
	// maxQueueLen is the µ(Q) high-water mark since the last quantum
	// boundary, maintained by the spawn path.
	maxQueueLen int
	// tax accumulates contention delays inflicted by thieves, charged at
	// the worker's next activation.
	tax int64
}

func newWorker(e *engine, id topo.CoreID) *worker {
	return &worker{
		id:    id,
		eng:   e,
		queue: deque.MustQueue[*frame](e.queueCap, e.stealableSlots),
	}
}

func (w *worker) top() *frame {
	if len(w.stack) == 0 {
		return nil
	}
	return w.stack[len(w.stack)-1]
}

func (w *worker) pushFrame(f *frame) {
	if len(w.stack) == 0 {
		w.eng.busy++
	}
	w.stack = append(w.stack, f)
	w.stats.TasksRun++
}

func (w *worker) popFrameStack() {
	w.stack[len(w.stack)-1] = nil
	w.stack = w.stack[:len(w.stack)-1]
	if len(w.stack) == 0 {
		w.eng.busy--
	}
}

// step processes one simulator event for this worker at e.now.
func (w *worker) step() {
	// Pay accumulated contention first: thieves hammering this worker's
	// queue delayed whatever it was about to do.
	if w.tax > 0 {
		t := w.tax
		w.tax = 0
		w.stats.Add(metrics.Contention, t)
		w.eng.schedule(w, w.eng.now+t)
		return
	}
	switch w.state {
	case wsRun:
		w.stepRun()
	case wsSteal:
		w.stepSteal()
	}
}

// chargeTax is called by thieves operating on this worker's queue. Only
// busy victims suffer: an idle owner's queue top is not contended.
func (w *worker) chargeTax(cycles int64) {
	if w.state == wsRun && !w.retired {
		w.tax += cycles
	}
}

// stepRun executes the next op of the top frame.
func (w *worker) stepRun() {
	e := w.eng
	f := w.top()
	if f == nil {
		// Nothing to run: fall through to work acquisition.
		w.acquireWork()
		return
	}
	if f.programDone() {
		if f.youngestSpawn() != nil {
			// Implicit join of remaining spawns at task end.
			w.handleSync(f)
			return
		}
		w.completeFrame(f)
		return
	}
	op := f.spec.Ops[f.pc]
	switch op.Kind {
	case task.OpCompute:
		f.pc++
		work := op.Work
		if factor := e.machine.ComputeFactor(f.spec.MemBound, e.busy); factor > 1 {
			work = int64(float64(work) * factor)
		}
		w.stats.Add(metrics.Compute, work)
		e.schedule(w, e.now+work)

	case task.OpSpawn:
		child := newFrame(op.Gen(), w.id, f)
		if w.queue.PushBottom(child) {
			child.queued = true
			f.spawns = append(f.spawns, child)
			f.pc++
			if n := w.queue.StealableLen(); n > w.maxQueueLen {
				w.maxQueueLen = n
			}
			w.stats.Add(metrics.Spawn, e.costs.Spawn)
			e.trace(TraceSpawn, w.id, topo.NoCore, w.queue.Len(), child.spec.Label)
			e.schedule(w, e.now+e.costs.Spawn)
			return
		}
		// Queue full: WOOL executes the spawn inline like a call. The
		// parent's pc advances when the child completes; the spawn record
		// stays outstanding (already done) so the matching sync joins it.
		child.spawnInline = true
		f.spawns = append(f.spawns, child)
		w.pushFrame(child)
		w.stats.Add(metrics.TaskInit, e.costs.TaskInit)
		e.schedule(w, e.now+e.costs.TaskInit)

	case task.OpCall:
		child := newFrame(op.Gen(), w.id, f)
		child.calledInline = true
		w.pushFrame(child)
		w.stats.Add(metrics.TaskInit, e.costs.TaskInit)
		e.schedule(w, e.now+e.costs.TaskInit)

	case task.OpSync:
		w.handleSync(f)

	default:
		panic(fmt.Sprintf("sim: worker %d: bad op kind %v", w.id, op.Kind))
	}
}

// handleSync joins the youngest outstanding spawn of f (explicit OpSync or
// the implicit join at task end).
func (w *worker) handleSync(f *frame) {
	e := w.eng
	c := f.youngestSpawn()
	if c == nil {
		panic(fmt.Sprintf("sim: worker %d: sync with no outstanding spawn", w.id))
	}
	switch {
	case c.done:
		// A thief finished it (or it finished inline earlier): join.
		f.popSpawn()
		f.pc++
		w.stats.Add(metrics.Sync, e.costs.SyncStolen)
		e.schedule(w, e.now+e.costs.SyncStolen)

	case c.queued:
		// Work-first: pop the child from our own queue and run it inline.
		got, ok := w.queue.PopBottom()
		if !ok || got != c {
			panic(fmt.Sprintf("sim: worker %d: queue bottom is not the youngest spawn", w.id))
		}
		c.queued = false
		c.inlineJoin = true
		w.pushFrame(c)
		w.stats.Add(metrics.Sync, e.costs.SyncLocal)
		e.schedule(w, e.now+e.costs.SyncLocal)

	default:
		// Stolen and unfinished: block this frame and leapfrog — steal
		// other work while waiting (unless draining, in which case the
		// worker just waits for the thief's completion signal).
		c.waiter = w
		w.state = wsSteal
		w.beginStealRound()
		w.stats.Add(metrics.Sync, e.costs.SyncStolen)
		e.trace(TraceBlock, w.id, topo.NoCore, 0, c.spec.Label)
		e.schedule(w, e.now+e.costs.SyncStolen)
	}
}

// completeFrame finishes the top frame and resumes whatever is underneath.
func (w *worker) completeFrame(f *frame) {
	e := w.eng
	f.done = true
	w.popFrameStack()
	e.trace(TraceTaskDone, w.id, topo.NoCore, 0, f.spec.Label)

	if f.isRoot {
		e.finishJob(w.job)
		return
	}

	// Wake a remote waiter blocked at this frame's sync, if it is actually
	// sitting idle in its steal loop on exactly this join.
	if f.stolen && f.waiter != nil {
		waiter := f.waiter
		f.waiter = nil
		if waiter.state == wsSteal && !waiter.retired && waiter.top() == f.parent {
			e.schedule(waiter, e.now+1)
		}
	}

	if parent := w.top(); parent != nil {
		switch {
		case f.inlineJoin:
			// Popped at the matching sync: the join completes now.
			parent.popSpawn()
			parent.pc++
			w.state = wsRun
			e.schedule(w, e.now)
		case f.spawnInline, f.calledInline:
			// Inline call: resume the parent past the call/spawn op.
			parent.pc++
			w.state = wsRun
			e.schedule(w, e.now)
		default:
			// f was a stolen task executed while parent is blocked at a
			// sync: return to the blocked parent and re-check its join.
			w.state = wsRun
			e.schedule(w, e.now)
		}
		return
	}
	w.acquireWork()
}

// acquireWork runs with an empty stack: pop the own queue, then steal,
// then — if draining — retire.
func (w *worker) acquireWork() {
	e := w.eng
	if f, ok := w.queue.PopBottom(); ok {
		f.queued = false
		w.backoff = 0
		w.pushFrame(f)
		w.state = wsRun
		w.stats.Add(metrics.TaskInit, e.costs.Pop)
		e.schedule(w, e.now+e.costs.Pop)
		return
	}
	if w.draining {
		w.retire()
		return
	}
	w.state = wsSteal
	w.beginStealRound()
	e.schedule(w, e.now)
}

func (w *worker) retire() {
	w.retired = true
	w.stats.RetiredAt = w.eng.now
	w.eng.trace(TraceRetire, w.id, topo.NoCore, 0, "")
	// No event scheduled: the worker exits. A later quantum may revoke the
	// removal and bootstrap it again.
}

// beginStealRound refreshes the victim candidates (random policies shuffle
// per round).
func (w *worker) beginStealRound() {
	w.victims = w.victims[:0]
	if w.job != nil && w.job.victims != nil {
		w.victims = append(w.victims, w.job.victims.Victims(w.id)...)
	}
	w.vIdx = 0
}

// stepSteal performs one probe of the steal loop, or resumes a blocked
// parent whose stolen child completed.
func (w *worker) stepSteal() {
	e := w.eng

	// Resume path: blocked parent whose awaited child finished.
	if p := w.top(); p != nil {
		c := p.youngestSpawn()
		if c == nil || c.done {
			w.state = wsRun
			w.backoff = 0
			e.schedule(w, e.now)
			return
		}
		if w.draining {
			// Removed workers may not steal; wait for the thief's signal.
			return
		}
	} else if w.draining {
		w.retire()
		return
	}

	if len(w.victims) == 0 {
		// No victims (degenerate allotment): idle and retry.
		w.stats.Add(metrics.Idle, e.costs.Backoff)
		w.beginStealRound()
		e.schedule(w, e.now+e.costs.Backoff)
		return
	}

	victim := w.victims[w.vIdx]
	vw := e.workers[victim]
	if vw != nil && vw.queue.StealableLen() > 0 {
		f, ok := vw.queue.StealTop()
		if !ok {
			panic("sim: stealable task vanished in a single-threaded simulator")
		}
		f.queued = false
		f.stolen = true
		vw.stats.StolenFrom++
		vw.chargeTax(e.costs.StealTax)
		cost := e.costs.Steal + e.machine.StealPenalty(w.id, victim)
		mig := e.machine.MigrationPenalty(f.owner, w.id, f.spec.Footprint)
		w.stats.Steals++
		w.stats.Add(metrics.StealSuccess, cost)
		if mig > 0 {
			w.stats.Add(metrics.Migration, mig)
		}
		w.backoff = 0
		e.trace(TraceSteal, w.id, victim, 0, f.spec.Label)
		w.pushFrame(f)
		w.state = wsRun
		e.schedule(w, e.now+cost+mig)
		return
	}

	// Failed probe: "trying to steal from victims that have no stealable
	// tasks" — the wasteful operation the evaluation counts. The probe
	// also perturbs a busy victim's cache lines.
	if vw != nil {
		vw.chargeTax(e.costs.ProbeTax)
	}
	cost := e.costs.Probe + e.machine.ProbePenalty(w.id, victim)
	w.stats.FailedProbes++
	w.stats.Add(metrics.ProbeFail, cost)
	e.trace(TraceProbeFail, w.id, victim, 0, "")
	w.vIdx++
	if w.vIdx >= len(w.victims) {
		// Round exhausted: back off exponentially, then retry.
		if w.backoff == 0 {
			w.backoff = e.costs.Backoff
		} else if w.backoff < e.costs.BackoffMax {
			w.backoff *= 2
			if w.backoff > e.costs.BackoffMax {
				w.backoff = e.costs.BackoffMax
			}
		}
		w.stats.Add(metrics.Idle, w.backoff)
		w.beginStealRound()
		e.schedule(w, e.now+cost+w.backoff)
		return
	}
	e.schedule(w, e.now+cost)
}
