package sim

import (
	"container/heap"
	"fmt"

	"palirria/internal/core"
	"palirria/internal/dvs"
	"palirria/internal/metrics"
	"palirria/internal/obs"
	"palirria/internal/sysched"
	"palirria/internal/task"
	"palirria/internal/topo"
	"palirria/internal/trace"
)

// Config describes one single-application simulation run.
type Config struct {
	// Mesh is the machine topology (with reservations applied).
	Mesh *topo.Mesh
	// Source is the core the workload starts on.
	Source topo.CoreID
	// Root is the workload's root task.
	Root *task.Spec

	// InitialDiaspora sets the starting allotment (default 1 → 5 workers).
	InitialDiaspora int
	// MaxDiaspora caps adaptive growth (default: mesh maximum).
	MaxDiaspora int

	// Costs is the runtime cost model (zero value → DefaultCosts).
	Costs *Costs
	// Machine is the platform penalty model (nil → Ideal).
	Machine MachineModel

	// Policy selects victim selection: "dvs" (default), "random",
	// "roundrobin".
	Policy string
	// Seed drives the random policy.
	Seed uint64

	// QueueCap is each worker's task-queue capacity (default 1024).
	QueueCap int
	// StealableSlots bounds µ(Q), "set to the same constant number that is
	// sufficient for the largest number of workers" (§2.1; default 16).
	StealableSlots int

	// Estimator enables adaptation; nil runs a fixed allotment.
	Estimator core.Estimator
	// NoFilter disables the system-level false-positive filter.
	NoFilter bool
	// Quantum is the estimation interval in cycles (default 50000).
	Quantum int64

	// MaxCycles aborts runaway simulations (default 50e9).
	MaxCycles int64

	// TraceCap enables the scheduler event trace, keeping the newest
	// TraceCap events (0 disables tracing unless Observe or Introspect is
	// set).
	TraceCap int
	// Observe enables full observability: the run returns a drained
	// obs.TraceData ready for Chrome trace export. When TraceCap is 0 the
	// ring capacity defaults to 1<<16 events.
	Observe bool
	// Introspect additionally records a per-quantum obs.EstimatorSnapshot
	// (DMC worker classification, raw vs. filtered desire, grants).
	Introspect bool
}

// Result is the outcome of a single-application run.
type Result struct {
	// ExecCycles is the total execution time, measured at the source.
	ExecCycles int64
	// Workers holds per-core statistics for every core that participated.
	Workers map[topo.CoreID]*metrics.WorkerStats
	// Timeline is the allotment size over time.
	Timeline *trace.Timeline
	// Decisions logs every quantum's estimate and grant.
	Decisions *trace.Log
	// FinalAllotment is the allotment when the workload completed.
	FinalAllotment *topo.Allotment
	// Events counts processed simulator events (engine health metric).
	Events int64
	// Trace holds the newest scheduler events when tracing was enabled.
	Trace []TraceEvent
	// Obs is the drained observability trace (nil unless tracing was
	// enabled); feed it to obs.WriteChrome for a Perfetto-loadable file.
	Obs *obs.TraceData
	// EstimatorTrace holds the per-quantum estimator introspection
	// snapshots (Config.Introspect).
	EstimatorTrace []obs.EstimatorSnapshot
}

// Report converts the result to the metrics aggregate.
func (r *Result) Report() *metrics.Report {
	rep := &metrics.Report{
		ExecCycles: r.ExecCycles,
		Workers:    map[int]*metrics.WorkerStats{},
	}
	for id, ws := range r.Workers {
		rep.Workers[int(id)] = ws
		rep.TotalSteals += ws.Steals
		rep.TotalFailedProbes += ws.FailedProbes
		rep.TotalTasks += ws.TasksRun
	}
	rep.MaxWorkers = r.Timeline.Max()
	rep.WorkerCycleArea = r.Timeline.Area(r.ExecCycles)
	return rep
}

// Job describes one application of a multiprogrammed simulation.
type Job struct {
	// Name labels the job in results.
	Name string
	// Source is the job's source core; must be distinct across jobs.
	Source topo.CoreID
	// Root is the job's root task.
	Root *task.Spec
	// Estimator adapts the job's allotment; nil keeps requesting
	// FixedWorkers.
	Estimator core.Estimator
	// Policy selects the job's victim selection ("dvs" default).
	Policy string
	// FixedWorkers is the non-adaptive desired size (estimator == nil).
	FixedWorkers int
}

// MultiConfig describes a multiprogrammed run: several jobs co-scheduled
// on one mesh through the sysched arbiter. This is the paper's stated next
// step ("high-load multiprogrammed configurations", §8) built on the same
// engine: competition produces the incomplete allotments of Fig. 2.
type MultiConfig struct {
	Mesh *topo.Mesh
	Jobs []Job

	Costs          *Costs
	Machine        MachineModel
	Seed           uint64
	QueueCap       int
	StealableSlots int
	NoFilter       bool
	Quantum        int64
	MaxCycles      int64

	// TraceCap, Observe and Introspect mirror Config's observability
	// knobs for multiprogrammed runs.
	TraceCap   int
	Observe    bool
	Introspect bool
}

// JobResult is one job's outcome within a multiprogrammed run.
type JobResult struct {
	// Name echoes the job name.
	Name string
	// StartCycles and FinishCycles bound the job's execution.
	StartCycles, FinishCycles int64
	// Timeline is the job's allotment size over time.
	Timeline *trace.Timeline
	// Decisions logs the job's quanta.
	Decisions *trace.Log
}

// ExecCycles is the job's makespan.
func (jr *JobResult) ExecCycles() int64 { return jr.FinishCycles - jr.StartCycles }

// MultiResult is the outcome of a multiprogrammed run.
type MultiResult struct {
	// Jobs holds per-job results in configuration order.
	Jobs []*JobResult
	// Workers holds per-core statistics (across all jobs that used the
	// core).
	Workers map[topo.CoreID]*metrics.WorkerStats
	// MakespanCycles is when the last job finished.
	MakespanCycles int64
	// Events counts processed simulator events.
	Events int64
	// Obs is the drained observability trace (nil unless tracing was
	// enabled).
	Obs *obs.TraceData
	// EstimatorTrace holds per-quantum introspection snapshots across all
	// jobs (MultiConfig.Introspect); the Job field tells them apart.
	EstimatorTrace []obs.EstimatorSnapshot
}

// event is one scheduled worker activation. Each worker has at most one
// live event; epoch invalidates superseded ones.
type event struct {
	time  int64
	seq   uint64
	w     *worker
	epoch uint64
	// quantum marks the estimator tick (w == nil).
	quantum bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// jobState is one application's live scheduling state inside the engine.
type jobState struct {
	idx    int
	name   string
	source topo.CoreID
	policy string
	fixed  int

	rootFrame *frame
	granted   *topo.Allotment
	victims   dvs.Policy

	// mgr grants zones in single-job mode; app arbitrates cores in
	// multi-job mode. Exactly one is non-nil.
	mgr *sysched.Manager
	app *sysched.App

	ctrl *core.Controller

	started  bool
	startAt  int64
	finished bool
	finishAt int64

	timeline   trace.Timeline
	decisions  trace.Log
	lastWasted map[topo.CoreID]int64
}

// engine runs one simulation (one or many jobs).
type engine struct {
	costs   Costs
	machine MachineModel
	mesh    *topo.Mesh

	queueCap, stealableSlots int
	seed                     uint64
	quantum                  int64
	maxCycles                int64
	noFilter                 bool

	now    int64
	seq    uint64
	events eventHeap

	workers    map[topo.CoreID]*worker
	jobs       []*jobState
	arb        *sysched.Arbiter
	unfinished int

	// busy counts workers with a non-empty frame stack: the population
	// consuming memory bandwidth in the NUMA model's ComputeFactor.
	busy int

	// tracer and ring record scheduler events when enabled; introspect
	// additionally records per-quantum estimator snapshots. The simulator
	// is single-threaded, so one keep-newest ring serves every worker.
	tracer     *obs.Tracer
	ring       *obs.Ring
	introspect bool

	eventCount int64
}

// enableObs turns on event tracing (and optionally introspection) with the
// legacy keep-newest semantics: the newest traceCap events survive.
func (e *engine) enableObs(traceCap int, introspect bool) {
	if traceCap <= 0 {
		traceCap = 1 << 16
	}
	e.tracer = obs.NewTracer(obs.WithRingCap(traceCap))
	e.ring = e.tracer.NewRing(true)
	e.introspect = introspect
}

// Run executes a single-application configuration to completion.
func Run(cfg Config) (*Result, error) {
	e, err := newEngine(engineParams{
		mesh: cfg.Mesh, costs: cfg.Costs, machine: cfg.Machine,
		queueCap: cfg.QueueCap, stealableSlots: cfg.StealableSlots,
		seed: cfg.Seed, quantum: cfg.Quantum, maxCycles: cfg.MaxCycles,
		noFilter: cfg.NoFilter,
	})
	if err != nil {
		return nil, err
	}
	if cfg.TraceCap > 0 || cfg.Observe || cfg.Introspect {
		e.enableObs(cfg.TraceCap, cfg.Introspect)
	}
	if cfg.Root == nil {
		return nil, fmt.Errorf("sim: nil root task")
	}
	if _, err := task.Validate(cfg.Root); err != nil {
		return nil, fmt.Errorf("sim: invalid root: %w", err)
	}
	initialD := cfg.InitialDiaspora
	if initialD == 0 {
		initialD = 1
	}
	opts := []sysched.Option{sysched.WithInitialDiaspora(initialD)}
	if cfg.MaxDiaspora > 0 {
		opts = append(opts, sysched.WithMaxDiaspora(cfg.MaxDiaspora))
	}
	mgr, err := sysched.NewManager(cfg.Mesh, cfg.Source, opts...)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	j := &jobState{
		name:   "job",
		source: cfg.Source,
		policy: cfg.Policy,
		mgr:    mgr,
	}
	if cfg.Estimator != nil {
		j.ctrl = core.NewController(cfg.Estimator)
		if cfg.NoFilter {
			j.ctrl.Filter = nil
		}
	}
	e.addJob(j, cfg.Root, mgr.Current())
	if err := e.run(); err != nil {
		return nil, err
	}
	res := &Result{
		ExecCycles:     j.finishAt,
		Workers:        map[topo.CoreID]*metrics.WorkerStats{},
		Timeline:       &j.timeline,
		Decisions:      &j.decisions,
		FinalAllotment: j.granted,
		Events:         e.eventCount,
	}
	for id, w := range e.workers {
		res.Workers[id] = &w.stats
	}
	if e.tracer != nil {
		res.Obs = e.tracer.Drain()
		res.Trace = eventsFromObs(res.Obs.Events)
		res.EstimatorTrace = res.Obs.Snapshots
	}
	return res, nil
}

// RunMulti executes a multiprogrammed configuration to completion.
func RunMulti(cfg MultiConfig) (*MultiResult, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("sim: no jobs")
	}
	e, err := newEngine(engineParams{
		mesh: cfg.Mesh, costs: cfg.Costs, machine: cfg.Machine,
		queueCap: cfg.QueueCap, stealableSlots: cfg.StealableSlots,
		seed: cfg.Seed, quantum: cfg.Quantum, maxCycles: cfg.MaxCycles,
		noFilter: cfg.NoFilter,
	})
	if err != nil {
		return nil, err
	}
	if cfg.TraceCap > 0 || cfg.Observe || cfg.Introspect {
		e.enableObs(cfg.TraceCap, cfg.Introspect)
	}
	e.arb = sysched.NewArbiter(cfg.Mesh)
	for i, jc := range cfg.Jobs {
		if jc.Root == nil {
			return nil, fmt.Errorf("sim: job %d: nil root", i)
		}
		if _, err := task.Validate(jc.Root); err != nil {
			return nil, fmt.Errorf("sim: job %d: %w", i, err)
		}
		name := jc.Name
		if name == "" {
			name = fmt.Sprintf("job%d", i)
		}
		app, err := e.arb.Register(name, jc.Source)
		if err != nil {
			return nil, fmt.Errorf("sim: job %d: %w", i, err)
		}
		j := &jobState{
			idx:    i,
			name:   name,
			source: jc.Source,
			policy: jc.Policy,
			fixed:  jc.FixedWorkers,
			app:    app,
		}
		if jc.Estimator != nil {
			j.ctrl = core.NewController(jc.Estimator)
			if cfg.NoFilter {
				j.ctrl.Filter = nil
			}
		}
		e.addJob(j, jc.Root, app.Allotment())
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	out := &MultiResult{
		Workers:        map[topo.CoreID]*metrics.WorkerStats{},
		MakespanCycles: e.now,
		Events:         e.eventCount,
	}
	for _, j := range e.jobs {
		out.Jobs = append(out.Jobs, &JobResult{
			Name:         j.name,
			StartCycles:  j.startAt,
			FinishCycles: j.finishAt,
			Timeline:     &j.timeline,
			Decisions:    &j.decisions,
		})
		if j.finishAt > out.MakespanCycles {
			out.MakespanCycles = j.finishAt
		}
	}
	for id, w := range e.workers {
		out.Workers[id] = &w.stats
	}
	if e.tracer != nil {
		out.Obs = e.tracer.Drain()
		out.EstimatorTrace = out.Obs.Snapshots
	}
	return out, nil
}

type engineParams struct {
	mesh           *topo.Mesh
	costs          *Costs
	machine        MachineModel
	queueCap       int
	stealableSlots int
	seed           uint64
	quantum        int64
	maxCycles      int64
	noFilter       bool
}

func newEngine(p engineParams) (*engine, error) {
	if p.mesh == nil {
		return nil, fmt.Errorf("sim: nil mesh")
	}
	e := &engine{
		costs:   DefaultCosts(),
		machine: Ideal{},
		mesh:    p.mesh,
		workers: make(map[topo.CoreID]*worker, p.mesh.NumCores()),
	}
	if p.costs != nil {
		e.costs = *p.costs
	}
	if p.machine != nil {
		e.machine = p.machine
	}
	e.queueCap = p.queueCap
	if e.queueCap == 0 {
		e.queueCap = 1024
	}
	e.stealableSlots = p.stealableSlots
	if e.stealableSlots == 0 {
		e.stealableSlots = 16
	}
	e.seed = p.seed
	e.quantum = p.quantum
	if e.quantum == 0 {
		e.quantum = 50000
	}
	e.maxCycles = p.maxCycles
	if e.maxCycles == 0 {
		e.maxCycles = 50e9
	}
	e.noFilter = p.noFilter
	return e, nil
}

// addJob installs a job with its initial allotment and bootstraps workers.
func (e *engine) addJob(j *jobState, root *task.Spec, granted *topo.Allotment) {
	j.granted = granted
	j.lastWasted = map[topo.CoreID]int64{}
	j.rootFrame = newFrame(root, j.source, nil)
	j.rootFrame.isRoot = true
	j.started = true
	j.startAt = e.now
	e.jobs = append(e.jobs, j)
	e.unfinished++
	e.rebuildPolicy(j)
	for _, id := range granted.Members() {
		w := e.newWorker(id, j)
		if id == j.source {
			w.pushFrame(j.rootFrame)
			w.state = wsRun
		} else {
			w.state = wsSteal
			w.beginStealRound()
		}
		e.schedule(w, e.now)
	}
	j.timeline.Record(e.now, granted.Size())
	if len(e.jobs) == 1 && e.needsQuantum() {
		e.scheduleQuantum(e.now + e.quantum)
	}
}

// needsQuantum reports whether any job requires periodic estimation (any
// controller, or any arbitrated job that may regrow).
func (e *engine) needsQuantum() bool {
	if e.arb != nil {
		return true
	}
	for _, j := range e.jobs {
		if j.ctrl != nil {
			return true
		}
	}
	return false
}

func (e *engine) newWorker(id topo.CoreID, j *jobState) *worker {
	w := e.workers[id]
	if w == nil {
		w = newWorker(e, id)
		e.workers[id] = w
		w.stats.JoinedAt = e.now
		if e.tracer != nil {
			e.tracer.SetWorkerName(int32(id), fmt.Sprintf("core %d", id))
		}
	}
	w.job = j
	w.retired = false
	w.draining = false
	w.stats.RetiredAt = -1
	return w
}

// rebuildPolicy rebuilds victim lists over the job's resident set: granted
// members plus draining workers, which remain victims until they retire
// (§4.1.1).
func (e *engine) rebuildPolicy(j *jobState) {
	resident := e.residentAllotment(j)
	switch j.policy {
	case "random":
		j.victims = dvs.NewRandom(resident, e.seed^uint64(j.idx)*0x9e3779b97f4a7c15)
	case "roundrobin":
		j.victims = dvs.NewRoundRobin(resident)
	default:
		j.victims = dvs.New(topo.Classify(resident))
	}
}

// residentAllotment is the job's granted allotment plus its draining
// workers.
func (e *engine) residentAllotment(j *jobState) *topo.Allotment {
	var extra []topo.CoreID
	for id, w := range e.workers {
		if w.job == j && w.draining && !w.retired && !j.granted.Contains(id) {
			extra = append(extra, id)
		}
	}
	if len(extra) == 0 {
		return j.granted
	}
	cores := append(append([]topo.CoreID(nil), j.granted.Members()...), extra...)
	a, err := topo.NewAllotmentFromCores(e.mesh, j.source, cores)
	if err != nil {
		return j.granted
	}
	return a
}

// schedule (re)schedules w's next activation at time t, superseding any
// outstanding event.
func (e *engine) schedule(w *worker, t int64) {
	w.epoch++
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, w: w, epoch: w.epoch})
}

func (e *engine) scheduleQuantum(t int64) {
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, quantum: true})
}

func (e *engine) run() error {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.time < e.now {
			return fmt.Errorf("sim: time went backwards (%d < %d)", ev.time, e.now)
		}
		e.now = ev.time
		if e.now > e.maxCycles {
			return fmt.Errorf("sim: exceeded MaxCycles=%d — likely deadlock or runaway workload", e.maxCycles)
		}
		if e.unfinished == 0 {
			break
		}
		if ev.quantum {
			e.quantumTick()
			if e.unfinished > 0 {
				e.scheduleQuantum(e.now + e.quantum)
			}
			continue
		}
		if ev.epoch != ev.w.epoch || ev.w.retired {
			continue // superseded or dead
		}
		e.eventCount++
		ev.w.step()
	}
	if e.unfinished > 0 {
		return fmt.Errorf("sim: event queue drained with %d job(s) unfinished", e.unfinished)
	}
	return nil
}

// quantumTick runs every unfinished job's estimator and applies grants.
func (e *engine) quantumTick() {
	for _, j := range e.jobs {
		if j.finished {
			continue
		}
		desired := j.granted.Size()
		var snap *core.Snapshot
		if j.ctrl != nil {
			snap = e.snapshot(j)
			desired = j.ctrl.Step(snap)
		} else if j.fixed > 0 {
			desired = j.fixed
		}
		prev := j.granted
		var next *topo.Allotment
		var changed bool
		if j.app != nil {
			next = e.arb.Request(j.app, desired)
			changed = next.Size() != prev.Size() || !sameMembers(next, prev)
		} else {
			next, changed = j.mgr.Grant(desired)
		}
		if j.ctrl != nil {
			j.ctrl.Granted(next.Size())
			j.decisions.Add(trace.Decision{
				Time:      e.now,
				Estimator: j.ctrl.Est.Name(),
				Desired:   desired,
				Granted:   next.Size(),
			})
			e.trace(TraceQuantum, j.source, topo.NoCore, desired, j.name)
			// Every quantum, even unchanged: the ring keeps only the newest
			// events, so the Chrome allotment counter needs samples inside
			// whatever window survives a long run.
			e.trace(TraceGrant, j.source, topo.NoCore, next.Size(), j.name)
			if e.introspect {
				e.tracer.RecordSnapshot(e.estimatorSnapshot(j, snap, prev.Size(), next.Size()))
			}
		}
		if !changed {
			continue
		}
		e.applyGrant(j, prev, next)
	}
}

func sameMembers(a, b *topo.Allotment) bool {
	if a.Size() != b.Size() {
		return false
	}
	for _, id := range a.Members() {
		if !b.Contains(id) {
			return false
		}
	}
	return true
}

// applyGrant transitions workers between the old and new allotments.
func (e *engine) applyGrant(j *jobState, prev, next *topo.Allotment) {
	j.granted = next
	// Workers leaving the grant drain; workers (re)entering bootstrap or
	// revoke their removal.
	for _, id := range prev.Members() {
		if !next.Contains(id) {
			if w := e.workers[id]; w != nil && w.job == j {
				w.draining = true
			}
		}
	}
	for _, id := range next.Members() {
		w := e.workers[id]
		switch {
		case w == nil || w.job != j || w.retired:
			// New to this job (or returning after retirement): fresh
			// bootstrap as a thief.
			w = e.newWorker(id, j)
			w.state = wsSteal
			w.beginStealRound()
			e.schedule(w, e.now+e.costs.Bootstrap)
		case w.draining:
			// Removal revoked before the worker finished draining.
			w.draining = false
		}
	}
	e.rebuildPolicy(j)
	j.timeline.Record(e.now, j.granted.Size())
	e.trace(TraceGrant, j.source, topo.NoCore, j.granted.Size(), j.name)
}

// snapshot builds the estimator's view of job j at the current boundary.
func (e *engine) snapshot(j *jobState) *core.Snapshot {
	class := topo.Classify(j.granted)
	ws := make(map[topo.CoreID]*core.WorkerSnapshot, j.granted.Size())
	for _, id := range j.granted.Members() {
		w := e.workers[id]
		if w == nil || w.job != j {
			continue
		}
		total := w.stats.AStealWasted()
		delta := total - j.lastWasted[id]
		j.lastWasted[id] = total
		maxQ := w.maxQueueLen
		if cur := w.queue.StealableLen(); cur > maxQ {
			maxQ = cur
		}
		w.maxQueueLen = 0
		ws[id] = &core.WorkerSnapshot{
			ID:           id,
			QueueLen:     w.queue.StealableLen(),
			MaxQueueLen:  maxQ,
			Busy:         !w.retired && len(w.stack) > 0,
			WastedCycles: delta,
			Draining:     w.draining,
		}
	}
	return &core.Snapshot{
		Allotment:     j.granted,
		Class:         class,
		Workers:       ws,
		QuantumCycles: e.quantum,
		Time:          e.now,
	}
}

// estimatorSnapshot builds the per-quantum introspection record for job j:
// the controller's raw and filtered desire plus, when the estimator
// implements core.Introspector, its annotated per-worker view and scalar
// inputs.
func (e *engine) estimatorSnapshot(j *jobState, snap *core.Snapshot, prevSize, granted int) obs.EstimatorSnapshot {
	info := j.ctrl.Last()
	es := obs.EstimatorSnapshot{
		Time:           e.now,
		Job:            j.name,
		Estimator:      j.ctrl.Est.Name(),
		Allotment:      prevSize,
		Decision:       core.DecisionOf(prevSize, info.Raw).String(),
		RawDesire:      info.Raw,
		FilteredDesire: info.Filtered,
		Granted:        granted,
	}
	ip, ok := j.ctrl.Est.(core.Introspector)
	if !ok {
		return es
	}
	in := ip.Introspect(snap)
	es.Decision = in.Decision.String()
	es.Inputs = in.Inputs
	for _, iw := range in.Workers {
		es.Workers = append(es.Workers, obs.WorkerIntrospection{
			Worker:       int(iw.ID),
			Class:        iw.Class,
			QueueLen:     iw.QueueLen,
			MaxQueueLen:  iw.MaxQueueLen,
			ThresholdL:   iw.ThresholdL,
			Busy:         iw.Busy,
			Draining:     iw.Draining,
			WastedCycles: iw.WastedCycles,
		})
	}
	return es
}

// finishJob records job completion and releases its resources.
func (e *engine) finishJob(j *jobState) {
	j.finished = true
	j.finishAt = e.now
	j.timeline.Record(e.now, j.granted.Size())
	e.unfinished--
	if e.arb == nil {
		return
	}
	// Multiprogrammed mode: retire the job's workers and return its cores
	// to the free pool so competing jobs can grow into them.
	for _, w := range e.workers {
		if w.job == j && !w.retired {
			w.retired = true
			w.job = nil
			if w.stats.RetiredAt < 0 {
				w.stats.RetiredAt = e.now
			}
		}
	}
	e.arb.Release(j.app)
}
