package sim

import (
	"testing"

	"palirria/internal/topo"
)

func TestIdealModelIsFree(t *testing.T) {
	m := Ideal{}
	if m.Name() != "ideal" {
		t.Fatal("name wrong")
	}
	if m.ProbePenalty(1, 2) != 0 || m.StealPenalty(1, 2) != 0 ||
		m.MigrationPenalty(1, 2, 1<<30) != 0 || m.ComputeFactor(1, 48) != 1 {
		t.Fatal("ideal machine must charge nothing")
	}
}

func numaModel() (*NUMA, *topo.Mesh) {
	m := topo.MustMesh(8, 6)
	return NewNUMA(m), m
}

func TestNUMANodeMapping(t *testing.T) {
	n, m := numaModel()
	// Node = column: cores (x, *) share a node; socket = column pair.
	a := m.ID(topo.Coord{X: 3, Y: 0})
	b := m.ID(topo.Coord{X: 3, Y: 5})
	c := m.ID(topo.Coord{X: 2, Y: 0}) // same socket (columns 2,3), other node
	d := m.ID(topo.Coord{X: 7, Y: 0}) // other socket
	if n.ProbePenalty(a, b) != 0 {
		t.Fatal("same-node probe penalized")
	}
	if n.ProbePenalty(a, c) != n.RemoteProbe || n.ProbePenalty(a, d) != n.RemoteProbe {
		t.Fatal("off-node probe not penalized")
	}
	if n.StealPenalty(a, b) != n.NodeSteal {
		t.Fatal("same-node steal penalty wrong")
	}
	if n.StealPenalty(a, c) != n.SocketSteal {
		t.Fatal("same-socket steal penalty wrong")
	}
	if n.StealPenalty(a, d) != n.RemoteSteal {
		t.Fatal("cross-socket steal penalty wrong")
	}
}

func TestNUMAMigrationScaling(t *testing.T) {
	n, m := numaModel()
	a := m.ID(topo.Coord{X: 3, Y: 0})
	b := m.ID(topo.Coord{X: 3, Y: 5}) // same node
	c := m.ID(topo.Coord{X: 2, Y: 0}) // same socket
	d := m.ID(topo.Coord{X: 7, Y: 0}) // remote socket
	const fp = 32 * 1024
	if n.MigrationPenalty(a, b, fp) != 0 {
		t.Fatal("same-node migration penalized")
	}
	sameSocket := n.MigrationPenalty(a, c, fp)
	remote := n.MigrationPenalty(a, d, fp)
	if sameSocket != fp/n.BytesPerCycle {
		t.Fatalf("same-socket warmup = %d, want %d", sameSocket, fp/n.BytesPerCycle)
	}
	if remote != 2*sameSocket {
		t.Fatalf("remote warmup = %d, want 2x same-socket %d", remote, sameSocket)
	}
	// The cap binds for giant footprints.
	if got := n.MigrationPenalty(a, d, 1<<40); got != n.WarmupCap {
		t.Fatalf("capped warmup = %d, want %d", got, n.WarmupCap)
	}
	// Zero footprint is free.
	if n.MigrationPenalty(a, d, 0) != 0 {
		t.Fatal("zero footprint penalized")
	}
}

func TestNUMAComputeFactor(t *testing.T) {
	n, _ := numaModel()
	if n.ComputeFactor(0, 48) != 1 {
		t.Fatal("compute-bound tasks must not inflate")
	}
	if n.ComputeFactor(0.5, 1) != 1 {
		t.Fatal("single worker must not inflate")
	}
	// Linear in (workers-1), scaled by memBound.
	if got := n.ComputeFactor(1.0, 11); got != 11 {
		t.Fatalf("factor(1.0, 11) = %v, want 11", got)
	}
	if got := n.ComputeFactor(0.5, 11); got != 6 {
		t.Fatalf("factor(0.5, 11) = %v, want 6", got)
	}
}

func TestDefaultCostsSane(t *testing.T) {
	c := DefaultCosts()
	// The paper's framing: spawn is tens of cycles, steal a few hundred.
	if c.Spawn <= 0 || c.Spawn > 100 {
		t.Fatalf("Spawn = %d", c.Spawn)
	}
	if c.Steal < 100 || c.Steal > 1000 {
		t.Fatalf("Steal = %d", c.Steal)
	}
	if c.BackoffMax < c.Backoff {
		t.Fatal("BackoffMax below Backoff")
	}
}
