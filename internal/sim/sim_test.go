package sim

import (
	"testing"

	"palirria/internal/asteal"
	"palirria/internal/core"
	"palirria/internal/metrics"
	"palirria/internal/task"
	"palirria/internal/topo"
	"palirria/internal/workload"
)

// simMesh returns the paper's 8x4 simulator platform.
func simMesh() (*topo.Mesh, topo.CoreID) {
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	return m, topo.CoreID(20)
}

// fibRoot builds a small fib tree for fast tests.
func fibRoot(n int) *task.Spec {
	var rec func(k int) *task.Spec
	rec = func(k int) *task.Spec {
		if k < 2 {
			return task.Leaf("fib", 100)
		}
		return &task.Spec{
			Label: "fib",
			Ops: []task.Op{
				task.Spawn(func() *task.Spec { return rec(k - 1) }),
				task.Call(func() *task.Spec { return rec(k - 2) }),
				task.Sync(),
				task.Compute(10),
			},
		}
	}
	return rec(n)
}

func mustRun(t testing.TB, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	m, src := simMesh()
	if _, err := Run(Config{Source: src, Root: fibRoot(3)}); err == nil {
		t.Error("nil mesh must fail")
	}
	if _, err := Run(Config{Mesh: m, Source: src}); err == nil {
		t.Error("nil root must fail")
	}
	bad := &task.Spec{Ops: []task.Op{task.Sync()}}
	if _, err := Run(Config{Mesh: m, Source: src, Root: bad}); err == nil {
		t.Error("invalid root must fail")
	}
	if _, err := Run(Config{Mesh: m, Source: topo.CoreID(0), Root: fibRoot(3)}); err == nil {
		t.Error("reserved source must fail")
	}
}

func TestSingleWorkerSerialExecution(t *testing.T) {
	// A 1-core mesh runs everything serially: exec time equals work plus
	// the deterministic op overheads and no steals happen.
	m := topo.MustMesh(1)
	root := fibRoot(6)
	st, err := task.Measure(fibRoot(6))
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Config{Mesh: m, Source: 0, Root: root})
	ws := res.Workers[0]
	if ws.Steals != 0 || ws.FailedProbes != 0 {
		t.Fatalf("serial run stole: %+v", ws)
	}
	if ws.Cycles[metrics.Compute] != st.Work {
		t.Fatalf("compute cycles = %d, want %d", ws.Cycles[metrics.Compute], st.Work)
	}
	if ws.TasksRun != st.Tasks {
		t.Fatalf("tasks run = %d, want %d", ws.TasksRun, st.Tasks)
	}
	if res.ExecCycles < st.Work {
		t.Fatalf("exec %d below pure work %d", res.ExecCycles, st.Work)
	}
	// All overhead categories are deterministic: exec = total accounted.
	if res.ExecCycles != ws.Total() {
		t.Fatalf("exec %d != accounted %d", res.ExecCycles, ws.Total())
	}
}

func TestWorkConservation(t *testing.T) {
	// Across any configuration, the sum of compute cycles equals the
	// tree's total work and the tasks executed equal the tree's tasks.
	m, src := simMesh()
	root := fibRoot(12)
	st, _ := task.Measure(fibRoot(12))
	for _, policy := range []string{"dvs", "random", "roundrobin"} {
		res := mustRun(t, Config{
			Mesh: m, Source: src, Root: root, InitialDiaspora: 4, Policy: policy, Seed: 42,
		})
		var compute, tasks int64
		for _, ws := range res.Workers {
			compute += ws.Cycles[metrics.Compute]
			tasks += ws.TasksRun
		}
		if compute != st.Work {
			t.Fatalf("%s: compute = %d, want %d", policy, compute, st.Work)
		}
		if tasks != st.Tasks {
			t.Fatalf("%s: tasks = %d, want %d", policy, tasks, st.Tasks)
		}
		// Re-entrancy: the root spec is rebuilt lazily each run, so reuse
		// across runs must not corrupt anything.
		root = fibRoot(12)
	}
}

func TestDeterminism(t *testing.T) {
	m, src := simMesh()
	for _, policy := range []string{"dvs", "random"} {
		cfg := func() Config {
			return Config{
				Mesh: m, Source: src, Root: fibRoot(13),
				InitialDiaspora: 3, Policy: policy, Seed: 7,
			}
		}
		a := mustRun(t, cfg())
		b := mustRun(t, cfg())
		if a.ExecCycles != b.ExecCycles || a.Events != b.Events {
			t.Fatalf("%s: nondeterministic: %d/%d vs %d/%d cycles/events",
				policy, a.ExecCycles, a.Events, b.ExecCycles, b.Events)
		}
		for id, ws := range a.Workers {
			if *ws != *b.Workers[id] {
				t.Fatalf("%s: worker %d stats diverge", policy, id)
			}
		}
	}
}

func TestParallelSpeedup(t *testing.T) {
	// fib is embarrassingly parallel: 27 workers must beat 5 workers
	// substantially on the ideal machine.
	m, src := simMesh()
	r5 := mustRun(t, Config{Mesh: m, Source: src, Root: fibRoot(16), InitialDiaspora: 1})
	r27 := mustRun(t, Config{Mesh: m, Source: src, Root: fibRoot(16), InitialDiaspora: 4})
	speedup := float64(r5.ExecCycles) / float64(r27.ExecCycles)
	if speedup < 2.5 {
		t.Fatalf("27-worker speedup over 5 workers = %.2f, want > 2.5", speedup)
	}
}

func TestStealsHappenAndAreAccounted(t *testing.T) {
	m, src := simMesh()
	res := mustRun(t, Config{Mesh: m, Source: src, Root: fibRoot(14), InitialDiaspora: 2})
	var steals, suffered int64
	for _, ws := range res.Workers {
		steals += ws.Steals
		suffered += ws.StolenFrom
	}
	if steals == 0 {
		t.Fatal("no steals in a 12-worker parallel run")
	}
	if steals != suffered {
		t.Fatalf("steals %d != stolen-from %d", steals, suffered)
	}
}

func TestQueueOverflowInlinesSpawns(t *testing.T) {
	// With a tiny queue, wide spawn bursts overflow and execute inline;
	// the run must still complete with full work conservation.
	m, src := simMesh()
	leaves := make([]task.Builder, 64)
	for i := range leaves {
		leaves[i] = func() *task.Spec { return task.Leaf("leaf", 50) }
	}
	root := task.SpawnJoin("wide", 10, leaves, 0, 10)
	st, _ := task.Measure(task.SpawnJoin("wide", 10, leaves, 0, 10))
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: root, InitialDiaspora: 1,
		QueueCap: 4, StealableSlots: 4,
	})
	var compute int64
	for _, ws := range res.Workers {
		compute += ws.Cycles[metrics.Compute]
	}
	if compute != st.Work {
		t.Fatalf("compute = %d, want %d", compute, st.Work)
	}
}

func TestLeapfrogWhileWaiting(t *testing.T) {
	// Construct a tree where the source blocks on a stolen child while
	// more work exists: the source must keep executing (leapfrog), not
	// idle forever. If blocking deadlocked, the run would hit MaxCycles.
	m, src := simMesh()
	deep := func() *task.Spec {
		// A long child that will be stolen.
		return task.Leaf("long", 50000)
	}
	leaves := make([]task.Builder, 16)
	for i := range leaves {
		leaves[i] = func() *task.Spec { return task.Leaf("leaf", 5000) }
	}
	root := &task.Spec{
		Label: "root",
		Ops: append([]task.Op{
			task.Spawn(deep),
			task.Compute(10), // tiny continuation; sync immediately
			task.Sync(),      // blocks: child stolen by another worker
		}, task.SpawnJoin("rest", 0, leaves, 0, 0).Ops...),
	}
	res := mustRun(t, Config{Mesh: m, Source: src, Root: root, InitialDiaspora: 1, MaxCycles: 10e6})
	if res.ExecCycles <= 0 {
		t.Fatal("run did not complete")
	}
}

func TestPalirriaAdaptiveRun(t *testing.T) {
	m, src := simMesh()
	d, _ := workload.Get("stress")
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: d.Root(workload.Simulator),
		InitialDiaspora: 1, MaxDiaspora: 4,
		Estimator: core.NewPalirria(), Quantum: 20000,
	})
	if got := res.Timeline.Max(); got < 12 {
		t.Fatalf("palirria never grew beyond %d workers on a highly parallel workload", got)
	}
	if got := res.Timeline.Max(); got > 27 {
		t.Fatalf("allotment exceeded the 27-worker cap: %d", got)
	}
	if len(res.Decisions.Decisions()) == 0 {
		t.Fatal("no quantum decisions recorded")
	}
	// Sizes must always be in the platform's zone series.
	series := map[int]bool{5: true, 12: true, 20: true, 27: true}
	for _, p := range res.Timeline.Points() {
		if !series[p.Workers] {
			t.Fatalf("allotment size %d not in the zone series", p.Workers)
		}
	}
}

func TestAStealAdaptiveRun(t *testing.T) {
	m, src := simMesh()
	d, _ := workload.Get("stress")
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: d.Root(workload.Simulator),
		InitialDiaspora: 1, MaxDiaspora: 4, Policy: "random", Seed: 3,
		Estimator: asteal.New(), Quantum: 20000,
	})
	if got := res.Timeline.Max(); got < 12 {
		t.Fatalf("asteal never grew beyond %d workers", got)
	}
}

func TestAdaptiveShrinksOnSerialTail(t *testing.T) {
	// A workload with a big parallel head and a long serial tail: Palirria
	// must shrink the allotment during the tail. The head is a nested
	// fork/join tree — flat fan-outs never populate thieves' queues, so
	// queue-based estimation (correctly) sees no distributable parallelism
	// in them.
	m, src := simMesh()
	var fan func(n int) *task.Spec
	fan = func(n int) *task.Spec {
		if n <= 1 {
			return task.Leaf("leaf", 4000)
		}
		return &task.Spec{Ops: []task.Op{
			task.Spawn(func() *task.Spec { return fan(n / 2) }),
			task.Spawn(func() *task.Spec { return fan(n - n/2) }),
			task.Sync(), task.Sync(),
		}}
	}
	root := &task.Spec{
		Label: "headtail",
		Ops: []task.Op{
			task.Call(func() *task.Spec { return fan(256) }),
			task.Compute(600000), // serial tail
		},
	}
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: root,
		InitialDiaspora: 1, MaxDiaspora: 4,
		Estimator: core.NewPalirria(), Quantum: 20000,
	})
	if res.FinalAllotment.Size() != 5 {
		t.Fatalf("final allotment = %d, want shrunk to 5 during the serial tail",
			res.FinalAllotment.Size())
	}
	// The timeline must show growth followed by shrinkage.
	if res.Timeline.Max() < 12 {
		t.Fatal("allotment never grew during the parallel head")
	}
}

func TestLoopyDoesNotGrowUnderPalirria(t *testing.T) {
	// The §4.1.1 adversary: LOOPY looks busy but queues hold at most one
	// task. Beyond the minimal allotment interior X workers have
	// µ(O) >= 1, so Palirria must keep the allotment small.
	m, src := simMesh()
	d, _ := workload.Get("loopy")
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: d.Root(workload.Simulator),
		InitialDiaspora: 1, MaxDiaspora: 4,
		Estimator: core.NewPalirria(), Quantum: 20000,
	})
	if got := res.Timeline.Max(); got > 12 {
		t.Fatalf("palirria grew to %d workers on LOOPY, want <= 12", got)
	}
}

func TestDrainingWorkerFinishesQueue(t *testing.T) {
	// Force shrink with non-empty queues: the run completes and work is
	// conserved; draining workers retire.
	m, src := simMesh()
	d, _ := workload.Get("bursty")
	root := d.Root(workload.Simulator)
	st, _ := task.Measure(d.Root(workload.Simulator))
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: root,
		InitialDiaspora: 1, MaxDiaspora: 4,
		Estimator: core.NewPalirria(), Quantum: 15000,
	})
	var compute int64
	for _, ws := range res.Workers {
		compute += ws.Cycles[metrics.Compute]
	}
	if compute != st.Work {
		t.Fatalf("compute = %d, want %d (work lost across drains)", compute, st.Work)
	}
	retired := 0
	for _, ws := range res.Workers {
		if ws.RetiredAt > 0 {
			retired++
		}
	}
	if retired == 0 {
		t.Fatal("bursty under palirria never retired a worker")
	}
}

func TestNUMAMigrationCharged(t *testing.T) {
	// On the NUMA model, stealing a big-footprint task across nodes incurs
	// migration cycles.
	m := topo.MustMesh(8, 6)
	m.Reserve(0, 1, 2)
	src := topo.CoreID(28)
	d, _ := workload.Get("fft")
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: d.Root(workload.Simulator),
		InitialDiaspora: 4, Machine: NewNUMA(m),
	})
	var mig int64
	for _, ws := range res.Workers {
		mig += ws.Cycles[metrics.Migration]
	}
	if mig == 0 {
		t.Fatal("no migration cycles charged for FFT on the NUMA model")
	}
}

func TestIdealNoMigration(t *testing.T) {
	m, src := simMesh()
	d, _ := workload.Get("fft")
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: d.Root(workload.Simulator), InitialDiaspora: 4,
	})
	for id, ws := range res.Workers {
		if ws.Cycles[metrics.Migration] != 0 {
			t.Fatalf("worker %d charged migration on the ideal machine", id)
		}
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	m, src := simMesh()
	_, err := Run(Config{
		Mesh: m, Source: src, Root: task.Leaf("big", 1000000), MaxCycles: 100,
	})
	if err == nil {
		t.Fatal("expected MaxCycles error")
	}
}

func TestReportAggregation(t *testing.T) {
	m, src := simMesh()
	res := mustRun(t, Config{Mesh: m, Source: src, Root: fibRoot(12), InitialDiaspora: 2})
	rep := res.Report()
	if rep.ExecCycles != res.ExecCycles {
		t.Fatal("report exec mismatch")
	}
	if rep.MaxWorkers != 12 {
		t.Fatalf("MaxWorkers = %d, want 12", rep.MaxWorkers)
	}
	if rep.WorkerCycleArea != int64(12)*res.ExecCycles {
		t.Fatalf("area = %d, want %d", rep.WorkerCycleArea, int64(12)*res.ExecCycles)
	}
	if rep.TotalTasks == 0 || rep.TotalSteals == 0 {
		t.Fatal("report totals empty")
	}
	if w := rep.WastefulnessPercent(); w <= 0 || w >= 100 {
		t.Fatalf("wastefulness = %.1f%%, want in (0, 100)", w)
	}
}

func TestAllWorkloadsCompleteOnSim(t *testing.T) {
	// Smoke test: every registered workload completes under every
	// scheduler configuration on the simulator platform.
	if testing.Short() {
		t.Skip("long smoke test")
	}
	m, src := simMesh()
	for _, name := range workload.Names() {
		d, _ := workload.Get(name)
		for _, mode := range []string{"fixed", "palirria", "asteal"} {
			cfg := Config{
				Mesh: m, Source: src, Root: d.Root(workload.Simulator),
				InitialDiaspora: 1, MaxDiaspora: 4, Quantum: 20000, Seed: 5,
			}
			switch mode {
			case "fixed":
				cfg.InitialDiaspora = 4
			case "palirria":
				cfg.Estimator = core.NewPalirria()
			case "asteal":
				cfg.Estimator = asteal.New()
				cfg.Policy = "random"
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, mode, err)
			}
			if res.ExecCycles <= 0 {
				t.Fatalf("%s/%s: empty run", name, mode)
			}
		}
	}
}

func TestAdaptiveOn1DMesh(t *testing.T) {
	// The paper's generic model covers one-dimensional topologies: the
	// whole pipeline (DVS, DMC, zone grants) must work on a row of cores.
	m := topo.MustMesh(16)
	res := mustRun(t, Config{
		Mesh: m, Source: 8, Root: fibRoot(14),
		Estimator: core.NewPalirria(), Quantum: 20000,
	})
	if res.ExecCycles <= 0 {
		t.Fatal("empty run")
	}
	if res.Timeline.Max() < 5 {
		t.Fatalf("1D palirria never grew: max %d", res.Timeline.Max())
	}
}

func TestAdaptiveOn3DMesh(t *testing.T) {
	m := topo.MustMesh(4, 4, 4)
	src := m.ID(topo.Coord{X: 2, Y: 2, Z: 2})
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: fibRoot(15),
		Estimator: core.NewPalirria(), Quantum: 20000,
	})
	if res.Timeline.Max() < 7 {
		t.Fatalf("3D palirria never grew: max %d", res.Timeline.Max())
	}
	// Work conservation holds across dimensions.
	st, _ := task.Measure(fibRoot(15))
	var compute int64
	for _, ws := range res.Workers {
		compute += ws.Cycles[metrics.Compute]
	}
	if compute != st.Work {
		t.Fatalf("compute = %d, want %d", compute, st.Work)
	}
}

// TestPropertyRandomTreesConserveWork runs randomly generated fork/join
// trees under every scheduler configuration and checks exact work
// conservation and task counts — the simulator's core correctness
// property over arbitrary program shapes.
func TestPropertyRandomTreesConserveWork(t *testing.T) {
	m, src := simMesh()
	for seed := uint64(0); seed < 40; seed++ {
		ref, err := task.Measure(task.RandomTree(task.RandomTreeConfig{Seed: seed}))
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []string{"fixed-dvs", "fixed-random", "palirria", "tiny-queue"} {
			cfg := Config{
				Mesh: m, Source: src,
				Root:            task.RandomTree(task.RandomTreeConfig{Seed: seed}),
				InitialDiaspora: 3, Seed: seed,
			}
			switch mode {
			case "fixed-random":
				cfg.Policy = "random"
			case "palirria":
				cfg.InitialDiaspora = 1
				cfg.Estimator = core.NewPalirria()
				cfg.Quantum = 10000
			case "tiny-queue":
				cfg.QueueCap = 2
				cfg.StealableSlots = 2
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, mode, err)
			}
			var compute, tasks int64
			for _, ws := range res.Workers {
				compute += ws.Cycles[metrics.Compute]
				tasks += ws.TasksRun
			}
			if compute != ref.Work {
				t.Fatalf("seed %d %s: compute %d != %d", seed, mode, compute, ref.Work)
			}
			if tasks != ref.Tasks {
				t.Fatalf("seed %d %s: tasks %d != %d", seed, mode, tasks, ref.Tasks)
			}
			if res.ExecCycles < ref.Span {
				t.Fatalf("seed %d %s: exec %d below span %d", seed, mode, res.ExecCycles, ref.Span)
			}
		}
	}
}

func TestEventTrace(t *testing.T) {
	m, src := simMesh()
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: fibRoot(10), InitialDiaspora: 2, TraceCap: 256,
	})
	if len(res.Trace) == 0 {
		t.Fatal("no trace events")
	}
	if len(res.Trace) > 256 {
		t.Fatalf("trace exceeded cap: %d", len(res.Trace))
	}
	// Chronological order and at least one steal recorded.
	sawSteal := false
	prev := int64(-1)
	for _, ev := range res.Trace {
		if ev.Time < prev {
			t.Fatalf("trace out of order at %v", ev)
		}
		prev = ev.Time
		if ev.Kind == TraceSteal {
			sawSteal = true
			if ev.Peer == topo.NoCore {
				t.Fatal("steal event without victim")
			}
		}
		if ev.String() == "" {
			t.Fatal("empty render")
		}
	}
	if !sawSteal {
		t.Fatal("no steal events in a parallel run")
	}
	// Disabled by default.
	res2 := mustRun(t, Config{Mesh: m, Source: src, Root: fibRoot(8), InitialDiaspora: 1})
	if len(res2.Trace) != 0 {
		t.Fatal("trace recorded while disabled")
	}
}

func TestTraceKindStrings(t *testing.T) {
	kinds := map[TraceKind]string{
		TraceSpawn: "spawn", TraceSteal: "steal", TraceTaskDone: "done",
		TraceBlock: "block", TraceGrant: "grant", TraceRetire: "retire",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", k, k.String(), want)
		}
	}
	if TraceKind(99).String() != "TraceKind(99)" {
		t.Error("unknown kind")
	}
}
