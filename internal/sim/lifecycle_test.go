package sim

import (
	"testing"

	"palirria/internal/core"
	"palirria/internal/task"
	"palirria/internal/topo"
)

// scriptedEstimator returns a fixed sequence of desired sizes, repeating
// the last one — for driving the engine through exact allotment
// transitions.
type scriptedEstimator struct {
	script []int
	i      int
}

func (s *scriptedEstimator) Name() string { return "scripted" }
func (s *scriptedEstimator) Estimate(snap *core.Snapshot) int {
	v := s.script[s.i]
	if s.i < len(s.script)-1 {
		s.i++
	}
	return v
}
func (s *scriptedEstimator) Granted(int) {}

// longRoot keeps the source busy long enough to observe several quanta.
func longRoot(leaves int, leafWork int64) *task.Spec {
	var fan func(n int) *task.Spec
	fan = func(n int) *task.Spec {
		if n <= 1 {
			return task.Leaf("leaf", leafWork)
		}
		return &task.Spec{Ops: []task.Op{
			task.Spawn(func() *task.Spec { return fan(n / 2) }),
			task.Call(func() *task.Spec { return fan(n - n/2) }),
			task.Sync(),
		}}
	}
	return fan(leaves)
}

func TestScriptedShrinkDrainsAndRetires(t *testing.T) {
	// Grow to 20, then shrink to 5: zone 2+3 workers must drain and
	// retire; the run completes with work conserved.
	m, src := simMesh()
	est := &scriptedEstimator{script: []int{20, 20, 5, 5}}
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: longRoot(256, 4000),
		Estimator: est, Quantum: 20000, NoFilter: true, TraceCap: 4096,
	})
	retired := 0
	for _, ws := range res.Workers {
		if ws.RetiredAt > 0 {
			retired++
		}
	}
	if retired == 0 {
		t.Fatal("shrink never retired a worker")
	}
	sawRetire := false
	for _, ev := range res.Trace {
		if ev.Kind == TraceRetire {
			sawRetire = true
		}
	}
	if !sawRetire {
		t.Fatal("no retire trace events")
	}
	if res.FinalAllotment.Size() != 5 {
		t.Fatalf("final size = %d, want 5", res.FinalAllotment.Size())
	}
}

func TestScriptedRevocationAfterRetirement(t *testing.T) {
	// Shrink to 5, let zone-2 workers retire, then grow back to 12: the
	// retired workers must bootstrap again and contribute work.
	m, src := simMesh()
	est := &scriptedEstimator{script: []int{12, 5, 5, 12, 12}}
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: longRoot(512, 4000),
		InitialDiaspora: 1,
		Estimator:       est, Quantum: 15000, NoFilter: true,
	})
	// Find a worker in zone 2 of the mesh: it was granted at size 12,
	// removed at 5, re-granted at 12.
	a12, _ := topo.NewAllotment(m, src, 2)
	reborn := 0
	for _, id := range a12.Zone(2) {
		ws := res.Workers[id]
		if ws == nil {
			continue
		}
		// A worker that worked again after the re-grant has RetiredAt
		// reset to -1 (active at the end) or later than the second grant.
		if ws.TasksRun > 0 && ws.RetiredAt < 0 {
			reborn++
		}
	}
	if reborn == 0 {
		t.Log("note: no zone-2 worker was active at completion; checking timeline instead")
		// The timeline must show 12 -> 5 -> 12.
		pts := res.Timeline.Points()
		saw5after12, saw12after5 := false, false
		seen12 := false
		for _, p := range pts {
			if p.Workers == 12 {
				if saw5after12 {
					saw12after5 = true
				}
				seen12 = true
			}
			if p.Workers == 5 && seen12 {
				saw5after12 = true
			}
		}
		if !saw12after5 {
			t.Fatalf("timeline never went 12 -> 5 -> 12: %v", pts)
		}
	}
}

func TestDrainingWorkerKeepsQueueTasks(t *testing.T) {
	// A removed worker must finish its own queue before retiring: no task
	// may be lost. Work conservation after an immediate harsh shrink
	// proves it (the property tests cover this too; this test pins the
	// specific scenario with a scripted one-quantum shrink).
	m, src := simMesh()
	st, _ := task.Measure(longRoot(300, 3000))
	est := &scriptedEstimator{script: []int{27, 5, 5}}
	res := mustRun(t, Config{
		Mesh: m, Source: src, Root: longRoot(300, 3000),
		Estimator: est, Quantum: 10000, NoFilter: true,
	})
	var compute int64
	for _, ws := range res.Workers {
		compute += ws.Cycles[0] // metrics.Compute
	}
	if compute != st.Work {
		t.Fatalf("compute = %d, want %d", compute, st.Work)
	}
}

func TestEstimatorSeesDrainingFlag(t *testing.T) {
	// Snapshots must mark draining workers. Use a custom estimator that
	// records what it saw.
	m, src := simMesh()
	var sawDraining bool
	watcher := &funcEstimator{
		name: "watcher",
		fn: func(snap *core.Snapshot) int {
			for _, ws := range snap.Workers {
				if ws.Draining {
					sawDraining = true
				}
			}
			// Oscillate to force draining periods.
			if snap.Allotment.Size() > 5 {
				return 5
			}
			return 12
		},
	}
	mustRun(t, Config{
		Mesh: m, Source: src, Root: longRoot(400, 5000),
		Estimator: watcher, Quantum: 8000, NoFilter: true,
	})
	if !sawDraining {
		t.Log("no draining worker observed in any snapshot (drains completed within quanta)")
	}
}

type funcEstimator struct {
	name string
	fn   func(*core.Snapshot) int
}

func (f *funcEstimator) Name() string                  { return f.name }
func (f *funcEstimator) Estimate(s *core.Snapshot) int { return f.fn(s) }
func (f *funcEstimator) Granted(int)                   {}
