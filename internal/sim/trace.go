package sim

import (
	"fmt"
	"io"

	"palirria/internal/obs"
	"palirria/internal/topo"
)

// TraceKind classifies a scheduler trace event. It mirrors obs.Kind; the
// simulator keeps its own type so existing callers stay source-compatible
// with topo.CoreID worker fields.
type TraceKind uint8

const (
	// TraceSpawn: a task entered a worker's queue.
	TraceSpawn TraceKind = iota
	// TraceSteal: a task moved from victim to thief.
	TraceSteal
	// TraceTaskDone: a task completed.
	TraceTaskDone
	// TraceBlock: a worker blocked at the sync of a stolen child.
	TraceBlock
	// TraceGrant: a job's per-quantum allotment grant (possibly
	// unchanged in size).
	TraceGrant
	// TraceRetire: a draining worker exited.
	TraceRetire
	// TraceProbeFail: a steal probe found nothing stealable at the victim.
	TraceProbeFail
	// TraceQuantum: an estimation quantum boundary.
	TraceQuantum
)

// obsKind maps the simulator kind onto the shared observability kind.
func (k TraceKind) obsKind() obs.Kind {
	switch k {
	case TraceSpawn:
		return obs.KindSpawn
	case TraceSteal:
		return obs.KindSteal
	case TraceTaskDone:
		return obs.KindTaskDone
	case TraceBlock:
		return obs.KindBlock
	case TraceGrant:
		return obs.KindGrant
	case TraceRetire:
		return obs.KindRetire
	case TraceProbeFail:
		return obs.KindProbeFail
	case TraceQuantum:
		return obs.KindQuantum
	}
	return obs.NumKinds
}

// kindFromObs is the inverse of obsKind.
func kindFromObs(k obs.Kind) TraceKind {
	switch k {
	case obs.KindSpawn:
		return TraceSpawn
	case obs.KindSteal:
		return TraceSteal
	case obs.KindTaskDone:
		return TraceTaskDone
	case obs.KindBlock:
		return TraceBlock
	case obs.KindGrant:
		return TraceGrant
	case obs.KindRetire:
		return TraceRetire
	case obs.KindProbeFail:
		return TraceProbeFail
	}
	return TraceQuantum
}

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSpawn:
		return "spawn"
	case TraceSteal:
		return "steal"
	case TraceTaskDone:
		return "done"
	case TraceBlock:
		return "block"
	case TraceGrant:
		return "grant"
	case TraceRetire:
		return "retire"
	case TraceProbeFail:
		return "probefail"
	case TraceQuantum:
		return "quantum"
	}
	return fmt.Sprintf("TraceKind(%d)", uint8(k))
}

// TraceEvent is one recorded scheduler event.
type TraceEvent struct {
	// Time in cycles.
	Time int64
	// Kind of event.
	Kind TraceKind
	// Worker is the acting worker (thief for steals).
	Worker topo.CoreID
	// Peer is the other party (victim for steals and probes; NoCore
	// otherwise).
	Peer topo.CoreID
	// Arg carries kind-specific data (queue length after a spawn, new
	// allotment size for grants, desired workers at quantum boundaries).
	Arg int
	// Label is the task label where applicable.
	Label string
}

// String renders one line of trace output.
func (ev TraceEvent) String() string {
	switch ev.Kind {
	case TraceSteal:
		return fmt.Sprintf("%12d  %-6s w%-3d <- w%-3d %s", ev.Time, ev.Kind, ev.Worker, ev.Peer, ev.Label)
	case TraceProbeFail:
		return fmt.Sprintf("%12d  %-9s w%-3d -> w%-3d", ev.Time, ev.Kind, ev.Worker, ev.Peer)
	case TraceGrant:
		return fmt.Sprintf("%12d  %-6s %d workers", ev.Time, ev.Kind, ev.Arg)
	case TraceQuantum:
		return fmt.Sprintf("%12d  %-7s %d desired", ev.Time, ev.Kind, ev.Arg)
	default:
		return fmt.Sprintf("%12d  %-6s w%-3d %s", ev.Time, ev.Kind, ev.Worker, ev.Label)
	}
}

// obsCore converts a topology core id to the observability worker id.
func obsCore(id topo.CoreID) int32 {
	if id == topo.NoCore {
		return obs.NoWorker
	}
	return int32(id)
}

// coreFromObs is the inverse of obsCore.
func coreFromObs(w int32) topo.CoreID {
	if w == obs.NoWorker {
		return topo.NoCore
	}
	return topo.CoreID(w)
}

// eventsFromObs converts a drained observability event stream back to the
// simulator's trace representation (for Result.Trace).
func eventsFromObs(events []obs.Event) []TraceEvent {
	if len(events) == 0 {
		return nil
	}
	out := make([]TraceEvent, len(events))
	for i, ev := range events {
		out[i] = TraceEvent{
			Time:   ev.TS,
			Kind:   kindFromObs(ev.Kind),
			Worker: coreFromObs(ev.Worker),
			Peer:   coreFromObs(ev.Peer),
			Arg:    int(ev.Arg),
			Label:  ev.Label,
		}
	}
	return out
}

// trace records an event if tracing is enabled. The disabled fast path is
// one nil comparison.
func (e *engine) trace(kind TraceKind, w, peer topo.CoreID, arg int, label string) {
	if e.ring == nil {
		return
	}
	e.ring.Emit(obs.Event{
		TS: e.now, Kind: kind.obsKind(),
		Worker: obsCore(w), Peer: obsCore(peer),
		Arg: int64(arg), Label: label,
	})
}

// WriteTrace renders events to w, one per line.
func WriteTrace(w io.Writer, events []TraceEvent) {
	for _, ev := range events {
		fmt.Fprintln(w, ev.String())
	}
}
