package sim

import (
	"fmt"
	"io"

	"palirria/internal/topo"
)

// TraceKind classifies a scheduler trace event.
type TraceKind uint8

const (
	// TraceSpawn: a task entered a worker's queue.
	TraceSpawn TraceKind = iota
	// TraceSteal: a task moved from victim to thief.
	TraceSteal
	// TraceTaskDone: a task completed.
	TraceTaskDone
	// TraceBlock: a worker blocked at the sync of a stolen child.
	TraceBlock
	// TraceGrant: a job's allotment changed.
	TraceGrant
	// TraceRetire: a draining worker exited.
	TraceRetire
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSpawn:
		return "spawn"
	case TraceSteal:
		return "steal"
	case TraceTaskDone:
		return "done"
	case TraceBlock:
		return "block"
	case TraceGrant:
		return "grant"
	case TraceRetire:
		return "retire"
	}
	return fmt.Sprintf("TraceKind(%d)", uint8(k))
}

// TraceEvent is one recorded scheduler event.
type TraceEvent struct {
	// Time in cycles.
	Time int64
	// Kind of event.
	Kind TraceKind
	// Worker is the acting worker (thief for steals).
	Worker topo.CoreID
	// Peer is the other party (victim for steals; NoCore otherwise).
	Peer topo.CoreID
	// Arg carries kind-specific data (queue length after a spawn, new
	// allotment size for grants).
	Arg int
	// Label is the task label where applicable.
	Label string
}

// String renders one line of trace output.
func (ev TraceEvent) String() string {
	switch ev.Kind {
	case TraceSteal:
		return fmt.Sprintf("%12d  %-6s w%-3d <- w%-3d %s", ev.Time, ev.Kind, ev.Worker, ev.Peer, ev.Label)
	case TraceGrant:
		return fmt.Sprintf("%12d  %-6s %d workers", ev.Time, ev.Kind, ev.Arg)
	default:
		return fmt.Sprintf("%12d  %-6s w%-3d %s", ev.Time, ev.Kind, ev.Worker, ev.Label)
	}
}

// traceRing is a bounded event recorder: the newest cap events win.
type traceRing struct {
	buf   []TraceEvent
	next  int
	total int
}

func newTraceRing(cap int) *traceRing {
	return &traceRing{buf: make([]TraceEvent, 0, cap)}
}

func (r *traceRing) add(ev TraceEvent) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
}

// events returns the recorded events in chronological order.
func (r *traceRing) events() []TraceEvent {
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// trace records an event if tracing is enabled.
func (e *engine) trace(kind TraceKind, w, peer topo.CoreID, arg int, label string) {
	if e.tracer == nil {
		return
	}
	e.tracer.add(TraceEvent{
		Time: e.now, Kind: kind, Worker: w, Peer: peer, Arg: arg, Label: label,
	})
}

// WriteTrace renders events to w, one per line.
func WriteTrace(w io.Writer, events []TraceEvent) {
	for _, ev := range events {
		fmt.Fprintln(w, ev.String())
	}
}
