package sim

import (
	"palirria/internal/task"
	"palirria/internal/topo"
)

// frame is one task instance in flight: a task.Spec plus its execution
// state. Frames live either in a worker's queue (spawned, waiting to be
// popped or stolen), on a worker's frame stack (executing, possibly
// suspended under deeper frames), or nowhere (joined and collected).
type frame struct {
	spec *task.Spec
	// pc indexes the next op in spec.Ops. Values past len(Ops) drive the
	// implicit joins of unjoined spawns at task end.
	pc int
	// spawns holds the outstanding (not yet joined) spawned children,
	// youngest last — WOOL joins LIFO.
	spawns []*frame

	// owner is the worker that created the frame; origin for the NUMA
	// migration penalty.
	owner topo.CoreID
	// queued is true while the frame sits in its owner's task queue.
	queued bool
	// stolen is true once a thief took the frame.
	stolen bool
	// done is set when the frame's program and joins completed.
	done bool
	// inlineJoin marks a frame being executed inline by its owner at the
	// matching sync: completion both advances the parent's pc and pops the
	// parent's youngest spawn record.
	inlineJoin bool
	// spawnInline marks a frame executed inline at spawn time because the
	// queue was full: completion advances the parent's pc past the spawn
	// op, and the frame was never recorded in parent.spawns.
	spawnInline bool
	// calledInline marks a frame created by OpCall: completion advances
	// the parent's pc past the call op.
	calledInline bool
	// parent is the frame whose spawn/call created this one.
	parent *frame
	// waiter is the worker blocked at this frame's sync, to be woken when
	// the frame completes. Only stolen frames acquire waiters.
	waiter *worker
	// isRoot marks a job's root frame: completion finishes the job.
	isRoot bool
}

// newFrame materializes a child spec.
func newFrame(spec *task.Spec, owner topo.CoreID, parent *frame) *frame {
	return &frame{spec: spec, owner: owner, parent: parent}
}

// youngestSpawn returns the youngest outstanding spawn, or nil.
func (f *frame) youngestSpawn() *frame {
	if len(f.spawns) == 0 {
		return nil
	}
	return f.spawns[len(f.spawns)-1]
}

// popSpawn removes the youngest outstanding spawn record.
func (f *frame) popSpawn() {
	f.spawns[len(f.spawns)-1] = nil
	f.spawns = f.spawns[:len(f.spawns)-1]
}

// programDone reports whether the explicit op list is exhausted.
func (f *frame) programDone() bool { return f.pc >= len(f.spec.Ops) }
