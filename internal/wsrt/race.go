//go:build race

package wsrt

// raceEnabled reports whether the race detector instruments this build.
// Latency gates scale their bounds under it: instrumentation serializes
// goroutine scheduling enough to stretch wakeup paths well past their
// uninstrumented cost.
const raceEnabled = true
