package wsrt

import (
	"runtime"
	"sync/atomic"
	"time"

	"palirria/internal/obs"
	"palirria/internal/task"
)

// rtTask is one spawned task record: the unit placed in deques and joined
// at syncs.
type rtTask struct {
	fn   Func
	done atomic.Bool
	// onDone, when set, marks a job root: it fires after the task (and all
	// of its joins) completes. The batch Run root uses it to signal
	// completion; persistent-mode submissions use it to notify their
	// waiters.
	onDone func()
	// onTerm, when set, fires exactly once after onDone with the job's
	// terminal disposition: ran=true when the root executed to completion,
	// ran=false when the shutdown flush discarded it unrun. DAG release in
	// the serving layer hangs off this hook.
	onTerm func(ran bool)
}

// Ctx is the per-task execution context: WOOL's programming interface.
// A Ctx is owned by exactly one worker at a time and must not escape the
// task body or be shared between goroutines.
type Ctx struct {
	w *worker
	// pending holds the outstanding spawns of this task, youngest last.
	pending []*rtTask
}

// Worker returns the executing worker's core id (for diagnostics).
func (c *Ctx) Worker() int { return int(c.w.id) }

// Spawn places fn in the task queue as a stealable task, continuing the
// current task (work-first). When the queue is full the child executes
// inline immediately, like WOOL.
func (c *Ctx) Spawn(fn Func) {
	t := &rtTask{fn: fn}
	if c.w.deque.PushBottom(t) {
		n := int32(c.w.deque.Len())
		c.w.noteSpawn(n)
		c.w.emit(obs.KindSpawn, obs.NoWorker, int64(n))
		// The push made work visible; wake one announced idle thief (the
		// no-waiters fast path is a single atomic load — see idle.go).
		c.w.wakeOneThief()
	} else {
		c.w.runTask(t)
	}
	c.pending = append(c.pending, t)
}

// Sync joins the youngest outstanding spawn: if it was not stolen it is
// popped and executed inline; if a thief has it, the worker steals other
// work while waiting (leapfrogging).
func (c *Ctx) Sync() {
	if len(c.pending) == 0 {
		return
	}
	t := c.pending[len(c.pending)-1]
	c.pending = c.pending[:len(c.pending)-1]
	if t.done.Load() {
		return
	}
	// Conditional pop: only if our child is still the bottom element.
	if c.w.deque.BottomIs(t) {
		if got, ok := c.w.deque.PopBottom(); ok {
			if got == t {
				c.w.runTask(t)
				return
			}
			// A thief raced us past t; got is an older task that must go
			// back — impossible under the LIFO invariant, because anything
			// below t was pushed before t and t is the youngest unjoined
			// spawn of the innermost frame.
			panic("wsrt: queue bottom was not the youngest spawn")
		}
	}
	// Stolen: leapfrog until the thief finishes it. Probes are stamped
	// explicitly here (not via the loop's search episodes): this runs
	// inside a task window, and the stamps feed the excluded accumulator
	// so the probe time cannot double-count as the task's useful time.
	spins := 0
	for !t.done.Load() {
		var st *rtTask
		if c.w.state.Load() != stateDraining {
			t0 := nowNS()
			st = c.w.stealProbe()
			c.w.addSearch(nowNS() - t0)
		}
		if st != nil {
			c.w.runTask(st)
			spins = 0
			continue
		}
		spins++
		if spins < 32 {
			runtime.Gosched()
		} else {
			t0 := nowNS()
			time.Sleep(5 * time.Microsecond)
			c.w.addSearch(nowNS() - t0)
		}
	}
}

// SyncAll joins every outstanding spawn (youngest first).
func (c *Ctx) SyncAll() {
	for len(c.pending) > 0 {
		c.Sync()
	}
}

// joinAll is the implicit barrier at task end.
func (c *Ctx) joinAll() { c.SyncAll() }

// computeUnit is the calibrated spin kernel: a xorshift step that the
// compiler cannot elide, approximating one abstract "cycle" of the task
// model. Exported knobs are unnecessary — workload shapes, not absolute
// times, are what the estimators observe.
var computeSink uint64

// Compute burns approximately `cycles` units of CPU work. It is the
// real-runtime realization of task.OpCompute.
func (c *Ctx) Compute(cycles int64) {
	x := uint64(cycles) | 1
	for i := int64(0); i < cycles; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	atomic.AddUint64(&computeSink, x&1)
}

// SpecFunc adapts a lazily generated task tree (the shared workload
// representation) to the real runtime: Compute spins, Spawn/Call/Sync map
// directly onto the Ctx operations.
func SpecFunc(s *task.Spec) Func {
	return func(c *Ctx) {
		for _, op := range s.Ops {
			switch op.Kind {
			case task.OpCompute:
				c.Compute(op.Work)
			case task.OpSpawn:
				child := op.Gen()
				c.Spawn(SpecFunc(child))
			case task.OpCall:
				// A call gets its own frame scope: its spawns join inside
				// it, never leaking into the parent's pending list.
				child := op.Gen()
				sub := c.w.ctxGet()
				SpecFunc(child)(sub)
				sub.joinAll()
				c.w.ctxPut(sub)
			case task.OpSync:
				c.Sync()
			}
		}
	}
}
