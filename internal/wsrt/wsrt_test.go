package wsrt

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"palirria/internal/asteal"
	"palirria/internal/core"
	"palirria/internal/task"
	"palirria/internal/topo"
	"palirria/internal/workload"
)

// smallMesh returns an 8-core 4x2 mesh for tests.
func smallMesh(t testing.TB) *topo.Mesh {
	t.Helper()
	return topo.MustMesh(4, 2)
}

func TestRunFibCorrectResult(t *testing.T) {
	// A real computation: parallel fib with results through closures.
	rt, err := New(Config{Mesh: smallMesh(t), Source: 0, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	var result int64
	var fib func(c *Ctx, n int, out *int64)
	fib = func(c *Ctx, n int, out *int64) {
		if n < 2 {
			*out = int64(n)
			return
		}
		var a, b int64
		c.Spawn(func(cc *Ctx) { fib(cc, n-1, &a) })
		fib(c, n-2, &b)
		c.Sync()
		*out = a + b
	}
	rep, err := rt.Run(func(c *Ctx) { fib(c, 20, &result) })
	if err != nil {
		t.Fatal(err)
	}
	if result != 6765 {
		t.Fatalf("fib(20) = %d, want 6765", result)
	}
	if rep.WallNS <= 0 {
		t.Fatal("empty wall time")
	}
	var tasks int64
	for _, w := range rep.Workers {
		tasks += w.Tasks
	}
	if tasks == 0 {
		t.Fatal("no tasks recorded")
	}
}

func TestRunIsSingleUse(t *testing.T) {
	rt, err := New(Config{Mesh: smallMesh(t), Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(func(c *Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(func(c *Ctx) {}); !errors.Is(err, ErrAlreadyUsed) {
		t.Fatalf("second Run = %v, want ErrAlreadyUsed", err)
	}
	// The same single-use gate guards persistent mode.
	if err := rt.Start(); !errors.Is(err, ErrAlreadyUsed) {
		t.Fatalf("Start after Run = %v, want ErrAlreadyUsed", err)
	}
}

func TestSpawnSyncEveryTaskRunsExactlyOnce(t *testing.T) {
	rt, err := New(Config{Mesh: smallMesh(t), Source: 0, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	var counts [n]atomic.Int32
	var fan func(c *Ctx, lo, hi int)
	fan = func(c *Ctx, lo, hi int) {
		if hi-lo == 1 {
			counts[lo].Add(1)
			return
		}
		mid := (lo + hi) / 2
		c.Spawn(func(cc *Ctx) { fan(cc, lo, mid) })
		fan(c, mid, hi)
		c.Sync()
	}
	if _, err := rt.Run(func(c *Ctx) { fan(c, 0, n) }); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("leaf %d ran %d times", i, got)
		}
	}
}

func TestSyncAllAndEmptySync(t *testing.T) {
	rt, err := New(Config{Mesh: smallMesh(t), Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	var sum atomic.Int64
	_, err = rt.Run(func(c *Ctx) {
		c.Sync() // no outstanding spawns: must be a no-op
		for i := 0; i < 10; i++ {
			i := i
			c.Spawn(func(cc *Ctx) { sum.Add(int64(i)) })
		}
		c.SyncAll()
		if got := sum.Load(); got != 45 {
			t.Errorf("sum after SyncAll = %d, want 45", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQueueOverflowRunsInline(t *testing.T) {
	rt, err := New(Config{Mesh: smallMesh(t), Source: 0, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	_, err = rt.Run(func(c *Ctx) {
		for i := 0; i < 64; i++ {
			c.Spawn(func(cc *Ctx) { ran.Add(1) })
		}
		c.SyncAll()
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 64 {
		t.Fatalf("ran = %d, want 64", ran.Load())
	}
}

func TestSpecAdapterMatchesTree(t *testing.T) {
	// Run a workload spec tree on the real runtime and check task counts.
	d, _ := workload.Get("strassen")
	root := d.Root(workload.Simulator)
	st, err := task.Measure(d.Root(workload.Simulator))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Mesh: smallMesh(t), Source: 0, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(SpecFunc(root))
	if err != nil {
		t.Fatal(err)
	}
	var tasks int64
	for _, w := range rep.Workers {
		tasks += w.Tasks
	}
	// Spawned tasks run through runTask; called and inlined ones execute
	// within their parent, so the runtime's task count equals spawns + 1
	// (the root).
	if tasks != st.Spawns+1 {
		t.Fatalf("tasks = %d, want spawns+1 = %d", tasks, st.Spawns+1)
	}
}

func TestAdaptivePalirriaGrowsAndShrinks(t *testing.T) {
	mesh := topo.MustMesh(4, 2)
	rt, err := New(Config{
		Mesh: mesh, Source: 0,
		Estimator: core.NewPalirria(),
		Quantum:   500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A bursty root long enough to span many quanta on a fast host.
	var fan func(c *Ctx, n int)
	fan = func(c *Ctx, n int) {
		if n <= 1 {
			c.Compute(200_000)
			return
		}
		c.Spawn(func(cc *Ctx) { fan(cc, n/2) })
		fan(c, n-n/2)
		c.Sync()
	}
	rep, err := rt.Run(func(c *Ctx) {
		for burst := 0; burst < 10; burst++ {
			c.Compute(2_000_000) // serial gap
			fan(c, 64)           // parallel burst
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxWorkers < 2 {
		t.Fatalf("palirria never grew: max workers %d", rep.MaxWorkers)
	}
	if len(rep.Decisions.Decisions()) == 0 {
		t.Fatal("no decisions recorded")
	}
}

func TestAdaptiveASteal(t *testing.T) {
	mesh := topo.MustMesh(4, 2)
	rt, err := New(Config{
		Mesh: mesh, Source: 0, Policy: "random",
		Estimator: asteal.New(),
		Quantum:   500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := workload.Get("stress")
	rep, err := rt.Run(SpecFunc(d.Root(workload.Simulator)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallNS <= 0 {
		t.Fatal("empty run")
	}
}

func TestDefaultMeshFromGOMAXPROCS(t *testing.T) {
	rt, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var ok atomic.Bool
	if _, err := rt.Run(func(c *Ctx) { ok.Store(true) }); err != nil {
		t.Fatal(err)
	}
	if !ok.Load() {
		t.Fatal("root did not run")
	}
}

func TestPinnedWorkers(t *testing.T) {
	rt, err := New(Config{Mesh: smallMesh(t), Source: 0, Pin: true, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	var sum atomic.Int64
	_, err = rt.Run(func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.Spawn(func(cc *Ctx) { sum.Add(1); cc.Compute(1000) })
		}
		c.SyncAll()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 100 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestComputeBurnsWork(t *testing.T) {
	rt, err := New(Config{Mesh: smallMesh(t), Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = rt.Run(func(c *Ctx) { c.Compute(2_000_000) })
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) <= 0 {
		t.Fatal("compute took no time")
	}
}

func TestNestedParallelSections(t *testing.T) {
	// Repeated spawn/sync sections (Sort-like phases) across one run.
	rt, err := New(Config{Mesh: smallMesh(t), Source: 0, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	var total atomic.Int64
	_, err = rt.Run(func(c *Ctx) {
		for phase := 0; phase < 20; phase++ {
			for i := 0; i < 16; i++ {
				c.Spawn(func(cc *Ctx) {
					cc.Spawn(func(ccc *Ctx) { total.Add(1) })
					total.Add(1)
					cc.Sync()
				})
			}
			c.SyncAll()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 20*16*2 {
		t.Fatalf("total = %d, want %d", total.Load(), 20*16*2)
	}
}

// TestPropertyRandomTreesOnRealRuntime runs randomly generated trees on
// the goroutine runtime: every spawned task must execute exactly once
// (checked via the spawns+1 accounting identity).
func TestPropertyRandomTreesOnRealRuntime(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		ref, err := task.Measure(task.RandomTree(task.RandomTreeConfig{Seed: seed, MaxWork: 50}))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run(SpecFunc(task.RandomTree(task.RandomTreeConfig{Seed: seed, MaxWork: 50})))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var tasks int64
		for _, w := range rep.Workers {
			tasks += w.Tasks
		}
		if tasks != ref.Spawns+1 {
			t.Fatalf("seed %d: tasks %d != spawns+1 %d", seed, tasks, ref.Spawns+1)
		}
	}
}
