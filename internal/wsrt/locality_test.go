package wsrt

import (
	"testing"
	"time"

	"palirria/internal/core"
	"palirria/internal/topo"
)

// TestPickShardDegeneratePaths pins the fallbacks around the p2c pick: a
// nil bundle (Submit before the first rebuild), a bundle with an empty
// member list (degenerate grant), and a single-member grant must all
// yield a usable shard without touching the locality machinery.
func TestPickShardDegeneratePaths(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(4, 1), Source: 0, InitialDiaspora: 10,
		SubmitQueueCap: 16, Locality: topo.FlatLocality(4)})
	if err != nil {
		t.Fatal(err)
	}
	if w := rt.pickShard(nil); w == nil || rt.byID[w.id] != w {
		t.Fatalf("nil bundle: pick = %v, want a runtime worker", w)
	}
	if w := rt.pickShard(&policyBundle{}); w == nil || rt.byID[w.id] != w {
		t.Fatalf("empty members: pick = %v, want a workerList fallback", w)
	}
	solo := rt.byID[2]
	if w := rt.pickShard(&policyBundle{members: []*worker{solo}}); w != solo {
		t.Fatalf("single member: pick = %v, want worker 2", w)
	}
}

// TestPickShardLocalityBias drives the two multi-node branches of
// pickShard deterministically: every byNode group aliases the same
// worker set, so the assertion holds whichever node the test thread
// reports as home.
func TestPickShardLocalityBias(t *testing.T) {
	loc := topo.SplitLocality(8, 2)
	rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10,
		SubmitQueueCap: 64, Locality: loc})
	if err != nil {
		t.Fatal(err)
	}
	b := rt.loadPolicy()
	if b == nil || b.byNode == nil || len(b.byNode) != 2 {
		t.Fatalf("multi-node bundle missing byNode groups: %+v", b)
	}
	for _, w := range b.members {
		if g := b.byNode[loc.Node(w.id)]; !isMember(g, w) {
			t.Fatalf("worker %d missing from its node group", w.id)
		}
	}
	// Deepen every shard except workers 0 and 1.
	for _, w := range b.members[2:] {
		for i := 0; i < 16; i++ {
			if !w.shard.Push(&rtTask{fn: func(*Ctx) {}}) {
				t.Fatal("seeding failed")
			}
		}
	}
	// >= 2 local members: p2c stays within the local group.
	pair := []*worker{b.members[0], b.members[1]}
	biased := &policyBundle{members: b.members, loc: loc,
		byNode: [][]*worker{pair, pair}}
	for i := 0; i < 200; i++ {
		if w := rt.pickShard(biased); w != pair[0] && w != pair[1] {
			t.Fatalf("multi-local pick escaped the node group: worker %d", w.id)
		}
	}
	// Exactly 1 local member: it races one global candidate on depth, and
	// with every other shard 16 deep the empty local shard always wins.
	solo := []*worker{b.members[1]}
	lone := &policyBundle{members: b.members, loc: loc,
		byNode: [][]*worker{solo, solo}}
	for i := 0; i < 200; i++ {
		if w := rt.pickShard(lone); w != solo[0] {
			t.Fatalf("single-local pick = worker %d, want the shallow local worker %d", w.id, solo[0].id)
		}
	}
	// 0 local members: global p2c over the full member list.
	empty := &policyBundle{members: b.members, loc: loc,
		byNode: make([][]*worker, loc.NumNodes())}
	for i := 0; i < 200; i++ {
		if w := rt.pickShard(empty); w == nil || !isMember(b.members, w) {
			t.Fatalf("empty-local pick = %v, want any member", w)
		}
	}
}

// TestPushAnyPrefersGrantedMembers pins the fallback-publish ordering fix:
// pushAny must try the current bundle's granted members before any
// revoked or never-granted shard, and spill outside the grant only when
// every member shard is full.
func TestPushAnyPrefersGrantedMembers(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(4, 1), Source: 0, InitialDiaspora: 10,
		SubmitQueueCap: 4, Locality: topo.FlatLocality(4)})
	if err != nil {
		t.Fatal(err)
	}
	// A grant of worker 2 only: the old flat core-order scan would land
	// the publish in worker 0's shard — a non-member with no owner loop
	// draining it.
	member := rt.byID[2]
	rt.policy.Store(&policyBundle{members: []*worker{member}})
	if w := rt.pushAny(&rtTask{fn: func(*Ctx) {}}); w != member {
		t.Fatalf("pushAny landed in worker %d, want granted worker 2", w.id)
	}
	// Fill the member's shard; the overflow must now spill to the first
	// non-member in core order — last resort, not first choice.
	for member.shard.Push(&rtTask{fn: func(*Ctx) {}}) {
	}
	if w := rt.pushAny(&rtTask{fn: func(*Ctx) {}}); w != rt.byID[0] {
		t.Fatalf("overflow pushAny landed in worker %d, want worker 0", w.id)
	}
	// No bundle at all: the plain core-order scan (worker 0 has room).
	rt2, err := New(Config{Mesh: topo.MustMesh(2, 1), Source: 0, SubmitQueueCap: 4,
		Locality: topo.FlatLocality(2)})
	if err != nil {
		t.Fatal(err)
	}
	rt2.policy.Store(&policyBundle{}) // empty members
	if w := rt2.pushAny(&rtTask{fn: func(*Ctx) {}}); w != rt2.byID[0] {
		t.Fatalf("no-members pushAny landed in worker %d, want worker 0", w.id)
	}
}

// TestStrandedJobPickupLatency is the end-to-end regression for the
// stranded-publish bug: a job sitting in the shard of a worker outside
// the current grant must still start within a bounded window (the
// takeSibling rescue scan), not wait for the next grant to include that
// worker again.
func TestStrandedJobPickupLatency(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(4, 1), Source: 0, InitialDiaspora: 10,
		SubmitQueueCap: 16, Locality: topo.FlatLocality(4),
		Estimator: core.NewPalirria()})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	// Shrink the grant below the full mesh and wait for the rebuild to
	// land (grants are zone-granular, so the floor is the zone-1
	// allotment, not a single worker). Estimation quanta only advance
	// while work flows, so a trickle of no-op jobs drives the decisions
	// that apply the lowered cap.
	rt.SetMaxWorkers(1)
	deadline := time.Now().Add(latencyBudget(10 * time.Second))
	for {
		if b := rt.loadPolicy(); b != nil && len(b.members) > 0 && len(b.members) < len(rt.workerList) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("grant never shrank below the full mesh")
		}
		if err := rt.Submit(func(c *Ctx) {}, nil); err != nil {
			t.Fatalf("trickle submit: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	b := rt.loadPolicy()
	// Strand a job in a revoked worker's shard, reservation and wakeup
	// included — exactly what a Submit that raced the revocation did.
	var victim *worker
	for _, w := range rt.workerList {
		if !isMember(b.members, w) {
			victim = w
			break
		}
	}
	done := make(chan struct{})
	victim.seal.RLock()
	if rt.reserveUpTo(victim, 1) != 1 {
		t.Fatal("reservation failed on an idle runtime")
	}
	if !victim.shard.Push(&rtTask{fn: func(*Ctx) {}, onDone: func() { close(done) }}) {
		t.Fatal("push failed after successful reservation")
	}
	victim.seal.RUnlock()
	rt.wakeForInject(victim)
	select {
	case <-done:
	case <-time.After(latencyBudget(5 * time.Second)):
		t.Fatal("stranded job never picked up: rescue scan broken")
	}
	if _, err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := rt.VerifySubmitLedger(); err != nil {
		t.Fatal(err)
	}
}

// TestStealSplitInvariant checks the locality accounting identity: every
// successful steal — deque or shard — is classified exactly once, so
// LocalSteals+RemoteSteals == Steals+ShardSteals per worker, and a flat
// map never reports a remote steal.
func TestStealSplitInvariant(t *testing.T) {
	run := func(t *testing.T, loc *topo.Locality) *Report {
		t.Helper()
		rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10,
			Locality: loc})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run(func(c *Ctx) {
			for i := 0; i < 64; i++ {
				c.Spawn(func(cc *Ctx) {
					for j := 0; j < 8; j++ {
						cc.Spawn(func(*Ctx) {})
					}
					cc.SyncAll()
				})
			}
			c.SyncAll()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	t.Run("split", func(t *testing.T) {
		rep := run(t, topo.SplitLocality(8, 2))
		for id, wr := range rep.Workers {
			if wr.LocalSteals+wr.RemoteSteals != wr.Steals+wr.ShardSteals {
				t.Fatalf("worker %d: local %d + remote %d != steals %d + shard %d",
					id, wr.LocalSteals, wr.RemoteSteals, wr.Steals, wr.ShardSteals)
			}
		}
	})
	t.Run("flat", func(t *testing.T) {
		rep := run(t, topo.FlatLocality(8))
		for id, wr := range rep.Workers {
			if wr.RemoteSteals != 0 {
				t.Fatalf("worker %d: %d remote steals on a flat map", id, wr.RemoteSteals)
			}
			if wr.LocalSteals != wr.Steals+wr.ShardSteals {
				t.Fatalf("worker %d: local %d != steals %d + shard %d",
					id, wr.LocalSteals, wr.Steals, wr.ShardSteals)
			}
		}
	})
}
