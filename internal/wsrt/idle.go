package wsrt

import (
	"palirria/internal/obs"
)

// Idle path: event-driven worker parking.
//
// The paper's core claim is that Palirria keeps wasted cycles low by
// shrinking the allotment instead of letting idle workers burn time
// searching. The runtime therefore must not busy-wait: a worker that
// exhausts its victim list parks and is woken precisely by the events
// that can give it work —
//
//   - a victim pushing a task (Ctx.Spawn wakes one idle thief of the
//     pushing worker, taken from the reverse of the victim graph);
//   - a successful steal that leaves more work behind (wake chaining:
//     the thief wakes the victim's next idle thief before running);
//   - a persistent-mode Submit (the producer pushes into one worker's
//     injection shard and wakes that shard's owner — or, when the owner
//     is busy, one of the owner's idle thieves, who will find the job
//     through the same victim order it steals spawned work by);
//   - an allotment change (the helper unparks entering workers, nudges
//     leaving ones, and wakes every announced waiter after a policy
//     rebuild so they re-evaluate against the new victim lists);
//   - shutdown (stop stores the state, then unparks).
//
// Lost wakeups are excluded by a prepare/commit protocol. A worker
// announces itself (waiting.Store(true)), then re-checks every wake
// source, and only then blocks. A producer makes its work visible
// first, then loads the waiting flags. Both sides use sequentially
// consistent atomics, so for every (producer, eligible thief) pair at
// least one of the two observes the other: either the re-check sees the
// work, or the producer sees the announced waiter and delivers a token.
// Tokens travel through each worker's buffered parkC, so a token sent
// to a worker that has not blocked yet is consumed by its next park
// immediately — a wake can be early, never lost.
//
// Spurious wakeups are benign by construction: every wake path returns
// to the top of the worker loop, which re-examines state, own queue,
// victims, and the injection shards before parking again.

// idleSpins is the bounded spin budget: failed full victim sweeps a
// worker performs (yielding between them) before it announces itself
// and parks. It replaces the seed's exponential time.Sleep backoff,
// which capped at 256µs and both inflated SearchNS and delayed pickup
// of newly submitted work by up to a full backoff period.
const idleSpins = 4

// announceIdle publishes w as a parked-or-parking thief. Idempotent;
// paired with clearIdle, which is called by whoever consumes the
// announcement (a waker or the worker itself on wake), keeping the
// idleWaiters gauge exact.
func (r *Runtime) announceIdle(w *worker) {
	if w.waiting.CompareAndSwap(false, true) {
		r.idleWaiters.Add(1)
	}
}

// clearIdle retracts w's announcement. Returns true for the single
// caller that actually consumed it — that caller owns the wakeup.
func (r *Runtime) clearIdle(w *worker) bool {
	if w.waiting.CompareAndSwap(true, false) {
		r.idleWaiters.Add(-1)
		return true
	}
	return false
}

// wakeOneThief wakes one announced idle worker that has w on its victim
// list, if any, reporting whether a token was delivered. Producers call
// it after making work visible in w's deque or shard; the common
// no-waiters case is a single atomic load.
func (w *worker) wakeOneThief() bool {
	r := w.rt
	if r.idleWaiters.Load() == 0 {
		return false
	}
	b := r.loadPolicy()
	if b == nil {
		return false
	}
	for _, t := range b.thieves[w.id] {
		if r.clearIdle(t) {
			r.wakeups.Add(1)
			t.unpark()
			return true
		}
	}
	return false
}

// wakeForInject delivers the post-push wakeup for a job injected into
// w's shard: the owner itself first (it drains its own shard before
// anything else, so this is the locality fast path), then one of the
// owner's announced thieves, then any announced waiter at all — the
// catch-all that covers a job landing in the shard of a worker revoked
// between the producer's policy load and its push, whose thief list may
// already be gone from the rebuilt wake graph.
func (r *Runtime) wakeForInject(w *worker) {
	if r.idleWaiters.Load() == 0 {
		return
	}
	if r.clearIdle(w) {
		r.wakeups.Add(1)
		w.unpark()
		return
	}
	if w.wakeOneThief() {
		return
	}
	for _, o := range r.workerList {
		if r.clearIdle(o) {
			r.wakeups.Add(1)
			o.unpark()
			return
		}
	}
}

// wakeAllIdle wakes every announced waiter. The helper calls it after
// swapping in a rebuilt victim policy: a waiter may have parked against
// the old victim lists, and work pushed by a newly entered worker in
// the window before the swap would wake nobody under the old reverse
// lists. Re-checking against the new bundle closes that window.
// Shutdown promptness does not depend on it — stop() unparks directly.
func (r *Runtime) wakeAllIdle() {
	if r.idleWaiters.Load() == 0 {
		return
	}
	for _, w := range r.workers {
		if r.clearIdle(w) {
			r.wakeups.Add(1)
			w.unpark()
		}
	}
}

// wakeWorthy is the check-again-after-announce half of the protocol: it
// re-examines every source the subsequent park would be woken for. Any
// producer whose work this load misses necessarily sees w's announced
// flag afterwards and delivers a token.
func (w *worker) wakeWorthy() bool {
	r := w.rt
	if r.finished.Load() || w.state.Load() != stateActive {
		return true // let the loop re-dispatch on state
	}
	if w.deque.Len() > 0 {
		return true // injected work
	}
	if b := r.loadPolicy(); b != nil {
		// Load the victim list fresh: a policy swapped in between the
		// last sweep and this announce must be honoured here.
		w.victimBuf = b.policy.VictimsInto(w.id, w.victimBuf[:0])
		for _, v := range w.victimBuf {
			if vw := r.workerByID(v); vw != nil && vw.deque.Len() > 0 {
				return true
			}
		}
	}
	if w.pickup {
		// An injection shard somewhere holds a job. The depth sweep
		// replaces the old aggregate-counter load; each Len is
		// racy-but-recent, and the parking protocol covers the race — a
		// producer whose push this sweep misses necessarily observes the
		// announced flag afterwards and delivers a token.
		for _, vw := range r.workerList {
			if vw.shard.Len() > 0 {
				return true
			}
		}
	}
	return false
}

// idleWait is the committed idle path of an active worker: announce,
// re-check, then block until woken. A persistent-mode Submit that misses
// the wakeWorthy re-check necessarily sees the announced flag afterwards
// and delivers a token through wakeForInject, so there is no polling
// interval and no backoff cap between submission and start.
func (w *worker) idleWait() {
	r := w.rt
	r.announceIdle(w)
	if w.wakeWorthy() {
		r.clearIdle(w)
		return
	}
	// A parking worker publishes an empty bag: its queue is empty and it
	// is about to sleep, so a stale high-water mark from its last active
	// window must not keep feeding the estimator's increase condition.
	w.hwm.Store(0)
	r.parks.Add(1)
	t0 := nowNS()
	// The same reading closes the loop's open search episode and starts
	// the idle window — the search/idle boundary is exact by construction.
	w.closeSearch(t0)
	<-w.parkC
	r.clearIdle(w)
	end := nowNS()
	w.phaseTS = end
	dur := end - t0
	w.addIdle(dur)
	w.emit(obs.KindPark, obs.NoWorker, dur)
}

// parkBlocked is the wait of a worker outside the allotment (parked or
// fully drained): it is not an eligible thief, so it does not announce
// into the idle set — only a grant or stop may (and will) wake it. No
// timeout fallback: both wake paths store their reason before sending
// the token, and the loop re-reads state after every wake, so a stale
// token can only cause one spurious re-check, never a missed signal.
func (w *worker) parkBlocked() {
	w.hwm.Store(0)
	w.rt.parks.Add(1)
	t0 := nowNS()
	w.closeSearch(t0)
	<-w.parkC
	end := nowNS()
	w.phaseTS = end
	dur := end - t0
	w.addIdle(dur)
	w.emit(obs.KindPark, obs.NoWorker, dur)
}
