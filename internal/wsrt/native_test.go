package wsrt

import (
	"sort"
	"testing"
	"time"

	"palirria/internal/core"
	"palirria/internal/topo"
	"palirria/internal/xrand"
)

func TestParallelMergeSortCorrect(t *testing.T) {
	rng := xrand.NewXoshiro256(42)
	data := make([]int, 50000)
	for i := range data {
		data[i] = rng.Intn(1 << 20)
	}
	want := append([]int(nil), data...)
	sort.Ints(want)

	rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(ParallelMergeSort(data, 256)); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("mismatch at %d: %d != %d", i, data[i], want[i])
		}
	}
}

func TestParallelMergeSortEdgeCases(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 255, 256, 257} {
		rng := xrand.NewXoshiro256(uint64(n))
		data := make([]int, n)
		for i := range data {
			data[i] = rng.Intn(100)
		}
		rt, err := New(Config{Mesh: topo.MustMesh(4), Source: 0, InitialDiaspora: 10})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(ParallelMergeSort(data, 4)); err != nil {
			t.Fatal(err)
		}
		if !sort.IntsAreSorted(data) {
			t.Fatalf("n=%d not sorted: %v", n, data)
		}
	}
}

func TestCountNQueensKnownValues(t *testing.T) {
	// Known solution counts: 8 -> 92, 9 -> 352, 10 -> 724.
	want := map[int]int64{6: 4, 7: 40, 8: 92, 9: 352, 10: 724}
	for n, expect := range want {
		var got int64
		rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(CountNQueens(n, 3, &got)); err != nil {
			t.Fatal(err)
		}
		if got != expect {
			t.Fatalf("queens(%d) = %d, want %d", n, got, expect)
		}
	}
}

func TestCountNQueensAdaptive(t *testing.T) {
	// The real nQueens under an adaptive Palirria runtime still computes
	// the right answer while the allotment moves.
	var got int64
	rt, err := New(Config{
		Mesh: topo.MustMesh(4, 4), Source: 5,
		Estimator: core.NewPalirria(),
		Quantum:   300 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(CountNQueens(10, 4, &got)); err != nil {
		t.Fatal(err)
	}
	if got != 724 {
		t.Fatalf("queens(10) = %d, want 724", got)
	}
}

func TestParallelReduce(t *testing.T) {
	var got int64
	rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	if _, err := rt.Run(ParallelReduce(n, 128, func(i int) int64 { return int64(i) }, &got)); err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * (n - 1) / 2; got != want {
		t.Fatalf("reduce = %d, want %d", got, want)
	}
}

func TestParallelReduceTinyGrain(t *testing.T) {
	var got int64
	rt, err := New(Config{Mesh: topo.MustMesh(2), Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(ParallelReduce(10, 0, func(i int) int64 { return 1 }, &got)); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("reduce = %d", got)
	}
}
