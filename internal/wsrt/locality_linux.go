//go:build linux && (amd64 || arm64 || 386 || arm)

package wsrt

import (
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

// Physical-locality detection, Linux: the kernel's getcpu(2) reports the
// (cpu, NUMA node) pair the calling thread is running on. The stdlib
// syscall package does not export SYS_GETCPU, so the number is pinned per
// architecture here (x/sys/unix would export it, but the runtime carries
// no dependencies).
var sysGetcpu = map[string]uintptr{
	"amd64": 309, "arm64": 168, "386": 318, "arm": 345,
}[runtime.GOARCH]

// getcpu returns the CPU and NUMA node the calling thread is on.
func getcpu() (cpu, node int, ok bool) {
	var c, n uint32
	_, _, errno := syscall.RawSyscall(sysGetcpu,
		uintptr(unsafe.Pointer(&c)), uintptr(unsafe.Pointer(&n)), 0)
	if errno != 0 {
		return 0, 0, false
	}
	return int(c), int(n), true
}

// currentCPU reports the CPU the calling goroutine's thread is running on
// right now — the "last-run CPU" pickShard's locality bias keys on. -1
// when undetectable. The goroutine may migrate the instant this returns;
// that is fine, the result steers placement, never correctness.
func currentCPU() int {
	if cpu, _, ok := getcpu(); ok {
		return cpu
	}
	return -1
}

var (
	physOnce  sync.Once
	physNodes []int
)

// physCPUNodes returns the physical cpu -> NUMA node table of the host,
// detected once per process, or nil when the host is single-node or the
// probe fails (the graceful flat fallback). Detection pins the calling
// thread to each CPU in turn and asks getcpu which node it landed on —
// the same sched_setaffinity mechanism the workers use for pinning, so a
// host that cannot pin cannot claim locality either.
func physCPUNodes() []int {
	physOnce.Do(func() { physNodes = detectCPUNodes(runtime.NumCPU()) })
	return physNodes
}

func detectCPUNodes(ncpu int) []int {
	if ncpu < 2 {
		return nil
	}
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	// Save the thread's affinity mask and restore it on the way out: the
	// probe must not leave the caller pinned to the last CPU it visited.
	var saved [16]uint64
	if _, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, uintptr(len(saved)*8), uintptr(unsafe.Pointer(&saved[0]))); errno != 0 {
		return nil
	}
	defer syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(saved)*8), uintptr(unsafe.Pointer(&saved[0])))

	nodes := make([]int, ncpu)
	multi := false
	for cpu := 0; cpu < ncpu; cpu++ {
		var mask [16]uint64
		mask[cpu/64] = 1 << (uint(cpu) % 64)
		if _, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
			0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0]))); errno != 0 {
			return nil // offline or forbidden CPU: no trustworthy map
		}
		// sched_setaffinity migrates the thread before returning, so
		// getcpu now answers for exactly this CPU.
		c, n, ok := getcpu()
		if !ok || c != cpu {
			return nil
		}
		nodes[cpu] = n
		if n != nodes[0] {
			multi = true
		}
	}
	if !multi {
		return nil // single-node host: flat, the locality paths stay cold
	}
	return nodes
}
