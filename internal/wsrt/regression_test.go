package wsrt

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"palirria/internal/core"
	"palirria/internal/topo"
)

// TestSubmitShutdownNoLostJobs is the regression test for the
// Submit-vs-Shutdown TOCTOU: a Submit that passed the closed check could
// complete its queue send after Shutdown's flush loop had already
// observed an empty queue, leaving a job whose Submit returned nil but
// whose onDone never fired — a silently lost job. The seal lock composes
// the closed check with the send, so every nil-returning Submit's job is
// either run or flushed.
//
// The test hammers Submit from several goroutines while Shutdown races
// at a jittered offset, then requires onDone to have fired exactly once
// for every accepted job. Against the pre-fix runtime this fails within
// a few dozen iterations; post-fix it must always pass, race detector
// included.
func TestSubmitShutdownNoLostJobs(t *testing.T) {
	// Few P's, many submitters: a submitter preempted between the closed
	// check and the queue send then sits on a long run queue, giving the
	// racing Shutdown time to finish its flush before the send lands —
	// exactly the pre-fix loss window.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	const iters = 60
	for iter := 0; iter < iters; iter++ {
		rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, SubmitQueueCap: 64})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Start(); err != nil {
			t.Fatal(err)
		}
		var accepted, fired atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 32; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					err := rt.Submit(func(*Ctx) {}, func() { fired.Add(1) })
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, ErrClosed):
						return
					case errors.Is(err, ErrSubmitQueueFull):
						runtime.Gosched()
					default:
						t.Error(err)
						return
					}
				}
			}()
		}
		// Jitter the shutdown point across iterations so it lands in
		// different phases of the submit storm.
		time.Sleep(time.Duration(iter%7) * 137 * time.Microsecond)
		if _, err := rt.Shutdown(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		// Every submitter has returned, so every accepted Submit finished
		// its send; each such job must have had onDone fire (run by a
		// worker or discarded by the shutdown flush). Allow in-flight
		// callbacks a moment to land.
		deadline := time.Now().Add(5 * time.Second)
		for fired.Load() != accepted.Load() && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		if got, want := fired.Load(), accepted.Load(); got != want {
			t.Fatalf("iter %d: onDone fired for %d of %d accepted jobs — job lost in the Submit/Shutdown window",
				iter, got, want)
		}
	}
}

// TestShrinkWithWorkConservation mirrors the simulator's
// TestScriptedShrinkDrainsAndRetires on the real runtime: the worker cap
// oscillates hard while deques are non-empty, forcing grants, revokes and
// drains mid-workload. Work must be conserved — every job runs exactly
// once, every spawned leaf executes exactly once, and no completion is
// lost or duplicated. Run under -race in CI.
func TestShrinkWithWorkConservation(t *testing.T) {
	rt, err := New(Config{
		Mesh: topo.MustMesh(4, 4), Source: 5,
		Estimator:      core.NewPalirria(),
		Quantum:        300 * time.Microsecond,
		SubmitQueueCap: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var oscWG sync.WaitGroup
	oscWG.Add(1)
	go func() {
		defer oscWG.Done()
		caps := []int{16, 5, 12, 1, 0, 8}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rt.SetMaxWorkers(caps[i%len(caps)])
			time.Sleep(700 * time.Microsecond)
		}
	}()
	const jobs, leaves = 48, 64
	var leafRuns, jobRuns atomic.Int64
	var fan func(c *Ctx, n int)
	fan = func(c *Ctx, n int) {
		if n <= 1 {
			c.Compute(5_000)
			leafRuns.Add(1)
			return
		}
		c.Spawn(func(cc *Ctx) { fan(cc, n/2) })
		fan(c, n-n/2)
		c.Sync()
	}
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		for {
			err := rt.Submit(func(c *Ctx) { jobRuns.Add(1); fan(c, leaves) }, wg.Done)
			if err == nil {
				break
			}
			if errors.Is(err, ErrSubmitQueueFull) {
				time.Sleep(50 * time.Microsecond)
				continue
			}
			t.Fatal(err)
		}
		if j%6 == 0 {
			time.Sleep(300 * time.Microsecond) // spread jobs across cap phases
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock: jobs did not complete under cap oscillation")
	}
	close(stop)
	oscWG.Wait()
	rep, err := rt.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if got := jobRuns.Load(); got != jobs {
		t.Fatalf("job bodies ran %d times, want %d — job lost or duplicated", got, jobs)
	}
	if got := leafRuns.Load(); got != jobs*leaves {
		t.Fatalf("leaves ran %d times, want %d — task lost or duplicated across a drain", got, jobs*leaves)
	}
	var tasks int64
	for _, w := range rep.Workers {
		tasks += w.Tasks
	}
	if tasks != jobs*leaves {
		t.Fatalf("runtime counted %d tasks, want %d", tasks, jobs*leaves)
	}
	// Shutdown's wall clock is captured after quiesce, so the per-worker
	// accounting partition must hold against the reported wall directly.
	const slack = int64(time.Millisecond)
	for id, w := range rep.Workers {
		if sum := w.UsefulNS + w.SearchNS + w.IdleNS; sum > rep.WallNS+slack {
			t.Errorf("worker %d: useful+search+idle = %d exceeds reported wall %d", id, sum, rep.WallNS)
		}
	}
}
