package wsrt

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"palirria/internal/topo"
)

// blockAllWorkers occupies every worker with a job parked on the returned
// gate, so subsequently submitted jobs stay queued in the injection
// shards. Callers must close the gate before tearing the runtime down.
func blockAllWorkers(t *testing.T, rt *Runtime, n int) chan struct{} {
	t.Helper()
	gate := make(chan struct{})
	var running sync.WaitGroup
	for i := 0; i < n; i++ {
		running.Add(1)
		if err := rt.Submit(func(c *Ctx) { running.Done(); <-gate }, nil); err != nil {
			t.Fatal(err)
		}
	}
	running.Wait()
	return gate
}

// TestShutdownFlushesAllShards is the regression gate for the sharded
// flush: jobs queued across several injection shards at seal time must
// all have their onDone fired by Shutdown — a flush that drained only one
// queue (the legacy global funnel, or just the first shard) loses some.
func TestShutdownFlushesAllShards(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10, SubmitQueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	gate := blockAllWorkers(t, rt, len(rt.workers))
	const queued = 32
	var flushed atomic.Int64
	for i := 0; i < queued; i++ {
		if err := rt.Submit(func(c *Ctx) {}, func() { flushed.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	nonEmpty := 0
	for _, w := range rt.workerList {
		if w.shard.Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("round-robin left %d shards non-empty, want >= 2 (test would not prove a multi-shard flush)", nonEmpty)
	}
	// Shutdown seals and stops the workers; they are all still inside the
	// gated jobs, so none can drain a shard before retiring. Release the
	// gate only after every worker is marked stopped — the queued jobs can
	// then only resolve through the flush.
	shutdownErr := make(chan error, 1)
	go func() {
		_, err := rt.Shutdown()
		shutdownErr <- err
	}()
	deadline := time.After(10 * time.Second)
	for {
		stopped := 0
		for _, w := range rt.workerList {
			if w.state.Load() == stateStopped {
				stopped++
			}
		}
		if stopped == len(rt.workerList) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("workers never reached stateStopped")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatal(err)
	}
	if got := flushed.Load(); got != queued {
		t.Fatalf("flush fired %d onDone callbacks, want %d", got, queued)
	}
	if got := rt.backlogTotal(); got != 0 {
		t.Fatalf("aggregate backlog %d after flush, want 0", got)
	}
	if err := rt.VerifySubmitLedger(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitBatchRunsAllJobs(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10, SubmitQueueCap: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	const batches, per = 8, 16
	var ran, done atomic.Int64
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs := make([]Job, per)
			var batchDone sync.WaitGroup
			for i := range jobs {
				batchDone.Add(1)
				jobs[i] = Job{
					Fn: func(c *Ctx) {
						c.Spawn(func(cc *Ctx) { ran.Add(1) })
						c.SyncAll()
						ran.Add(1)
					},
					OnDone: func() { done.Add(1); batchDone.Done() },
				}
			}
			for off := 0; off < per; {
				n, err := rt.SubmitBatch(jobs[off:])
				off += n
				if err != nil {
					if errors.Is(err, ErrSubmitQueueFull) {
						time.Sleep(100 * time.Microsecond)
						continue
					}
					t.Errorf("SubmitBatch: %v", err)
					return
				}
			}
			batchDone.Wait()
		}()
	}
	wg.Wait()
	if got := done.Load(); got != batches*per {
		t.Fatalf("onDone fired %d times, want %d", got, batches*per)
	}
	if got := ran.Load(); got != batches*per*2 {
		t.Fatalf("ran %d task bodies, want %d", got, batches*per*2)
	}
	if got := rt.injectedTotal(); got != batches*per {
		t.Fatalf("injected counter %d, want %d", got, batches*per)
	}
	if _, err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitBatchPrefixAcceptance checks the documented partial-failure
// contract: when the aggregate backlog bound fills mid-batch, the first n
// jobs are on the books (onDone fires for each, here via the shutdown
// flush) and the rest were never touched.
func TestSubmitBatchPrefixAcceptance(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(2, 1), Source: 0, SubmitQueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	gate := blockAllWorkers(t, rt, len(rt.workers))
	var fired atomic.Int64
	jobs := make([]Job, 10)
	for i := range jobs {
		jobs[i] = Job{Fn: func(c *Ctx) {}, OnDone: func() { fired.Add(1) }}
	}
	n, err := rt.SubmitBatch(jobs)
	if n != 4 || !errors.Is(err, ErrSubmitQueueFull) {
		t.Fatalf("SubmitBatch = (%d, %v), want (4, ErrSubmitQueueFull)", n, err)
	}
	if err := rt.Submit(func(c *Ctx) {}, nil); !errors.Is(err, ErrSubmitQueueFull) {
		t.Fatalf("overflow Submit = %v, want ErrSubmitQueueFull", err)
	}
	close(gate)
	if _, err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := fired.Load(); got != int64(n) {
		t.Fatalf("onDone fired %d times, want %d (accepted prefix only)", got, n)
	}
}

func TestSubmitBatchLifecycleErrors(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(2, 1), Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := rt.SubmitBatch([]Job{{Fn: func(c *Ctx) {}}}); n != 0 || !errors.Is(err, ErrNotPersistent) {
		t.Fatalf("SubmitBatch before Start = (%d, %v), want (0, ErrNotPersistent)", n, err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	if n, err := rt.SubmitBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty SubmitBatch = (%d, %v), want (0, nil)", n, err)
	}
	if _, err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if n, err := rt.SubmitBatch([]Job{{Fn: func(c *Ctx) {}}}); n != 0 || !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitBatch after Shutdown = (%d, %v), want (0, ErrClosed)", n, err)
	}
}
