package wsrt

import (
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// TestStealProbeZeroAllocs guards the allocation-free steal path: one
// probe sweep plus a successful steal and task execution must not touch
// the heap at steady state. VictimsInto fills the worker-owned victimBuf
// and the Ctx free list recycles frames, so after AllocsPerRun's warm-up
// call every iteration reuses the same storage.
func TestStealProbeZeroAllocs(t *testing.T) {
	rt, err := New(Config{Mesh: smallMesh(t), Source: 0, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The runtime is built but never launched: the test goroutine plays
	// both the victim's owner (PushBottom) and the thief (stealProbe).
	b := rt.loadPolicy()
	if b == nil {
		t.Fatal("no policy installed")
	}
	var thief, victim *worker
	for id, w := range rt.workers {
		if vs := b.policy.Victims(id); len(vs) > 0 {
			thief, victim = w, rt.workers[vs[0]]
			break
		}
	}
	if thief == nil || victim == nil {
		t.Fatal("no (thief, victim) pair in the victim graph")
	}
	task := &rtTask{fn: func(*Ctx) {}}
	allocs := testing.AllocsPerRun(100, func() {
		task.done.Store(false)
		if !victim.deque.PushBottom(task) {
			t.Fatal("victim deque full")
		}
		st := thief.stealProbe()
		if st == nil {
			t.Fatal("steal probe found nothing")
		}
		thief.runTask(st)
	})
	if allocs != 0 {
		t.Fatalf("stealProbe path allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkSubmitToStart measures the latency from Submit returning to the
// job body running, with the runtime idle (all workers parked) before each
// submission — the path the event-driven wakeup protocol exists for. The
// seed's exponential backoff put a median of ~128µs here; the sharded
// submit path wakes the shard owner directly after the push.
func BenchmarkSubmitToStart(b *testing.B) {
	rt, err := New(Config{Mesh: smallMesh(b), Source: 0, InitialDiaspora: 10})
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		b.Fatal(err)
	}
	defer rt.Shutdown()
	started := make(chan int64)
	lat := make([]float64, 0, b.N)
	time.Sleep(2 * time.Millisecond) // let the workers park
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := nowNS()
		if err := rt.Submit(func(*Ctx) { started <- nowNS() }, nil); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, float64(<-started-t0))
		time.Sleep(500 * time.Microsecond) // re-park between samples
	}
	b.StopTimer()
	sort.Float64s(lat)
	b.ReportMetric(lat[len(lat)/2], "p50-ns")
	b.ReportMetric(lat[(len(lat)-1)*99/100], "p99-ns")
}

// BenchmarkStealThroughput runs a wide fan-out batch and reports achieved
// steals per second of wall time — the probe path's effective bandwidth.
func BenchmarkStealThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rt, err := New(Config{Mesh: smallMesh(b), Source: 0, InitialDiaspora: 10})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := rt.Run(func(c *Ctx) {
			for j := 0; j < 256; j++ {
				c.Spawn(func(cc *Ctx) { cc.Compute(20_000) })
			}
			c.SyncAll()
		})
		if err != nil {
			b.Fatal(err)
		}
		var steals int64
		for _, w := range rep.Workers {
			steals += w.Steals
		}
		b.ReportMetric(float64(steals)/(float64(rep.WallNS)/1e9), "steals/sec")
	}
}

// BenchmarkIdleSearch holds a persistent runtime idle and reports search
// nanoseconds burned per wall-clock second. Parked workers accumulate
// IdleNS, not SearchNS, so with event-driven parking this rate collapses
// to the bounded pre-park spins; the seed's sleep-backoff loop kept every
// idle worker perpetually re-sweeping its victims instead.
func BenchmarkIdleSearch(b *testing.B) {
	rt, err := New(Config{Mesh: smallMesh(b), Source: 0, InitialDiaspora: 10})
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		b.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // settle into the parked state
	searchSum := func() int64 {
		var s int64
		for _, w := range rt.workers {
			s += atomic.LoadInt64(&w.stats.SearchNS)
		}
		return s
	}
	s0, t0 := searchSum(), nowNS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		time.Sleep(20 * time.Millisecond)
	}
	b.StopTimer()
	wall := nowNS() - t0
	ds := searchSum() - s0
	if _, err := rt.Shutdown(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(ds)/(float64(wall)/1e9), "searchns/wallsec")
}
