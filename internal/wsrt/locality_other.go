//go:build !linux || !(amd64 || arm64 || 386 || arm)

package wsrt

// Physical-locality detection is Linux-only (getcpu(2) +
// sched_setaffinity); everywhere else the runtime degrades gracefully to
// the flat single-node behavior — identical scheduling to the
// pre-locality code.

// currentCPU is undetectable off Linux.
func currentCPU() int { return -1 }

// physCPUNodes reports no physical topology off Linux.
func physCPUNodes() []int { return nil }
