package wsrt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"palirria/internal/topo"
)

// TestSubmitNoLivelockAtCap pins the bounded-retry contract of the
// reservation ladder: producers hammering a saturated backlog must each
// get ErrSubmitQueueFull promptly — reserveUpTo's CAS loops are bounded
// (reserveRetries), so contention at the cap boundary degrades to an
// error return, never to a spin. The regression this guards against: an
// unbounded CAS retry loop on the slack pool would let 16 producers
// livelock each other indefinitely when free == 0.
func TestSubmitNoLivelockAtCap(t *testing.T) {
	const cap = 8
	rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10, SubmitQueueCap: cap})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	gate := blockAllWorkers(t, rt, len(rt.workers))
	// Fill the backlog to exactly the cap. The ladder is sequentially
	// exhaustive, so every one of these must be accepted.
	for i := 0; i < cap; i++ {
		if err := rt.Submit(func(c *Ctx) {}, nil); err != nil {
			t.Fatalf("fill submit %d/%d: %v", i, cap, err)
		}
	}
	// Saturated: concurrent producers must all complete their submits
	// within a bounded window, each with ErrSubmitQueueFull.
	const producers, perProducer = 16, 500
	var wrong atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := rt.Submit(func(c *Ctx) {}, nil); !errors.Is(err, ErrSubmitQueueFull) {
					wrong.Add(1)
				}
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(latencyBudget(10 * time.Second)):
		t.Fatal("producers at cap did not finish: submit path livelocked")
	}
	if got := wrong.Load(); got != 0 {
		t.Fatalf("%d submits at a saturated, consumer-blocked cap did not return ErrSubmitQueueFull", got)
	}
	close(gate)
	if _, err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := rt.VerifySubmitLedger(); err != nil {
		t.Fatal(err)
	}
}

// TestBacklogGaugeNeverNegativeHammer is the regression test for the
// double-decrement class of bugs the striped ledger was built to
// exclude: under concurrent producers, running consumers, allotment
// oscillation (which exercises the takeSibling rescue scan), and a
// racing Shutdown (the flush), the palirria_submit_backlog derivation
// must never go negative and the final ledger must balance exactly.
// With the old aggregate counter, any pop path pairing its decrement
// twice sent the gauge negative; backlogTotal is now a sum of
// individually non-negative ring depths, and this test pins that plus
// the exactly-once onDone accounting under -race.
func TestBacklogGaugeNeverNegativeHammer(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10, SubmitQueueCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	var accepted, fired atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Producers: mixed Submit and SubmitBatch, tolerating backpressure
	// and the racing shutdown.
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			onDone := func() { fired.Add(1) }
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if p%2 == 0 {
					err := rt.Submit(func(c *Ctx) {}, onDone)
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, ErrClosed):
						return
					case errors.Is(err, ErrSubmitQueueFull):
						// backpressure: retry
					default:
						t.Errorf("Submit: %v", err)
						return
					}
					continue
				}
				jobs := make([]Job, 1+i%11)
				for j := range jobs {
					jobs[j] = Job{Fn: func(c *Ctx) {}, OnDone: onDone}
				}
				n, err := rt.SubmitBatch(jobs)
				accepted.Add(int64(n))
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil && !errors.Is(err, ErrSubmitQueueFull) {
					t.Errorf("SubmitBatch: %v", err)
					return
				}
			}
		}(p)
	}
	// Allotment oscillation: revoked workers drain and their shards get
	// rescued by takeSibling — the interleaving the issue calls out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		caps := []int{1, 3, 8, 2}
		for i := 0; ; i++ {
			select {
			case <-stop:
				rt.SetMaxWorkers(0)
				return
			default:
				rt.SetMaxWorkers(caps[i%len(caps)])
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	// Sampler: the backlog gauge derivation must be non-negative at every
	// racy read, and under the seal barrier the queued total must respect
	// the cap (pushes are excluded while all write seals are held and
	// pops only shrink, so the summed snapshot is sound).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if got := rt.backlogTotal(); got < 0 {
				t.Errorf("backlog gauge went negative: %d", got)
				return
			}
			if i%8 == 0 {
				rt.sealAll()
				got := rt.backlogTotal()
				rt.unsealAll()
				if got > int64(rt.cfg.SubmitQueueCap) {
					t.Errorf("sealed backlog %d exceeds SubmitQueueCap %d", got, rt.cfg.SubmitQueueCap)
					return
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	time.Sleep(latencyBudget(80 * time.Millisecond))
	// Shutdown races the still-running producers: the seal barrier plus
	// flush must account for every accepted job exactly once.
	if _, err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if got, want := fired.Load(), accepted.Load(); got != want {
		t.Fatalf("onDone fired %d times for %d accepted jobs (ran + flushed must equal accepted)", got, want)
	}
	if got := rt.backlogTotal(); got != 0 {
		t.Fatalf("backlog %d after shutdown flush, want 0", got)
	}
	if err := rt.VerifySubmitLedger(); err != nil {
		t.Fatal(err)
	}
}

// TestPickShardPrefersShallower pins the statistical half of pickShard's
// bounded-staleness contract: the depth comparison reads racy-but-recent
// shard depths, so the pick is only required to be right on average —
// with one deep shard among n, power-of-two-choices lands on it only
// when both candidates are it (probability 1/n²), versus 1/n for a
// depth-blind uniform pick. Correctness never depends on the read being
// fresh (capacity is the ledger's job); this test is what the contract
// in pickShard's doc comment points at.
func TestPickShardPrefersShallower(t *testing.T) {
	// The member counts cover a power of two and two non-powers-of-two:
	// the old `seq % n` candidate reduction was modulo-biased toward low
	// indices for non-power-of-two n; Lemire's multiply-shift reduction is
	// exactly uniform for every n, so the p2c bound below holds across the
	// table. FlatLocality pins the global p2c path regardless of the
	// machine the test runs on.
	for _, n := range []int{3, 4, 6} {
		n := n
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			rt, err := New(Config{
				Mesh: topo.MustMesh(n, 1), Source: 0, InitialDiaspora: 10,
				SubmitQueueCap: 64, Locality: topo.FlatLocality(n),
			})
			if err != nil {
				t.Fatal(err)
			}
			// Not started: pickShard only needs the policy bundle New installed.
			b := rt.loadPolicy()
			if b == nil || len(b.members) != n {
				t.Fatalf("expected a %d-member policy bundle, got %+v", n, b)
			}
			deep := b.members[0]
			for i := 0; i < 16; i++ {
				if !deep.shard.Push(&rtTask{fn: func(*Ctx) {}}) {
					t.Fatal("seeding the deep shard failed")
				}
			}
			const trials = 4000
			deepPicks := 0
			for i := 0; i < trials; i++ {
				if rt.pickShard(b) == deep {
					deepPicks++
				}
			}
			// Expected ~ trials/n²; a depth-blind uniform pick would give
			// trials/n. The threshold is the midpoint of the two — 20+
			// standard deviations above the p2c expectation for every n in
			// the table, unreachable by noise, yet decisively below uniform.
			threshold := (trials/(n*n) + trials/n) / 2
			if deepPicks >= threshold {
				t.Fatalf("deep shard picked %d/%d times; p2c should avoid it (expected ~%d, uniform would be %d)",
					deepPicks, trials, trials/(n*n), trials/n)
			}
		})
	}
}

// TestSubmitCapInvariantProperty is the property test the tentpole's
// bound rests on: across seeded interleavings of Submit, SubmitBatch,
// owner drains, sibling rescues, allotment churn, and the shutdown
// flush, the number of queued-but-unstarted jobs never exceeds
// SubmitQueueCap (sampled under the seal barrier, where the sum is
// sound), and after shutdown every unit of the cap is back in the
// ledger exactly once. Each sub-case derives its shape from the seed so
// CI's -shuffle=on and -race runs walk distinct interleavings.
func TestSubmitCapInvariantProperty(t *testing.T) {
	cases := []struct {
		seed      uint64
		cols      int
		cap       int
		producers int
		batchMax  int // 0 = plain Submit only
	}{
		{seed: 1, cols: 2, cap: 4, producers: 2, batchMax: 0},
		{seed: 2, cols: 2, cap: 16, producers: 4, batchMax: 6},
		{seed: 3, cols: 4, cap: 64, producers: 8, batchMax: 24},
		{seed: 4, cols: 4, cap: 7, producers: 6, batchMax: 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/cap=%d/producers=%d", tc.seed, tc.cap, tc.producers), func(t *testing.T) {
			rt, err := New(Config{
				Mesh: topo.MustMesh(tc.cols, 2), Source: 0, InitialDiaspora: 10,
				SubmitQueueCap: tc.cap, Seed: tc.seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.Start(); err != nil {
				t.Fatal(err)
			}
			var accepted, fired atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for p := 0; p < tc.producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					// Per-producer xorshift stream seeded from the case seed:
					// deterministic shapes, distinct per producer.
					x := tc.seed*0x9e3779b97f4a7c15 + uint64(p) + 1
					next := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
					onDone := func() { fired.Add(1) }
					for {
						select {
						case <-stop:
							return
						default:
						}
						if tc.batchMax == 0 || next()%2 == 0 {
							err := rt.Submit(func(c *Ctx) {}, onDone)
							if err == nil {
								accepted.Add(1)
							} else if errors.Is(err, ErrClosed) {
								return
							} else if !errors.Is(err, ErrSubmitQueueFull) {
								t.Errorf("Submit: %v", err)
								return
							}
							continue
						}
						jobs := make([]Job, 1+int(next()%uint64(tc.batchMax)))
						for j := range jobs {
							jobs[j] = Job{Fn: func(c *Ctx) {}, OnDone: onDone}
						}
						n, err := rt.SubmitBatch(jobs)
						accepted.Add(int64(n))
						if errors.Is(err, ErrClosed) {
							return
						}
						if err != nil && !errors.Is(err, ErrSubmitQueueFull) {
							t.Errorf("SubmitBatch: %v", err)
							return
						}
					}
				}(p)
			}
			// Allotment churn drives drains and sibling rescues into the mix.
			wg.Add(1)
			go func() {
				defer wg.Done()
				x := tc.seed | 1
				for {
					select {
					case <-stop:
						rt.SetMaxWorkers(0)
						return
					default:
						x ^= x << 13
						x ^= x >> 7
						x ^= x << 17
						rt.SetMaxWorkers(1 + int(x%uint64(2*tc.cols)))
						time.Sleep(time.Millisecond)
					}
				}
			}()
			// The property: sampled under the seal barrier, the queued total
			// never exceeds the cap. (Unsealed sums can transiently
			// double-count a unit mid-transfer, so the barrier is part of the
			// invariant's statement, not a test convenience.)
			deadline := time.Now().Add(latencyBudget(40 * time.Millisecond))
			for time.Now().Before(deadline) {
				rt.sealAll()
				got := rt.backlogTotal()
				rt.unsealAll()
				if got > int64(tc.cap) {
					close(stop)
					t.Fatalf("queued jobs %d exceed SubmitQueueCap %d", got, tc.cap)
				}
				time.Sleep(300 * time.Microsecond)
			}
			if _, err := rt.Shutdown(); err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()
			if got, want := fired.Load(), accepted.Load(); got != want {
				t.Fatalf("onDone fired %d times for %d accepted jobs", got, want)
			}
			if err := rt.VerifySubmitLedger(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
