package wsrt

// Native workloads: real computations expressed directly against the
// runtime's Spawn/Sync API, with externally verifiable results. They are
// what downstream users of the library write; the spec-tree workloads
// exist for the deterministic simulator.

// ParallelMergeSort sorts data in place using WOOL-style fork/join:
// recursive halves are spawned until the cut-off, then merged. It returns
// the Func to pass to Runtime.Run.
func ParallelMergeSort(data []int, cutoff int) Func {
	if cutoff < 2 {
		cutoff = 2
	}
	buf := make([]int, len(data))
	var sortRange func(c *Ctx, lo, hi int)
	sortRange = func(c *Ctx, lo, hi int) {
		if hi-lo <= cutoff {
			insertionSort(data[lo:hi])
			return
		}
		mid := (lo + hi) / 2
		c.Spawn(func(cc *Ctx) { sortRange(cc, lo, mid) })
		sortRange(c, mid, hi)
		c.Sync()
		merge(data, buf, lo, mid, hi)
	}
	return func(c *Ctx) { sortRange(c, 0, len(data)) }
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// merge merges data[lo:mid] and data[mid:hi] through buf.
func merge(data, buf []int, lo, mid, hi int) {
	copy(buf[lo:hi], data[lo:hi])
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if buf[i] <= buf[j] {
			data[k] = buf[i]
			i++
		} else {
			data[k] = buf[j]
			j++
		}
		k++
	}
	for i < mid {
		data[k] = buf[i]
		i++
		k++
	}
	for j < hi {
		data[k] = buf[j]
		j++
		k++
	}
}

// CountNQueens counts the solutions of the n-queens problem with parallel
// exploration of the first `depth` rows (the workload shape of the
// paper's nQueens benchmark, computing the real answer). The result is
// written to out after the returned Func completes.
func CountNQueens(n, depth int, out *int64) Func {
	var solve func(c *Ctx, row int, cols, diag1, diag2 uint64, acc *int64)
	solve = func(c *Ctx, row int, cols, diag1, diag2 uint64, acc *int64) {
		if row == n {
			*acc = 1
			return
		}
		free := ^(cols | diag1 | diag2) & ((1 << uint(n)) - 1)
		if free == 0 {
			return
		}
		if row >= depth {
			// Sequential search below the cut-off.
			*acc = seqQueens(n, row, cols, diag1, diag2)
			return
		}
		// Parallel: one spawn per candidate column.
		var partials []int64
		var masks []uint64
		for f := free; f != 0; f &= f - 1 {
			masks = append(masks, f&-f)
		}
		partials = make([]int64, len(masks))
		for i, bit := range masks {
			i, bit := i, bit
			c.Spawn(func(cc *Ctx) {
				solve(cc, row+1, cols|bit, (diag1|bit)<<1, (diag2|bit)>>1, &partials[i])
			})
		}
		c.SyncAll()
		var sum int64
		for _, p := range partials {
			sum += p
		}
		*acc = sum
	}
	return func(c *Ctx) { solve(c, 0, 0, 0, 0, out) }
}

func seqQueens(n, row int, cols, diag1, diag2 uint64) int64 {
	if row == n {
		return 1
	}
	var count int64
	free := ^(cols | diag1 | diag2) & ((1 << uint(n)) - 1)
	for f := free; f != 0; f &= f - 1 {
		bit := f & -f
		count += seqQueens(n, row+1, cols|bit, (diag1|bit)<<1, (diag2|bit)>>1)
	}
	return count
}

// ParallelReduce sums f(i) for i in [0, n) with a nested fork/join fan,
// the building block of map/reduce-style uses of the runtime.
func ParallelReduce(n int, grain int, f func(int) int64, out *int64) Func {
	if grain < 1 {
		grain = 1
	}
	var reduce func(c *Ctx, lo, hi int, acc *int64)
	reduce = func(c *Ctx, lo, hi int, acc *int64) {
		if hi-lo <= grain {
			var s int64
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			*acc = s
			return
		}
		mid := (lo + hi) / 2
		var left int64
		c.Spawn(func(cc *Ctx) { reduce(cc, lo, mid, &left) })
		var right int64
		reduce(c, mid, hi, &right)
		c.Sync()
		*acc = left + right
	}
	return func(c *Ctx) { reduce(c, 0, n, out) }
}
