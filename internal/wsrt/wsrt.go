// Package wsrt is a real goroutine-based WOOL-style work-stealing runtime
// with adaptive allotments: the counterpart of the paper's Linux
// implementation, where the simulator package is the counterpart of its
// Barrelfish/Simics one.
//
// Workers are goroutines locked to OS threads (and, on Linux, best-effort
// pinned to cores with sched_setaffinity), each owning a lock-free
// Chase-Lev deque. The programming model is WOOL's: Spawn places a
// stealable task in the owner's queue, Sync joins the youngest outstanding
// spawn — popping and inlining it when it was not stolen, leapfrog-stealing
// while waiting when it was. Victim selection is pluggable (DVS or
// random), and a helper goroutine drives a core.Controller once per
// quantum, growing and shrinking the allotment zone by zone through
// sysched.Manager, with removed workers draining exactly as §4.1.1
// prescribes.
//
// Caveat (from the reproduction calibration): Go's own scheduler sits
// under the workers, so wall-clock results are noisier than the paper's
// pthread runtime and far noisier than the deterministic simulator. The
// benchmark harness therefore uses the simulator; this package exists to
// demonstrate — and test — the algorithms on real parallelism.
package wsrt

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"palirria/internal/core"
	"palirria/internal/deque"
	"palirria/internal/dvs"
	"palirria/internal/obs"
	"palirria/internal/obs/stream"
	"palirria/internal/sysched"
	"palirria/internal/topo"
	"palirria/internal/trace"
)

// Func is a task body. The Ctx is only valid for the duration of the call.
type Func func(*Ctx)

// Sentinel errors of the runtime lifecycle.
var (
	// ErrAlreadyUsed reports a second Run (or Start) on a Runtime. A
	// Runtime executes at most one batch root or one persistent session;
	// build a new Runtime for the next one.
	ErrAlreadyUsed = errors.New("wsrt: runtime already used")
	// ErrNotPersistent reports Submit or Shutdown on a runtime that was
	// not started with Start.
	ErrNotPersistent = errors.New("wsrt: runtime is not in persistent mode")
	// ErrClosed reports Submit or Shutdown after Shutdown.
	ErrClosed = errors.New("wsrt: runtime is shut down")
	// ErrSubmitQueueFull reports a Submit rejected because the runtime's
	// bounded submission backlog (SubmitQueueCap, aggregated across the
	// per-worker injection shards) is saturated.
	ErrSubmitQueueFull = errors.New("wsrt: submit queue full")
)

// QuantumInfo is the per-quantum digest handed to Config.OnQuantum: the
// estimator's desire before and after the false-positive filter, what the
// system layer actually granted, and the largest grant currently possible.
// Serving layers use it for admission control — a filtered desire pinned
// at Capacity is the estimator saying "this machine is saturated".
type QuantumInfo struct {
	// Time is nanoseconds since the runtime started.
	Time int64
	// Raw and Filtered are the desired worker counts before and after the
	// false-positive filter.
	Raw, Filtered int
	// Granted is the allotment size after this quantum's grant.
	Granted int
	// Capacity is the largest allotment size currently grantable (topology
	// maximum clamped by any dynamic worker cap).
	Capacity int
}

// Config describes a runtime instance.
type Config struct {
	// Mesh is the virtual topology workers are laid out on; defaults to a
	// 1xN mesh over GOMAXPROCS cores.
	Mesh *topo.Mesh
	// Source is the core the root task starts on (default: first usable).
	Source topo.CoreID
	// InitialDiaspora sets the starting allotment (default 1).
	InitialDiaspora int
	// MaxDiaspora caps growth (default: mesh maximum).
	MaxDiaspora int
	// Policy selects victim selection: "dvs" (default) or "random".
	Policy string
	// Seed drives the random policy.
	Seed uint64
	// Estimator enables adaptation; nil runs the fixed initial allotment.
	Estimator core.Estimator
	// Quantum is the estimation interval (default 2ms).
	Quantum time.Duration
	// QueueCap is the per-worker deque capacity (default 1024).
	QueueCap int
	// Pin locks workers to OS threads and, on Linux, sets CPU affinity.
	Pin bool
	// Locality overlays the physical machine topology (NUMA node / socket
	// grouping of the mesh cores) on the virtual mesh. Nil auto-detects on
	// Linux via getcpu(2) — worker core i is assumed to sit on physical
	// CPU i, which Pin makes literally true — and degrades to a flat
	// single-node map on other OSes, single-node hosts, or detection
	// failure. Flat locality reproduces the pre-locality scheduling
	// exactly: no getcpu on the submit path, no partitioned steal sweeps.
	// A multi-node map biases pickShard's p2c candidates toward the
	// submitting goroutine's last-run node and orders shard and deque
	// steal sweeps node-local-first within the victim policy's own
	// tiering. topo.FlatLocality forces the flat behavior for A/B runs;
	// topo.SplitLocality fakes a multi-node machine for tests and benches.
	Locality *topo.Locality

	// Tracer enables structured event tracing: every worker gets its own
	// drop-newest ring (safe under concurrent draining). Create it with
	// obs.NewTracer(obs.WithTicksPerMicro(1000)) — timestamps are wall
	// nanoseconds relative to Run's start. Nil disables tracing; the
	// disabled hot path is one nil comparison per event site.
	Tracer *obs.Tracer
	// Introspect records a per-quantum obs.EstimatorSnapshot into Tracer
	// (requires Tracer and an Estimator).
	Introspect bool
	// Metrics registers the runtime's live counters and gauges (steals,
	// failed probes, tasks, allotment size, parked waiters, wakeups,
	// per-worker useful/search/idle time) on the registry; serve it with
	// obs.Serve. Nil disables registration.
	Metrics *obs.Registry
	// MetricLabels are appended to every metric series this runtime
	// registers. Serving layers that put several resident runtimes on one
	// shared registry (one per tenant pool) use them to keep the series
	// distinct; empty is fine for a single runtime.
	MetricLabels []obs.Label

	// OnQuantum, when set, is invoked by the estimation helper after every
	// quantum's grant with that quantum's digest. It runs on the helper
	// goroutine and must be fast and non-blocking.
	OnQuantum func(QuantumInfo)
	// SubmitQueueCap bounds the persistent-mode submission backlog (default
	// 64): the aggregate number of submitted-but-unstarted job roots across
	// all per-worker injection shards. Irrelevant for batch Run.
	SubmitQueueCap int

	// Events, when set, streams scheduler events onto the hub: a
	// background pump drains the obs rings every few milliseconds and
	// republishes selected kinds as stream.KindSched events. Workers keep
	// their allocation-free ring emission; a nil hub leaves every hot path
	// exactly as before. If Tracer is nil the runtime creates a private
	// one (modest 4K rings) to feed the pump; if a Tracer is supplied the
	// pump takes over its ring consumption — do not also call
	// Tracer.Drain for trace export on the same run.
	Events *stream.Hub
	// EventLabel is stamped into Event.Pool on pumped events (the serving
	// layer sets it to the pool name).
	EventLabel string
	// EventKinds selects which obs ring kinds the pump forwards (default
	// stream.DefaultPumpKinds: grant, retire, park).
	EventKinds []obs.Kind
}

// WorkerReport is one worker's accounting, in nanoseconds where the
// simulator reports cycles.
type WorkerReport struct {
	// UsefulNS is time spent executing task bodies. Nested task execution
	// (Sync inlining, leapfrog steals) is attributed to exactly one task,
	// so UsefulNS + SearchNS + IdleNS never exceeds the worker's wall time.
	UsefulNS int64
	// SearchNS is time actively spent looking for work: steal probes and
	// the bounded pre-park spin. Parked time is not search time — that
	// split is what lets the estimators see true wasted effort.
	SearchNS int64
	// IdleNS is time spent blocked in the event-driven park (no work
	// anywhere, waiting for a wakeup). The estimation helper charges it to
	// WastedCycles together with SearchNS, preserving ASTEAL's view.
	IdleNS int64
	// Tasks, Steals, FailedProbes count events.
	Tasks, Steals, FailedProbes int64
	// ShardSteals counts injected job roots this worker pulled from a
	// sibling's injection shard (its own shard's drains are not steals).
	ShardSteals int64
	// LocalSteals and RemoteSteals split this worker's successful steals
	// (deque and shard alike, so LocalSteals+RemoteSteals ==
	// Steals+ShardSteals) by the runtime's locality map: a steal from a
	// victim on the same physical node is local. Under a flat locality
	// every steal is local — the split only says something on (real or
	// synthetic) multi-node maps.
	LocalSteals, RemoteSteals int64
}

// Report is a run's outcome.
type Report struct {
	// WallNS is the root task's wall-clock time in nanoseconds.
	WallNS int64
	// Workers maps cores to per-worker reports.
	Workers map[topo.CoreID]*WorkerReport
	// Timeline is the allotment size over time (nanoseconds).
	Timeline *trace.Timeline
	// Decisions logs the estimator's quanta.
	Decisions *trace.Log
	// MaxWorkers is the peak allotment size.
	MaxWorkers int
}

// Runtime is a work-stealing runtime with two mutually exclusive modes:
//
//   - batch: New, then Run exactly once — workers come up, execute the
//     root to completion, and tear down (a second Run returns
//     ErrAlreadyUsed);
//   - persistent: New, then Start — workers stay resident, the estimation
//     helper keeps ticking even while idle (so the allotment shrinks in
//     valleys and regrows on load), and a continuous stream of job roots
//     enters through Submit until Shutdown.
type Runtime struct {
	cfg  Config
	mesh *topo.Mesh
	mgr  *sysched.Manager
	ctrl *core.Controller

	workers map[topo.CoreID]*worker
	// workerList is the same set in core-id order, for lock-free iteration
	// on paths that want a stable order (shard scans, the shutdown flush,
	// the seal barrier — lock order matters there).
	workerList []*worker
	// byID is a dense CoreID -> worker index for the hot paths (steal
	// probes, shard scans): a slice load is ~3x cheaper than a map lookup
	// and showed up at ~8% of CPU in the submit-throughput profile.
	// Entries for reserved cores are nil.
	byID   []*worker
	policy atomic.Value // *policyBundle over the resident set

	// loc is the physical locality map over the mesh cores (never nil;
	// flat when the machine is single-node or undetectable) and cpuNode
	// the physical cpu -> node table behind the submit-path bias (nil on
	// flat maps — the bias is then skipped without a getcpu call). Both
	// are read-only after New.
	loc     *topo.Locality
	cpuNode []int

	// policyMu serializes rebuildPolicy: the helper rebuilds on allotment
	// changes and retiring workers rebuild to purge themselves from the
	// wake graph, so unordered stores could publish a bundle built from a
	// stale resident set over a fresher one.
	policyMu sync.Mutex
	// grantedA is the freshest granted allotment. Only the helper stores
	// it (after Grant, before rebuilding), but retiring workers load it,
	// so it cannot be read from mgr.Current directly.
	grantedA atomic.Pointer[topo.Allotment]

	// idle-path state: idleWaiters counts announced waiters (the fast-path
	// gate of every wake probe), parks and wakeups feed the live metrics.
	idleWaiters atomic.Int64
	parks       atomic.Int64
	wakeups     atomic.Int64

	rootDone chan struct{}
	started  atomic.Bool
	finished atomic.Bool

	// persistent-mode state: job roots enter through per-worker injection
	// shards (worker.shard) instead of one global funnel; closed flips once
	// at Shutdown.
	//
	// SubmitQueueCap is enforced by a striped reservation ledger instead
	// of one aggregate counter. Every unit of the cap lives in exactly one
	// of three places at any instant: the global slack pool (capFree), a
	// shard's cached credit cell (shard.CreditBalance), or an outstanding
	// reservation backing a queued job. Producers claim units through a
	// bounded ladder (reserveUpTo: shard-local credit, then a batched
	// refill from capFree, then scavenging sibling credit caches) and every
	// transfer removes from the source before adding to the destination, so
	// the sum of all three never exceeds the cap — SubmitQueueCap stays a
	// provable cross-shard bound while producers on different shards stop
	// sharing a cache line. Consumers release a unit for every shard pop
	// (releaseSlot), tying release 1:1 to a successful Pop: the ring
	// hands each element to exactly one popper, so double-release is
	// structurally impossible no matter how rescue scans and the shutdown
	// flush interleave. Every shard's ring is at least SubmitQueueCap deep,
	// so a push after a successful reservation cannot fail; the scan
	// fallback in pushAny is belt-and-braces.
	//
	// The per-worker seal locks (worker.seal) compose the closed check
	// with the shard push: Submit holds its picked shard's read side
	// across both, Shutdown flips closed and then takes every write side
	// once (the seal barrier), so by the time Shutdown's post-quiesce
	// flush runs, every Submit that returned nil has finished publishing
	// into its shard and every later Submit observes ErrClosed — no job
	// can land in a shard after the flush and be silently lost. Splitting
	// the old global sealMu per worker removes the last producer-shared
	// cache line from the submit fast path.
	persistent bool
	closed     atomic.Bool
	stopHelper chan struct{}
	helperDone chan struct{}

	// capFree is the global slack pool of the striped ledger: cap units
	// not cached on any shard and not backing a queued job. Padded so the
	// refill/overflow traffic cannot false-share with the read-mostly
	// fields around it.
	_       [64]byte
	capFree atomic.Int64
	_       [56]byte
	// creditCap bounds how much credit a release parks on one shard
	// before overflowing to capFree (read-only after New): low enough
	// that credit cannot strand on cold shards and starve producers, high
	// enough that a loaded shard refills rarely.
	creditCap int64

	timeline  trace.Timeline
	decisions trace.Log
	tlMu      sync.Mutex
	startNS   int64

	// helperRing carries the helper goroutine's grant/quantum events;
	// allotSize and quanta back the live metrics gauges.
	helperRing *obs.Ring
	// pump republishes ring events on cfg.Events (nil without a hub).
	pump      *stream.Pump
	allotSize atomic.Int64
	quanta    atomic.Int64

	// qseq is the estimation-quantum sequence number. Workers reset their
	// µ(Q) high-water mark lazily on the first spawn of each quantum
	// (noteSpawn) rather than the helper zeroing it: on an oversubscribed
	// host a worker may get no CPU at all between two quantum boundaries,
	// and a zeroed mark would then misreport "no parallelism here" when
	// the truth is "the OS scheduler didn't run me". The lazy reset makes
	// the helper sample each worker's most recent active window instead.
	qseq atomic.Int64

	wg sync.WaitGroup
}

// New builds a runtime. Workers are created for every usable core of the
// mesh but only the initial allotment is active; the rest are parked until
// the estimator grows into them.
func New(cfg Config) (*Runtime, error) {
	if cfg.Mesh == nil {
		n := runtime.GOMAXPROCS(0)
		if n < 2 {
			n = 2
		}
		m, err := topo.NewMesh(n)
		if err != nil {
			return nil, err
		}
		cfg.Mesh = m
	}
	if cfg.Source == 0 && cfg.Mesh.Reserved(0) {
		for id := topo.CoreID(0); int(id) < cfg.Mesh.NumCores(); id++ {
			if !cfg.Mesh.Reserved(id) {
				cfg.Source = id
				break
			}
		}
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 1024
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 2 * time.Millisecond
	}
	if cfg.InitialDiaspora == 0 {
		cfg.InitialDiaspora = 1
	}
	// Clamp to the topology: InitialDiaspora beyond the mesh means "start
	// with every usable core".
	if max := cfg.Mesh.MaxDiaspora(cfg.Source); cfg.InitialDiaspora > max && max >= 1 {
		cfg.InitialDiaspora = max
	}
	if cfg.Policy == "" {
		cfg.Policy = "dvs"
	}
	if cfg.SubmitQueueCap <= 0 {
		cfg.SubmitQueueCap = 64
	}
	if cfg.Events != nil && cfg.Tracer == nil {
		// The stream pump sources from obs rings; give it private,
		// modestly-sized ones when the caller didn't ask for tracing.
		cfg.Tracer = obs.NewTracer(obs.WithRingCap(4096), obs.WithTicksPerMicro(1000))
	}
	opts := []sysched.Option{sysched.WithInitialDiaspora(cfg.InitialDiaspora)}
	if cfg.MaxDiaspora > 0 {
		opts = append(opts, sysched.WithMaxDiaspora(cfg.MaxDiaspora))
	}
	mgr, err := sysched.NewManager(cfg.Mesh, cfg.Source, opts...)
	if err != nil {
		return nil, err
	}
	r := &Runtime{
		cfg:      cfg,
		mesh:     cfg.Mesh,
		mgr:      mgr,
		workers:  make(map[topo.CoreID]*worker),
		rootDone: make(chan struct{}),
	}
	if cfg.Estimator != nil {
		r.ctrl = core.NewController(cfg.Estimator)
	}
	// Create a worker for every usable core; activate the initial set.
	for id := topo.CoreID(0); int(id) < r.mesh.NumCores(); id++ {
		if r.mesh.Reserved(id) {
			continue
		}
		w := newWorker(r, id)
		if cfg.Tracer != nil {
			w.ring = cfg.Tracer.NewRing(false)
			cfg.Tracer.SetWorkerName(int32(id), fmt.Sprintf("core %d", id))
		}
		r.workers[id] = w
		r.workerList = append(r.workerList, w)
	}
	r.byID = make([]*worker, r.mesh.NumCores())
	for _, w := range r.workerList {
		r.byID[w.id] = w
	}
	r.initLocality()
	// The whole cap starts in the global slack pool; shard credit caches
	// fill lazily as producers refill and consumers release. creditCap
	// splits the cap across the shards with headroom (half the even share,
	// floor 2): a release never strands more than creditCap units on an
	// idle shard, and scavenging visits every shard, so a producer fails
	// only when the cap is genuinely exhausted.
	r.capFree.Store(int64(cfg.SubmitQueueCap))
	r.creditCap = 2
	if n := int64(2 * len(r.workerList)); n > 0 {
		if c := int64(cfg.SubmitQueueCap) / n; c > r.creditCap {
			r.creditCap = c
		}
	}
	if cfg.Tracer != nil {
		r.helperRing = cfg.Tracer.NewRing(false)
	}
	r.allotSize.Store(int64(mgr.Current().Size()))
	r.grantedA.Store(mgr.Current())
	if cfg.Metrics != nil {
		r.registerMetrics(cfg.Metrics)
	}
	r.rebuildPolicy()
	return r, nil
}

// initLocality resolves the runtime's physical locality map: the explicit
// Config.Locality when given, otherwise the host's detected cpu -> node
// table (worker core i <-> physical CPU i — the mapping Pin enforces), or
// flat when the host is single-node, non-Linux, or undetectable. cpuNode
// is populated only for multi-node maps; its nil-ness is what keeps every
// locality hot path (including the submit-side getcpu) completely cold on
// flat machines.
func (r *Runtime) initLocality() {
	n := r.mesh.NumCores()
	if l := r.cfg.Locality; l != nil {
		r.loc = l
		if !l.Flat() {
			// Caller-supplied (possibly synthetic) map: route the
			// submitter's CPU through the mesh-core table (cpu i ~ core
			// i mod n), so tests and benches exercise the bias on any
			// host, including single-CPU ones.
			ncpu := runtime.NumCPU()
			if ncpu < n {
				ncpu = n
			}
			r.cpuNode = make([]int, ncpu)
			for i := range r.cpuNode {
				r.cpuNode[i] = l.Node(topo.CoreID(i % n))
			}
		}
		return
	}
	phys := physCPUNodes()
	if phys == nil {
		r.loc = topo.FlatLocality(n)
		return
	}
	nodeByCore := make([]int, n)
	for i := range nodeByCore {
		if i < len(phys) {
			nodeByCore[i] = phys[i]
		} // cores beyond the machine float; fold them into the first node
	}
	loc := topo.NewLocality(nodeByCore)
	if loc.Flat() {
		// Every core the mesh can reach sits on one node: flat behavior,
		// even though the machine as a whole has more nodes.
		r.loc = topo.FlatLocality(n)
		return
	}
	r.loc = loc
	r.cpuNode = make([]int, len(phys))
	for i := range phys {
		if i < n {
			r.cpuNode[i] = loc.Node(topo.CoreID(i))
			continue
		}
		// A CPU beyond the mesh: borrow the domain of any mesh core on
		// the same physical node, so a producer running there still
		// biases toward genuinely near shards.
		for j := 0; j < n; j++ {
			if phys[j] == phys[i] {
				r.cpuNode[i] = loc.Node(topo.CoreID(j))
				break
			}
		}
	}
}

// submitterNode maps the submitting goroutine's last-run CPU to a
// locality domain, 0 when unknown. Only called on multi-node maps (one
// getcpu vDSO-free syscall; flat runtimes never reach it).
func (r *Runtime) submitterNode() int {
	if cpu := currentCPU(); cpu >= 0 && cpu < len(r.cpuNode) {
		return r.cpuNode[cpu]
	}
	return 0
}

// Locality exposes the resolved physical locality map (never nil; flat
// when the machine offers no distinction).
func (r *Runtime) Locality() *topo.Locality { return r.loc }

// registerMetrics exposes the runtime's live state on reg. All values are
// sampled from atomics at scrape time; registration happens once here.
func (r *Runtime) registerMetrics(reg *obs.Registry) {
	sum := func(f func(*worker) *int64) func() float64 {
		return func() float64 {
			var t int64
			for _, w := range r.workers {
				t += atomic.LoadInt64(f(w))
			}
			return float64(t)
		}
	}
	base := r.cfg.MetricLabels
	reg.CounterFunc("palirria_steals_total", "Successful steals across all workers.",
		sum(func(w *worker) *int64 { return &w.stats.Steals }), base...)
	reg.CounterFunc("palirria_failed_probes_total", "Steal probes that found nothing stealable.",
		sum(func(w *worker) *int64 { return &w.stats.FailedProbes }), base...)
	reg.CounterFunc("palirria_tasks_total", "Tasks executed to completion.",
		sum(func(w *worker) *int64 { return &w.stats.Tasks }), base...)
	reg.CounterFunc("palirria_quanta_total", "Estimation quanta processed.",
		func() float64 { return float64(r.quanta.Load()) }, base...)
	reg.GaugeFunc("palirria_allotment_workers", "Current allotment size.",
		func() float64 { return float64(r.allotSize.Load()) }, base...)
	reg.GaugeFunc("palirria_idle_waiters", "Workers currently announced as idle waiters.",
		func() float64 { return float64(r.idleWaiters.Load()) }, base...)
	reg.CounterFunc("palirria_parks_total", "Times a worker blocked in the event-driven idle path.",
		func() float64 { return float64(r.parks.Load()) }, base...)
	reg.CounterFunc("palirria_wakeups_total", "Wake tokens delivered to announced idle workers.",
		func() float64 { return float64(r.wakeups.Load()) }, base...)
	reg.CounterFunc("palirria_injected_total", "Job roots accepted by Submit/SubmitBatch.",
		func() float64 { return float64(r.injectedTotal()) }, base...)
	reg.CounterFunc("palirria_shard_steals_total", "Injected job roots taken from a sibling's shard.",
		sum(func(w *worker) *int64 { return &w.stats.ShardSteals }), base...)
	reg.CounterFunc("palirria_steal_local_total", "Successful steals (deque and shard) from a victim on the thief's locality node; every steal on flat machines.",
		sum(func(w *worker) *int64 { return &w.stats.LocalSteals }), base...)
	reg.CounterFunc("palirria_steal_remote_total", "Successful steals (deque and shard) that crossed locality nodes; zero on flat machines.",
		sum(func(w *worker) *int64 { return &w.stats.RemoteSteals }), base...)
	reg.GaugeFunc("palirria_submit_backlog", "Submitted job roots not yet started, across all shards.",
		func() float64 { return float64(r.backlogTotal()) }, base...)
	reg.GaugeFunc("palirria_submit_slack", "Unreserved submission-backlog capacity (global pool plus per-shard credit caches).",
		func() float64 {
			t := float64(r.capFree.Load())
			for _, w := range r.workerList {
				t += float64(w.shard.CreditBalance())
			}
			return t
		}, base...)
	for id, w := range r.workers {
		w := w
		lbls := append(append([]obs.Label(nil), base...), obs.Label{Key: "core", Value: fmt.Sprint(id)})
		reg.GaugeFunc("palirria_worker_useful_ns", "Nanoseconds spent executing tasks.",
			func() float64 { return float64(atomic.LoadInt64(&w.stats.UsefulNS)) }, lbls...)
		reg.GaugeFunc("palirria_worker_search_ns", "Nanoseconds spent searching for work.",
			func() float64 { return float64(atomic.LoadInt64(&w.stats.SearchNS)) }, lbls...)
		reg.GaugeFunc("palirria_worker_idle_ns", "Nanoseconds spent parked waiting for work.",
			func() float64 { return float64(atomic.LoadInt64(&w.stats.IdleNS)) }, lbls...)
		reg.GaugeFunc("palirria_shard_depth", "Injected job roots waiting in this worker's shard.",
			func() float64 { return float64(w.shard.Len()) }, lbls...)
	}
}

// policyBundle pairs the victim policy over the resident set with its
// reverse steal graph: thieves[v] lists the workers that have v on their
// victim list. Producers use it to wake an idle thief after making work
// visible in v's deque. members is the granted set in Members() order —
// the shard-choice population for Submit, so injected jobs only target
// workers that are actually serving. All fields are immutable once the
// bundle is stored, so readers never take a lock.
type policyBundle struct {
	policy  dvs.Policy
	thieves map[topo.CoreID][]*worker
	members []*worker
	// loc is the runtime's locality map when it distinguishes nodes, nil
	// on flat runtimes — its nil-ness short-circuits every locality branch
	// (partitioned victim sweeps, submit-side node bias) back to the exact
	// pre-locality behavior.
	loc *topo.Locality
	// byNode groups members by locality domain (index = dense node id).
	// Non-nil only when loc is. Node groups can be empty: a grant may
	// occupy a single node of a multi-node machine.
	byNode [][]*worker
}

func (r *Runtime) loadPolicy() *policyBundle {
	b, _ := r.policy.Load().(*policyBundle)
	return b
}

// rebuildPolicy installs victim lists over the resident set (granted plus
// draining workers). It is called by the helper after every allotment
// change and by a draining worker when it retires, so stale wake-graph
// edges to retired workers are purged as soon as they stop stealing
// rather than lingering until the next grant. Callers race; the mutex
// serializes the stores and the granted allotment is loaded inside the
// critical section, so the last rebuild to run always reflects the
// freshest grant — a retirement rebuild can never resurrect a policy
// built from an allotment the helper has already replaced.
func (r *Runtime) rebuildPolicy() {
	r.policyMu.Lock()
	defer r.policyMu.Unlock()
	granted := r.grantedA.Load()
	var extra []topo.CoreID
	for id, w := range r.workers {
		if w.state.Load() == stateDraining && !granted.Contains(id) {
			extra = append(extra, id)
		}
	}
	resident := granted
	if len(extra) > 0 {
		cores := append(append([]topo.CoreID(nil), granted.Members()...), extra...)
		if a, err := topo.NewAllotmentFromCores(r.mesh, granted.Source(), cores); err == nil {
			resident = a
		}
	}
	var p dvs.Policy
	if r.cfg.Policy == "random" {
		p = dvs.NewRandom(resident, r.cfg.Seed)
	} else {
		p = dvs.New(topo.Classify(resident))
	}
	// Reverse the victim lists into a wake graph. The bundle is built
	// before it is published, so probing Victims here cannot race worker
	// calls (the random policy's per-worker streams are not shared until
	// the Store).
	thieves := make(map[topo.CoreID][]*worker, len(r.workers))
	for _, id := range resident.Members() {
		tw := r.workers[id]
		if tw == nil {
			continue
		}
		for _, v := range p.Victims(id) {
			thieves[v] = append(thieves[v], tw)
		}
	}
	// Shard-choice population: granted workers only. Draining extras keep
	// stealing but must not receive fresh injected jobs — they are on
	// their way out.
	members := make([]*worker, 0, granted.Size())
	for _, id := range granted.Members() {
		if w := r.workers[id]; w != nil {
			members = append(members, w)
		}
	}
	b := &policyBundle{policy: p, thieves: thieves, members: members}
	if !r.loc.Flat() {
		b.loc = r.loc
		b.byNode = make([][]*worker, r.loc.NumNodes())
		for _, w := range members {
			n := r.loc.Node(w.id)
			b.byNode[n] = append(b.byNode[n], w)
		}
	}
	r.policy.Store(b)
}

// Run executes root to completion and returns the report. Run is the
// batch mode of the runtime and is single-use: a second Run (or a Run
// after Start) returns ErrAlreadyUsed.
func (r *Runtime) Run(root Func) (*Report, error) {
	if !r.started.CompareAndSwap(false, true) {
		return nil, ErrAlreadyUsed
	}
	r.launch(false)
	// Seed the root task on the source worker.
	rootTask := &rtTask{fn: root, onDone: func() {
		r.finished.Store(true)
		close(r.rootDone)
	}}
	r.workers[r.cfg.Source].inject(rootTask)

	<-r.rootDone
	wall := nowNS() - r.startNS
	r.teardown()
	return r.buildReport(wall), nil
}

// Start brings the runtime up in persistent mode: every worker goroutine
// is launched (non-granted ones park) and the estimation helper begins
// ticking, but no root is seeded — jobs arrive through Submit and the
// runtime stays resident until Shutdown. While idle the estimator's
// desire decays and the allotment shrinks toward the minimal zone; bursts
// of submitted work grow it back. Like Run, Start is single-use.
func (r *Runtime) Start() error {
	if !r.started.CompareAndSwap(false, true) {
		return ErrAlreadyUsed
	}
	r.launch(true)
	return nil
}

// Submit enqueues fn as a new job root; an idle active worker picks it up
// (the paper's serving scenario: independent requests entering a resident
// allotment). onDone, if non-nil, fires after the job and all of its
// spawns complete. Submit never blocks: when the bounded submission
// backlog (SubmitQueueCap, aggregated across all injection shards) is
// saturated it returns ErrSubmitQueueFull and the caller applies its own
// backpressure policy.
//
// The job lands in one granted worker's injection shard, chosen by a
// per-producer round-robin cursor with power-of-two-choices on shard
// depth, and the wakeup targets that shard's owner — producers on
// different cores touch different shards instead of contending on one
// global funnel.
//
// Submit is safe to call concurrently with Shutdown: the closed check and
// the shard push are composed under the picked shard's seal lock, so a
// Submit either returns ErrClosed or its job is observed by Shutdown's
// flush — a nil return always means onDone will fire exactly once, either
// because the job ran or because the shutdown flush discarded it.
func (r *Runtime) Submit(fn Func, onDone func()) error {
	return r.SubmitJob(Job{Fn: fn, OnDone: onDone})
}

// SubmitJob is Submit with the full Job record: in addition to OnDone it
// honours OnTerminal, which fires exactly once after OnDone with the
// job's terminal disposition — ran=true when the root executed, ran=false
// when the shutdown flush discarded it unrun. The serving layer's DAG
// dependency ledger releases successor nodes from this hook.
func (r *Runtime) SubmitJob(j Job) error {
	if !r.persistent {
		return ErrNotPersistent
	}
	w := r.pickShard(r.loadPolicy())
	w.seal.RLock()
	if r.closed.Load() {
		w.seal.RUnlock()
		return ErrClosed
	}
	if r.reserveUpTo(w, 1) == 0 {
		w.seal.RUnlock()
		return ErrSubmitQueueFull
	}
	t := &rtTask{fn: j.Fn, onDone: j.OnDone, onTerm: j.OnTerminal}
	target := w
	if !w.shard.Push(t) {
		// Cannot happen by construction (every ring is at least
		// SubmitQueueCap deep and a reservation was claimed), but a scan
		// beats a lost job if the sizing invariant is ever broken.
		if target = r.pushAny(t); target == nil {
			w.shard.Refund(1)
			w.seal.RUnlock()
			return ErrSubmitQueueFull
		}
	}
	w.seal.RUnlock()
	r.wakeForInject(target)
	return nil
}

// Job is one SubmitBatch entry: a job root plus its completion callback,
// with exactly Submit's semantics per entry.
type Job struct {
	// Fn is the job root.
	Fn Func
	// OnDone, if non-nil, fires exactly once after the job and all of its
	// spawns complete (or when the shutdown flush discards the job).
	OnDone func()
	// OnTerminal, if non-nil, fires exactly once after OnDone with the
	// job's disposition: ran=true when the root executed to completion,
	// ran=false when the shutdown flush discarded it unrun.
	OnTerminal func(ran bool)
}

// submitBatchChunk is how many jobs one SubmitBatch iteration reserves
// and publishes against a single shard: large enough to amortize the
// reservation ladder to roughly one walk per eight jobs, small enough
// that a burst still spreads over several shards for parallel pickup.
const submitBatchChunk = 8

// SubmitBatch enqueues several job roots, reserving backlog capacity once
// per chunk per shard (instead of one reservation per job) and coalescing
// wakeups to at most one per touched shard — the amortization that makes
// wave-shaped open-loop load (cmd/palirria-load) cheap. Acceptance is a
// prefix: the first n jobs were enqueued and carry Submit's exactly-once
// onDone guarantee; jobs[n:] were not touched. err is nil when every job
// was accepted, ErrClosed after Shutdown, or ErrSubmitQueueFull when the
// aggregate backlog bound filled mid-batch. Because the batch publishes
// chunk by chunk, a Shutdown racing the batch can seal it mid-way:
// ErrClosed, like ErrSubmitQueueFull, may be returned with n > 0 and the
// accepted prefix is then on the books (their onDone fire via the
// shutdown flush).
func (r *Runtime) SubmitBatch(jobs []Job) (n int, err error) {
	if !r.persistent {
		return 0, ErrNotPersistent
	}
	if len(jobs) == 0 {
		return 0, nil
	}
	b := r.loadPolicy()
	var touchedBuf [8]*worker
	touched := touchedBuf[:0]
	for n < len(jobs) && err == nil {
		w := r.pickShard(b)
		w.seal.RLock()
		if r.closed.Load() {
			w.seal.RUnlock()
			err = ErrClosed
			break
		}
		want := int64(len(jobs) - n)
		if want > submitBatchChunk {
			want = submitBatchChunk
		}
		got := int(r.reserveUpTo(w, want))
		if got == 0 {
			w.seal.RUnlock()
			err = ErrSubmitQueueFull
			break
		}
		for i := 0; i < got; i++ {
			t := &rtTask{fn: jobs[n].Fn, onDone: jobs[n].OnDone, onTerm: jobs[n].OnTerminal}
			pw := w
			if !w.shard.Push(t) {
				// Cannot happen by construction; see Submit.
				if pw = r.pushAny(t); pw == nil {
					w.shard.Refund(int64(got - i))
					err = ErrSubmitQueueFull
					break
				}
			}
			n++
			touched = addTouched(touched, pw)
		}
		w.seal.RUnlock()
	}
	for _, tw := range touched {
		r.wakeForInject(tw)
	}
	return n, err
}

// addTouched appends w to the wake-dedup list unless already present.
func addTouched(ws []*worker, w *worker) []*worker {
	for _, o := range ws {
		if o == w {
			return ws
		}
	}
	return append(ws, w)
}

// Reservation-ladder tuning.
const (
	// reserveRetries bounds the CAS attempts against the global slack
	// pool. A producer racing 63 others at the cap boundary loses at most
	// this many races before degrading to a single wait-free claim and,
	// failing that, to ErrSubmitQueueFull — the submit path cannot
	// livelock (TestSubmitNoLivelockAtCap).
	reserveRetries = 4
	// creditBatch is the extra slack a refill pulls beyond the immediate
	// need, caching it on the producer's shard so subsequent Submits
	// reserve locally without touching the global pool.
	creditBatch = 8
)

// reserveUpTo claims up to want backlog units for pushes into w's shard,
// returning how many were claimed (0 when the cap is saturated). The
// ladder: the shard's own credit cache (one CAS on an uncontended line),
// a batched refill from the global slack pool, then scavenging credit
// cached on sibling shards (one CAS attempt each). Every rung is bounded
// and every transfer removes from its source before adding anywhere, so
// the cap bound holds at every instant and a producer can never spin
// unboundedly. In the absence of concurrent producers the ladder is
// exhaustive — it finds every free unit in the system — which keeps
// SubmitQueueCap an exact capacity, not merely an upper bound.
func (r *Runtime) reserveUpTo(w *worker, want int64) int64 {
	got := w.shard.TryReserve(want)
	if got == want {
		return got
	}
	got += r.refillReserve(w, want-got)
	if got == want {
		return got
	}
	got += r.scavengeReserve(w, want-got)
	return got
}

// refillReserve claims up to need units from the global slack pool,
// pulling a bounded batch of extra credit onto w's shard while it is
// there. The CAS loop is bounded; past it, one wait-free Add claims a
// single unit or undoes itself.
func (r *Runtime) refillReserve(w *worker, need int64) int64 {
	for try := 0; try < reserveRetries; try++ {
		free := r.capFree.Load()
		if free <= 0 {
			return 0
		}
		take := need
		if extra := free / 2; extra > 0 {
			if extra > creditBatch {
				extra = creditBatch
			}
			take += extra
		}
		if take > free {
			take = free
		}
		if r.capFree.CompareAndSwap(free, free-take) {
			if take > need {
				w.shard.Refund(take - need)
				return need
			}
			return take
		}
	}
	// Contended past the retry bound: claim one unit wait-free. A
	// negative result means the pool was empty; undo and give up — the
	// caller falls through to scavenging, then to ErrSubmitQueueFull.
	if r.capFree.Add(-1) >= 0 {
		return 1
	}
	r.capFree.Add(1)
	return 0
}

// scavengeReserve pulls credit cached on sibling shards, one bounded
// attempt per shard, refunding any excess to w's shard.
func (r *Runtime) scavengeReserve(w *worker, need int64) int64 {
	var got int64
	for _, v := range r.workerList {
		if v == w {
			continue
		}
		if c := v.shard.StealCredit(); c > 0 {
			got += c
			if got >= need {
				break
			}
		}
	}
	if got > need {
		w.shard.Refund(got - need)
		return need
	}
	return got
}

// releaseSlot returns one reservation unit after a successful pop from
// shard s. Release is tied 1:1 to Pop — the ring hands each element to
// exactly one popper — so no interleaving of owner drains, sibling
// rescues, and the shutdown flush can release a unit twice (the old
// aggregate counter relied on every pop site pairing its decrement
// correctly; here the pairing is structural). The unit lands on the
// popped shard's credit cache unless that cache is already rich, in
// which case it overflows to the global pool so cold shards cannot hoard
// the cap.
func (r *Runtime) releaseSlot(s *deque.Shard[rtTask]) {
	if s.CreditBalance() >= r.creditCap {
		r.capFree.Add(1)
		return
	}
	s.Refund(1)
}

// pickShard chooses the injection shard for one job: two candidates over
// the granted members — node-local ones first on a multi-node locality
// map — keeping the shallower (power-of-two-choices). rand/v2 draws from
// a per-P generator, so producers share no cursor state at all — the old
// sync.Pool round-robin cursor cost a pool round-trip per Submit and was
// the second-largest submit-path serialization after the aggregate
// counter.
//
// Bounded staleness of the depth comparison: Shard.Len is racy-but-recent
// — each load is a linearizable read of the ring's enq-deq counters, so
// by the time the push lands the depths may have moved by whatever pushes
// and pops overlapped this Submit, and the "shallower" pick is only
// statistically shallower, not instantaneously so. That is the contract
// p2c needs: correctness never depends on depth (capacity is enforced by
// the reservation ledger, and a push after a successful reservation
// cannot fail), depth only steers placement, and steering only requires
// the comparison to be right on average (TestPickShardPrefersShallower
// pins that; the adversarial interleavings belong to the cap-invariant
// property test).
func (r *Runtime) pickShard(b *policyBundle) *worker {
	var ms []*worker
	if b != nil {
		ms = b.members
	}
	if len(ms) == 0 {
		ms = r.workerList // pre-first-rebuild or degenerate grant
	}
	if len(ms) == 1 {
		return ms[0]
	}
	if b != nil && b.byNode != nil {
		// Multi-node: bias both p2c candidates toward the submitter's
		// last-run node, so a job's first touch of its closure happens on
		// the memory it was built on. The depth comparison still breaks
		// ties — a flooded local node sheds to the shallower remote
		// candidate rather than queueing behind locality.
		if local := b.byNode[r.submitterNode()]; len(local) >= 2 {
			return pickP2C(local, local)
		} else if len(local) == 1 {
			// One local member: race it against a global candidate so a
			// lone shard cannot absorb a whole node's submit stream.
			return pickP2C(local, ms)
		}
		// No member on the submitter's node: global p2c below.
	}
	return pickP2C(ms, ms)
}

// pickP2C draws one 64-bit word and takes one uniform candidate from each
// slice (power-of-two-choices), keeping the shallower shard. Indices come
// from Lemire's multiply-shift reduction of each 32-bit half — exact
// uniformity for any slice length, where the old modulo reduction skewed
// low indices on non-power-of-two member counts (the skew scales with
// n/2^32, invisible at small n but a standing thumb on the scale against
// the depth signal). Both slices must be non-empty; a duplicate pair is
// harmless.
func pickP2C(primary, alt []*worker) *worker {
	seq := rand.Uint64()
	w := primary[uint32((uint64(uint32(seq))*uint64(len(primary)))>>32)]
	if a := alt[uint32(((seq>>32)*uint64(len(alt)))>>32)]; a.shard.Len() < w.shard.Len() {
		w = a
	}
	return w
}

// pushAny publishes t into the first shard with room: the current
// bundle's granted members first (in grant order), every other worker —
// revoked or never-granted — only after. A revoked worker's shard is a
// valid overflow target of last resort (its jobs are still rescued via
// takeSibling's full scan), but landing there means waiting for a rescue
// sweep instead of the owner's next loop, so it must not shadow a granted
// shard with room (TestPushAnyPrefersGrantedMembers).
func (r *Runtime) pushAny(t *rtTask) *worker {
	var ms []*worker
	if b := r.loadPolicy(); b != nil {
		ms = b.members
	}
	for _, w := range ms {
		if w.shard.Push(t) {
			return w
		}
	}
	for _, w := range r.workerList {
		if isMember(ms, w) {
			continue
		}
		if w.shard.Push(t) {
			return w
		}
	}
	return nil
}

// isMember reports whether w is in ms (member lists are a handful of
// entries; a linear scan beats any map on this path).
func isMember(ms []*worker, w *worker) bool {
	for _, m := range ms {
		if m == w {
			return true
		}
	}
	return false
}

// Shutdown stops a persistent runtime: the helper and all workers exit,
// and the final report (timeline, decisions, per-worker accounting) is
// returned. Jobs still waiting in the injection shards are discarded
// without running — callers wanting a graceful drain must wait for their
// in-flight jobs before calling Shutdown — but their onDone callbacks
// still fire so no waiter is leaked.
func (r *Runtime) Shutdown() (*Report, error) {
	if !r.persistent {
		return nil, ErrNotPersistent
	}
	if !r.closed.CompareAndSwap(false, true) {
		return nil, ErrClosed
	}
	// Seal barrier: every Submit holds its picked shard's seal read lock
	// from the closed check through the publish (including a pushAny
	// redirect into any other shard), so holding every write lock once
	// waits out all in-flight producers, and producers that arrive later
	// observe closed first. After the barrier the submission path is
	// quiescent for good: every Submit that will ever return nil has
	// finished publishing into its shard.
	r.sealAll()
	r.unsealAll()
	r.finished.Store(true)
	r.teardown()
	// Wall clock is captured after quiesce: workers keep accruing IdleNS
	// until their stop token lands, so a wall captured before teardown
	// could be exceeded by a worker's UsefulNS+SearchNS+IdleNS sum,
	// breaking the accounting partition the report promises.
	wall := nowNS() - r.startNS
	// Flush submissions that no worker will ever pick up — every shard,
	// not just the one the last submitter touched. Workers exited in
	// teardown and the path is sealed, so this drain observes every job
	// ever admitted and still unrun. Each pop releases its reservation
	// like any consumer pop would, so the ledger balances afterwards
	// (VerifySubmitLedger).
	for _, w := range r.workerList {
		for {
			t, ok := w.shard.Pop()
			if !ok {
				break
			}
			r.releaseSlot(w.shard)
			if t.onDone != nil {
				t.onDone()
			}
			if t.onTerm != nil {
				t.onTerm(false)
			}
		}
	}
	return r.buildReport(wall), nil
}

// sealAll acquires every worker's seal write lock in workerList order —
// the single seal lock order in the package. Shutdown's barrier and the
// cap-invariant test sampler both go through here, so they cannot
// deadlock against each other.
func (r *Runtime) sealAll() {
	for _, w := range r.workerList {
		w.seal.Lock()
	}
}

// unsealAll releases the locks sealAll took.
func (r *Runtime) unsealAll() {
	for _, w := range r.workerList {
		w.seal.Unlock()
	}
}

// backlogTotal is the submitted-but-unstarted job count: the sum of
// shard depths. Each term is a racy-but-recent snapshot that is
// individually non-negative, so the palirria_submit_backlog gauge is
// structurally incapable of going negative — a property the old
// aggregate counter kept only as long as every pop site paired its
// decrement exactly once.
func (r *Runtime) backlogTotal() int64 {
	var t int64
	for _, w := range r.workerList {
		t += int64(w.shard.Len())
	}
	return t
}

// injectedTotal counts job roots ever accepted by Submit/SubmitBatch:
// the sum of per-shard enqueue tickets (every accepted job is pushed into
// exactly one shard, exactly once).
func (r *Runtime) injectedTotal() int64 {
	var t int64
	for _, w := range r.workerList {
		t += int64(w.shard.Pushes())
	}
	return t
}

// VerifySubmitLedger audits the striped reservation ledger of a shut-down
// persistent runtime: the shards must be empty (the flush drained them)
// and every unit of SubmitQueueCap must be back in exactly one place —
// the global slack pool or a shard's credit cache. A non-nil error means
// a reservation leaked (capacity quietly shrank: eventual spurious
// ErrSubmitQueueFull) or was double-released (the cap bound went soft).
// The chaos harness calls this after every runtime scenario; it returns
// nil on batch-mode runtimes, which have no submission ledger.
func (r *Runtime) VerifySubmitLedger() error {
	if !r.persistent {
		return nil
	}
	if !r.closed.Load() {
		return errors.New("wsrt: submit-ledger audit requires a shut-down runtime")
	}
	free := r.capFree.Load()
	if free < 0 {
		return fmt.Errorf("wsrt: submit ledger: global slack pool is negative (%d)", free)
	}
	var credits, backlog int64
	for _, w := range r.workerList {
		c := w.shard.CreditBalance()
		if c < 0 {
			return fmt.Errorf("wsrt: submit ledger: shard %d credit is negative (%d)", w.id, c)
		}
		credits += c
		backlog += int64(w.shard.Len())
	}
	if backlog != 0 {
		return fmt.Errorf("wsrt: submit ledger: %d jobs still queued after the shutdown flush", backlog)
	}
	if limit := int64(r.cfg.SubmitQueueCap); free+credits != limit {
		return fmt.Errorf("wsrt: submit ledger unbalanced: free %d + shard credits %d != cap %d", free, credits, limit)
	}
	return nil
}

// launch starts every worker goroutine (granted ones active, the rest
// parked) and the estimation helper.
func (r *Runtime) launch(persistent bool) {
	r.persistent = persistent
	r.startNS = nowNS()
	granted := r.mgr.Current()
	r.recordTimeline(granted.Size())
	for _, w := range r.workers {
		w.pickup = persistent
		if granted.Contains(w.id) {
			w.state.Store(stateActive)
		} else {
			w.state.Store(stateParked)
		}
		r.wg.Add(1)
		go w.loop()
	}
	if r.cfg.Events != nil {
		r.pump = stream.NewPump(r.cfg.Events, r.cfg.Tracer, stream.PumpConfig{
			Label:  r.cfg.EventLabel,
			Kinds:  r.cfg.EventKinds,
			BaseNS: r.startNS,
		})
		r.pump.Start()
	}
	r.stopHelper = make(chan struct{})
	r.helperDone = make(chan struct{})
	if r.ctrl != nil {
		go func() {
			defer close(r.helperDone)
			r.helperLoop(r.stopHelper)
		}()
	} else {
		close(r.helperDone)
	}
}

// teardown stops the helper and every worker and waits for them.
func (r *Runtime) teardown() {
	if r.ctrl != nil {
		close(r.stopHelper)
	}
	<-r.helperDone
	for _, w := range r.workers {
		w.stop()
	}
	r.wg.Wait()
	if r.pump != nil {
		// Workers are quiescent: the pump's final drain flushes every
		// remaining ring event onto the hub before teardown returns.
		r.pump.Stop()
		r.pump = nil
	}
}

// buildReport assembles the final accounting after all workers stopped.
func (r *Runtime) buildReport(wall int64) *Report {
	rep := &Report{
		WallNS:    wall,
		Workers:   map[topo.CoreID]*WorkerReport{},
		Timeline:  &r.timeline,
		Decisions: &r.decisions,
	}
	r.tlMu.Lock()
	rep.MaxWorkers = r.timeline.Max()
	r.tlMu.Unlock()
	for id, w := range r.workers {
		if w.stats.Tasks == 0 && w.stats.FailedProbes == 0 {
			continue
		}
		ws := w.stats
		rep.Workers[id] = &ws
	}
	return rep
}

// AllotmentSize returns the current granted allotment size.
func (r *Runtime) AllotmentSize() int { return int(r.allotSize.Load()) }

// IdleStats reports the cumulative park and wakeup counts of the
// event-driven idle path (the same values metrics export as
// palirria_parks_total and palirria_wakeups_total).
func (r *Runtime) IdleStats() (parks, wakeups int64) {
	return r.parks.Load(), r.wakeups.Load()
}

// Capacity returns the largest allotment size currently grantable: the
// topology maximum clamped by any dynamic worker cap.
func (r *Runtime) Capacity() int { return r.mgr.EffectiveMaxWorkers() }

// SetMaxWorkers imposes (n > 0) or lifts (n <= 0) a dynamic worker-count
// cap on future grants — the hook the multiprogramming arbiter uses to
// redistribute cores between resident runtimes. Zone granularity applies;
// see sysched.Manager.SetWorkerCap.
func (r *Runtime) SetMaxWorkers(n int) { r.mgr.SetWorkerCap(n) }

func (r *Runtime) recordTimeline(workers int) {
	r.tlMu.Lock()
	defer r.tlMu.Unlock()
	t := nowNS() - r.startNS
	if t < 0 {
		t = 0
	}
	r.timeline.Record(t, workers)
}

// helperLoop is the system-level helper thread: it evaluates the estimator
// every quantum and applies allotment changes in the background.
func (r *Runtime) helperLoop(stop <-chan struct{}) {
	ticker := time.NewTicker(r.cfg.Quantum)
	defer ticker.Stop()
	lastWasted := map[topo.CoreID]int64{}
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if r.finished.Load() {
			return
		}
		granted := r.mgr.Current()
		class := topo.Classify(granted)
		snaps := make(map[topo.CoreID]*core.WorkerSnapshot, granted.Size())
		for _, id := range granted.Members() {
			w := r.workers[id]
			// Wasted effort is search plus parked time: the estimators'
			// WastedCycles semantics predate event-driven parking, and a
			// parked worker is exactly as wasted as a probing one — it just
			// no longer burns a core to prove it.
			total := atomic.LoadInt64(&w.stats.SearchNS) + atomic.LoadInt64(&w.stats.IdleNS)
			delta := total - lastWasted[id]
			lastWasted[id] = total
			snaps[id] = &core.WorkerSnapshot{
				ID:           id,
				QueueLen:     w.deque.Len(),
				MaxQueueLen:  int(w.hwm.Load()),
				Busy:         w.busy.Load(),
				WastedCycles: delta,
				Draining:     w.state.Load() == stateDraining,
			}
		}
		// The marks above belong to the window that just closed; open the
		// next one — workers reset their hwm on their first spawn under
		// the new sequence number.
		r.qseq.Add(1)
		snap := &core.Snapshot{
			Allotment:     granted,
			Class:         class,
			Workers:       snaps,
			QuantumCycles: int64(r.cfg.Quantum),
			Time:          nowNS() - r.startNS,
		}
		desired := r.ctrl.Step(snap)
		next, changed := r.mgr.Grant(desired)
		r.ctrl.Granted(next.Size())
		r.decisions.Add(trace.Decision{
			Time:      nowNS() - r.startNS,
			Estimator: r.ctrl.Est.Name(),
			Desired:   desired,
			Granted:   next.Size(),
		})
		r.quanta.Add(1)
		r.allotSize.Store(int64(next.Size()))
		if r.cfg.OnQuantum != nil {
			info := r.ctrl.Last()
			r.cfg.OnQuantum(QuantumInfo{
				Time:     nowNS() - r.startNS,
				Raw:      info.Raw,
				Filtered: info.Filtered,
				Granted:  next.Size(),
				Capacity: r.mgr.EffectiveMaxWorkers(),
			})
		}
		if r.helperRing != nil {
			ts := nowNS() - r.startNS
			r.helperRing.Emit(obs.Event{
				TS: ts, Kind: obs.KindQuantum,
				Worker: obs.NoWorker, Peer: obs.NoWorker, Arg: int64(desired),
			})
			// Every quantum, even unchanged: ring buffers keep only the
			// newest events, and the Chrome allotment counter track must
			// have samples inside whatever window survives.
			r.helperRing.Emit(obs.Event{
				TS: ts, Kind: obs.KindGrant,
				Worker: obs.NoWorker, Peer: obs.NoWorker, Arg: int64(next.Size()),
			})
			if r.cfg.Introspect {
				r.cfg.Tracer.RecordSnapshot(r.estimatorSnapshot(snap, granted.Size(), next.Size()))
			}
		}
		if !changed {
			continue
		}
		r.grantedA.Store(next)
		// Drain workers leaving the grant; activate workers entering it.
		for _, id := range granted.Members() {
			if !next.Contains(id) {
				w := r.workers[id]
				if w.state.CompareAndSwap(stateActive, stateDraining) {
					// A revoked worker may be blocked in idleWait; deliver a
					// token so it observes the drain now instead of at the
					// next unrelated wakeup.
					r.clearIdle(w)
					w.unpark()
				}
			}
		}
		for _, id := range next.Members() {
			w := r.workers[id]
			for {
				s := w.state.Load()
				if s == stateActive || s == stateStopped {
					break
				}
				if w.state.CompareAndSwap(s, stateActive) {
					w.unpark()
					break
				}
			}
		}
		r.rebuildPolicy()
		// Waiters may have parked against the old victim lists; wake them
		// all so they re-announce against the new ones (see wakeAllIdle).
		r.wakeAllIdle()
		r.recordTimeline(next.Size())
	}
}

// estimatorSnapshot builds the per-quantum introspection record: the
// controller's raw and filtered desire plus the estimator's annotated view
// when it implements core.Introspector.
func (r *Runtime) estimatorSnapshot(snap *core.Snapshot, prevSize, granted int) obs.EstimatorSnapshot {
	info := r.ctrl.Last()
	es := obs.EstimatorSnapshot{
		Time:           snap.Time,
		Estimator:      r.ctrl.Est.Name(),
		Allotment:      prevSize,
		Decision:       core.DecisionOf(prevSize, info.Raw).String(),
		RawDesire:      info.Raw,
		FilteredDesire: info.Filtered,
		Granted:        granted,
	}
	ip, ok := r.ctrl.Est.(core.Introspector)
	if !ok {
		return es
	}
	in := ip.Introspect(snap)
	es.Decision = in.Decision.String()
	es.Inputs = in.Inputs
	for _, iw := range in.Workers {
		es.Workers = append(es.Workers, obs.WorkerIntrospection{
			Worker:       int(iw.ID),
			Class:        iw.Class,
			QueueLen:     iw.QueueLen,
			MaxQueueLen:  iw.MaxQueueLen,
			ThresholdL:   iw.ThresholdL,
			Busy:         iw.Busy,
			Draining:     iw.Draining,
			WastedCycles: iw.WastedCycles,
		})
	}
	return es
}

// worker states.
const (
	stateParked int32 = iota
	stateActive
	stateDraining
	stateStopped
)

// worker is one work-stealing worker thread. Field layout is a deliberate
// padding audit: the owner-only hot section comes first, then a cache
// line of padding before the foreign-written flags (wakers CAS waiting,
// the helper flips state), then another before the producer-hammered seal
// lock — so a producer sealing a Submit or a waker delivering a token
// never invalidates the line the owner's inner loop is reading.
type worker struct {
	id    topo.CoreID
	rt    *Runtime
	deque *deque.ChaseLev[rtTask]
	// shard is the worker's external-injection queue: multi-producer
	// (Submit/SubmitBatch pick a shard per job), drained by the owner
	// first and by sibling thieves in DVS victim order. Sized at least
	// SubmitQueueCap so a push under a successful reservation never
	// fails.
	shard *deque.Shard[rtTask]
	parkC chan struct{}

	// pickup marks persistent-mode workers: when idle with nothing to
	// steal, they pull new job roots from the injection shards (their own
	// first, then siblings'). Written before the worker goroutine starts,
	// read only by it.
	pickup bool

	// hwmSeq is the quantum the hwm mark belongs to (owner-only — see
	// Runtime.qseq for the lazy reset protocol).
	hwmSeq int64
	// depth tracks runTask nesting (owner-only).
	depth int
	// victimBuf is the worker-owned scratch buffer VictimsInto fills, so
	// steal probes do zero heap allocations at steady state (owner-only).
	victimBuf []topo.CoreID
	// ctxFree recycles Ctx frames: runTask nests strictly, so a LIFO free
	// list bounds allocations by the deepest nesting seen (owner-only).
	ctxFree []*Ctx
	// excluded accumulates, within the innermost running task's window,
	// time that belongs to someone else: nested runTask spans and search
	// waits. runTask subtracts it so each nanosecond lands in exactly one
	// of UsefulNS / SearchNS / IdleNS (owner-only).
	excluded int64
	// spins counts consecutive failed sweeps toward the idleSpins budget
	// (owner-only).
	spins int
	// searchT0 is the start of the open search episode (0 = none) and
	// phaseTS the clock reading at the last phase boundary — the two
	// owner-only words behind the phase-boundary accounting that lets
	// back-to-back tasks pay a single clock read each (see runTask).
	searchT0 int64
	phaseTS  int64

	// ring records structured events when tracing is enabled (nil
	// otherwise). Only this worker's goroutine emits into it.
	ring *obs.Ring

	_ [64]byte // foreign-written flags below; owner-only loop state above

	state atomic.Int32
	// waiting is the worker's announced-idle flag: the prepare half of the
	// parking protocol (see idle.go). Set by the worker before it blocks,
	// CAS-consumed by exactly one waker (or the worker itself on wake).
	waiting atomic.Bool
	// hwm is the µ(Q) queue-length high-water mark of the worker's most
	// recent active quantum.
	hwm atomic.Int32
	// busy reports a task currently executing.
	busy atomic.Bool

	_ [52]byte // and the producer-side seal off the flags the owner writes

	// seal is this worker's stripe of the submission seal: producers hold
	// the read side across the closed check, the reservation, and the
	// shard push; Shutdown's barrier (and the cap-invariant test sampler)
	// write-locks every stripe in workerList order. Splitting the old
	// global sealMu per worker removes the last producer-shared cache
	// line from the submit fast path.
	seal sync.RWMutex

	_ [40]byte // and the owner-written stats off the seal's line

	stats WorkerReport
}

// noteSpawn folds a post-push queue length into the µ(Q) high-water mark,
// resetting it first when this is the worker's first spawn of the current
// estimation quantum (the lazy reset — see Runtime.qseq).
func (w *worker) noteSpawn(n int32) {
	if seq := w.rt.qseq.Load(); seq != w.hwmSeq {
		w.hwmSeq = seq
		w.hwm.Store(n)
		return
	}
	if n > w.hwm.Load() {
		w.hwm.Store(n)
	}
}

// addSearch charges dt nanoseconds of search time, excluding it from any
// enclosing task's useful window.
func (w *worker) addSearch(dt int64) {
	atomic.AddInt64(&w.stats.SearchNS, dt)
	w.excluded += dt
}

// openSearch starts a search episode anchored at the last phase boundary
// — the end of the last task or park — without reading the clock.
// Idempotent while an episode is open; runTask, idleWait, and parkBlocked
// close the episode with the single clock read they were doing anyway.
// Only the worker loop (depth 0) opens episodes; Sync's leapfrog stamps
// its probes explicitly because it runs inside a task window.
func (w *worker) openSearch() {
	if w.searchT0 == 0 {
		if w.phaseTS != 0 {
			w.searchT0 = w.phaseTS
		} else {
			w.searchT0 = nowNS()
		}
	}
}

// closeSearch ends an open search episode at now, charging it to
// SearchNS. No-op when no episode is open.
func (w *worker) closeSearch(now int64) {
	if w.searchT0 != 0 {
		w.addSearch(now - w.searchT0)
		w.searchT0 = 0
	}
}

// addIdle charges dt nanoseconds of parked time (always at depth 0).
func (w *worker) addIdle(dt int64) {
	atomic.AddInt64(&w.stats.IdleNS, dt)
	w.excluded += dt
}

// ctxGet pops a recycled Ctx or allocates the free list's first tenant.
func (w *worker) ctxGet() *Ctx {
	if n := len(w.ctxFree); n > 0 {
		c := w.ctxFree[n-1]
		w.ctxFree = w.ctxFree[:n-1]
		return c
	}
	return &Ctx{w: w}
}

// ctxPut returns a finished frame's Ctx to the free list.
func (w *worker) ctxPut(c *Ctx) {
	c.pending = c.pending[:0]
	w.ctxFree = append(w.ctxFree, c)
}

// emit records one structured event. The disabled path is a nil check.
func (w *worker) emit(k obs.Kind, peer int32, arg int64) {
	if w.ring == nil {
		return
	}
	w.ring.Emit(obs.Event{
		TS: nowNS() - w.rt.startNS, Kind: k,
		Worker: int32(w.id), Peer: peer, Arg: arg,
	})
}

func newWorker(r *Runtime, id topo.CoreID) *worker {
	return &worker{
		id:    id,
		rt:    r,
		deque: deque.MustChaseLev[rtTask](r.cfg.QueueCap),
		shard: deque.MustShard[rtTask](r.cfg.SubmitQueueCap),
		parkC: make(chan struct{}, 1),
	}
}

// inject places a task directly in the worker's deque from outside (used
// to seed the root).
func (w *worker) inject(t *rtTask) {
	for !w.deque.PushBottom(t) {
		runtime.Gosched()
	}
	w.unpark()
}

func (w *worker) unpark() {
	select {
	case w.parkC <- struct{}{}:
	default:
	}
}

func (w *worker) stop() {
	w.state.Store(stateStopped)
	w.rt.clearIdle(w)
	w.unpark()
}

// loop is the worker's main loop.
func (w *worker) loop() {
	defer w.rt.wg.Done()
	if w.rt.cfg.Pin {
		runtime.LockOSThread()
		setAffinity(int(w.id))
		defer runtime.UnlockOSThread()
	}
	for {
		switch w.state.Load() {
		case stateStopped:
			return
		case stateParked:
			// Outside the allotment: block until a grant or stop delivers
			// a token (no timeout — both wake paths store their reason
			// before unparking, so a wake is never missed).
			w.parkBlocked()
			continue
		}
		if w.rt.finished.Load() {
			return
		}
		// Own queue first.
		if t, ok := w.deque.PopBottom(); ok {
			w.runTask(t)
			w.spins = 0
			continue
		}
		if w.state.Load() == stateDraining {
			// Removed and drained: the deque is empty (the owner is the
			// only pusher and its pop just failed, so any last task was
			// taken by a thief who will run it) — park until revoked or
			// stopped. Rebuild the policy so the worker's wake-graph and
			// victim entries are purged now: without it, producers would
			// keep probing the retiree's empty deque and offering it wake
			// tokens until the next unrelated allotment change.
			if w.state.CompareAndSwap(stateDraining, stateParked) {
				w.emit(obs.KindRetire, obs.NoWorker, 0)
				w.rt.rebuildPolicy()
			}
			continue
		}
		// Persistent mode: drain the worker's own injection shard before
		// sweeping victims — it is the work Submit explicitly placed here
		// (the locality the p2c pick aimed for), and the hit path costs
		// one ring pop where a steal sweep walks the whole victim list.
		if w.pickup {
			if t, ok := w.shard.Pop(); ok {
				w.rt.releaseSlot(w.shard)
				// More behind it: pass the signal on before running (the
				// same wake chaining the steal path does).
				if w.shard.Len() > 0 {
					w.wakeOneThief()
				}
				w.runTask(t)
				w.spins = 0
				continue
			}
		}
		// Steal. Lookups from here on are search effort: open the episode
		// at the last phase boundary (no clock read — see openSearch).
		w.openSearch()
		if t := w.stealProbe(); t != nil {
			w.runTask(t)
			w.spins = 0
			continue
		}
		// Persistent mode: nothing to run and nothing to steal — take
		// over a submitted job root waiting in a sibling's shard.
		if w.pickup {
			if t := w.takeSibling(); t != nil {
				w.runTask(t)
				w.spins = 0
				continue
			}
		}
		// Bounded spin: a few yielding re-sweeps catch work that is just
		// about to appear, then the worker commits to the parking protocol
		// instead of burning a core on exponential sleep. The yields stay
		// inside the open search episode, so they need no clock reads of
		// their own.
		w.spins++
		if w.spins < idleSpins {
			runtime.Gosched()
			continue
		}
		w.spins = 0
		w.idleWait()
	}
}

// workerByID resolves a core id through the dense index (hot paths only).
// Nil for reserved cores.
func (r *Runtime) workerByID(id topo.CoreID) *worker {
	if int(id) >= len(r.byID) || int(id) < 0 {
		return nil
	}
	return r.byID[id]
}

// victimsFor materializes w's victim list into buf: plain policy order on
// flat runtimes, node-local victims first (policy order preserved within
// each group) on multi-node ones. The reorder is a stable partition of
// the same list, so DVS's tier structure — and therefore its
// task-discovery guarantee — survives intact; only the sweep order within
// the probe changes.
func (b *policyBundle) victimsFor(w *worker, buf []topo.CoreID) []topo.CoreID {
	if b.loc == nil {
		return b.policy.VictimsInto(w.id, buf)
	}
	out, _ := b.policy.VictimsIntoLocality(w.id, b.loc, buf)
	return out
}

// countSteal files a successful steal from victim v under the local or
// remote locality counter (on flat maps every steal is local).
func (w *worker) countSteal(v topo.CoreID) {
	if w.rt.loc.SameNode(w.id, v) {
		atomic.AddInt64(&w.stats.LocalSteals, 1)
	} else {
		atomic.AddInt64(&w.stats.RemoteSteals, 1)
	}
}

// stealProbe probes the victim list once, returning the stolen task or
// nil. The probe sequence is allocation-free: the victim list is
// materialized into the worker-owned victimBuf via victimsFor (guarded
// by TestStealProbeZeroAllocs), node-local victims swept before remote
// ones on multi-node machines. The caller owns the time accounting — the
// worker loop charges probes to its open search episode, Sync's leapfrog
// stamps them explicitly.
func (w *worker) stealProbe() *rtTask {
	b := w.rt.loadPolicy()
	if b == nil {
		return nil
	}
	w.victimBuf = b.victimsFor(w, w.victimBuf[:0])
	for _, v := range w.victimBuf {
		vw := w.rt.workerByID(v)
		if vw == nil {
			continue
		}
		if t, ok := vw.deque.StealTop(); ok {
			atomic.AddInt64(&w.stats.Steals, 1)
			w.countSteal(v)
			w.emit(obs.KindSteal, int32(v), 0)
			// Wake chaining: the victim still has work, so pass the signal
			// on to its next idle thief before running the stolen task.
			if vw.deque.Len() > 0 {
				vw.wakeOneThief()
			}
			return t
		}
		atomic.AddInt64(&w.stats.FailedProbes, 1)
		w.emit(obs.KindProbeFail, int32(v), 0)
	}
	return nil
}

// takeSibling pulls the next submitted job root from another worker's
// injection shard: victims in DVS order first (injected work inherits the
// same tidal-flow steal locality as spawned work), then every shard — the
// last resort that rescues jobs stranded in the shard of a worker revoked
// after the producer picked it. A depth check gates each pop, so the idle
// sweep costs two loads per sibling; every successful pop releases
// exactly one reservation against the shard it came from.
func (w *worker) takeSibling() *rtTask {
	r := w.rt
	if b := r.loadPolicy(); b != nil {
		w.victimBuf = b.victimsFor(w, w.victimBuf[:0])
		for _, v := range w.victimBuf {
			vw := r.workerByID(v)
			if vw == nil || vw == w || vw.shard.Len() == 0 {
				continue
			}
			if t, ok := vw.shard.Pop(); ok {
				r.releaseSlot(vw.shard)
				atomic.AddInt64(&w.stats.ShardSteals, 1)
				w.countSteal(v)
				if vw.shard.Len() > 0 {
					vw.wakeOneThief()
				}
				return t
			}
		}
	}
	for _, vw := range r.workerList {
		if vw == w || vw.shard.Len() == 0 {
			continue
		}
		if t, ok := vw.shard.Pop(); ok {
			r.releaseSlot(vw.shard)
			atomic.AddInt64(&w.stats.ShardSteals, 1)
			w.countSteal(vw.id)
			return t
		}
	}
	return nil
}

// runTask executes one task to completion (including its implicit joins).
// It nests: Sync pops and inlines unstolen children through runTask, so the
// busy flag follows a depth counter (owner-only writes).
func (w *worker) runTask(t *rtTask) {
	w.depth++
	w.busy.Store(true)
	// Phase-boundary timing: when this task follows a search episode, a
	// single clock read both closes the episode and opens the task
	// window; when it directly follows another task (back-to-back pops at
	// depth 0), the previous boundary timestamp is reused and the task
	// pays one clock read in total, at its end. The few nanoseconds of
	// queue bookkeeping between tasks land in UsefulNS — per-task runtime
	// overhead, not search. Nested frames (Sync inlining, leapfrog) have
	// no boundary to reuse and read the clock.
	var t0 int64
	switch {
	case w.searchT0 != 0:
		t0 = nowNS()
		w.closeSearch(t0)
	case w.depth == 1 && w.phaseTS != 0:
		t0 = w.phaseTS
	default:
		t0 = nowNS()
	}
	// Exclusive accounting: this frame's window starts with a clean
	// exclusion accumulator; nested runTask spans and search waits add to
	// it, and only the remainder is this task's own useful time.
	prevExcl := w.excluded
	w.excluded = 0
	ctx := w.ctxGet()
	t.fn(ctx)
	ctx.joinAll()
	w.ctxPut(ctx)
	t.done.Store(true)
	end := nowNS()
	w.phaseTS = end
	elapsed := end - t0
	if self := elapsed - w.excluded; self > 0 {
		atomic.AddInt64(&w.stats.UsefulNS, self)
	}
	atomic.AddInt64(&w.stats.Tasks, 1)
	w.emit(obs.KindTaskDone, obs.NoWorker, 0)
	// The whole window — own time included — is excluded from the
	// enclosing frame, which already counted nothing of it.
	w.excluded = prevExcl + elapsed
	w.depth--
	if w.depth == 0 {
		w.busy.Store(false)
		w.excluded = 0
	}
	if t.onDone != nil {
		t.onDone()
	}
	if t.onTerm != nil {
		t.onTerm(true)
	}
}
