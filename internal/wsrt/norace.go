//go:build !race

package wsrt

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
