package wsrt

import "time"

// clockBase anchors the runtime clock. All timestamps in this package are
// differences (wall spans, per-phase accounting, ring-event offsets from
// startNS), never absolute wall-clock instants, so nowNS reads the
// monotonic clock: time.Since on a monotonic base compiles down to one
// runtime nanotime call (~38ns on the bench box) where
// time.Now().UnixNano() pays for the full wall-clock read (~67ns) — and
// the monotonic reading is immune to wall-clock steps, which previously
// could produce negative task durations under NTP adjustment.
//
// nowNS sits on the hottest paths in the package: runTask charges one
// reading per executed task (plus one more when it closes a search
// episode), so the clock's cost is a first-order term in persistent-mode
// submit throughput.
var clockBase = time.Now()

func nowNS() int64 { return int64(time.Since(clockBase)) }
