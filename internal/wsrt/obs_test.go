package wsrt

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"palirria/internal/core"
	"palirria/internal/obs"
)

// fanRoot is a bursty workload long enough to span several quanta.
func fanRoot(c *Ctx) {
	var fan func(c *Ctx, n int)
	fan = func(c *Ctx, n int) {
		if n <= 1 {
			c.Compute(100_000)
			return
		}
		c.Spawn(func(cc *Ctx) { fan(cc, n/2) })
		fan(c, n-n/2)
		c.Sync()
	}
	for burst := 0; burst < 6; burst++ {
		c.Compute(500_000)
		fan(c, 64)
	}
}

// TestRuntimeTracerAndMetrics drives the real runtime with the full
// observability stack: structured tracing, estimator introspection, and
// the Prometheus registry, and cross-checks them against the run report.
func TestRuntimeTracerAndMetrics(t *testing.T) {
	tracer := obs.NewTracer(obs.WithTicksPerMicro(1000))
	reg := obs.NewRegistry()
	rt, err := New(Config{
		Mesh: smallMesh(t), Source: 0,
		Estimator: core.NewPalirria(),
		Quantum:   500 * time.Microsecond,
		Tracer:    tracer, Introspect: true, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(fanRoot)
	if err != nil {
		t.Fatal(err)
	}

	data := tracer.Drain()
	if data.TicksPerMicro != 1000 {
		t.Fatalf("TicksPerMicro = %v, want 1000", data.TicksPerMicro)
	}
	counts := data.Counts()
	for _, k := range []obs.Kind{obs.KindSpawn, obs.KindTaskDone, obs.KindQuantum} {
		if counts[k] == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	var totalSteals, totalTasks int64
	for _, wr := range rep.Workers {
		totalSteals += wr.Steals
		totalTasks += wr.Tasks
	}
	if totalSteals > 0 && counts[obs.KindSteal] == 0 {
		t.Error("report has steals but the trace recorded none")
	}
	// Rings drop under pressure, so the trace is a lower bound.
	if got := counts[obs.KindTaskDone] + data.Dropped; got < totalTasks {
		t.Errorf("done events (%d) + dropped (%d) < tasks run (%d)", counts[obs.KindTaskDone], data.Dropped, totalTasks)
	}
	if len(data.Snapshots) == 0 {
		t.Fatal("no estimator snapshots recorded")
	}
	for _, es := range data.Snapshots {
		if es.Estimator != "palirria" {
			t.Fatalf("estimator = %q", es.Estimator)
		}
		if es.Allotment <= 0 {
			t.Fatalf("bad snapshot %+v", es)
		}
	}

	var buf bytes.Buffer
	if err := data.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Fatal("chrome export missing traceEvents")
	}

	// Metrics: names present, values consistent with the report.
	var prom bytes.Buffer
	reg.WritePrometheus(&prom)
	out := prom.String()
	for _, name := range []string{
		"palirria_steals_total", "palirria_failed_probes_total",
		"palirria_tasks_total", "palirria_quanta_total",
		"palirria_allotment_workers",
		"palirria_worker_useful_ns", "palirria_worker_search_ns",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics output missing %s:\n%s", name, out)
		}
	}
	if want := fmt.Sprintf("palirria_tasks_total %d", totalTasks); !strings.Contains(out, want) {
		t.Errorf("metrics output missing %q", want)
	}
	if want := fmt.Sprintf("palirria_steals_total %d", totalSteals); !strings.Contains(out, want) {
		t.Errorf("metrics output missing %q", want)
	}
	if !strings.Contains(out, `palirria_worker_useful_ns{core="0"}`) {
		t.Errorf("metrics output missing per-core series:\n%s", out)
	}
}

// TestTracingDisabledByDefault pins the nil fast path: no Tracer, no
// events, no metric registration side effects.
func TestTracingDisabledByDefault(t *testing.T) {
	rt, err := New(Config{Mesh: smallMesh(t), Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rt.workers {
		if w.ring != nil {
			t.Fatal("ring allocated without a tracer")
		}
	}
	if _, err := rt.Run(func(c *Ctx) { c.Compute(1000) }); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerTimeAccountingInvariant pins the exclusive time-accounting
// rule: every worker nanosecond lands in exactly one of UsefulNS,
// SearchNS, or IdleNS, so their sum never exceeds the worker's wall time.
// The seed double-counted here — Sync's leapfrog steals charged SearchNS
// inside a window that runTask then also charged whole to UsefulNS — so
// deep-syncing workloads reported sums well above 100% of wall time.
//
// The bound uses wall time measured around Run *including teardown*,
// because workers keep accumulating idle time between root completion and
// their stop token; rep.WallNS stops at root completion and would
// spuriously trip the bound.
func TestWorkerTimeAccountingInvariant(t *testing.T) {
	rt, err := New(Config{
		Mesh: smallMesh(t), Source: 0,
		Estimator: core.NewPalirria(),
		Quantum:   500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := nowNS()
	rep, err := rt.Run(fanRoot)
	if err != nil {
		t.Fatal(err)
	}
	outerWall := nowNS() - t0 // Run returns after teardown: all workers stopped
	const slack = int64(time.Millisecond)
	for id, wr := range rep.Workers {
		sum := wr.UsefulNS + wr.SearchNS + wr.IdleNS
		if sum > outerWall+slack {
			t.Errorf("worker %d: useful(%d)+search(%d)+idle(%d) = %d exceeds wall %d — time double-counted",
				id, wr.UsefulNS, wr.SearchNS, wr.IdleNS, sum, outerWall)
		}
		if wr.Tasks > 0 && wr.UsefulNS <= 0 {
			t.Errorf("worker %d ran %d tasks but reports %dns useful time", id, wr.Tasks, wr.UsefulNS)
		}
	}
}

// TestWorkerTimeAccountingInvariantPersistent pins the same partition for
// persistent mode against the report's own wall clock. Shutdown used to
// capture WallNS before tearing the workers down, so idle time accrued
// during the quiesce could push a worker's sum past the reported wall;
// the wall is now read after teardown and the report must be
// self-consistent with no outer measurement needed.
func TestWorkerTimeAccountingInvariantPersistent(t *testing.T) {
	rt, err := New(Config{
		Mesh: smallMesh(t), Source: 0,
		Estimator: core.NewPalirria(),
		Quantum:   500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		done := make(chan struct{})
		if err := rt.Submit(fanRoot, func() { close(done) }); err != nil {
			t.Fatal(err)
		}
		<-done
		time.Sleep(time.Millisecond) // let workers park between jobs
	}
	rep, err := rt.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	const slack = int64(time.Millisecond)
	for id, wr := range rep.Workers {
		sum := wr.UsefulNS + wr.SearchNS + wr.IdleNS
		if sum > rep.WallNS+slack {
			t.Errorf("worker %d: useful(%d)+search(%d)+idle(%d) = %d exceeds reported wall %d — wall captured before quiesce?",
				id, wr.UsefulNS, wr.SearchNS, wr.IdleNS, sum, rep.WallNS)
		}
	}
}
