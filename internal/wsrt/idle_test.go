package wsrt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"palirria/internal/core"
	"palirria/internal/topo"
)

// TestIdleWorkersParkInValley pins the tentpole behaviour: an idle
// persistent runtime parks its workers instead of busy-polling. Over a
// 20ms valley the workers must actually block (parks advance) and the
// search time burned across the whole allotment must be a small fraction
// of the window — the seed's backoff loop accumulated search time linear
// in the valley length on every idle worker.
func TestIdleWorkersParkInValley(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	// Run one job so every worker has cycled through the steal path once.
	submitAndWait(t, rt, func(c *Ctx) {
		for i := 0; i < 8; i++ {
			c.Spawn(func(cc *Ctx) { cc.Compute(20_000) })
		}
		c.SyncAll()
	})
	time.Sleep(2 * time.Millisecond) // drain the post-job spin budget
	searchSum := func() int64 {
		var s int64
		for _, w := range rt.workers {
			s += atomic.LoadInt64(&w.stats.SearchNS)
		}
		return s
	}
	s0 := searchSum()
	const valley = 20 * time.Millisecond
	time.Sleep(valley)
	ds := searchSum() - s0
	if rt.parks.Load() == 0 {
		t.Fatal("no worker ever parked — idle path is not event-driven")
	}
	// 8 workers × 20ms = 160ms of worker-time in the valley. Allow 10% of
	// one worker's window for straggler spins; busy-polling would burn
	// orders of magnitude more.
	if budget := int64(valley) / 10; ds > budget {
		t.Fatalf("idle valley burned %s of search time (budget %s) — workers are polling, not parking",
			time.Duration(ds), time.Duration(budget))
	}
	if _, err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestParkingStressLostWakeupHunt hunts for lost wakeups in the parking
// protocol: concurrent submitters race against allotment oscillation
// (grants, revokes, policy rebuilds) while the estimator keeps reshaping
// the victim graph under a short quantum. Any hole in the
// announce/re-check/block protocol shows up as a job that never starts —
// the submitAndWait timeout converts it into a failure instead of a hang.
// Run under -race this doubles as the memory-model check on the
// idle-path atomics.
func TestParkingStressLostWakeupHunt(t *testing.T) {
	rt, err := New(Config{
		Mesh: topo.MustMesh(4, 4), Source: 5,
		Estimator:      core.NewPalirria(),
		Quantum:        200 * time.Microsecond,
		SubmitQueueCap: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	// Oscillate the worker cap while jobs flow: forces revoke tokens into
	// idle-waiting workers and full policy rebuilds mid-park.
	stopCap := make(chan struct{})
	var capWG sync.WaitGroup
	capWG.Add(1)
	go func() {
		defer capWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopCap:
				rt.SetMaxWorkers(0)
				return
			case <-time.After(500 * time.Microsecond):
			}
			if i%2 == 0 {
				rt.SetMaxWorkers(2)
			} else {
				rt.SetMaxWorkers(0)
			}
		}
	}()
	const (
		submitters = 8
		waves      = 5
		jobsPerSub = 6
	)
	var completed atomic.Int64
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < jobsPerSub; j++ {
					done := make(chan struct{})
					err := rt.Submit(func(c *Ctx) {
						c.Spawn(func(cc *Ctx) { cc.Compute(10_000) })
						c.Compute(10_000)
						c.Sync()
					}, func() { completed.Add(1); close(done) })
					if err != nil {
						// Bounded queue under stress: back off and retry.
						j--
						time.Sleep(100 * time.Microsecond)
						continue
					}
					select {
					case <-done:
					case <-time.After(30 * time.Second):
						t.Error("job never completed — lost wakeup")
						return
					}
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			break
		}
		time.Sleep(2 * time.Millisecond) // let everyone park between waves
	}
	close(stopCap)
	capWG.Wait()
	if _, err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if want := int64(submitters * waves * jobsPerSub); completed.Load() != want && !t.Failed() {
		t.Fatalf("completed %d of %d jobs", completed.Load(), want)
	}
}

// TestBatchInjectStartupRace races root injection against worker startup
// across several concurrent runtimes: the inject token must not be lost
// even when the source worker's goroutine has not yet reached its first
// park when the root arrives.
func TestBatchInjectStartupRace(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10})
			if err != nil {
				t.Error(err)
				return
			}
			var ran atomic.Bool
			rep, err := rt.Run(func(c *Ctx) {
				for j := 0; j < 4; j++ {
					c.Spawn(func(cc *Ctx) { cc.Compute(5_000) })
				}
				c.SyncAll()
				ran.Store(true)
			})
			if err != nil {
				t.Error(err)
				return
			}
			if !ran.Load() || rep.WallNS <= 0 {
				t.Error("root did not run")
			}
		}()
	}
	wg.Wait()
}
