package wsrt

import (
	"errors"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"palirria/internal/core"
	"palirria/internal/topo"
)

// latencyBudget widens a locally-strict latency bound on noisy hosts: the
// race detector serializes every synchronization event and shared CI
// runners timeshare unpredictably, so wall-clock gates that are tight on a
// quiet developer machine flake there. The regression being guarded — an
// idle path that polls instead of parking — overshoots by orders of
// magnitude, so the x8 budget keeps the gate meaningful.
func latencyBudget(d time.Duration) time.Duration {
	if raceEnabled || os.Getenv("CI") != "" {
		return d * 8
	}
	return d
}

// submitAndWait submits fn and blocks until its completion callback fires.
func submitAndWait(t *testing.T, rt *Runtime, fn Func) {
	t.Helper()
	done := make(chan struct{})
	if err := rt.Submit(fn, func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("submitted job did not complete")
	}
}

func TestPersistentSubmitRunsJobs(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	var sum atomic.Int64
	for i := 0; i < 20; i++ {
		submitAndWait(t, rt, func(c *Ctx) {
			for j := 0; j < 8; j++ {
				c.Spawn(func(cc *Ctx) { sum.Add(1) })
			}
			c.SyncAll()
			sum.Add(1)
		})
	}
	if got := sum.Load(); got != 20*9 {
		t.Fatalf("sum = %d, want %d", got, 20*9)
	}
	rep, err := rt.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	var tasks int64
	for _, w := range rep.Workers {
		tasks += w.Tasks
	}
	if tasks != 20*9 {
		t.Fatalf("tasks = %d, want %d (20 roots + 160 spawns)", tasks, 20*9)
	}
}

func TestPersistentConcurrentSubmitters(t *testing.T) {
	rt, err := New(Config{
		Mesh: topo.MustMesh(4, 2), Source: 0,
		Estimator:      core.NewPalirria(),
		Quantum:        500 * time.Microsecond,
		SubmitQueueCap: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	const jobs = 64
	var completed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done := make(chan struct{})
			err := rt.Submit(func(c *Ctx) {
				c.Spawn(func(cc *Ctx) { cc.Compute(20_000) })
				c.Compute(20_000)
				c.Sync()
			}, func() { completed.Add(1); close(done) })
			if err != nil {
				t.Error(err)
				return
			}
			<-done
		}()
	}
	wg.Wait()
	if completed.Load() != jobs {
		t.Fatalf("completed = %d, want %d", completed.Load(), jobs)
	}
	if _, err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentLifecycleErrors(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Submit and Shutdown require persistent mode.
	if err := rt.Submit(func(c *Ctx) {}, nil); !errors.Is(err, ErrNotPersistent) {
		t.Fatalf("Submit before Start = %v, want ErrNotPersistent", err)
	}
	if _, err := rt.Shutdown(); !errors.Is(err, ErrNotPersistent) {
		t.Fatalf("Shutdown before Start = %v, want ErrNotPersistent", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); !errors.Is(err, ErrAlreadyUsed) {
		t.Fatalf("second Start = %v, want ErrAlreadyUsed", err)
	}
	if _, err := rt.Run(func(c *Ctx) {}); !errors.Is(err, ErrAlreadyUsed) {
		t.Fatalf("Run after Start = %v, want ErrAlreadyUsed", err)
	}
	if _, err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(func(c *Ctx) {}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Shutdown = %v, want ErrClosed", err)
	}
	if _, err := rt.Shutdown(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Shutdown = %v, want ErrClosed", err)
	}
}

func TestPersistentQueueFullAndFlush(t *testing.T) {
	// One usable core and a tiny queue: saturate it while the only worker
	// is busy, then Shutdown must fire every pending onDone exactly once.
	rt, err := New(Config{Mesh: topo.MustMesh(2, 1), Source: 0, SubmitQueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	// Block both workers so nothing drains the queue.
	gate := make(chan struct{})
	var running sync.WaitGroup
	for i := 0; i < 2; i++ {
		running.Add(1)
		if err := rt.Submit(func(c *Ctx) { running.Done(); <-gate }, nil); err != nil {
			t.Fatal(err)
		}
	}
	running.Wait()
	var flushed atomic.Int64
	for i := 0; i < 2; i++ {
		if err := rt.Submit(func(c *Ctx) {}, func() { flushed.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Submit(func(c *Ctx) {}, nil); !errors.Is(err, ErrSubmitQueueFull) {
		t.Fatalf("overflow Submit = %v, want ErrSubmitQueueFull", err)
	}
	close(gate)
	// The two queued no-op jobs either run or are flushed by Shutdown;
	// both paths must invoke onDone.
	deadline := time.After(10 * time.Second)
	for flushed.Load() < 2 {
		select {
		case <-deadline:
			// Shutdown flushes whatever the workers did not reach.
			if _, err := rt.Shutdown(); err != nil {
				t.Fatal(err)
			}
			if flushed.Load() != 2 {
				t.Fatalf("flushed = %d, want 2", flushed.Load())
			}
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := rt.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if flushed.Load() != 2 {
		t.Fatalf("flushed = %d, want 2", flushed.Load())
	}
}

func TestPersistentAdaptiveGrowsAndShrinksWhileResident(t *testing.T) {
	// The serving scenario end to end on the raw runtime: idle valley,
	// burst, idle valley. The allotment must grow into the burst and the
	// estimator must keep ticking while idle so it shrinks back.
	rt, err := New(Config{
		Mesh: topo.MustMesh(4, 4), Source: 5,
		Estimator: core.NewPalirria(),
		Quantum:   500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var quanta atomic.Int64
	rt.cfg.OnQuantum = func(q QuantumInfo) { quanta.Add(1) }
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // idle valley: helper must tick
	if quanta.Load() == 0 {
		t.Fatal("estimator helper not ticking while idle")
	}
	var fan func(c *Ctx, n int)
	fan = func(c *Ctx, n int) {
		if n <= 1 {
			c.Compute(150_000)
			return
		}
		c.Spawn(func(cc *Ctx) { fan(cc, n/2) })
		fan(c, n-n/2)
		c.Sync()
	}
	// Bursts of concurrent jobs, so queues build across the allotment the
	// way a loaded server's do.
	for burst := 0; burst < 6; burst++ {
		var wg sync.WaitGroup
		for j := 0; j < 8; j++ {
			wg.Add(1)
			if err := rt.Submit(func(c *Ctx) { fan(c, 128) }, wg.Done); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
	}
	time.Sleep(10 * time.Millisecond) // valley: desire decays
	shrunk := rt.AllotmentSize()
	rep, err := rt.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxWorkers < 2 {
		t.Fatalf("allotment never grew: max %d", rep.MaxWorkers)
	}
	if shrunk >= rep.MaxWorkers {
		t.Fatalf("allotment did not shrink in the valley: %d (peak %d)", shrunk, rep.MaxWorkers)
	}
}

func TestSubmitLatencyAfterIdle(t *testing.T) {
	// Submit-to-start latency with the runtime idle before every
	// submission. The seed's idle loop slept on an exponential backoff
	// capped at 256µs, so a job submitted into a quiet runtime waited for
	// someone's timer to expire — median ≈128µs. With Submit waking the
	// target shard's owner right after the push, the median collapses to
	// scheduler-switch cost. The
	// 100µs bound is loose enough for CI noise yet impossible for the
	// old backoff loop to meet.
	bound := latencyBudget(100 * time.Microsecond)
	measure := func() time.Duration {
		rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Start(); err != nil {
			t.Fatal(err)
		}
		const trials = 101
		lat := make([]int64, 0, trials)
		started := make(chan int64)
		for i := 0; i < trials; i++ {
			time.Sleep(2 * time.Millisecond) // let every worker park
			t0 := nowNS()
			if err := rt.Submit(func(*Ctx) { started <- nowNS() }, nil); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, <-started-t0)
		}
		if _, err := rt.Shutdown(); err != nil {
			t.Fatal(err)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		t.Logf("submit-to-start: p50=%s p99=%s",
			time.Duration(lat[trials/2]), time.Duration(lat[trials-2]))
		return time.Duration(lat[trials/2])
	}
	median := measure()
	if median > bound {
		// Retry once: a single noisy-neighbor burst can shift a whole
		// median, but a real regression to a polling idle path overshoots
		// on every attempt.
		t.Logf("median %s over %s budget, retrying once", median, bound)
		median = measure()
	}
	if median > bound {
		t.Fatalf("median submit-to-start latency %s exceeds %s — idle path regressed to polling",
			median, bound)
	}
}

func TestShutdownLatencyBounded(t *testing.T) {
	// Shutdown of an idle persistent runtime must complete promptly: every
	// parked or idle-waiting worker is woken by an explicit token, never by
	// a timeout fallback. A regression that loses the stop wakeup would
	// hang forever; one that reintroduces a timed park would show up as
	// multi-hundred-millisecond shutdowns.
	bound := latencyBudget(500 * time.Millisecond)
	measure := func() time.Duration {
		rt, err := New(Config{
			Mesh: topo.MustMesh(4, 4), Source: 5,
			Estimator: core.NewPalirria(),
			Quantum:   500 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Start(); err != nil {
			t.Fatal(err)
		}
		submitAndWait(t, rt, func(c *Ctx) {
			for i := 0; i < 16; i++ {
				c.Spawn(func(cc *Ctx) { cc.Compute(50_000) })
			}
			c.SyncAll()
		})
		time.Sleep(5 * time.Millisecond) // everyone back to parked/idle
		t0 := time.Now()
		if _, err := rt.Shutdown(); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	d := measure()
	if d > bound {
		t.Logf("shutdown took %s against %s budget, retrying once", d, bound)
		d = measure()
	}
	if d > bound {
		t.Fatalf("Shutdown of an idle runtime took %s (budget %s) — a worker missed its stop wakeup", d, bound)
	}
}
