package wsrt

// Typed futures over the WOOL spawn/sync discipline. WOOL's SYNC joins the
// youngest outstanding spawn, so futures join in LIFO order — the natural
// order of nested fork/join code. Join panics on out-of-order use rather
// than silently corrupting the queue discipline.

// Future holds the pending result of a spawned computation.
type Future[T any] struct {
	val  T
	task *rtTask
}

// Go spawns fn as a stealable task and returns a future for its result.
// The future must be joined (in LIFO order among this task's outstanding
// spawns) before the task body returns.
func Go[T any](c *Ctx, fn func(*Ctx) T) *Future[T] {
	f := &Future[T]{}
	c.Spawn(func(cc *Ctx) {
		f.val = fn(cc)
	})
	f.task = c.pending[len(c.pending)-1]
	return f
}

// Join waits for the future's computation (inlining it when it was not
// stolen, leapfrogging when it was) and returns its value. It must be
// called on the same Ctx that created the future, with the future being
// the youngest outstanding spawn — the LIFO discipline of WOOL's SYNC.
func (f *Future[T]) Join(c *Ctx) T {
	if len(c.pending) == 0 || c.pending[len(c.pending)-1] != f.task {
		panic("wsrt: Future.Join out of LIFO order (join the youngest spawn first)")
	}
	c.Sync()
	return f.val
}
