//go:build linux

package wsrt

import (
	"runtime"
	"syscall"
	"unsafe"
)

// setAffinity pins the calling OS thread to the given CPU, best effort:
// the paper pins worker threads with pthread affinity; we do the same via
// sched_setaffinity when the core exists on the host. Errors are ignored —
// on hosts with fewer CPUs than the virtual mesh the worker simply floats.
func setAffinity(cpu int) {
	if cpu < 0 || cpu >= runtime.NumCPU() {
		return
	}
	var mask [16]uint64 // 1024 CPUs
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	// sched_setaffinity(0 /* this thread */, len, &mask)
	_, _, _ = syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
}
