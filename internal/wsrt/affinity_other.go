//go:build !linux

package wsrt

// setAffinity is a no-op on platforms without sched_setaffinity; workers
// are still locked to OS threads when Config.Pin is set.
func setAffinity(cpu int) {}
