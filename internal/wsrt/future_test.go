package wsrt

import (
	"testing"

	"palirria/internal/topo"
)

func TestFutureFib(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	var fib func(c *Ctx, n int) int64
	fib = func(c *Ctx, n int) int64 {
		if n < 2 {
			return int64(n)
		}
		fa := Go(c, func(cc *Ctx) int64 { return fib(cc, n-1) })
		b := fib(c, n-2)
		return fa.Join(c) + b
	}
	var got int64
	if _, err := rt.Run(func(c *Ctx) { got = fib(c, 22) }); err != nil {
		t.Fatal(err)
	}
	if got != 17711 {
		t.Fatalf("fib(22) = %d, want 17711", got)
	}
}

func TestFutureLIFOOrder(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(2), Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run(func(c *Ctx) {
		a := Go(c, func(*Ctx) int { return 1 })
		b := Go(c, func(*Ctx) int { return 2 })
		// LIFO: b joins first, then a.
		if b.Join(c) != 2 || a.Join(c) != 1 {
			t.Error("future values wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFutureOutOfOrderPanics(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(2), Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	var recovered bool
	_, err = rt.Run(func(c *Ctx) {
		defer func() {
			if recover() != nil {
				recovered = true
				// Join the remaining spawns so the task exits cleanly.
				c.SyncAll()
			}
		}()
		a := Go(c, func(*Ctx) int { return 1 })
		Go(c, func(*Ctx) int { return 2 })
		a.Join(c) // wrong order: a is not the youngest
	})
	if err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Fatal("out-of-order join did not panic")
	}
}

func TestFutureDifferentTypes(t *testing.T) {
	rt, err := New(Config{Mesh: topo.MustMesh(4), Source: 0, InitialDiaspora: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run(func(c *Ctx) {
		fs := Go(c, func(*Ctx) string { return "hello" })
		fv := Go(c, func(*Ctx) []int { return []int{1, 2, 3} })
		if v := fv.Join(c); len(v) != 3 {
			t.Errorf("slice future = %v", v)
		}
		if s := fs.Join(c); s != "hello" {
			t.Errorf("string future = %q", s)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
