package topo

import "fmt"

// Class is a worker's DVS classification within an allotment.
//
// The paper's formal definitions (§4.1) are used verbatim:
//
//	Z = { w in I : hc(w, s) = d }                      (outermost zone)
//	X = { w in I : exactly one allotted worker sits
//	               one hop closer to the source }       (axis conduits)
//	F = I \ (X ∪ Z ∪ {s})                               (the rest)
//
// X and Z are not disjoint: an on-axis worker in the outermost zone
// satisfies both definitions and is reported as ClassXZ. This matches the
// paper's 5-worker example ("all workers are part of X and their respective
// value of L is zero") where every zone-1 worker is simultaneously at
// maximum distance. The prose description of X ("excluding those at maximum
// distance") refers only to the illustration; the Diaspora Malleability
// Conditions quantify over the formal sets, so an XZ worker participates in
// both the increase condition (as X) and the decrease condition (as Z).
type Class uint8

const (
	// ClassNone marks cores outside the allotment.
	ClassNone Class = iota
	// ClassSource is the source worker s.
	ClassSource
	// ClassX members span outward from the source, each with exactly one
	// allotted inner-zone neighbour; they disseminate load away from s.
	ClassX
	// ClassZ members form the outermost zone, at maximum distance d.
	ClassZ
	// ClassXZ members satisfy both the X and the Z definition.
	ClassXZ
	// ClassF is everything else: the bulk that pulls load back inward.
	ClassF
)

// String returns the short label used in figures: s, X, Z, XZ, F.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "."
	case ClassSource:
		return "s"
	case ClassX:
		return "X"
	case ClassZ:
		return "Z"
	case ClassXZ:
		return "XZ"
	case ClassF:
		return "F"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsX reports whether the class satisfies the X definition.
func (c Class) IsX() bool { return c == ClassX || c == ClassXZ }

// IsZ reports whether the class satisfies the Z definition.
func (c Class) IsZ() bool { return c == ClassZ || c == ClassXZ }

// Classification holds the per-core classes of one allotment plus the
// derived neighbour sets DVS and the DMC need.
type Classification struct {
	a       *Allotment
	classOf []Class // indexed by CoreID
	x, z, f []CoreID
}

// Classify computes the X/Z/F classification of allotment a.
func Classify(a *Allotment) *Classification {
	m := a.Mesh()
	c := &Classification{
		a:       a,
		classOf: make([]Class, m.NumCores()),
	}
	d := a.Diaspora()
	for _, w := range a.Members() {
		if w == a.Source() {
			c.classOf[w] = ClassSource
			continue
		}
		isZ := a.ZoneOf(w) == d
		isX := len(c.innerNeighbors(w)) == 1
		switch {
		case isX && isZ:
			c.classOf[w] = ClassXZ
		case isX:
			c.classOf[w] = ClassX
		case isZ:
			c.classOf[w] = ClassZ
		default:
			c.classOf[w] = ClassF
		}
		if isX {
			c.x = append(c.x, w)
		}
		if isZ {
			c.z = append(c.z, w)
		}
		if !isX && !isZ {
			c.f = append(c.f, w)
		}
	}
	return c
}

// Allotment returns the allotment this classification describes.
func (c *Classification) Allotment() *Allotment { return c.a }

// Class returns the class of core id (ClassNone for non-members).
func (c *Classification) Class(id CoreID) Class {
	if !c.a.Mesh().Valid(id) {
		return ClassNone
	}
	return c.classOf[id]
}

// X returns all workers satisfying the X definition (including XZ members),
// sorted by (zone, id). The DMC increase condition quantifies over this set.
func (c *Classification) X() []CoreID { return c.x }

// Z returns all workers in the outermost zone (including XZ members). The
// DMC decrease condition quantifies over this set.
func (c *Classification) Z() []CoreID { return c.z }

// F returns the remaining workers (excluding the source).
func (c *Classification) F() []CoreID { return c.f }

// innerNeighbors returns the allotted distance-1 neighbours of w that lie
// one zone closer to the source.
func (c *Classification) innerNeighbors(w CoreID) []CoreID {
	m := c.a.Mesh()
	zw := c.a.ZoneOf(w)
	var out []CoreID
	for _, n := range m.Neighbors(w) {
		if c.a.Contains(n) && c.a.ZoneOf(n) == zw-1 {
			out = append(out, n)
		}
	}
	return out
}

// InnerNeighbors returns the allotted distance-1 neighbours of member w one
// zone closer to the source (the candidates a class-X worker pulls from).
func (c *Classification) InnerNeighbors(w CoreID) []CoreID {
	return c.innerNeighbors(w)
}

// OuterVictims returns O_w: the allotted distance-1 neighbours of member w
// located in its outer zone. Per Definition 1, these are simultaneously w's
// victims and workers that steal from w. µ(O_w) is the theoretical bound for
// the threshold L in the DMC increase condition.
func (c *Classification) OuterVictims(w CoreID) []CoreID {
	m := c.a.Mesh()
	zw := c.a.ZoneOf(w)
	var out []CoreID
	for _, n := range m.Neighbors(w) {
		if c.a.Contains(n) && c.a.ZoneOf(n) == zw+1 {
			out = append(out, n)
		}
	}
	return out
}

// RingNeighbors returns the allotted diagonal neighbours of member w in the
// same zone — the "diagonally left and right" candidates Z members steal
// from first. A diagonal neighbour differs by exactly one hop along each of
// two distinct axes (total distance 2): these are the positions adjacent to
// w along the diamond ring of its zone. Straight-line distance-2 neighbours
// (e.g. two hops along one axis) are in the same zone but are not
// ring-adjacent and are excluded.
func (c *Classification) RingNeighbors(w CoreID) []CoreID {
	m := c.a.Mesh()
	zw := c.a.ZoneOf(w)
	wc := m.Coord(w)
	var out []CoreID
	for _, id := range m.Ring(w, 2) {
		if !c.a.Contains(id) || c.a.ZoneOf(id) != zw {
			continue
		}
		ic := m.Coord(id)
		dx, dy, dz := abs(ic.X-wc.X), abs(ic.Y-wc.Y), abs(ic.Z-wc.Z)
		if dx <= 1 && dy <= 1 && dz <= 1 {
			out = append(out, id)
		}
	}
	return out
}

// Complete reports whether every class is complete: each geometric position
// belonging to a class within diaspora d is actually allotted. In a
// multiprogrammed system this is rare (paper Fig. 2); DVS and the DMC are
// designed to tolerate incompleteness.
func (c *Classification) Complete() bool {
	m := c.a.Mesh()
	d := c.a.Diaspora()
	for id := CoreID(0); int(id) < m.NumCores(); id++ {
		if m.Reserved(id) || c.a.Contains(id) {
			continue
		}
		if m.HopCount(c.a.Source(), id) <= d {
			return false
		}
	}
	return true
}
