package topo

import (
	"reflect"
	"testing"
	"testing/quick"
)

// simPlatform returns the paper's simulated platform: 32-core 8x4 mesh
// running Barrelfish, cores 0 and 1 reserved, source on core 20.
func simPlatform(t testing.TB) (*Mesh, CoreID) {
	t.Helper()
	m := MustMesh(8, 4)
	m.Reserve(0, 1)
	return m, CoreID(20)
}

// numaPlatform returns the paper's real-hardware platform as modelled: a
// 48-core 8x6 mesh with cores 0, 1 and 2 reserved and source core 28.
// Reserving core 2 in addition to the paper's stated 0 and 1 is required to
// reproduce the exact fixed allotment series 5, 13, 24, 35, 42, 45 the paper
// reports (see DESIGN.md).
func numaPlatform(t testing.TB) (*Mesh, CoreID) {
	t.Helper()
	m := MustMesh(8, 6)
	m.Reserve(0, 1, 2)
	return m, CoreID(28)
}

func TestZoneSeriesMatchesPaperSimulator(t *testing.T) {
	m, src := simPlatform(t)
	got := ZoneSeries(m, src, 4)
	want := []int{5, 12, 20, 27}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("8x4 zone series = %v, want %v (paper fixed allotments)", got, want)
	}
}

func TestZoneSeriesMatchesPaperLinux(t *testing.T) {
	m, src := numaPlatform(t)
	got := ZoneSeries(m, src, 6)
	want := []int{5, 13, 24, 35, 42, 45}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("8x6 zone series = %v, want %v (paper fixed allotments)", got, want)
	}
}

func TestNewAllotmentValidation(t *testing.T) {
	m, _ := simPlatform(t)
	if _, err := NewAllotment(m, CoreID(99), 1); err == nil {
		t.Error("expected error for invalid source")
	}
	if _, err := NewAllotment(m, CoreID(0), 1); err == nil {
		t.Error("expected error for reserved source")
	}
	if _, err := NewAllotment(m, CoreID(20), 0); err == nil {
		t.Error("expected error for diaspora 0")
	}
}

func TestAllotmentBasics(t *testing.T) {
	m, src := simPlatform(t)
	a, err := NewAllotment(m, src, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 5 {
		t.Fatalf("Size = %d, want 5", a.Size())
	}
	if a.Source() != src || a.Diaspora() != 1 {
		t.Fatalf("source/diaspora wrong: %v", a)
	}
	if !a.Contains(src) {
		t.Fatal("allotment must contain the source")
	}
	if a.ZoneOf(src) != 0 {
		t.Fatal("source must be in zone 0")
	}
	if z1 := a.Zone(1); len(z1) != 4 {
		t.Fatalf("zone 1 has %d members, want 4", len(z1))
	}
	if z0 := a.Zone(0); len(z0) != 1 || z0[0] != src {
		t.Fatalf("zone 0 = %v, want [%d]", z0, src)
	}
}

func TestMembersSortedByZoneThenID(t *testing.T) {
	m, src := simPlatform(t)
	a, _ := NewAllotment(m, src, 3)
	prev := -1
	prevID := CoreID(-1)
	for _, id := range a.Members() {
		z := a.ZoneOf(id)
		if z < prev || (z == prev && id <= prevID) {
			t.Fatalf("members not sorted by (zone,id) at %d", id)
		}
		if z != prev {
			prev, prevID = z, CoreID(-1)
		}
		prevID = id
	}
}

func TestGrowShrinkRoundTrip(t *testing.T) {
	m, src := simPlatform(t)
	a, _ := NewAllotment(m, src, 1)
	sizes := []int{a.Size()}
	for {
		next, ok := a.Grow()
		if !ok {
			break
		}
		a = next
		sizes = append(sizes, a.Size())
	}
	// 8x4 with 2 reserved: 5, 12, 20, 27, then 30 (the three far edge cores).
	want := []int{5, 12, 20, 27, 30}
	if !reflect.DeepEqual(sizes, want) {
		t.Fatalf("grow series = %v, want %v", sizes, want)
	}
	// Shrink all the way back down.
	for i := len(want) - 2; i >= 0; i-- {
		next, ok := a.Shrink()
		if !ok {
			t.Fatalf("shrink failed at step %d", i)
		}
		a = next
		if a.Size() != want[i] {
			t.Fatalf("shrink size = %d, want %d", a.Size(), want[i])
		}
	}
	if _, ok := a.Shrink(); ok {
		t.Fatal("shrinking below the minimum must fail")
	}
}

func TestGrowAtMaxFails(t *testing.T) {
	m, src := simPlatform(t)
	a, _ := NewAllotment(m, src, m.MaxDiaspora(src))
	if _, ok := a.Grow(); ok {
		t.Fatal("growing past the last zone must report !ok")
	}
}

func TestNewAllotmentFromCores(t *testing.T) {
	m, src := simPlatform(t)
	// An incomplete allotment: the source plus two scattered cores.
	a, err := NewAllotmentFromCores(m, src, []CoreID{21, 22, 22})
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (dedup + implicit source)", a.Size())
	}
	if a.Diaspora() != 2 {
		t.Fatalf("Diaspora = %d, want 2", a.Diaspora())
	}
	if _, err := NewAllotmentFromCores(m, src, []CoreID{0}); err == nil {
		t.Error("expected error for reserved member")
	}
	if _, err := NewAllotmentFromCores(m, src, []CoreID{99}); err == nil {
		t.Error("expected error for invalid member")
	}
}

func TestZonePartition(t *testing.T) {
	// Property: zones partition the members, and every member's ZoneOf
	// equals its hop count from the source.
	m, src := numaPlatform(t)
	f := func(dRaw uint8) bool {
		d := 1 + int(dRaw)%6
		a, err := NewAllotment(m, src, d)
		if err != nil {
			return false
		}
		total := 0
		for k := 0; k <= a.Diaspora(); k++ {
			for _, id := range a.Zone(k) {
				if a.ZoneOf(id) != k {
					return false
				}
				total++
			}
		}
		return total == a.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiasporaForSize(t *testing.T) {
	m, src := simPlatform(t)
	d, a, ok := DiasporaForSize(m, src, 20)
	if !ok || d != 3 || a.Size() != 20 {
		t.Fatalf("DiasporaForSize(20) = (%d, %d, %v), want (3, 20, true)", d, a.Size(), ok)
	}
	d, a, ok = DiasporaForSize(m, src, 13)
	if !ok || d != 3 || a.Size() != 20 {
		t.Fatalf("DiasporaForSize(13) = (%d, %d, %v), want (3, 20, true)", d, a.Size(), ok)
	}
	_, a, ok = DiasporaForSize(m, src, 1000)
	if ok {
		t.Fatal("size 1000 cannot be satisfied on 30 usable cores")
	}
	if a.Size() != 30 {
		t.Fatalf("fallback allotment size = %d, want 30", a.Size())
	}
}

func TestZoneOfPanicsForNonMember(t *testing.T) {
	m, src := simPlatform(t)
	a, _ := NewAllotment(m, src, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ZoneOf(non-member)")
		}
	}()
	a.ZoneOf(CoreID(7))
}
