package topo

import (
	"fmt"
	"sort"
)

// Locality groups mesh cores into physical locality domains — NUMA nodes
// or sockets. The virtual mesh encodes the *logical* topology DVS reasons
// about (zones, classes, hop counts); a Locality overlays the *physical*
// machine on it, so runtimes can prefer same-node placement and order
// steal sweeps node-local-first without changing any logical policy.
//
// A Locality is immutable once built and safe for concurrent use. Node
// indices are dense, 0-based, and ordered by first appearance in the
// input, so the same grouping always yields the same indices.
type Locality struct {
	nodeOf   []int
	numNodes int
}

// NewLocality builds a locality map from a per-core node assignment:
// nodeByCore[i] is the physical domain of core i. Raw node identifiers
// may be arbitrary (kernel NUMA node ids are not always contiguous);
// they are normalized to dense 0-based indices. An empty assignment
// yields a flat single-node locality over zero cores.
func NewLocality(nodeByCore []int) *Locality {
	l := &Locality{nodeOf: make([]int, len(nodeByCore))}
	dense := make(map[int]int)
	for i, raw := range nodeByCore {
		idx, ok := dense[raw]
		if !ok {
			idx = len(dense)
			dense[raw] = idx
		}
		l.nodeOf[i] = idx
	}
	l.numNodes = len(dense)
	if l.numNodes == 0 {
		l.numNodes = 1
	}
	return l
}

// FlatLocality returns the single-node locality over n cores: every core
// on node 0. It is the explicit "no physical topology" map — runtimes
// treat it exactly like an undetectable machine, so it is also the knob
// that forces the pre-locality behavior for A/B comparison.
func FlatLocality(n int) *Locality {
	if n < 0 {
		n = 0
	}
	return &Locality{nodeOf: make([]int, n), numNodes: 1}
}

// SplitLocality returns a synthetic locality that splits n cores into
// `nodes` contiguous, near-even domains (the first n%nodes domains get
// the extra core). Benches and chaos scenarios use it to exercise the
// locality paths deterministically on hosts whose real topology is flat.
func SplitLocality(n, nodes int) *Locality {
	if n < 0 {
		n = 0
	}
	if nodes < 1 {
		nodes = 1
	}
	if nodes > n && n > 0 {
		nodes = n
	}
	l := &Locality{nodeOf: make([]int, n), numNodes: nodes}
	if n == 0 {
		l.numNodes = 1
		return l
	}
	base, extra := n/nodes, n%nodes
	core := 0
	for node := 0; node < nodes; node++ {
		size := base
		if node < extra {
			size++
		}
		for i := 0; i < size; i++ {
			l.nodeOf[core] = node
			core++
		}
	}
	return l
}

// NumNodes returns the number of distinct locality domains (>= 1).
func (l *Locality) NumNodes() int { return l.numNodes }

// NumCores returns the number of cores the map covers.
func (l *Locality) NumCores() int { return len(l.nodeOf) }

// Flat reports whether the locality carries no useful distinction — one
// domain (or none), where every core is local to every other.
func (l *Locality) Flat() bool { return l.numNodes <= 1 }

// Node returns the locality domain of core id. Cores outside the map
// (a virtual mesh larger than the physical machine) report domain 0: an
// unpinnable floating worker has no meaningful home node, and folding it
// into the first domain keeps every index in [0, NumNodes()).
func (l *Locality) Node(id CoreID) int {
	if id < 0 || int(id) >= len(l.nodeOf) {
		return 0
	}
	return l.nodeOf[id]
}

// SameNode reports whether cores a and b share a locality domain.
func (l *Locality) SameNode(a, b CoreID) bool { return l.Node(a) == l.Node(b) }

// NodeCores returns the cores of domain node, in ascending id order.
func (l *Locality) NodeCores(node int) []CoreID {
	var out []CoreID
	for i, n := range l.nodeOf {
		if n == node {
			out = append(out, CoreID(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String describes the map, e.g. "locality 8 cores / 2 nodes".
func (l *Locality) String() string {
	return fmt.Sprintf("locality %d cores / %d nodes", len(l.nodeOf), l.numNodes)
}
