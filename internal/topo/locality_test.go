package topo

import "testing"

func TestNewLocalityNormalizesNodeIDs(t *testing.T) {
	// Raw kernel node ids may be sparse and in any order; they become
	// dense 0-based indices by first appearance.
	l := NewLocality([]int{7, 7, 3, 7, 3, 12})
	if l.NumCores() != 6 {
		t.Fatalf("NumCores = %d, want 6", l.NumCores())
	}
	if l.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", l.NumNodes())
	}
	want := []int{0, 0, 1, 0, 1, 2}
	for i, w := range want {
		if got := l.Node(CoreID(i)); got != w {
			t.Fatalf("Node(%d) = %d, want %d", i, got, w)
		}
	}
	if l.Flat() {
		t.Fatal("3-node map reported flat")
	}
}

func TestNewLocalityEmptyIsFlat(t *testing.T) {
	l := NewLocality(nil)
	if !l.Flat() || l.NumNodes() != 1 || l.NumCores() != 0 {
		t.Fatalf("empty locality: flat=%v nodes=%d cores=%d", l.Flat(), l.NumNodes(), l.NumCores())
	}
}

func TestFlatLocality(t *testing.T) {
	l := FlatLocality(8)
	if !l.Flat() || l.NumNodes() != 1 || l.NumCores() != 8 {
		t.Fatalf("flat(8): flat=%v nodes=%d cores=%d", l.Flat(), l.NumNodes(), l.NumCores())
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if !l.SameNode(CoreID(i), CoreID(j)) {
				t.Fatalf("flat map separates %d and %d", i, j)
			}
		}
	}
}

func TestSplitLocality(t *testing.T) {
	// 8 cores over 3 nodes: sizes 3,3,2 (first n%nodes domains get the
	// extra core), contiguous runs.
	l := SplitLocality(8, 3)
	if l.NumNodes() != 3 || l.NumCores() != 8 {
		t.Fatalf("split(8,3): nodes=%d cores=%d", l.NumNodes(), l.NumCores())
	}
	want := []int{0, 0, 0, 1, 1, 1, 2, 2}
	for i, w := range want {
		if got := l.Node(CoreID(i)); got != w {
			t.Fatalf("Node(%d) = %d, want %d", i, got, w)
		}
	}
	if got := l.NodeCores(1); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("NodeCores(1) = %v, want [3 4 5]", got)
	}
}

func TestSplitLocalityClamps(t *testing.T) {
	if l := SplitLocality(4, 9); l.NumNodes() != 4 {
		t.Fatalf("nodes clamp to core count: got %d, want 4", l.NumNodes())
	}
	if l := SplitLocality(4, 0); !l.Flat() {
		t.Fatal("zero nodes must clamp to flat")
	}
	if l := SplitLocality(0, 3); !l.Flat() || l.NumCores() != 0 {
		t.Fatal("zero cores must be flat and empty")
	}
	if l := SplitLocality(5, 1); !l.Flat() {
		t.Fatal("single node is flat")
	}
}

func TestLocalityNodeOutOfRange(t *testing.T) {
	// Cores beyond the map (virtual mesh larger than the machine) fold
	// into domain 0, keeping indices valid for byNode-style tables.
	l := SplitLocality(4, 2)
	if got := l.Node(CoreID(99)); got != 0 {
		t.Fatalf("out-of-range core node = %d, want 0", got)
	}
	if got := l.Node(CoreID(-1)); got != 0 {
		t.Fatalf("negative core node = %d, want 0", got)
	}
}

func TestLocalityString(t *testing.T) {
	if s := SplitLocality(8, 2).String(); s != "locality 8 cores / 2 nodes" {
		t.Fatalf("String() = %q", s)
	}
}
