package topo

import (
	"testing"
	"testing/quick"
)

func classifyFull(t *testing.T, m *Mesh, src CoreID, d int) *Classification {
	t.Helper()
	a, err := NewAllotment(m, src, d)
	if err != nil {
		t.Fatal(err)
	}
	return Classify(a)
}

func TestClassifyFiveWorkerAllotment(t *testing.T) {
	// Paper §4.1.1 example: "an allotment of 5 workers (1 zone plus the
	// source). All workers are part of X and their respective value of L is
	// zero." With the formal definitions they are X∩Z members.
	m, src := simPlatform(t)
	c := classifyFull(t, m, src, 1)
	if got := len(c.X()); got != 4 {
		t.Fatalf("|X| = %d, want 4", got)
	}
	if got := len(c.Z()); got != 4 {
		t.Fatalf("|Z| = %d, want 4", got)
	}
	if got := len(c.F()); got != 0 {
		t.Fatalf("|F| = %d, want 0", got)
	}
	for _, w := range c.X() {
		if c.Class(w) != ClassXZ {
			t.Fatalf("zone-1 worker %d classified %v, want XZ", w, c.Class(w))
		}
		// L is bound at µ(O_w) = 0: no outer zone is allotted.
		if got := len(c.OuterVictims(w)); got != 0 {
			t.Fatalf("µ(O_%d) = %d, want 0", w, got)
		}
	}
}

func TestClassifySourceIsNotXZF(t *testing.T) {
	m, src := simPlatform(t)
	c := classifyFull(t, m, src, 3)
	if c.Class(src) != ClassSource {
		t.Fatalf("source class = %v", c.Class(src))
	}
	for _, set := range [][]CoreID{c.X(), c.Z(), c.F()} {
		for _, w := range set {
			if w == src {
				t.Fatal("source leaked into a class set")
			}
		}
	}
}

func TestClassifyCoverage(t *testing.T) {
	// Every non-source member belongs to X, Z or F; F is disjoint from both.
	m, src := numaPlatform(t)
	f := func(dRaw uint8) bool {
		d := 1 + int(dRaw)%6
		a, err := NewAllotment(m, src, d)
		if err != nil {
			return false
		}
		c := Classify(a)
		inX := map[CoreID]bool{}
		inZ := map[CoreID]bool{}
		for _, w := range c.X() {
			inX[w] = true
		}
		for _, w := range c.Z() {
			inZ[w] = true
		}
		covered := 1 // source
		for _, w := range a.Members() {
			if w == src {
				continue
			}
			switch c.Class(w) {
			case ClassX:
				if !inX[w] || inZ[w] {
					return false
				}
			case ClassZ:
				if inX[w] || !inZ[w] {
					return false
				}
			case ClassXZ:
				if !inX[w] || !inZ[w] {
					return false
				}
			case ClassF:
				if inX[w] || inZ[w] {
					return false
				}
			default:
				return false
			}
			covered++
		}
		return covered == a.Size() &&
			len(c.F()) == a.Size()-1-len(unionSize(c.X(), c.Z()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func unionSize(a, b []CoreID) []CoreID {
	set := map[CoreID]bool{}
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		set[v] = true
	}
	out := make([]CoreID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

func TestClassifyZIsOutermostZone(t *testing.T) {
	m, src := simPlatform(t)
	for d := 1; d <= 4; d++ {
		c := classifyFull(t, m, src, d)
		a := c.Allotment()
		zone := a.Zone(a.Diaspora())
		if len(c.Z()) != len(zone) {
			t.Fatalf("d=%d: |Z| = %d, want |zone d| = %d", d, len(c.Z()), len(zone))
		}
		for _, w := range c.Z() {
			if a.ZoneOf(w) != a.Diaspora() {
				t.Fatalf("d=%d: Z member %d not at max distance", d, w)
			}
		}
	}
}

func TestClassifyXAxisMembers(t *testing.T) {
	// On the complete 27-worker 8x4 allotment (paper Fig. 9a), the on-axis
	// workers within the grid are X; they each have exactly one inner
	// neighbour.
	m, src := simPlatform(t)
	c := classifyFull(t, m, src, 4)
	a := c.Allotment()
	sc := m.Coord(src)
	for _, w := range a.Members() {
		if w == src {
			continue
		}
		wc := m.Coord(w)
		onAxis := wc.X == sc.X || wc.Y == sc.Y
		if onAxis && !c.Class(w).IsX() {
			// On-axis workers always have exactly one inner neighbour on a
			// complete allotment.
			t.Fatalf("on-axis worker %d (%+v) classified %v", w, wc, c.Class(w))
		}
	}
	// A representative interior off-axis worker is F: (3,1) has two inner
	// neighbours (4,1) and (3,2).
	f := m.ID(Coord{X: 3, Y: 1})
	if c.Class(f) != ClassF {
		t.Fatalf("worker (3,1) classified %v, want F", c.Class(f))
	}
}

func TestClassifyIncompleteAllotment(t *testing.T) {
	// Clipping at the grid edge creates X members off the axes: a worker
	// whose other inner neighbour was never allotted. Build an allotment
	// with a hole to exercise this.
	m, src := simPlatform(t)
	full, _ := NewAllotment(m, src, 2)
	var cores []CoreID
	removed := m.ID(Coord{X: 4, Y: 1}) // inner neighbour of (3,1)... (4,1) is zone 1
	for _, w := range full.Members() {
		if w != removed && w != src {
			cores = append(cores, w)
		}
	}
	a, err := NewAllotmentFromCores(m, src, cores)
	if err != nil {
		t.Fatal(err)
	}
	c := Classify(a)
	// (3,1) is at distance 2; its inner neighbours are (4,1) [removed] and
	// (3,2) [present] -> exactly one -> X (and Z, being at max distance).
	w := m.ID(Coord{X: 3, Y: 1})
	if !c.Class(w).IsX() {
		t.Fatalf("worker (3,1) with one inner neighbour classified %v, want X-like", c.Class(w))
	}
	// (4,0) at distance 2 lost its only inner neighbour (4,1): zero inner
	// neighbours -> not X; at max distance -> Z.
	w = m.ID(Coord{X: 4, Y: 0})
	if got := c.Class(w); got != ClassZ {
		t.Fatalf("worker (4,0) classified %v, want Z", got)
	}
	if c.Complete() {
		t.Fatal("allotment with a hole must be incomplete")
	}
	cFull := Classify(full)
	if !cFull.Complete() {
		t.Fatal("full allotment must be complete")
	}
}

func TestOuterVictimsMutualAndBounded(t *testing.T) {
	// O_w members are at distance 1, one zone out, and allotted.
	m, src := numaPlatform(t)
	c := classifyFull(t, m, src, 4)
	a := c.Allotment()
	for _, w := range a.Members() {
		if w == src {
			continue
		}
		for _, o := range c.OuterVictims(w) {
			if m.HopCount(w, o) != 1 {
				t.Fatalf("O_%d member %d not at distance 1", w, o)
			}
			if a.ZoneOf(o) != a.ZoneOf(w)+1 {
				t.Fatalf("O_%d member %d not in outer zone", w, o)
			}
		}
		if len(c.OuterVictims(w)) > 3 {
			// On a 2D mesh a worker has at most 3 outer neighbours (the
			// fourth neighbour is always weakly inner).
			t.Fatalf("µ(O_%d) = %d > 3 on a 2D mesh", w, len(c.OuterVictims(w)))
		}
	}
}

func TestInteriorXOuterVictimCount(t *testing.T) {
	// An interior on-axis X worker (not at the rim, not clipped) has exactly
	// 3 outer victims: the next axis worker plus two off-axis ones.
	m, src := simPlatform(t)
	c := classifyFull(t, m, src, 4)
	w := m.ID(Coord{X: 3, Y: 2}) // one hop left of source, interior
	if got := len(c.OuterVictims(w)); got != 3 {
		t.Fatalf("µ(O_(3,2)) = %d, want 3", got)
	}
}

func TestRingNeighbors(t *testing.T) {
	m, src := simPlatform(t)
	c := classifyFull(t, m, src, 2)
	// (3,1) is in zone 2; its ring-adjacent (diagonal) same-zone neighbours
	// are (2,2) and (4,0). The straight-line distance-2 cores (5,1) and
	// (3,3) are in the same zone but not ring-adjacent.
	w := m.ID(Coord{X: 3, Y: 1})
	rn := c.RingNeighbors(w)
	want := map[CoreID]bool{
		m.ID(Coord{X: 2, Y: 2}): true,
		m.ID(Coord{X: 4, Y: 0}): true,
	}
	if len(rn) != len(want) {
		t.Fatalf("ring neighbours of (3,1) = %v, want %v", rn, want)
	}
	for _, r := range rn {
		if !want[r] {
			t.Fatalf("unexpected ring neighbour %d (%+v)", r, m.Coord(r))
		}
	}
}

func TestInnerNeighbors(t *testing.T) {
	m, src := simPlatform(t)
	c := classifyFull(t, m, src, 2)
	// Zone-1 workers' only inner neighbour is the source.
	for _, w := range c.Allotment().Zone(1) {
		in := c.InnerNeighbors(w)
		if len(in) != 1 || in[0] != src {
			t.Fatalf("inner neighbours of zone-1 worker %d = %v, want [%d]", w, in, src)
		}
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassNone:   ".",
		ClassSource: "s",
		ClassX:      "X",
		ClassZ:      "Z",
		ClassXZ:     "XZ",
		ClassF:      "F",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Error("unknown class string wrong")
	}
}

func TestClassPredicates(t *testing.T) {
	if !ClassX.IsX() || !ClassXZ.IsX() || ClassZ.IsX() || ClassF.IsX() {
		t.Error("IsX predicate wrong")
	}
	if !ClassZ.IsZ() || !ClassXZ.IsZ() || ClassX.IsZ() || ClassF.IsZ() {
		t.Error("IsZ predicate wrong")
	}
}

func BenchmarkClassify27(b *testing.B) {
	m := MustMesh(8, 4)
	m.Reserve(0, 1)
	a, _ := NewAllotment(m, 20, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(a)
	}
}

func BenchmarkZoneSeries(b *testing.B) {
	m := MustMesh(8, 6)
	m.Reserve(0, 1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ZoneSeries(m, 28, 6)
	}
}
