package topo

import "testing"

// The paper's theoretical model allows topologies of up to three
// dimensions ("cores can be modeled in one dimension, as if placed in a
// row... Different dimensions produce a different classification although
// the implications remain the same", §2.2). These tests pin down the
// classification on 1D and 3D meshes.

func TestClassify1DRow(t *testing.T) {
	// 16 cores in a row, source in the middle: zones are pairs of cores,
	// every non-source worker has exactly one inner neighbour, so the
	// whole allotment is class X (rim members are X∩Z).
	m := MustMesh(16)
	src := CoreID(8)
	a, err := NewAllotment(m, src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 7 { // source + 2 per zone * 3 zones
		t.Fatalf("size = %d, want 7", a.Size())
	}
	c := Classify(a)
	if len(c.F()) != 0 {
		t.Fatalf("1D mesh has F members: %v", c.F())
	}
	for _, w := range a.Members() {
		if w == src {
			continue
		}
		if !c.Class(w).IsX() {
			t.Fatalf("1D worker %d classified %v, want X-like", w, c.Class(w))
		}
	}
	if got := len(c.Z()); got != 2 {
		t.Fatalf("|Z| = %d, want 2 (the two rim cores)", got)
	}
}

func TestClassify1DEdgeClipping(t *testing.T) {
	// Source near the row's end: zones clip to one side.
	m := MustMesh(8)
	a, err := NewAllotment(m, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Within distance 3 of core 1: cores 0..4 -> size 5.
	if a.Size() != 5 {
		t.Fatalf("size = %d, want 5", a.Size())
	}
	c := Classify(a)
	// Core 4 is the only distance-3 member: Z = {4}; core 0 is at
	// distance 1 on the clipped side.
	if got := len(c.Z()); got != 1 {
		t.Fatalf("|Z| = %d, want 1", got)
	}
}

func TestZoneSeries1D(t *testing.T) {
	m := MustMesh(32)
	got := ZoneSeries(m, 16, 4)
	want := []int{3, 5, 7, 9} // 1 + 2d for an unclipped row
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
}

func TestClassify3DCube(t *testing.T) {
	// 5x5x5 cube, centered source: zone sizes follow the 3D Manhattan
	// ball; interior X members are the six axis neighbours.
	m := MustMesh(5, 5, 5)
	src := m.ID(Coord{X: 2, Y: 2, Z: 2})
	a, err := NewAllotment(m, src, 2)
	if err != nil {
		t.Fatal(err)
	}
	// |ball(1)| = 7, zone 2 adds 18 (octahedron shell): size 25.
	if a.Size() != 25 {
		t.Fatalf("size = %d, want 25", a.Size())
	}
	c := Classify(a)
	// Zone 1: six axis neighbours, each with exactly one inner neighbour
	// (the source) -> X.
	for _, w := range a.Zone(1) {
		if !c.Class(w).IsX() {
			t.Fatalf("zone-1 member %d classified %v", w, c.Class(w))
		}
	}
	// Zone-2 axis tips ((4,2,2) etc.) are X∩Z.
	tip := m.ID(Coord{X: 4, Y: 2, Z: 2})
	if c.Class(tip) != ClassXZ {
		t.Fatalf("axis tip classified %v, want XZ", c.Class(tip))
	}
	// Zone-2 diagonal members ((3,3,2) etc.) have two inner neighbours ->
	// Z only.
	diag := m.ID(Coord{X: 3, Y: 3, Z: 2})
	if c.Class(diag) != ClassZ {
		t.Fatalf("diagonal rim classified %v, want Z", c.Class(diag))
	}
	// Classes X and Z cover everything at d=2 (no interior non-axis
	// members yet): F is empty.
	if len(c.F()) != 0 {
		t.Fatalf("unexpected F members at d=2: %v", c.F())
	}
	// At d=3, interior non-axis members appear: F non-empty.
	a3, _ := NewAllotment(m, src, 3)
	if c3 := Classify(a3); len(c3.F()) == 0 {
		t.Fatal("3D d=3 allotment must have F members")
	}
}

func TestOuterVictims3D(t *testing.T) {
	// A 3D interior axis worker has at most 5 outer distance-1 neighbours.
	m := MustMesh(7, 7, 7)
	src := m.ID(Coord{X: 3, Y: 3, Z: 3})
	a, err := NewAllotment(m, src, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := Classify(a)
	w := m.ID(Coord{X: 4, Y: 3, Z: 3}) // zone-1 axis worker
	if got := len(c.OuterVictims(w)); got != 5 {
		t.Fatalf("µ(O) = %d, want 5 in 3D", got)
	}
}

func TestRingNeighbors3D(t *testing.T) {
	// Diagonal ring neighbours in 3D: one hop along each of two axes.
	m := MustMesh(5, 5, 5)
	src := m.ID(Coord{X: 2, Y: 2, Z: 2})
	a, err := NewAllotment(m, src, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := Classify(a)
	w := m.ID(Coord{X: 3, Y: 3, Z: 2}) // zone-2 diagonal member
	rn := c.RingNeighbors(w)
	for _, r := range rn {
		if m.HopCount(w, r) != 2 || a.ZoneOf(r) != 2 {
			t.Fatalf("bad ring neighbour %d", r)
		}
	}
	if len(rn) == 0 {
		t.Fatal("3D ring neighbours missing")
	}
}
