package topo

import (
	"fmt"
	"sort"
)

// Allotment is the set of workers granted to one workload: a source core s
// plus further members, each at some hop count from s. The diaspora d is the
// maximum such distance. A zone Z_k is the subset of members at distance
// exactly k; the allotment changes size one whole zone at a time (§4.1 of
// the paper: "a zone is the unit at which the size of an allotment changes").
//
// Allotment is immutable; Grow and Shrink return new values. This makes it
// safe to share between the runtime scheduler and the estimation helper.
type Allotment struct {
	mesh     *Mesh
	source   CoreID
	diaspora int
	members  []CoreID // sorted by (zone, id); includes source
	isMember []bool   // indexed by CoreID
}

// NewAllotment builds the complete allotment of all usable cores within
// hop count d of source (source itself included). d must be >= 1: the
// minimal allotment in the paper is "zone 1 plus the source".
func NewAllotment(m *Mesh, source CoreID, d int) (*Allotment, error) {
	if !m.Valid(source) {
		return nil, fmt.Errorf("topo: invalid source core %d", source)
	}
	if m.Reserved(source) {
		return nil, fmt.Errorf("topo: source core %d is reserved", source)
	}
	if d < 1 {
		return nil, fmt.Errorf("topo: diaspora %d < 1", d)
	}
	var members []CoreID
	for id := CoreID(0); int(id) < m.NumCores(); id++ {
		if m.Reserved(id) {
			continue
		}
		if m.HopCount(source, id) <= d {
			members = append(members, id)
		}
	}
	return newAllotmentFromMembers(m, source, members)
}

// NewAllotmentFromCores builds a (possibly incomplete) allotment from an
// explicit member set. Multiprogrammed deployments (paper Fig. 2) produce
// exactly such allotments: each application holds whichever cores the system
// scheduler could spare, so classes are usually incomplete. The source is
// added if absent; reserved or invalid cores are rejected.
func NewAllotmentFromCores(m *Mesh, source CoreID, cores []CoreID) (*Allotment, error) {
	if !m.Valid(source) {
		return nil, fmt.Errorf("topo: invalid source core %d", source)
	}
	if m.Reserved(source) {
		return nil, fmt.Errorf("topo: source core %d is reserved", source)
	}
	seen := make(map[CoreID]bool, len(cores)+1)
	members := []CoreID{source}
	seen[source] = true
	for _, id := range cores {
		if !m.Valid(id) {
			return nil, fmt.Errorf("topo: invalid member core %d", id)
		}
		if m.Reserved(id) {
			return nil, fmt.Errorf("topo: member core %d is reserved", id)
		}
		if !seen[id] {
			seen[id] = true
			members = append(members, id)
		}
	}
	return newAllotmentFromMembers(m, source, members)
}

func newAllotmentFromMembers(m *Mesh, source CoreID, members []CoreID) (*Allotment, error) {
	a := &Allotment{
		mesh:     m,
		source:   source,
		members:  append([]CoreID(nil), members...),
		isMember: make([]bool, m.NumCores()),
	}
	for _, id := range a.members {
		a.isMember[id] = true
		if hc := m.HopCount(source, id); hc > a.diaspora {
			a.diaspora = hc
		}
	}
	sort.Slice(a.members, func(i, j int) bool {
		zi, zj := m.HopCount(source, a.members[i]), m.HopCount(source, a.members[j])
		if zi != zj {
			return zi < zj
		}
		return a.members[i] < a.members[j]
	})
	return a, nil
}

// Mesh returns the topology the allotment lives on.
func (a *Allotment) Mesh() *Mesh { return a.mesh }

// Source returns the source worker s.
func (a *Allotment) Source() CoreID { return a.source }

// Diaspora returns d, the maximum hop count of any member from the source.
func (a *Allotment) Diaspora() int { return a.diaspora }

// Size returns the number of workers, including the source.
func (a *Allotment) Size() int { return len(a.members) }

// Members returns all member cores sorted by (zone, id). The slice is shared;
// callers must not modify it.
func (a *Allotment) Members() []CoreID { return a.members }

// Contains reports whether core id belongs to the allotment.
func (a *Allotment) Contains(id CoreID) bool {
	return a.mesh.Valid(id) && a.isMember[id]
}

// ZoneOf returns the zone index (hop count from the source) of member id.
// It panics if id is not a member.
func (a *Allotment) ZoneOf(id CoreID) int {
	if !a.Contains(id) {
		panic(fmt.Sprintf("topo: core %d is not in the allotment", id))
	}
	return a.mesh.HopCount(a.source, id)
}

// Zone returns the members at distance exactly k from the source, sorted by
// id. Zone(0) is the singleton {source}.
func (a *Allotment) Zone(k int) []CoreID {
	var out []CoreID
	for _, id := range a.members {
		if a.mesh.HopCount(a.source, id) == k {
			out = append(out, id)
		}
	}
	return out
}

// Grow returns the allotment extended by the complete next zone Z_{d+1}
// (all usable cores at distance d+1). ok is false — and the receiver is
// returned unchanged — when no usable cores exist at distance d+1.
func (a *Allotment) Grow() (next *Allotment, ok bool) {
	d := a.diaspora + 1
	added := false
	members := append([]CoreID(nil), a.members...)
	for _, id := range a.mesh.Ring(a.source, d) {
		if a.mesh.Reserved(id) || a.isMember[id] {
			continue
		}
		members = append(members, id)
		added = true
	}
	if !added {
		return a, false
	}
	n, err := newAllotmentFromMembers(a.mesh, a.source, members)
	if err != nil {
		return a, false
	}
	return n, true
}

// Shrink returns the allotment with the outermost zone Z_d removed. ok is
// false — and the receiver is returned unchanged — when the allotment is
// already at the minimum (zone 1 plus the source).
func (a *Allotment) Shrink() (next *Allotment, ok bool) {
	if a.diaspora <= 1 {
		return a, false
	}
	var members []CoreID
	for _, id := range a.members {
		if a.mesh.HopCount(a.source, id) < a.diaspora {
			members = append(members, id)
		}
	}
	n, err := newAllotmentFromMembers(a.mesh, a.source, members)
	if err != nil {
		return a, false
	}
	return n, true
}

// ZoneSeries returns the cumulative allotment sizes for diaspora values
// 1..maxD on mesh m with the given source; these are the sizes the system
// scheduler steps the workload's worker count through, and the fixed sizes
// the paper's baselines use (5, 12, 20, 27 on the 8x4/32-core platform and
// 5, 13, 24, 35, 42, 45 on the 8x6/48-core platform).
func ZoneSeries(m *Mesh, source CoreID, maxD int) []int {
	out := make([]int, 0, maxD)
	for d := 1; d <= maxD; d++ {
		n := 0
		for id := CoreID(0); int(id) < m.NumCores(); id++ {
			if m.Reserved(id) {
				continue
			}
			if m.HopCount(source, id) <= d {
				n++
			}
		}
		out = append(out, n)
	}
	return out
}

// DiasporaForSize returns the smallest diaspora whose complete allotment
// reaches at least size workers, and that allotment. ok is false when even
// the maximum diaspora yields fewer than size workers.
func DiasporaForSize(m *Mesh, source CoreID, size int) (d int, a *Allotment, ok bool) {
	maxD := m.MaxDiaspora(source)
	for d = 1; d <= maxD; d++ {
		cur, err := NewAllotment(m, source, d)
		if err != nil {
			return 0, nil, false
		}
		if cur.Size() >= size {
			return d, cur, true
		}
	}
	cur, err := NewAllotment(m, source, maxD)
	if err != nil {
		return 0, nil, false
	}
	return maxD, cur, false
}

// String describes the allotment, e.g. "allotment src=20 d=4 size=27".
func (a *Allotment) String() string {
	return fmt.Sprintf("allotment src=%d d=%d size=%d", a.source, a.diaspora, a.Size())
}
