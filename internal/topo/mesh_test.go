package topo

import (
	"testing"
	"testing/quick"
)

func TestNewMeshDims(t *testing.T) {
	cases := []struct {
		dims    []int
		cores   int
		wantErr bool
	}{
		{[]int{8}, 8, false},
		{[]int{8, 4}, 32, false},
		{[]int{8, 6}, 48, false},
		{[]int{4, 4, 4}, 64, false},
		{[]int{}, 0, true},
		{[]int{1, 2, 3, 4}, 0, true},
		{[]int{0, 4}, 0, true},
		{[]int{4, -1}, 0, true},
	}
	for _, c := range cases {
		m, err := NewMesh(c.dims...)
		if c.wantErr {
			if err == nil {
				t.Errorf("NewMesh(%v): expected error", c.dims)
			}
			continue
		}
		if err != nil {
			t.Fatalf("NewMesh(%v): %v", c.dims, err)
		}
		if m.NumCores() != c.cores {
			t.Errorf("NewMesh(%v).NumCores() = %d, want %d", c.dims, m.NumCores(), c.cores)
		}
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	m := MustMesh(8, 6)
	for id := CoreID(0); int(id) < m.NumCores(); id++ {
		if got := m.ID(m.Coord(id)); got != id {
			t.Fatalf("round trip failed for %d: got %d", id, got)
		}
	}
}

func TestCoordIDRoundTrip3D(t *testing.T) {
	m := MustMesh(3, 4, 5)
	for id := CoreID(0); int(id) < m.NumCores(); id++ {
		if got := m.ID(m.Coord(id)); got != id {
			t.Fatalf("round trip failed for %d: got %d", id, got)
		}
	}
}

func TestIDOutOfBounds(t *testing.T) {
	m := MustMesh(8, 4)
	for _, c := range []Coord{{X: -1}, {X: 8}, {Y: -1}, {Y: 4}, {Z: 1}, {X: 8, Y: 4}} {
		if got := m.ID(c); got != NoCore {
			t.Errorf("ID(%+v) = %d, want NoCore", c, got)
		}
	}
}

func TestRowMajorLayout(t *testing.T) {
	// Paper Fig. 9(a): core 20 on the 8x4 mesh is at (4, 2).
	m := MustMesh(8, 4)
	if c := m.Coord(20); c != (Coord{X: 4, Y: 2}) {
		t.Fatalf("core 20 = %+v, want (4,2)", c)
	}
	// Paper Fig. 9(b): core 28 on the 8x6 mesh is at (4, 3).
	m = MustMesh(8, 6)
	if c := m.Coord(28); c != (Coord{X: 4, Y: 3}) {
		t.Fatalf("core 28 = %+v, want (4,3)", c)
	}
}

func TestHopCountProperties(t *testing.T) {
	m := MustMesh(8, 6)
	n := CoreID(m.NumCores())
	// Symmetry and identity.
	f := func(ai, bi uint8) bool {
		a, b := CoreID(ai)%n, CoreID(bi)%n
		if m.HopCount(a, a) != 0 {
			return false
		}
		return m.HopCount(a, b) == m.HopCount(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Triangle inequality.
	g := func(ai, bi, ci uint8) bool {
		a, b, c := CoreID(ai)%n, CoreID(bi)%n, CoreID(ci)%n
		return m.HopCount(a, c) <= m.HopCount(a, b)+m.HopCount(b, c)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsNoWrap(t *testing.T) {
	m := MustMesh(8, 4)
	// Corner (0,0) has exactly 2 neighbours; no wrap-around.
	nb := m.Neighbors(m.ID(Coord{X: 0, Y: 0}))
	if len(nb) != 2 {
		t.Fatalf("corner has %d neighbours, want 2: %v", len(nb), nb)
	}
	// Interior core has 4.
	nb = m.Neighbors(m.ID(Coord{X: 4, Y: 2}))
	if len(nb) != 4 {
		t.Fatalf("interior core has %d neighbours, want 4: %v", len(nb), nb)
	}
	for _, n := range nb {
		if m.HopCount(m.ID(Coord{X: 4, Y: 2}), n) != 1 {
			t.Fatalf("neighbour %d not at distance 1", n)
		}
	}
}

func TestNeighbors3D(t *testing.T) {
	m := MustMesh(3, 3, 3)
	center := m.ID(Coord{X: 1, Y: 1, Z: 1})
	if nb := m.Neighbors(center); len(nb) != 6 {
		t.Fatalf("3D interior core has %d neighbours, want 6", len(nb))
	}
}

func TestRingPartitionsWithinDistance(t *testing.T) {
	m := MustMesh(8, 6)
	center := CoreID(28)
	total := 0
	for d := 0; d <= 20; d++ {
		total += len(m.Ring(center, d))
	}
	if total != m.NumCores() {
		t.Fatalf("rings cover %d cores, want %d", total, m.NumCores())
	}
	// WithinDistance(d) = union of rings 0..d.
	for d := 0; d <= 6; d++ {
		want := 0
		for k := 0; k <= d; k++ {
			want += len(m.Ring(center, k))
		}
		if got := len(m.WithinDistance(center, d)); got != want {
			t.Fatalf("WithinDistance(%d) = %d cores, want %d", d, got, want)
		}
	}
}

func TestReserve(t *testing.T) {
	m := MustMesh(8, 4)
	if m.Usable() != 32 {
		t.Fatalf("Usable = %d, want 32", m.Usable())
	}
	m.Reserve(0, 1)
	m.Reserve(1) // idempotent
	if m.Usable() != 30 {
		t.Fatalf("Usable = %d, want 30", m.Usable())
	}
	if !m.Reserved(0) || !m.Reserved(1) || m.Reserved(2) {
		t.Fatal("reservation flags wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := MustMesh(4, 4)
	c := m.Clone()
	m.Reserve(3)
	if c.Reserved(3) {
		t.Fatal("clone shares reservation state")
	}
}

func TestMaxDiaspora(t *testing.T) {
	m := MustMesh(8, 4)
	m.Reserve(0, 1)
	// From (4,2), the farthest usable core: (0,0) is reserved; (7,0) gives
	// 3+2=5; (0,1)=4+1=5; (0,3)=4+1=5.
	if d := m.MaxDiaspora(20); d != 5 {
		t.Fatalf("MaxDiaspora(20) = %d, want 5", d)
	}
}

func TestString(t *testing.T) {
	m := MustMesh(8, 4)
	m.Reserve(0, 1)
	if s := m.String(); s != "mesh 8x4 (32 cores, 2 reserved)" {
		t.Fatalf("String() = %q", s)
	}
	m1 := MustMesh(16)
	if s := m1.String(); s != "mesh 16 (16 cores, 0 reserved)" {
		t.Fatalf("String() = %q", s)
	}
}
