// Package topo models processor topologies for Deterministic Victim
// Selection (DVS) and Palirria's resource estimation.
//
// The paper develops DVS over a generic model in which cores are placed on a
// mesh of up to three dimensions; the communication distance between two
// workers is the hop count of the shortest path. Connections do not wrap
// around edges. The packages in this repository use topo for:
//
//   - mapping worker threads to cores,
//   - computing zones (sets of workers at equal distance from the source),
//   - classifying allotment members into the classes X, Z and F on which the
//     Diaspora Malleability Conditions are evaluated, and
//   - enumerating the ordered neighbourhoods DVS builds victim sets from.
package topo

import (
	"fmt"
	"sort"
)

// CoreID identifies a core by its linear index into the mesh, using
// row-major order: id = (z*DimY + y)*DimX + x.
type CoreID int

// NoCore is the sentinel for "no core".
const NoCore CoreID = -1

// Coord is a position on the mesh. Unused dimensions are zero.
type Coord struct {
	X, Y, Z int
}

// Mesh is a 1-, 2- or 3-dimensional grid of cores with unit communication
// distance between adjacent cores and no wrap-around links. A subset of the
// cores may be reserved: reserved cores host the system scheduler and helper
// threads (cores 0 and 1 in the paper) and are never allotted to a workload.
type Mesh struct {
	dimX, dimY, dimZ int
	reserved         []bool
}

// NewMesh returns a mesh with the given extents. One, two or three extents
// may be given; each must be positive.
func NewMesh(dims ...int) (*Mesh, error) {
	if len(dims) < 1 || len(dims) > 3 {
		return nil, fmt.Errorf("topo: mesh needs 1-3 dimensions, got %d", len(dims))
	}
	d := [3]int{1, 1, 1}
	for i, v := range dims {
		if v <= 0 {
			return nil, fmt.Errorf("topo: dimension %d is %d, must be positive", i, v)
		}
		d[i] = v
	}
	m := &Mesh{dimX: d[0], dimY: d[1], dimZ: d[2]}
	m.reserved = make([]bool, m.NumCores())
	return m, nil
}

// MustMesh is NewMesh that panics on error; intended for tests and fixed
// experiment configurations.
func MustMesh(dims ...int) *Mesh {
	m, err := NewMesh(dims...)
	if err != nil {
		panic(err)
	}
	return m
}

// Dims returns the mesh extents (X, Y, Z); trailing singleton dimensions are
// included so the result is always length 3.
func (m *Mesh) Dims() (x, y, z int) { return m.dimX, m.dimY, m.dimZ }

// NumCores returns the total number of cores on the mesh.
func (m *Mesh) NumCores() int { return m.dimX * m.dimY * m.dimZ }

// Valid reports whether id names a core on this mesh.
func (m *Mesh) Valid(id CoreID) bool { return id >= 0 && int(id) < m.NumCores() }

// Coord returns the position of core id. It panics on an invalid id.
func (m *Mesh) Coord(id CoreID) Coord {
	if !m.Valid(id) {
		panic(fmt.Sprintf("topo: invalid core %d", id))
	}
	i := int(id)
	x := i % m.dimX
	i /= m.dimX
	y := i % m.dimY
	z := i / m.dimY
	return Coord{X: x, Y: y, Z: z}
}

// ID returns the core at position c, or NoCore if c lies outside the mesh.
func (m *Mesh) ID(c Coord) CoreID {
	if !m.InBounds(c) {
		return NoCore
	}
	return CoreID((c.Z*m.dimY+c.Y)*m.dimX + c.X)
}

// InBounds reports whether c lies on the mesh.
func (m *Mesh) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < m.dimX &&
		c.Y >= 0 && c.Y < m.dimY &&
		c.Z >= 0 && c.Z < m.dimZ
}

// HopCount returns the communication distance between two cores: the
// Manhattan distance on the mesh (shortest path over unit links).
func (m *Mesh) HopCount(a, b CoreID) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y) + abs(ca.Z-cb.Z)
}

// Neighbors returns the cores at distance exactly 1 from id, in a fixed
// deterministic order (-X, +X, -Y, +Y, -Z, +Z). Reserved cores are included;
// callers that build allotments filter them.
func (m *Mesh) Neighbors(id CoreID) []CoreID {
	c := m.Coord(id)
	out := make([]CoreID, 0, 6)
	for _, d := range [6]Coord{
		{X: -1}, {X: 1}, {Y: -1}, {Y: 1}, {Z: -1}, {Z: 1},
	} {
		n := Coord{X: c.X + d.X, Y: c.Y + d.Y, Z: c.Z + d.Z}
		if nid := m.ID(n); nid != NoCore {
			out = append(out, nid)
		}
	}
	return out
}

// WithinDistance returns all cores at hop count <= d from center, sorted by
// (distance, id). Reserved cores are included.
func (m *Mesh) WithinDistance(center CoreID, d int) []CoreID {
	var out []CoreID
	for id := CoreID(0); int(id) < m.NumCores(); id++ {
		if m.HopCount(center, id) <= d {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := m.HopCount(center, out[i]), m.HopCount(center, out[j])
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	return out
}

// Ring returns all cores at hop count exactly d from center, sorted by id.
func (m *Mesh) Ring(center CoreID, d int) []CoreID {
	var out []CoreID
	for id := CoreID(0); int(id) < m.NumCores(); id++ {
		if m.HopCount(center, id) == d {
			out = append(out, id)
		}
	}
	return out
}

// Reserve marks cores as reserved for the system layer. Reserved cores are
// never part of an allotment. Reserving an already reserved core is a no-op.
func (m *Mesh) Reserve(ids ...CoreID) {
	for _, id := range ids {
		if !m.Valid(id) {
			panic(fmt.Sprintf("topo: reserving invalid core %d", id))
		}
		m.reserved[id] = true
	}
}

// Reserved reports whether core id is reserved.
func (m *Mesh) Reserved(id CoreID) bool { return m.Valid(id) && m.reserved[int(id)] }

// Usable returns the number of non-reserved cores.
func (m *Mesh) Usable() int {
	n := 0
	for _, r := range m.reserved {
		if !r {
			n++
		}
	}
	return n
}

// MaxDiaspora returns the largest hop count from source to any usable core:
// the diaspora beyond which growing an allotment adds no workers.
func (m *Mesh) MaxDiaspora(source CoreID) int {
	max := 0
	for id := CoreID(0); int(id) < m.NumCores(); id++ {
		if m.reserved[id] || id == source {
			continue
		}
		if hc := m.HopCount(source, id); hc > max {
			max = hc
		}
	}
	return max
}

// Clone returns a deep copy of the mesh, including reservations.
func (m *Mesh) Clone() *Mesh {
	c := &Mesh{dimX: m.dimX, dimY: m.dimY, dimZ: m.dimZ}
	c.reserved = append([]bool(nil), m.reserved...)
	return c
}

// String describes the mesh, e.g. "mesh 8x4 (32 cores, 2 reserved)".
func (m *Mesh) String() string {
	dims := fmt.Sprintf("%d", m.dimX)
	if m.dimY > 1 || m.dimZ > 1 {
		dims += fmt.Sprintf("x%d", m.dimY)
	}
	if m.dimZ > 1 {
		dims += fmt.Sprintf("x%d", m.dimZ)
	}
	return fmt.Sprintf("mesh %s (%d cores, %d reserved)", dims, m.NumCores(), m.NumCores()-m.Usable())
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
