package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"palirria/internal/obs"
	"palirria/internal/obs/stream"
)

// NodePicker is the routing policy the Router delegates to. The pick
// sub-package provides the production implementation (power-of-two
// choices over spare parallelism with circuit breakers and sticky keys);
// it lives below this interface so cluster need not import it.
type NodePicker interface {
	// PickSticky chooses a target, honouring a sticky key ("" disables
	// stickiness) and excluding already-failed node ids.
	PickSticky(key string, exclude ...string) (PeerStatus, error)
	// Report feeds the attempt's outcome back into breakers/stickiness.
	Report(id string, ok bool)
}

// RouterConfig wires a Router.
type RouterConfig struct {
	// Node is the router's own gossip member — the source of the
	// membership view shown at /cluster. Required.
	Node *Node
	// Picker chooses targets. Required.
	Picker NodePicker
	// Retries bounds how many *additional* nodes a failed submission is
	// tried against (default 2).
	Retries int
	// Backoff is the pause before each retry (default 10ms, doubling).
	Backoff time.Duration
	// Client performs the proxied submissions; defaults to a client with
	// a 60s timeout (jobs run synchronously on the serve node).
	Client *http.Client
	// Events, when set, publishes routed/failover events.
	Events *stream.Hub
	// Metrics, when set, registers routing counters.
	Metrics *obs.Registry
}

// Router proxies /submit to the node the picker chooses, with bounded
// retry-on-another-node failover. A retry is attempted only on transport
// errors and 5xx replies — a 429 (shedding) or 503 (draining) is a valid
// answer from a healthy node and is returned to the client as-is; the
// gossip shed flag already steers the next picks away.
type Router struct {
	cfg RouterConfig

	routed     atomic.Int64
	retried    atomic.Int64
	failedOver atomic.Int64
	failed     atomic.Int64
}

// NewRouter validates cfg and builds the router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("cluster: RouterConfig.Node required")
	}
	if cfg.Picker == nil {
		return nil, fmt.Errorf("cluster: RouterConfig.Picker required")
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}
	rt := &Router{cfg: cfg}
	if cfg.Metrics != nil {
		rt.registerMetrics(cfg.Metrics)
	}
	return rt, nil
}

// Handler mounts the router's HTTP surface: the /submit proxy, the
// /cluster membership view, /gossip (the router is a full gossip member),
// and /healthz.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/submit", rt.handleSubmit)
	mux.HandleFunc("/gossip", rt.cfg.Node.GossipHandler())
	mux.HandleFunc("/cluster", rt.cfg.Node.ClusterHandler())
	return mux
}

// stickyKey derives the submission's sticky key: an explicit ?sticky=K
// wins; otherwise batch submissions (count>1) stick by client address, so
// a DAG-free batch prefix from one producer lands on one node.
func stickyKey(r *http.Request) string {
	if k := r.URL.Query().Get("sticky"); k != "" {
		return k
	}
	if c, err := strconv.Atoi(r.URL.Query().Get("count")); err == nil && c > 1 {
		return "addr:" + r.RemoteAddr
	}
	return ""
}

// handleSubmit proxies one submission, failing over across nodes. The
// submission body is buffered (palirria-serve submissions are query-only,
// so this is tiny) to make the retries safe to replay.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	key := stickyKey(r)
	count := int64(1)
	if c, err := strconv.Atoi(r.URL.Query().Get("count")); err == nil && c > 1 {
		count = int64(c)
	}

	var tried []string
	var lastErr error
	backoff := rt.cfg.Backoff
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		target, err := rt.cfg.Picker.PickSticky(key, tried...)
		if err != nil {
			lastErr = err
			break
		}
		if attempt > 0 {
			rt.retried.Add(1)
			select {
			case <-time.After(backoff):
			case <-r.Context().Done():
				http.Error(w, r.Context().Err().Error(), http.StatusRequestTimeout)
				return
			}
			backoff *= 2
		}
		status, hdr, respBody, err := rt.forward(r.Context(), &target, r.URL.RawQuery, body)
		if err != nil || status >= http.StatusInternalServerError {
			rt.cfg.Picker.Report(target.ID, false)
			tried = append(tried, target.ID)
			cause := "5xx"
			if err != nil {
				cause = err.Error()
				lastErr = err
			} else {
				lastErr = fmt.Errorf("node %s: status %d", target.ID, status)
			}
			rt.failedOver.Add(1)
			rt.publish(stream.Event{
				Kind: stream.KindFailover, Pool: rt.cfg.Node.ID(),
				Node: target.ID, Reason: cause, Arg: count,
			})
			continue
		}
		rt.cfg.Picker.Report(target.ID, true)
		rt.routed.Add(1)
		rt.publish(stream.Event{
			Kind: stream.KindRouted, Pool: rt.cfg.Node.ID(),
			Node: target.ID, Detail: key, Arg: count,
		})
		for k, vs := range hdr {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.Header().Set("X-Palirria-Node", target.ID)
		w.WriteHeader(status)
		w.Write(respBody) //nolint:errcheck // client went away
		return
	}
	rt.failed.Add(1)
	if lastErr == nil {
		lastErr = fmt.Errorf("no attempt made")
	}
	http.Error(w, fmt.Sprintf("cluster submit failed after %d node(s): %v",
		len(tried), lastErr), http.StatusBadGateway)
}

// forward performs one proxied submission against target, buffering the
// response so a failed attempt leaves nothing half-written to the client.
func (rt *Router) forward(ctx context.Context, target *PeerStatus, rawQuery string, body []byte) (int, http.Header, []byte, error) {
	url := target.Addr + "/submit"
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	hdr := http.Header{}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		hdr.Set("Content-Type", ct)
	}
	return resp.StatusCode, hdr, respBody, nil
}

func (rt *Router) publish(ev stream.Event) {
	if rt.cfg.Events != nil {
		rt.cfg.Events.Publish(ev)
	}
}

// Routed, Retried, FailedOver, and Failed expose the routing counters.
func (rt *Router) Routed() int64     { return rt.routed.Load() }
func (rt *Router) Retried() int64    { return rt.retried.Load() }
func (rt *Router) FailedOver() int64 { return rt.failedOver.Load() }
func (rt *Router) Failed() int64     { return rt.failed.Load() }

func (rt *Router) registerMetrics(reg *obs.Registry) {
	lbl := obs.Label{Key: "node", Value: rt.cfg.Node.ID()}
	reg.CounterFunc("palirria_router_routed_total", "Submissions routed to a node successfully.",
		func() float64 { return float64(rt.routed.Load()) }, lbl)
	reg.CounterFunc("palirria_router_retried_total", "Submission attempts that were retries on another node.",
		func() float64 { return float64(rt.retried.Load()) }, lbl)
	reg.CounterFunc("palirria_router_failover_total", "Attempts that failed and triggered failover.",
		func() float64 { return float64(rt.failedOver.Load()) }, lbl)
	reg.CounterFunc("palirria_router_failed_total", "Submissions that exhausted every node.",
		func() float64 { return float64(rt.failed.Load()) }, lbl)
}

// DecodeView parses a /cluster document — shared by palirria-topo's
// -cluster mode and palirria-load's cluster watch table.
func DecodeView(r io.Reader) (View, error) {
	var v View
	err := json.NewDecoder(r).Decode(&v)
	return v, err
}
