package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"palirria/internal/obs/stream"
)

// testNode builds a node with fast timers whose handlers are mounted on an
// httptest server; the node's advertised address is the server's URL.
func testNode(t *testing.T, secret string, join []string, hub *stream.Hub, snap func() Record) (*Node, *httptest.Server) {
	t.Helper()
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	n, err := NewNode(Config{
		Addr:         ts.URL,
		Secret:       secret,
		Snapshot:     snap,
		Join:         join,
		Interval:     20 * time.Millisecond,
		SuspectAfter: 100 * time.Millisecond,
		DeadAfter:    250 * time.Millisecond,
		Events:       hub,
	})
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	mux.HandleFunc("/gossip", n.GossipHandler())
	mux.HandleFunc("/cluster", n.ClusterHandler())
	t.Cleanup(func() { n.Stop(); ts.Close() })
	return n, ts
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestGossipConvergence(t *testing.T) {
	// Three nodes; only n2 and n3 know n1 as a seed, yet all three views
	// must converge transitively through anti-entropy.
	snap := func(desire, allot int) func() Record {
		return func() Record {
			return Record{Desire: desire, Allotment: allot, Spare: allot - desire}
		}
	}
	n1, ts1 := testNode(t, "", nil, nil, snap(1, 4))
	n2, _ := testNode(t, "", []string{ts1.URL}, nil, snap(2, 4))
	n3, _ := testNode(t, "", []string{ts1.URL}, nil, snap(4, 4))
	n1.Start()
	n2.Start()
	n3.Start()

	for _, n := range []*Node{n1, n2, n3} {
		n := n
		waitFor(t, 5*time.Second, "3-member convergence", func() bool {
			alive := 0
			for _, p := range n.View().Peers {
				if p.State == StateAlive {
					alive++
				}
			}
			return alive == 3
		})
	}

	// The merged view carries each peer's load signal.
	v := n1.View()
	spare := map[string]int{}
	for _, p := range v.Peers {
		spare[p.ID] = p.Spare
	}
	if spare[n2.ID()] != 2 || spare[n3.ID()] != 0 {
		t.Fatalf("gossiped spare = %v", spare)
	}
	// Serveable excludes nothing here: all three are alive serve nodes.
	if got := len(n1.Serveable()); got != 3 {
		t.Fatalf("Serveable = %d nodes, want 3", got)
	}
}

func TestSuspicionStateMachine(t *testing.T) {
	hub := stream.NewHub()
	defer hub.Close()
	sub := hub.Subscribe(stream.SubOptions{
		Buf: 256,
		Kinds: []stream.Kind{
			stream.KindPeerUp, stream.KindPeerSuspect, stream.KindPeerDead,
		},
	})
	defer sub.Close()

	n1, ts1 := testNode(t, "", nil, hub, nil)
	n2, _ := testNode(t, "", []string{ts1.URL}, nil, nil)
	n1.Start()
	n2.Start()

	waitFor(t, 5*time.Second, "peer up", func() bool {
		return n1.PeerState(n2.ID()) == StateAlive
	})

	// Silence n2: its record stops advancing, so n1 must walk
	// alive -> suspect -> dead on its own timers.
	n2.Stop()
	waitFor(t, 5*time.Second, "suspicion", func() bool {
		return n1.PeerState(n2.ID()) == StateSuspect
	})
	waitFor(t, 5*time.Second, "death", func() bool {
		return n1.PeerState(n2.ID()) == StateDead
	})

	// The transitions were published in order for n2.
	var kinds []stream.Kind
	timeout := time.After(2 * time.Second)
	for len(kinds) < 3 {
		select {
		case ev := <-sub.Events():
			if ev.Pool == n1.ID() && ev.Node == n2.ID() {
				kinds = append(kinds, ev.Kind)
			}
		case <-timeout:
			t.Fatalf("saw only %v", kinds)
		}
	}
	want := []stream.Kind{stream.KindPeerUp, stream.KindPeerSuspect, stream.KindPeerDead}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("transition order = %v, want %v", kinds, want)
		}
	}

	// A dead peer is not serveable and not a gossip target.
	for _, p := range n1.Serveable() {
		if p.ID == n2.ID() {
			t.Fatal("dead peer still serveable")
		}
	}
}

func TestSuspectRecovery(t *testing.T) {
	n1, ts1 := testNode(t, "", nil, nil, nil)
	n2, _ := testNode(t, "", []string{ts1.URL}, nil, nil)
	n1.Start()
	n2.Start()
	waitFor(t, 5*time.Second, "peer up", func() bool {
		return n1.PeerState(n2.ID()) == StateAlive
	})
	n2.Stop()
	waitFor(t, 5*time.Second, "suspicion", func() bool {
		return n1.PeerState(n2.ID()) == StateSuspect
	})
	// A newer record revives the suspect (it was slow, not dead). The
	// stopped node no longer gossips on its own, so inject its advanced
	// heartbeat into n1 directly — exactly what a relayed record does.
	rec := n2.self(n2.hb.Add(1))
	n1.merge(&rec)
	if got := n1.PeerState(n2.ID()); got != StateAlive {
		t.Fatalf("suspect with fresh record = %q, want alive", got)
	}
}

func TestBadSignatureRejected(t *testing.T) {
	n1, ts1 := testNode(t, "s3cret", nil, nil, nil)
	n2, _ := testNode(t, "wrong", []string{ts1.URL}, nil, nil)
	n1.Start()
	n2.Start()
	// n2 keeps announcing itself under the wrong secret: n1 must reject
	// every record and never admit it to the membership table.
	waitFor(t, 2*time.Second, "bad signatures counted", func() bool {
		return n1.badSigs.Load() > 0
	})
	if st := n1.PeerState(n2.ID()); st != "" {
		t.Fatalf("forged peer admitted with state %q", st)
	}
}
