package cluster

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"palirria/internal/obs/stream"
)

var errPickExhausted = errors.New("scripted picker exhausted")

// scriptedPicker hands out targets in order and records outcome reports.
type scriptedPicker struct {
	mu      sync.Mutex
	targets []PeerStatus
	next    int
	keys    []string
	reports map[string][]bool
}

func (s *scriptedPicker) PickSticky(key string, exclude ...string) (PeerStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys = append(s.keys, key)
outer:
	for ; s.next < len(s.targets); s.next++ {
		t := s.targets[s.next]
		for _, id := range exclude {
			if id == t.ID {
				continue outer
			}
		}
		s.next++
		return t, nil
	}
	return PeerStatus{}, errPickExhausted
}

func (s *scriptedPicker) Report(id string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reports == nil {
		s.reports = map[string][]bool{}
	}
	s.reports[id] = append(s.reports[id], ok)
}

// testRouter builds a Router over a non-gossiping Node and the picker.
func testRouter(t *testing.T, p NodePicker, hub *stream.Hub) *Router {
	t.Helper()
	node, err := NewNode(Config{Addr: "http://router.test", Role: RoleRouter})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterConfig{Node: node, Picker: p, Retries: 2, Backoff: 1, Events: hub})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func peerFor(ts *httptest.Server, id string) PeerStatus {
	return PeerStatus{
		Record: Record{ID: id, Addr: ts.URL, Role: RoleServe},
		State:  StateAlive,
	}
}

func TestRouterProxiesSubmit(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/submit" || r.URL.RawQuery != "mode=mesh&count=1" {
			t.Errorf("backend saw %s?%s", r.URL.Path, r.URL.RawQuery)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		io.WriteString(w, `{"ok":true}`)
	}))
	defer backend.Close()

	p := &scriptedPicker{targets: []PeerStatus{peerFor(backend, "n1")}}
	rt := testRouter(t, p, nil)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/submit?mode=mesh&count=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Palirria-Node"); got != "n1" {
		t.Fatalf("X-Palirria-Node = %q", got)
	}
	if string(body) != `{"ok":true}` {
		t.Fatalf("body = %s", body)
	}
	if rt.Routed() != 1 || rt.FailedOver() != 0 {
		t.Fatalf("counters routed=%d failedOver=%d", rt.Routed(), rt.FailedOver())
	}
	if got := p.reports["n1"]; len(got) != 1 || !got[0] {
		t.Fatalf("reports = %v", p.reports)
	}
}

func TestRouterFailsOverOn5xxAndTransportError(t *testing.T) {
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer sick.Close()
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadTS.Close() // transport error: connection refused
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	defer healthy.Close()

	hub := stream.NewHub()
	defer hub.Close()
	sub := hub.Subscribe(stream.SubOptions{Buf: 64, Kinds: []stream.Kind{stream.KindRouted, stream.KindFailover}})
	defer sub.Close()

	p := &scriptedPicker{targets: []PeerStatus{
		peerFor(sick, "sick"), peerFor(deadTS, "dead"), peerFor(healthy, "ok"),
	}}
	rt := testRouter(t, p, hub)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/submit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 from the healthy node", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Palirria-Node"); got != "ok" {
		t.Fatalf("served by %q, want ok", got)
	}
	if rt.Routed() != 1 || rt.Retried() != 2 || rt.FailedOver() != 2 {
		t.Fatalf("counters routed=%d retried=%d failedOver=%d",
			rt.Routed(), rt.Retried(), rt.FailedOver())
	}
	// Both failures were reported, the success too.
	if got := p.reports["sick"]; len(got) != 1 || got[0] {
		t.Fatalf("sick reports = %v", got)
	}
	if got := p.reports["dead"]; len(got) != 1 || got[0] {
		t.Fatalf("dead reports = %v", got)
	}
	if got := p.reports["ok"]; len(got) != 1 || !got[0] {
		t.Fatalf("ok reports = %v", got)
	}
	// Event order: failover(sick), failover(dead), routed(ok).
	var seq []string
	for len(seq) < 3 {
		ev := <-sub.Events()
		seq = append(seq, ev.Kind.String()+":"+ev.Node)
	}
	want := "failover:sick,failover:dead,routed:ok"
	if got := strings.Join(seq, ","); got != want {
		t.Fatalf("event sequence = %s, want %s", got, want)
	}
}

func TestRouterReturnsShedAsIs(t *testing.T) {
	// 429 from a shedding node is a valid answer, not a failover trigger.
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "shed", http.StatusTooManyRequests)
	}))
	defer shedding.Close()

	p := &scriptedPicker{targets: []PeerStatus{peerFor(shedding, "n1"), peerFor(shedding, "n1")}}
	rt := testRouter(t, p, nil)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/submit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want the node's 429 passed through", resp.StatusCode)
	}
	if rt.FailedOver() != 0 {
		t.Fatal("429 triggered a failover")
	}
}

func TestRouterExhaustionIs502(t *testing.T) {
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadTS.Close()
	p := &scriptedPicker{targets: []PeerStatus{
		peerFor(deadTS, "a"), peerFor(deadTS, "b"), peerFor(deadTS, "c"), peerFor(deadTS, "d"),
	}}
	rt := testRouter(t, p, nil)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/submit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if !strings.Contains(string(body), "cluster submit failed") {
		t.Fatalf("body = %s", body)
	}
	if rt.Failed() != 1 {
		t.Fatalf("Failed = %d", rt.Failed())
	}
	// Retries bounded: 1 + Retries(2) attempts, never the 4th target.
	if p.next > 3 {
		t.Fatalf("router made %d attempts, want at most 3", p.next)
	}
}

func TestRouterStickyKey(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	defer backend.Close()
	p := &scriptedPicker{targets: []PeerStatus{
		peerFor(backend, "n1"), peerFor(backend, "n1"), peerFor(backend, "n1"),
	}}
	rt := testRouter(t, p, nil)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	for _, q := range []string{"sticky=batch-9", "count=8", "count=1"} {
		resp, err := http.Post(srv.URL+"/submit?"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if len(p.keys) != 3 {
		t.Fatalf("picker saw %d keys", len(p.keys))
	}
	if p.keys[0] != "batch-9" {
		t.Fatalf("explicit sticky key = %q", p.keys[0])
	}
	if !strings.HasPrefix(p.keys[1], "addr:") {
		t.Fatalf("batch key = %q, want addr-derived", p.keys[1])
	}
	if p.keys[2] != "" {
		t.Fatalf("single submit key = %q, want none", p.keys[2])
	}
}
