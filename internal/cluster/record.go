// Package cluster is the multi-node layer over the serving stack: each
// palirria-serve process runs a gossip Node that periodically exchanges a
// compact signed state record — identity, Palirria desire and allotment,
// queue depth, admission p99, shed state — with a few random peers over a
// simple HTTP/JSON anti-entropy protocol. The merged membership table is
// the cluster-wide load signal: a Router (or any client using the pick
// sub-package) steers submissions toward the node advertising the most
// spare estimated parallelism, which is the paper's DVS victim ordering
// lifted from workers to nodes.
//
// Failure detection is heartbeat-based suspicion: a peer whose record
// stops advancing is marked suspect after SuspectAfter and dead after
// DeadAfter; both transitions (and recoveries) publish lifecycle events
// on the node's stream hub, so `palirria-load -watch` and the /events SSE
// endpoint render membership changes live.
package cluster

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Roles a cluster member can advertise. Routers gossip like any other
// member (so their view converges and their failure is visible) but are
// never picked as submission targets.
const (
	RoleServe  = "serve"
	RoleRouter = "router"
)

// Record is one node's compact gossip state: identity, freshness, and the
// load signal routing steers on. Records are exchanged as JSON and, when
// the cluster has a shared secret, carry an HMAC-SHA256 signature over the
// canonical payload — a node cannot be impersonated (or its load signal
// forged) by anything not holding the secret.
type Record struct {
	// ID names the node; by convention its advertised address.
	ID string `json:"id"`
	// Addr is the node's advertised base URL (scheme://host:port) —
	// where /submit, /gossip, and /cluster live.
	Addr string `json:"addr"`
	// Role is RoleServe or RoleRouter.
	Role string `json:"role"`
	// Epoch distinguishes process incarnations: a restarted node starts a
	// higher epoch, so its fresh heartbeat sequence still supersedes the
	// old incarnation's records. (Epoch, Heartbeat) orders records.
	Epoch int64 `json:"epoch"`
	// Heartbeat is the per-epoch sequence number, bumped every gossip
	// round; a record only supersedes a stored one when newer.
	Heartbeat uint64 `json:"heartbeat"`

	// The load signal, sampled from serve.Pool.Snapshot (summed across a
	// node's pools). Desire is the filtered Palirria desire, Allotment the
	// granted workers, Spare the grantable headroom (mesh capacity minus
	// desire — see serve.Snapshot for why capacity, not the granted
	// allotment, is the A term of the A−D signal).
	Desire    int `json:"desire"`
	Allotment int `json:"allotment"`
	Spare     int `json:"spare"`
	// Queued is admitted-but-unfinished depth; QueueCap its bound.
	Queued   int64 `json:"queued"`
	QueueCap int   `json:"queue_cap"`
	// Shed reports an armed overload latch; shedding nodes are routed to
	// only when every alternative is shedding too.
	Shed bool `json:"shed"`
	// AdmitP99 is the submit-to-start p99 in seconds (obs.Histogram
	// quantile), the routing tie-breaker after spare parallelism.
	AdmitP99 float64 `json:"admit_p99_seconds"`

	// UnixNS is the sender's wall clock when the record was built; purely
	// diagnostic (suspicion uses receiver-local arrival times).
	UnixNS int64 `json:"unix_ns"`
	// Sig is the hex HMAC-SHA256 of the canonical payload under the
	// cluster secret; empty when the cluster runs unsigned.
	Sig string `json:"sig,omitempty"`
}

// payload is the canonical byte string the signature covers: every field
// that affects membership or routing, in fixed order. JSON is not used so
// field ordering and encoding quirks cannot unsign a valid record.
func (r *Record) payload() []byte {
	return []byte(fmt.Sprintf("%s|%s|%s|%d|%d|%d|%d|%d|%d|%d|%t|%.9f|%d",
		r.ID, r.Addr, r.Role, r.Epoch, r.Heartbeat,
		r.Desire, r.Allotment, r.Spare, r.Queued, r.QueueCap,
		r.Shed, r.AdmitP99, r.UnixNS))
}

// Sign stamps the record's signature under secret. An empty secret leaves
// the record unsigned.
func (r *Record) Sign(secret string) {
	if secret == "" {
		r.Sig = ""
		return
	}
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write(r.payload())
	r.Sig = hex.EncodeToString(mac.Sum(nil))
}

// Verify checks the record's signature under secret. With an empty secret
// every record verifies (the cluster runs unsigned); with one set, an
// unsigned or tampered record fails.
func (r *Record) Verify(secret string) bool {
	if secret == "" {
		return true
	}
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write(r.payload())
	want := hex.EncodeToString(mac.Sum(nil))
	return hmac.Equal([]byte(want), []byte(r.Sig))
}

// Newer reports whether r supersedes old, ordering by (Epoch, Heartbeat).
func (r *Record) Newer(old *Record) bool {
	if r.Epoch != old.Epoch {
		return r.Epoch > old.Epoch
	}
	return r.Heartbeat > old.Heartbeat
}
