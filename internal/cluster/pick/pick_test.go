package pick

import (
	"math/rand"
	"testing"
	"time"

	"palirria/internal/cluster"
)

// fixedView returns a static membership source over rows.
func fixedView(rows []cluster.PeerStatus) func() []cluster.PeerStatus {
	return func() []cluster.PeerStatus { return rows }
}

func serveRow(id string, state string, spare int, shed bool) cluster.PeerStatus {
	return cluster.PeerStatus{
		Record: cluster.Record{ID: id, Addr: "http://" + id, Role: cluster.RoleServe, Spare: spare, Shed: shed},
		State:  state,
	}
}

// testPicker builds a picker with a fixed seed and a controllable clock.
func testPicker(rows []cluster.PeerStatus) (*Picker, *time.Time) {
	now := time.Unix(1700000000, 0)
	p := New(fixedView(rows), Options{
		Rand: rand.New(rand.NewSource(1)),
		Now:  func() time.Time { return now },
	})
	return p, &now
}

func TestPickPrefersSpareTier(t *testing.T) {
	// One node has spare parallelism, two are saturated: the spare node
	// must win every pick, not the ~1/3..2/3 share plain p2c would give.
	rows := []cluster.PeerStatus{
		serveRow("n1", cluster.StateAlive, 0, false),
		serveRow("n2", cluster.StateAlive, 5, false),
		serveRow("n3", cluster.StateAlive, 0, false),
	}
	p, _ := testPicker(rows)
	for i := 0; i < 50; i++ {
		c, err := p.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if c.ID != "n2" {
			t.Fatalf("pick %d chose %s, want the only spare node n2", i, c.ID)
		}
	}
}

func TestPickTwoChoicesBySpare(t *testing.T) {
	// All three have spare; p2c must favour the node with the most. With
	// three candidates the best node wins whenever it is sampled: 2/3 of
	// picks in expectation, and never the worst-of-three unless sampled
	// against an equal.
	rows := []cluster.PeerStatus{
		serveRow("small", cluster.StateAlive, 1, false),
		serveRow("mid", cluster.StateAlive, 3, false),
		serveRow("big", cluster.StateAlive, 9, false),
	}
	p, _ := testPicker(rows)
	got := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		c, err := p.Pick()
		if err != nil {
			t.Fatal(err)
		}
		got[c.ID]++
	}
	if got["big"] < n/2 {
		t.Fatalf("big node got %d/%d picks, want a p2c majority", got["big"], n)
	}
	if got["small"] > got["mid"] {
		t.Fatalf("worse node out-picked a better one: %v", got)
	}
}

func TestPickTiersDegradeGracefully(t *testing.T) {
	// No healthy spare node: fall to saturated, then to suspect/shedding,
	// and only error when everything is dead or excluded.
	rows := []cluster.PeerStatus{
		serveRow("dead", cluster.StateDead, 9, false),
		serveRow("suspect", cluster.StateSuspect, 9, false),
		serveRow("shed", cluster.StateAlive, 9, true),
		serveRow("full", cluster.StateAlive, 0, false),
	}
	p, _ := testPicker(rows)

	c, err := p.Pick()
	if err != nil || c.ID != "full" {
		t.Fatalf("pick = %v, %v; want the saturated-but-healthy node", c.ID, err)
	}
	c, err = p.Pick("full")
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "suspect" && c.ID != "shed" {
		t.Fatalf("degraded tier pick = %s", c.ID)
	}
	if _, err := p.Pick("full", "suspect", "shed"); err != ErrNoCandidates {
		t.Fatalf("exhausted pick err = %v, want ErrNoCandidates", err)
	}
}

// TestPickToleratesNegativeSpare drives a rebuild-window snapshot through
// the tiers: older peers gossip the pre-clamp spare signal, which dips
// negative for a quantum or two while the estimator re-learns a shrunk
// mesh. The picker must treat it as zero headroom — an ordinary saturated
// peer — not rank it strictly below every real saturated node, and never
// prefer it over a node with actual spare capacity.
func TestPickToleratesNegativeSpare(t *testing.T) {
	rebuilding := serveRow("rebuilding", cluster.StateAlive, -3, false)
	rebuilding.Record.Queued = 1

	// Against a saturated peer with a deeper queue, the normalized node
	// must win on the tie-breaker: both sit at spare 0, so queue depth
	// decides. Pre-clamp ordering would rank -3 below 0 unconditionally.
	slow := serveRow("slow", cluster.StateAlive, 0, false)
	slow.Record.Queued = 50
	p, _ := testPicker([]cluster.PeerStatus{rebuilding, slow})
	for i := 0; i < 30; i++ {
		c, err := p.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if c.ID != "rebuilding" {
			t.Fatalf("pick %d chose %s; the rebuild-window node must tie at spare 0 and win on queue depth", i, c.ID)
		}
		if c.Spare != 0 {
			t.Fatalf("candidate carries pre-clamp spare %d, want normalized 0", c.Spare)
		}
	}

	// A node with real headroom still owns the spare tier outright.
	p, _ = testPicker([]cluster.PeerStatus{rebuilding, serveRow("roomy", cluster.StateAlive, 2, false)})
	for i := 0; i < 30; i++ {
		c, err := p.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if c.ID != "roomy" {
			t.Fatalf("pick %d chose %s over the only node with spare capacity", i, c.ID)
		}
	}

	// Alone, the rebuild-window node is still routable (saturated tier,
	// not degraded): negative spare must not read as unhealthy.
	p, _ = testPicker([]cluster.PeerStatus{rebuilding, serveRow("shedding", cluster.StateAlive, 9, true)})
	c, err := p.Pick()
	if err != nil || c.ID != "rebuilding" {
		t.Fatalf("pick = %v, %v; want the rebuild-window node ahead of the degraded tier", c.ID, err)
	}
}

func TestPickNeverRoutesToRouter(t *testing.T) {
	rows := []cluster.PeerStatus{
		{Record: cluster.Record{ID: "rt", Role: cluster.RoleRouter, Spare: 99}, State: cluster.StateAlive},
		serveRow("n1", cluster.StateAlive, 1, false),
	}
	p, _ := testPicker(rows)
	for i := 0; i < 20; i++ {
		c, err := p.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if c.ID == "rt" {
			t.Fatal("picked the router itself")
		}
	}
}

func TestBreakerOpensAndProbes(t *testing.T) {
	rows := []cluster.PeerStatus{
		serveRow("bad", cluster.StateAlive, 9, false),
		serveRow("ok", cluster.StateAlive, 1, false),
	}
	p, now := testPicker(rows)

	// Three consecutive failures open bad's breaker; picks then avoid it
	// even though it advertises the most spare parallelism.
	for i := 0; i < 3; i++ {
		p.Report("bad", false)
	}
	if !p.BreakerOpen("bad") {
		t.Fatal("breaker still closed after BreakAfter failures")
	}
	for i := 0; i < 20; i++ {
		c, err := p.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if c.ID == "bad" {
			t.Fatal("picked a node with an open breaker")
		}
	}

	// After the cooldown one half-open probe goes through; a failed probe
	// re-opens immediately (no three-strikes for a probing node).
	*now = now.Add(3 * time.Second)
	if p.BreakerOpen("bad") {
		t.Fatal("breaker did not half-open after cooldown")
	}
	p.Report("bad", false)
	if !p.BreakerOpen("bad") {
		t.Fatal("failed probe did not re-open the breaker")
	}

	// A successful probe closes it fully.
	*now = now.Add(3 * time.Second)
	p.Report("bad", true)
	if p.BreakerOpen("bad") {
		t.Fatal("successful probe left the breaker open")
	}
}

func TestStickyPinsAndUnpinsOnFailure(t *testing.T) {
	rows := []cluster.PeerStatus{
		serveRow("n1", cluster.StateAlive, 4, false),
		serveRow("n2", cluster.StateAlive, 4, false),
		serveRow("n3", cluster.StateAlive, 4, false),
	}
	p, now := testPicker(rows)

	first, err := p.PickSticky("batch-7")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c, err := p.PickSticky("batch-7")
		if err != nil {
			t.Fatal(err)
		}
		if c.ID != first.ID {
			t.Fatalf("sticky pick moved from %s to %s", first.ID, c.ID)
		}
		p.Report(c.ID, true)
	}

	// A failure on the pinned node drops the pin; the next sticky pick
	// lands elsewhere (the failed node is excluded by the retry loop).
	p.Report(first.ID, false)
	c, err := p.PickSticky("batch-7", first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == first.ID {
		t.Fatal("sticky key still pinned to the failed node")
	}

	// Pins expire after StickyFor without a successful renewal.
	second := c.ID
	*now = now.Add(11 * time.Second)
	if _, err := p.PickSticky("batch-7"); err != nil {
		t.Fatal(err)
	}
	_ = second // expiry path exercised; landing node is p2c-random
}

func TestStickyFollowsHealth(t *testing.T) {
	// The pinned node turning unhealthy (shedding) forces a re-pin even
	// within the sticky window.
	rows := []cluster.PeerStatus{
		serveRow("n1", cluster.StateAlive, 4, false),
		serveRow("n2", cluster.StateAlive, 4, false),
	}
	p, _ := testPicker(rows)
	first, err := p.PickSticky("k")
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i].ID == first.ID {
			rows[i].Shed = true
		}
	}
	c, err := p.PickSticky("k")
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == first.ID {
		t.Fatal("sticky pick kept a node that began shedding")
	}
}
