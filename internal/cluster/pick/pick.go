// Package pick is the client-side node selector for a Palirria cluster:
// given a membership view (from a gossiping cluster.Node or a scraped
// /cluster document), it steers each submission by power-of-two-choices
// over spare estimated parallelism — sample two healthy candidates, route
// to the one whose gossiped Allotment − Desire is larger, tie-broken by
// admission p99 and then queue depth. This is the paper's DVS victim
// ordering lifted to the node level: work goes where capacity already is.
//
// Around the raw choice the picker layers the production concerns:
//
//   - candidate filtering: dead peers and routers are never candidates;
//     shedding or suspect nodes and nodes with no positive spare are only
//     candidates when nothing better exists (graceful degradation instead
//     of a routing blackout);
//   - per-node circuit breakers: a node that keeps failing is taken out
//     of the candidate set for a cooldown, then probed half-open;
//   - sticky routing: a caller-provided key (e.g. a batch prefix) pins
//     consecutive picks to the same node while it stays healthy, so a
//     DAG-free batch keeps its locality without re-sampling per job.
package pick

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"palirria/internal/cluster"
)

// ErrNoCandidates reports an empty routable set: every serve node is
// dead, broken open, or unknown.
var ErrNoCandidates = errors.New("pick: no routable cluster node")

// Options tune the picker.
type Options struct {
	// BreakAfter consecutive failures open a node's breaker (default 3).
	BreakAfter int
	// BreakFor is the open-breaker cooldown before a half-open probe
	// (default 2s).
	BreakFor time.Duration
	// StickyFor bounds how long a sticky key pins its node without a
	// successful use (default 10s).
	StickyFor time.Duration
	// Rand seeds the two-choice sampling; defaults to a time-seeded
	// source. Tests inject a fixed seed.
	Rand *rand.Rand
	// Now is the clock (tests override it).
	Now func() time.Time
}

// Picker chooses submission targets from a live membership source.
type Picker struct {
	src func() []cluster.PeerStatus
	opt Options

	mu       sync.Mutex
	rng      *rand.Rand
	breakers map[string]*breaker
	sticky   map[string]*stickyEntry
}

type stickyEntry struct {
	id      string
	renewed time.Time
}

// New builds a picker over src, which returns the current candidate rows
// (typically cluster.Node.Serveable, or a /cluster scrape).
func New(src func() []cluster.PeerStatus, opt Options) *Picker {
	if opt.BreakAfter <= 0 {
		opt.BreakAfter = 3
	}
	if opt.BreakFor <= 0 {
		opt.BreakFor = 2 * time.Second
	}
	if opt.StickyFor <= 0 {
		opt.StickyFor = 10 * time.Second
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	rng := opt.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return &Picker{
		src:      src,
		opt:      opt,
		rng:      rng,
		breakers: map[string]*breaker{},
		sticky:   map[string]*stickyEntry{},
	}
}

// better ranks two candidates for one submission: more spare parallelism
// wins; equal spare falls through to lower admission p99, then shallower
// queue, then id (total order keeps the choice deterministic in tests).
func better(a, b *cluster.PeerStatus) bool {
	if a.Spare != b.Spare {
		return a.Spare > b.Spare
	}
	if a.AdmitP99 != b.AdmitP99 {
		return a.AdmitP99 < b.AdmitP99
	}
	if a.Queued != b.Queued {
		return a.Queued < b.Queued
	}
	return a.ID < b.ID
}

// Pick chooses a node, excluding the listed ids (a failed attempt's node
// on a retry). Candidate filtering runs in preference tiers: healthy
// nodes with spare capacity first, then healthy-but-saturated, then
// suspect/shedding stragglers — the next tier is consulted only when the
// better ones are empty, so a single spare node receives the whole skewed
// burst rather than a two-thirds p2c share of it.
func (p *Picker) Pick(exclude ...string) (cluster.PeerStatus, error) {
	ex := map[string]bool{}
	for _, id := range exclude {
		ex[id] = true
	}
	now := p.opt.Now()

	var spare, saturated, degraded []cluster.PeerStatus
	for _, c := range p.src() {
		if c.Role != cluster.RoleServe || c.State == cluster.StateDead || ex[c.ID] {
			continue
		}
		if !p.allowed(c.ID, now) {
			continue
		}
		// Older peers gossip the pre-clamp spare signal, which goes
		// negative for a quantum or two around a policy rebuild (desire
		// transiently exceeds the shrunk capacity). Headroom below zero is
		// meaningless for routing: normalize it so a rebuild-window node
		// ties with ordinary saturated peers — and loses to them only on
		// the real tie-breakers (admit p99, queue depth) — instead of
		// ranking strictly last in its tier.
		if c.Spare < 0 {
			c.Spare = 0
		}
		switch {
		case c.State == cluster.StateAlive && !c.Shed && c.Spare > 0:
			spare = append(spare, c)
		case c.State == cluster.StateAlive && !c.Shed:
			saturated = append(saturated, c)
		default:
			degraded = append(degraded, c)
		}
	}
	tier := spare
	if len(tier) == 0 {
		tier = saturated
	}
	if len(tier) == 0 {
		tier = degraded
	}
	switch len(tier) {
	case 0:
		return cluster.PeerStatus{}, ErrNoCandidates
	case 1:
		return tier[0], nil
	}
	// Power of two choices within the tier.
	p.mu.Lock()
	i := p.rng.Intn(len(tier))
	j := p.rng.Intn(len(tier) - 1)
	p.mu.Unlock()
	if j >= i {
		j++
	}
	if better(&tier[i], &tier[j]) {
		return tier[i], nil
	}
	return tier[j], nil
}

// PickSticky is Pick pinned by key: while the key's node remains a
// routable candidate (and the pin is younger than StickyFor), consecutive
// calls return it; otherwise a fresh Pick re-pins the key. A successful
// Report renews the pin.
func (p *Picker) PickSticky(key string, exclude ...string) (cluster.PeerStatus, error) {
	if key == "" {
		return p.Pick(exclude...)
	}
	now := p.opt.Now()
	p.mu.Lock()
	ent := p.sticky[key]
	p.mu.Unlock()
	if ent != nil && now.Sub(ent.renewed) <= p.opt.StickyFor && !contains(exclude, ent.id) {
		if c, ok := p.candidate(ent.id, now); ok {
			return c, nil
		}
	}
	c, err := p.Pick(exclude...)
	if err != nil {
		return c, err
	}
	p.mu.Lock()
	p.sticky[key] = &stickyEntry{id: c.ID, renewed: now}
	p.mu.Unlock()
	return c, nil
}

// candidate re-validates a pinned id against the live view: it must still
// be an alive, non-shedding serve node with a permitting breaker.
func (p *Picker) candidate(id string, now time.Time) (cluster.PeerStatus, bool) {
	for _, c := range p.src() {
		if c.ID != id {
			continue
		}
		if c.Role == cluster.RoleServe && c.State == cluster.StateAlive &&
			!c.Shed && p.allowed(id, now) {
			return c, true
		}
		break
	}
	return cluster.PeerStatus{}, false
}

// Report feeds an attempt's outcome back: success closes the node's
// breaker and renews any sticky pins on it; failure counts toward opening
// it.
func (p *Picker) Report(id string, ok bool) {
	now := p.opt.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.breakers[id]
	if b == nil {
		b = &breaker{}
		p.breakers[id] = b
	}
	if ok {
		b.succeed()
		for _, ent := range p.sticky {
			if ent.id == id {
				ent.renewed = now
			}
		}
		return
	}
	b.fail(p.opt.BreakAfter, p.opt.BreakFor, now)
	for key, ent := range p.sticky {
		if ent.id == id {
			delete(p.sticky, key)
		}
	}
}

// allowed asks the node's breaker whether an attempt may go out now.
func (p *Picker) allowed(id string, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.breakers[id]
	if b == nil {
		return true
	}
	return b.allow(now)
}

// BreakerOpen reports whether id's breaker currently blocks attempts
// (diagnostic; half-open probes count as not blocked).
func (p *Picker) BreakerOpen(id string) bool {
	return !p.allowed(id, p.opt.Now())
}

func contains(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
