package pick

import "time"

// breaker is a minimal per-node circuit breaker. Closed: attempts flow
// and consecutive failures count. Open: attempts are blocked until
// openUntil. Half-open: the first allow() after the cooldown lets one
// probe through and re-arms the cooldown, so a still-dark node is retried
// once per BreakFor instead of hammered. Guarded by Picker.mu.
type breaker struct {
	fails     int
	openUntil time.Time
	probing   bool
}

// allow reports whether an attempt may go out at now, consuming the
// half-open probe slot when the cooldown has expired.
func (b *breaker) allow(now time.Time) bool {
	if b.openUntil.IsZero() || now.After(b.openUntil) {
		if !b.openUntil.IsZero() && !b.probing {
			b.probing = true // the one half-open probe
		}
		return true
	}
	return false
}

// fail counts one failure and opens the breaker at the threshold (or
// immediately re-opens after a failed half-open probe).
func (b *breaker) fail(after int, cooldown time.Duration, now time.Time) {
	b.fails++
	if b.probing || b.fails >= after {
		b.openUntil = now.Add(cooldown)
		b.probing = false
	}
}

// succeed closes the breaker entirely.
func (b *breaker) succeed() {
	b.fails = 0
	b.openUntil = time.Time{}
	b.probing = false
}
