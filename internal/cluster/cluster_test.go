// Integration test: three real serving nodes (resident work-stealing
// pools behind HTTP), one router, all gossiping in-process. Exercises the
// whole distributed story end to end under -race: desire-steered routing
// concentrates a skewed burst on the node with spare parallelism, a
// mid-burst node kill fails over with zero accepted-job loss, and the
// cluster-wide ledger balances at drain.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"palirria/internal/cluster"
	"palirria/internal/cluster/pick"
	"palirria/internal/obs/stream"
	"palirria/internal/serve"
	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

// serveNode is one in-process cluster member: a resident pool, its HTTP
// surface (/submit, /gossip, /cluster), and its gossip loop.
type serveNode struct {
	id   string
	pool *serve.Pool
	node *cluster.Node
	ts   *httptest.Server
}

func newServeNode(t *testing.T, id string, meshW int, seeds []string) *serveNode {
	t.Helper()
	pool, err := serve.New(serve.Config{
		Name:     id,
		Runtime:  wsrt.Config{Mesh: topo.MustMesh(meshW, 1)},
		QueueCap: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	node, err := cluster.NewNode(cluster.Config{
		ID:   id,
		Addr: ts.URL,
		Role: cluster.RoleServe,
		Snapshot: func() cluster.Record {
			s := pool.Snapshot()
			return cluster.Record{
				Desire: s.Desire, Allotment: s.Allotment, Spare: s.Spare,
				Queued: s.InFlight, QueueCap: s.QueueCap,
				Shed: s.Shedding, AdmitP99: s.AdmitP99,
			}
		},
		Join:         seeds,
		Interval:     20 * time.Millisecond,
		SuspectAfter: 100 * time.Millisecond,
		DeadAfter:    300 * time.Millisecond,
	})
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	sn := &serveNode{id: id, pool: pool, node: node, ts: ts}
	mux.HandleFunc("/gossip", node.GossipHandler())
	mux.HandleFunc("/cluster", node.ClusterHandler())
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		// The job is synchronous, like palirria-serve: a 200 reply means
		// the fork/join tree ran to completion on this node's runtime.
		var out int64
		err := pool.Submit(r.Context(), wsrt.ParallelReduce(2000, 64, func(i int) int64 { return int64(i) }, &out))
		switch {
		case err == nil:
			fmt.Fprintf(w, `{"node":%q}`, id)
		case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrOverloaded):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		default:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		}
	})
	node.Start()
	t.Cleanup(func() { sn.kill(t) })
	return sn
}

// kill abruptly removes the node: in-flight client connections are cut
// (the router sees transport errors), gossip stops, and the pool drains
// so its ledger settles. Idempotent.
func (s *serveNode) kill(t *testing.T) {
	t.Helper()
	s.node.Stop()
	s.ts.CloseClientConnections()
	s.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.pool.Drain(ctx); err != nil && !errors.Is(err, serve.ErrDraining) {
		t.Errorf("drain %s: %v", s.id, err)
	}
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestClusterEndToEnd(t *testing.T) {
	// Skewed capacity: one 8-wide node among two 2-wide ones. Everyone
	// idles near the minimum desire, so the wide node is the only member
	// with positive spare parallelism — the burst must concentrate there.
	big := newServeNode(t, "big", 8, nil)
	s1 := newServeNode(t, "small1", 2, []string{big.ts.URL})
	s2 := newServeNode(t, "small2", 2, []string{big.ts.URL})

	hub := stream.NewHub()
	defer hub.Close()
	rnode, err := cluster.NewNode(cluster.Config{
		ID: "router", Addr: "http://router.test", Role: cluster.RoleRouter,
		Join:         []string{big.ts.URL, s1.ts.URL, s2.ts.URL},
		Interval:     20 * time.Millisecond,
		SuspectAfter: 100 * time.Millisecond,
		DeadAfter:    300 * time.Millisecond,
		Events:       hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	rnode.Start()
	defer rnode.Stop()
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Node:    rnode,
		Picker:  pick.New(rnode.Serveable, pick.Options{}),
		Retries: 2,
		Backoff: time.Millisecond,
		Events:  hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	waitUntil(t, 5*time.Second, "router sees 3 serve nodes", func() bool {
		return len(rnode.Serveable()) == 3
	})
	waitUntil(t, 5*time.Second, "spare signal gossiped", func() bool {
		for _, p := range rnode.Serveable() {
			if p.ID == "big" && p.Spare > 0 {
				return true
			}
		}
		return false
	})

	// Phase 1: a skewed burst of 60 submissions. The acceptance bar is
	// >70% on the spare node; the tiered picker should do far better.
	perNode := map[string]int{}
	const burst = 60
	for i := 0; i < burst; i++ {
		resp, err := http.Post(front.URL+"/submit", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst submit %d: status %d", i, resp.StatusCode)
		}
		perNode[resp.Header.Get("X-Palirria-Node")]++
	}
	if got := perNode["big"]; got*100 <= burst*70 {
		t.Fatalf("spare node received %d/%d (%d%%), want >70%%: %v",
			got, burst, got*100/burst, perNode)
	}
	t.Logf("skewed burst distribution: %v", perNode)

	// Phase 2: kill the favoured node mid-burst. Every submission the
	// router accepts (200) must still complete — failover to the small
	// nodes, zero accepted-job loss.
	var accepted, failed, attempts atomic.Int64
	after := map[string]*atomic.Int64{"big": {}, "small1": {}, "small2": {}}
	var wg sync.WaitGroup
	// The kill is triggered by submission count, not wall clock: a timer
	// races the storm (on a fast run the whole burst can finish before it
	// fires, leaving nothing to fail over). After killReady the submitters
	// block until the kill lands, so a known-post-kill tail of the burst
	// always exercises failover against the closed listener.
	killReady := make(chan struct{})
	killed := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				// Only submissions *initiated* after the kill count for
				// the dead-node check: one already in flight at the kill
				// may legitimately have been served by the node's last
				// breath.
				startedAfterKill := false
				select {
				case <-killReady:
					<-killed
					startedAfterKill = true
				default:
				}
				if attempts.Add(1) == 20 {
					close(killReady)
				}
				resp, err := http.Post(front.URL+"/submit", "", nil)
				if err != nil {
					failed.Add(1)
					continue
				}
				node := resp.Header.Get("X-Palirria-Node")
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					accepted.Add(1)
					if startedAfterKill {
						if c := after[node]; c != nil {
							c.Add(1)
						}
					}
				} else {
					failed.Add(1)
				}
			}
		}()
	}
	<-killReady
	big.kill(t)
	close(killed)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d submissions failed outright; failover should have absorbed the kill (failover count %d)",
			failed.Load(), rt.FailedOver())
	}
	if rt.FailedOver() == 0 {
		t.Fatal("killing the favoured node triggered no failover")
	}
	if n := after["big"].Load(); n != 0 {
		t.Fatalf("%d submissions served by the dead node after the kill", n)
	}
	if after["small1"].Load()+after["small2"].Load() == 0 {
		t.Fatal("no post-kill submission landed on the surviving nodes")
	}

	// The router must eventually suspect and then confirm the death.
	waitUntil(t, 5*time.Second, "dead node leaves the serveable set", func() bool {
		for _, p := range rnode.Serveable() {
			if p.ID == "big" {
				return false
			}
		}
		return true
	})

	// Drain the survivors and audit the cluster-wide ledger: every
	// admitted job terminal, nothing lost. (kill already drained big.)
	s1.kill(t)
	s2.kill(t)
	var admitted, terminal, completed int64
	for _, n := range []*serveNode{big, s1, s2} {
		st := n.pool.Stats()
		if st.Admitted != st.Completed+st.Cancelled {
			t.Errorf("%s ledger: admitted %d != completed %d + cancelled %d",
				n.id, st.Admitted, st.Completed, st.Cancelled)
		}
		admitted += st.Admitted
		terminal += st.Completed + st.Cancelled
		completed += st.Completed
	}
	if admitted != terminal {
		t.Fatalf("cluster ledger: admitted %d != terminal %d", admitted, terminal)
	}
	// Submit is synchronous, so each accepted reply rode a completed job.
	// Retries can complete a job whose reply was lost, so >= not ==.
	want := int64(burst) + accepted.Load()
	if completed < want {
		t.Fatalf("completed %d < accepted %d: accepted jobs were lost", completed, want)
	}
	t.Logf("accepted=%d completed=%d failover=%d post-kill=%v",
		want, completed, rt.FailedOver(),
		map[string]int64{"small1": after["small1"].Load(), "small2": after["small2"].Load()})
}
