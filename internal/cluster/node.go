package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"palirria/internal/obs"
	"palirria/internal/obs/stream"
)

// Peer states of the suspicion state machine. A peer is alive while its
// record keeps advancing, suspect once it has been silent for
// SuspectAfter, dead after DeadAfter, and reaped (forgotten) after
// 4×DeadAfter. A newer record at any pre-reap stage revives it to alive.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDead    = "dead"
)

// Config describes one gossip member.
type Config struct {
	// ID names the node; defaults to Addr. Must be unique in the cluster.
	ID string
	// Addr is the advertised base URL other members reach this node at
	// (scheme://host:port). Required.
	Addr string
	// Role is RoleServe (default) or RoleRouter. Routers gossip like any
	// member but are never submission targets.
	Role string
	// Secret, when non-empty, HMAC-signs every outgoing record and rejects
	// unsigned or tampered incoming ones. All members must agree on it.
	Secret string
	// Snapshot fills the load half of the node's record (desire,
	// allotment, spare, queue depth, shed, admit p99); identity and
	// freshness are stamped by the node. Nil advertises an idle record
	// (routers have no pool to sample).
	Snapshot func() Record
	// Join lists seed base URLs contacted on the first round.
	Join []string
	// Interval is the gossip period (default 500ms).
	Interval time.Duration
	// SuspectAfter and DeadAfter tune the failure detector: a peer whose
	// record has not advanced for SuspectAfter is suspected, for DeadAfter
	// confirmed dead. Defaults: 4×Interval and 10×Interval.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Fanout is how many peers each round exchanges state with (default 2).
	Fanout int
	// Events, when set, publishes peer-up/peer-suspect/peer-dead
	// transitions (Pool carries the node id, Node the peer id).
	Events *stream.Hub
	// Metrics, when set, registers membership gauges and per-peer
	// desire/allotment/suspicion series.
	Metrics *obs.Registry
	// Client is the HTTP client for gossip exchanges; defaults to one with
	// a timeout of Interval (an exchange slower than a round is useless).
	Client *http.Client
	// Rand seeds peer selection; defaults to a time-seeded source. Tests
	// inject a fixed seed for determinism.
	Rand *rand.Rand
}

// peerEntry is one membership-table row.
type peerEntry struct {
	rec         Record
	state       string
	lastAdvance time.Time // receiver-local time the record last advanced
}

// PeerStatus is one row of the exported cluster view.
type PeerStatus struct {
	Record
	// State is alive, suspect, or dead.
	State string `json:"state"`
	// SilentMS is how long ago (receiver-local) the record last advanced.
	SilentMS int64 `json:"silent_ms"`
	// Self marks the reporting node's own row.
	Self bool `json:"self,omitempty"`
}

// View is the /cluster status document: the node's own record plus its
// full membership table (self included), sorted by id.
type View struct {
	Self    Record       `json:"self"`
	Peers   []PeerStatus `json:"peers"`
	Rounds  int64        `json:"rounds"`
	BadSigs int64        `json:"bad_sigs,omitempty"`
}

// gossipMsg is the anti-entropy exchange body: the sender's full record
// set. The receiver merges it and replies with its own.
type gossipMsg struct {
	From  string   `json:"from"`
	Peers []Record `json:"peers"`
}

// Node is one gossip member: it owns the membership table, runs the
// periodic exchange loop, and serves the /gossip and /cluster endpoints.
type Node struct {
	cfg   Config
	epoch int64
	hb    atomic.Uint64

	mu    sync.Mutex
	peers map[string]*peerEntry
	reged map[string]bool // per-peer metric series already registered

	rounds   atomic.Int64
	badSigs  atomic.Int64
	exchFail atomic.Int64

	client *http.Client
	rng    *rand.Rand
	rngMu  sync.Mutex

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	stopped   chan struct{}
}

// NewNode validates cfg and builds the member (Start launches the loop).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Addr == "" {
		return nil, errors.New("cluster: Config.Addr required")
	}
	if cfg.ID == "" {
		cfg.ID = cfg.Addr
	}
	if cfg.Role == "" {
		cfg.Role = RoleServe
	}
	if cfg.Role != RoleServe && cfg.Role != RoleRouter {
		return nil, fmt.Errorf("cluster: unknown role %q", cfg.Role)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 4 * cfg.Interval
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = 10 * cfg.Interval
		if cfg.DeadAfter <= cfg.SuspectAfter {
			cfg.DeadAfter = 2 * cfg.SuspectAfter
		}
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	n := &Node{
		cfg:     cfg,
		epoch:   time.Now().UnixNano(),
		peers:   map[string]*peerEntry{},
		reged:   map[string]bool{},
		client:  cfg.Client,
		rng:     cfg.Rand,
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	if n.client == nil {
		n.client = &http.Client{Timeout: cfg.Interval}
	}
	if n.rng == nil {
		n.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if cfg.Metrics != nil {
		n.registerMetrics(cfg.Metrics)
	}
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.cfg.ID }

// self builds (and signs) the node's current record at the given
// heartbeat without bumping it.
func (n *Node) self(hb uint64) Record {
	var rec Record
	if n.cfg.Snapshot != nil {
		rec = n.cfg.Snapshot()
	}
	rec.ID = n.cfg.ID
	rec.Addr = n.cfg.Addr
	rec.Role = n.cfg.Role
	rec.Epoch = n.epoch
	rec.Heartbeat = hb
	rec.UnixNS = time.Now().UnixNano()
	rec.Sign(n.cfg.Secret)
	return rec
}

// Start launches the gossip loop: an immediate seed round against Join,
// then one exchange round per Interval. Idempotent.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		go func() {
			defer close(n.stopped)
			n.round()
			t := time.NewTicker(n.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-n.stop:
					return
				case <-t.C:
					n.round()
				}
			}
		}()
	})
}

// Stop halts the gossip loop and waits for it. Idempotent; the handlers
// stay functional (a stopped node still answers /gossip and /cluster, it
// just no longer initiates exchanges or advances its heartbeat).
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	<-n.stopped
}

// round is one gossip beat: advance the heartbeat, sweep the failure
// detector, and exchange full state with up to Fanout targets.
func (n *Node) round() {
	n.rounds.Add(1)
	hb := n.hb.Add(1)
	n.sweep()
	msg := gossipMsg{From: n.cfg.ID, Peers: n.snapshotRecords(hb)}
	for _, addr := range n.pickTargets() {
		n.exchange(addr, &msg)
	}
}

// snapshotRecords collects the node's own record plus every non-reaped
// peer record — the full anti-entropy payload.
func (n *Node) snapshotRecords(hb uint64) []Record {
	recs := []Record{n.self(hb)}
	n.mu.Lock()
	for _, p := range n.peers {
		recs = append(recs, p.rec)
	}
	n.mu.Unlock()
	return recs
}

// pickTargets chooses up to Fanout exchange targets: random non-dead
// peers, topped up with seed addresses while the membership table is
// still empty (or everyone known is dead).
func (n *Node) pickTargets() []string {
	n.mu.Lock()
	var candidates []string
	for _, p := range n.peers {
		if p.state != StateDead {
			candidates = append(candidates, p.rec.Addr)
		}
	}
	n.mu.Unlock()
	n.rngMu.Lock()
	n.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	n.rngMu.Unlock()
	if len(candidates) > n.cfg.Fanout {
		candidates = candidates[:n.cfg.Fanout]
	}
	if len(candidates) == 0 {
		for _, seed := range n.cfg.Join {
			if seed != "" && seed != n.cfg.Addr {
				candidates = append(candidates, seed)
			}
		}
	}
	return candidates
}

// exchange POSTs the node's state to one peer and merges the response.
// Failures only count — the suspicion sweep decides what they mean.
func (n *Node) exchange(addr string, msg *gossipMsg) {
	body, err := json.Marshal(msg)
	if err != nil {
		return
	}
	resp, err := n.client.Post(addr+"/gossip", "application/json", bytes.NewReader(body))
	if err != nil {
		n.exchFail.Add(1)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.exchFail.Add(1)
		return
	}
	var reply gossipMsg
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		n.exchFail.Add(1)
		return
	}
	n.mergeAll(reply.Peers)
}

// mergeAll folds a batch of records into the membership table.
func (n *Node) mergeAll(recs []Record) {
	for i := range recs {
		n.merge(&recs[i])
	}
}

// merge applies one record: verify, drop self-records (the node is
// authoritative about itself), insert or supersede, and publish the
// peer-up transition for new or recovered peers.
func (n *Node) merge(rec *Record) {
	if rec.ID == n.cfg.ID {
		return
	}
	if !rec.Verify(n.cfg.Secret) {
		n.badSigs.Add(1)
		return
	}
	if rec.Role != RoleServe && rec.Role != RoleRouter {
		return
	}
	now := time.Now()
	n.mu.Lock()
	p, ok := n.peers[rec.ID]
	var event stream.Kind
	fire := false
	switch {
	case !ok:
		n.peers[rec.ID] = &peerEntry{rec: *rec, state: StateAlive, lastAdvance: now}
		n.registerPeerMetrics(rec.ID)
		event, fire = stream.KindPeerUp, true
	case rec.Newer(&p.rec):
		p.rec = *rec
		p.lastAdvance = now
		if p.state != StateAlive {
			p.state = StateAlive
			event, fire = stream.KindPeerUp, true
		}
	}
	n.mu.Unlock()
	if fire {
		n.publish(event, rec.ID, 0)
	}
}

// sweep advances the suspicion state machine on receiver-local silence
// and reaps peers dead for 4×DeadAfter.
func (n *Node) sweep() {
	now := time.Now()
	type transition struct {
		kind   stream.Kind
		id     string
		silent time.Duration
	}
	var fires []transition
	n.mu.Lock()
	for id, p := range n.peers {
		silent := now.Sub(p.lastAdvance)
		switch {
		case silent > 4*n.cfg.DeadAfter:
			delete(n.peers, id)
		case p.state != StateDead && silent > n.cfg.DeadAfter:
			p.state = StateDead
			fires = append(fires, transition{stream.KindPeerDead, id, silent})
		case p.state == StateAlive && silent > n.cfg.SuspectAfter:
			p.state = StateSuspect
			fires = append(fires, transition{stream.KindPeerSuspect, id, silent})
		}
	}
	n.mu.Unlock()
	for _, f := range fires {
		n.publish(f.kind, f.id, int64(f.silent))
	}
}

func (n *Node) publish(kind stream.Kind, peer string, silentNS int64) {
	if n.cfg.Events == nil {
		return
	}
	n.cfg.Events.Publish(stream.Event{
		Kind: kind, Pool: n.cfg.ID, Node: peer, Arg: silentNS,
	})
}

// View samples the membership table, with the node's own (live-sampled)
// record first in a stable id-sorted order.
func (n *Node) View() View {
	self := n.self(n.hb.Load())
	v := View{
		Self:    self,
		Rounds:  n.rounds.Load(),
		BadSigs: n.badSigs.Load(),
	}
	now := time.Now()
	n.mu.Lock()
	v.Peers = make([]PeerStatus, 0, len(n.peers)+1)
	v.Peers = append(v.Peers, PeerStatus{Record: self, State: StateAlive, Self: true})
	for _, p := range n.peers {
		v.Peers = append(v.Peers, PeerStatus{
			Record:   p.rec,
			State:    p.state,
			SilentMS: now.Sub(p.lastAdvance).Milliseconds(),
		})
	}
	n.mu.Unlock()
	sort.Slice(v.Peers, func(i, j int) bool { return v.Peers[i].ID < v.Peers[j].ID })
	return v
}

// Serveable returns the routing candidate set: every serve-role member
// (self included when the node serves) that is not confirmed dead.
// Suspects stay in — a suspicion may be a lost heartbeat, and the
// picker's breakers handle a truly dark node — but the picker ranks them
// behind alive peers.
func (n *Node) Serveable() []PeerStatus {
	var out []PeerStatus
	for _, p := range n.View().Peers {
		if p.Role == RoleServe && p.State != StateDead {
			out = append(out, p)
		}
	}
	return out
}

// PeerState reports the current suspicion state of a peer id ("" when
// unknown).
func (n *Node) PeerState(id string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.peers[id]; ok {
		return p.state
	}
	return ""
}

// GossipHandler answers the anti-entropy POST: merge the sender's records,
// reply with the full local set. This is the whole wire protocol.
func (n *Node) GossipHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var msg gossipMsg
		if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
			http.Error(w, "bad gossip body", http.StatusBadRequest)
			return
		}
		n.mergeAll(msg.Peers)
		reply := gossipMsg{From: n.cfg.ID, Peers: n.snapshotRecords(n.hb.Load())}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(reply) //nolint:errcheck // peer went away
	}
}

// ClusterHandler serves the membership view as JSON — the /cluster status
// endpoint every node (and the router) exposes.
func (n *Node) ClusterHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.View()) //nolint:errcheck // peer went away
	}
}

// registerMetrics exposes the node's aggregate membership counters.
func (n *Node) registerMetrics(reg *obs.Registry) {
	lbl := obs.Label{Key: "node", Value: n.cfg.ID}
	reg.CounterFunc("palirria_cluster_rounds_total", "Gossip rounds initiated.",
		func() float64 { return float64(n.rounds.Load()) }, lbl)
	reg.CounterFunc("palirria_cluster_exchange_failures_total", "Gossip exchanges that failed.",
		func() float64 { return float64(n.exchFail.Load()) }, lbl)
	reg.CounterFunc("palirria_cluster_bad_signatures_total", "Gossip records rejected for a bad signature.",
		func() float64 { return float64(n.badSigs.Load()) }, lbl)
	for _, st := range []string{StateAlive, StateSuspect, StateDead} {
		st := st
		reg.GaugeFunc("palirria_cluster_members", "Known peers by suspicion state.",
			func() float64 {
				n.mu.Lock()
				defer n.mu.Unlock()
				c := 0
				for _, p := range n.peers {
					if p.state == st {
						c++
					}
				}
				return float64(c)
			}, lbl, obs.Label{Key: "state", Value: st})
	}
}

// registerPeerMetrics adds the per-peer gauge series the first time a peer
// is seen. Called with n.mu held. The registry is append-only, so a
// reaped peer's series simply reads zero/dead thereafter.
func (n *Node) registerPeerMetrics(id string) {
	if n.cfg.Metrics == nil || n.reged[id] {
		return
	}
	n.reged[id] = true
	reg := n.cfg.Metrics
	lbls := []obs.Label{{Key: "node", Value: n.cfg.ID}, {Key: "peer", Value: id}}
	read := func(f func(*peerEntry) float64) func() float64 {
		return func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			if p, ok := n.peers[id]; ok {
				return f(p)
			}
			return 0
		}
	}
	reg.GaugeFunc("palirria_cluster_peer_desire", "Peer's last gossiped filtered desire.",
		read(func(p *peerEntry) float64 { return float64(p.rec.Desire) }), lbls...)
	reg.GaugeFunc("palirria_cluster_peer_allotment", "Peer's last gossiped allotment.",
		read(func(p *peerEntry) float64 { return float64(p.rec.Allotment) }), lbls...)
	reg.GaugeFunc("palirria_cluster_peer_spare", "Peer's last gossiped spare parallelism.",
		read(func(p *peerEntry) float64 { return float64(p.rec.Spare) }), lbls...)
	reg.GaugeFunc("palirria_cluster_peer_suspicion", "Peer suspicion state: 0 alive, 1 suspect, 2 dead.",
		read(func(p *peerEntry) float64 {
			switch p.state {
			case StateSuspect:
				return 1
			case StateDead:
				return 2
			}
			return 0
		}), lbls...)
}
