package cluster

import "testing"

func sampleRecord() Record {
	return Record{
		ID: "http://n1:8077", Addr: "http://n1:8077", Role: RoleServe,
		Epoch: 42, Heartbeat: 7,
		Desire: 3, Allotment: 8, Spare: 5, Queued: 12, QueueCap: 128,
		Shed: false, AdmitP99: 0.000123, UnixNS: 1700000000000000000,
	}
}

func TestRecordSignVerify(t *testing.T) {
	r := sampleRecord()
	r.Sign("s3cret")
	if r.Sig == "" {
		t.Fatal("signing left Sig empty")
	}
	if !r.Verify("s3cret") {
		t.Fatal("freshly signed record does not verify")
	}
	if r.Verify("other") {
		t.Fatal("record verifies under the wrong secret")
	}

	// Tampering with any signed field must invalidate the signature.
	for name, mutate := range map[string]func(*Record){
		"desire":    func(r *Record) { r.Desire++ },
		"spare":     func(r *Record) { r.Spare-- },
		"heartbeat": func(r *Record) { r.Heartbeat++ },
		"epoch":     func(r *Record) { r.Epoch++ },
		"addr":      func(r *Record) { r.Addr = "http://evil:1" },
		"shed":      func(r *Record) { r.Shed = !r.Shed },
		"p99":       func(r *Record) { r.AdmitP99 *= 2 },
	} {
		rr := sampleRecord()
		rr.Sign("s3cret")
		mutate(&rr)
		if rr.Verify("s3cret") {
			t.Errorf("tampered %s still verifies", name)
		}
	}
}

func TestRecordUnsignedCluster(t *testing.T) {
	r := sampleRecord()
	r.Sign("")
	if r.Sig != "" {
		t.Fatal("empty secret must leave the record unsigned")
	}
	if !r.Verify("") {
		t.Fatal("unsigned record must verify in an unsigned cluster")
	}
	if r.Verify("s3cret") {
		t.Fatal("unsigned record must not verify in a signed cluster")
	}
}

func TestRecordNewer(t *testing.T) {
	a := Record{Epoch: 1, Heartbeat: 5}
	for _, tc := range []struct {
		epoch int64
		hb    uint64
		want  bool
	}{
		{1, 6, true},   // later heartbeat, same epoch
		{1, 5, false},  // identical
		{1, 4, false},  // older heartbeat
		{2, 0, true},   // restart: higher epoch supersedes any heartbeat
		{0, 100, false}, // stale incarnation
	} {
		b := Record{Epoch: tc.epoch, Heartbeat: tc.hb}
		if got := b.Newer(&a); got != tc.want {
			t.Errorf("(%d,%d).Newer(1,5) = %v, want %v", tc.epoch, tc.hb, got, tc.want)
		}
	}
}
