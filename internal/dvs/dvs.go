// Package dvs implements victim selection policies for work stealing.
//
// The package provides the paper's Deterministic Victim Selection (DVS)
// policy plus the random and round-robin policies that traditional
// work-stealing schedulers (and the ASTEAL/WOOL configurations in the
// evaluation) use.
//
// DVS removes all randomness: each worker has a fixed, ordered list of
// victims derived from its class in the allotment. Steals are restricted to
// close neighbours (communication distance at most 2) and the per-class
// orderings create the tidal flow the paper describes — outward from the
// source along the axes, balancing around the rim, and back inward through
// the bulk:
//
//   - the source steals back only from its immediate neighbours;
//   - class X workers pull primarily from their unique inner neighbour,
//     propagating tasks outward hop by hop along the axes;
//   - class Z workers pull first from their diagonal ring neighbours
//     (balancing load across quadrants) and only then from the inner zone;
//   - class F workers pull primarily from their outer neighbours (the
//     direction of class Z), relocating load back inward.
//
// Victim lists additionally contain the remaining distance-<=2 allotted
// neighbours at lower priority, making the policy tolerant of incomplete
// classes and parallelism fluctuations, exactly as §2.2 of the paper
// requires. A worker whose entire neighbourhood is unallotted (possible in
// scattered multiprogrammed allotments) falls back to the nearest allotted
// workers so that no worker is ever isolated.
package dvs

import (
	"sort"

	"palirria/internal/topo"
	"palirria/internal/xrand"
)

// Policy produces, for each worker, the ordered list of victims the worker
// probes when it runs out of work. Implementations must be safe for
// concurrent use by distinct workers (the real runtime calls Victims from
// every worker thread).
type Policy interface {
	// Name identifies the policy in reports ("dvs", "random", ...).
	Name() string
	// Victims returns the ordered victim candidates for worker w. The
	// returned slice must not be modified by the caller and is only valid
	// until the next Victims call for the same worker.
	Victims(w topo.CoreID) []topo.CoreID
	// VictimsInto writes the ordered victim candidates for worker w into
	// buf (typically buf[:0] of a caller-owned slice) and returns the
	// result. The returned slice always aliases buf's backing array (grown
	// if needed), never policy-internal storage, so steal probes that
	// reuse a per-worker buffer do zero heap allocations at steady state.
	VictimsInto(w topo.CoreID, buf []topo.CoreID) []topo.CoreID
	// VictimsIntoLocality is VictimsInto with a stable physical-locality
	// partition: victims on the same loc domain as w come first, remote
	// victims after, each group preserving the policy's own order — the
	// logical tiering (DVS classes, shuffle order, cyclic order) decides
	// within a domain, the machine decides between domains. nLocal is the
	// length of the local prefix. A nil or flat loc degrades to
	// VictimsInto with every victim local. The same aliasing contract as
	// VictimsInto holds: the result lives in buf's backing array, so
	// per-worker buffers stay allocation-free at steady state.
	VictimsIntoLocality(w topo.CoreID, loc *topo.Locality, buf []topo.CoreID) (out []topo.CoreID, nLocal int)
}

// appendLocalityPartition writes list into buf partitioned local-first
// relative to w under loc, preserving list's order within each group.
// Shared by every Policy implementation; two passes, no allocation
// beyond growing buf.
func appendLocalityPartition(list []topo.CoreID, w topo.CoreID, loc *topo.Locality, buf []topo.CoreID) ([]topo.CoreID, int) {
	if loc == nil || loc.Flat() {
		return append(buf, list...), len(list)
	}
	home := loc.Node(w)
	for _, v := range list {
		if loc.Node(v) == home {
			buf = append(buf, v)
		}
	}
	nLocal := len(buf)
	for _, v := range list {
		if loc.Node(v) != home {
			buf = append(buf, v)
		}
	}
	return buf, nLocal
}

// fallbackVictims is the maximum number of nearest-member fallback victims
// appended when a worker's rule-derived list is empty.
const fallbackVictims = 4

// DVS is the Deterministic Victim Selection policy. It is immutable once
// built: when the allotment changes, build a new DVS from the new
// classification.
type DVS struct {
	victims map[topo.CoreID][]topo.CoreID
}

var _ Policy = (*DVS)(nil)

// New builds the DVS policy for the classification c.
func New(c *topo.Classification) *DVS {
	d := &DVS{victims: make(map[topo.CoreID][]topo.CoreID, c.Allotment().Size())}
	a := c.Allotment()
	for _, w := range a.Members() {
		d.victims[w] = buildVictims(c, w)
	}
	d.ensureFlowConnected(a)
	return d
}

// ensureFlowConnected guarantees the §4.1.1 task-discovery property on
// arbitrarily scattered allotments: tasks originate at the source, so
// every worker must be reachable in the steal graph (victim → thief
// edges). The neighbourhood rules connect compact allotments on their
// own; when contention splits an allotment into distant clusters, each
// stranded cluster gets one additional lowest-priority victim — the
// nearest already-connected member — bridging it into the flow.
//
// Degenerate allotments whose flow roots reach no member at all (a source
// outside the member set, or a future constructor that strands it) used
// to be given up on silently, leaving every worker permanently isolated;
// now the lowest-id member is promoted to a flow root and bridging
// continues from it, so the steal graph always ends up connected.
func (d *DVS) ensureFlowConnected(a *topo.Allotment) {
	roots := []topo.CoreID{a.Source()}
	for {
		reached := d.reachable(a, roots)
		members := 0
		for _, w := range a.Members() {
			if reached[w] {
				members++
			}
		}
		if members == a.Size() {
			return
		}
		if members == 0 {
			// No member is reachable from any flow root: anchor the flow
			// at the lowest-id member instead of stranding everyone.
			low := topo.NoCore
			for _, w := range a.Members() {
				if low == topo.NoCore || w < low {
					low = w
				}
			}
			if low == topo.NoCore {
				return // empty allotment
			}
			roots = append(roots, low)
			continue
		}
		d.bridgeOne(a, reached)
	}
}

// bridgeOne adds one bridging edge: the (unreached worker, reached
// member) pair with minimal hop distance (ties break on lower ids for
// determinism) gets a victim edge from the worker to the member,
// connecting the worker — and everything downstream of it — into the
// flow. The caller guarantees at least one reached and one unreached
// member exist.
func (d *DVS) bridgeOne(a *topo.Allotment, reached map[topo.CoreID]bool) {
	m := a.Mesh()
	bestW, bestR := topo.NoCore, topo.NoCore
	bestDist := 1 << 30
	for _, w := range a.Members() {
		if reached[w] {
			continue
		}
		for _, r := range a.Members() {
			if !reached[r] {
				continue
			}
			dist := m.HopCount(w, r)
			if dist < bestDist ||
				(dist == bestDist && (w < bestW || (w == bestW && r < bestR))) {
				bestW, bestR, bestDist = w, r, dist
			}
		}
	}
	if bestW == topo.NoCore {
		return
	}
	d.victims[bestW] = append(d.victims[bestW], bestR)
}

// reachable returns the members reachable from the flow roots in the
// steal graph.
func (d *DVS) reachable(a *topo.Allotment, roots []topo.CoreID) map[topo.CoreID]bool {
	thieves := make(map[topo.CoreID][]topo.CoreID, a.Size())
	for _, w := range a.Members() {
		for _, v := range d.victims[w] {
			thieves[v] = append(thieves[v], w)
		}
	}
	reached := make(map[topo.CoreID]bool, a.Size())
	queue := make([]topo.CoreID, 0, a.Size())
	for _, r := range roots {
		if !reached[r] {
			reached[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, t := range thieves[v] {
			if !reached[t] {
				reached[t] = true
				queue = append(queue, t)
			}
		}
	}
	return reached
}

// Name implements Policy.
func (d *DVS) Name() string { return "dvs" }

// Victims implements Policy. Workers not in the allotment get an empty list.
func (d *DVS) Victims(w topo.CoreID) []topo.CoreID { return d.victims[w] }

// VictimsInto implements Policy: the precomputed list is copied into buf.
func (d *DVS) VictimsInto(w topo.CoreID, buf []topo.CoreID) []topo.CoreID {
	return append(buf, d.victims[w]...)
}

// VictimsIntoLocality implements Policy: the precomputed list, stably
// partitioned local-first under loc.
func (d *DVS) VictimsIntoLocality(w topo.CoreID, loc *topo.Locality, buf []topo.CoreID) ([]topo.CoreID, int) {
	return appendLocalityPartition(d.victims[w], w, loc, buf)
}

// buildVictims assembles the ordered victim list for worker w according to
// its class. Each tier is sorted by core id so the order is deterministic.
func buildVictims(c *topo.Classification, w topo.CoreID) []topo.CoreID {
	a := c.Allotment()
	if w == a.Source() {
		// The source's neighbourhood is zone 1; it re-acquires work it has
		// seeded outward. Order: distance-1 members, then diagonal
		// distance-2 members as fallback.
		tier1 := allottedNeighbors(a, w)
		var out []topo.CoreID
		out = appendTier(out, tier1)
		out = appendTier(out, diagonalMembers(a, w))
		return withFallback(a, w, out)
	}
	inner := c.InnerNeighbors(w)
	ring := c.RingNeighbors(w)
	outer := c.OuterVictims(w)

	var out []topo.CoreID
	switch cl := c.Class(w); {
	case cl.IsX():
		// X (and XZ): disseminate outward — pull from the axis parent
		// first, then balance with the ring, then the outer fallback.
		out = appendTier(out, inner)
		out = appendTier(out, ring)
		out = appendTier(out, outer)
	case cl == topo.ClassZ:
		// Z: "steal from within their own class (diagonally left and
		// right); only upon failing that, search the inner parts". Z
		// workers sit in the outermost zone, so their outer tier is empty
		// by construction — TestZClassOuterTierEmpty asserts the
		// invariant instead of appending a known-empty tier here.
		out = appendTier(out, ring)
		out = appendTier(out, inner)
	default: // ClassF
		// F: relocate load back inward — outer first (toward Z), then
		// ring, then inner as last resort.
		out = appendTier(out, outer)
		out = appendTier(out, ring)
		out = appendTier(out, inner)
	}
	return withFallback(a, w, out)
}

// appendTier appends tier members (sorted by id, deduplicated against out).
func appendTier(out, tier []topo.CoreID) []topo.CoreID {
	t := append([]topo.CoreID(nil), tier...)
	sort.Slice(t, func(i, j int) bool { return t[i] < t[j] })
	for _, v := range t {
		if !contains(out, v) {
			out = append(out, v)
		}
	}
	return out
}

// allottedNeighbors returns the distance-1 allotted neighbours of w.
func allottedNeighbors(a *topo.Allotment, w topo.CoreID) []topo.CoreID {
	var out []topo.CoreID
	for _, n := range a.Mesh().Neighbors(w) {
		if a.Contains(n) {
			out = append(out, n)
		}
	}
	return out
}

// diagonalMembers returns the allotted diagonal (distance-2, one hop per
// axis) neighbours of w regardless of zone.
func diagonalMembers(a *topo.Allotment, w topo.CoreID) []topo.CoreID {
	m := a.Mesh()
	wc := m.Coord(w)
	var out []topo.CoreID
	for _, id := range m.Ring(w, 2) {
		if !a.Contains(id) {
			continue
		}
		ic := m.Coord(id)
		if absInt(ic.X-wc.X) <= 1 && absInt(ic.Y-wc.Y) <= 1 && absInt(ic.Z-wc.Z) <= 1 {
			out = append(out, id)
		}
	}
	return out
}

// withFallback appends the nearest allotted members when the rule-derived
// list is empty, so no worker is ever isolated in a scattered allotment.
func withFallback(a *topo.Allotment, w topo.CoreID, out []topo.CoreID) []topo.CoreID {
	if len(out) > 0 {
		return out
	}
	m := a.Mesh()
	cand := make([]topo.CoreID, 0, a.Size()-1)
	for _, id := range a.Members() {
		if id != w {
			cand = append(cand, id)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		di, dj := m.HopCount(w, cand[i]), m.HopCount(w, cand[j])
		if di != dj {
			return di < dj
		}
		return cand[i] < cand[j]
	})
	if len(cand) > fallbackVictims {
		cand = cand[:fallbackVictims]
	}
	return append(out, cand...)
}

func contains(s []topo.CoreID, v topo.CoreID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Random is the traditional random victim selection policy: each call
// returns a fresh pseudo-random permutation of all other allotment members.
// Each worker owns an independent deterministic stream, so concurrent use by
// distinct workers is safe and runs are reproducible.
type Random struct {
	members []topo.CoreID
	streams map[topo.CoreID]*workerStream
}

type workerStream struct {
	rng *xrand.Xoshiro256
	buf []topo.CoreID
}

var _ Policy = (*Random)(nil)

// NewRandom builds a random policy over the allotment members with the
// given base seed. Per-worker streams are derived with xrand.Hash64, so the
// same (seed, allotment) pair always produces the same steal sequences.
func NewRandom(a *topo.Allotment, seed uint64) *Random {
	r := &Random{
		members: append([]topo.CoreID(nil), a.Members()...),
		streams: make(map[topo.CoreID]*workerStream, a.Size()),
	}
	for _, w := range a.Members() {
		buf := make([]topo.CoreID, 0, len(r.members)-1)
		for _, v := range r.members {
			if v != w {
				buf = append(buf, v)
			}
		}
		r.streams[w] = &workerStream{
			rng: xrand.NewXoshiro256(xrand.Hash64(seed ^ uint64(w)*0x9e3779b97f4a7c15)),
			buf: buf,
		}
	}
	return r
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Victims implements Policy: a fresh shuffle of all other members.
func (r *Random) Victims(w topo.CoreID) []topo.CoreID {
	st := r.streams[w]
	if st == nil {
		return nil
	}
	shuffleCores(st.rng, st.buf)
	return st.buf
}

// VictimsInto implements Policy: a fresh shuffle written into buf. The
// worker's deterministic stream still advances exactly once per call, so
// Victims and VictimsInto are interchangeable mid-run.
func (r *Random) VictimsInto(w topo.CoreID, buf []topo.CoreID) []topo.CoreID {
	st := r.streams[w]
	if st == nil {
		return buf
	}
	for _, v := range r.members {
		if v != w {
			buf = append(buf, v)
		}
	}
	shuffleCores(st.rng, buf[len(buf)-len(st.buf):])
	return buf
}

// VictimsIntoLocality implements Policy: a fresh shuffle, stably
// partitioned local-first under loc. The worker's deterministic stream
// advances exactly once per call, so every Victims variant remains
// interchangeable mid-run.
func (r *Random) VictimsIntoLocality(w topo.CoreID, loc *topo.Locality, buf []topo.CoreID) ([]topo.CoreID, int) {
	st := r.streams[w]
	if st == nil {
		return buf, 0
	}
	shuffleCores(st.rng, st.buf)
	return appendLocalityPartition(st.buf, w, loc, buf)
}

func shuffleCores(rng *xrand.Xoshiro256, p []topo.CoreID) {
	for i := len(p) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// RoundRobin probes victims in a fixed cyclic order starting after the
// worker's own position. It is the "semi-random" leapfrog-style policy some
// WOOL builds use; included as an additional baseline for the victim
// selection ablation.
type RoundRobin struct {
	members []topo.CoreID
	lists   map[topo.CoreID][]topo.CoreID
}

var _ Policy = (*RoundRobin)(nil)

// NewRoundRobin builds a round-robin policy over the allotment members.
func NewRoundRobin(a *topo.Allotment) *RoundRobin {
	rr := &RoundRobin{
		members: append([]topo.CoreID(nil), a.Members()...),
		lists:   make(map[topo.CoreID][]topo.CoreID, a.Size()),
	}
	sort.Slice(rr.members, func(i, j int) bool { return rr.members[i] < rr.members[j] })
	for i, w := range rr.members {
		list := make([]topo.CoreID, 0, len(rr.members)-1)
		for k := 1; k < len(rr.members); k++ {
			list = append(list, rr.members[(i+k)%len(rr.members)])
		}
		rr.lists[w] = list
	}
	return rr
}

// Name implements Policy.
func (rr *RoundRobin) Name() string { return "roundrobin" }

// Victims implements Policy.
func (rr *RoundRobin) Victims(w topo.CoreID) []topo.CoreID { return rr.lists[w] }

// VictimsInto implements Policy: the fixed cyclic list is copied into buf.
func (rr *RoundRobin) VictimsInto(w topo.CoreID, buf []topo.CoreID) []topo.CoreID {
	return append(buf, rr.lists[w]...)
}

// VictimsIntoLocality implements Policy: the fixed cyclic list, stably
// partitioned local-first under loc.
func (rr *RoundRobin) VictimsIntoLocality(w topo.CoreID, loc *topo.Locality, buf []topo.CoreID) ([]topo.CoreID, int) {
	return appendLocalityPartition(rr.lists[w], w, loc, buf)
}
