package dvs

import (
	"palirria/internal/topo"
)

// FlowConnected reports whether every allotment member can discover work
// under the policy: in the steal graph with an edge victim→thief for every
// victim in a worker's list, every non-source worker must be reachable
// from the source. The paper relies on this property ("DVS scheduling
// complements this design by guaranteeing task discovery by all workers",
// §4.1.1): tasks originate at the source, and a worker disconnected from
// the source's flow could never receive any.
func FlowConnected(p Policy, a *topo.Allotment) bool {
	return len(Unreachable(p, a)) == 0
}

// Unreachable returns the allotment members that cannot receive work from
// the source under the policy's steal graph (empty when flow is intact).
func Unreachable(p Policy, a *topo.Allotment) []topo.CoreID {
	// Build thief adjacency: edges from each victim to the workers that
	// list it.
	thieves := make(map[topo.CoreID][]topo.CoreID, a.Size())
	for _, w := range a.Members() {
		for _, v := range p.Victims(w) {
			thieves[v] = append(thieves[v], w)
		}
	}
	reached := make(map[topo.CoreID]bool, a.Size())
	queue := []topo.CoreID{a.Source()}
	reached[a.Source()] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, t := range thieves[v] {
			if !reached[t] {
				reached[t] = true
				queue = append(queue, t)
			}
		}
	}
	var missing []topo.CoreID
	for _, w := range a.Members() {
		if !reached[w] {
			missing = append(missing, w)
		}
	}
	return missing
}

// MaxFlowDistance returns the longest shortest-path (in steal hops) from
// the source to any member in the policy's steal graph: how many steal
// generations a task needs to reach the farthest worker. For DVS on a
// complete 2D allotment this is Θ(d); for random victim selection it is 1.
func MaxFlowDistance(p Policy, a *topo.Allotment) int {
	thieves := make(map[topo.CoreID][]topo.CoreID, a.Size())
	for _, w := range a.Members() {
		for _, v := range p.Victims(w) {
			thieves[v] = append(thieves[v], w)
		}
	}
	dist := map[topo.CoreID]int{a.Source(): 0}
	queue := []topo.CoreID{a.Source()}
	max := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, t := range thieves[v] {
			if _, ok := dist[t]; !ok {
				dist[t] = dist[v] + 1
				if dist[t] > max {
					max = dist[t]
				}
				queue = append(queue, t)
			}
		}
	}
	return max
}
