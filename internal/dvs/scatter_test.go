package dvs

import (
	"testing"

	"palirria/internal/topo"
)

// scatter builds a classification for an allotment whose source sits alone
// in one corner of an 8x8 mesh while the remaining members form a compact
// cluster in the opposite corner. The neighbourhood victim rules give the
// far cluster no edge back towards the source — the source is stranded
// from the cluster's point of view — so flow connectivity depends entirely
// on ensureFlowConnected's bridging.
func scatter(t testing.TB) *topo.Classification {
	t.Helper()
	m := topo.MustMesh(8, 8)
	cluster := []topo.CoreID{54, 55, 62, 63, 46, 47}
	a, err := topo.NewAllotmentFromCores(m, 0, cluster)
	if err != nil {
		t.Fatal(err)
	}
	return topo.Classify(a)
}

// TestScatteredAllotmentStaysFlowConnected is the regression test for the
// stranded-cluster case: every member of a scattered allotment must be
// reachable from the source in the steal graph, or tasks spawned at the
// source can never diffuse to the far cluster (§4.1.1 task discovery).
func TestScatteredAllotmentStaysFlowConnected(t *testing.T) {
	c := scatter(t)
	d := New(c)
	a := c.Allotment()
	if !FlowConnected(d, a) {
		t.Fatalf("scattered allotment is not flow connected; unreachable: %v", Unreachable(d, a))
	}
	if un := Unreachable(d, a); len(un) != 0 {
		t.Fatalf("workers %v unreachable from source %d", un, a.Source())
	}
}

// TestReachableSeedsFromAllRoots covers the degenerate-case machinery
// white-box: reachable must seed its BFS from every supplied flow root,
// which is what lets ensureFlowConnected promote the lowest-id member to
// a root when the source's flow reaches no member at all. Two disjoint
// steal-graph components are visible from their own root only, and the
// union of roots sees both.
func TestReachableSeedsFromAllRoots(t *testing.T) {
	m := topo.MustMesh(8, 8)
	a, err := topo.NewAllotmentFromCores(m, 0, []topo.CoreID{1, 62, 63})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built disjoint components: 1 steals from 0, 63 steals from 62.
	d := &DVS{victims: map[topo.CoreID][]topo.CoreID{
		1:  {0},
		63: {62},
	}}
	from0 := d.reachable(a, []topo.CoreID{0})
	if !from0[0] || !from0[1] || from0[62] || from0[63] {
		t.Fatalf("roots {0}: reached %v, want exactly {0, 1}", from0)
	}
	from62 := d.reachable(a, []topo.CoreID{62})
	if !from62[62] || !from62[63] || from62[0] {
		t.Fatalf("roots {62}: reached %v, want exactly {62, 63}", from62)
	}
	both := d.reachable(a, []topo.CoreID{0, 62})
	for _, w := range []topo.CoreID{0, 1, 62, 63} {
		if !both[w] {
			t.Fatalf("roots {0, 62}: worker %d not reached (%v)", w, both)
		}
	}
}

// TestBridgeOnePicksNearestPair pins bridgeOne's choice: the bridging
// edge connects the unreached worker to the reached member at minimal hop
// distance, ties broken towards lower ids, so rebuilding the policy for
// the same allotment always yields the same graph.
func TestBridgeOnePicksNearestPair(t *testing.T) {
	m := topo.MustMesh(8, 8)
	// Reached: source 0 at (0,0) and member 2 at (2,0). Unreached: 59 at
	// (3,7) and 62 at (6,7). 59 is 8 hops from 2 (vs 10 from 0) and 62 is
	// 11 from 2 (13 from 0) — the minimal pair is (59, 2).
	a, err := topo.NewAllotmentFromCores(m, 0, []topo.CoreID{2, 59, 62})
	if err != nil {
		t.Fatal(err)
	}
	d := &DVS{victims: map[topo.CoreID][]topo.CoreID{2: {0}}}
	reached := map[topo.CoreID]bool{0: true, 2: true}
	d.bridgeOne(a, reached)
	if got := d.victims[59]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("bridge edge = %v on worker 59 (victims: %v), want [2]", got, d.victims)
	}
	// Second round: with 59 connected, 62 bridges to it (3 hops, vs 11
	// to 2) — the nearest-pair rule chains clusters inward.
	reached[59] = true
	d.bridgeOne(a, reached)
	if got := d.victims[62]; len(got) != 1 || got[0] != 59 {
		t.Fatalf("bridge edge = %v on worker 62 (victims: %v), want [59]", got, d.victims)
	}
	// With both bridges in place the whole allotment drains connected.
	if r := d.reachable(a, []topo.CoreID{0}); !r[62] || !r[59] {
		t.Fatalf("cluster still unreached after bridging: %v", r)
	}
}
