package dvs

import (
	"testing"

	"palirria/internal/topo"
	"palirria/internal/xrand"
)

func TestFlowConnectedCompleteAllotments(t *testing.T) {
	// Every complete allotment on both evaluation platforms is flow-
	// connected under DVS: the §4.1.1 task-discovery guarantee.
	cases := []struct {
		dims []int
		res  []topo.CoreID
		src  topo.CoreID
		maxD int
	}{
		{[]int{8, 4}, []topo.CoreID{0, 1}, 20, 5},
		{[]int{8, 6}, []topo.CoreID{0, 1, 2}, 28, 6},
		{[]int{16}, nil, 8, 7},
		{[]int{4, 4, 4}, nil, 21, 6},
	}
	for _, c := range cases {
		m := topo.MustMesh(c.dims...)
		m.Reserve(c.res...)
		for d := 1; d <= c.maxD; d++ {
			if d > m.MaxDiaspora(c.src) {
				break
			}
			a, err := topo.NewAllotment(m, c.src, d)
			if err != nil {
				t.Fatal(err)
			}
			p := New(topo.Classify(a))
			if missing := Unreachable(p, a); len(missing) != 0 {
				t.Fatalf("%v d=%d: unreachable workers %v", c.dims, d, missing)
			}
		}
	}
}

func TestFlowConnectedRandomIncompleteAllotments(t *testing.T) {
	// Scattered multiprogrammed allotments (random member subsets) must
	// stay flow-connected thanks to the lower-priority fallback victims.
	m := topo.MustMesh(8, 6)
	rng := xrand.NewXoshiro256(1234)
	for trial := 0; trial < 200; trial++ {
		src := topo.CoreID(rng.Intn(m.NumCores()))
		var cores []topo.CoreID
		for id := topo.CoreID(0); int(id) < m.NumCores(); id++ {
			if id != src && rng.Float64() < 0.4 {
				cores = append(cores, id)
			}
		}
		a, err := topo.NewAllotmentFromCores(m, src, cores)
		if err != nil {
			t.Fatal(err)
		}
		p := New(topo.Classify(a))
		if missing := Unreachable(p, a); len(missing) != 0 {
			t.Fatalf("trial %d (src %d, %d workers): unreachable %v",
				trial, src, a.Size(), missing)
		}
	}
}

func TestFlowConnectedRandomPolicy(t *testing.T) {
	// Random victim selection is trivially connected (everyone lists
	// everyone).
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	a, _ := topo.NewAllotment(m, 20, 4)
	p := NewRandom(a, 3)
	if !FlowConnected(p, a) {
		t.Fatal("random policy disconnected")
	}
}

func TestMaxFlowDistance(t *testing.T) {
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	a, _ := topo.NewAllotment(m, 20, 4)
	dvsPol := New(topo.Classify(a))
	randPol := NewRandom(a, 3)
	dDVS := MaxFlowDistance(dvsPol, a)
	dRand := MaxFlowDistance(randPol, a)
	if dRand != 1 {
		t.Fatalf("random flow distance = %d, want 1", dRand)
	}
	// DVS relays hop by hop: at least the diaspora, at most a small
	// multiple of it.
	if dDVS < a.Diaspora() {
		t.Fatalf("DVS flow distance %d below diaspora %d", dDVS, a.Diaspora())
	}
	if dDVS > 3*a.Diaspora() {
		t.Fatalf("DVS flow distance %d too large for diaspora %d", dDVS, a.Diaspora())
	}
}

func TestUnreachableDetectsBrokenPolicy(t *testing.T) {
	// A policy with empty victim lists disconnects everyone but the
	// source.
	m := topo.MustMesh(4, 2)
	a, _ := topo.NewAllotment(m, 0, 2)
	broken := brokenPolicy{}
	missing := Unreachable(broken, a)
	if len(missing) != a.Size()-1 {
		t.Fatalf("missing = %d, want %d", len(missing), a.Size()-1)
	}
}

type brokenPolicy struct{}

func (brokenPolicy) Name() string                      { return "broken" }
func (brokenPolicy) Victims(topo.CoreID) []topo.CoreID { return nil }
func (brokenPolicy) VictimsInto(_ topo.CoreID, buf []topo.CoreID) []topo.CoreID {
	return buf
}
func (brokenPolicy) VictimsIntoLocality(_ topo.CoreID, _ *topo.Locality, buf []topo.CoreID) ([]topo.CoreID, int) {
	return buf, 0
}
