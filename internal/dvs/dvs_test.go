package dvs

import (
	"testing"

	"palirria/internal/topo"
)

func sim27(t testing.TB) *topo.Classification {
	t.Helper()
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	a, err := topo.NewAllotment(m, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	return topo.Classify(a)
}

func sim5(t testing.TB) *topo.Classification {
	t.Helper()
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	a, err := topo.NewAllotment(m, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	return topo.Classify(a)
}

func TestDVSAllWorkersHaveVictims(t *testing.T) {
	c := sim27(t)
	d := New(c)
	for _, w := range c.Allotment().Members() {
		v := d.Victims(w)
		if len(v) == 0 {
			t.Fatalf("worker %d has no victims", w)
		}
		for _, x := range v {
			if x == w {
				t.Fatalf("worker %d lists itself as victim", w)
			}
			if !c.Allotment().Contains(x) {
				t.Fatalf("worker %d lists non-member victim %d", w, x)
			}
		}
	}
}

func TestDVSDistanceBound(t *testing.T) {
	// Rule-derived victims are at communication distance <= 2.
	c := sim27(t)
	d := New(c)
	m := c.Allotment().Mesh()
	for _, w := range c.Allotment().Members() {
		for _, v := range d.Victims(w) {
			if hc := m.HopCount(w, v); hc > 2 {
				t.Fatalf("worker %d steals from %d at distance %d > 2", w, v, hc)
			}
		}
	}
}

func TestDVSNoDuplicates(t *testing.T) {
	c := sim27(t)
	d := New(c)
	for _, w := range c.Allotment().Members() {
		seen := map[topo.CoreID]bool{}
		for _, v := range d.Victims(w) {
			if seen[v] {
				t.Fatalf("worker %d has duplicate victim %d", w, v)
			}
			seen[v] = true
		}
	}
}

func TestDVSXPrimaryVictimIsInnerAxisParent(t *testing.T) {
	c := sim27(t)
	d := New(c)
	m := c.Allotment().Mesh()
	src := c.Allotment().Source()
	for _, w := range c.X() {
		inner := c.InnerNeighbors(w)
		if len(inner) != 1 {
			t.Fatalf("X worker %d has %d inner neighbours", w, len(inner))
		}
		v := d.Victims(w)
		if v[0] != inner[0] {
			t.Fatalf("X worker %d primary victim = %d, want inner parent %d", w, v[0], inner[0])
		}
		// The axis chain terminates at the source.
		if c.Allotment().ZoneOf(w) == 1 && v[0] != src {
			t.Fatalf("zone-1 X worker %d must pull from the source, got %d", w, v[0])
		}
		_ = m
	}
}

func TestDVSZPrefersRingOverInner(t *testing.T) {
	c := sim27(t)
	d := New(c)
	for _, w := range c.Z() {
		if c.Class(w) != topo.ClassZ {
			continue // XZ members follow the X ordering
		}
		ring := c.RingNeighbors(w)
		if len(ring) == 0 {
			continue
		}
		v := d.Victims(w)
		inRing := map[topo.CoreID]bool{}
		for _, r := range ring {
			inRing[r] = true
		}
		// The first len(ring) victims are exactly the ring members.
		for i := 0; i < len(ring); i++ {
			if !inRing[v[i]] {
				t.Fatalf("Z worker %d victim[%d]=%d is not a ring member; ring=%v list=%v",
					w, i, v[i], ring, v)
			}
		}
	}
}

func TestDVSFPrefersOuter(t *testing.T) {
	c := sim27(t)
	d := New(c)
	for _, w := range c.F() {
		outer := c.OuterVictims(w)
		if len(outer) == 0 {
			continue
		}
		v := d.Victims(w)
		inOuter := map[topo.CoreID]bool{}
		for _, o := range outer {
			inOuter[o] = true
		}
		for i := 0; i < len(outer); i++ {
			if !inOuter[v[i]] {
				t.Fatalf("F worker %d victim[%d]=%d is not outer; outer=%v list=%v",
					w, i, v[i], outer, v)
			}
		}
	}
}

func TestDVSSourceStealsFromZoneOne(t *testing.T) {
	c := sim27(t)
	d := New(c)
	src := c.Allotment().Source()
	v := d.Victims(src)
	zone1 := map[topo.CoreID]bool{}
	for _, w := range c.Allotment().Zone(1) {
		zone1[w] = true
	}
	for i := 0; i < len(zone1); i++ {
		if !zone1[v[i]] {
			t.Fatalf("source victim[%d]=%d is not in zone 1", i, v[i])
		}
	}
}

func TestDVSFiveWorkerAllotment(t *testing.T) {
	// All zone-1 workers are XZ: their primary victim is the source.
	c := sim5(t)
	d := New(c)
	src := c.Allotment().Source()
	for _, w := range c.Allotment().Zone(1) {
		v := d.Victims(w)
		if v[0] != src {
			t.Fatalf("zone-1 worker %d primary victim = %d, want source %d", w, v[0], src)
		}
	}
}

func TestDVSOuterVictimMutuality(t *testing.T) {
	// Definition 1: members of O_w steal from w too (w appears in their
	// victim lists). This is what makes µ(O_w) the right bound for L.
	c := sim27(t)
	d := New(c)
	for _, w := range c.Allotment().Members() {
		if w == c.Allotment().Source() {
			continue
		}
		for _, o := range c.OuterVictims(w) {
			found := false
			for _, v := range d.Victims(o) {
				if v == w {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("O_%d member %d does not list %d as a victim", w, o, w)
			}
		}
	}
}

func TestDVSDeterministic(t *testing.T) {
	c := sim27(t)
	d1, d2 := New(c), New(c)
	for _, w := range c.Allotment().Members() {
		v1, v2 := d1.Victims(w), d2.Victims(w)
		if len(v1) != len(v2) {
			t.Fatalf("worker %d victim lists differ in length", w)
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("worker %d victim lists differ at %d", w, i)
			}
		}
	}
}

func TestDVSScatteredAllotmentFallback(t *testing.T) {
	// An isolated member (no allotted neighbour within distance 2) must
	// still get victims via the nearest-member fallback.
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	a, err := topo.NewAllotmentFromCores(m, 20, []topo.CoreID{21, 7}) // core 7 = (7,0), far away
	if err != nil {
		t.Fatal(err)
	}
	c := topo.Classify(a)
	d := New(c)
	v := d.Victims(topo.CoreID(7))
	if len(v) == 0 {
		t.Fatal("isolated worker has no victims")
	}
}

func TestRandomPolicy(t *testing.T) {
	c := sim27(t)
	a := c.Allotment()
	r := NewRandom(a, 42)
	if r.Name() != "random" {
		t.Fatal("name wrong")
	}
	w := a.Members()[3]
	v := r.Victims(w)
	if len(v) != a.Size()-1 {
		t.Fatalf("random victims = %d, want %d", len(v), a.Size()-1)
	}
	seen := map[topo.CoreID]bool{}
	for _, x := range v {
		if x == w || seen[x] || !a.Contains(x) {
			t.Fatalf("bad victim %d in %v", x, v)
		}
		seen[x] = true
	}
}

func TestRandomPolicyDeterministicAcrossRuns(t *testing.T) {
	c := sim27(t)
	a := c.Allotment()
	r1, r2 := NewRandom(a, 7), NewRandom(a, 7)
	w := a.Members()[5]
	for round := 0; round < 10; round++ {
		v1 := append([]topo.CoreID(nil), r1.Victims(w)...)
		v2 := r2.Victims(w)
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("round %d: divergence at %d", round, i)
			}
		}
	}
}

func TestRandomPolicyPerWorkerIndependence(t *testing.T) {
	c := sim27(t)
	a := c.Allotment()
	r := NewRandom(a, 7)
	// Different workers get different (very likely) first victims over
	// several rounds; more importantly, interleaving calls for one worker
	// with calls for another must not change either stream.
	w1, w2 := a.Members()[2], a.Members()[9]
	solo := NewRandom(a, 7)
	var want [][]topo.CoreID
	for i := 0; i < 5; i++ {
		want = append(want, append([]topo.CoreID(nil), solo.Victims(w1)...))
	}
	for i := 0; i < 5; i++ {
		got := r.Victims(w1)
		r.Victims(w2) // interleave
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("interleaving perturbed stream at round %d", i)
			}
		}
	}
}

func TestRandomVictimsUnknownWorker(t *testing.T) {
	c := sim5(t)
	r := NewRandom(c.Allotment(), 1)
	if v := r.Victims(topo.CoreID(31)); v != nil {
		t.Fatalf("unknown worker got victims %v", v)
	}
}

func TestRoundRobin(t *testing.T) {
	c := sim5(t)
	a := c.Allotment()
	rr := NewRoundRobin(a)
	if rr.Name() != "roundrobin" {
		t.Fatal("name wrong")
	}
	for _, w := range a.Members() {
		v := rr.Victims(w)
		if len(v) != a.Size()-1 {
			t.Fatalf("worker %d: %d victims, want %d", w, len(v), a.Size()-1)
		}
		// Cyclic order: strictly increasing ids with one wrap.
		wraps := 0
		prev := w
		for _, x := range v {
			if x < prev {
				wraps++
			}
			prev = x
		}
		if wraps > 1 {
			t.Fatalf("worker %d victim order not cyclic: %v", w, v)
		}
	}
}

func TestDVSName(t *testing.T) {
	if New(sim5(t)).Name() != "dvs" {
		t.Fatal("name wrong")
	}
}

func BenchmarkDVSBuild27(b *testing.B) {
	c := sim27(b)
	for i := 0; i < b.N; i++ {
		New(c)
	}
}

func BenchmarkRandomVictims(b *testing.B) {
	c := sim27(b)
	r := NewRandom(c.Allotment(), 1)
	w := c.Allotment().Members()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Victims(w)
	}
}

func TestZClassOuterTierEmpty(t *testing.T) {
	// buildVictims skips the outer tier for pure-Z workers because Z sits
	// in the outermost zone, where no outer victims can exist. This pins
	// the invariant that justifies the skip, on both evaluation-platform
	// shapes and a 3D mesh.
	for _, dims := range [][]int{{8, 4}, {8, 6}, {4, 4, 4}} {
		m := topo.MustMesh(dims...)
		a, err := topo.NewAllotment(m, topo.CoreID(m.NumCores()/2), 3)
		if err != nil {
			t.Fatal(err)
		}
		c := topo.Classify(a)
		for _, w := range c.Z() {
			if c.Class(w) != topo.ClassZ {
				continue // XZ members sit on the axes, not the outermost ring
			}
			if outer := c.OuterVictims(w); len(outer) != 0 {
				t.Fatalf("%v: Z worker %d has outer victims %v, want none", dims, w, outer)
			}
		}
	}
}

func TestVictimsIntoLocalityPartition(t *testing.T) {
	// Every policy's locality variant must return a stable local-first
	// partition of the plain list: same multiset, local prefix of exactly
	// nLocal, original relative order preserved within each group.
	c := sim27(t)
	a := c.Allotment()
	loc := topo.SplitLocality(int(a.Mesh().NumCores()), 2)
	policies := []Policy{New(c), NewRandom(a, 9), NewRoundRobin(a)}
	for _, p := range policies {
		// Two equal-seed instances so Random's stream advance stays in
		// lockstep between the plain and locality calls.
		var ref Policy
		switch p.(type) {
		case *Random:
			ref = NewRandom(a, 9)
		case *RoundRobin:
			ref = NewRoundRobin(a)
		default:
			ref = New(c)
		}
		for _, w := range a.Members() {
			plain := append([]topo.CoreID(nil), ref.VictimsInto(w, nil)...)
			part, nLocal := p.VictimsIntoLocality(w, loc, nil)
			if len(part) != len(plain) {
				t.Fatalf("%s worker %d: partition has %d victims, plain %d",
					p.Name(), w, len(part), len(plain))
			}
			if nLocal < 0 || nLocal > len(part) {
				t.Fatalf("%s worker %d: nLocal %d out of range", p.Name(), w, nLocal)
			}
			for i, v := range part {
				if local := loc.SameNode(w, v); local != (i < nLocal) {
					t.Fatalf("%s worker %d: victim %d at index %d (nLocal %d) local=%v",
						p.Name(), w, v, i, nLocal, local)
				}
			}
			// Stability: the plain order, filtered per group, must match.
			want := make([]topo.CoreID, 0, len(plain))
			for _, v := range plain {
				if loc.SameNode(w, v) {
					want = append(want, v)
				}
			}
			for _, v := range plain {
				if !loc.SameNode(w, v) {
					want = append(want, v)
				}
			}
			for i := range want {
				if part[i] != want[i] {
					t.Fatalf("%s worker %d: partition %v not a stable split of %v",
						p.Name(), w, part, plain)
				}
			}
		}
	}
}

func TestVictimsIntoLocalityFlatDegradesToPlain(t *testing.T) {
	// A nil or flat locality map must reproduce VictimsInto exactly, with
	// everything counted local — the guarantee that keeps flat runtimes
	// bit-identical to the pre-locality scheduler.
	c := sim27(t)
	a := c.Allotment()
	n := int(a.Mesh().NumCores())
	for _, loc := range []*topo.Locality{nil, topo.FlatLocality(n)} {
		d1, d2 := New(c), New(c)
		for _, w := range a.Members() {
			plain := d1.VictimsInto(w, nil)
			part, nLocal := d2.VictimsIntoLocality(w, loc, nil)
			if nLocal != len(plain) {
				t.Fatalf("worker %d: nLocal %d, want all %d local", w, nLocal, len(plain))
			}
			for i := range plain {
				if part[i] != plain[i] {
					t.Fatalf("worker %d: flat partition %v != plain %v", w, part, plain)
				}
			}
		}
	}
}
