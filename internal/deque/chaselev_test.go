package deque

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestChaseLevValidation(t *testing.T) {
	if _, err := NewChaseLev[int](0); err == nil {
		t.Error("capacity 0 must fail")
	}
	d := MustChaseLev[int](5)
	if d.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8 (rounded to power of two)", d.Cap())
	}
}

func TestChaseLevMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustChaseLev[int](-1)
}

func TestChaseLevSequentialLIFO(t *testing.T) {
	d := MustChaseLev[int](8)
	vals := []int{10, 20, 30}
	for i := range vals {
		if !d.PushBottom(&vals[i]) {
			t.Fatalf("push %d failed", i)
		}
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	for i := len(vals) - 1; i >= 0; i-- {
		v, ok := d.PopBottom()
		if !ok || *v != vals[i] {
			t.Fatalf("pop = (%v, %v), want %d", v, ok, vals[i])
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("pop from empty must fail")
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d, want 0", d.Len())
	}
}

func TestChaseLevSequentialStealFIFO(t *testing.T) {
	d := MustChaseLev[int](8)
	vals := []int{1, 2, 3, 4}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	for i := range vals {
		v, ok := d.StealTop()
		if !ok || *v != vals[i] {
			t.Fatalf("steal %d = (%v, %v), want %d", i, v, ok, vals[i])
		}
	}
	if _, ok := d.StealTop(); ok {
		t.Fatal("steal from empty must fail")
	}
}

func TestChaseLevOverflow(t *testing.T) {
	d := MustChaseLev[int](2)
	a, b, c := 1, 2, 3
	if !d.PushBottom(&a) || !d.PushBottom(&b) {
		t.Fatal("pushes within capacity failed")
	}
	if d.PushBottom(&c) {
		t.Fatal("push beyond capacity must succeed... must fail")
	}
	// Draining one slot re-enables pushing and the ring wraps correctly.
	d.StealTop()
	if !d.PushBottom(&c) {
		t.Fatal("push after drain failed")
	}
	v, ok := d.PopBottom()
	if !ok || *v != 3 {
		t.Fatalf("pop = (%v, %v), want 3", v, ok)
	}
}

// TestChaseLevConcurrentStress hammers the deque from one owner and many
// thieves and checks that every pushed element is consumed exactly once.
// Run with -race to exercise the memory-model claims.
func TestChaseLevConcurrentStress(t *testing.T) {
	const total = 200000
	nThieves := runtime.GOMAXPROCS(0)
	if nThieves > 8 {
		nThieves = 8
	}
	if nThieves < 2 {
		nThieves = 2
	}
	d := MustChaseLev[int](1024)
	consumed := make([]atomic.Int32, total)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Thieves.
	for i := 0; i < nThieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if v, ok := d.StealTop(); ok {
					consumed[*v].Add(1)
				}
			}
			// Final drain race: let the owner finish the leftovers.
		}()
	}

	// Owner: pushes all values, popping occasionally like a real worker.
	vals := make([]int, total)
	for i := 0; i < total; i++ {
		vals[i] = i
		for !d.PushBottom(&vals[i]) {
			// Queue full: behave like WOOL and execute inline.
			if v, ok := d.PopBottom(); ok {
				consumed[*v].Add(1)
			}
		}
		if i%7 == 0 {
			if v, ok := d.PopBottom(); ok {
				consumed[*v].Add(1)
			}
		}
	}
	// Drain the rest as the owner.
	for {
		v, ok := d.PopBottom()
		if !ok {
			if d.Len() == 0 {
				break
			}
			continue
		}
		consumed[*v].Add(1)
	}
	stop.Store(true)
	wg.Wait()
	// One more drain in case thieves lost races at the very end.
	for {
		v, ok := d.StealTop()
		if !ok {
			break
		}
		consumed[*v].Add(1)
	}

	for i := range consumed {
		if n := consumed[i].Load(); n != 1 {
			t.Fatalf("value %d consumed %d times", i, n)
		}
	}
}

// TestChaseLevOwnerThiefRace drives the classic single-element race: one
// element, owner popping while a thief steals — exactly one must win.
func TestChaseLevOwnerThiefRace(t *testing.T) {
	for iter := 0; iter < 5000; iter++ {
		d := MustChaseLev[int](4)
		v := iter
		d.PushBottom(&v)
		var ownerGot, thiefGot atomic.Bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, ok := d.PopBottom(); ok {
				ownerGot.Store(true)
			}
		}()
		go func() {
			defer wg.Done()
			if _, ok := d.StealTop(); ok {
				thiefGot.Store(true)
			}
		}()
		wg.Wait()
		if ownerGot.Load() == thiefGot.Load() {
			t.Fatalf("iter %d: owner=%v thief=%v — exactly one must win",
				iter, ownerGot.Load(), thiefGot.Load())
		}
	}
}

func BenchmarkChaseLevPushPop(b *testing.B) {
	d := MustChaseLev[int](256)
	v := 1
	for i := 0; i < b.N; i++ {
		d.PushBottom(&v)
		d.PopBottom()
	}
}

func BenchmarkChaseLevStealContention(b *testing.B) {
	d := MustChaseLev[int](1 << 16)
	v := 1
	for i := 0; i < 1<<15; i++ {
		d.PushBottom(&v)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := d.StealTop(); !ok {
				// Refill occasionally is owner-only; just spin on empty.
				continue
			}
		}
	})
}
