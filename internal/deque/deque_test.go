package deque

import (
	"testing"
	"testing/quick"
)

func TestQueueValidation(t *testing.T) {
	if _, err := NewQueue[int](0, 1); err == nil {
		t.Error("capacity 0 must fail")
	}
	if _, err := NewQueue[int](4, 0); err == nil {
		t.Error("stealable 0 must fail")
	}
	if _, err := NewQueue[int](4, 5); err == nil {
		t.Error("stealable > capacity must fail")
	}
	if q := MustQueue[int](4, 2); q.Cap() != 4 {
		t.Error("cap wrong")
	}
}

func TestMustQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustQueue[int](0, 0)
}

func TestQueueLIFOOwner(t *testing.T) {
	q := MustQueue[int](8, 8)
	for i := 1; i <= 5; i++ {
		if !q.PushBottom(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	for i := 5; i >= 1; i-- {
		v, ok := q.PopBottom()
		if !ok || v != i {
			t.Fatalf("pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := q.PopBottom(); ok {
		t.Fatal("pop from empty must fail")
	}
}

func TestQueueFIFOThief(t *testing.T) {
	q := MustQueue[int](8, 8)
	for i := 1; i <= 5; i++ {
		q.PushBottom(i)
	}
	for i := 1; i <= 5; i++ {
		v, ok := q.StealTop()
		if !ok || v != i {
			t.Fatalf("steal = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := q.StealTop(); ok {
		t.Fatal("steal from empty must fail")
	}
}

func TestQueueOverflow(t *testing.T) {
	q := MustQueue[int](2, 1)
	if !q.PushBottom(1) || !q.PushBottom(2) {
		t.Fatal("pushes within capacity failed")
	}
	if q.PushBottom(3) {
		t.Fatal("push beyond capacity must fail")
	}
}

func TestQueueStealableWindow(t *testing.T) {
	// With 2 stealable slots, µ(Q) is capped at 2 regardless of depth.
	q := MustQueue[int](8, 2)
	for i := 1; i <= 6; i++ {
		q.PushBottom(i)
	}
	if got := q.StealableLen(); got != 2 {
		t.Fatalf("StealableLen = %d, want 2", got)
	}
	if got := q.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
	// Stealing drains oldest-first; the window slides.
	v, _ := q.StealTop()
	if v != 1 {
		t.Fatalf("stole %d, want 1", v)
	}
	if got := q.StealableLen(); got != 2 {
		t.Fatalf("StealableLen after steal = %d, want 2", got)
	}
	// Drain to below the stealable limit.
	for q.Len() > 1 {
		q.StealTop()
	}
	if got := q.StealableLen(); got != 1 {
		t.Fatalf("StealableLen = %d, want 1", got)
	}
}

func TestQueuePeekBottom(t *testing.T) {
	q := MustQueue[int](4, 4)
	if _, ok := q.PeekBottom(); ok {
		t.Fatal("peek on empty must fail")
	}
	q.PushBottom(7)
	q.PushBottom(9)
	if v, ok := q.PeekBottom(); !ok || v != 9 {
		t.Fatalf("peek = (%d, %v)", v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("peek must not remove")
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := MustQueue[int](4, 4)
	// Interleave pushes and steals to force the ring to wrap several times.
	next, expect := 0, 0
	for round := 0; round < 20; round++ {
		for i := 0; i < 3; i++ {
			q.PushBottom(next)
			next++
		}
		for i := 0; i < 3; i++ {
			v, ok := q.StealTop()
			if !ok || v != expect {
				t.Fatalf("round %d: steal = (%d, %v), want (%d, true)", round, v, ok, expect)
			}
			expect++
		}
	}
}

func TestQueueReset(t *testing.T) {
	q := MustQueue[int](4, 4)
	q.PushBottom(1)
	q.PushBottom(2)
	q.Reset()
	if q.Len() != 0 || q.StealableLen() != 0 {
		t.Fatal("reset did not empty the queue")
	}
	if _, ok := q.PopBottom(); ok {
		t.Fatal("pop after reset must fail")
	}
}

// Property: any interleaving of pushes, pops, and steals behaves like the
// reference model (a slice with owner at the back, thief at the front).
func TestQueueMatchesModel(t *testing.T) {
	type op struct {
		Kind uint8 // 0 push, 1 pop, 2 steal
		Val  int
	}
	f := func(ops []op) bool {
		q := MustQueue[int](16, 16)
		var model []int
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				want := len(model) < 16
				got := q.PushBottom(o.Val)
				if got != want {
					return false
				}
				if want {
					model = append(model, o.Val)
				}
			case 1:
				v, ok := q.PopBottom()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if v != want {
						return false
					}
				}
			case 2:
				v, ok := q.StealTop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[0]
					model = model[1:]
					if v != want {
						return false
					}
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	q := MustQueue[int](64, 8)
	for i := 0; i < b.N; i++ {
		q.PushBottom(i)
		q.PopBottom()
	}
}
