package deque

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardSequentialFIFO(t *testing.T) {
	s := MustShard[int](8)
	if s.Cap() != 8 {
		t.Fatalf("cap %d, want 8", s.Cap())
	}
	vals := make([]int, 20)
	for round := 0; round < 3; round++ { // cross the mask a few times
		for i := 0; i < 8; i++ {
			vals[i] = round*8 + i
			if !s.Push(&vals[i]) {
				t.Fatalf("push %d refused with len %d", i, s.Len())
			}
		}
		if extra := 99; s.Push(&extra) {
			t.Fatal("push into a full shard succeeded")
		}
		if s.Len() != 8 {
			t.Fatalf("len %d, want 8", s.Len())
		}
		for i := 0; i < 8; i++ {
			v, ok := s.Pop()
			if !ok {
				t.Fatalf("pop %d failed with len %d", i, s.Len())
			}
			if *v != round*8+i {
				t.Fatalf("pop %d, want %d (FIFO violated)", *v, round*8+i)
			}
		}
		if _, ok := s.Pop(); ok {
			t.Fatal("pop from an empty shard succeeded")
		}
	}
}

func TestShardCapacityRounding(t *testing.T) {
	if got := MustShard[int](5).Cap(); got != 8 {
		t.Fatalf("cap(5) rounded to %d, want 8", got)
	}
	if got := MustShard[int](1).Cap(); got != 2 {
		t.Fatalf("cap(1) rounded to %d, want 2", got)
	}
	if _, err := NewShard[int](0); err == nil {
		t.Fatal("NewShard(0) accepted")
	}
}

// TestShardMPMCStress hammers a small ring from many producers and many
// consumers and checks that every pushed element is popped exactly once.
func TestShardMPMCStress(t *testing.T) {
	const (
		producers = 8
		consumers = 8
		perProd   = 500
	)
	s := MustShard[int](16)
	total := producers * perProd
	vals := make([]int, total)
	seen := make([]atomic.Int32, total)
	var popped atomic.Int64

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				idx := p*perProd + i
				vals[idx] = idx
				for !s.Push(&vals[idx]) {
					runtime.Gosched() // full: let consumers make room
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for popped.Load() < int64(total) {
				v, ok := s.Pop()
				if !ok {
					runtime.Gosched()
					continue
				}
				seen[*v].Add(1)
				popped.Add(1)
			}
		}()
	}
	wg.Wait()
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("element %d popped %d times", i, n)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("shard non-empty after full drain")
	}
}

// TestShardLenBounds checks Len never escapes [0, Cap] under concurrent
// churn — the runtime uses it for power-of-two-choices shard picking and
// depth gauges, both of which assume a sane range.
func TestShardLenBounds(t *testing.T) {
	s := MustShard[int](4)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := 7
			for !stop.Load() {
				s.Push(&v)
				s.Pop()
				runtime.Gosched()
			}
		}()
	}
	for i := 0; i < 20000; i++ {
		if n := s.Len(); n < 0 || n > s.Cap() {
			stop.Store(true)
			t.Fatalf("len %d out of [0,%d]", n, s.Cap())
		}
	}
	stop.Store(true)
	wg.Wait()
}
