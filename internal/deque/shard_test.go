package deque

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardSequentialFIFO(t *testing.T) {
	s := MustShard[int](8)
	if s.Cap() != 8 {
		t.Fatalf("cap %d, want 8", s.Cap())
	}
	vals := make([]int, 20)
	for round := 0; round < 3; round++ { // cross the mask a few times
		for i := 0; i < 8; i++ {
			vals[i] = round*8 + i
			if !s.Push(&vals[i]) {
				t.Fatalf("push %d refused with len %d", i, s.Len())
			}
		}
		if extra := 99; s.Push(&extra) {
			t.Fatal("push into a full shard succeeded")
		}
		if s.Len() != 8 {
			t.Fatalf("len %d, want 8", s.Len())
		}
		for i := 0; i < 8; i++ {
			v, ok := s.Pop()
			if !ok {
				t.Fatalf("pop %d failed with len %d", i, s.Len())
			}
			if *v != round*8+i {
				t.Fatalf("pop %d, want %d (FIFO violated)", *v, round*8+i)
			}
		}
		if _, ok := s.Pop(); ok {
			t.Fatal("pop from an empty shard succeeded")
		}
	}
}

func TestShardCapacityRounding(t *testing.T) {
	if got := MustShard[int](5).Cap(); got != 8 {
		t.Fatalf("cap(5) rounded to %d, want 8", got)
	}
	if got := MustShard[int](1).Cap(); got != 2 {
		t.Fatalf("cap(1) rounded to %d, want 2", got)
	}
	if _, err := NewShard[int](0); err == nil {
		t.Fatal("NewShard(0) accepted")
	}
}

// TestShardMPMCStress hammers a small ring from many producers and many
// consumers and checks that every pushed element is popped exactly once.
func TestShardMPMCStress(t *testing.T) {
	const (
		producers = 8
		consumers = 8
		perProd   = 500
	)
	s := MustShard[int](16)
	total := producers * perProd
	vals := make([]int, total)
	seen := make([]atomic.Int32, total)
	var popped atomic.Int64

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				idx := p*perProd + i
				vals[idx] = idx
				for !s.Push(&vals[idx]) {
					runtime.Gosched() // full: let consumers make room
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for popped.Load() < int64(total) {
				v, ok := s.Pop()
				if !ok {
					runtime.Gosched()
					continue
				}
				seen[*v].Add(1)
				popped.Add(1)
			}
		}()
	}
	wg.Wait()
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("element %d popped %d times", i, n)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("shard non-empty after full drain")
	}
}

// TestShardLenBounds checks Len never escapes [0, Cap] under concurrent
// churn — the runtime uses it for power-of-two-choices shard picking and
// depth gauges, both of which assume a sane range.
func TestShardLenBounds(t *testing.T) {
	s := MustShard[int](4)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := 7
			for !stop.Load() {
				s.Push(&v)
				s.Pop()
				runtime.Gosched()
			}
		}()
	}
	for i := 0; i < 20000; i++ {
		if n := s.Len(); n < 0 || n > s.Cap() {
			stop.Store(true)
			t.Fatalf("len %d out of [0,%d]", n, s.Cap())
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestShardCreditCell covers the reservation-credit accessors the
// runtime's striped backlog ledger is built on: claims are bounded and
// never overdraw, refunds restore, and StealCredit drains whole balances.
func TestShardCreditCell(t *testing.T) {
	s := MustShard[int](8)
	if got := s.CreditBalance(); got != 0 {
		t.Fatalf("fresh shard credit %d, want 0", got)
	}
	if got := s.TryReserve(3); got != 0 {
		t.Fatalf("TryReserve on empty credit claimed %d, want 0", got)
	}
	s.Refund(5)
	if got := s.TryReserve(3); got != 3 {
		t.Fatalf("TryReserve(3) with balance 5 claimed %d, want 3", got)
	}
	if got := s.TryReserve(10); got != 2 {
		t.Fatalf("TryReserve(10) with balance 2 claimed %d, want 2 (partial)", got)
	}
	if got := s.TryReserve(1); got != 0 {
		t.Fatalf("TryReserve on drained credit claimed %d, want 0", got)
	}
	s.Refund(4)
	if got := s.StealCredit(); got != 4 {
		t.Fatalf("StealCredit took %d, want the whole balance 4", got)
	}
	if got := s.CreditBalance(); got != 0 {
		t.Fatalf("post-steal balance %d, want 0", got)
	}
	if got := s.TryReserve(0); got != 0 {
		t.Fatalf("TryReserve(0) claimed %d, want 0", got)
	}
}

// TestShardCreditConcurrentConservation hammers the credit cell from
// claiming and refunding goroutines and checks conservation: units
// claimed minus units refunded equals the balance drop.
func TestShardCreditConcurrentConservation(t *testing.T) {
	s := MustShard[int](8)
	const seed = 1 << 20
	s.Refund(seed)
	var claimed, refunded atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				switch {
				case p%2 == 0:
					claimed.Add(s.TryReserve(int64(i%5 + 1)))
				case i%7 == 0:
					claimed.Add(s.StealCredit())
				default:
					s.Refund(2)
					refunded.Add(2)
				}
			}
		}(p)
	}
	wg.Wait()
	want := seed + refunded.Load() - claimed.Load()
	if got := s.CreditBalance(); got != want {
		t.Fatalf("credit balance %d after hammer, want %d (seed %d + refunded %d - claimed %d)",
			got, want, int64(seed), refunded.Load(), claimed.Load())
	}
	if got := s.CreditBalance(); got < 0 {
		t.Fatalf("credit balance went negative: %d", got)
	}
}

// TestShardPushesCounter checks the enqueue-ticket counter the runtime
// derives its injected-total metric from.
func TestShardPushesCounter(t *testing.T) {
	s := MustShard[int](4)
	v := 1
	if got := s.Pushes(); got != 0 {
		t.Fatalf("fresh shard Pushes %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		if !s.Push(&v) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	s.Pop()
	s.Push(&v)
	if got := s.Pushes(); got != 4 {
		t.Fatalf("Pushes %d after 4 pushes and a pop, want 4 (monotone, pops don't subtract)", got)
	}
}
