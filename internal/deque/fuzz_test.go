package deque

import "testing"

// FuzzQueueModel drives the simulator queue with an arbitrary operation
// tape and compares against a slice-backed reference model.
func FuzzQueueModel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 2, 1})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 1})
	// Overfill, drain by steals, then refill: exercises the rejected-push
	// path (the runtime retries PushBottom against a full queue and runs
	// the child inline) and the top-index wrap it races against.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 2, 2, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, tape []byte) {
		q := MustQueue[int](8, 4)
		var model []int
		next := 0
		for _, op := range tape {
			switch op % 3 {
			case 0: // push
				ok := q.PushBottom(next)
				if ok != (len(model) < 8) {
					t.Fatalf("push ok=%v with model len %d", ok, len(model))
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // pop
				v, ok := q.PopBottom()
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v with model len %d", ok, len(model))
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if v != want {
						t.Fatalf("pop %d, want %d", v, want)
					}
				}
			case 2: // steal
				v, ok := q.StealTop()
				if ok != (len(model) > 0) {
					t.Fatalf("steal ok=%v with model len %d", ok, len(model))
				}
				if ok {
					want := model[0]
					model = model[1:]
					if v != want {
						t.Fatalf("steal %d, want %d", v, want)
					}
				}
			}
			if q.Len() != len(model) {
				t.Fatalf("len %d != model %d", q.Len(), len(model))
			}
			wantStealable := len(model)
			if wantStealable > 4 {
				wantStealable = 4
			}
			if q.StealableLen() != wantStealable {
				t.Fatalf("stealable %d != %d", q.StealableLen(), wantStealable)
			}
		}
	})
}

// FuzzChaseLevSequential drives the Chase-Lev deque single-threaded
// against the same reference model (the concurrent properties are covered
// by the stress tests; this explores ring-wrap and emptiness edges).
func FuzzChaseLevSequential(f *testing.F) {
	f.Add([]byte{0, 0, 2, 1, 0, 2, 2})
	// Full ring refused pushes followed by steal-drain and a second fill
	// wave: the wsrt inline-execution fallback depends on a refused
	// PushBottom leaving the ring intact for later pushes.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 2, 2, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, tape []byte) {
		d := MustChaseLev[int](8)
		var model []int
		vals := make([]int, 0, len(tape))
		for _, op := range tape {
			switch op % 3 {
			case 0:
				vals = append(vals, len(vals))
				v := &vals[len(vals)-1]
				ok := d.PushBottom(v)
				if ok != (len(model) < 8) {
					t.Fatalf("push ok=%v model %d", ok, len(model))
				}
				if ok {
					model = append(model, *v)
				}
			case 1:
				v, ok := d.PopBottom()
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v model %d", ok, len(model))
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if *v != want {
						t.Fatalf("pop %d want %d", *v, want)
					}
				}
			case 2:
				v, ok := d.StealTop()
				if ok != (len(model) > 0) {
					t.Fatalf("steal ok=%v model %d", ok, len(model))
				}
				if ok {
					want := model[0]
					model = model[1:]
					if *v != want {
						t.Fatalf("steal %d want %d", *v, want)
					}
				}
			}
		}
	})
}
