package deque

import "testing"

// FuzzQueueModel drives the simulator queue with an arbitrary operation
// tape and compares against a slice-backed reference model.
func FuzzQueueModel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 2, 1})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 1})
	// Overfill, drain by steals, then refill: exercises the rejected-push
	// path (the runtime retries PushBottom against a full queue and runs
	// the child inline) and the top-index wrap it races against.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 2, 2, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, tape []byte) {
		q := MustQueue[int](8, 4)
		var model []int
		next := 0
		for _, op := range tape {
			switch op % 3 {
			case 0: // push
				ok := q.PushBottom(next)
				if ok != (len(model) < 8) {
					t.Fatalf("push ok=%v with model len %d", ok, len(model))
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // pop
				v, ok := q.PopBottom()
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v with model len %d", ok, len(model))
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if v != want {
						t.Fatalf("pop %d, want %d", v, want)
					}
				}
			case 2: // steal
				v, ok := q.StealTop()
				if ok != (len(model) > 0) {
					t.Fatalf("steal ok=%v with model len %d", ok, len(model))
				}
				if ok {
					want := model[0]
					model = model[1:]
					if v != want {
						t.Fatalf("steal %d, want %d", v, want)
					}
				}
			}
			if q.Len() != len(model) {
				t.Fatalf("len %d != model %d", q.Len(), len(model))
			}
			wantStealable := len(model)
			if wantStealable > 4 {
				wantStealable = 4
			}
			if q.StealableLen() != wantStealable {
				t.Fatalf("stealable %d != %d", q.StealableLen(), wantStealable)
			}
		}
	})
}

// FuzzShardWrap drives the MPSC injection shard single-threaded against a
// FIFO reference model with a tape long enough that the enqueue/dequeue
// tickets cross the power-of-two mask repeatedly — the lap-encoded
// sequence numbers must keep full/empty detection exact across wraps.
func FuzzShardWrap(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 1, 1})
	// Fill, refuse, drain, refill: two full laps around an 8-slot ring.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	// Interleaved push/pop keeps the ring near-full while laps advance.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, tape []byte) {
		s := MustShard[int](8)
		var model []int
		vals := make([]int, len(tape)) // stable backing for pushed pointers
		next := 0
		for _, op := range tape {
			switch op % 2 {
			case 0: // push
				vals[next] = next
				ok := s.Push(&vals[next])
				if ok != (len(model) < 8) {
					t.Fatalf("push ok=%v with model len %d", ok, len(model))
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // pop
				v, ok := s.Pop()
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v with model len %d", ok, len(model))
				}
				if ok {
					want := model[0]
					model = model[1:]
					if *v != want {
						t.Fatalf("pop %d, want %d (FIFO violated after wrap)", *v, want)
					}
				}
			}
			if s.Len() != len(model) {
				t.Fatalf("len %d != model %d", s.Len(), len(model))
			}
		}
	})
}

// FuzzChaseLevBottomIsWrap checks the BottomIs peek stays truthful after
// the ring indices wrap: at every step, BottomIs must answer true for the
// model's last element and false for any other live pointer. The wsrt
// sync path leans on this peek to decide between inline execution and a
// steal-back wait, so a stale answer after wrap would run a task twice.
func FuzzChaseLevBottomIsWrap(f *testing.F) {
	f.Add([]byte{0, 0, 2, 1, 0, 2, 2})
	// Steal-drain a full ring then refill past the mask before popping.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 2, 2, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, tape []byte) {
		d := MustChaseLev[int](8)
		var model []*int
		vals := make([]int, len(tape)) // stable backing for pushed pointers
		next := 0
		for _, op := range tape {
			switch op % 3 {
			case 0:
				vals[next] = next
				ok := d.PushBottom(&vals[next])
				if ok != (len(model) < 8) {
					t.Fatalf("push ok=%v model %d", ok, len(model))
				}
				if ok {
					model = append(model, &vals[next])
				}
				next++
			case 1:
				v, ok := d.PopBottom()
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v model %d", ok, len(model))
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if v != want {
						t.Fatalf("pop %d want %d", *v, *want)
					}
				}
			case 2:
				v, ok := d.StealTop()
				if ok != (len(model) > 0) {
					t.Fatalf("steal ok=%v model %d", ok, len(model))
				}
				if ok {
					want := model[0]
					model = model[1:]
					if v != want {
						t.Fatalf("steal %d want %d", *v, *want)
					}
				}
			}
			if len(model) == 0 {
				if next > 0 && d.BottomIs(&vals[0]) {
					t.Fatal("BottomIs true on an empty deque")
				}
				continue
			}
			bottom := model[len(model)-1]
			if !d.BottomIs(bottom) {
				t.Fatalf("BottomIs false for the bottom element %d", *bottom)
			}
			if len(model) > 1 && d.BottomIs(model[0]) {
				t.Fatalf("BottomIs true for the top element %d", *model[0])
			}
		}
	})
}

// FuzzChaseLevSequential drives the Chase-Lev deque single-threaded
// against the same reference model (the concurrent properties are covered
// by the stress tests; this explores ring-wrap and emptiness edges).
func FuzzChaseLevSequential(f *testing.F) {
	f.Add([]byte{0, 0, 2, 1, 0, 2, 2})
	// Full ring refused pushes followed by steal-drain and a second fill
	// wave: the wsrt inline-execution fallback depends on a refused
	// PushBottom leaving the ring intact for later pushes.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 2, 2, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, tape []byte) {
		d := MustChaseLev[int](8)
		var model []int
		vals := make([]int, 0, len(tape))
		for _, op := range tape {
			switch op % 3 {
			case 0:
				vals = append(vals, len(vals))
				v := &vals[len(vals)-1]
				ok := d.PushBottom(v)
				if ok != (len(model) < 8) {
					t.Fatalf("push ok=%v model %d", ok, len(model))
				}
				if ok {
					model = append(model, *v)
				}
			case 1:
				v, ok := d.PopBottom()
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v model %d", ok, len(model))
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if *v != want {
						t.Fatalf("pop %d want %d", *v, want)
					}
				}
			case 2:
				v, ok := d.StealTop()
				if ok != (len(model) > 0) {
					t.Fatalf("steal ok=%v model %d", ok, len(model))
				}
				if ok {
					want := model[0]
					model = model[1:]
					if *v != want {
						t.Fatalf("steal %d want %d", *v, want)
					}
				}
			}
		}
	})
}
