package deque

import (
	"fmt"
	"sync/atomic"
)

// Shard is a bounded lock-free multi-producer queue after Vyukov's bounded
// MPMC ring, used by the runtime as a per-worker external-injection shard:
// any number of producers may Push concurrently, and the owning worker (or
// a thief draining a sibling shard, or the shutdown flush) may Pop
// concurrently. It is the "thin multi-producer head" bolted next to the
// Chase-Lev deques — spawned work stays on the owner-only ChaseLev ring,
// injected work arrives here.
//
// Each slot carries a sequence number that encodes which lap of the ring
// it belongs to: a producer claims the slot whose sequence equals the
// enqueue ticket, publishes the value, and bumps the sequence to hand the
// slot to consumers; a consumer does the mirror image and bumps the
// sequence a full lap ahead to hand the slot back to producers. Producers
// never spin on a full ring and consumers never spin on an empty one —
// both report failure immediately, which is what the runtime's bounded
// submit path and opportunistic drain want.
// In addition to the ring itself, every shard carries a reservation
// credit cell: the runtime's striped submission-backlog accounting caches
// slack from its global cap pool here, so producers that keep hitting the
// same shard reserve against a shard-local counter instead of all CASing
// one global word. The credit cell is padded onto its own cache line —
// producers hammer it while consumers hammer deq — and the shard itself
// stays policy-free: it only moves integers, the cap invariant lives in
// the runtime's borrow protocol (see wsrt: reserveUpTo/releaseSlot).
type Shard[T any] struct {
	mask   uint64
	slots  []shardSlot[T]
	_      [48]byte // keep enq/deq off the slots' cache lines
	enq    atomic.Uint64
	_      [56]byte // and off each other's
	deq    atomic.Uint64
	_      [56]byte // and the credit cell off both hot ring counters
	credit atomic.Int64
}

type shardSlot[T any] struct {
	seq atomic.Uint64
	val atomic.Pointer[T]
}

// NewShard returns a shard with the given capacity (rounded up to a power
// of two, minimum 2).
func NewShard[T any](capacity int) (*Shard[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("deque: shard capacity %d must be positive", capacity)
	}
	n := 2
	for n < capacity {
		n <<= 1
	}
	s := &Shard[T]{mask: uint64(n - 1), slots: make([]shardSlot[T], n)}
	for i := range s.slots {
		s.slots[i].seq.Store(uint64(i))
	}
	return s, nil
}

// MustShard is NewShard that panics on error.
func MustShard[T any](capacity int) *Shard[T] {
	s, err := NewShard[T](capacity)
	if err != nil {
		panic(err)
	}
	return s
}

// Cap returns the shard capacity.
func (s *Shard[T]) Cap() int { return len(s.slots) }

// Len returns a snapshot of the number of queued elements, counting slots
// already claimed by a producer whose value may not be published yet. Like
// ChaseLev.Len it is racy-but-recent — good enough for depth-based shard
// choice and metrics, never for correctness decisions.
func (s *Shard[T]) Len() int {
	e := s.enq.Load()
	d := s.deq.Load()
	if e <= d {
		return 0
	}
	if n := e - d; n <= uint64(len(s.slots)) {
		return int(n)
	}
	return len(s.slots)
}

// Pushes returns the total number of elements ever enqueued (the enqueue
// ticket counter). Every successful Push claims exactly one ticket before
// publishing, so the count includes at most a handful of claimed-but-
// mid-publish slots — racy-but-recent, monotonically non-decreasing, and
// exact once producers quiesce. The runtime derives its injected-total
// metric by summing this across shards.
func (s *Shard[T]) Pushes() uint64 { return s.enq.Load() }

// TryReserve claims up to want units of the shard's cached reservation
// credit, returning how many were claimed (possibly 0). The CAS loop is
// bounded: a producer that keeps losing the race walks away empty-handed
// rather than spinning, and its caller falls through to the next rung of
// the borrow ladder.
func (s *Shard[T]) TryReserve(want int64) int64 {
	if want <= 0 {
		return 0
	}
	for try := 0; try < 4; try++ {
		c := s.credit.Load()
		if c <= 0 {
			return 0
		}
		take := want
		if take > c {
			take = c
		}
		if s.credit.CompareAndSwap(c, c-take) {
			return take
		}
	}
	return 0
}

// Refund returns n previously claimed reservation units to this shard's
// credit cell.
func (s *Shard[T]) Refund(n int64) {
	if n > 0 {
		s.credit.Add(n)
	}
}

// StealCredit drains the shard's entire cached credit in one CAS attempt,
// returning how much was taken (0 when empty or when the attempt lost a
// race — scavengers probe every sibling, so a single attempt per shard is
// enough and keeps the scan bounded).
func (s *Shard[T]) StealCredit() int64 {
	c := s.credit.Load()
	if c <= 0 {
		return 0
	}
	if s.credit.CompareAndSwap(c, 0) {
		return c
	}
	return 0
}

// CreditBalance returns the shard's cached reservation credit.
func (s *Shard[T]) CreditBalance() int64 { return s.credit.Load() }

// Push enqueues v. Safe for any number of concurrent producers (and
// concurrent Pops). Returns false when the ring is full.
func (s *Shard[T]) Push(v *T) bool {
	pos := s.enq.Load()
	for {
		slot := &s.slots[pos&s.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			// Slot is free on this lap: claim the ticket, then publish.
			if s.enq.CompareAndSwap(pos, pos+1) {
				slot.val.Store(v)
				slot.seq.Store(pos + 1)
				return true
			}
			pos = s.enq.Load()
		case seq < pos:
			// The consumer of the previous lap has not recycled the slot:
			// the ring is full.
			return false
		default:
			// Another producer claimed this ticket; take the next one.
			pos = s.enq.Load()
		}
	}
}

// Pop dequeues the oldest published element. Safe for any number of
// concurrent consumers (and concurrent Pushes). Returns (nil, false) when
// the ring is empty — including the transient case where a producer has
// claimed the head slot but not yet published into it, so a caller that
// knows an element is coming (the shutdown flush does) must loop on a
// positive external count rather than trust a single false.
func (s *Shard[T]) Pop() (*T, bool) {
	pos := s.deq.Load()
	for {
		slot := &s.slots[pos&s.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1:
			// Published and unclaimed: claim the ticket, then consume.
			if s.deq.CompareAndSwap(pos, pos+1) {
				v := slot.val.Load()
				slot.val.Store(nil)
				// Recycle the slot for the producer one lap ahead.
				slot.seq.Store(pos + s.mask + 1)
				return v, true
			}
			pos = s.deq.Load()
		case seq <= pos:
			// Empty (or the head producer is mid-publish).
			return nil, false
		default:
			// Another consumer claimed this ticket; take the next one.
			pos = s.deq.Load()
		}
	}
}
