package deque

import (
	"fmt"
	"sync/atomic"
)

// Shard is a bounded lock-free multi-producer queue after Vyukov's bounded
// MPMC ring, used by the runtime as a per-worker external-injection shard:
// any number of producers may Push concurrently, and the owning worker (or
// a thief draining a sibling shard, or the shutdown flush) may Pop
// concurrently. It is the "thin multi-producer head" bolted next to the
// Chase-Lev deques — spawned work stays on the owner-only ChaseLev ring,
// injected work arrives here.
//
// Each slot carries a sequence number that encodes which lap of the ring
// it belongs to: a producer claims the slot whose sequence equals the
// enqueue ticket, publishes the value, and bumps the sequence to hand the
// slot to consumers; a consumer does the mirror image and bumps the
// sequence a full lap ahead to hand the slot back to producers. Producers
// never spin on a full ring and consumers never spin on an empty one —
// both report failure immediately, which is what the runtime's bounded
// submit path and opportunistic drain want.
type Shard[T any] struct {
	mask  uint64
	slots []shardSlot[T]
	_     [48]byte // keep enq/deq off the slots' cache lines
	enq   atomic.Uint64
	_     [56]byte // and off each other's
	deq   atomic.Uint64
}

type shardSlot[T any] struct {
	seq atomic.Uint64
	val atomic.Pointer[T]
}

// NewShard returns a shard with the given capacity (rounded up to a power
// of two, minimum 2).
func NewShard[T any](capacity int) (*Shard[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("deque: shard capacity %d must be positive", capacity)
	}
	n := 2
	for n < capacity {
		n <<= 1
	}
	s := &Shard[T]{mask: uint64(n - 1), slots: make([]shardSlot[T], n)}
	for i := range s.slots {
		s.slots[i].seq.Store(uint64(i))
	}
	return s, nil
}

// MustShard is NewShard that panics on error.
func MustShard[T any](capacity int) *Shard[T] {
	s, err := NewShard[T](capacity)
	if err != nil {
		panic(err)
	}
	return s
}

// Cap returns the shard capacity.
func (s *Shard[T]) Cap() int { return len(s.slots) }

// Len returns a snapshot of the number of queued elements, counting slots
// already claimed by a producer whose value may not be published yet. Like
// ChaseLev.Len it is racy-but-recent — good enough for depth-based shard
// choice and metrics, never for correctness decisions.
func (s *Shard[T]) Len() int {
	e := s.enq.Load()
	d := s.deq.Load()
	if e <= d {
		return 0
	}
	if n := e - d; n <= uint64(len(s.slots)) {
		return int(n)
	}
	return len(s.slots)
}

// Push enqueues v. Safe for any number of concurrent producers (and
// concurrent Pops). Returns false when the ring is full.
func (s *Shard[T]) Push(v *T) bool {
	pos := s.enq.Load()
	for {
		slot := &s.slots[pos&s.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			// Slot is free on this lap: claim the ticket, then publish.
			if s.enq.CompareAndSwap(pos, pos+1) {
				slot.val.Store(v)
				slot.seq.Store(pos + 1)
				return true
			}
			pos = s.enq.Load()
		case seq < pos:
			// The consumer of the previous lap has not recycled the slot:
			// the ring is full.
			return false
		default:
			// Another producer claimed this ticket; take the next one.
			pos = s.enq.Load()
		}
	}
}

// Pop dequeues the oldest published element. Safe for any number of
// concurrent consumers (and concurrent Pushes). Returns (nil, false) when
// the ring is empty — including the transient case where a producer has
// claimed the head slot but not yet published into it, so a caller that
// knows an element is coming (the shutdown flush does) must loop on a
// positive external count rather than trust a single false.
func (s *Shard[T]) Pop() (*T, bool) {
	pos := s.deq.Load()
	for {
		slot := &s.slots[pos&s.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1:
			// Published and unclaimed: claim the ticket, then consume.
			if s.deq.CompareAndSwap(pos, pos+1) {
				v := slot.val.Load()
				slot.val.Store(nil)
				// Recycle the slot for the producer one lap ahead.
				slot.seq.Store(pos + s.mask + 1)
				return v, true
			}
			pos = s.deq.Load()
		case seq <= pos:
			// Empty (or the head producer is mid-publish).
			return nil, false
		default:
			// Another consumer claimed this ticket; take the next one.
			pos = s.deq.Load()
		}
	}
}
