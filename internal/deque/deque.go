// Package deque provides the task queues used by the work-stealing
// schedulers.
//
// Two implementations exist because the two platforms have different needs:
//
//   - Queue is a plain bounded ring buffer used by the deterministic
//     discrete-event simulator, where all accesses happen on one goroutine
//     and determinism matters more than synchronization.
//   - ChaseLev is a bounded lock-free work-stealing deque (Chase & Lev,
//     SPAA'05) used by the real-threads runtime, where the owner pushes and
//     pops at the bottom while concurrent thieves steal from the top.
//
// Both follow WOOL's queue discipline: the owner operates LIFO at the bottom
// (work-first: the most recently spawned task is popped at sync), thieves
// take the oldest task from the top, and the queue has a bounded number of
// stealable slots — the oldest min(size, stealable) entries. The stealable
// count is the µ(Q) metric Palirria's Diaspora Malleability Conditions read.
package deque

import "fmt"

// Queue is the simulator's task queue: a bounded ring buffer with owner
// operations at the bottom and steals at the top. Not safe for concurrent
// use; the simulator is single-threaded by design.
type Queue[T any] struct {
	buf       []T
	top       int // index of the oldest element
	size      int
	stealable int // max entries exposed to thieves, counted from the top
}

// NewQueue returns a queue with the given capacity and stealable slot
// count. Capacity must be positive; stealable must be in [1, capacity].
func NewQueue[T any](capacity, stealable int) (*Queue[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("deque: capacity %d must be positive", capacity)
	}
	if stealable < 1 || stealable > capacity {
		return nil, fmt.Errorf("deque: stealable %d out of [1, %d]", stealable, capacity)
	}
	return &Queue[T]{buf: make([]T, capacity), stealable: stealable}, nil
}

// MustQueue is NewQueue that panics on error.
func MustQueue[T any](capacity, stealable int) *Queue[T] {
	q, err := NewQueue[T](capacity, stealable)
	if err != nil {
		panic(err)
	}
	return q
}

// Len returns the number of queued tasks.
func (q *Queue[T]) Len() int { return q.size }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// StealableLen returns µ(Q): the number of tasks a thief could take, i.e.
// min(Len, stealable slots).
func (q *Queue[T]) StealableLen() int {
	if q.size < q.stealable {
		return q.size
	}
	return q.stealable
}

// PushBottom appends a task at the bottom (owner side). It returns false
// when the queue is full; WOOL handles overflow by executing the task
// inline, and the simulator's workers do the same.
func (q *Queue[T]) PushBottom(v T) bool {
	if q.size == len(q.buf) {
		return false
	}
	q.buf[(q.top+q.size)%len(q.buf)] = v
	q.size++
	return true
}

// PopBottom removes and returns the most recently pushed task (owner side).
// ok is false when the queue is empty.
func (q *Queue[T]) PopBottom() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	q.size--
	i := (q.top + q.size) % len(q.buf)
	v = q.buf[i]
	var zero T
	q.buf[i] = zero
	return v, true
}

// StealTop removes and returns the oldest task (thief side). ok is false
// when no stealable task exists.
func (q *Queue[T]) StealTop() (v T, ok bool) {
	if q.StealableLen() == 0 {
		return v, false
	}
	v = q.buf[q.top]
	var zero T
	q.buf[q.top] = zero
	q.top = (q.top + 1) % len(q.buf)
	q.size--
	return v, true
}

// PeekBottom returns the most recently pushed task without removing it.
func (q *Queue[T]) PeekBottom() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	return q.buf[(q.top+q.size-1)%len(q.buf)], true
}

// Reset empties the queue, dropping all entries.
func (q *Queue[T]) Reset() {
	var zero T
	for i := range q.buf {
		q.buf[i] = zero
	}
	q.top, q.size = 0, 0
}
